// Histo case study (paper §8.3): TxSampler diagnoses the Parboil
// histogram's transaction-overhead pathology, the fix (coalescing
// transactions, Listing 4), and the false-sharing pathology the fix
// uncovers on uniform input — resolved by sorting the input.
//
//	go run ./examples/histo
package main

import (
	"fmt"
	"log"
	"os"

	"txsampler"
	"txsampler/internal/pmu"
)

func profile(name string) *txsampler.Result {
	// Dense memory sampling so the shadow-memory contention analysis
	// has enough samples on this scaled-down run (§6: sampling rates
	// are tuned per analysis).
	periods := txsampler.DefaultPeriods()
	periods[pmu.Loads] = 150
	periods[pmu.Stores] = 150
	res, err := txsampler.Run(name, txsampler.Options{Seed: 1, Profile: true, Periods: periods})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func native(name string) *txsampler.Result {
	res, err := txsampler.Run(name, txsampler.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("== Step 1: profile the baseline (input 1, one transaction per pixel) ==")
	base := profile("parboil/histo-1")
	base.Report.Render(os.Stdout)
	fmt.Println()
	base.Advice.Render(os.Stdout)

	tot := base.Report.Totals
	fmt.Printf("\nT_oh share of critical-section time: %.0f%% -> the decision tree suggests merging transactions\n\n",
		100*float64(tot.Toh)/float64(tot.T))

	fmt.Println("== Step 2: apply the fix — coalesce pixels per transaction (Listing 4) ==")
	b1 := native("parboil/histo-1")
	m1 := native("parboil/histo-1-merged")
	fmt.Printf("input 1: baseline %d cycles, merged %d cycles -> %.2fx speedup (paper: 2.95x)\n\n",
		b1.ElapsedCycles, m1.ElapsedCycles, float64(b1.ElapsedCycles)/float64(m1.ElapsedCycles))

	fmt.Println("== Step 3: the same fix on uniform input 2 backfires ==")
	b2 := native("parboil/histo-2")
	m2 := native("parboil/histo-2-merged")
	fmt.Printf("input 2: baseline %d cycles, merged %d cycles -> %.2fx (paper: slight slowdown)\n",
		b2.ElapsedCycles, m2.ElapsedCycles, float64(b2.ElapsedCycles)/float64(m2.ElapsedCycles))

	p2 := profile("parboil/histo-2-merged")
	r := p2.Report
	ratio := "effectively unbounded (the run serializes)"
	if v := r.AbortCommitRatio(); v < 1e6 {
		ratio = fmt.Sprintf("%.2f", v)
	}
	fmt.Printf("profiling the merged input-2 run: abort/commit = %s, false-sharing samples = %d (true: %d)\n",
		ratio, r.Totals.FalseSharing, r.Totals.TrueSharing)
	fmt.Println("TxSampler attributes the contention to the densely packed bins -> sort the input")
	fmt.Println()

	fmt.Println("== Step 4: sort the input so each thread's values concentrate ==")
	s2 := native("parboil/histo-2-sorted")
	fmt.Printf("input 2: baseline %d cycles, merged+sorted %d cycles -> %.2fx speedup (paper: 2.91x)\n",
		b2.ElapsedCycles, s2.ElapsedCycles, float64(b2.ElapsedCycles)/float64(s2.ElapsedCycles))
}
