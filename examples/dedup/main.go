// Dedup case study (paper §8.1, Figures 1 and 9): TxSampler walks its
// decision tree over the PARSEC Dedup kernel, pinpoints the
// hashtable_search context responsible for the abort weight, exposes
// the capacity and synchronous-abort causes, and validates the two
// fixes (refined hash function, system calls hoisted out of the
// critical section).
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"txsampler"
	"txsampler/internal/htm"
)

func main() {
	fmt.Println("== Profile parsec/dedup (bad hash, write_file syscalls inside the CS) ==")
	res, err := txsampler.Run("parsec/dedup", txsampler.Options{Seed: 1, Profile: true})
	if err != nil {
		log.Fatal(err)
	}
	res.Report.Render(os.Stdout)
	fmt.Println()
	res.Advice.Render(os.Stdout)

	// The paper's investigation: sort contexts by abort weight and
	// find hashtable_search deep inside the transaction (Figure 9).
	fmt.Println("\n-- abort-weight ranking (the paper's step 3/4) --")
	found := false
	for _, h := range res.Report.TopAbortWeight(5) {
		path := h.Path()
		fmt.Printf("  %s\n", path)
		if strings.Contains(path, "hashtable_search") {
			found = true
		}
	}
	if found {
		fmt.Println("  -> hashtable_search inside begin_in_tx carries the abort weight, as in Figure 9")
	}
	tot := res.Report.Totals
	fmt.Printf("\ncapacity abort weight: read=%d write=%d; sync abort count=%d\n",
		tot.CapReadW, tot.CapWriteW, tot.AbortCount[htm.Sync])

	fmt.Println("\n== Apply both fixes (parsec/dedup-opt) and compare ==")
	base, err := txsampler.Run("parsec/dedup", txsampler.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := txsampler.Run("parsec/dedup-opt", txsampler.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles; optimized: %d cycles -> %.2fx speedup (paper: 1.20x)\n",
		base.ElapsedCycles, opt.ElapsedCycles,
		float64(base.ElapsedCycles)/float64(opt.ElapsedCycles))

	gb, go_ := base.GroundTruth, opt.GroundTruth
	fmt.Printf("capacity aborts: %d -> %d; sync aborts: %d -> %d\n",
		gb.Aborts[htm.Capacity], go_.Aborts[htm.Capacity],
		gb.Aborts[htm.Sync], go_.Aborts[htm.Sync])
}
