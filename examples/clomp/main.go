// CLOMP-TM controlled experiment (paper §7.2, Table 1, Figure 7):
// profiles the six configurations (small/large transactions x three
// scatter inputs) and prints the three decompositions TxSampler uses
// to explain their behaviour.
//
//	go run ./examples/clomp
package main

import (
	"log"
	"os"

	"txsampler/internal/experiments"
)

func main() {
	experiments.Table1(os.Stdout)
	if _, err := experiments.Fig7(os.Stdout, 14, 1); err != nil {
		log.Fatal(err)
	}
}
