// LevelDB case study (paper §8.2): profiling db_bench-style
// ReadRandom shows conflict-dominated aborts on the shared reference
// counters at Get()'s entry and exit transactions; splitting those
// transactions into bare ref-count updates collapses the abort ratio
// and speeds the read path up.
//
//	go run ./examples/leveldb
package main

import (
	"fmt"
	"log"
	"os"

	"txsampler"
	"txsampler/internal/htm"
)

func main() {
	fmt.Println("== Profile app/leveldb (Get bracketed by wide ref-count transactions) ==")
	res, err := txsampler.Run("app/leveldb", txsampler.Options{Seed: 1, Profile: true})
	if err != nil {
		log.Fatal(err)
	}
	res.Report.Render(os.Stdout)
	fmt.Println()
	res.Advice.Render(os.Stdout)

	fmt.Println("\n-- where the aborts live --")
	for _, h := range res.Report.TopAbortWeight(3) {
		fmt.Printf("  %s\n", h.Path())
	}

	base, err := txsampler.Run("app/leveldb", txsampler.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := txsampler.Run("app/leveldb-opt", txsampler.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ratio := func(r *txsampler.Result) float64 {
		g := r.GroundTruth
		var aborts uint64
		for c, n := range g.Aborts {
			if c != htm.Interrupt {
				aborts += n
			}
		}
		if g.Commits == 0 {
			return float64(aborts)
		}
		return float64(aborts) / float64(g.Commits)
	}
	fmt.Printf("\n== Split the bracketing transactions (paper: ratio 2.8 -> 0.38, ReadRandom 2.06x) ==\n")
	fmt.Printf("abort/commit: baseline %.2f -> optimized %.2f\n", ratio(base), ratio(opt))
	fmt.Printf("ReadRandom speedup: %.2fx (%d -> %d cycles)\n",
		float64(base.ElapsedCycles)/float64(opt.ElapsedCycles),
		base.ElapsedCycles, opt.ElapsedCycles)
}
