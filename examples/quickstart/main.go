// Quickstart: define a custom HTM workload, run it natively and under
// TxSampler, and read the profiler's report and the decision tree's
// advice.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"txsampler"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

func main() {
	// A workload is a set of per-thread bodies built against a
	// simulated machine: here every thread transfers money between
	// accounts of a small shared bank — a classic HTM toy with real
	// conflicts. ctx.Lock is the elided global lock; its Run is the
	// paper's TM_BEGIN/TM_END.
	bank := &htmbench.Workload{
		Name:           "example/bank",
		Suite:          "example",
		Desc:           "random transfers between 32 shared accounts",
		DefaultThreads: 8,
		Build: func(ctx *htmbench.Ctx) *htmbench.Instance {
			const accounts = 32
			balances := ctx.M.Mem.AllocLines(accounts)
			at := func(i int) mem.Addr { return balances + mem.Addr(i)*mem.LineSize }
			// Give every account an opening balance (untimed setup).
			for i := 0; i < accounts; i++ {
				ctx.M.Mem.Store(at(i), 1000)
			}
			const transfers = 150
			body := func(t *machine.Thread) {
				for i := 0; i < transfers; i++ {
					from := t.Rand().Intn(accounts)
					to := t.Rand().Intn(accounts)
					ctx.Lock.Run(t, func() {
						t.Func("transfer", func() {
							t.At("withdraw")
							t.Add(at(from), -10)
							t.Compute(8)
							t.At("deposit")
							t.Add(at(to), 10)
						})
					})
					t.Compute(60) // think time between transfers
				}
			}
			bodies := make([]func(*machine.Thread), ctx.Threads)
			for i := range bodies {
				bodies[i] = body
			}
			return &htmbench.Instance{
				Bodies: bodies,
				Check: func(m *machine.Machine) error {
					var total uint64
					for i := 0; i < accounts; i++ {
						total += m.Mem.Load(at(i))
					}
					if total != accounts*1000 {
						return fmt.Errorf("money not conserved: %d", total)
					}
					return nil
				},
			}
		},
	}

	// Native run: no profiler attached, zero perturbation.
	native, err := txsampler.RunWorkload(bank, txsampler.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("native run: %d cycles, %d commits, aborts by cause: %v\n\n",
		native.ElapsedCycles, native.GroundTruth.Commits, native.GroundTruth.Aborts)

	// Profiled run: TxSampler samples the PMU, reconstructs contexts,
	// and the analyzer + decision tree interpret the profile.
	profiled, err := txsampler.RunWorkload(bank, txsampler.Options{Seed: 7, Profile: true})
	if err != nil {
		log.Fatal(err)
	}
	profiled.Report.Render(os.Stdout)
	fmt.Println()
	profiled.Advice.Render(os.Stdout)

	overhead := float64(profiled.ElapsedCycles)/float64(native.ElapsedCycles) - 1
	fmt.Printf("\nprofiling overhead: %.1f%% (collector state: %d KiB)\n",
		100*overhead, profiled.CollectorBytes/1024)
}
