package txsampler_test

// The run-quantum scheduler's hard constraint: for a fixed seed, the
// batched schedule must be indistinguishable from the per-op schedule
// (Quantum=1, the debug knob). Every registered HTMBench workload is
// run both ways and must produce identical ground truth, identical
// clocks, and a byte-identical serialized profile database.

import (
	"bytes"
	"reflect"
	"testing"

	"txsampler"
	"txsampler/internal/htmbench"
)

func TestSchedulerQuantumEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every workload twice")
	}
	for _, wl := range htmbench.All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			t.Parallel()
			opts := txsampler.Options{Threads: 4, Seed: 5, Profile: true}

			opts.Quantum = 1
			perOp, err := txsampler.Run(wl.Name, opts)
			if err != nil {
				t.Fatalf("per-op: %v", err)
			}
			opts.Quantum = 0 // machine default (batched)
			batched, err := txsampler.Run(wl.Name, opts)
			if err != nil {
				t.Fatalf("batched: %v", err)
			}

			if perOp.ElapsedCycles != batched.ElapsedCycles || perOp.TotalCycles != batched.TotalCycles {
				t.Errorf("clocks diverge: elapsed %d vs %d, total %d vs %d",
					perOp.ElapsedCycles, batched.ElapsedCycles, perOp.TotalCycles, batched.TotalCycles)
			}
			if !reflect.DeepEqual(perOp.GroundTruth, batched.GroundTruth) {
				t.Errorf("ground truth diverges:\nper-op:  %+v\nbatched: %+v",
					perOp.GroundTruth, batched.GroundTruth)
			}
			if !bytes.Equal(serialize(t, perOp.Report), serialize(t, batched.Report)) {
				t.Error("serialized profile databases differ between quantum 1 and batched")
			}
		})
	}
}
