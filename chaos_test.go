package txsampler_test

// Chaos suite: every fault-injection regime, run end to end through
// the public API, must (a) never crash or hang, (b) be byte-identical
// across runs with the same seed, (c) leave the profiler's
// classification within 10 points of the fault-free baseline, and
// (d) flag the profile as degraded exactly when faults actually fire.

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"txsampler"
	"txsampler/internal/analyzer"
	"txsampler/internal/faults"
	"txsampler/internal/machine"
	"txsampler/internal/pmem"
	"txsampler/internal/pmu"
	"txsampler/internal/profile"
)

const (
	chaosWorkload = "micro/mixed"
	chaosThreads  = 4
	chaosSeed     = 21
)

// chaosPeriods samples far more densely than DefaultPeriods so the
// classification fractions carry thousands of samples: the ±10-point
// tolerance then measures fault-induced bias, not sampling noise.
func chaosPeriods() pmu.Periods {
	var p pmu.Periods
	p[pmu.Cycles] = 400
	p[pmu.TxAbort] = 4
	p[pmu.TxCommit] = 8
	p[pmu.Loads] = 500
	p[pmu.Stores] = 500
	return p
}

func chaosRun(t *testing.T, plan faults.Plan) *txsampler.Result {
	t.Helper()
	res, err := txsampler.Run(chaosWorkload, txsampler.Options{
		Threads: chaosThreads, Seed: chaosSeed, Profile: true, Faults: plan,
		Periods: chaosPeriods(),
	})
	if err != nil {
		t.Fatalf("plan %q: %v", plan, err)
	}
	return res
}

// chaosRunPmem is chaosRun against a persistent workload with the pmem
// tier enabled — the regime the pmem crash presets need to fire in.
func chaosRunPmem(t *testing.T, plan faults.Plan) *txsampler.Result {
	t.Helper()
	res, err := txsampler.Run("pmem/kv", txsampler.Options{
		Threads: chaosThreads, Seed: chaosSeed, Profile: true, Faults: plan,
		Periods: chaosPeriods(), Pmem: pmem.Config{Enabled: true},
	})
	if err != nil {
		t.Fatalf("plan %q: %v", plan, err)
	}
	return res
}

func serialize(t *testing.T, r *analyzer.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := profile.FromReport(r).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChaosRegimes(t *testing.T) {
	clean := chaosRun(t, faults.Plan{})
	if got := clean.Report.Quality.Degraded(); got != 0 {
		t.Fatalf("fault-free run reports degradation: %d (%+v)", got, clean.Report.Quality)
	}
	cTx, cStm, cFb, cWait, cOh, cPersist := clean.Report.TimeShares()
	cleanRcs := clean.Report.Rcs()
	// The pmem crash presets need a persistent workload with the pmem
	// tier enabled; their baseline is a crash-free pmem run.
	cleanPmem := chaosRunPmem(t, faults.Plan{})
	if got := cleanPmem.Report.Quality.Degraded(); got != 0 {
		t.Fatalf("crash-free pmem run reports degradation: %d (%+v)", got, cleanPmem.Report.Quality)
	}
	pTx, pStm, pFb, pWait, pOh, pPersist := cleanPmem.Report.TimeShares()
	cleanPmemRcs := cleanPmem.Report.Rcs()

	for _, name := range faults.PresetNames() {
		plan := faults.Presets[name]
		if faults.PmemPreset(name) {
			continue // covered by the pmem regime loop below
		}
		t.Run(name, func(t *testing.T) {
			// (a) No crash, no hang; the committed workload result is
			// still validated by the workload's own Check.
			res := chaosRun(t, plan)

			// (d) The profile must say it is degraded, and the
			// machine-side stats must show which regime fired.
			q := res.Report.Quality
			if q.Degraded() == 0 {
				t.Fatalf("faults injected but Degraded() = 0: %+v", q)
			}
			if q.Injected.Total() == 0 {
				t.Fatalf("plan %s fired no injector events", name)
			}

			// (b) Same seed, same plan: byte-identical profile.
			again := chaosRun(t, plan)
			if !bytes.Equal(serialize(t, res.Report), serialize(t, again.Report)) {
				t.Fatal("same seed produced different profiles under injection")
			}

			// (c) Classification stays within 10 points of baseline:
			// ambient faults may cost samples but must not reshuffle
			// where the profiler says the time went.
			tx, stm, fb, wait, oh, persist := res.Report.TimeShares()
			for _, d := range []struct {
				name      string
				got, want float64
			}{
				{"r_cs", res.Report.Rcs(), cleanRcs},
				{"tx-share", tx, cTx},
				{"stm-share", stm, cStm},
				{"fallback-share", fb, cFb},
				{"wait-share", wait, cWait},
				{"overhead-share", oh, cOh},
				{"persist-share", persist, cPersist},
			} {
				if diff := math.Abs(d.got - d.want); diff > 0.10 {
					t.Errorf("%s drifted %.3f (faulted %.3f vs clean %.3f)", d.name, diff, d.got, d.want)
				}
			}
		})
	}

	// Pmem regime: crash-storm presets against a persistent workload
	// under every hybrid policy — no crash/hang, recovery converges (the
	// workload Check pins every durable word), degradation is flagged,
	// and the profile stays reproducible.
	for _, name := range faults.PresetNames() {
		if !faults.PmemPreset(name) {
			continue
		}
		plan := faults.Presets[name]
		for _, pol := range allPolicies() {
			t.Run(fmt.Sprintf("%s/%v", name, pol), func(t *testing.T) {
				res, err := txsampler.Run("pmem/kv", txsampler.Options{
					Threads: chaosThreads, Seed: chaosSeed, Profile: true,
					Faults: plan, Periods: chaosPeriods(), Hybrid: pol,
					Pmem: pmem.Config{Enabled: true},
				})
				if err != nil {
					t.Fatalf("plan %q: %v", plan, err)
				}
				q := res.Report.Quality
				if q.Degraded() == 0 {
					t.Fatalf("crashes injected but Degraded() = 0: %+v", q)
				}
				if q.Injected.PmemCrashes == 0 {
					t.Fatalf("plan %s fired no pmem crashes: %+v", name, q.Injected)
				}
				again, err := txsampler.Run("pmem/kv", txsampler.Options{
					Threads: chaosThreads, Seed: chaosSeed, Profile: true,
					Faults: plan, Periods: chaosPeriods(), Hybrid: pol,
					Pmem: pmem.Config{Enabled: true},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(serialize(t, res.Report), serialize(t, again.Report)) {
					t.Fatal("same seed produced different profiles under crash injection")
				}
				if pol != machine.HybridLockOnly {
					return // drift is judged against the lock-only baseline
				}
				tx, stm, fb, wait, oh, persist := res.Report.TimeShares()
				for _, d := range []struct {
					name      string
					got, want float64
				}{
					{"r_cs", res.Report.Rcs(), cleanPmemRcs},
					{"tx-share", tx, pTx},
					{"stm-share", stm, pStm},
					{"fallback-share", fb, pFb},
					{"wait-share", wait, pWait},
					{"overhead-share", oh, pOh},
					{"persist-share", persist, pPersist},
				} {
					if diff := math.Abs(d.got - d.want); diff > 0.10 {
						t.Errorf("%s drifted %.3f (crashed %.3f vs clean %.3f)", d.name, diff, d.got, d.want)
					}
				}
			})
		}
	}
}

func TestChaosQualityRoundTripsThroughDatabase(t *testing.T) {
	res := chaosRun(t, faults.Presets["drops"])
	db := profile.FromReport(res.Report)
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := profile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Report().Quality != res.Report.Quality {
		t.Fatalf("quality lost in round trip: %+v vs %+v", back.Report().Quality, res.Report.Quality)
	}
	if back.Report().Quality.Degraded() == 0 {
		t.Fatal("loaded profile no longer flagged degraded")
	}
}

func TestChaosRenderMentionsDegradation(t *testing.T) {
	res := chaosRun(t, faults.Presets["spurious"])
	var buf bytes.Buffer
	res.Report.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("DEGRADED")) {
		t.Fatalf("report omits degradation warning:\n%s", &buf)
	}
	clean := chaosRun(t, faults.Plan{})
	buf.Reset()
	clean.Report.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("data quality: clean")) {
		t.Fatalf("clean report missing quality line:\n%s", &buf)
	}
}

func TestChaosInvalidPlanIsCleanError(t *testing.T) {
	_, err := txsampler.Run(chaosWorkload, txsampler.Options{
		Threads: chaosThreads, Seed: 1, Profile: true,
		Faults: faults.Plan{SpuriousAbortRate: 2},
	})
	if err == nil {
		t.Fatal("invalid fault plan accepted")
	}
	if want := "spurious"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the bad field", err)
	}
}

// Example of reading a chaos profile's quality programmatically.
func ExampleResult_quality() {
	res, err := txsampler.Run("micro/low-abort", txsampler.Options{
		Threads: 2, Seed: 1, Profile: true,
		Faults: faults.Plan{SampleDropRate: 0.5},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("degraded:", res.Report.Quality.Degraded() > 0)
	// Output:
	// degraded: true
}
