package txsampler_test

// Cooperative cancellation through the public API: a canceled profiled
// run returns a non-nil partial Result alongside the error, and the
// Partial-stamped profile round-trips through the crash-safe store.

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"txsampler"
	"txsampler/internal/machine"
	"txsampler/internal/profile"
)

func TestCanceledRunYieldsPartialProfile(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := txsampler.Run("stamp/vacation", txsampler.Options{
		Threads: 4, Seed: 1, Profile: true, Context: ctx,
	})
	if !errors.Is(err, txsampler.ErrCanceled) || !errors.Is(err, machine.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled cause", err)
	}
	if res == nil || res.Report == nil {
		t.Fatal("canceled profiled run returned no partial result")
	}
	if !res.Report.Partial {
		t.Fatal("canceled report not marked Partial")
	}

	// The partial report persists through the atomic store and is
	// flagged by both Load and Verify.
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := profile.FromReport(res.Report).Save(path); err != nil {
		t.Fatal(err)
	}
	info, err := profile.Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Partial {
		t.Fatal("Verify does not report the partial stamp")
	}
	db, err := profile.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Partial || !db.Report().Partial {
		t.Fatal("partial stamp lost in round trip")
	}
}

func TestCanceledNativeRunReturnsError(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Enough iterations that the deadline fires mid-run on any machine.
	_, err := txsampler.Run("stamp/labyrinth", txsampler.Options{
		Threads: 8, Seed: 2, Context: ctx,
	})
	if err != nil && !errors.Is(err, txsampler.ErrCanceled) {
		t.Fatalf("err = %v, want nil or ErrCanceled", err)
	}
}

func TestUncanceledContextDoesNotPerturbRun(t *testing.T) {
	base, err := txsampler.Run("micro/low-abort", txsampler.Options{Threads: 4, Seed: 9, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := txsampler.Run("micro/low-abort", txsampler.Options{
		Threads: 4, Seed: 9, Profile: true, Context: context.Background(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.ElapsedCycles != withCtx.ElapsedCycles || base.TotalCycles != withCtx.TotalCycles {
		t.Fatalf("context plumbing perturbed the run: (%d,%d) vs (%d,%d)",
			base.ElapsedCycles, base.TotalCycles, withCtx.ElapsedCycles, withCtx.TotalCycles)
	}
	if !reflect.DeepEqual(base.GroundTruth, withCtx.GroundTruth) {
		t.Fatalf("ground truth diverged:\n%+v\n%+v", base.GroundTruth, withCtx.GroundTruth)
	}
	if withCtx.Report.Partial {
		t.Fatal("completed run marked Partial")
	}
}
