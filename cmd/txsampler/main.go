// Command txsampler profiles an HTMBench workload and prints the
// merged report, the per-thread commit/abort histogram, and the
// decision tree's optimization advice. Profiles can be saved to a
// JSON database and re-opened later, and rendered as a
// calling-context tree with metric columns (the paper's GUI views).
//
//	txsampler -list
//	txsampler parsec/dedup
//	txsampler -threads 8 -seed 3 -tree -histogram stamp/vacation
//	txsampler -o dedup.json parsec/dedup
//	txsampler -view dedup.json
//	txsampler -faults storm stamp/vacation
//	txsampler -trace dedup.trace.json parsec/dedup
//	txsampler -debug-addr localhost:6060 stamp/vacation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"txsampler"
	"txsampler/internal/core"
	"txsampler/internal/faults"
	"txsampler/internal/htmbench"
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/pmem"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
	"txsampler/internal/viewer"
)

func main() {
	var (
		threads = flag.Int("threads", 0, "thread count (0 = workload default)")
		seed    = flag.Int64("seed", 1, "workload seed")
		list    = flag.Bool("list", false, "list available workloads")
		native  = flag.Bool("native", false, "run without the profiler and print ground truth only")
		tree    = flag.Bool("tree", false, "render the calling-context view (Figure 9)")
		histo   = flag.Bool("histogram", false, "render the per-thread commit/abort histogram")
		output  = flag.String("o", "", "save the profile database (JSON) to this path")
		view    = flag.String("view", "", "open a saved profile database instead of running")
		acc     = flag.Bool("accuracy", false, "score attribution accuracy against ground truth")
		plot    = flag.String("plot", "", "plot per-thread CS time for a context path, e.g. 'thread_root>tm_begin'")
		html    = flag.String("html", "", "write a standalone HTML report to this path")
		fplan   = flag.String("faults", "", "fault-injection plan: a preset ("+strings.Join(faults.PresetNames(), ", ")+") or key=value pairs (see internal/faults)")
		tracef  = flag.String("trace", "", "write a Chrome trace-event JSON file (chrome://tracing or Perfetto) of the run to this path")
		dbgAddr = flag.String("debug-addr", "", "serve net/http/pprof, expvar, and /metrics on this address (e.g. localhost:6060)")
		quantum = flag.Int("quantum", 0, "scheduler run quantum in ops (0 = machine default; results are quantum-invariant)")
		hybrid  = flag.String("hybrid-policy", "lock-only", "slow-path execution mode: "+strings.Join(machine.HybridPolicies(), ", "))
		elide   = flag.Bool("elide", false, "enable lock elision: elidable locks speculate before acquiring (per-site verdicts in the report)")
		pmemOn  = flag.Bool("pmem", false, "enable the persistent-memory tier (durable commits + persistence-stall attribution; pmem/* workloads)")
		pflush  = flag.Uint64("pmem-flush", 0, "per-line flush cost in cycles (0 = default)")
		pfence  = flag.Uint64("pmem-fence", 0, "persist-fence cost in cycles (0 = default)")
		plog    = flag.Uint64("pmem-log", 0, "undo-log append cost in cycles (0 = default)")
		pcommit = flag.Uint64("pmem-commit", 0, "durable commit-record cost in cycles (0 = default)")
	)
	flag.Parse()

	pcfg := pmem.Config{
		Enabled: *pmemOn, FlushCost: *pflush, FenceCost: *pfence,
		LogCost: *plog, CommitCost: *pcommit,
	}

	hpol, err := machine.ParseHybridPolicy(*hybrid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "txsampler: %v\n", err)
		os.Exit(2)
	}
	emode := machine.ElisionOff
	if *elide {
		emode = machine.ElisionOn
	}

	metrics := telemetry.NewRegistry()
	if *dbgAddr != "" {
		srv, err := telemetry.ServeDebug(*dbgAddr, metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/ (pprof, expvar, metrics)\n", srv.Addr)
	}

	plan, err := faults.ParsePlan(*fplan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "txsampler: invalid -faults: %v\n", err)
		os.Exit(2)
	}

	if *view != "" {
		db, err := profile.Load(*view)
		if err != nil {
			log.Fatal(err)
		}
		r := db.Report()
		r.Render(os.Stdout)
		fmt.Println()
		viewer.Tree(os.Stdout, r, viewer.TreeOptions{})
		fmt.Println()
		viewer.Histogram(os.Stdout, r)
		fmt.Println()
		viewer.DataQuality(os.Stdout, r)
		if len(r.Self) > 0 {
			fmt.Println()
			viewer.SelfReport(os.Stdout, r)
		}
		return
	}

	if *list {
		for _, w := range htmbench.All() {
			fmt.Printf("%-28s [%s] %s\n", w.Name, w.Suite, w.Desc)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: txsampler [flags] <workload> | -list | -view profile.json (see -h)")
		os.Exit(2)
	}
	name := flag.Arg(0)
	// SIGINT/SIGTERM stop the run cooperatively at the next quantum
	// boundary; a profiled run still flushes a Partial database to -o.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *acc {
		res, a, err := txsampler.RunWithAccuracy(name, txsampler.Options{Threads: *threads, Seed: *seed, Faults: plan, Quantum: *quantum, Hybrid: hpol, Elision: emode, Pmem: pcfg, Context: ctx})
		if err != nil {
			if errors.Is(err, txsampler.ErrCanceled) {
				fmt.Fprintln(os.Stderr, "txsampler: interrupted")
				os.Exit(130)
			}
			log.Fatal(err)
		}
		fmt.Printf("workload: %s (%d threads, seed %d)\n", res.Workload, res.Threads, *seed)
		fmt.Printf("samples: %d total, %d inside transactions\n", a.Total, a.InTx)
		if a.InTx > 0 {
			// Exact counts first: percentages round, and a sub-0.1%
			// attribution regression must still flip the byte-diff in
			// the CI determinism job.
			fmt.Printf("in-tx path detected via LBR abort bit: %d/%d (%.1f%%)\n",
				a.PathDetected, a.InTx, 100*float64(a.PathDetected)/float64(a.InTx))
			fmt.Printf("full context recovered: txsampler %d/%d (%.1f%%), stack-only profiler %d/%d (%.1f%%)\n",
				a.TxSamplerCorrect, a.InTx, 100*float64(a.TxSamplerCorrect)/float64(a.InTx),
				a.NaiveCorrect, a.InTx, 100*float64(a.NaiveCorrect)/float64(a.InTx))
		}
		if n := a.Modes.Total(); n > 0 {
			fmt.Printf("execution-mode classification: %d/%d correct (%.1f%%)\n",
				a.Modes.Correct(), n, 100*a.Modes.Accuracy())
		}
		if *output != "" && res.Report != nil {
			if err := profile.FromReport(res.Report).Save(*output); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("profile database written to %s\n", *output)
		}
		return
	}
	var tracer *telemetry.Tracer
	if *tracef != "" {
		tracer = telemetry.NewTracer(0)
	}
	res, err := txsampler.Run(name, txsampler.Options{
		Threads: *threads, Seed: *seed, Profile: !*native, Faults: plan,
		Quantum: *quantum, Trace: tracer, Metrics: metrics, Hybrid: hpol,
		Elision: emode, Pmem: pcfg, Context: ctx,
	})
	if err != nil {
		if errors.Is(err, txsampler.ErrCanceled) {
			if res != nil && res.Report != nil && *output != "" {
				if serr := profile.FromReport(res.Report).Save(*output); serr != nil {
					fmt.Fprintf(os.Stderr, "txsampler: interrupted; partial profile save failed: %v\n", serr)
					os.Exit(1)
				}
				metrics.Counter("profile.partial_flushes").Add(1)
				fmt.Fprintf(os.Stderr, "txsampler: interrupted; partial profile written to %s\n", *output)
			} else {
				fmt.Fprintln(os.Stderr, "txsampler: interrupted")
			}
			os.Exit(130)
		}
		log.Fatal(err)
	}
	if tracer != nil {
		f, err := os.Create(*tracef)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d events", *tracef, tracer.Len())
		if d := tracer.Dropped(); d > 0 {
			fmt.Printf(", %d dropped", d)
		}
		fmt.Println(") — load in chrome://tracing or https://ui.perfetto.dev")
	}
	if plan.Enabled() {
		fmt.Printf("fault injection: %s\n", plan)
	}

	fmt.Printf("workload: %s (%d threads, seed %d)\n", res.Workload, res.Threads, *seed)
	fmt.Printf("elapsed: %d cycles (total work %d)\n", res.ElapsedCycles, res.TotalCycles)
	g := res.GroundTruth
	fmt.Printf("ground truth: %d commits; aborts:", g.Commits)
	for _, c := range g.AbortCauses() {
		fmt.Printf(" %v=%d", c, g.Aborts[c])
	}
	fmt.Println()

	if res.Report != nil {
		if *output != "" {
			if err := profile.FromReport(res.Report).Save(*output); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("profile database written to %s\n", *output)
		}
		if *tree {
			fmt.Println()
			viewer.Tree(os.Stdout, res.Report, viewer.TreeOptions{})
		}
		if *histo {
			fmt.Println()
			viewer.Histogram(os.Stdout, res.Report)
		}
		if *html != "" {
			f, err := os.Create(*html)
			if err != nil {
				log.Fatal(err)
			}
			if err := viewer.HTML(f, res.Report, res.Advice, viewer.TreeOptions{}); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("HTML report written to %s\n", *html)
		}
		if *plot != "" {
			fmt.Println()
			var path []lbr.IP
			for _, part := range strings.Split(*plot, ">") {
				fn, site, _ := strings.Cut(strings.TrimSpace(part), ":")
				path = append(path, lbr.IP{Fn: fn, Site: site})
			}
			viewer.ContextHistogram(os.Stdout, res.Report, path, "T",
				func(m *core.Metrics) uint64 { return m.T })
		}
		fmt.Println()
		res.Report.Render(os.Stdout)
		fmt.Println()
		viewer.DataQuality(os.Stdout, res.Report)
		fmt.Println("\nper-thread commit/abort samples:")
		for _, t := range res.Report.PerThread {
			fmt.Printf("  thread %2d: commits=%-5d aborts=%d\n", t.TID, t.CommitSamples, t.AbortSamples)
		}
		fmt.Println()
		res.Advice.Render(os.Stdout)
		fmt.Printf("\ncollector state: %.1f KiB\n", float64(res.CollectorBytes)/1024)
		fmt.Println()
		viewer.SelfReport(os.Stdout, res.Report)
	}
}
