package main

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"txsampler/internal/core"
	"txsampler/internal/profile"
)

func shardPayload(t *testing.T) []byte {
	t.Helper()
	var m core.Metrics
	m.W, m.T = 100, 40
	db := &profile.Database{
		Version: profile.FormatVersion,
		Program: "micro/low-abort",
		Threads: 2,
		Totals:  m,
		Root:    &profile.Node{Fn: "<root>", Children: []*profile.Node{{Fn: "main.work", Metrics: m}}},
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunServesIngestAndDrains boots the daemon on an ephemeral port,
// ingests one shard, checks the query and probe endpoints, stops it,
// then boots it again on the same state directory and verifies the
// shard replayed.
func TestRunServesIngestAndDrains(t *testing.T) {
	dir := t.TempDir()
	payload := shardPayload(t)

	boot := func(wantReplayed string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		addrc := make(chan string, 1)
		stopc := make(chan func(), 1)
		done := make(chan int, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-dir", dir, "-debug-addr", "127.0.0.1:0"},
				&stdout, &stderr, func(addr string, stop func()) {
					addrc <- addr
					stopc <- stop
				})
		}()
		var addr string
		select {
		case addr = <-addrc:
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon did not start; stderr: %s", stderr.String())
		}
		stop := <-stopc

		resp, err := http.Post("http://"+addr+"/ingest", "application/octet-stream", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: status %d", resp.StatusCode)
		}
		for _, path := range []string{"/stats", "/healthz", "/readyz", "/profile?window=0"} {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d", path, resp.StatusCode)
			}
		}

		stop()
		select {
		case code := <-done:
			if code != 0 {
				t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not drain after stop")
		}
		if !strings.Contains(stdout.String(), wantReplayed) {
			t.Errorf("stdout missing %q:\n%s", wantReplayed, stdout.String())
		}
	}

	boot("replayed 0 shards")
	// Second boot replays the journaled shard.
	boot("replayed 1 shards")
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-dir", ""}, &out, &errb, nil); code != 2 {
		t.Errorf("missing -dir: exit %d, want 2", code)
	}
	if code := run([]string{"-no-such-flag"}, &out, &errb, nil); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"-dir", t.TempDir(), "-addr", "256.0.0.1:bad"}, &out, &errb, nil); code != 1 {
		t.Errorf("bad addr: exit %d, want 1", code)
	}
	if code := run([]string{"-dir", t.TempDir(), "-addr", "127.0.0.1:0", "-debug-addr", "256.0.0.1:bad"}, &out, &errb, nil); code != 1 {
		t.Errorf("bad debug addr: exit %d, want 1", code)
	}
}
