// Command txsamplerd is the fleet ingestion daemon: it accepts framed
// v2 profile shards over HTTP from many nodes (htmbench -fleet, or
// anything that POSTs profile.Database bytes to /ingest), journals
// each shard durably before acknowledging it, and merges them into
// time-windowed aggregate calling-context trees served back through
// query endpoints.
//
// Ingestion degrades explicitly under load — merge-on-arrival, then
// journal-now-merge-later past the queue's high watermark, then 429 +
// Retry-After load shedding past -max-lag — and recovers losslessly
// from kill -9: restart replays the journal into byte-identical
// aggregates.
//
//	txsamplerd -addr :8090 -dir /var/lib/txsampler
//	curl localhost:8090/stats
//	curl localhost:8090/top?window=0&by=aborts&k=5
//	curl -o agg.json localhost:8090/profile?window=0
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"txsampler/internal/fleet"
	"txsampler/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main with its environment injected: CLI args, output
// streams, and an optional test hook that receives the bound listen
// address and a stop function once the daemon is serving.
func run(args []string, stdout, stderr io.Writer, started func(addr string, stop func())) int {
	fs := flag.NewFlagSet("txsamplerd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":8090", "ingest/query listen address")
		dir      = fs.String("dir", "", "state directory for the shard journal (required)")
		queue    = fs.Int("queue", 256, "merge queue capacity (shards)")
		high     = fs.Int("high-water", 0, "queue depth that degrades to journal-now-merge-later (0 = 3/4 of -queue)")
		low      = fs.Int("low-water", 0, "queue depth at which catch-up resumes merging deferred shards (0 = 1/4 of -queue)")
		maxLag   = fs.Int("max-lag", 0, "journaled-but-unmerged shards beyond which ingest sheds with 429 (0 = 8x -queue)")
		retain   = fs.Int("retain", 0, "keep only the newest N windows in memory; older ones answer 410 (0 = all)")
		workers  = fs.Int("merge-workers", 0, "parallel shard-decode workers feeding the merge (0 = GOMAXPROCS)")
		retryAft = fs.Duration("retry-after", 500*time.Millisecond, "Retry-After hint sent with load-shedding 429s")
		maxShard = fs.Int64("max-shard-bytes", 32<<20, "largest accepted shard body")
		dbgAddr  = fs.String("debug-addr", "", "serve net/http/pprof, expvar, /metrics, /healthz, and /readyz on this address")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintln(stderr, "txsamplerd: -dir is required")
		return 2
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(stderr, "txsamplerd: %v\n", err)
		return 1
	}

	reg := telemetry.NewRegistry()
	srv, err := fleet.Open(fleet.Config{
		Dir:           *dir,
		QueueCap:      *queue,
		HighWater:     *high,
		LowWater:      *low,
		MaxLag:        *maxLag,
		Retain:        *retain,
		MergeWorkers:  *workers,
		RetryAfter:    *retryAft,
		MaxShardBytes: *maxShard,
		Metrics:       reg,
		Log:           stderr,
	})
	if err != nil {
		fmt.Fprintf(stderr, "txsamplerd: %v\n", err)
		return 1
	}
	defer srv.Close()

	if *dbgAddr != "" {
		dbg, err := telemetry.ServeDebug(*dbgAddr, reg, srv.Ready)
		if err != nil {
			fmt.Fprintf(stderr, "txsamplerd: %v\n", err)
			return 1
		}
		defer dbg.Close()
		fmt.Fprintf(stderr, "debug endpoints on http://%s/\n", dbg.Addr)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "txsamplerd: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// SIGINT/SIGTERM drain gracefully: stop accepting, let in-flight
	// ingests finish (their journal appends are already durable), then
	// close the merge pipeline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if started != nil {
		started(ln.Addr().String(), stop)
	}
	fmt.Fprintf(stdout, "txsamplerd: listening on %s (replayed %d shards)\n", ln.Addr(), srv.Replayed())

	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(stderr, "txsamplerd: shutdown: %v\n", err)
		}
		fmt.Fprintln(stdout, "txsamplerd: drained")
		return 0
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(stderr, "txsamplerd: serve: %v\n", err)
			return 1
		}
		return 0
	}
}
