// Command txdiff compares two profile databases (or re-profiles two
// workloads) and prints the metric deltas and top-moving contexts —
// the paper's §8 iterative workflow: optimize, re-profile, compare.
//
//	txdiff before.json after.json
//	txdiff -run parsec/dedup parsec/dedup-opt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"txsampler"
	"txsampler/internal/analyzer"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

func main() {
	var (
		threads = flag.Int("threads", 0, "thread count for -run (0 = workload default)")
		seed    = flag.Int64("seed", 1, "workload seed for -run")
		run     = flag.Bool("run", false, "arguments are workload names to profile, not saved databases")
		top     = flag.Int("top", 8, "number of moving contexts to show")
		dbgAddr = flag.String("debug-addr", "", "serve net/http/pprof, expvar, and /metrics on this address")
	)
	flag.Parse()
	if *dbgAddr != "" {
		srv, err := telemetry.ServeDebug(*dbgAddr, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/\n", srv.Addr)
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: txdiff [-run] [-threads N] [-seed S] <before> <after>")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	load := func(arg string) *analyzer.Report {
		if *run {
			res, err := txsampler.Run(arg, txsampler.Options{Threads: *threads, Seed: *seed, Profile: true, Context: ctx})
			if err != nil {
				if errors.Is(err, txsampler.ErrCanceled) {
					fmt.Fprintln(os.Stderr, "txdiff: interrupted")
					os.Exit(130)
				}
				log.Fatal(err)
			}
			return res.Report
		}
		db, err := profile.Load(arg)
		if err != nil {
			log.Fatal(err)
		}
		return db.Report()
	}
	before := load(flag.Arg(0))
	after := load(flag.Arg(1))
	analyzer.RenderDiff(os.Stdout, before, after, *top)
}
