// Command txdiff compares two profile databases (or re-profiles two
// workloads) and prints the metric deltas and top-moving contexts —
// the paper's §8 iterative workflow: optimize, re-profile, compare.
//
// Either side may also be a comma-separated list of databases or a
// directory of them; shards on a side are merged (in parallel) into
// one profile before diffing, so a fleet of per-node uploads diffs
// directly against another fleet.
//
//	txdiff before.json after.json
//	txdiff before-shards/ after-shards/
//	txdiff a1.json,a2.json b1.json,b2.json
//	txdiff -run parsec/dedup parsec/dedup-opt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"syscall"

	"txsampler"
	"txsampler/internal/analyzer"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("txdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threads = fs.Int("threads", 0, "thread count for -run (0 = workload default)")
		seed    = fs.Int64("seed", 1, "workload seed for -run")
		rerun   = fs.Bool("run", false, "arguments are workload names to profile, not saved databases")
		top     = fs.Int("top", 8, "number of moving contexts to show")
		dbgAddr = fs.String("debug-addr", "", "serve net/http/pprof, expvar, and /metrics on this address")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dbgAddr != "" {
		srv, err := telemetry.ServeDebug(*dbgAddr, nil)
		if err != nil {
			fmt.Fprintln(stderr, "txdiff:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "debug endpoints on http://%s/\n", srv.Addr)
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: txdiff [-run] [-threads N] [-seed S] <before> <after> (each side: database, comma-list, or directory of databases)")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	load := func(arg string) (*analyzer.Report, error) {
		if *rerun {
			res, err := txsampler.Run(arg, txsampler.Options{Threads: *threads, Seed: *seed, Profile: true, Context: ctx})
			if err != nil {
				return nil, err
			}
			return res.Report, nil
		}
		db, err := loadMerged(arg)
		if err != nil {
			return nil, err
		}
		return db.Report(), nil
	}
	var reports [2]*analyzer.Report
	for i, arg := range []string{fs.Arg(0), fs.Arg(1)} {
		r, err := load(arg)
		if err != nil {
			if errors.Is(err, txsampler.ErrCanceled) {
				fmt.Fprintln(stderr, "txdiff: interrupted")
				return 130
			}
			fmt.Fprintln(stderr, "txdiff:", err)
			return 1
		}
		reports[i] = r
	}
	analyzer.RenderDiff(stdout, reports[0], reports[1], *top)
	return 0
}

// loadMerged resolves one diff side: a single database path, a
// comma-separated list of paths, or a directory of databases. Multiple
// shards decode in parallel and merge with profile.MergeAll; the
// result is independent of decode order and core count.
func loadMerged(arg string) (*profile.Database, error) {
	paths, err := expandArg(arg)
	if err != nil {
		return nil, err
	}
	dbs := make([]*profile.Database, len(paths))
	errs := make([]error, len(paths))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, p := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p string) {
			defer wg.Done()
			dbs[i], errs[i] = profile.Load(p)
			<-sem
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", paths[i], err)
		}
	}
	return profile.MergeAll(dbs, 0), nil
}

// expandArg turns a diff-side argument into the sorted list of
// database paths it names.
func expandArg(arg string) ([]string, error) {
	if strings.Contains(arg, ",") {
		parts := strings.Split(arg, ",")
		paths := parts[:0]
		for _, p := range parts {
			if p != "" {
				paths = append(paths, p)
			}
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("empty database list %q", arg)
		}
		return paths, nil
	}
	st, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !st.IsDir() {
		return []string{arg}, nil
	}
	entries, err := os.ReadDir(arg)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() {
			paths = append(paths, filepath.Join(arg, e.Name()))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("directory %s holds no databases", arg)
	}
	sort.Strings(paths)
	return paths, nil
}
