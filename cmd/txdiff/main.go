// Command txdiff compares two profile databases (or re-profiles two
// workloads) and prints the metric deltas and top-moving contexts —
// the paper's §8 iterative workflow: optimize, re-profile, compare.
//
//	txdiff before.json after.json
//	txdiff -run parsec/dedup parsec/dedup-opt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"txsampler"
	"txsampler/internal/analyzer"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("txdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		threads = fs.Int("threads", 0, "thread count for -run (0 = workload default)")
		seed    = fs.Int64("seed", 1, "workload seed for -run")
		rerun   = fs.Bool("run", false, "arguments are workload names to profile, not saved databases")
		top     = fs.Int("top", 8, "number of moving contexts to show")
		dbgAddr = fs.String("debug-addr", "", "serve net/http/pprof, expvar, and /metrics on this address")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dbgAddr != "" {
		srv, err := telemetry.ServeDebug(*dbgAddr, nil)
		if err != nil {
			fmt.Fprintln(stderr, "txdiff:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "debug endpoints on http://%s/\n", srv.Addr)
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: txdiff [-run] [-threads N] [-seed S] <before> <after>")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	load := func(arg string) (*analyzer.Report, error) {
		if *rerun {
			res, err := txsampler.Run(arg, txsampler.Options{Threads: *threads, Seed: *seed, Profile: true, Context: ctx})
			if err != nil {
				return nil, err
			}
			return res.Report, nil
		}
		db, err := profile.Load(arg)
		if err != nil {
			return nil, err
		}
		return db.Report(), nil
	}
	var reports [2]*analyzer.Report
	for i, arg := range []string{fs.Arg(0), fs.Arg(1)} {
		r, err := load(arg)
		if err != nil {
			if errors.Is(err, txsampler.ErrCanceled) {
				fmt.Fprintln(stderr, "txdiff: interrupted")
				return 130
			}
			fmt.Fprintln(stderr, "txdiff:", err)
			return 1
		}
		reports[i] = r
	}
	analyzer.RenderDiff(stdout, reports[0], reports[1], *top)
	return 0
}
