package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"txsampler"
	"txsampler/internal/profile"
)

func saveProfile(t *testing.T, name string, seed int64) string {
	t.Helper()
	res, err := txsampler.Run(name, txsampler.Options{Threads: 2, Seed: seed, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.json")
	if err := profile.FromReport(res.Report).Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunDiffsSavedDatabases: the main path — load two databases,
// render the delta.
func TestRunDiffsSavedDatabases(t *testing.T) {
	before := saveProfile(t, "micro/low-abort", 1)
	after := saveProfile(t, "micro/true-sharing", 1)
	var out, errb bytes.Buffer
	if code := run([]string{before, after}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "micro/low-abort") || !strings.Contains(out.String(), "micro/true-sharing") {
		t.Fatalf("diff header incomplete:\n%s", out.String())
	}
}

// TestRunRerunsWorkloads: -run profiles the named workloads instead of
// loading files.
func TestRunRerunsWorkloads(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "-threads", "2", "micro/low-abort", "micro/low-abort"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "micro/low-abort") {
		t.Fatalf("diff output incomplete:\n%s", out.String())
	}
}

// TestRunErrors: bad usage exits 2; unreadable databases and unknown
// workloads exit 1.
func TestRunErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one-arg"}, &out, &errb); code != 2 {
		t.Fatalf("one arg exit %d, want 2", code)
	}
	if code := run([]string{"-bogus-flag"}, &out, &errb); code != 2 {
		t.Fatalf("unknown flag exit %d, want 2", code)
	}
	if code := run([]string{"no-such.json", "nope.json"}, &out, &errb); code != 1 {
		t.Fatalf("missing database exit %d, want 1", code)
	}
	if code := run([]string{"-run", "bogus/none", "bogus/none"}, &out, &errb); code != 1 {
		t.Fatalf("unknown workload exit %d, want 1", code)
	}
}

// TestRunMergesShardSides: a diff side given as a directory (or a
// comma-separated list) is merged into one profile before diffing,
// and both spellings produce identical output.
func TestRunMergesShardSides(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i, seed := range []int64{1, 2, 3} {
		res, err := txsampler.Run("micro/low-abort", txsampler.Options{Threads: 2, Seed: seed, Profile: true})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.json", i))
		if err := profile.FromReport(res.Report).Save(path); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	after := saveProfile(t, "micro/true-sharing", 1)

	var dirOut, listOut, errb bytes.Buffer
	if code := run([]string{dir, after}, &dirOut, &errb); code != 0 {
		t.Fatalf("directory side exit %d: %s", code, errb.String())
	}
	if code := run([]string{strings.Join(paths, ","), after}, &listOut, &errb); code != 0 {
		t.Fatalf("list side exit %d: %s", code, errb.String())
	}
	if dirOut.String() != listOut.String() {
		t.Errorf("directory and list spellings diff differently:\n%s\n---\n%s", dirOut.String(), listOut.String())
	}
	if !strings.Contains(dirOut.String(), "micro/low-abort") {
		t.Errorf("merged side lost its program name:\n%s", dirOut.String())
	}

	// An empty directory is a usage error, not a crash.
	if code := run([]string{t.TempDir(), after}, &dirOut, &errb); code != 1 {
		t.Errorf("empty directory exit %d, want 1", code)
	}
}
