// Command experiments regenerates the paper's tables and figures.
// SIGINT/SIGTERM cancel the sweep cooperatively — in-flight machine
// runs stop at a quantum boundary — and the process exits 130. With
// -sweep the command runs a crash-safe profile campaign over every
// base workload instead (resumable with -resume; see cmd/profck).
//
//	experiments -all
//	experiments -fig5 -threads 14
//	experiments -fig7 -table2
//	experiments -case dedup
//	experiments -sweep profiles/ -seeds 3
//	experiments -sweep profiles/ -seeds 3 -resume
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"txsampler/internal/experiments"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/telemetry"
)

func main() {
	var (
		threads  = flag.Int("threads", 14, "thread count")
		seed     = flag.Int64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for independent runs (1 = sequential); output is identical for any value")
		all      = flag.Bool("all", false, "run everything")
		fig5     = flag.Bool("fig5", false, "Figure 5: runtime overhead per benchmark")
		fig6     = flag.Bool("fig6", false, "Figure 6: overhead vs thread count")
		table1   = flag.Bool("table1", false, "Table 1: CLOMP-TM inputs")
		fig7     = flag.Bool("fig7", false, "Figure 7: CLOMP-TM decompositions")
		fig8     = flag.Bool("fig8", false, "Figure 8: application categorization")
		table2   = flag.Bool("table2", false, "Table 2: optimization speedups")
		mem      = flag.Bool("mem", false, "collector memory overhead")
		acc      = flag.Bool("accuracy", false, "attribution accuracy vs a conventional profiler")
		tsx      = flag.Bool("tsxprof", false, "record-and-replay baseline comparison (TSXProf-style)")
		caseN    = flag.String("case", "", "case study: dedup | leveldb | histo")
		sweep    = flag.String("sweep", "", "run a journaled profile campaign over every base workload into this directory")
		seeds    = flag.Int("seeds", 1, "with -sweep: fan each workload out over this many seeds starting at -seed")
		resume   = flag.Bool("resume", false, "with -sweep: replay the campaign journal and skip shards whose artifacts verify")
		retries  = flag.Int("retries", 2, "with -sweep: re-attempts per failed shard (exponential backoff)")
		shardTO  = flag.Duration("shard-timeout", 0, "with -sweep: per-shard deadline (0 = none)")
		crashAt  = flag.Int("crash-after-shards", 0, "with -sweep: exit(137) after N shards complete (crash-recovery testing)")
		dbgAddr  = flag.String("debug-addr", "", "serve net/http/pprof, expvar, and /metrics on this address")
		hybrid   = flag.String("hybrid-policy", "lock-only", "slow-path execution mode: "+strings.Join(machine.HybridPolicies(), ", "))
	)
	flag.Parse()
	if *parallel < 1 {
		log.Fatalf("-parallel must be >= 1 (got %d)", *parallel)
	}
	hpol, err := machine.ParseHybridPolicy(*hybrid)
	if err != nil {
		log.Fatalf("experiments: %v", err)
	}
	if *dbgAddr != "" {
		srv, err := telemetry.ServeDebug(*dbgAddr, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/\n", srv.Addr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	experiments.Parallel = *parallel
	experiments.Context = ctx
	experiments.Hybrid = hpol
	w := os.Stdout

	if *sweep != "" {
		var names []string
		for _, wl := range htmbench.All() {
			if wl.Suite == "opt" {
				continue
			}
			names = append(names, wl.Name)
		}
		rep, err := experiments.ProfileCampaign(w, experiments.CampaignConfig{
			Dir: *sweep, Workloads: names,
			Threads: *threads, Seed: *seed, Seeds: *seeds, Hybrid: hpol,
			Resume: *resume, Retries: *retries, Timeout: *shardTO,
			Parallel: *parallel, Context: ctx,
			CrashAfterShards: *crashAt,
		})
		switch {
		case err != nil && rep != nil && rep.Canceled:
			fmt.Fprintln(os.Stderr, "experiments: interrupted; resume with -sweep "+*sweep+" -resume")
			os.Exit(130)
		case err != nil:
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		case rep.Failed > 0:
			os.Exit(1)
		}
		return
	}

	fail := func(err error) {
		if errors.Is(err, machine.ErrCanceled) || errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(130)
		}
		log.Fatal(err)
	}

	any := false
	run := func(enabled bool, f func() error) {
		if enabled || *all {
			any = true
			if err := f(); err != nil {
				fail(err)
			}
			fmt.Fprintln(w)
		}
	}

	run(*table1, func() error { experiments.Table1(w); return nil })
	run(*fig5, func() error { _, _, err := experiments.Fig5(w, *threads, *seed); return err })
	run(*fig6, func() error { _, err := experiments.Fig6(w, *seed); return err })
	run(*fig7, func() error { _, err := experiments.Fig7(w, *threads, *seed); return err })
	run(*fig8, func() error { _, err := experiments.Fig8(w, *threads, *seed); return err })
	run(*table2, func() error { _, err := experiments.Table2(w, *threads, *seed); return err })
	run(*mem, func() error { _, err := experiments.MemOverhead(w, *threads, *seed); return err })
	run(*acc, func() error { return experiments.AccuracyComparison(w, *threads, *seed) })
	run(*tsx, func() error { return experiments.TSXProfComparison(w, *threads, *seed) })

	caseStudy := func(name string) {
		any = true
		if _, _, err := experiments.CaseStudy(w, name, *threads, *seed); err != nil {
			fail(err)
		}
	}
	switch *caseN {
	case "":
	case "dedup":
		caseStudy("parsec/dedup")
	case "leveldb":
		caseStudy("app/leveldb")
	case "histo":
		caseStudy("parboil/histo-1")
		caseStudy("parboil/histo-2")
	default:
		log.Fatalf("unknown case study %q", *caseN)
	}
	if *all && *caseN == "" {
		for _, c := range []string{"parsec/dedup", "app/leveldb", "parboil/histo-1"} {
			caseStudy(c)
			fmt.Fprintln(w)
		}
	}
	if !any {
		flag.Usage()
	}
}
