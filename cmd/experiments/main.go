// Command experiments regenerates the paper's tables and figures.
//
//	experiments -all
//	experiments -fig5 -threads 14
//	experiments -fig7 -table2
//	experiments -case dedup
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"txsampler/internal/experiments"
	"txsampler/internal/telemetry"
)

func main() {
	var (
		threads  = flag.Int("threads", 14, "thread count")
		seed     = flag.Int64("seed", 1, "workload seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for independent runs (1 = sequential); output is identical for any value")
		all      = flag.Bool("all", false, "run everything")
		fig5     = flag.Bool("fig5", false, "Figure 5: runtime overhead per benchmark")
		fig6     = flag.Bool("fig6", false, "Figure 6: overhead vs thread count")
		table1   = flag.Bool("table1", false, "Table 1: CLOMP-TM inputs")
		fig7     = flag.Bool("fig7", false, "Figure 7: CLOMP-TM decompositions")
		fig8     = flag.Bool("fig8", false, "Figure 8: application categorization")
		table2   = flag.Bool("table2", false, "Table 2: optimization speedups")
		mem      = flag.Bool("mem", false, "collector memory overhead")
		acc      = flag.Bool("accuracy", false, "attribution accuracy vs a conventional profiler")
		tsx      = flag.Bool("tsxprof", false, "record-and-replay baseline comparison (TSXProf-style)")
		caseN    = flag.String("case", "", "case study: dedup | leveldb | histo")
		dbgAddr  = flag.String("debug-addr", "", "serve net/http/pprof, expvar, and /metrics on this address")
	)
	flag.Parse()
	if *parallel < 1 {
		log.Fatalf("-parallel must be >= 1 (got %d)", *parallel)
	}
	if *dbgAddr != "" {
		srv, err := telemetry.ServeDebug(*dbgAddr, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/\n", srv.Addr)
	}
	experiments.Parallel = *parallel
	w := os.Stdout

	any := false
	run := func(enabled bool, f func() error) {
		if enabled || *all {
			any = true
			if err := f(); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintln(w)
		}
	}

	run(*table1, func() error { experiments.Table1(w); return nil })
	run(*fig5, func() error { _, _, err := experiments.Fig5(w, *threads, *seed); return err })
	run(*fig6, func() error { _, err := experiments.Fig6(w, *seed); return err })
	run(*fig7, func() error { _, err := experiments.Fig7(w, *threads, *seed); return err })
	run(*fig8, func() error { _, err := experiments.Fig8(w, *threads, *seed); return err })
	run(*table2, func() error { _, err := experiments.Table2(w, *threads, *seed); return err })
	run(*mem, func() error { _, err := experiments.MemOverhead(w, *threads, *seed); return err })
	run(*acc, func() error { return experiments.AccuracyComparison(w, *threads, *seed) })
	run(*tsx, func() error { return experiments.TSXProfComparison(w, *threads, *seed) })

	switch *caseN {
	case "":
	case "dedup":
		any = true
		if _, _, err := experiments.CaseStudy(w, "parsec/dedup", *threads, *seed); err != nil {
			log.Fatal(err)
		}
	case "leveldb":
		any = true
		if _, _, err := experiments.CaseStudy(w, "app/leveldb", *threads, *seed); err != nil {
			log.Fatal(err)
		}
	case "histo":
		any = true
		if _, _, err := experiments.CaseStudy(w, "parboil/histo-1", *threads, *seed); err != nil {
			log.Fatal(err)
		}
		if _, _, err := experiments.CaseStudy(w, "parboil/histo-2", *threads, *seed); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown case study %q", *caseN)
	}
	if *all && *caseN == "" {
		for _, c := range []string{"parsec/dedup", "app/leveldb", "parboil/histo-1"} {
			if _, _, err := experiments.CaseStudy(w, c, *threads, *seed); err != nil {
				log.Fatal(err)
			}
			fmt.Fprintln(w)
		}
	}
	if !any {
		flag.Usage()
	}
}
