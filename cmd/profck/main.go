// Command profck checks profile databases and campaign artifact
// directories for damage: torn (truncated) writes, corrupt payloads,
// version mismatches, partial (interrupted) profiles, and orphaned
// temp files from atomic saves that never committed. With -repair it
// quarantines bad databases (renaming them *.corrupt) and removes
// orphaned temp files so a campaign resume re-runs exactly the
// damaged shards.
//
//	profck profiles/
//	profck -repair profiles/
//	profck stamp_vacation_s5.json
//
// Exit status: 0 when everything is clean (partial profiles are
// reported but not errors), 1 when problems were found (even if
// repaired), 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"txsampler/internal/profile"
)

func main() {
	repair := flag.Bool("repair", false, "quarantine corrupt databases (*.corrupt) and remove orphaned temp files")
	quiet := flag.Bool("q", false, "print only the summary line")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: profck [-repair] [-q] <profile.json | directory>...")
		os.Exit(2)
	}
	out := os.Stdout
	if *quiet {
		devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
		if err == nil {
			defer devnull.Close()
			out = devnull
		}
	}
	res, err := profile.Fsck(out, flag.Args(), *repair)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profck: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(res.String())
	if res.Problems() {
		os.Exit(1)
	}
}
