// Command htmbench lists and natively runs HTMBench workloads,
// printing exact ground-truth statistics (no profiler attached). With
// -profiledir it instead runs a journaled profile campaign: each
// workload×seed shard is profiled and saved atomically to the
// directory (name: workload with / -> _, _s<seed>.json) under an
// append-only campaign.jsonl manifest, so a killed campaign resumes
// with -resume, skipping shards whose artifacts verify — the CI
// determinism and crash-recovery jobs diff those artifacts across
// runs, worker counts, quanta, and kill points. SIGINT/SIGTERM stop
// the current runs at a quantum boundary and exit 130.
//
//	htmbench -list
//	htmbench -suite stamp
//	htmbench stamp/vacation synchro/linkedlist
//	htmbench -all
//	htmbench -seed 5 -profiledir /tmp/profiles stamp/vacation
//	htmbench -seed 5 -profiledir /tmp/profiles -resume stamp/vacation
//
// With -fleet-addr it becomes a fleet-ingestion driver instead: -fleet
// N simulated nodes each profile the named workloads and upload the
// shards to a running txsamplerd, optionally through a deterministic
// fault-injecting network (-net-faults), exercising the daemon's
// retry, idempotency, and backpressure paths end to end.
//
//	htmbench -fleet 32 -fleet-addr http://127.0.0.1:8090 stamp/vacation
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"txsampler"
	"txsampler/internal/experiments"
	"txsampler/internal/faults"
	"txsampler/internal/fleet"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/telemetry"
	"txsampler/internal/tsxprof"
)

func main() {
	var (
		threads  = flag.Int("threads", 0, "thread count (0 = workload default)")
		seed     = flag.Int64("seed", 1, "workload seed")
		list     = flag.Bool("list", false, "list available workloads")
		all      = flag.Bool("all", false, "run every workload")
		suite    = flag.String("suite", "", "run every workload of one suite")
		trace    = flag.String("trace", "", "record one workload and write a Chrome trace (chrome://tracing) to this path")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for independent workloads (1 = sequential); output is identical for any value")
		fplan    = flag.String("faults", "", "fault-injection plan: a preset ("+strings.Join(faults.PresetNames(), ", ")+") or key=value pairs (see internal/faults)")
		quantum  = flag.Int("quantum", 0, "scheduler run quantum in ops (0 = machine default; results are quantum-invariant)")
		profdir  = flag.String("profiledir", "", "run a journaled profile campaign: save each shard's database to this directory")
		resume   = flag.Bool("resume", false, "with -profiledir: replay the campaign journal and skip shards whose artifacts verify")
		seeds    = flag.Int("seeds", 1, "with -profiledir: fan each workload out over this many seeds starting at -seed")
		retries  = flag.Int("retries", 2, "with -profiledir: re-attempts per failed shard (exponential backoff)")
		shardTO  = flag.Duration("shard-timeout", 0, "with -profiledir: per-shard deadline (0 = none)")
		crashAt  = flag.Int("crash-after-shards", 0, "with -profiledir: exit(137) after N shards complete (crash-recovery testing)")
		dbgAddr  = flag.String("debug-addr", "", "serve net/http/pprof, expvar, /metrics, /healthz, and /readyz on this address")
		fleetAdr = flag.String("fleet-addr", "", "upload profile shards to the txsamplerd daemon at this base URL instead of printing results")
		fleetN   = flag.Int("fleet", 4, "with -fleet-addr: simulated fleet size (nodes)")
		fleetWin = flag.Int("fleet-window", 0, "with -fleet-addr: aggregation window ordinal stamped on the shards")
		netPlan  = flag.String("net-faults", "", "with -fleet-addr: network fault plan for uploads: a preset ("+strings.Join(faults.NetPresetNames(), ", ")+") or key=value pairs (see internal/faults)")
		hybrid   = flag.String("hybrid-policy", "lock-only", "slow-path execution mode: "+strings.Join(machine.HybridPolicies(), ", "))
	)
	flag.Parse()

	hpol, err := machine.ParseHybridPolicy(*hybrid)
	if err != nil {
		fmt.Fprintf(os.Stderr, "htmbench: %v\n", err)
		os.Exit(2)
	}

	if *dbgAddr != "" {
		srv, err := telemetry.ServeDebug(*dbgAddr, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/\n", srv.Addr)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "htmbench: -parallel must be >= 1 (got %d)\n", *parallel)
		os.Exit(2)
	}

	plan, err := faults.ParsePlan(*fplan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "htmbench: invalid -faults: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, w := range htmbench.All() {
			fmt.Printf("%-28s [%s] %s\n", w.Name, w.Suite, w.Desc)
		}
		return
	}

	if *trace != "" {
		if flag.NArg() != 1 {
			log.Fatal("-trace needs exactly one workload")
		}
		events, err := tsxprof.RecordTrace(flag.Arg(0), *threads, *seed)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		if err := tsxprof.WriteChromeTrace(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d events written to %s\n", len(events), *trace)
		return
	}

	var names []string
	switch {
	case *all:
		names = htmbench.Names()
	case *suite != "":
		for _, w := range htmbench.BySuite(*suite) {
			names = append(names, w.Name)
		}
		if len(names) == 0 {
			log.Fatalf("no workloads in suite %q", *suite)
		}
	default:
		names = flag.Args()
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: htmbench [-threads N] [-seed S] (-list | -all | -suite S | <workload>...)")
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel cooperatively: in-flight machines stop at
	// their next quantum boundary, journaled progress stays on disk.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *fleetAdr != "" {
		np, err := faults.ParseNetPlan(*netPlan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htmbench: invalid -net-faults: %v\n", err)
			os.Exit(2)
		}
		rep, err := fleet.RunFleet(fleet.FleetConfig{
			BaseURL: *fleetAdr, Nodes: *fleetN, Workloads: names,
			Threads: *threads, Seed: *seed, Window: *fleetWin,
			Plan: plan, Net: np, Quantum: *quantum,
			ShardTimeout: *shardTO, Context: ctx, Log: os.Stdout,
		})
		switch {
		case err != nil && errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "htmbench: interrupted")
			os.Exit(130)
		case err != nil:
			fmt.Fprintf(os.Stderr, "htmbench: %v\n", err)
			os.Exit(1)
		case rep.Failed > 0:
			os.Exit(1)
		}
		return
	}

	if *profdir != "" {
		rep, err := experiments.ProfileCampaign(os.Stdout, experiments.CampaignConfig{
			Dir: *profdir, Workloads: names,
			Threads: *threads, Seed: *seed, Seeds: *seeds,
			Plan: plan, Quantum: *quantum, Hybrid: hpol,
			Resume: *resume, Retries: *retries, Timeout: *shardTO,
			Parallel: *parallel, Context: ctx,
			CrashAfterShards: *crashAt,
		})
		switch {
		case err != nil && rep != nil && rep.Canceled:
			fmt.Fprintln(os.Stderr, "htmbench: interrupted; resume with -profiledir "+*profdir+" -resume")
			os.Exit(130)
		case err != nil:
			fmt.Fprintf(os.Stderr, "htmbench: %v\n", err)
			os.Exit(1)
		case rep.Failed > 0:
			os.Exit(1)
		}
		return
	}

	// Each workload run is fully independent and deterministic, so
	// they shard across workers; lines are gathered and printed in
	// input order, keeping output identical for any worker count.
	lines := make([]string, len(names))
	errs := make([]error, len(names))
	workers := *parallel
	if workers > len(names) {
		workers = len(names)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(names) {
					return
				}
				lines[i], errs[i] = runOne(ctx, names[i], *threads, *seed, plan, *quantum, hpol)
			}
		}()
	}
	wg.Wait()
	for i, line := range lines {
		if errs[i] != nil {
			if errors.Is(errs[i], machine.ErrCanceled) {
				fmt.Fprintln(os.Stderr, "htmbench: interrupted")
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "htmbench: %v\n", errs[i])
			os.Exit(1)
		}
		fmt.Print(line)
	}
}

func runOne(ctx context.Context, name string, threads int, seed int64, plan faults.Plan, quantum int, hybrid machine.HybridPolicy) (string, error) {
	res, err := txsampler.Run(name, txsampler.Options{
		Threads: threads, Seed: seed, Faults: plan, Quantum: quantum, Hybrid: hybrid, Context: ctx,
	})
	if err != nil {
		return "", err
	}
	g := res.GroundTruth
	var aborts uint64
	for _, n := range g.Aborts {
		aborts += n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s cycles=%-10d commits=%-7d aborts=%-7d causes:", name, res.ElapsedCycles, g.Commits, aborts)
	for _, c := range g.AbortCauses() {
		fmt.Fprintf(&b, " %v=%d", c, g.Aborts[c])
	}
	b.WriteByte('\n')
	return b.String(), nil
}
