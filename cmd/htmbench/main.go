// Command htmbench lists and natively runs HTMBench workloads,
// printing exact ground-truth statistics (no profiler attached). With
// -profiledir it instead profiles each workload and saves the profile
// databases — the CI determinism job diffs those across runs, worker
// counts, and quanta.
//
//	htmbench -list
//	htmbench -suite stamp
//	htmbench stamp/vacation synchro/linkedlist
//	htmbench -all
//	htmbench -seed 5 -profiledir /tmp/profiles stamp/vacation
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"txsampler"
	"txsampler/internal/faults"
	"txsampler/internal/htmbench"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
	"txsampler/internal/tsxprof"
)

func main() {
	var (
		threads  = flag.Int("threads", 0, "thread count (0 = workload default)")
		seed     = flag.Int64("seed", 1, "workload seed")
		list     = flag.Bool("list", false, "list available workloads")
		all      = flag.Bool("all", false, "run every workload")
		suite    = flag.String("suite", "", "run every workload of one suite")
		trace    = flag.String("trace", "", "record one workload and write a Chrome trace (chrome://tracing) to this path")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for independent workloads (1 = sequential); output is identical for any value")
		fplan    = flag.String("faults", "", "fault-injection plan: a preset ("+strings.Join(faults.PresetNames(), ", ")+") or key=value pairs (see internal/faults)")
		quantum  = flag.Int("quantum", 0, "scheduler run quantum in ops (0 = machine default; results are quantum-invariant)")
		profdir  = flag.String("profiledir", "", "profile each workload and save its database to this directory (name: workload with / -> _, .json)")
		dbgAddr  = flag.String("debug-addr", "", "serve net/http/pprof, expvar, and /metrics on this address")
	)
	flag.Parse()

	if *dbgAddr != "" {
		srv, err := telemetry.ServeDebug(*dbgAddr, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/\n", srv.Addr)
	}
	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "htmbench: -parallel must be >= 1 (got %d)\n", *parallel)
		os.Exit(2)
	}

	plan, err := faults.ParsePlan(*fplan)
	if err != nil {
		fmt.Fprintf(os.Stderr, "htmbench: invalid -faults: %v\n", err)
		os.Exit(2)
	}

	if *list {
		for _, w := range htmbench.All() {
			fmt.Printf("%-28s [%s] %s\n", w.Name, w.Suite, w.Desc)
		}
		return
	}

	if *trace != "" {
		if flag.NArg() != 1 {
			log.Fatal("-trace needs exactly one workload")
		}
		events, err := tsxprof.RecordTrace(flag.Arg(0), *threads, *seed)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		if err := tsxprof.WriteChromeTrace(f, events); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d events written to %s\n", len(events), *trace)
		return
	}

	var names []string
	switch {
	case *all:
		names = htmbench.Names()
	case *suite != "":
		for _, w := range htmbench.BySuite(*suite) {
			names = append(names, w.Name)
		}
		if len(names) == 0 {
			log.Fatalf("no workloads in suite %q", *suite)
		}
	default:
		names = flag.Args()
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: htmbench [-threads N] [-seed S] (-list | -all | -suite S | <workload>...)")
		os.Exit(2)
	}

	// Each workload run is fully independent and deterministic, so
	// they shard across workers; lines are gathered and printed in
	// input order, keeping output identical for any worker count.
	lines := make([]string, len(names))
	errs := make([]error, len(names))
	workers := *parallel
	if workers > len(names) {
		workers = len(names)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(names) {
					return
				}
				lines[i], errs[i] = runOne(names[i], *threads, *seed, plan, *quantum, *profdir)
			}
		}()
	}
	wg.Wait()
	for i, line := range lines {
		if errs[i] != nil {
			log.Fatal(errs[i])
		}
		fmt.Print(line)
	}
}

func runOne(name string, threads int, seed int64, plan faults.Plan, quantum int, profdir string) (string, error) {
	opt := txsampler.Options{Threads: threads, Seed: seed, Faults: plan, Quantum: quantum}
	if profdir != "" {
		opt.Profile = true
		opt.Metrics = telemetry.NewRegistry()
	}
	res, err := txsampler.Run(name, opt)
	if err != nil {
		return "", err
	}
	if profdir != "" {
		path := filepath.Join(profdir, strings.ReplaceAll(name, "/", "_")+".json")
		if err := profile.FromReport(res.Report).Save(path); err != nil {
			return "", err
		}
	}
	g := res.GroundTruth
	var aborts uint64
	for _, n := range g.Aborts {
		aborts += n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s cycles=%-10d commits=%-7d aborts=%-7d causes:", name, res.ElapsedCycles, g.Commits, aborts)
	for _, c := range g.AbortCauses() {
		fmt.Fprintf(&b, " %v=%d", c, g.Aborts[c])
	}
	b.WriteByte('\n')
	return b.String(), nil
}
