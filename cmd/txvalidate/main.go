// Command txvalidate runs a campaign of randomly generated
// transactional programs (internal/progen) through the full txsampler
// pipeline and emits a machine-readable accuracy report: in-tx context
// recovery, abort-cause confusion drift, sharing-site precision/recall,
// and metamorphic-invariant violations (internal/validate).
//
//	txvalidate -n 100 -seed 1                       # report to stdout
//	txvalidate -n 200 -seed 1 -baseline VALIDATE_baseline.json
//
// The report is deterministic: equal flags produce byte-identical
// output. With -baseline, the exit status is non-zero when any
// aggregate metric regresses below the checked-in floor.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"txsampler/internal/machine"
	"txsampler/internal/validate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("txvalidate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n         = fs.Int("n", 100, "number of generated programs")
		seed      = fs.Int64("seed", 1, "first generation seed (program i uses seed+i)")
		threads   = fs.Int("threads", 0, "thread count override (0 = per-program generated count)")
		out       = fs.String("o", "", "write the JSON report to this file (default stdout)")
		baseline  = fs.String("baseline", "", "check the aggregate against this baseline file")
		hybrid    = fs.String("hybrid-policy", "lock-only", "slow-path execution mode: "+strings.Join(machine.HybridPolicies(), ", "))
		stmBias   = fs.Bool("stm-bias", false, "generate slow-path-forcing programs (hybrid-mode classification validation)")
		pmemBias  = fs.Bool("pmem-bias", false, "generate durable-region programs with the pmem tier enabled (persistence-stall classification validation)")
		elideBias = fs.Bool("elision-bias", false, "generate elidable-lock programs with elision on (per-site verdict accuracy validation)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n <= 0 {
		fmt.Fprintln(stderr, "txvalidate: -n must be positive")
		return 2
	}
	hpol, err := machine.ParseHybridPolicy(*hybrid)
	if err != nil {
		fmt.Fprintln(stderr, "txvalidate:", err)
		return 2
	}

	rep, err := validate.Campaign(*n, *seed, validate.Options{Threads: *threads, Hybrid: hpol, StmBias: *stmBias, PmemBias: *pmemBias, ElisionBias: *elideBias})
	if err != nil {
		fmt.Fprintln(stderr, "txvalidate:", err)
		return 1
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "txvalidate:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintln(stderr, "txvalidate:", err)
		return 1
	}

	if *baseline != "" {
		b, err := validate.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "txvalidate:", err)
			return 1
		}
		if err := b.Check(rep.Aggregate); err != nil {
			fmt.Fprintln(stderr, "txvalidate:", err)
			return 1
		}
		fmt.Fprintln(stderr, "txvalidate: baseline check passed")
	}
	return 0
}
