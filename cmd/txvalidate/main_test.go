package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunReportDeterministic: the CLI's acceptance contract — equal
// flags produce byte-identical, parseable JSON, on stdout and via -o.
func TestRunReportDeterministic(t *testing.T) {
	campaign := func() []byte {
		var out, errb bytes.Buffer
		if code := run([]string{"-n", "2", "-seed", "7"}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s", code, errb.String())
		}
		return out.Bytes()
	}
	a, b := campaign(), campaign()
	if !bytes.Equal(a, b) {
		t.Fatal("equal flags produced different reports")
	}
	var rep struct {
		N         int `json:"n"`
		Aggregate struct {
			ContextRecovery float64 `json:"context_recovery"`
		} `json:"aggregate"`
	}
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.N != 2 || rep.Aggregate.ContextRecovery < 0.99 {
		t.Fatalf("implausible report: %+v", rep)
	}

	path := filepath.Join(t.TempDir(), "report.json")
	var errb bytes.Buffer
	if code := run([]string{"-n", "2", "-seed", "7", "-o", path}, discard(t), &errb); code != 0 {
		t.Fatalf("-o exit %d: %s", code, errb.String())
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, onDisk) {
		t.Fatal("-o file differs from stdout report")
	}
}

// TestRunBaselineGate: a passing baseline exits 0 and says so; an
// impossible floor exits non-zero naming the metric; a missing file is
// an error.
func TestRunBaselineGate(t *testing.T) {
	dir := t.TempDir()
	ok := filepath.Join(dir, "ok.json")
	if err := os.WriteFile(ok, []byte(`{"min_context_recovery":0.9,"max_cause_drift":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var errb bytes.Buffer
	if code := run([]string{"-n", "1", "-seed", "3", "-baseline", ok}, discard(t), &errb); code != 0 {
		t.Fatalf("healthy baseline exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "baseline check passed") {
		t.Fatalf("no pass confirmation: %s", errb.String())
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"min_context_recovery":1.01,"max_cause_drift":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-n", "1", "-seed", "3", "-baseline", bad}, discard(t), &errb); code == 0 {
		t.Fatal("impossible baseline accepted")
	}
	if !strings.Contains(errb.String(), "context_recovery") {
		t.Fatalf("regression does not name the metric: %s", errb.String())
	}

	errb.Reset()
	if code := run([]string{"-n", "1", "-seed", "3", "-baseline", filepath.Join(dir, "missing.json")}, discard(t), &errb); code == 0 {
		t.Fatal("missing baseline file accepted")
	}
}

// TestRunFlagErrors: invalid flags and a non-positive -n exit 2
// without running a campaign.
func TestRunFlagErrors(t *testing.T) {
	var errb bytes.Buffer
	if code := run([]string{"-n", "0"}, discard(t), &errb); code != 2 {
		t.Fatalf("-n 0 exit %d, want 2", code)
	}
	if code := run([]string{"-definitely-not-a-flag"}, discard(t), &errb); code != 2 {
		t.Fatalf("unknown flag exit %d, want 2", code)
	}
	if code := run([]string{"-o", filepath.Join(t.TempDir(), "no", "such", "dir", "r.json"), "-n", "1"}, discard(t), &errb); code != 1 {
		t.Fatalf("uncreatable -o exit %d, want 1", code)
	}
}

func discard(t *testing.T) *bytes.Buffer {
	t.Helper()
	return &bytes.Buffer{}
}
