package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: txsampler/internal/machine
BenchmarkSchedulerOpsPerSec/1thread-native-8         	 1000000	       950.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerOpsPerSec/1thread-native-8         	 1000000	       910.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkSchedulerOpsPerSec/8threads-native-8        	  500000	      2100 ns/op
BenchmarkHandleSampleInTx-8                          	  300000	      4000 ns/op
PASS
`

func TestParseKeepsMinimumAndStripsProcSuffix(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSchedulerOpsPerSec/1thread-native":  910.5,
		"BenchmarkSchedulerOpsPerSec/8threads-native": 2100,
		"BenchmarkHandleSampleInTx":                   4000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for n, ns := range want {
		if got[n] != ns {
			t.Errorf("%s = %v ns/op, want %v", n, got[n], ns)
		}
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	got, err := parse(strings.NewReader("PASS\nok  \tpkg\t1.2s\nBenchmark without numbers\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %v from noise", got)
	}
}
