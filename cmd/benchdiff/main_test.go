package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: txsampler/internal/machine
BenchmarkSchedulerOpsPerSec/1threads-native-8        	 1000000	       950.0 ns/op	  52000000 ops/sec	       0 B/op	       0 allocs/op
BenchmarkSchedulerOpsPerSec/1threads-native-8        	 1000000	       910.5 ns/op	  51000000 ops/sec	       0 B/op	       0 allocs/op
BenchmarkSchedulerOpsPerSec/8threads-native-8        	  500000	      2100 ns/op	 340000000 ops/sec
BenchmarkHandleSampleInTx-8                          	  300000	      4000 ns/op
BenchmarkFleetMergeShardsPerSec/workers=1            	     200	   2834851 ns/op	       352.8 shards/sec	  244989 B/op	     633 allocs/op
PASS
`

func TestParseKeepsBestPerDirection(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		// ns/op keeps the minimum across repetitions...
		"BenchmarkSchedulerOpsPerSec/1threads-native": 910.5,
		"BenchmarkSchedulerOpsPerSec/8threads-native": 2100,
		"BenchmarkHandleSampleInTx":                   4000,
		"BenchmarkFleetMergeShardsPerSec/workers=1":   2834851,
		// ...throughput metrics keep the maximum, keyed by unit.
		"BenchmarkSchedulerOpsPerSec/1threads-native ops/sec":  52000000,
		"BenchmarkSchedulerOpsPerSec/8threads-native ops/sec":  340000000,
		"BenchmarkFleetMergeShardsPerSec/workers=1 shards/sec": 352.8,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d metrics, want %d: %v", len(got), len(want), got)
	}
	for n, v := range want {
		if got[n] != v {
			t.Errorf("%s = %v, want %v", n, got[n], v)
		}
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	got, err := parse(strings.NewReader("PASS\nok  \tpkg\t1.2s\nBenchmark without numbers\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %v from noise", got)
	}
}

func TestHigherBetter(t *testing.T) {
	for key, want := range map[string]bool{
		"BenchmarkX":                  false,
		"BenchmarkX ops/sec":          true,
		"BenchmarkX/sub shards/sec":   true,
		"BenchmarkX/with-sec-in-name": false,
	} {
		if got := higherBetter(key); got != want {
			t.Errorf("higherBetter(%q) = %v, want %v", key, got, want)
		}
	}
}

func TestRatioGate(t *testing.T) {
	current := map[string]float64{
		"Benchmark8t ops/sec": 340000000,
		"Benchmark1t ops/sec": 51000000,
	}
	g, err := parseRatio("Benchmark8t ops/sec|Benchmark1t ops/sec|6.5")
	if err != nil {
		t.Fatal(err)
	}
	if line, failed := g.check(current); failed {
		t.Errorf("6.67x ratio failed a 6.5 gate: %s", line)
	}
	g.min = 7.0
	if line, failed := g.check(current); !failed || !strings.HasPrefix(line, "FAIL") {
		t.Errorf("6.67x ratio passed a 7.0 gate: %s", line)
	}
	g.num = "BenchmarkMissing ops/sec"
	if _, failed := g.check(current); !failed {
		t.Error("missing numerator did not fail the gate")
	}
	if _, err := parseRatio("only|two"); err == nil {
		t.Error("malformed -ratio spec accepted")
	}
	if _, err := parseRatio("a|b|not-a-number"); err == nil {
		t.Error("non-numeric -ratio minimum accepted")
	}
}
