// Command benchdiff guards against performance regressions: it parses
// `go test -bench` text output and compares against a checked-in JSON
// baseline. Two metric families are tracked per benchmark: ns/op
// (lower is better; the best repetition is the minimum) and any
// custom "/sec" throughput metric reported via b.ReportMetric (higher
// is better; the best repetition is the maximum). Throughput entries
// are keyed "<name> <unit>" in the baseline. Any benchmark worse than
// its baseline by more than the threshold — slower, or less
// throughput — fails the run: the CI bench-regression gate.
//
// -ratio adds a scaling gate on the current run: the first metric's
// value divided by the second must reach the given minimum. CI uses it
// to hold the scheduler's 8-thread/1-thread throughput ratio on
// multicore runners.
//
//	go test -bench . -benchtime=3x -count=3 ./internal/machine | benchdiff -baseline BENCH_baseline.json
//	go test -bench . -benchtime=3x -count=3 ./... | benchdiff -baseline BENCH_baseline.json -update
//	benchdiff -ratio "Benchmark8t ops/sec|Benchmark1t ops/sec|6.5" bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line; the -N GOMAXPROCS
// suffix is stripped so baselines survive runner core-count changes.
// The tail holds alternating value/unit columns (ns/op, B/op, custom
// metrics).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.*)$`)

// higherBetter reports whether a metric key is a throughput ("/sec")
// entry, where regressions point down instead of up.
func higherBetter(key string) bool {
	i := strings.LastIndex(key, " ")
	return i >= 0 && strings.Contains(key[i+1:], "/sec")
}

// parse reads benchmark output, returning the best value observed per
// metric key: minimum ns/op (it bounds the true cost from above with
// the fewest scheduling artifacts on shared runners) and maximum
// throughput. ns/op is keyed by bare benchmark name; throughput
// metrics are keyed "<name> <unit>". Other columns (B/op, allocs/op)
// are ignored.
func parse(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			unit := fields[i+1]
			var key string
			switch {
			case unit == "ns/op":
				key = m[1]
			case strings.Contains(unit, "/sec"):
				key = m[1] + " " + unit
			default:
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad %s in %q: %w", unit, sc.Text(), err)
			}
			cur, ok := best[key]
			if !ok || (higherBetter(key) && v > cur) || (!higherBetter(key) && v < cur) {
				best[key] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return best, nil
}

// ratioGate is one -ratio constraint: current[num]/current[den] must
// be at least min.
type ratioGate struct {
	num, den string
	min      float64
}

func parseRatio(spec string) (ratioGate, error) {
	parts := strings.Split(spec, "|")
	if len(parts) != 3 {
		return ratioGate{}, fmt.Errorf("benchdiff: -ratio wants \"numerator|denominator|min\", got %q", spec)
	}
	min, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return ratioGate{}, fmt.Errorf("benchdiff: -ratio minimum %q: %w", parts[2], err)
	}
	return ratioGate{num: parts[0], den: parts[1], min: min}, nil
}

// check evaluates the gate against parsed results, returning a status
// line and whether the gate failed.
func (g ratioGate) check(current map[string]float64) (string, bool) {
	num, okN := current[g.num]
	den, okD := current[g.den]
	if !okN || !okD {
		return fmt.Sprintf("MISSING  ratio %s / %s: metric not in input", g.num, g.den), true
	}
	if den == 0 {
		return fmt.Sprintf("FAIL     ratio %s / %s: denominator is zero", g.num, g.den), true
	}
	ratio := num / den
	status := "ok"
	failed := false
	if ratio < g.min {
		status, failed = "FAIL", true
	}
	return fmt.Sprintf("%-8s ratio %s / %s = %.2f (min %.2f)", status, g.num, g.den, ratio, g.min), failed
}

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
		update    = flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
		threshold = flag.Float64("threshold", 0.25, "maximum tolerated relative regression (slower ns/op or lower /sec)")
	)
	var gates []ratioGate
	flag.Func("ratio", `scaling gate "numerator|denominator|min" on the current run (repeatable)`, func(spec string) error {
		g, err := parseRatio(spec)
		if err != nil {
			return err
		}
		gates = append(gates, g)
		return nil
	})
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline path] [-update] [-threshold r] [-ratio spec]... [bench-output.txt]")
		os.Exit(2)
	}

	current, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark results in input"))
	}

	if *update {
		out, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baseline, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d baselines to %s\n", len(current), *baseline)
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	base := make(map[string]float64)
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("benchdiff: %s: %w", *baseline, err))
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := false
	for _, n := range names {
		cur, ok := current[n]
		if !ok {
			fmt.Printf("MISSING  %-70s baseline=%.1f, not in input\n", n, base[n])
			failed = true
			continue
		}
		unit := "ns/op"
		if i := strings.LastIndex(n, " "); i >= 0 && strings.Contains(n[i+1:], "/sec") {
			unit = n[i+1:]
		}
		// Signed regression: positive means worse, in either direction.
		regression := cur/base[n] - 1
		if higherBetter(n) {
			regression = base[n]/cur - 1
		}
		status := "ok"
		if regression > *threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-8s %-70s %14.1f -> %14.1f %s (%+.1f%% vs baseline)\n",
			status, n, base[n], cur, unit, 100*(cur/base[n]-1))
	}
	for n := range current {
		if _, ok := base[n]; !ok {
			fmt.Printf("NEW      %-70s %.1f (run with -update to record)\n", n, current[n])
		}
	}
	for _, g := range gates {
		line, bad := g.check(current)
		fmt.Println(line)
		failed = failed || bad
	}
	if failed {
		fmt.Printf("benchdiff: regression beyond %.0f%% threshold or scaling gate missed\n", 100**threshold)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
