// Command benchdiff guards against performance regressions: it parses
// `go test -bench` text output, keeps the best (minimum) ns/op per
// benchmark across -count repetitions, and compares against a
// checked-in JSON baseline. Any benchmark slower than the baseline by
// more than the threshold fails the run — the CI bench-regression
// gate.
//
//	go test -bench . -benchtime=3x -count=3 ./internal/machine | benchdiff -baseline BENCH_baseline.json
//	go test -bench . -benchtime=3x -count=3 ./... | benchdiff -baseline BENCH_baseline.json -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one benchmark result line; the -N GOMAXPROCS
// suffix is stripped so baselines survive runner core-count changes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse reads benchmark output, returning the minimum ns/op observed
// per benchmark name. The minimum is the least noisy statistic on
// shared runners: it bounds the true cost from above with the fewest
// scheduling artifacts.
func parse(r io.Reader) (map[string]float64, error) {
	best := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		if cur, ok := best[m[1]]; !ok || ns < cur {
			best[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return best, nil
}

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
		update    = flag.Bool("update", false, "rewrite the baseline from the input instead of comparing")
		threshold = flag.Float64("threshold", 0.25, "maximum tolerated relative ns/op regression")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-baseline path] [-update] [-threshold r] [bench-output.txt]")
		os.Exit(2)
	}

	current, err := parse(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("benchdiff: no benchmark results in input"))
	}

	if *update {
		out, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baseline, append(out, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d baselines to %s\n", len(current), *baseline)
		return
	}

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatal(err)
	}
	base := make(map[string]float64)
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("benchdiff: %s: %w", *baseline, err))
	}

	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)

	failed := false
	for _, n := range names {
		cur, ok := current[n]
		if !ok {
			fmt.Printf("MISSING  %-60s baseline=%.1f ns/op, not in input\n", n, base[n])
			failed = true
			continue
		}
		delta := cur/base[n] - 1
		status := "ok"
		if delta > *threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-8s %-60s %10.1f -> %10.1f ns/op (%+.1f%%)\n", status, n, base[n], cur, 100*delta)
	}
	for n := range current {
		if _, ok := base[n]; !ok {
			fmt.Printf("NEW      %-60s %.1f ns/op (run with -update to record)\n", n, current[n])
		}
	}
	if failed {
		fmt.Printf("benchdiff: regression beyond %.0f%% threshold\n", 100**threshold)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
