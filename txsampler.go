// Package txsampler is a full reproduction of "Lightweight Hardware
// Transactional Memory Profiling" (PPoPP 2019) as a Go library.
//
// Because Go exposes neither TSX intrinsics nor safe signal-based PMU
// sampling, the system runs on a deterministic simulated multicore
// machine (internal/machine) with a cache-coherence-based HTM, a PMU
// whose counter overflows abort transactions, and Last Branch Records.
// On top of it, the TxSampler profiler (internal/core), offline
// analyzer (internal/analyzer), and decision-tree model
// (internal/decision) are implemented exactly as the paper describes,
// and the HTMBench suite (internal/htmbench) supplies 30+ workloads
// plus the optimized variants of Table 2.
//
// This package is the public surface: run a benchmark natively or
// under the profiler and obtain the merged report and optimization
// advice.
//
//	res, err := txsampler.Run("parsec/dedup", txsampler.Options{Profile: true})
//	res.Report.Render(os.Stdout)
//	res.Advice.Render(os.Stdout)
package txsampler

import (
	"context"
	"errors"
	"fmt"
	"time"

	"txsampler/internal/analyzer"
	"txsampler/internal/cache"
	"txsampler/internal/core"
	"txsampler/internal/decision"
	"txsampler/internal/faults"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/pmem"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
	"txsampler/internal/telemetry"
)

// BenchCache returns the L1 geometry used for benchmark runs: the
// workloads are scaled down ~100x from the originals' native inputs,
// so the simulated L1 (32 sets x 4 ways x 64B = 8 KiB) is scaled to
// match — transactional footprints relate to HTM capacity as they do
// on the paper's 14-core Broadwell.
func BenchCache() cache.Config {
	return cache.Config{Sets: 32, Ways: 4, HitLatency: 4, MissLatency: 60, RemoteLatency: 90}
}

// DefaultPeriods returns the sampling periods benchmark profiling
// uses; see pmu.DefaultPeriods.
func DefaultPeriods() pmu.Periods { return pmu.DefaultPeriods() }

// Options configures a run.
type Options struct {
	// Threads overrides the workload's default thread count (14).
	Threads int
	// Seed makes runs reproducible; runs with equal options are
	// bit-identical.
	Seed int64
	// Profile attaches the TxSampler collector. A native run (false)
	// has no PMU interrupts and no profiling perturbation.
	Profile bool
	// Periods overrides DefaultPeriods when profiling.
	Periods pmu.Periods
	// Cache overrides BenchCache.
	Cache cache.Config
	// HandlerCost (cycles per delivered sample) defaults to the
	// machine's 800.
	HandlerCost uint64
	// LBRDepth defaults to 16 (Haswell/Broadwell).
	LBRDepth int
	// SkipCheck disables the workload's result validation.
	SkipCheck bool
	// Policy overrides the RTM retry policy of the workload's global
	// lock (nil = rtm.DefaultPolicy), for the ablation studies.
	Policy *rtm.Policy
	// Hybrid selects the slow-path execution mode of every rtm.Lock in
	// the workload (zero = HybridLockOnly, the classic global-lock
	// fallback). See machine.HybridPolicy.
	Hybrid machine.HybridPolicy
	// Elision turns lock elision on: every rtm.ElidedLock in the
	// workload speculates before acquiring (zero = ElisionOff, plain
	// lock acquisition). See machine.ElisionMode.
	Elision machine.ElisionMode
	// Thresholds tune the decision tree.
	Thresholds decision.Thresholds
	// Faults enables deterministic fault injection (chaos profiling);
	// the zero plan injects nothing. See the faults package and
	// faults.ParsePlan for the -faults flag syntax.
	Faults faults.Plan
	// Pmem enables the simulated persistent-memory tier (undo logging,
	// durable-commit persist epilogue, crash injection via Faults).
	// The zero value is disabled and leaves runs bit-identical to
	// earlier versions.
	Pmem pmem.Config
	// Quantum overrides the scheduler run quantum (0 = the machine
	// default; 1 = per-op scheduling, a debug knob). The schedule is
	// quantum-invariant — results are bit-identical for any value.
	Quantum int
	// Trace, when non-nil, records scheduler, transaction, PMU, and
	// analyzer-phase events on virtual clocks; export with
	// Trace.WriteChromeTrace. The trace is deterministic for a seed
	// and invariant to Quantum.
	Trace *telemetry.Tracer
	// Metrics, when non-nil, receives the profiler's self-metrics
	// (machine, collector, analyzer); the snapshot is attached to
	// Report.Self and rendered as the "Profiler self-report".
	Metrics *telemetry.Registry
	// Context, when non-nil, cancels the run cooperatively at a
	// scheduler quantum boundary (see machine.Config.Context). A
	// canceled profiled run returns BOTH a non-nil *Result — whose
	// Report is marked Partial and safe to persist — and an error
	// wrapping ErrCanceled.
	Context context.Context
}

// ErrCanceled reports a run stopped cooperatively by Options.Context
// (SIGINT/SIGTERM or a deadline); alias of machine.ErrCanceled.
var ErrCanceled = machine.ErrCanceled

// Result is the outcome of one run.
type Result struct {
	Workload string
	Threads  int

	// ElapsedCycles is the makespan (max thread clock); TotalCycles
	// sums all thread clocks (the exact work W).
	ElapsedCycles uint64
	TotalCycles   uint64

	// GroundTruth is the machine's exact commit/abort instrumentation.
	GroundTruth machine.GroundTruth

	// Report, Advice, and CollectorBytes are set for profiled runs.
	Report         *analyzer.Report
	Advice         *decision.Advice
	CollectorBytes int

	// Collector is the live collector of a profiled run (nil for
	// native runs). The validation harness (internal/validate)
	// re-analyzes it under profile permutations to check that profile
	// coalescing is order-independent.
	Collector *core.Collector
}

// Names lists all registered HTMBench workloads.
func Names() []string { return htmbench.Names() }

// Lookup returns a registered workload by name.
func Lookup(name string) (*htmbench.Workload, error) { return htmbench.Get(name) }

// Run builds and executes the named workload.
func Run(name string, o Options) (*Result, error) {
	w, err := htmbench.Get(name)
	if err != nil {
		return nil, err
	}
	return RunWorkload(w, o)
}

// RunWorkload builds and executes a workload (registered or not).
func RunWorkload(w *htmbench.Workload, o Options) (*Result, error) {
	threads := o.Threads
	if threads == 0 {
		threads = w.DefaultThreads
	}
	cacheCfg := o.Cache
	if cacheCfg == (cache.Config{}) {
		cacheCfg = BenchCache()
	}
	cfg := machine.Config{
		Threads:     threads,
		Cache:       cacheCfg,
		LBRDepth:    o.LBRDepth,
		Seed:        o.Seed,
		HandlerCost: o.HandlerCost,
		StartSkew:   1024,
		Faults:      o.Faults,
		Pmem:        o.Pmem,
		Quantum:     o.Quantum,
		Trace:       o.Trace,
		Hybrid:      o.Hybrid,
		Elision:     o.Elision,
		Context:     o.Context,
	}
	if o.Profile {
		cfg.Periods = o.Periods
		if !cfg.Sampling() {
			cfg.Periods = DefaultPeriods()
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	m := machine.New(cfg)
	var col *core.Collector
	if o.Profile {
		col = core.Attach(m)
	}
	inst := w.BuildInstance(m, o.Policy)
	o.Trace.BeginPhase("run")
	runStart := time.Now()
	err := m.Run(inst.Bodies...)
	runWall := time.Since(runStart)
	o.Trace.EndPhase("run")
	canceled := err != nil && errors.Is(err, machine.ErrCanceled)
	if err != nil && !canceled {
		return nil, fmt.Errorf("%s: %w", w.Name, err)
	}
	// A canceled run skips result validation: the workload stopped at an
	// arbitrary quantum boundary, so its invariants need not hold yet.
	if err == nil && inst.Check != nil && !o.SkipCheck {
		if cerr := inst.Check(m); cerr != nil {
			return nil, fmt.Errorf("%s: result check failed: %w", w.Name, cerr)
		}
	}
	res := &Result{
		Workload:      w.Name,
		Threads:       threads,
		ElapsedCycles: m.Elapsed(),
		TotalCycles:   m.TotalCycles(),
		GroundTruth:   m.GroundTruth(),
	}
	if col != nil {
		res.Report = analyzer.AnalyzeInstrumented(w.Name, col, o.Trace, o.Metrics)
		res.Report.Quality.Injected = m.FaultStats()
		res.Report.Partial = canceled
		res.Advice = decision.Evaluate(res.Report, o.Thresholds)
		res.CollectorBytes = col.MemoryFootprint()
		res.Collector = col
	}
	if o.Metrics != nil {
		m.PublishMetrics(o.Metrics)
		if col != nil {
			col.PublishMetrics(o.Metrics)
		}
		o.Metrics.Gauge("run.wall_ns", true).Set(uint64(runWall))
		if res.Report != nil {
			res.Report.Self = o.Metrics.Snapshot(true)
		}
	}
	if canceled {
		// The partial Result is still returned so callers can flush a
		// Partial-stamped profile before exiting.
		return res, fmt.Errorf("%s: %w", w.Name, err)
	}
	return res, nil
}

// Accuracy is the attribution-accuracy comparison between TxSampler
// and a conventional stack-only profiler (§9); see core.Accuracy.
type Accuracy = core.Accuracy

// RunWithAccuracy profiles the named workload while scoring, on every
// sample, TxSampler's LBR-based in-transaction attribution against
// what a conventional profiler (bare unwound stack, no abort bit)
// would report — both judged by the machine's hidden ground truth.
func RunWithAccuracy(name string, o Options) (*Result, Accuracy, error) {
	w, err := htmbench.Get(name)
	if err != nil {
		return nil, Accuracy{}, err
	}
	return RunWorkloadWithAccuracy(w, o)
}

// RunWorkloadWithAccuracy is RunWithAccuracy for a workload that need
// not be registered — the validation harness scores generated
// transactional programs (internal/progen) through it. The returned
// Result carries the full profiled report, so a single run yields both
// the profiler's view and the ground-truth accuracy judgment, and the
// run itself is bit-identical to an ordinary profiled run with the
// same options (the probe only observes).
func RunWorkloadWithAccuracy(w *htmbench.Workload, o Options) (*Result, Accuracy, error) {
	threads := o.Threads
	if threads == 0 {
		threads = w.DefaultThreads
	}
	cacheCfg := o.Cache
	if cacheCfg == (cache.Config{}) {
		cacheCfg = BenchCache()
	}
	cfg := machine.Config{
		Threads: threads, Cache: cacheCfg, LBRDepth: o.LBRDepth,
		Seed: o.Seed, HandlerCost: o.HandlerCost, StartSkew: 1024,
		Periods: o.Periods, Faults: o.Faults, Pmem: o.Pmem,
		Quantum: o.Quantum, Trace: o.Trace, Hybrid: o.Hybrid,
		Elision: o.Elision, Context: o.Context,
	}
	if !cfg.Sampling() {
		cfg.Periods = DefaultPeriods()
	}
	if err := cfg.Validate(); err != nil {
		return nil, Accuracy{}, fmt.Errorf("%s: %w", w.Name, err)
	}
	m := machine.New(cfg)
	col := core.NewCollector(threads, cfg.Periods, 0)
	probe := core.NewAccuracyProbe(col)
	m.SetHandler(probe)
	inst := w.BuildInstance(m, o.Policy)
	if err := m.Run(inst.Bodies...); err != nil {
		return nil, Accuracy{}, fmt.Errorf("%s: %w", w.Name, err)
	}
	if inst.Check != nil && !o.SkipCheck {
		if cerr := inst.Check(m); cerr != nil {
			return nil, Accuracy{}, fmt.Errorf("%s: result check failed: %w", w.Name, cerr)
		}
	}
	res := &Result{
		Workload: w.Name, Threads: threads,
		ElapsedCycles: m.Elapsed(), TotalCycles: m.TotalCycles(),
		GroundTruth: m.GroundTruth(),
	}
	res.Report = analyzer.AnalyzeInstrumented(w.Name, col, o.Trace, o.Metrics)
	res.Report.Quality.Injected = m.FaultStats()
	res.Advice = decision.Evaluate(res.Report, o.Thresholds)
	res.CollectorBytes = col.MemoryFootprint()
	res.Collector = col
	if o.Metrics != nil {
		m.PublishMetrics(o.Metrics)
		col.PublishMetrics(o.Metrics)
		res.Report.Self = o.Metrics.Snapshot(true)
	}
	return res, probe.Accuracy, nil
}

// Overhead runs a workload natively and profiled with identical seeds
// and returns (native, profiled, overhead) where overhead is the
// relative makespan increase — the Figure 5 measurement.
func Overhead(name string, o Options) (native, profiled *Result, overhead float64, err error) {
	o.Profile = false
	native, err = Run(name, o)
	if err != nil {
		return nil, nil, 0, err
	}
	o.Profile = true
	profiled, err = Run(name, o)
	if err != nil {
		return nil, nil, 0, err
	}
	overhead = float64(profiled.ElapsedCycles)/float64(native.ElapsedCycles) - 1
	return native, profiled, overhead, nil
}

// Speedup runs base and optimized workloads under identical native
// conditions and returns baseElapsed/optElapsed — the Table 2
// measurement.
func Speedup(base, optimized string, o Options) (float64, error) {
	o.Profile = false
	b, err := Run(base, o)
	if err != nil {
		return 0, err
	}
	p, err := Run(optimized, o)
	if err != nil {
		return 0, err
	}
	return float64(b.ElapsedCycles) / float64(p.ElapsedCycles), nil
}
