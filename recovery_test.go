package txsampler_test

// Kill-resume determinism and cancellation chaos, end to end: an
// interrupted-and-resumed campaign must produce byte-identical
// artifacts to an uninterrupted one, every artifact it leaves behind
// must pass verification at every point (a cancellation never tears a
// database), and the analysis read back from resumed artifacts must
// match exactly.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"txsampler"
	"txsampler/internal/experiments"
	"txsampler/internal/faults"
	"txsampler/internal/machine"
	"txsampler/internal/pmem"
	"txsampler/internal/profile"
)

var recoveryWorkloads = []string{"micro/low-abort", "micro/true-sharing"}

func runCampaign(t *testing.T, dir string, resume bool, ctx context.Context) error {
	t.Helper()
	_, err := experiments.ProfileCampaign(io.Discard, experiments.CampaignConfig{
		Dir: dir, Workloads: recoveryWorkloads,
		Threads: 4, Seed: 11, Seeds: 2,
		Resume: resume, Parallel: 2, Context: ctx,
	})
	return err
}

// diffDirs compares every artifact (journals excluded: parallel
// workers interleave their lines in completion order).
func diffDirs(t *testing.T, a, b string) {
	t.Helper()
	ents, err := os.ReadDir(a)
	if err != nil {
		t.Fatal(err)
	}
	compared := 0
	for _, e := range ents {
		if e.Name() == experiments.JournalName {
			continue
		}
		wa, err := os.ReadFile(filepath.Join(a, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		wb, err := os.ReadFile(filepath.Join(b, e.Name()))
		if err != nil {
			t.Fatalf("artifact missing after resume: %v", err)
		}
		if !bytes.Equal(wa, wb) {
			t.Fatalf("%s differs between uninterrupted and resumed campaigns", e.Name())
		}
		compared++
	}
	if compared != len(recoveryWorkloads)*2 {
		t.Fatalf("compared %d artifacts, want %d", compared, len(recoveryWorkloads)*2)
	}
}

func fsckClean(t *testing.T, dir string) {
	t.Helper()
	res, err := profile.Fsck(io.Discard, []string{dir}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Problems() {
		t.Fatalf("campaign directory not clean: %+v", res)
	}
}

func TestCampaignInterruptResumeByteIdentical(t *testing.T) {
	full := t.TempDir()
	if err := runCampaign(t, full, false, nil); err != nil {
		t.Fatal(err)
	}

	// Interrupt a fresh campaign at an arbitrary point (wall-clock
	// cancellation lands at whatever quantum boundary comes next), then
	// resume it to completion.
	interrupted := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	err := runCampaign(t, interrupted, false, ctx)
	cancel()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal(err)
	}
	// Whatever the kill left behind is already consistent: artifacts
	// are written atomically, so none of them is torn.
	fsckClean(t, interrupted)
	if err := runCampaign(t, interrupted, true, nil); err != nil {
		t.Fatal(err)
	}

	fsckClean(t, interrupted)
	diffDirs(t, full, interrupted)

	// The analysis read back through the store matches too — resumed
	// campaigns report identical classification tables.
	for _, e := range mustReadDir(t, full) {
		if e.Name() == experiments.JournalName {
			continue
		}
		dbFull, err := profile.Load(filepath.Join(full, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		dbRes, err := profile.Load(filepath.Join(interrupted, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		rf, rr := dbFull.Report(), dbRes.Report()
		if rf.Categorize() != rr.Categorize() || rf.Rcs() != rr.Rcs() || rf.AbortCommitRatio() != rr.AbortCommitRatio() {
			t.Fatalf("%s: classification diverged after resume", e.Name())
		}
	}
}

// TestPmemRecoveryReplayEquivalence: whatever a run leaves in the
// persist domain — crash-free or mid-run crash storms — is
// crash-consistent at rest. Replaying recovery over the surviving undo
// log must be a verdict-identical fixed point: Clean (every surviving
// record belongs to a committed transaction), byte-identical image
// before and after, and a second replay must return the exact same
// summary. This is the reboot-after-reboot equivalence a real
// recovery daemon relies on.
func TestPmemRecoveryReplayEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan faults.Plan
	}{
		{"clean", faults.Plan{}},
		{"mid-log-storm", faults.Plan{PmemCrashPoint: faults.PmemCrashMidLog, PmemCrashEvery: 4}},
		{"torn-tail-storm", faults.Plan{PmemCrashPoint: faults.PmemCrashTornTail, PmemCrashEvery: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, w := range pmemWorkloads(t) {
				m := machine.New(machine.Config{
					Threads: pmemTestThreads, Cache: txsampler.BenchCache(),
					Seed: 13, StartSkew: 1024, Faults: tc.plan,
					Pmem: pmem.Config{Enabled: true},
				})
				inst := w.BuildInstance(m, nil)
				if err := m.Run(inst.Bodies...); err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				if err := inst.Check(m); err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				d := m.Pmem()
				before := d.Fingerprint()
				rec := pmem.Recover(d.Log(), d.Image())
				if !rec.Clean() {
					t.Fatalf("%s: at-rest log not clean after run: %+v", w.Name, rec)
				}
				if got := d.Fingerprint(); got != before {
					t.Fatalf("%s: recovery replay moved the at-rest image (%#x vs %#x)", w.Name, got, before)
				}
				again := pmem.Recover(d.Log(), d.Image())
				if again != rec {
					t.Fatalf("%s: second replay verdict differs: %+v vs %+v", w.Name, again, rec)
				}
				if got := d.Fingerprint(); got != before {
					t.Fatalf("%s: second replay moved the image", w.Name)
				}
			}
		})
	}
}

func mustReadDir(t *testing.T, dir string) []os.DirEntry {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return ents
}

// TestCancellationChaosNeverTearsDatabase cancels profiled runs at
// random wall-clock points — which land on random quantum boundaries —
// and checks that every flushed partial database verifies cleanly.
func TestCancellationChaosNeverTearsDatabase(t *testing.T) {
	dir := t.TempDir()
	for i, delay := range []time.Duration{
		0, 50 * time.Microsecond, 200 * time.Microsecond,
		time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
	} {
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		res, err := txsampler.Run("stamp/labyrinth", txsampler.Options{
			Threads: 8, Seed: int64(i), Profile: true, Context: ctx,
		})
		cancel()
		switch {
		case err == nil:
			if res.Report.Partial {
				t.Fatalf("delay %v: completed run marked Partial", delay)
			}
		case errors.Is(err, txsampler.ErrCanceled):
			if res == nil || res.Report == nil || !res.Report.Partial {
				t.Fatalf("delay %v: canceled run returned no partial report", delay)
			}
		default:
			t.Fatalf("delay %v: %v", delay, err)
		}
		path := filepath.Join(dir, "chaos.json")
		if err := profile.FromReport(res.Report).Save(path); err != nil {
			t.Fatalf("delay %v: save: %v", delay, err)
		}
		info, err := profile.Verify(path)
		if err != nil {
			t.Fatalf("delay %v: flushed database does not verify: %v", delay, err)
		}
		if info.Partial != res.Report.Partial {
			t.Fatalf("delay %v: partial stamp mismatch", delay)
		}
	}
}
