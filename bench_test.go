package txsampler_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`), plus
// ablation benchmarks for the design choices DESIGN.md calls out.
// Each benchmark iteration runs the full experiment, so b.N stays at 1
// under the default benchtime; the headline numbers are attached as
// custom metrics.

import (
	"io"
	"strings"
	"testing"

	"txsampler"
	"txsampler/internal/experiments"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

const (
	benchThreads = 14
	benchSeed    = 1
)

// BenchmarkFig5Overhead regenerates Figure 5: TxSampler's runtime
// overhead on every base HTMBench program.
func BenchmarkFig5Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, geo, err := experiments.Fig5(io.Discard, benchThreads, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*geo, "overhead-%")
		b.ReportMetric(float64(len(rows)), "programs")
	}
}

// BenchmarkFig6Threads regenerates Figure 6: mean STAMP overhead at
// 1/2/4/8/14 threads.
func BenchmarkFig6Threads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Fig6(io.Discard, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*out[1], "overhead-1t-%")
		b.ReportMetric(100*out[14], "overhead-14t-%")
	}
}

// BenchmarkTable1Fig7Clomp regenerates Table 1 / Figure 7: the
// CLOMP-TM characterization across the six configurations.
func BenchmarkTable1Fig7Clomp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(io.Discard, benchThreads, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		// Headline shape checks as metrics: input 2's lock waiting and
		// input 3's capacity share (of large-transaction aborts).
		for _, r := range rows {
			switch r.Name {
			case "clomp/large-2":
				b.ReportMetric(100*r.Twait, "large2-wait-%")
			case "clomp/large-3":
				total := r.Conflicts + r.Capacity + r.Sync
				if total > 0 {
					b.ReportMetric(100*float64(r.Capacity)/float64(total), "large3-capacity-%")
				}
			}
		}
	}
}

// BenchmarkFig8Categorize regenerates Figure 8: the Type I/II/III
// program categorization, reporting agreement with the paper.
func BenchmarkFig8Categorize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(io.Discard, benchThreads, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		match, total := 0, 0
		for _, r := range rows {
			if r.Expected != 0 {
				total++
				if r.Expected == r.Category {
					match++
				}
			}
		}
		b.ReportMetric(float64(match), "matches")
		b.ReportMetric(float64(total), "placed")
	}
}

// BenchmarkTable2Speedups regenerates Table 2: the speedup of every
// optimization pair.
func BenchmarkTable2Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(io.Discard, benchThreads, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		wins := 0
		for _, r := range rows {
			if r.Speedup > 1 {
				wins++
			}
			b.ReportMetric(r.Speedup, strings.ReplaceAll(r.Code, " ", "-")+"-x")
		}
		b.ReportMetric(float64(wins), "wins")
	}
}

// BenchmarkCaseStudies regenerates the §8 case-study profiles.
func BenchmarkCaseStudies(b *testing.B) {
	for _, name := range []string{"parsec/dedup", "app/leveldb", "parboil/histo-1"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := experiments.CaseStudy(io.Discard, name, benchThreads, benchSeed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMemOverhead regenerates §7.1's collector memory bound.
func BenchmarkMemOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		maxPer, err := experiments.MemOverhead(io.Discard, benchThreads, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(maxPer)/1024, "max-KiB-per-thread")
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

// BenchmarkAblationRetries sweeps the retry budget on a contended
// workload: too few retries push everything through the serial
// fallback; the paper's 5 is near the knee.
func BenchmarkAblationRetries(b *testing.B) {
	for _, retries := range []int{0, 1, 5, 8} {
		b.Run(map[int]string{0: "r0", 1: "r1", 5: "r5", 8: "r8"}[retries], func(b *testing.B) {
			p := rtm.DefaultPolicy()
			p.MaxRetries = retries
			for i := 0; i < b.N; i++ {
				res, err := txsampler.Run("stamp/vacation", txsampler.Options{Threads: benchThreads, Seed: benchSeed, Policy: &p})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ElapsedCycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationCapacityRetry compares the paper's
// retry-on-capacity policy with TSX's retry-bit heuristic (immediate
// fallback) on the capacity-prone CLOMP input 3.
func BenchmarkAblationCapacityRetry(b *testing.B) {
	for _, retry := range []bool{true, false} {
		name := "retry"
		if !retry {
			name = "fallback"
		}
		b.Run(name, func(b *testing.B) {
			p := rtm.DefaultPolicy()
			p.RetryOnCapacity = retry
			for i := 0; i < b.N; i++ {
				res, err := txsampler.Run("clomp/large-3", txsampler.Options{Threads: benchThreads, Seed: benchSeed, Policy: &p})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ElapsedCycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationBackoff compares retry backoff on versus off on a
// hot-spot workload; without it, colliding retries cascade into the
// fallback lock.
func BenchmarkAblationBackoff(b *testing.B) {
	for _, base := range []int{0, 30} {
		name := "off"
		if base > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			p := rtm.DefaultPolicy()
			p.BackoffBase = base
			for i := 0; i < b.N; i++ {
				res, err := txsampler.Run("stamp/kmeans", txsampler.Options{Threads: benchThreads, Seed: benchSeed, Policy: &p})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.ElapsedCycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationLBRDepth measures in-transaction path truncation at
// LBR depths 8, 16 (Haswell/Broadwell), and 32 (Skylake+), §3.4.
func BenchmarkAblationLBRDepth(b *testing.B) {
	for _, depth := range []int{8, 16, 32} {
		b.Run(map[int]string{8: "d8", 16: "d16", 32: "d32"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := txsampler.Run("micro/deep-calls", txsampler.Options{
					Threads: benchThreads, Seed: benchSeed, Profile: true, LBRDepth: depth,
				})
				if err != nil {
					b.Fatal(err)
				}
				tot := res.Report.Totals
				samples := float64(tot.W + tot.AbortSamples + tot.CommitSamples + tot.MemSamples)
				if samples > 0 {
					b.ReportMetric(100*float64(tot.Truncated)/samples, "truncated-%")
				}
			}
		})
	}
}

// BenchmarkAblationSamplingPeriod sweeps the cycles sampling period:
// denser sampling costs overhead, sparser sampling costs profile
// resolution (§6's 50-200 samples/s guidance).
func BenchmarkAblationSamplingPeriod(b *testing.B) {
	for _, period := range []uint64{2_000, 10_000, 50_000} {
		b.Run(map[uint64]string{2_000: "p2k", 10_000: "p10k", 50_000: "p50k"}[period], func(b *testing.B) {
			periods := pmu.DefaultPeriods()
			periods[pmu.Cycles] = period
			for i := 0; i < b.N; i++ {
				native, prof, ov, err := txsampler.Overhead("stamp/vacation", txsampler.Options{
					Threads: benchThreads, Seed: benchSeed, Periods: periods,
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = native
				b.ReportMetric(100*ov, "overhead-%")
				b.ReportMetric(float64(prof.Report.Totals.W)/float64(benchThreads), "cycles-samples-per-thread")
			}
		})
	}
}
