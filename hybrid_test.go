package txsampler_test

// Cross-policy equivalence suite: the same workload at the same seed
// must compute the same result under every hybrid execution mode. For
// deterministic-result workloads the final memory image itself must be
// byte-identical — which also proves the software path leaves no
// metadata residue (word locks, the active word, undo state) behind.

import (
	"testing"

	"txsampler"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/progen"
)

func allPolicies() []machine.HybridPolicy {
	return []machine.HybridPolicy{
		machine.HybridLockOnly,
		machine.HybridStmFallback,
		machine.HybridSerializeOnConflict,
		machine.HybridSandboxed,
	}
}

// runNative executes a workload natively under one policy, runs its
// own Check, and returns the final memory fingerprint.
func runNative(t *testing.T, w *htmbench.Workload, seed int64, pol machine.HybridPolicy) uint64 {
	t.Helper()
	m := machine.New(machine.Config{
		Threads: w.DefaultThreads, Cache: txsampler.BenchCache(),
		Seed: seed, StartSkew: 1024, Hybrid: pol,
	})
	inst := w.BuildInstance(m, nil)
	if err := m.Run(inst.Bodies...); err != nil {
		t.Fatalf("%s [%v]: %v", w.Name, pol, err)
	}
	if inst.Check != nil {
		if err := inst.Check(m); err != nil {
			t.Fatalf("%s [%v]: result check failed: %v", w.Name, pol, err)
		}
	}
	return m.Mem.Fingerprint()
}

// TestHybridPoliciesProgenEquivalence runs generated programs — both
// the default mix and the slow-path-forcing STM bias — under all four
// policies. A generated program's check pins every program word, so
// fingerprint equality on top of it is precisely the no-metadata-residue
// assertion.
func TestHybridPoliciesProgenEquivalence(t *testing.T) {
	for _, bias := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			p := progen.Generate(progen.Config{Seed: seed, StmBias: bias})
			w := p.Workload()
			base := runNative(t, w, seed, machine.HybridLockOnly)
			for _, pol := range allPolicies()[1:] {
				if fp := runNative(t, w, seed, pol); fp != base {
					t.Errorf("%s: final memory under %v differs from lock-only (%#x vs %#x)",
						p.Name, pol, fp, base)
				}
			}
		}
	}
}

// equivalenceWorkloads is the HTMBench subset whose final memory is a
// pure function of the committed operations (no order-dependent layout
// like tree shapes or arrival-order logs), so the image must be
// byte-identical across execution modes, not merely check-clean.
var equivalenceWorkloads = []string{
	"micro/low-abort",
	"micro/true-sharing",
	"micro/false-sharing",
	"micro/capacity",
	"micro/sync-abort",
	"micro/deep-calls",
	"micro/mixed",
	"clomp/small-1",
	"clomp/small-2",
	"clomp/small-3",
	"app/hle-counter",
	"parboil/histo-1",
	"splash2/water",
}

func TestHybridPoliciesWorkloadEquivalence(t *testing.T) {
	for _, name := range equivalenceWorkloads {
		w, err := htmbench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			base := runNative(t, w, 1, machine.HybridLockOnly)
			for _, pol := range allPolicies()[1:] {
				if fp := runNative(t, w, 1, pol); fp != base {
					t.Errorf("final memory under %v differs from lock-only (%#x vs %#x)", pol, fp, base)
				}
			}
		})
	}
}

// TestHybridPoliciesProfiledRunChecks drives one contended workload
// through the full profiled pipeline under every policy: the workload
// check and the profiler must both be happy with the software path's
// samples in the stream.
func TestHybridPoliciesProfiledRunChecks(t *testing.T) {
	for _, pol := range allPolicies() {
		res, err := txsampler.Run("micro/true-sharing", txsampler.Options{
			Seed: 2, Profile: true, Hybrid: pol,
		})
		if err != nil {
			t.Fatalf("[%v]: %v", pol, err)
		}
		if res.Report == nil {
			t.Fatalf("[%v]: no report", pol)
		}
	}
}
