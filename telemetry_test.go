package txsampler_test

// End-to-end telemetry determinism: for a fixed seed the Chrome trace
// and the deterministic metrics snapshot must be byte-identical across
// runs and invariant to the scheduler quantum, because every recorded
// value is virtual (cycle clocks, sequence clocks, exact counters) —
// the property the CI determinism job enforces on whole profile
// databases.

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"txsampler"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

// traceRun profiles the workload with a tracer and registry attached
// and returns the exported trace bytes, the deterministic snapshot,
// and the report.
func traceRun(t *testing.T, name string, seed int64, quantum int) ([]byte, []telemetry.MetricValue, *txsampler.Result) {
	t.Helper()
	tr := telemetry.NewTracer(0)
	reg := telemetry.NewRegistry()
	res, err := txsampler.Run(name, txsampler.Options{
		Seed: seed, Threads: 4, Profile: true, Quantum: quantum, Trace: tr, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dropped() > 0 {
		t.Fatalf("trace ring overflowed (%d dropped); grow the capacity for this workload", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reg.Snapshot(false), res
}

func TestTraceDeterministicAndQuantumInvariant(t *testing.T) {
	const seed = 11
	trace1, snap1, _ := traceRun(t, "synchro/linkedlist", seed, 0)
	trace2, snap2, _ := traceRun(t, "synchro/linkedlist", seed, 0)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("same-seed runs exported different traces")
	}
	if !reflect.DeepEqual(snap1, snap2) {
		t.Fatalf("same-seed runs produced different snapshots:\n%v\n%v", snap1, snap2)
	}
	traceQ, snapQ, _ := traceRun(t, "synchro/linkedlist", seed, 1)
	if !bytes.Equal(trace1, traceQ) {
		t.Fatal("trace changed under per-op quantum; run-slice boundaries must be quantum-invariant")
	}
	if !reflect.DeepEqual(snap1, snapQ) {
		t.Fatal("metrics snapshot changed under per-op quantum")
	}
}

func TestTraceExportIsValidChromeJSON(t *testing.T) {
	trace, _, _ := traceRun(t, "synchro/linkedlist", 3, 0)
	var out struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	kinds := map[string]bool{}
	for _, ev := range out.TraceEvents {
		if ev.Phase != "X" && ev.Phase != "i" && ev.Phase != "M" {
			t.Fatalf("unexpected event phase %q", ev.Phase)
		}
		kinds[ev.Name] = true
	}
	// A profiled run must show scheduler tenures, transaction regions,
	// PMU interrupts, and the frontend phases.
	for _, want := range []string{"run", "tx", "analyze:copy", "analyze:reduce"} {
		if !kinds[want] {
			t.Fatalf("trace has no %q events; got %v", want, kinds)
		}
	}
}

func TestSelfReportSerializedWithoutVolatileEntries(t *testing.T) {
	_, snap, res := traceRun(t, "synchro/linkedlist", 5, 0)
	if len(res.Report.Self) == 0 {
		t.Fatal("report has no self-metrics")
	}
	db := profile.FromReport(res.Report)
	if len(db.Telemetry) != len(snap) {
		t.Fatalf("database telemetry has %d entries, deterministic snapshot has %d", len(db.Telemetry), len(snap))
	}
	for _, mv := range db.Telemetry {
		if mv.Name == "run.wall_ns" || mv.Volatile {
			t.Fatalf("volatile metric %q leaked into the serialized profile", mv.Name)
		}
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := profile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Report().Self) != len(db.Telemetry) {
		t.Fatal("self-report did not round-trip through the database")
	}
}

func TestDisabledTelemetryMatchesBaselineResults(t *testing.T) {
	// A run with telemetry attached must not perturb the simulation:
	// ground truth and cycle counts are identical with and without.
	bare, err := txsampler.Run("synchro/linkedlist", txsampler.Options{Seed: 9, Threads: 4, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, traced := traceRun(t, "synchro/linkedlist", 9, 0)
	if bare.ElapsedCycles != traced.ElapsedCycles || bare.TotalCycles != traced.TotalCycles {
		t.Fatalf("telemetry perturbed the run: %d/%d vs %d/%d cycles",
			bare.ElapsedCycles, bare.TotalCycles, traced.ElapsedCycles, traced.TotalCycles)
	}
	if !reflect.DeepEqual(bare.GroundTruth, traced.GroundTruth) {
		t.Fatal("telemetry perturbed ground truth")
	}
}
