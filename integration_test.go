package txsampler_test

// End-to-end validation: the full pipeline (simulated machine →
// collector → analyzer → decision tree) must reproduce the paper's
// diagnoses for the §8 case studies, and sampled metrics must agree
// with ground truth.

import (
	"strings"
	"testing"

	"txsampler"
	"txsampler/internal/htm"
	"txsampler/internal/pmu"
)

func suggestions(t *testing.T, name string, threads int) string {
	t.Helper()
	res, err := txsampler.Run(name, txsampler.Options{Threads: threads, Seed: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	return res.Advice.String()
}

// TestDiagnosisDedup: §8.1 — dedup's advice must point at the
// footprint (capacity) and the unfriendly instructions (syscalls).
func TestDiagnosisDedup(t *testing.T) {
	out := suggestions(t, "parsec/dedup", 14)
	if !strings.Contains(out, "footprint") && !strings.Contains(out, "L1 capacity") {
		t.Errorf("dedup advice misses the capacity diagnosis:\n%s", out)
	}
	if !strings.Contains(out, "unfriendly instructions") {
		t.Errorf("dedup advice misses the system-call diagnosis:\n%s", out)
	}
}

// TestDiagnosisAVLTree: Table 2 — the read-lock serialization shows up
// as high lock waiting, and the tree suggests eliding read locks.
func TestDiagnosisAVLTree(t *testing.T) {
	out := suggestions(t, "app/avltree", 14)
	if !strings.Contains(out, "high lock waiting") {
		t.Errorf("avltree advice misses the lock-wait step:\n%s", out)
	}
	if !strings.Contains(out, "Elide read locks") {
		t.Errorf("avltree advice misses the elide suggestion:\n%s", out)
	}
}

// TestDiagnosisHisto: §8.3 — the per-pixel transactions show up as
// overhead, and the tree suggests merging.
func TestDiagnosisHisto(t *testing.T) {
	out := suggestions(t, "parboil/histo-1", 14)
	if !strings.Contains(out, "large T_oh") {
		t.Errorf("histo advice misses the overhead step:\n%s", out)
	}
	if !strings.Contains(out, "Merge multiple small transactions") {
		t.Errorf("histo advice misses the merge suggestion:\n%s", out)
	}
}

// TestDiagnosisLevelDB: §8.2 — conflict-dominated aborts suggest
// shrinking/splitting transactions.
func TestDiagnosisLevelDB(t *testing.T) {
	out := suggestions(t, "app/leveldb", 14)
	if !strings.Contains(out, "abort analysis") {
		t.Errorf("leveldb advice misses abort analysis:\n%s", out)
	}
	if !strings.Contains(out, "Shrink transactions") && !strings.Contains(out, "Split transactions") {
		t.Errorf("leveldb advice misses shrink/split:\n%s", out)
	}
}

// TestDiagnosisTypeI: a compute-bound program must be dismissed at the
// first decision-tree step.
func TestDiagnosisTypeI(t *testing.T) {
	out := suggestions(t, "splash2/barnes", 14)
	if !strings.Contains(out, "No HTM-related performance issue") {
		t.Errorf("barnes advice should stop at step 1:\n%s", out)
	}
}

// TestSampledCauseSharesMatchGroundTruth: with every abort sampled,
// the profiler's per-cause counts equal the machine's exact counts.
func TestSampledCauseSharesMatchGroundTruth(t *testing.T) {
	var periods pmu.Periods
	periods[pmu.TxAbort] = 1
	periods[pmu.TxCommit] = 1
	for _, name := range []string{"parsec/dedup", "stamp/vacation", "micro/sync-abort"} {
		res, err := txsampler.Run(name, txsampler.Options{Threads: 8, Seed: 2, Profile: true, Periods: periods})
		if err != nil {
			t.Fatal(err)
		}
		g := res.GroundTruth
		tot := res.Report.Totals
		for _, c := range []htm.Cause{htm.Conflict, htm.Capacity, htm.Sync, htm.Explicit} {
			if tot.AbortCount[c] != g.Aborts[c] {
				t.Errorf("%s/%v: sampled %d, ground truth %d", name, c, tot.AbortCount[c], g.Aborts[c])
			}
		}
		if tot.CommitSamples != g.Commits {
			t.Errorf("%s: sampled commits %d, ground truth %d", name, tot.CommitSamples, g.Commits)
		}
	}
}

// TestHistoSharingDiagnosis: §8.3's input-2 merged run must show false
// sharing dominating the contention classification.
func TestHistoSharingDiagnosis(t *testing.T) {
	// Contention detection needs two samples to land on one line
	// within the window, so the scaled-down run samples memory
	// densely (the paper tunes sampling rates per analysis, §6).
	periods := txsampler.DefaultPeriods()
	periods[pmu.Loads] = 150
	periods[pmu.Stores] = 150
	res, err := txsampler.Run("parboil/histo-2-merged", txsampler.Options{Threads: 14, Seed: 1, Profile: true, Periods: periods})
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Report.Totals
	if tot.FalseSharing == 0 {
		t.Fatal("no false sharing detected on dense uniform bins")
	}
	if tot.FalseSharing <= tot.TrueSharing {
		t.Errorf("false=%d true=%d: false sharing should dominate", tot.FalseSharing, tot.TrueSharing)
	}
}

// TestProfiledRunsPreserveResults: the profiler must never change what
// the program computes (only when the workload defines a Check).
func TestProfiledRunsPreserveResults(t *testing.T) {
	for _, name := range []string{"micro/low-abort", "micro/true-sharing", "clomp/small-2", "clomp/large-2"} {
		if _, err := txsampler.Run(name, txsampler.Options{Threads: 8, Seed: 4, Profile: true}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestSoakAllWorkloadsProfiled runs every registered workload under
// the profiler at its default (paper) thread count. Skipped in -short
// mode.
func TestSoakAllWorkloadsProfiled(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for _, name := range txsampler.Names() {
		name := name
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			t.Parallel()
			res, err := txsampler.Run(name, txsampler.Options{Seed: 3, Profile: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Totals.W == 0 {
				t.Error("no cycles samples collected")
			}
			if res.CollectorBytes > res.Threads*5<<20 {
				t.Errorf("collector footprint %d exceeds the paper's 5MB/thread bound", res.CollectorBytes)
			}
		})
	}
}
