package txsampler_test

import (
	"fmt"

	"txsampler"
)

// ExampleRun profiles an HTMBench program and inspects the derived
// metrics programmatically.
func ExampleRun() {
	res, err := txsampler.Run("micro/low-abort", txsampler.Options{
		Threads: 4, Seed: 1, Profile: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("profiled:", res.Workload)
	fmt.Println("every critical section committed:",
		res.GroundTruth.Commits == 4*400) // 400 iterations x 4 threads
	fmt.Println("has advice:", len(res.Advice.Suggestions) > 0)
	// Output:
	// profiled: micro/low-abort
	// every critical section committed: true
	// has advice: true
}

// ExampleSpeedup measures one Table 2 optimization pair.
func ExampleSpeedup() {
	s, err := txsampler.Speedup("npb/ua", "npb/ua-merged", txsampler.Options{Threads: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("merging small transactions pays off:", s > 1)
	// Output:
	// merging small transactions pays off: true
}
