package txsampler_test

import (
	"testing"

	"txsampler"
	"txsampler/internal/htm"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
)

func TestNamesNonEmpty(t *testing.T) {
	if len(txsampler.Names()) < 30 {
		t.Fatalf("only %d workloads registered", len(txsampler.Names()))
	}
}

func TestLookup(t *testing.T) {
	w, err := txsampler.Lookup("parsec/dedup")
	if err != nil || w == nil || w.Name != "parsec/dedup" {
		t.Fatalf("Lookup = %+v, %v", w, err)
	}
	if _, err := txsampler.Lookup("bogus/none"); err == nil {
		t.Fatal("unknown workload looked up")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := txsampler.Run("bogus/none", txsampler.Options{}); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestRunNative(t *testing.T) {
	res, err := txsampler.Run("micro/low-abort", txsampler.Options{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil || res.Advice != nil {
		t.Fatal("native run produced a profile")
	}
	if res.ElapsedCycles == 0 || res.GroundTruth.Commits == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Threads != 4 {
		t.Fatalf("threads = %d", res.Threads)
	}
}

func TestRunProfiled(t *testing.T) {
	res, err := txsampler.Run("stamp/vacation", txsampler.Options{Threads: 6, Seed: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Advice == nil {
		t.Fatal("profiled run produced no report/advice")
	}
	if res.Report.Totals.W == 0 {
		t.Fatal("no cycles samples collected")
	}
	if res.CollectorBytes <= 0 {
		t.Fatal("no collector footprint reported")
	}
	if len(res.Advice.Steps) == 0 {
		t.Fatal("decision tree produced no steps")
	}
}

func TestDefaultThreadsFromWorkload(t *testing.T) {
	res, err := txsampler.Run("splash2/barnes", txsampler.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 14 {
		t.Fatalf("default threads = %d, want 14", res.Threads)
	}
}

func TestOverheadPositiveWorkloads(t *testing.T) {
	native, profiled, _, err := txsampler.Overhead("micro/low-abort", txsampler.Options{Threads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if native.Report != nil {
		t.Fatal("native leg was profiled")
	}
	if profiled.Report == nil {
		t.Fatal("profiled leg was not profiled")
	}
	// Both legs compute the same result.
	if native.GroundTruth.Commits != profiled.GroundTruth.Commits {
		t.Fatalf("commit counts differ: %d vs %d",
			native.GroundTruth.Commits, profiled.GroundTruth.Commits)
	}
}

func TestSpeedupOrientation(t *testing.T) {
	s, err := txsampler.Speedup("parboil/histo-1", "parboil/histo-1-merged", txsampler.Options{Threads: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1 {
		t.Fatalf("histo merge speedup = %.2f, want > 1", s)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	r1, err := txsampler.Run("stamp/kmeans", txsampler.Options{Threads: 6, Seed: 9, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := txsampler.Run("stamp/kmeans", txsampler.Options{Threads: 6, Seed: 9, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ElapsedCycles != r2.ElapsedCycles || r1.Report.Totals != r2.Report.Totals {
		t.Fatal("profiled runs with identical options differ")
	}
}

func TestRunCustomWorkload(t *testing.T) {
	w := &htmbench.Workload{
		Name: "test/custom", Suite: "test", DefaultThreads: 2,
		Build: func(ctx *htmbench.Ctx) *htmbench.Instance {
			a := ctx.M.Mem.AllocLines(1)
			bodies := make([]func(*machine.Thread), ctx.Threads)
			for i := range bodies {
				bodies[i] = func(t *machine.Thread) {
					for j := 0; j < 20; j++ {
						ctx.Lock.Run(t, func() { t.Add(a, 1) })
					}
				}
			}
			return &htmbench.Instance{Bodies: bodies}
		},
	}
	res, err := txsampler.RunWorkload(w, txsampler.Options{Seed: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.GroundTruth.Commits+res.GroundTruth.Aborts[htm.Sync] == 0 {
		t.Fatal("custom workload did nothing")
	}
}

func TestResultCheckFailureSurfaces(t *testing.T) {
	w := &htmbench.Workload{
		Name: "test/failing-check", Suite: "test", DefaultThreads: 1,
		Build: func(ctx *htmbench.Ctx) *htmbench.Instance {
			return &htmbench.Instance{
				Bodies: []func(*machine.Thread){func(t *machine.Thread) { t.Compute(1) }},
				Check: func(m *machine.Machine) error {
					return errFailedCheck
				},
			}
		},
	}
	if _, err := txsampler.RunWorkload(w, txsampler.Options{}); err == nil {
		t.Fatal("failing check did not surface")
	}
	if _, err := txsampler.RunWorkload(w, txsampler.Options{SkipCheck: true}); err != nil {
		t.Fatalf("SkipCheck did not skip: %v", err)
	}
}

var errFailedCheck = errFail{}

type errFail struct{}

func (errFail) Error() string { return "intentional check failure" }
