module txsampler

go 1.22
