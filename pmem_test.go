package txsampler_test

// Persistent-memory tier suite: crash injection at every crash point,
// under every hybrid policy and quantum setting, must converge to the
// exact final memory a crash-free run produces — validated by the
// workload's own Check and byte-identically via mem.Fingerprint on
// both the volatile and the persist-domain images.

import (
	"bytes"
	"fmt"
	"testing"

	"txsampler"
	"txsampler/internal/faults"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/pmem"
)

const pmemTestThreads = 4

// runPmem executes a pmem workload with the persistent tier enabled
// under the given crash plan, runs the workload's Check, and returns
// the volatile and persist-domain fingerprints plus the crash stats.
func runPmem(t *testing.T, w *htmbench.Workload, seed int64, pol machine.HybridPolicy, quantum int, plan faults.Plan) (vol, img uint64, stats pmem.CrashStats) {
	t.Helper()
	m := machine.New(machine.Config{
		Threads: pmemTestThreads, Cache: txsampler.BenchCache(),
		Seed: seed, StartSkew: 1024, Hybrid: pol, Quantum: quantum,
		Faults: plan, Pmem: pmem.Config{Enabled: true},
	})
	inst := w.BuildInstance(m, nil)
	if err := m.Run(inst.Bodies...); err != nil {
		t.Fatalf("%s [%v q=%d %s]: %v", w.Name, pol, quantum, plan, err)
	}
	if err := inst.Check(m); err != nil {
		t.Fatalf("%s [%v q=%d %s]: result check failed: %v", w.Name, pol, quantum, plan, err)
	}
	d := m.Pmem()
	return m.Mem.Fingerprint(), d.Fingerprint(), d.Stats()
}

func pmemWorkloads(t *testing.T) []*htmbench.Workload {
	t.Helper()
	var out []*htmbench.Workload
	for _, name := range []string{"pmem/kv", "pmem/log"} {
		w, err := htmbench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, w)
	}
	return out
}

// TestPmemCrashRecoveryConvergence is the tentpole invariant: a run
// with crashes injected at any crash point, under any hybrid policy
// and any scheduler quantum, recovers and re-executes to the same
// final volatile memory AND the same persist-domain image as a
// crash-free run.
func TestPmemCrashRecoveryConvergence(t *testing.T) {
	const seed = 7
	for _, w := range pmemWorkloads(t) {
		for _, pol := range allPolicies() {
			cleanVol, cleanImg, cleanStats := runPmem(t, w, seed, pol, 0, faults.Plan{})
			if cleanStats.Crashes != 0 {
				t.Fatalf("%s [%v]: crash-free run injected %d crashes", w.Name, pol, cleanStats.Crashes)
			}
			if cleanStats.Commits == 0 {
				t.Fatalf("%s [%v]: no durable commits in a pmem workload", w.Name, pol)
			}
			for _, point := range faults.PmemCrashPoints {
				for _, quantum := range []int{0, 1} {
					name := fmt.Sprintf("%s/%v/%s/q%d", w.Name, pol, point, quantum)
					t.Run(name, func(t *testing.T) {
						plan := faults.Plan{PmemCrashPoint: point, PmemCrashEvery: 5}
						vol, img, stats := runPmem(t, w, seed, pol, quantum, plan)
						if stats.Crashes == 0 {
							t.Fatalf("crash storm fired no crashes (stats %+v)", stats)
						}
						if vol != cleanVol {
							t.Errorf("volatile memory diverged after recovery: %#x vs clean %#x", vol, cleanVol)
						}
						if img != cleanImg {
							t.Errorf("persist image diverged after recovery: %#x vs clean %#x", img, cleanImg)
						}
						if point == faults.PmemCrashTornTail && stats.TornTails == 0 {
							t.Errorf("torn-tail crashes recorded no torn tails: %+v", stats)
						}
						if point == faults.PmemCrashAfterCommit && stats.RolledBack != 0 {
							t.Errorf("after-commit crashes rolled back %d entries", stats.RolledBack)
						}
						if point == faults.PmemCrashBeforeFlush && stats.RolledBack == 0 {
							t.Errorf("before-flush crashes rolled nothing back: %+v", stats)
						}
					})
				}
			}
		}
	}
}

// TestPmemDisabledMatchesEnabled: the persist tier only adds cycle
// costs and durability bookkeeping — it never changes what the program
// computes. The final volatile memory with the tier enabled must equal
// a plain run's.
func TestPmemDisabledMatchesEnabled(t *testing.T) {
	for _, w := range pmemWorkloads(t) {
		m := machine.New(machine.Config{
			Threads: pmemTestThreads, Cache: txsampler.BenchCache(),
			Seed: 7, StartSkew: 1024,
		})
		inst := w.BuildInstance(m, nil)
		if err := m.Run(inst.Bodies...); err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if err := inst.Check(m); err != nil {
			t.Fatalf("%s (pmem disabled): %v", w.Name, err)
		}
		plain := m.Mem.Fingerprint()
		vol, _, _ := runPmem(t, w, 7, machine.HybridLockOnly, 0, faults.Plan{})
		if vol != plain {
			t.Errorf("%s: enabling the pmem tier changed the computed result (%#x vs %#x)", w.Name, vol, plain)
		}
	}
}

// TestPmemProfileAttribution: a profiled pmem run classifies samples
// into the persistence-stall bucket and renders the pmem stanza with
// flush-site attribution.
func TestPmemProfileAttribution(t *testing.T) {
	res, err := txsampler.Run("pmem/kv", txsampler.Options{
		Threads: pmemTestThreads, Seed: 7, Profile: true,
		Pmem: pmem.Config{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Totals.Tpersist == 0 {
		t.Fatal("profiled pmem run recorded no persistence-stall samples")
	}
	if share := res.Report.PersistOverhead(); share <= 0 || share > 1 {
		t.Fatalf("PersistOverhead = %v, want in (0, 1]", share)
	}
	hot := res.Report.TopPersist(3)
	if len(hot) == 0 {
		t.Fatal("no flush-site contexts ranked by TopPersist")
	}
	foundSite := false
	for _, h := range hot {
		for _, f := range h.Frames {
			if f.Fn == "pmem_persist" {
				foundSite = true
			}
		}
	}
	if !foundSite {
		t.Errorf("no TopPersist context passes through the pmem_persist frame: %+v", hot)
	}
	var buf bytes.Buffer
	res.Report.Render(&buf)
	for _, want := range []string{"pmem: persist=", "hottest persistence-stall (flush) contexts:"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("report omits %q:\n%s", want, &buf)
		}
	}
}

// TestPmemOffProfileHasNoPersistBucket: without the pmem tier the new
// bucket stays exactly zero and the report omits the pmem stanza.
func TestPmemOffProfileHasNoPersistBucket(t *testing.T) {
	res, err := txsampler.Run("micro/mixed", txsampler.Options{
		Threads: pmemTestThreads, Seed: 7, Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Totals.Tpersist != 0 {
		t.Fatalf("Tpersist = %d without the pmem tier", res.Report.Totals.Tpersist)
	}
	var buf bytes.Buffer
	res.Report.Render(&buf)
	if bytes.Contains(buf.Bytes(), []byte("pmem:")) {
		t.Errorf("pmem stanza rendered without the pmem tier:\n%s", &buf)
	}
}
