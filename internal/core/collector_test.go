package core

import (
	"testing"

	"txsampler/internal/htm"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

func periods(cycles, abort, commit, loads, stores uint64) pmu.Periods {
	var p pmu.Periods
	p[pmu.Cycles] = cycles
	p[pmu.TxAbort] = abort
	p[pmu.TxCommit] = commit
	p[pmu.Loads] = loads
	p[pmu.Stores] = stores
	return p
}

// checker wraps the collector and validates every reconstructed
// context against the machine's ground truth (paper §7.2).
type checker struct {
	c *Collector
	t *testing.T

	checked, truncated int
}

func (k *checker) HandleSample(s *machine.Sample) {
	frames, inTx, trunc := k.c.context(s)
	if inTx != s.TruthInTx {
		k.t.Errorf("in-tx detection wrong: LBR says %v, truth %v", inTx, s.TruthInTx)
	}
	// Strip the pseudo-frame, collapse the statement-level leaf the
	// collector appends under its enclosing frame, and compare
	// function paths.
	collapse := func(in []string) []string {
		var out []string
		for _, fn := range in {
			if len(out) > 0 && out[len(out)-1] == fn {
				continue
			}
			out = append(out, fn)
		}
		return out
	}
	var fns []string
	for _, f := range frames {
		if f == BeginInTx {
			continue
		}
		fns = append(fns, f.Fn)
	}
	fns = collapse(fns)
	var want []string
	for _, f := range s.TruthStack {
		want = append(want, f.Fn)
	}
	want = collapse(want)
	if trunc {
		k.truncated++
		// A truncated reconstruction must still be a suffix-correct
		// prefix+suffix: prefix comes from the stack, so at least the
		// leaf must match.
		if len(fns) > 0 && len(want) > 0 && fns[len(fns)-1] != want[len(want)-1] {
			k.t.Errorf("truncated leaf mismatch: got %v want %v", fns, want)
		}
	} else {
		if len(fns) != len(want) {
			k.t.Errorf("context length: got %v want %v", fns, want)
		} else {
			for i := range fns {
				if fns[i] != want[i] {
					k.t.Errorf("context mismatch at %d: got %v want %v", i, fns, want)
					break
				}
			}
		}
	}
	k.checked++
	k.c.HandleSample(s)
}

// TestReconstructionMatchesGroundTruth runs a contended workload with
// deep in-transaction call chains and checks every sample's
// reconstructed context against the machine's hidden truth.
func TestReconstructionMatchesGroundTruth(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 4, Seed: 13,
		Periods: periods(400, 3, 10, 150, 150),
	})
	col := NewCollector(4, m.Config().Periods, 0)
	k := &checker{c: col, t: t}
	m.SetHandler(k)
	l := rtm.NewLock(m)
	shared := m.Mem.AllocWords(4)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 60; i++ {
			l.Run(th, func() {
				th.Func("A", func() {
					th.Compute(20)
					if i%2 == 0 {
						th.Func("B", func() {
							th.Func("D", func() {
								th.At("update")
								th.Add(shared.Offset(i%4), 1)
							})
						})
					} else {
						th.Func("C", func() {
							th.Func("D", func() {
								th.At("update")
								th.Add(shared.Offset(i%4), 1)
							})
						})
					}
				})
			})
			th.Compute(30)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if k.checked < 50 {
		t.Fatalf("only %d samples checked; raise sampling rate", k.checked)
	}
}

// TestExactMatchWithPeriodOne validates §7.2's "profiles exactly match
// the ground truth": sampling every abort and commit event must
// reproduce the machine's exact counters.
func TestExactMatchWithPeriodOne(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 2, Seed: 21,
		Periods: periods(0, 1, 1, 0, 0), // every abort and commit
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 80; i++ {
			l.Run(th, func() {
				v := th.Load(a)
				th.Compute(15)
				th.Store(a, v+1)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	g := m.GroundTruth()
	var commits, aborts uint64
	var byCause [htm.NumCauses]uint64
	for _, p := range col.Profiles() {
		commits += p.Totals.CommitSamples
		aborts += p.Totals.AbortSamples
		for i, n := range p.Totals.AbortCount {
			byCause[i] += n
		}
	}
	if commits != g.Commits {
		t.Errorf("sampled commits = %d, ground truth %d", commits, g.Commits)
	}
	var truthAborts uint64
	for _, n := range g.Aborts {
		truthAborts += n
	}
	if aborts != truthAborts {
		t.Errorf("sampled aborts = %d, ground truth %d", aborts, truthAborts)
	}
	for c, n := range g.Aborts {
		if byCause[c] != n {
			t.Errorf("cause %v: sampled %d, truth %d", c, byCause[c], n)
		}
	}
}

// TestTimeDecompositionPureTx: a low-contention transactional workload
// spends its critical-section samples overwhelmingly in Ttx.
func TestTimeDecompositionPureTx(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 2, Seed: 3,
		Periods: periods(300, 0, 0, 0, 0),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	arr := m.Mem.AllocLines(64)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 150; i++ {
			l.Run(th, func() {
				// Long transaction on thread-private lines.
				for j := 0; j < 10; j++ {
					th.Add(arr+mem.Addr(th.ID*32*64)+mem.Addr(j*64), 1)
				}
				th.Compute(60)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var tot Metrics
	for _, p := range col.Profiles() {
		tot.Merge(&p.Totals)
	}
	if tot.T == 0 {
		t.Fatal("no critical-section samples")
	}
	if tot.Ttx*2 < tot.T {
		t.Errorf("Ttx=%d of T=%d: expected transaction path to dominate (fb=%d wait=%d oh=%d)",
			tot.Ttx, tot.T, tot.Tfb, tot.Twait, tot.Toh)
	}
	if tot.Tfb > tot.T/10 {
		t.Errorf("Tfb=%d of T=%d: low-contention workload should rarely fall back", tot.Tfb, tot.T)
	}
}

// TestTimeDecompositionFallback: bodies that always sync-abort live in
// the fallback path and serialize on the lock.
func TestTimeDecompositionFallback(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 4, Seed: 8,
		Periods: periods(300, 0, 0, 0, 0),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 40; i++ {
			l.Run(th, func() {
				th.Syscall("io")
				th.Add(a, 1)
				th.Compute(150)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var tot Metrics
	for _, p := range col.Profiles() {
		tot.Merge(&p.Totals)
	}
	if tot.T == 0 {
		t.Fatal("no critical-section samples")
	}
	if got := tot.Tfb + tot.Twait; got*2 < tot.T {
		t.Errorf("Tfb+Twait=%d of T=%d: fallback workload should be dominated by fallback+wait (tx=%d oh=%d)",
			got, tot.T, tot.Ttx, tot.Toh)
	}
}

// TestTimeDecompositionOverheadForTinyTx: many tiny transactions make
// Toh a visible fraction (the Histo §8.3 pathology).
func TestTimeDecompositionOverheadForTinyTx(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 2, Seed: 5,
		Periods: periods(200, 0, 0, 0, 0),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	arr := m.Mem.AllocLines(32)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 400; i++ {
			l.Run(th, func() {
				th.Add(arr+mem.Addr(th.ID*16*64), 1) // single tiny update
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var tot Metrics
	for _, p := range col.Profiles() {
		tot.Merge(&p.Totals)
	}
	if tot.T == 0 {
		t.Fatal("no critical-section samples")
	}
	if tot.Toh*5 < tot.T {
		t.Errorf("Toh=%d of T=%d: tiny transactions should show substantial overhead share", tot.Toh, tot.T)
	}
}

// TestSharingClassification: a true-sharing workload and a
// false-sharing workload must be told apart (the paper's Histo
// diagnosis depends on this).
func TestSharingClassification(t *testing.T) {
	run := func(falseSharing bool) (trueN, falseN uint64) {
		m := machine.New(machine.Config{
			Threads: 4, Seed: 17,
			Periods: periods(0, 0, 0, 25, 25),
		})
		col := Attach(m)
		var target func(th *machine.Thread, i int) mem.Addr
		if falseSharing {
			arr := m.Mem.AllocLines(1) // 8 words on ONE line
			target = func(th *machine.Thread, i int) mem.Addr { return arr.Offset(th.ID * 2) }
		} else {
			w := m.Mem.AllocWords(1)
			target = func(th *machine.Thread, i int) mem.Addr { return w }
		}
		if err := m.RunAll(func(th *machine.Thread) {
			for i := 0; i < 300; i++ {
				th.Add(target(th, i), 1)
			}
		}); err != nil {
			t.Fatal(err)
		}
		var tot Metrics
		for _, p := range col.Profiles() {
			tot.Merge(&p.Totals)
		}
		return tot.TrueSharing, tot.FalseSharing
	}

	tn, fn := run(false)
	if tn == 0 || tn < fn {
		t.Errorf("true-sharing workload: true=%d false=%d", tn, fn)
	}
	tn, fn = run(true)
	if fn == 0 || fn < tn {
		t.Errorf("false-sharing workload: true=%d false=%d", tn, fn)
	}
}

// TestAbortWeightByCause: abort samples carry cause-resolved weights.
func TestAbortWeightByCause(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 1,
		Periods: periods(0, 1, 0, 0, 0),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	err := m.RunAll(func(th *machine.Thread) {
		l.Run(th, func() {
			th.Compute(500)
			th.Syscall("x")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := col.Profiles()[0].Totals
	if tot.AbortCount[htm.Sync] != 1 {
		t.Fatalf("sync abort samples = %d, want 1", tot.AbortCount[htm.Sync])
	}
	if tot.AbortWeight[htm.Sync] < 500 {
		t.Fatalf("sync abort weight = %d, want >= 500", tot.AbortWeight[htm.Sync])
	}
}

// TestCapacityWeightSplit: read- and write-capacity aborts are
// distinguished (Figure 9's "capacity abort read/write" metrics).
func TestCapacityWeightSplit(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1, Periods: periods(0, 1, 0, 0, 0), MaxReadLines: 8})
	col := Attach(m)
	l := rtm.NewLock(m)
	big := m.Mem.AllocLines(16)
	err := m.RunAll(func(th *machine.Thread) {
		l.Run(th, func() { // read-capacity abort: touch > 8 lines
			for j := 0; j < 10; j++ {
				th.Load(big + mem.Addr(j*64))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := col.Profiles()[0].Totals
	if tot.AbortCount[htm.Capacity] == 0 || tot.CapReadW == 0 {
		t.Fatalf("capacity: count=%d readW=%d", tot.AbortCount[htm.Capacity], tot.CapReadW)
	}
	if tot.CapWriteW != 0 {
		t.Fatalf("write capacity weight = %d, want 0", tot.CapWriteW)
	}
}

// TestBeginInTxPseudoNode: in-transaction samples are attributed under
// the begin_in_tx pseudo-node, as in the paper's GUI.
func TestBeginInTxPseudoNode(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1, Periods: periods(150, 0, 0, 0, 0)})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 200; i++ {
			l.Run(th, func() {
				th.Func("hot", func() {
					th.Compute(40)
					th.Add(a, 1)
				})
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	col.Profiles()[0].Tree.Walk(func(n *Node, _ int) {
		if n.Frame == BeginInTx {
			for _, c := range n.Children() {
				if c.Frame.Fn == "hot" {
					found = true
				}
			}
		}
	})
	if !found {
		t.Fatal("no begin_in_tx -> hot context in the profile")
	}
}

// TestPerThreadHistogram: per-thread profiles expose the commit/abort
// balance (§5's contention metrics).
func TestPerThreadHistogram(t *testing.T) {
	m := machine.New(machine.Config{Threads: 3, Seed: 30, Periods: periods(0, 1, 1, 0, 0)})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 50; i++ {
			l.Run(th, func() {
				v := th.Load(a)
				th.Compute(10)
				th.Store(a, v+1)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	g := m.GroundTruth()
	for i, p := range col.Profiles() {
		if p.Totals.CommitSamples != g.PerThreadCommits[i] {
			t.Errorf("thread %d: sampled commits %d, truth %d", i, p.Totals.CommitSamples, g.PerThreadCommits[i])
		}
	}
}

// TestMemoryFootprintBounded: the collector's state stays small
// (paper: <5MB per thread; here far below).
func TestMemoryFootprintBounded(t *testing.T) {
	m := machine.New(machine.Config{Threads: 4, Seed: 2, Periods: periods(200, 5, 20, 100, 100)})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(64)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 300; i++ {
			l.Run(th, func() { th.Add(a.Offset(th.Rand().Intn(64)), 1) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fp := col.MemoryFootprint(); fp > 4*5<<20 {
		t.Fatalf("collector footprint = %d bytes, want < 5MB/thread", fp)
	}
}

// TestSamplingRateInPaperBand: with default periods, a typical
// benchmark-sized run collects on the order of 10^1-10^3 cycles
// samples per thread (the paper's 50-200/s guidance, rescaled).
func TestSamplingRateInPaperBand(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 4, Seed: 9,
		Periods: pmu.DefaultPeriods(),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(4)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 300; i++ {
			l.Run(th, func() { th.Add(a.Offset(th.ID), 1) })
			th.Compute(300)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range col.Profiles() {
		if p.Totals.W < 3 || p.Totals.W > 2000 {
			t.Errorf("thread %d: %d cycles samples, outside the expected band", p.TID, p.Totals.W)
		}
	}
}

// TestTruncatedAccounting: a transaction with call churn beyond the
// LBR depth must register truncated reconstructions.
func TestTruncatedAccounting(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 1, Seed: 1, LBRDepth: 4,
		Periods: periods(150, 2, 0, 0, 0),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 150; i++ {
			l.Run(th, func() {
				// Sibling calls churn the 4-entry LBR well past capacity.
				for j := 0; j < 4; j++ {
					th.Func("leafwork", func() { th.Compute(10) })
				}
				th.Func("deep", func() {
					th.Compute(40)
					th.Add(a, 1)
				})
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if col.Profiles()[0].Totals.Truncated == 0 {
		t.Fatal("no truncated reconstructions with a 4-entry LBR")
	}
}

// TestInterruptAbortSamplesSeparated: profiler-induced aborts are
// tracked under the Interrupt cause and excluded from AppAborts.
func TestInterruptAbortSamplesSeparated(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 1, Seed: 2,
		Periods: periods(150, 1, 0, 0, 0),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 100; i++ {
			l.Run(th, func() {
				th.Compute(120)
				th.Add(a, 1)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := col.Profiles()[0].Totals
	if tot.AbortCount[htm.Interrupt] == 0 {
		t.Fatal("dense sampling produced no interrupt-abort samples")
	}
	if tot.AppAborts() != tot.AbortSamples-tot.AbortCount[htm.Interrupt] {
		t.Fatal("AppAborts does not exclude exactly the interrupt aborts")
	}
}

// TestConflictSourceSplit: conflicts with transactional peers and with
// the non-transactional fallback lock are distinguished (the POWER
// abort-granularity discussion, §10).
func TestConflictSourceSplit(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 4, Seed: 6,
		Periods: periods(0, 1, 1, 0, 0),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 60; i++ {
			l.Run(th, func() {
				v := th.Load(a)
				th.Compute(25)
				th.Store(a, v+1)
				if i%9 == 0 {
					th.Syscall("x") // forces fallbacks -> lock conflicts
				}
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var tot Metrics
	for _, p := range col.Profiles() {
		tot.Merge(&p.Totals)
	}
	if tot.ConflictTx == 0 {
		t.Error("no transactional conflicts recorded")
	}
	if tot.ConflictNonTx == 0 {
		t.Error("no non-transactional (lock) conflicts recorded")
	}
	if tot.ConflictTx+tot.ConflictNonTx != tot.AbortCount[htm.Conflict] {
		t.Errorf("split %d+%d != conflict count %d",
			tot.ConflictTx, tot.ConflictNonTx, tot.AbortCount[htm.Conflict])
	}
}

// TestEquationInvariants: the paper's Equations 1 and 2 hold exactly
// over sampled metrics: W = T + S and T = Ttx + Tfb + Twait + Toh,
// at every context and in the totals.
func TestEquationInvariants(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 6, Seed: 14,
		Periods: periods(250, 4, 8, 400, 400),
	})
	col := Attach(m)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(2)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 120; i++ {
			l.Run(th, func() {
				v := th.Load(a)
				th.Compute(20)
				th.Store(a, v+1)
				if i%17 == 0 {
					th.Syscall("x")
				}
			})
			th.Compute(120)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range col.Profiles() {
		tot := p.Totals
		if tot.T > tot.W {
			t.Fatalf("thread %d: T=%d > W=%d (Equation 1 violated)", p.TID, tot.T, tot.W)
		}
		if tot.Ttx+tot.Tfb+tot.Twait+tot.Toh != tot.T {
			t.Fatalf("thread %d: components %d+%d+%d+%d != T=%d (Equation 2 violated)",
				p.TID, tot.Ttx, tot.Tfb, tot.Twait, tot.Toh, tot.T)
		}
		var w, tt, ttx, tfb, twait, toh uint64
		p.Tree.Walk(func(n *Node, _ int) {
			w += n.Data.W
			tt += n.Data.T
			ttx += n.Data.Ttx
			tfb += n.Data.Tfb
			twait += n.Data.Twait
			toh += n.Data.Toh
		})
		if w != tot.W || tt != tot.T || ttx+tfb+twait+toh != tt {
			t.Fatalf("thread %d: tree sums do not match totals", p.TID)
		}
	}
}
