package core

import (
	"testing"

	"txsampler/internal/faults"
)

// TestDataQualityMerge: merging accumulates every counter, including
// the nested fault-injection stats.
func TestDataQualityMerge(t *testing.T) {
	a := DataQuality{MalformedSamples: 1, UnresolvedInTx: 2, InconsistentState: 3, TruncatedPaths: 4,
		Injected: faults.Stats{SpuriousAborts: 5}}
	b := DataQuality{MalformedSamples: 10, UnresolvedInTx: 20, InconsistentState: 30, TruncatedPaths: 40,
		Injected: faults.Stats{SpuriousAborts: 50}}
	a.Merge(b)
	if a.MalformedSamples != 11 || a.UnresolvedInTx != 22 || a.InconsistentState != 33 || a.TruncatedPaths != 44 {
		t.Fatalf("merged = %+v", a)
	}
	if a.Injected.SpuriousAborts != 55 {
		t.Fatalf("injected stats not merged: %+v", a.Injected)
	}
	// Degraded excludes the (fault-free-possible) truncations.
	if got := a.Degraded(); got != 11+22+33+55 {
		t.Fatalf("Degraded() = %d, want %d", got, 11+22+33+55)
	}
}
