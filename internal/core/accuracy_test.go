package core

import (
	"testing"

	"txsampler/internal/machine"
	"txsampler/internal/rtm"
)

// TestAccuracyTxSamplerBeatsNaive runs a workload with deep
// in-transaction call chains and verifies the §9 claim: TxSampler's
// LBR-based reconstruction recovers in-transaction contexts a
// conventional profiler cannot (the rolled-back stack misses every
// frame below the transaction begin).
func TestAccuracyTxSamplerBeatsNaive(t *testing.T) {
	m := machine.New(machine.Config{
		Threads: 4, Seed: 5,
		Periods: periods(300, 2, 8, 0, 0),
	})
	col := NewCollector(4, m.Config().Periods, 0)
	probe := NewAccuracyProbe(col)
	m.SetHandler(probe)
	l := rtm.NewLock(m)
	shared := m.Mem.AllocWords(2)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 80; i++ {
			l.Run(th, func() {
				th.Func("outer", func() {
					th.Func("inner", func() {
						th.Compute(30)
						th.Add(shared.Offset(i%2), 1)
					})
				})
			})
			th.Compute(40)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	a := probe.Accuracy
	if a.InTx < 20 {
		t.Fatalf("only %d in-tx samples; raise sampling", a.InTx)
	}
	if a.PathDetected != a.InTx {
		t.Errorf("LBR abort bit detected %d of %d in-tx samples", a.PathDetected, a.InTx)
	}
	txRate := float64(a.TxSamplerCorrect) / float64(a.InTx)
	naiveRate := float64(a.NaiveCorrect) / float64(a.InTx)
	if txRate < 0.9 {
		t.Errorf("TxSampler in-tx attribution = %.0f%%, want >= 90%%", 100*txRate)
	}
	// The naive profiler only gets samples right when they land at
	// the transaction's top level (no frames below tm_begin); with
	// outer/inner nesting that is rare.
	if naiveRate >= txRate {
		t.Errorf("naive attribution %.0f%% >= TxSampler %.0f%%: comparison broken", 100*naiveRate, 100*txRate)
	}
	if naiveRate > 0.5 {
		t.Errorf("naive attribution %.0f%%: deep contexts should be unrecoverable from the rolled-back stack", 100*naiveRate)
	}
}

// TestAccuracyProbeForwardsSamples: wrapping must not lose samples.
func TestAccuracyProbeForwardsSamples(t *testing.T) {
	m := machine.New(machine.Config{Threads: 2, Seed: 1, Periods: periods(200, 1, 1, 0, 0)})
	col := NewCollector(2, m.Config().Periods, 0)
	probe := NewAccuracyProbe(col)
	m.SetHandler(probe)
	l := rtm.NewLock(m)
	a := m.Mem.AllocWords(1)
	if err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 40; i++ {
			l.Run(th, func() { th.Add(a, 1) })
			th.Compute(30)
		}
	}); err != nil {
		t.Fatal(err)
	}
	var forwarded uint64
	for _, p := range col.Profiles() {
		forwarded += p.Samples
	}
	if forwarded != probe.Accuracy.Total {
		t.Fatalf("probe saw %d samples, collector received %d", probe.Accuracy.Total, forwarded)
	}
	if probe.Accuracy.Total == 0 {
		t.Fatal("no samples at all")
	}
}
