package core

import (
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

// Accuracy quantifies the paper's §9 comparison against conventional
// PMU profilers (Perf/VTune): a tool without the LBR abort-bit check
// and the in-transaction path reconstruction attributes every
// in-transaction sample to the rolled-back stack — the transaction
// begin — losing the context below it and misclassifying the sample's
// path. The probe evaluates both attributions against the machine's
// hidden ground truth on every sample.
type Accuracy struct {
	// Total samples observed; InTx counts those that executed inside
	// a transaction (per ground truth).
	Total, InTx uint64

	// TxSamplerCorrect counts in-transaction samples whose
	// reconstructed context (stack + begin_in_tx + LBR suffix)
	// matches the true frame path; NaiveCorrect counts those where
	// the bare unwound stack alone matches it — what a conventional
	// profiler reports.
	TxSamplerCorrect, NaiveCorrect uint64

	// PathDetected counts in-transaction samples the LBR abort bit
	// identified as transactional; a conventional profiler detects
	// none of them (it cannot distinguish transaction from fallback
	// path, Challenge I).
	PathDetected uint64

	// Modes is the execution-mode confusion matrix over cycles
	// samples taken inside critical sections: ground-truth mode
	// (machine's exact in-transaction knowledge plus the live state
	// word) versus the mode the profiler's classification derives
	// from the LBR abort bit and the sampled state word.
	Modes ModeMatrix
}

// ModeMatrix is a confusion matrix over rtm.Mode: Counts[truth][got]
// accumulates cycles samples whose ground-truth execution mode was
// `truth` and which the profiler classified as `got`. Off-diagonal
// mass is fault-driven (LBR corruption losing the abort bit) or
// structural misclassification.
type ModeMatrix struct {
	Counts [rtm.NumModes][rtm.NumModes]uint64
}

// Observe records one classified sample.
func (m *ModeMatrix) Observe(truth, got rtm.Mode) { m.Counts[truth][got]++ }

// Total returns the number of observations.
func (m *ModeMatrix) Total() uint64 {
	var n uint64
	for i := range m.Counts {
		for j := range m.Counts[i] {
			n += m.Counts[i][j]
		}
	}
	return n
}

// Correct returns the diagonal mass: samples classified into their
// true mode.
func (m *ModeMatrix) Correct() uint64 {
	var n uint64
	for i := range m.Counts {
		n += m.Counts[i][i]
	}
	return n
}

// Accuracy returns Correct/Total, or 1 with no observations (nothing
// was misclassified).
func (m *ModeMatrix) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 1
	}
	return float64(m.Correct()) / float64(t)
}

// Merge accumulates src into m.
func (m *ModeMatrix) Merge(src *ModeMatrix) {
	for i := range m.Counts {
		for j := range m.Counts[i] {
			m.Counts[i][j] += src.Counts[i][j]
		}
	}
}

// AccuracyProbe wraps a collector, scoring attribution accuracy while
// forwarding every sample. Install with machine.SetHandler.
type AccuracyProbe struct {
	Collector *Collector
	Accuracy  Accuracy
}

// NewAccuracyProbe wraps c.
func NewAccuracyProbe(c *Collector) *AccuracyProbe {
	return &AccuracyProbe{Collector: c}
}

// HandleSample implements machine.SampleHandler.
func (p *AccuracyProbe) HandleSample(s *machine.Sample) {
	p.Accuracy.Total++
	if s.Event == pmu.Cycles {
		// Execution-mode classification check (hybrid-TM four-way
		// split). Ground truth combines the machine's exact hardware
		// in-transaction knowledge with the live state word; the
		// profiler only has the LBR abort bit in place of the former.
		truth := rtm.ModeOf(s.State, s.TruthInTx)
		got := rtm.ModeOf(s.State, len(s.LBR) > 0 && s.LBR[0].Abort)
		if truth != rtm.ModeNone || got != rtm.ModeNone {
			p.Accuracy.Modes.Observe(truth, got)
		}
	}
	if s.TruthInTx {
		p.Accuracy.InTx++
		frames, inTx, _ := p.Collector.context(s)
		if inTx {
			p.Accuracy.PathDetected++
		}
		if matchesTruth(frames, s) {
			p.Accuracy.TxSamplerCorrect++
		}
		if naiveMatchesTruth(s) {
			p.Accuracy.NaiveCorrect++
		}
	}
	p.Collector.HandleSample(s)
}

// matchesTruth compares a reconstructed context with the ground-truth
// stack by function path, ignoring the begin_in_tx pseudo-frame and
// collapsing the statement-level leaf refinement.
func matchesTruth(frames []lbr.IP, s *machine.Sample) bool {
	got := collapseFns(frames, true)
	want := collapseFnsTruth(s)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// naiveMatchesTruth checks whether the bare unwound stack (all a
// conventional profiler has after the abort rolled the stack back)
// recovers the true context.
func naiveMatchesTruth(s *machine.Sample) bool {
	got := collapseFns(s.Stack, false)
	want := collapseFnsTruth(s)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func collapseFns(frames []lbr.IP, skipPseudo bool) []string {
	var out []string
	for _, f := range frames {
		if skipPseudo && f.Fn == BeginInTx.Fn {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == f.Fn {
			continue
		}
		out = append(out, f.Fn)
	}
	return out
}

func collapseFnsTruth(s *machine.Sample) []string {
	var out []string
	for _, f := range s.TruthStack {
		if len(out) > 0 && out[len(out)-1] == f.Fn {
			continue
		}
		out = append(out, f.Fn)
	}
	return out
}
