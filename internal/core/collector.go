// Package core implements TxSampler's online data collector — the
// paper's primary contribution. It receives PMU samples from the
// machine and, observing only what a real profiler can (the precise
// IP, the frozen LBR, the RTM library state word, and the rolled-back
// call stack), builds per-thread calling-context-tree profiles with:
//
//   - time decomposition: W = T + S, T = Ttx + Tfb + Twait + Toh
//     (paper §4, computed per Figure 4's classification);
//   - abort penalty metrics: sampled abort counts and weights by
//     cause, including capacity read/write splits (paper §5);
//   - contention metrics: per-thread commit/abort balance and
//     true/false-sharing classification through shadow memory
//     (paper §3.3, §5);
//   - full calling contexts even inside transactions, reconstructed
//     by concatenating the unwound stack with the LBR-derived
//     in-transaction suffix under a begin_in_tx pseudo-node
//     (paper §3.4, Figure 3).
package core

import (
	"fmt"

	"txsampler/internal/cct"
	"txsampler/internal/faults"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
	"txsampler/internal/shadow"
	"txsampler/internal/telemetry"
)

// BeginInTx is the pseudo-frame the collector inserts between the
// unwound prefix and the LBR-reconstructed in-transaction suffix, as
// in the paper's GUI ("begin_in_tx", Figure 9).
var BeginInTx = lbr.IP{Fn: "begin_in_tx"}

// Metrics is the per-context metric payload. Time metrics count
// cycles-event samples; multiply by the cycles sampling period to
// estimate cycles (the analyzer does this).
type Metrics struct {
	// Figure 4 time decomposition, in cycles samples. Tstm extends
	// the paper's four-way split with the hybrid-TM software slow
	// path: samples whose state word carries rtm.InSTM — instrumented
	// execution, the numerator of the per-path instrumentation
	// overhead metric (Tstm ÷ Ttx).
	W     uint64 // work: every cycles sample
	T     uint64 // samples inside critical sections
	Ttx   uint64 // … in the transaction path (LBR abort bit)
	Tstm  uint64 // … in the instrumented software-transaction path
	Tfb   uint64 // … in the fallback path
	Twait uint64 // … waiting for the global lock
	Toh   uint64 // … in transaction begin/retry/cleanup overhead

	// Tpersist counts cycles samples in the durable-commit persist
	// epilogue of the pmem tier (rtm.InFlush): flushes, the persist
	// fence, the commit record — persistence stalls. Tagged omitempty
	// so profiles from machines without the pmem tier serialize
	// byte-identically to earlier versions.
	Tpersist uint64 `json:"Tpersist,omitempty"`

	// Elided-lock splits (rtm.InElision): how much of Ttx/Tstm/Tfb
	// was spent inside elided critical sections. Each counter is a
	// refinement of its base bucket, never an addition to it, so the
	// Figure 4 decomposition is unchanged; omitempty keeps profiles
	// from elision-free runs byte-identical to earlier versions.
	TelideHtm  uint64 `json:"TelideHtm,omitempty"`
	TelideStm  uint64 `json:"TelideStm,omitempty"`
	TelideLock uint64 `json:"TelideLock,omitempty"`

	// Abort analysis (paper §5), from RTM_RETIRED:ABORTED samples.
	AbortSamples uint64
	AbortCount   [htm.NumCauses]uint64 // sampled aborts by cause
	AbortWeight  [htm.NumCauses]uint64 // aggregate abort weight by cause
	CapReadW     uint64                // capacity abort weight, read overflow
	CapWriteW    uint64                // capacity abort weight, write overflow

	// ConflictTx and ConflictNonTx split sampled conflict aborts by
	// whether the conflicting access was itself transactional — the
	// finer abort-cause granularity of POWER-style status codes
	// (paper §10). Non-transactional conflicts usually point at the
	// fallback lock (serialization cascades).
	ConflictTx    uint64
	ConflictNonTx uint64

	// Commit samples (RTM_RETIRED:COMMIT).
	CommitSamples uint64

	// Contention classification of sampled loads/stores (§3.3).
	MemSamples   uint64
	TrueSharing  uint64
	FalseSharing uint64

	// Truncated counts in-transaction reconstructions that lost a
	// path prefix to LBR overflow (§3.4).
	Truncated uint64
}

// Merge accumulates src into m; used for cross-thread coalescing.
func (m *Metrics) Merge(src *Metrics) {
	m.W += src.W
	m.T += src.T
	m.Ttx += src.Ttx
	m.Tstm += src.Tstm
	m.Tfb += src.Tfb
	m.Twait += src.Twait
	m.Toh += src.Toh
	m.Tpersist += src.Tpersist
	m.TelideHtm += src.TelideHtm
	m.TelideStm += src.TelideStm
	m.TelideLock += src.TelideLock
	m.AbortSamples += src.AbortSamples
	for i := range m.AbortCount {
		m.AbortCount[i] += src.AbortCount[i]
		m.AbortWeight[i] += src.AbortWeight[i]
	}
	m.CapReadW += src.CapReadW
	m.CapWriteW += src.CapWriteW
	m.ConflictTx += src.ConflictTx
	m.ConflictNonTx += src.ConflictNonTx
	m.CommitSamples += src.CommitSamples
	m.MemSamples += src.MemSamples
	m.TrueSharing += src.TrueSharing
	m.FalseSharing += src.FalseSharing
	m.Truncated += src.Truncated
}

// AppAborts returns the sampled abort count excluding ambient aborts
// (profiler-induced interrupts and spurious machine noise) that say
// nothing about the application.
func (m *Metrics) AppAborts() uint64 {
	var n uint64
	for c, v := range m.AbortCount {
		if !htm.Cause(c).Ambient() {
			n += v
		}
	}
	return n
}

// DataQuality summarizes how trustworthy a profile is: how much data
// the machine injected faults into or lost before delivery, and how
// many malformed or internally inconsistent samples the collector had
// to degrade around. A clean, fault-free run reports all zeros except
// possibly TruncatedPaths (LBR overflow on deep in-transaction call
// paths is a real hardware limit, not a fault).
type DataQuality struct {
	// Injected aggregates the machine's fault-injection counters;
	// all-zero when no fault plan was configured. Frontends fill it
	// from machine.FaultStats after the run.
	Injected faults.Stats `json:"injected"`

	// Collector-side degradation evidence.

	// MalformedSamples counts samples missing required payload (an
	// abort sample without an abort record, an out-of-range thread)
	// that were dropped rather than crashing the collector.
	MalformedSamples uint64 `json:"malformed_samples"`
	// UnresolvedInTx counts abort samples whose LBR no longer carried
	// the abort-bit evidence, so the in-transaction calling context
	// could not be rebuilt and the sample was attributed to the
	// unwound stack only.
	UnresolvedInTx uint64 `json:"unresolved_in_tx"`
	// InconsistentState counts samples whose RTM state word
	// contradicts hardware evidence (e.g. claims an uncommitted
	// transaction is still live inside a PMU handler).
	InconsistentState uint64 `json:"inconsistent_state"`
	// TruncatedPaths counts in-transaction reconstructions that lost
	// a path prefix to LBR capacity (also possible in clean runs).
	TruncatedPaths uint64 `json:"truncated_paths"`
}

// Merge accumulates src into q.
func (q *DataQuality) Merge(src DataQuality) {
	q.Injected.Merge(src.Injected)
	q.MalformedSamples += src.MalformedSamples
	q.UnresolvedInTx += src.UnresolvedInTx
	q.InconsistentState += src.InconsistentState
	q.TruncatedPaths += src.TruncatedPaths
}

// Degraded returns the total count of strictly fault-driven
// degradation events: non-zero exactly when faults corrupted or lost
// data. TruncatedPaths is excluded because LBR overflow also happens
// on fault-free runs.
func (q DataQuality) Degraded() uint64 {
	return q.Injected.Total() + q.MalformedSamples + q.UnresolvedInTx + q.InconsistentState
}

// Tree is the collector's calling context tree type, and Node its
// node type.
type (
	Tree = cct.Tree[Metrics]
	Node = cct.Node[Metrics]
)

// Profile is one thread's profile.
type Profile struct {
	TID     int
	Tree    *Tree
	Totals  Metrics // aggregate over all contexts
	Samples uint64  // samples of any event

	// paths hash-conses derived calling contexts: repeated samples on
	// the same (stack, LBR, IP) resolve to their CCT node without
	// re-running the Figure 3 reconstruction or re-walking the tree.
	// Keyed by FNV hash with full equality verification on hit.
	paths     map[uint64][]cachedPath
	pathCount int

	// Self-telemetry counters (plain: sample delivery is serialized
	// by the machine's baton scheduler), published via PublishMetrics.
	cacheHits    uint64 // path-cache lookups resolved without rebuild
	cacheMisses  uint64 // lookups that re-ran the reconstruction
	inTxResolved uint64 // in-tx contexts rebuilt from LBR evidence
}

// cachedPath memoizes one derived calling context. The stored slices
// alias the sample's (the machine never mutates a sample after
// delivery), so a cache entry costs two slice headers, not a copy.
type cachedPath struct {
	stack     []lbr.IP
	lbr       []lbr.Entry // nil unless the sample carried abort evidence
	ip        lbr.IP
	inTx      bool
	truncated bool
	node      *Node
}

// pathCacheLimit bounds the per-thread path cache. The flush is
// count-based, so it is deterministic for a given sample stream.
const pathCacheLimit = 65536

// Collector is the TxSampler online data collector. Install it as the
// machine's sample handler before running. It is not safe for use by
// multiple machines at once.
type Collector struct {
	periods  pmu.Periods
	profiles []*Profile
	quality  DataQuality
	// Shadow memory is shared across threads: contention is by
	// definition a cross-thread phenomenon.
	Shadow *shadow.Memory
}

// NewCollector returns a collector for n threads sampling with the
// given periods. contentionWindow is the shadow-memory threshold P in
// cycles (0 = default).
func NewCollector(n int, periods pmu.Periods, contentionWindow uint64) *Collector {
	c := &Collector{periods: periods, Shadow: shadow.New(contentionWindow)}
	for i := 0; i < n; i++ {
		c.profiles = append(c.profiles, &Profile{TID: i, Tree: cct.NewTree[Metrics]()})
	}
	return c
}

// Attach creates a collector matching a machine's configuration and
// installs it as the machine's sample handler.
func Attach(m *machine.Machine) *Collector {
	cfg := m.Config()
	c := NewCollector(cfg.Threads, cfg.Periods, 0)
	m.SetHandler(c)
	return c
}

// Profiles returns the per-thread profiles.
func (c *Collector) Profiles() []*Profile { return c.profiles }

// Reordered returns a read-only view of the collector whose per-thread
// profiles appear in the order perm[0], perm[1], ... — the validation
// harness analyzes it to check that cross-thread profile coalescing is
// order-independent (a thread-permutation metamorphic invariant). perm
// must be a permutation of [0, threads); the view shares the
// underlying profile trees, so it must not receive further samples.
func (c *Collector) Reordered(perm []int) *Collector {
	if len(perm) != len(c.profiles) {
		panic(fmt.Sprintf("core: Reordered with %d indices for %d profiles", len(perm), len(c.profiles)))
	}
	seen := make([]bool, len(perm))
	nc := &Collector{periods: c.periods, quality: c.quality, Shadow: c.Shadow}
	for _, i := range perm {
		if i < 0 || i >= len(c.profiles) || seen[i] {
			panic(fmt.Sprintf("core: Reordered permutation %v is not a permutation", perm))
		}
		seen[i] = true
		nc.profiles = append(nc.profiles, c.profiles[i])
	}
	return nc
}

// Periods returns the sampling periods the collector assumes.
func (c *Collector) Periods() pmu.Periods { return c.periods }

// Quality returns the collector-side data-quality counters (Injected
// is zero here; frontends merge machine.FaultStats into it).
func (c *Collector) Quality() DataQuality { return c.quality }

// context derives the sample's calling context. For a sample that
// aborted a transaction (LBR abort bit on the top entry) it
// concatenates the unwound — rolled-back — stack, the begin_in_tx
// pseudo-frame, and the LBR-reconstructed suffix; otherwise the
// unwound stack already ends at the precise IP.
func (c *Collector) context(s *machine.Sample) (frames []lbr.IP, inTx, truncated bool) {
	stack := s.Stack
	if len(stack) == 0 {
		// A real unwinder can fail (corrupt frame pointers, signal on
		// a bare stack); attribute to a placeholder rather than crash.
		stack = []lbr.IP{{Fn: "unknown"}}
	}
	inTx = len(s.LBR) > 0 && s.LBR[0].Abort
	if !inTx {
		return stack, false, false
	}
	suffix, trunc := cct.InTxPath(s.LBR)
	// The precise IP refines the deepest frame: same function means
	// the sample adds the site label; a different function (possible
	// when the suffix is empty or truncated) appends a leaf.
	switch {
	case len(suffix) > 0 && suffix[len(suffix)-1].Fn == s.IP.Fn:
		suffix[len(suffix)-1] = s.IP
	default:
		suffix = append(suffix, s.IP)
	}
	frames = append(append(append([]lbr.IP{}, stack...), BeginInTx), suffix...)
	return frames, true, trunc
}

// contextNode resolves the sample's CCT node, memoizing the
// derivation: the node (and the inTx/truncated classification) is a
// pure function of (stack, LBR, IP), and hot call paths repeat across
// thousands of samples. Samples with an empty stack take the uncached
// placeholder path.
func (c *Collector) contextNode(p *Profile, s *machine.Sample) (node *Node, inTx, truncated bool) {
	if len(s.Stack) == 0 {
		frames, inTx, trunc := c.context(s)
		return p.Tree.Path(frames), inTx, trunc
	}
	evidence := len(s.LBR) > 0 && s.LBR[0].Abort
	h := lbr.HashIPs(lbr.HashSeed, s.Stack)
	if evidence {
		// Out-of-transaction contexts are the unwound stack alone; the
		// LBR and precise IP only matter under the abort-evidence path.
		h = lbr.HashIP(lbr.HashEntries(h, s.LBR), s.IP)
	}
	for i := range p.paths[h] {
		e := &p.paths[h][i]
		if e.inTx != evidence || !ipsEqual(e.stack, s.Stack) {
			continue
		}
		if evidence && (e.ip != s.IP || !entriesEqual(e.lbr, s.LBR)) {
			continue
		}
		p.cacheHits++
		return e.node, e.inTx, e.truncated
	}
	p.cacheMisses++
	frames, inTx, truncated := c.context(s)
	node = p.Tree.Path(frames)
	if p.pathCount >= pathCacheLimit {
		p.paths, p.pathCount = nil, 0
	}
	if p.paths == nil {
		p.paths = make(map[uint64][]cachedPath)
	}
	// Copy the key slices: the machine reuses the sample's backing
	// arrays for the next delivery, but cache entries live on.
	entry := cachedPath{
		stack: append([]lbr.IP(nil), s.Stack...),
		ip:    s.IP, inTx: inTx, truncated: truncated, node: node,
	}
	if evidence {
		entry.lbr = append([]lbr.Entry(nil), s.LBR...)
	}
	p.paths[h] = append(p.paths[h], entry)
	p.pathCount++
	return node, inTx, truncated
}

func ipsEqual(a, b []lbr.IP) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func entriesEqual(a, b []lbr.Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HandleSample implements machine.SampleHandler with the paper's
// Figure 4 algorithm plus the abort, commit, and contention analyses.
func (c *Collector) HandleSample(s *machine.Sample) {
	if s == nil || s.TID < 0 || s.TID >= len(c.profiles) {
		// A sample the machine could never have produced; drop it
		// rather than index out of range.
		c.quality.MalformedSamples++
		return
	}
	p := c.profiles[s.TID]
	p.Samples++
	if s.Event == pmu.TxAbort && rtm.IsInHTM(s.State) {
		// An abort sample's state word is the rolled-back snapshot
		// from XBEGIN, which can never carry the InHTM bit — the
		// transactional update that set it was just discarded (§3.2).
		// Seeing it means the state word is corrupt; classification
		// proceeds but the profile is flagged. (Samples on the commit
		// path may legitimately show InHTM: XEND makes the update
		// durable and software clears it shortly after.)
		c.quality.InconsistentState++
	}
	node, inTx, truncated := c.contextNode(p, s)
	if inTx {
		p.inTxResolved++
	}
	m := &node.Data
	if truncated {
		m.Truncated++
		p.Totals.Truncated++
		c.quality.TruncatedPaths++
	}

	switch s.Event {
	case pmu.Cycles:
		// Figure 4: always accumulate work; classify within the
		// critical section by state word and LBR abort bit.
		m.W++
		p.Totals.W++
		if rtm.IsInCS(s.State) {
			m.T++
			p.Totals.T++
			elided := rtm.IsInElision(s.State)
			switch {
			case inTx:
				m.Ttx++
				p.Totals.Ttx++
				if elided {
					m.TelideHtm++
					p.Totals.TelideHtm++
				}
			case rtm.IsInFlush(s.State):
				m.Tpersist++
				p.Totals.Tpersist++
			case rtm.IsInSTM(s.State):
				m.Tstm++
				p.Totals.Tstm++
				if elided {
					m.TelideStm++
					p.Totals.TelideStm++
				}
			case rtm.IsInFallback(s.State):
				m.Tfb++
				p.Totals.Tfb++
				if elided {
					m.TelideLock++
					p.Totals.TelideLock++
				}
			case rtm.IsInLockWaiting(s.State):
				m.Twait++
				p.Totals.Twait++
			default:
				m.Toh++
				p.Totals.Toh++
			}
		}

	case pmu.TxAbort:
		if s.Abort == nil {
			// An RTM_RETIRED:ABORTED sample must carry an abort
			// record; without one nothing can be classified.
			c.quality.MalformedSamples++
			return
		}
		if !inTx {
			// A clean rollback always records the abort branch as the
			// youngest LBR entry before the PMI freezes the buffer, so
			// an abort sample without it means the LBR was corrupted
			// or truncated: the in-transaction context is lost and the
			// sample was attributed to the unwound stack only.
			c.quality.UnresolvedInTx++
		}
		cause := s.Abort.Cause
		if cause >= htm.NumCauses {
			c.quality.MalformedSamples++
			return
		}
		m.AbortSamples++
		p.Totals.AbortSamples++
		m.AbortCount[cause]++
		p.Totals.AbortCount[cause]++
		m.AbortWeight[cause] += s.Abort.Weight
		p.Totals.AbortWeight[cause] += s.Abort.Weight
		if cause == htm.Conflict {
			if s.Abort.AbortedByTx {
				m.ConflictTx++
				p.Totals.ConflictTx++
			} else {
				m.ConflictNonTx++
				p.Totals.ConflictNonTx++
			}
		}
		if cause == htm.Capacity {
			switch s.Abort.CapKind {
			case htm.CapacityRead:
				m.CapReadW += s.Abort.Weight
				p.Totals.CapReadW += s.Abort.Weight
			case htm.CapacityWrite:
				m.CapWriteW += s.Abort.Weight
				p.Totals.CapWriteW += s.Abort.Weight
			}
		}

	case pmu.TxCommit:
		m.CommitSamples++
		p.Totals.CommitSamples++

	case pmu.Loads, pmu.Stores:
		if !s.HasAddr {
			return
		}
		m.MemSamples++
		p.Totals.MemSamples++
		switch c.Shadow.Observe(s.TID, s.Addr, s.IsWrite, s.Time) {
		case shadow.TrueSharing:
			m.TrueSharing++
			p.Totals.TrueSharing++
		case shadow.FalseSharing:
			m.FalseSharing++
			p.Totals.FalseSharing++
		}
	}
}

// PublishMetrics writes the collector's self-telemetry into reg:
// samples ingested, calling-context cache hit rate, LBR in-transaction
// reconstructions resolved vs. failed, degradation counters, CCT size,
// and the per-sample abort-weight distribution. Everything published
// is a deterministic function of the sample stream. A nil registry is
// ignored.
func (c *Collector) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	var samples, hits, misses, resolved, nodes uint64
	for _, p := range c.profiles {
		samples += p.Samples
		hits += p.cacheHits
		misses += p.cacheMisses
		resolved += p.inTxResolved
		nodes += uint64(p.Tree.Size())
	}
	reg.Counter("collector.samples.ingested").Add(samples)
	reg.Counter("collector.pathcache.hits").Add(hits)
	reg.Counter("collector.pathcache.misses").Add(misses)
	reg.Counter("collector.lbr.resolved").Add(resolved)
	reg.Counter("collector.lbr.unresolved").Add(c.quality.UnresolvedInTx)
	reg.Counter("collector.samples.malformed").Add(c.quality.MalformedSamples)
	reg.Counter("collector.paths.truncated").Add(c.quality.TruncatedPaths)
	reg.Gauge("collector.cct.nodes", false).Set(nodes)
	reg.Gauge("collector.memory.bytes", false).Set(uint64(c.MemoryFootprint()))
	hist := reg.Histogram("collector.abort.weight")
	for _, p := range c.profiles {
		p.Tree.Walk(func(n *Node, _ int) {
			for cause, w := range n.Data.AbortWeight {
				if n.Data.AbortCount[cause] > 0 && w > 0 {
					// One aggregate observation per (context, cause):
					// the mean sampled abort weight there.
					hist.Observe(w / n.Data.AbortCount[cause])
				}
			}
		})
	}
}

// MemoryFootprint estimates the collector's memory use in bytes: CCT
// nodes plus shadow entries. The paper reports <5MB per thread; the
// estimate lets tests and the experiment harness verify the same
// property holds here.
func (c *Collector) MemoryFootprint() int {
	const nodeBytes = 400 // Metrics + node bookkeeping, rounded up
	const shadowBytes = 48
	n := 0
	for _, p := range c.profiles {
		n += p.Tree.Size() * nodeBytes
	}
	return n + c.Shadow.Footprint()*shadowBytes
}
