package core

// Benchmarks for the collector's per-sample hot path: calling-context
// derivation (including the Figure 3 LBR reconstruction for
// in-transaction samples) and full HandleSample dispatch. Profiled
// runs deliver thousands of samples, most of them on a handful of hot
// call paths, so these paths dominate collector cost.

import (
	"testing"

	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

// benchInTxSample builds a cycles sample that aborted a transaction:
// rolled-back stack, LBR with the abort branch on top and the
// in-transaction call suffix behind it.
func benchInTxSample() *machine.Sample {
	return &machine.Sample{
		Event: pmu.Cycles,
		TID:   0,
		Time:  1000,
		IP:    lbr.IP{Fn: "leaf", Site: "l3"},
		State: rtm.InCS | rtm.InOverhead,
		Stack: []lbr.IP{{Fn: "thread_root"}, {Fn: "main_loop"}, {Fn: "tm_begin"}},
		LBR: []lbr.Entry{
			{Kind: lbr.KindAbort, From: lbr.IP{Fn: "leaf", Site: "l3"}, To: lbr.IP{Fn: "tm_begin"}, Abort: true, InTSX: true},
			{Kind: lbr.KindCall, From: lbr.IP{Fn: "mid", Site: "c2"}, To: lbr.IP{Fn: "leaf"}, InTSX: true},
			{Kind: lbr.KindCall, From: lbr.IP{Fn: "txbody", Site: "c1"}, To: lbr.IP{Fn: "mid"}, InTSX: true},
			{Kind: lbr.KindCall, From: lbr.IP{Fn: "tm_begin", Site: "c0"}, To: lbr.IP{Fn: "txbody"}, InTSX: true},
			{Kind: lbr.KindCall, From: lbr.IP{Fn: "main_loop"}, To: lbr.IP{Fn: "tm_begin"}},
		},
	}
}

// benchFlatSample builds an ordinary out-of-transaction cycles sample.
func benchFlatSample() *machine.Sample {
	return &machine.Sample{
		Event: pmu.Cycles,
		TID:   0,
		Time:  1000,
		IP:    lbr.IP{Fn: "main_loop", Site: "hot"},
		State: 0,
		Stack: []lbr.IP{{Fn: "thread_root"}, {Fn: "main_loop", Site: "hot"}},
	}
}

func BenchmarkContextReconstructInTx(b *testing.B) {
	c := NewCollector(1, pmu.DefaultPeriods(), 0)
	s := benchInTxSample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = c.context(s)
	}
}

func BenchmarkHandleSampleInTx(b *testing.B) {
	c := NewCollector(1, pmu.DefaultPeriods(), 0)
	s := benchInTxSample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.HandleSample(s)
	}
}

func BenchmarkHandleSampleFlat(b *testing.B) {
	c := NewCollector(1, pmu.DefaultPeriods(), 0)
	s := benchFlatSample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.HandleSample(s)
	}
}
