package fleet

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"testing"

	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

// wideShardBytes builds a framed database with a wide CCT of distinct
// frames, so each aggregated window pins a measurable amount of heap
// and retention reclaim shows up in memory statistics.
func wideShardBytes(t testing.TB, window, nodes int) []byte {
	t.Helper()
	var leaf core.Metrics
	leaf.W = 10
	leaf.T = 4
	leaf.AbortWeight[htm.Conflict] = 1
	leaf.AbortCount[htm.Conflict] = 1
	root := &profile.Node{Fn: "<root>"}
	for i := 0; i < nodes; i++ {
		root.Children = append(root.Children, &profile.Node{
			Fn:      fmt.Sprintf("w%d.func%05d", window, i),
			Site:    fmt.Sprintf("file%d.c:%d", window, i),
			Metrics: leaf,
		})
	}
	db := &profile.Database{
		Version: profile.FormatVersion,
		Program: fmt.Sprintf("wide/w%d", window),
		Threads: 2,
		Periods: [5]uint64{2000000, 20011, 20011, 8009, 8009},
		Totals:  leaf,
		PerThread: []profile.Thread{
			{TID: 0, CommitSamples: uint64(nodes), AbortSamples: 1},
		},
		Root: root,
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func heapAllocAfterGC() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// TestRetentionReclaimsMemory drives sustained multi-window ingest
// against a small retention horizon and checks that compaction really
// returns aggregate memory to the garbage collector: heap-in-use
// stabilizes instead of growing with the number of windows ever seen.
func TestRetentionReclaimsMemory(t *testing.T) {
	const (
		retain     = 2
		warmup     = 4
		total      = 40
		treeNodes  = 3000
		slackBytes = 10 << 20
	)
	reg := telemetry.NewRegistry()
	srv, ts := openTestServer(t, Config{Retain: retain, Metrics: reg})

	ingestWindow := func(w int) {
		payload := wideShardBytes(t, w, treeNodes)
		resp, body := ingest(t, ts.URL, payload, fmt.Sprintf("wide-%d", w), w)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("window %d: status %d: %s", w, resp.StatusCode, body)
		}
	}

	for w := 0; w < warmup; w++ {
		ingestWindow(w)
	}
	waitLagZero(t, srv)
	baseline := heapAllocAfterGC()

	for w := warmup; w < total; w++ {
		ingestWindow(w)
	}
	waitLagZero(t, srv)
	final := heapAllocAfterGC()

	// Without reclaim every window ever ingested stays resident
	// (~treeNodes CCT nodes each, far more than the slack over the
	// whole run); with reclaim only the retained windows do.
	if final > baseline+slackBytes {
		t.Errorf("heap grew from %d to %d bytes over %d windows with retain=%d; compaction is not reclaiming memory",
			baseline, final, total, retain)
	}

	srv.aggMu.Lock()
	live, horizon := len(srv.windows), srv.compactedBelow
	srv.aggMu.Unlock()
	if live != retain {
		t.Errorf("live windows = %d, want %d", live, retain)
	}
	if want := total - retain; horizon != want {
		t.Errorf("compactedBelow = %d, want %d", horizon, want)
	}
	if v := reg.Counter("fleet.windows_compacted").Value(); v != uint64(total-retain) {
		t.Errorf("windows_compacted = %d, want %d", v, total-retain)
	}
	if v := reg.Gauge("fleet.windows", false).Value(); v != uint64(retain) {
		t.Errorf("fleet.windows gauge = %d, want %d", v, retain)
	}

	// A shard for a compacted window stays journaled (and deduplicated)
	// but folds to nothing and the window remains 410 Gone.
	ingestWindow(0)
	waitLagZero(t, srv)
	if resp, _ := get(t, ts.URL+"/profile?window=0"); resp.StatusCode != http.StatusGone {
		t.Errorf("compacted window after late shard: status %d, want %d", resp.StatusCode, http.StatusGone)
	}
	srv.aggMu.Lock()
	live = len(srv.windows)
	srv.aggMu.Unlock()
	if live != retain {
		t.Errorf("late shard resurrected a compacted window: live windows = %d", live)
	}
}

// TestRetentionReplayReachesSameHorizon restarts a retention-limited
// daemon and checks the journal replay compacts to the same horizon
// with byte-identical retained aggregates — even though the journal
// still holds every compacted shard.
func TestRetentionReplayReachesSameHorizon(t *testing.T) {
	dir := t.TempDir()
	srv, ts := openTestServer(t, Config{Dir: dir, Retain: 2})
	for w := 0; w < 6; w++ {
		payload := shardBytes(t, "micro/low-abort", w, uint64(3*(w+1)))
		if resp, _ := ingest(t, ts.URL, payload, fmt.Sprintf("w%d", w), w); resp.StatusCode != http.StatusOK {
			t.Fatalf("window %d ingest failed", w)
		}
	}
	waitLagZero(t, srv)
	var before [2][]byte
	for i := range before {
		_, before[i] = get(t, fmt.Sprintf("%s/profile?window=%d", ts.URL, 4+i))
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := openTestServer(t, Config{Dir: dir, Retain: 2})
	if srv2.Replayed() != 6 {
		t.Errorf("replayed %d shards, want 6", srv2.Replayed())
	}
	srv2.aggMu.Lock()
	live, horizon := len(srv2.windows), srv2.compactedBelow
	srv2.aggMu.Unlock()
	if live != 2 || horizon != 4 {
		t.Errorf("after replay: live=%d horizon=%d, want live=2 horizon=4", live, horizon)
	}
	for i := range before {
		_, after := get(t, fmt.Sprintf("%s/profile?window=%d", ts2.URL, 4+i))
		if !bytes.Equal(before[i], after) {
			t.Errorf("retained window %d differs across replay", 4+i)
		}
	}
	for w := 0; w < 4; w++ {
		if resp, _ := get(t, fmt.Sprintf("%s/profile?window=%d", ts2.URL, w)); resp.StatusCode != http.StatusGone {
			t.Errorf("compacted window %d after replay: status %d, want %d", w, resp.StatusCode, http.StatusGone)
		}
	}
}
