package fleet

import (
	"fmt"
	"sort"
	"strings"

	"txsampler/internal/cct"
	"txsampler/internal/core"
	"txsampler/internal/lbr"
	"txsampler/internal/profile"
)

// windowAgg is one time window's running aggregate. Every combining
// operation is commutative and associative (sums, maxima, set
// unions, CCT metric merges), so the aggregate is a pure function of
// the *set* of accepted shards — arrival order, retry interleavings,
// and kill/restart replays all render to byte-identical databases.
type windowAgg struct {
	shards    int
	programs  map[string]struct{}
	threads   int
	periods   [5]uint64
	totals    core.Metrics
	quality   core.DataQuality
	perThread map[int]*profile.Thread
	tree      *cct.Tree[core.Metrics]
}

func newWindowAgg() *windowAgg {
	return &windowAgg{
		programs:  make(map[string]struct{}),
		perThread: make(map[int]*profile.Thread),
		tree:      cct.NewTree[core.Metrics](),
	}
}

// add folds one shard database into the aggregate.
func (a *windowAgg) add(db *profile.Database) {
	a.shards++
	if db.Program != "" {
		a.programs[db.Program] = struct{}{}
	}
	if db.Threads > a.threads {
		a.threads = db.Threads
	}
	for i, p := range db.Periods {
		if p > a.periods[i] {
			a.periods[i] = p
		}
	}
	a.totals.Merge(&db.Totals)
	a.quality.Merge(db.Quality)
	for _, t := range db.PerThread {
		pt := a.perThread[t.TID]
		if pt == nil {
			pt = &profile.Thread{TID: t.TID}
			a.perThread[t.TID] = pt
		}
		pt.CommitSamples += t.CommitSamples
		pt.AbortSamples += t.AbortSamples
	}
	if db.Root != nil {
		mergeNode(a.tree.Root, db.Root)
	}
}

// mergeNode folds a serialized CCT into the aggregate tree.
func mergeNode(dst *cct.Node[core.Metrics], src *profile.Node) {
	dst.Data.Merge(&src.Metrics)
	for _, c := range src.Children {
		mergeNode(dst.Child(lbr.IP{Fn: c.Fn, Site: c.Site}), c)
	}
}

// database renders the aggregate as a framed v2 profile database.
// Rendering is deterministic: programs sort lexically, threads sort
// by TID, and CCT children render in the tree's stable frame order.
func (a *windowAgg) database(window int) *profile.Database {
	progs := make([]string, 0, len(a.programs))
	for p := range a.programs {
		progs = append(progs, p)
	}
	sort.Strings(progs)
	db := &profile.Database{
		Version: profile.FormatVersion,
		Program: fmt.Sprintf("fleet/window-%d[%s]", window, strings.Join(progs, "+")),
		Threads: a.threads,
		Periods: a.periods,
		Totals:  a.totals,
		Quality: a.quality,
	}
	tids := make([]int, 0, len(a.perThread))
	for tid := range a.perThread {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		db.PerThread = append(db.PerThread, *a.perThread[tid])
	}
	db.Root = exportNode(a.tree.Root)
	return db
}

// exportNode converts an aggregate CCT node into the serialized form.
func exportNode(n *cct.Node[core.Metrics]) *profile.Node {
	out := &profile.Node{Fn: n.Frame.Fn, Site: n.Frame.Site, Metrics: n.Data}
	for _, c := range n.Children() {
		out.Children = append(out.Children, exportNode(c))
	}
	return out
}
