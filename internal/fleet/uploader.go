package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"txsampler/internal/retry"
	"txsampler/internal/telemetry"
)

// Shard is one profile upload: the framed v2 database bytes plus the
// identity that makes retries safe (Key) and aggregation meaningful
// (Node, Window).
type Shard struct {
	// Key is the idempotency key; the daemon never double-counts two
	// uploads with the same key, so retrying after an ambiguous
	// failure (timeout, dropped ack) is always safe.
	Key string
	// Node names the origin node (diagnostics only).
	Node string
	// Window is the logical aggregation window ordinal.
	Window int
	// Payload is a framed v2 profile database (profile.Database.Write).
	Payload []byte
}

// Uploader ships shards to a txsamplerd daemon, absorbing the
// failures a fleet sees in practice: per-shard deadlines, bounded
// exponential backoff with jitter, Retry-After obedience under load
// shedding, and a circuit breaker that stops hammering a daemon that
// is down.
type Uploader struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8090".
	BaseURL string
	// Client is the HTTP client (http.DefaultClient if nil). Fault
	// injection wires a faults.NetTransport in here.
	Client *http.Client
	// Policy drives retry pacing; its zero value retries 3 times from
	// a 100ms base.
	Policy retry.Policy
	// Breaker, when non-nil, gates uploads: while open, Upload fails
	// fast with retry.ErrOpen instead of burning deadlines on a dead
	// daemon.
	Breaker *retry.Breaker
	// ShardTimeout bounds each individual attempt (default 10s).
	ShardTimeout time.Duration
	// Metrics receives upload counters (nil = none).
	Metrics *telemetry.Registry
}

// Result reports how one shard upload concluded.
type Result struct {
	// Status is the daemon's X-Fleet-Status (StatusMerged,
	// StatusDeferred, or StatusDuplicate).
	Status string
	// Attempts is how many HTTP attempts the upload took.
	Attempts int
}

// errShed marks a 429 so tests can distinguish shed-then-recovered
// uploads; it is retryable.
var errShed = errors.New("fleet: daemon shedding load")

// IsShed reports whether err is (or wraps) a load-shed rejection.
func IsShed(err error) bool { return errors.Is(err, errShed) }

// Upload ships one shard, retrying transient failures under the
// uploader's policy. It returns the daemon's final ack, a permanent
// rejection (4xx), retry.ErrOpen if the circuit breaker is open, or
// the last transient error once attempts are exhausted.
func (u *Uploader) Upload(ctx context.Context, shard Shard) (Result, error) {
	res := Result{}
	client := u.Client
	if client == nil {
		client = http.DefaultClient
	}
	timeout := u.ShardTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	reg := u.Metrics
	ctrSent := reg.Counter("fleet.upload.sent")
	ctrRetried := reg.Counter("fleet.upload.retried")
	ctrBreaker := reg.Counter("fleet.upload.breaker_fast_fail")

	err := u.Policy.Do(ctx, func(ctx context.Context) error {
		if u.Breaker != nil {
			if err := u.Breaker.Allow(); err != nil {
				ctrBreaker.Add(1)
				// The breaker's cooldown is the retry pacing now.
				return retry.After(err, u.Breaker.RemainingCooldown())
			}
		}
		if res.Attempts > 0 {
			ctrRetried.Add(1)
		}
		res.Attempts++
		ctrSent.Add(1)
		status, err := u.attempt(ctx, client, timeout, shard)
		if err == nil {
			res.Status = status
		}
		if u.Breaker != nil {
			// Only daemon-down failures (transport errors, 5xx) trip
			// the breaker; shedding and permanent rejections mean the
			// daemon is alive.
			switch {
			case err == nil || IsShed(err) || retry.IsPermanent(err):
				u.Breaker.Record(true)
			default:
				u.Breaker.Record(false)
			}
		}
		return err
	})
	return res, err
}

// attempt performs one HTTP exchange.
func (u *Uploader) attempt(ctx context.Context, client *http.Client, timeout time.Duration, shard Shard) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.BaseURL+"/ingest", bytes.NewReader(shard.Payload))
	if err != nil {
		return "", retry.Permanent(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if shard.Key != "" {
		req.Header.Set(HeaderKey, shard.Key)
	}
	if shard.Node != "" {
		req.Header.Set(HeaderNode, shard.Node)
	}
	req.Header.Set(HeaderWindow, strconv.Itoa(shard.Window))

	resp, err := client.Do(req)
	if err != nil {
		return "", fmt.Errorf("fleet: upload: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))

	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
		return resp.Header.Get(HeaderStatus), nil
	case resp.StatusCode == http.StatusTooManyRequests:
		u.Metrics.Counter("fleet.upload.shed").Add(1)
		err := fmt.Errorf("%w: %s", errShed, bytes.TrimSpace(body))
		// Obey the daemon's Retry-After hint over our own curve.
		if hint := resp.Header.Get("Retry-After"); hint != "" {
			if secs, perr := strconv.Atoi(hint); perr == nil && secs >= 0 {
				return "", retry.After(err, time.Duration(secs)*time.Second)
			}
		}
		return "", err
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The daemon examined the shard and refused it; retrying the
		// same bytes cannot succeed.
		return "", retry.Permanent(fmt.Errorf("fleet: daemon rejected shard (%d): %s", resp.StatusCode, bytes.TrimSpace(body)))
	default:
		return "", fmt.Errorf("fleet: daemon error (%d): %s", resp.StatusCode, bytes.TrimSpace(body))
	}
}
