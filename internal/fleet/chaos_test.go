package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"txsampler/internal/faults"
	"txsampler/internal/profile"
	"txsampler/internal/retry"
	"txsampler/internal/telemetry"
)

// readDatabase parses framed aggregate bytes fetched from /profile.
func readDatabase(b []byte) (*profile.Database, error) {
	return profile.Read(bytes.NewReader(b))
}

// uploadAll ships every shard through a fault-injecting client with
// retries, returning the per-shard errors.
func uploadAll(t *testing.T, baseURL string, shards []Shard, plan faults.NetPlan, seed uint64) []error {
	t.Helper()
	up := &Uploader{
		BaseURL: baseURL,
		Client:  &http.Client{Transport: faults.NewNetTransport(nil, plan, seed)},
		Policy: retry.Policy{MaxAttempts: 8, BaseDelay: time.Millisecond,
			Sleep: func(context.Context, time.Duration) error { return nil }},
	}
	errs := make([]error, len(shards))
	for i, sh := range shards {
		_, errs[i] = up.Upload(context.Background(), sh)
	}
	return errs
}

// TestCrashRestartByteIdenticalUnderFaultStorm is the acceptance
// scenario run in-process: shards flow to a daemon through a seeded
// network fault storm (drops, duplicates, resets mid-body); the daemon
// is "killed" at an arbitrary journal byte (a copied journal prefix
// plus torn garbage is exactly the disk image kill -9 leaves, because
// every ack follows an fsynced append); the restarted daemon replays,
// the clients re-send everything, and the final aggregate is
// byte-identical to a fault-free reference run.
func TestCrashRestartByteIdenticalUnderFaultStorm(t *testing.T) {
	const nShards = 6
	shards := make([]Shard, nShards)
	for i := range shards {
		shards[i] = Shard{
			Key:     fmt.Sprintf("node-%d/micro/s%d", i%3, i),
			Node:    fmt.Sprintf("node-%d", i%3),
			Window:  i % 2,
			Payload: shardBytes(t, "micro/low-abort", i, uint64(3*(i+1))),
		}
	}

	// Reference: clean daemon, no faults, no crash.
	refSrv, refTS := openTestServer(t, Config{})
	for _, sh := range shards {
		if resp, body := ingest(t, refTS.URL, sh.Payload, sh.Key, sh.Window); resp.StatusCode != http.StatusOK {
			t.Fatalf("reference ingest: status %d: %s", resp.StatusCode, body)
		}
	}
	waitLagZero(t, refSrv)
	var want [2][]byte
	for w := range want {
		_, want[w] = get(t, fmt.Sprintf("%s/profile?window=%d", refTS.URL, w))
	}

	// Victim: faulty network, then a crash image taken at the current
	// journal length with torn garbage appended.
	victimDir := t.TempDir()
	victimSrv, victimTS := openTestServer(t, Config{Dir: victimDir})
	storm := faults.NetPlan{DropRate: 0.25, DupRate: 0.15, ResetRate: 0.15, LatencyRate: 0.2, LatencyMaxMS: 1}
	for i, err := range uploadAll(t, victimTS.URL, shards[:4], storm, 0xfeed) {
		if err != nil {
			t.Fatalf("storm upload %d never got through: %v", i, err)
		}
	}

	journal, err := os.ReadFile(filepath.Join(victimDir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	crashDir := t.TempDir()
	image := append(bytes.Clone(journal), []byte(`{"key":"torn-by-kill-9","window":0,"pay`)...)
	if err := os.WriteFile(filepath.Join(crashDir, JournalName), image, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart on the crash image; the fleet re-sends everything
	// (including the four already-accepted shards) through a fresh
	// fault storm.
	reSrv, reTS := openTestServer(t, Config{Dir: crashDir})
	if reSrv.Replayed() != 4 {
		t.Fatalf("replayed %d shards from crash image, want 4", reSrv.Replayed())
	}
	for i, err := range uploadAll(t, reTS.URL, shards, storm, 0xdead) {
		if err != nil {
			t.Fatalf("post-crash upload %d failed: %v", i, err)
		}
	}
	waitLagZero(t, reSrv)
	for w := range want {
		_, got := get(t, fmt.Sprintf("%s/profile?window=%d", reTS.URL, w))
		if !bytes.Equal(want[w], got) {
			t.Errorf("window %d: post-crash aggregate differs from fault-free reference (%d vs %d bytes)",
				w, len(got), len(want[w]))
		}
	}
	_ = victimSrv
}

// TestIngestConcurrentStress hammers one daemon from many goroutines —
// including deliberate key collisions — so the race detector can chew
// on the admission path, the ladder transitions, and the catch-up
// reader all at once.
func TestIngestConcurrentStress(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, ts := openTestServer(t, Config{QueueCap: 4, MaxLag: 1 << 20, Metrics: reg})
	const goroutines = 8
	const perG = 12
	payloads := make([][]byte, perG)
	for i := range payloads {
		payloads[i] = shardBytes(t, "micro/low-abort", i, uint64(i+1))
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Half the goroutines share keys: concurrent
				// duplicates must collapse to one accept each.
				key := fmt.Sprintf("shared-%d", i)
				if g%2 == 1 {
					key = fmt.Sprintf("own-%d-%d", g, i)
				}
				resp, body := ingest(t, ts.URL, payloads[i], key, 0)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
					t.Errorf("g%d i%d: status %d: %s", g, i, resp.StatusCode, body)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	waitLagZero(t, srv)

	// perG shared keys + (goroutines/2)*perG private keys.
	wantAccepted := uint64(perG + goroutines/2*perG)
	if v := reg.Counter("fleet.ingested").Value(); v != wantAccepted {
		t.Errorf("ingested = %d, want %d", v, wantAccepted)
	}
	if v := reg.Counter("fleet.duplicates").Value(); v != uint64(goroutines)*perG-wantAccepted {
		t.Errorf("duplicates = %d, want %d", v, uint64(goroutines)*perG-wantAccepted)
	}
	// The stress run must also replay cleanly.
	_, body := get(t, ts.URL+"/profile?window=0")
	if _, err := readDatabase(body); err != nil {
		t.Fatalf("stressed aggregate does not parse: %v", err)
	}
}

// TestRunFleetEndToEnd drives the real pipeline: profile a workload
// with the simulator, fan it out over uploader nodes through a seeded
// fault storm, and check the daemon accepted exactly one shard per
// node — then re-run the campaign and watch idempotency absorb it.
func TestRunFleetEndToEnd(t *testing.T) {
	srv, ts := openTestServer(t, Config{})
	cfg := FleetConfig{
		BaseURL:   ts.URL,
		Nodes:     3,
		Workloads: []string{"micro/low-abort"},
		Seed:      7,
		Net:       faults.NetPlan{DropRate: 0.2, DupRate: 0.1, ResetRate: 0.1},
		Retries:   8,
		Backoff:   time.Millisecond,
	}
	rep, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 || rep.Shards != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Accepted+rep.Deferred != 3 {
		t.Errorf("accepted+deferred = %d, want 3", rep.Accepted+rep.Deferred)
	}
	waitLagZero(t, srv)

	// Same campaign again: every shard is a known idempotency key.
	rep2, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Duplicates != 3 || rep2.Failed != 0 {
		t.Errorf("re-run report = %+v, want 3 duplicates", rep2)
	}

	// The aggregate is exactly 3x one node's profile totals.
	_, body := get(t, ts.URL+"/profile?window=0")
	agg, err := readDatabase(body)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Totals.W == 0 || agg.Totals.W%3 != 0 {
		t.Errorf("aggregate W = %d, want a positive multiple of 3", agg.Totals.W)
	}

	// Bad config errors.
	if _, err := RunFleet(FleetConfig{BaseURL: ts.URL}); err == nil {
		t.Error("RunFleet without workloads succeeded")
	}
	if _, err := RunFleet(FleetConfig{BaseURL: ts.URL, Workloads: []string{"no/such-workload"}}); err == nil {
		t.Error("RunFleet with unknown workload succeeded")
	}
}
