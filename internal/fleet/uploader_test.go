package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"txsampler/internal/retry"
	"txsampler/internal/telemetry"
)

// scriptedDaemon answers /ingest with a scripted status sequence.
type scriptedDaemon struct {
	mu      sync.Mutex
	script  []int // HTTP statuses, one per request; last repeats
	headers []http.Header
	seen    int
	keys    []string
}

func (d *scriptedDaemon) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		i := d.seen
		d.seen++
		d.keys = append(d.keys, r.Header.Get(HeaderKey))
		if i >= len(d.script) {
			i = len(d.script) - 1
		}
		status := d.script[i]
		var hdr http.Header
		if i < len(d.headers) {
			hdr = d.headers[i]
		}
		d.mu.Unlock()
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		if status == http.StatusOK || status == http.StatusAccepted {
			w.Header().Set(HeaderStatus, StatusMerged)
		}
		w.WriteHeader(status)
	})
}

func (d *scriptedDaemon) requests() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seen
}

// noSleep makes retries instantaneous while recording the delays the
// policy chose.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	var mu sync.Mutex
	return func(_ context.Context, d time.Duration) error {
		mu.Lock()
		*delays = append(*delays, d)
		mu.Unlock()
		return nil
	}
}

func testShard() Shard {
	return Shard{Key: "node-0/w/t0/s1/abc", Node: "node-0", Window: 3, Payload: []byte("ignored by scripted daemon")}
}

func TestUploaderRetriesTransientFailures(t *testing.T) {
	d := &scriptedDaemon{script: []int{http.StatusInternalServerError, http.StatusBadGateway, http.StatusOK}}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	var delays []time.Duration
	reg := telemetry.NewRegistry()
	up := &Uploader{
		BaseURL: ts.URL,
		Policy:  retry.Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, Sleep: noSleep(&delays)},
		Metrics: reg,
	}
	res, err := up.Upload(context.Background(), testShard())
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 || res.Status != StatusMerged {
		t.Errorf("result = %+v", res)
	}
	// Exponential: 10ms then 20ms.
	if len(delays) != 2 || delays[0] != 10*time.Millisecond || delays[1] != 20*time.Millisecond {
		t.Errorf("delays = %v", delays)
	}
	if v := reg.Counter("fleet.upload.retried").Value(); v != 2 {
		t.Errorf("retried counter = %d, want 2", v)
	}
	if d.keys[0] != d.keys[2] {
		t.Errorf("idempotency key changed across retries: %q vs %q", d.keys[0], d.keys[2])
	}
}

func TestUploaderObeysRetryAfter(t *testing.T) {
	d := &scriptedDaemon{
		script:  []int{http.StatusTooManyRequests, http.StatusOK},
		headers: []http.Header{{"Retry-After": []string{"2"}}},
	}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	var delays []time.Duration
	up := &Uploader{
		BaseURL: ts.URL,
		Policy:  retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Sleep: noSleep(&delays)},
	}
	res, err := up.Upload(context.Background(), testShard())
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	// The daemon's 2s hint overrides the 1ms curve.
	if len(delays) != 1 || delays[0] != 2*time.Second {
		t.Errorf("delays = %v, want [2s]", delays)
	}
}

func TestUploaderPermanentRejection(t *testing.T) {
	d := &scriptedDaemon{script: []int{http.StatusBadRequest}}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	up := &Uploader{BaseURL: ts.URL, Policy: retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}}
	res, err := up.Upload(context.Background(), testShard())
	if err == nil {
		t.Fatal("rejected shard reported success")
	}
	if res.Attempts != 1 || d.requests() != 1 {
		t.Errorf("4xx retried: attempts=%d requests=%d", res.Attempts, d.requests())
	}
}

func TestUploaderExhaustsRetries(t *testing.T) {
	d := &scriptedDaemon{script: []int{http.StatusInternalServerError}}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	up := &Uploader{BaseURL: ts.URL, Policy: retry.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}}
	res, err := up.Upload(context.Background(), testShard())
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if res.Attempts != 3 || d.requests() != 3 {
		t.Errorf("attempts=%d requests=%d, want 3/3", res.Attempts, d.requests())
	}
}

func TestUploaderCircuitBreaker(t *testing.T) {
	d := &scriptedDaemon{script: []int{http.StatusInternalServerError}}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	now := time.Unix(0, 0)
	br := &retry.Breaker{Threshold: 2, Cooldown: time.Minute, Now: func() time.Time { return now }}
	reg := telemetry.NewRegistry()
	up := &Uploader{
		BaseURL: ts.URL,
		Policy: retry.Policy{MaxAttempts: 2, BaseDelay: time.Millisecond,
			Sleep: func(context.Context, time.Duration) error { return nil }},
		Breaker: br,
		Metrics: reg,
	}
	if _, err := up.Upload(context.Background(), testShard()); err == nil {
		t.Fatal("want failure")
	}
	if !br.Open() {
		t.Fatal("breaker not open after threshold failures")
	}
	// While open, uploads fail fast without touching the daemon.
	before := d.requests()
	_, err := up.Upload(context.Background(), testShard())
	if !errors.Is(err, retry.ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen", err)
	}
	if d.requests() != before {
		t.Error("open breaker still sent requests")
	}
	if v := reg.Counter("fleet.upload.breaker_fast_fail").Value(); v == 0 {
		t.Error("breaker fast-fail counter is zero")
	}

	// After cooldown the half-open probe goes through; a healthy
	// daemon closes the breaker.
	d.mu.Lock()
	d.script = []int{http.StatusOK}
	d.seen = 0
	d.mu.Unlock()
	now = now.Add(2 * time.Minute)
	res, err := up.Upload(context.Background(), testShard())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusMerged || br.Open() {
		t.Errorf("recovery failed: res=%+v open=%v", res, br.Open())
	}
}

func TestUploaderShedsAreRetryableNotBreaking(t *testing.T) {
	d := &scriptedDaemon{script: []int{http.StatusTooManyRequests, http.StatusTooManyRequests, http.StatusOK}}
	ts := httptest.NewServer(d.handler())
	defer ts.Close()

	br := &retry.Breaker{Threshold: 1, Cooldown: time.Minute}
	up := &Uploader{
		BaseURL: ts.URL,
		Policy: retry.Policy{MaxAttempts: 5, BaseDelay: time.Millisecond,
			Sleep: func(context.Context, time.Duration) error { return nil }},
		Breaker: br,
	}
	res, err := up.Upload(context.Background(), testShard())
	if err != nil {
		t.Fatalf("shed-then-accept upload failed: %v", err)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", res.Attempts)
	}
	if br.Open() {
		t.Error("load shedding tripped the breaker (daemon is alive, it must not)")
	}
}
