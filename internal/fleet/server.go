package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"txsampler/internal/analyzer"
	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

// Admission modes of the degradation ladder. The daemon starts in
// live mode and moves down (and back up) as the merge backlog grows
// and drains; shedding is not a mode but the ladder's floor, entered
// per-request when the journal backlog exceeds MaxLag.
const (
	// modeLive merges shards on arrival: journal, enqueue, ack 200.
	modeLive = iota
	// modeLag journals and acks (202) without enqueueing; a catch-up
	// goroutine re-reads deferred records from disk once the merge
	// queue drains below the low watermark. Memory stays bounded by
	// the queue — overload spills to disk, not to the heap.
	modeLag
)

// Config tunes the daemon. The zero value of every field gets a sane
// default from Open.
type Config struct {
	// Dir is the state directory holding the shard journal. Required.
	Dir string
	// QueueCap bounds the in-memory merge queue (default 256 shards).
	QueueCap int
	// HighWater is the queue depth that flips live -> lag (default
	// 3/4 of QueueCap); LowWater is the depth the queue must drain to
	// before catch-up re-feeds it (default 1/4 of QueueCap).
	HighWater, LowWater int
	// MaxLag bounds journaled-but-unmerged shards; beyond it ingest
	// sheds with 429 + Retry-After instead of growing the backlog
	// (default 8x QueueCap).
	MaxLag int
	// RetryAfter is the hint sent with a 429 (default 500ms).
	RetryAfter time.Duration
	// MaxShardBytes caps an ingest body (default 32 MiB).
	MaxShardBytes int64
	// Retain keeps only the newest N windows; older windows are
	// compacted — deleted from the in-memory aggregate map so their
	// heap is reclaimed — and answer 410 Gone. 0 keeps everything.
	Retain int
	// MergeWorkers sizes the merge worker pool (default GOMAXPROCS).
	// Workers decode shard payloads in parallel and feed the window
	// aggregates through a serialized commutative fold, so the merged
	// result is independent of worker count and completion order.
	MergeWorkers int
	// Metrics receives the daemon's counters and gauges (nil = none).
	Metrics *telemetry.Registry
	// Log receives one line per notable event (nil silences).
	Log io.Writer

	// MergeGate, when non-nil, is called by the merger before every
	// merge. It is a test hook: blocking it stalls the merge pipeline
	// so backpressure and the lag ladder can be exercised
	// deterministically.
	MergeGate func()
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.HighWater <= 0 || c.HighWater > c.QueueCap {
		c.HighWater = c.QueueCap * 3 / 4
	}
	if c.HighWater < 1 {
		c.HighWater = 1
	}
	if c.LowWater <= 0 || c.LowWater >= c.HighWater {
		c.LowWater = c.QueueCap / 4
	}
	if c.MaxLag <= 0 {
		c.MaxLag = 8 * c.QueueCap
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.MaxShardBytes <= 0 {
		c.MaxShardBytes = 32 << 20
	}
	if c.MergeWorkers <= 0 {
		c.MergeWorkers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Server is the fleet ingest daemon: HTTP handlers over a journaled,
// backpressured merge pipeline. Create with Open, serve Handler, stop
// with Close.
type Server struct {
	cfg Config

	// admission state, guarded by mu. Journal appends happen under mu
	// too: the journal is the ordering authority, and admission
	// decisions must see a consistent (accepted, appended, mode) "
	// snapshot against it.
	mu         sync.Mutex
	log        *ShardLog
	accepted   map[string]struct{}
	appended   uint64 // shards journaled (replay included)
	mode       int
	catchupEnd int64 // catch-up read cursor target bookkeeping (diagnostics)

	merged   atomic.Uint64 // shards merged into aggregates (replay included)
	replayed uint64        // shards rebuilt from the journal at startup

	// aggMu serializes the commutative folds the merge workers feed
	// into the window aggregates, and guards the retention watermark.
	aggMu   sync.Mutex
	windows map[int]*windowAgg
	// compactedBelow is the retention horizon: every window ordinal
	// below it has been compacted (aggregate deleted, memory
	// reclaimed) and is permanently 410 Gone. Monotone — it only
	// rises as newer windows arrive — so a compaction decision never
	// depends on merge interleaving, and a journal replay reaches the
	// same horizon by the same appends.
	compactedBelow int

	queue  chan Record
	closed chan struct{}
	wg     sync.WaitGroup

	// counters
	ctrIngested  *telemetry.Counter
	ctrDeferred  *telemetry.Counter
	ctrShed      *telemetry.Counter
	ctrDup       *telemetry.Counter
	ctrRejected  *telemetry.Counter
	ctrReplayed  *telemetry.Counter
	ctrMerged    *telemetry.Counter
	ctrDegraded  *telemetry.Counter
	ctrCompacted *telemetry.Counter
	gaugeLag     *telemetry.Gauge
	gaugeQueue   *telemetry.Gauge
	gaugeWindows *telemetry.Gauge
}

// Open builds the server: it replays the journal in cfg.Dir —
// re-verifying every payload's checksums and deduplicating by
// idempotency key — rebuilds the window aggregates, and starts the
// merge pipeline. After a kill -9 the rebuilt aggregates are
// byte-identical to what an uninterrupted daemon would hold for the
// same accepted shard set.
func Open(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("fleet: Config.Dir is required")
	}
	s := &Server{
		cfg:      cfg,
		accepted: make(map[string]struct{}),
		windows:  make(map[int]*windowAgg),
		queue:    make(chan Record, cfg.QueueCap),
		closed:   make(chan struct{}),
	}
	reg := cfg.Metrics
	s.ctrIngested = reg.Counter("fleet.ingested")
	s.ctrDeferred = reg.Counter("fleet.deferred")
	s.ctrShed = reg.Counter("fleet.shed")
	s.ctrDup = reg.Counter("fleet.duplicates")
	s.ctrRejected = reg.Counter("fleet.rejected")
	s.ctrReplayed = reg.Counter("fleet.replayed")
	s.ctrMerged = reg.Counter("fleet.merged")
	s.ctrDegraded = reg.Counter("fleet.degraded_transitions")
	s.ctrCompacted = reg.Counter("fleet.windows_compacted")
	s.gaugeLag = reg.Gauge("fleet.merge_lag", false)
	s.gaugeQueue = reg.Gauge("fleet.queue_depth", false)
	s.gaugeWindows = reg.Gauge("fleet.windows", false)

	log, err := OpenShardLog(filepath.Join(cfg.Dir, JournalName), func(rec Record) error {
		if _, dup := s.accepted[rec.Key]; dup {
			// A crash between fsync and ack can journal a shard whose
			// client retried it later; the second copy merges to
			// nothing.
			return nil
		}
		db, err := profile.Read(bytes.NewReader(rec.Payload))
		if err != nil {
			// An undecodable payload can only be the torn tail (the
			// frame is checksummed); let the log truncate from here.
			return fmt.Errorf("fleet: replay %s: %w", rec.Key, err)
		}
		s.accepted[rec.Key] = struct{}{}
		// Replay folds under the same retention horizon as live merge:
		// the watermark is a pure function of the append sequence, so
		// the rebuilt retained aggregates are byte-identical and the
		// compacted ones never re-materialize.
		if rec.Window >= s.compactedBelow {
			s.window(rec.Window).add(db)
			s.compactLocked()
		}
		s.replayed++
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.log = log
	s.appended = uint64(len(s.accepted))
	s.merged.Store(s.appended)
	s.ctrReplayed.Add(s.replayed)
	s.ctrMerged.Add(s.replayed)
	s.gaugeWindows.Set(uint64(len(s.windows)))
	if s.replayed > 0 {
		s.logf("fleet: replayed %d shards into %d windows", s.replayed, len(s.windows))
	}
	s.wg.Add(cfg.MergeWorkers)
	for i := 0; i < cfg.MergeWorkers; i++ {
		go s.merger()
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// window returns the aggregate for a window, creating it. Callers
// hold aggMu (or are the single replay goroutine).
func (s *Server) window(w int) *windowAgg {
	a := s.windows[w]
	if a == nil {
		a = newWindowAgg()
		s.windows[w] = a
	}
	return a
}

// Replayed returns the number of shards rebuilt from the journal at
// startup.
func (s *Server) Replayed() uint64 { return s.replayed }

// Lag returns the journaled-but-unmerged shard count.
func (s *Server) Lag() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lagLocked()
}

func (s *Server) lagLocked() uint64 {
	return s.appended - s.merged.Load()
}

// Ready implements the readiness probe: the daemon is ready while it
// accepts shards (live or lag mode); it is unready while the ladder
// has hit its shedding floor.
func (s *Server) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lag := s.lagLocked(); lag >= uint64(s.cfg.MaxLag) {
		return fmt.Errorf("shedding: merge lag %d >= max %d", lag, s.cfg.MaxLag)
	}
	return nil
}

// compactLocked enforces the retention policy after a fold: when more
// than Retain windows are live, every window below the Retain largest
// ordinals is deleted from the aggregate map — the CCT, per-thread
// table, and program set it held become garbage — and the horizon
// watermark rises to the smallest surviving ordinal. Caller holds
// aggMu (or is the single-threaded replay).
func (s *Server) compactLocked() {
	if s.cfg.Retain <= 0 || len(s.windows) <= s.cfg.Retain {
		return
	}
	ords := make([]int, 0, len(s.windows))
	for w := range s.windows {
		ords = append(ords, w)
	}
	sort.Ints(ords)
	cut := ords[len(ords)-s.cfg.Retain]
	for _, w := range ords {
		if w < cut {
			delete(s.windows, w)
			s.ctrCompacted.Add(1)
		}
	}
	if cut > s.compactedBelow {
		s.compactedBelow = cut
	}
}

// merger is one merge worker. Workers race on the queue and decode
// payloads concurrently; the folds themselves serialize on aggMu.
// Every combining operation is commutative, so the aggregates are
// independent of which worker merged what and in what order.
func (s *Server) merger() {
	defer s.wg.Done()
	for {
		select {
		case rec := <-s.queue:
			s.merge(rec)
		case <-s.closed:
			// Drain what is already queued so Close leaves merge lag
			// only for journaled-deferred shards (replayed next open).
			for {
				select {
				case rec := <-s.queue:
					s.merge(rec)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) merge(rec Record) {
	if s.cfg.MergeGate != nil {
		s.cfg.MergeGate()
	}
	db, err := profile.Read(bytes.NewReader(rec.Payload))
	if err != nil {
		// Verified at ingest and checksummed on disk; reaching here
		// means in-memory corruption. Count it, never crash the
		// pipeline.
		s.ctrRejected.Add(1)
		s.logf("fleet: merge %s: %v", rec.Key, err)
	} else {
		s.aggMu.Lock()
		if rec.Window >= s.compactedBelow {
			s.window(rec.Window).add(db)
			s.compactLocked()
		}
		// A shard below the horizon stays journaled but folds to
		// nothing: its window is already compacted and can never be
		// served again.
		s.gaugeWindows.Set(uint64(len(s.windows)))
		s.aggMu.Unlock()
	}
	s.merged.Add(1)
	s.ctrMerged.Add(1)
	s.gaugeLag.Set(s.Lag())
	s.gaugeQueue.Set(uint64(len(s.queue)))
}

// catchup re-reads deferred records from the journal file and feeds
// them to the merge queue once it drains below the low watermark,
// then returns the ladder to live mode. It owns the byte range
// [from, journal end): while the server is in lag mode every new
// append lands in that range, so nothing is merged twice and nothing
// is skipped.
func (s *Server) catchup(from int64) {
	defer s.wg.Done()
	pos := from
	for {
		// Wait for the queue to drain below the low watermark.
		for len(s.queue) > s.cfg.LowWater {
			select {
			case <-s.closed:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
		s.mu.Lock()
		end := s.log.Size()
		if end == pos {
			// Caught up: back to merge-on-arrival.
			s.mode = modeLive
			s.mu.Unlock()
			s.logf("fleet: caught up; back to live mode")
			return
		}
		s.catchupEnd = end
		path := s.log.Path()
		s.mu.Unlock()

		recs, err := ReadRange(path, pos, end)
		if err != nil {
			// Disk-level trouble: stay in lag mode and report; the
			// journal is still the durable truth for the next open.
			s.logf("fleet: catch-up read failed: %v", err)
			select {
			case <-s.closed:
				return
			case <-time.After(100 * time.Millisecond):
			}
			continue
		}
		for _, rec := range recs {
			select {
			case s.queue <- rec:
			case <-s.closed:
				return
			}
		}
		pos = end
	}
}

// Close stops the pipeline: the merge workers drain the in-memory
// queue and the journal is closed. Shards journaled but not merged (deferred
// during lag mode) are replayed by the next Open — nothing
// acknowledged is ever lost.
func (s *Server) Close() error {
	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		return nil
	default:
	}
	close(s.closed)
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.Close()
}

// Handler returns the daemon's HTTP API:
//
//	POST /ingest    framed v2 profile bytes (X-Fleet-Key/-Node/-Window)
//	GET  /profile   ?window=N -> framed aggregate database
//	GET  /top       ?window=N&by=aborts|sharing|time&k=K -> text ranking
//	GET  /stats     JSON admission/merge/window statistics
//	GET  /healthz   process liveness
//	GET  /readyz    admission readiness (503 while shedding)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", s.handleIngest)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/top", s.handleTop)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if err := s.Ready(); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		s.mu.Lock()
		mode := s.mode
		s.mu.Unlock()
		fmt.Fprintf(w, "ready (%s)\n", modeName(mode))
	})
	return mux
}

func modeName(mode int) string {
	if mode == modeLag {
		return "degraded: journal-now-merge-later"
	}
	return "live: merge-on-arrival"
}

// Shard ingest statuses reported in the X-Fleet-Status header.
const (
	StatusMerged    = "accepted"  // journaled and queued for merge
	StatusDeferred  = "deferred"  // journaled; merge deferred to catch-up
	StatusDuplicate = "duplicate" // idempotency key already accepted
)

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxShardBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		s.ctrRejected.Add(1)
		http.Error(w, fmt.Sprintf("reading shard body: %v", err), http.StatusBadRequest)
		return
	}
	// The framed header's CRC32+SHA-256 double as the wire integrity
	// check: a payload truncated by a mid-body connection reset or
	// corrupted in flight never reaches the journal.
	if _, err := profile.Read(bytes.NewReader(data)); err != nil {
		s.ctrRejected.Add(1)
		http.Error(w, fmt.Sprintf("shard payload: %v", err), http.StatusBadRequest)
		return
	}
	key := r.Header.Get(HeaderKey)
	if key == "" {
		sum := sha256.Sum256(data)
		key = hex.EncodeToString(sum[:])
	}
	window := 0
	if h := r.Header.Get(HeaderWindow); h != "" {
		window, err = strconv.Atoi(h)
		if err != nil || window < 0 {
			s.ctrRejected.Add(1)
			http.Error(w, fmt.Sprintf("bad %s header %q", HeaderWindow, h), http.StatusBadRequest)
			return
		}
	}
	rec := Record{Key: key, Node: r.Header.Get(HeaderNode), Window: window, Payload: data}

	s.mu.Lock()
	if _, dup := s.accepted[key]; dup {
		s.mu.Unlock()
		s.ctrDup.Add(1)
		w.Header().Set(HeaderStatus, StatusDuplicate)
		fmt.Fprintln(w, "duplicate: already accepted")
		return
	}
	if lag := s.lagLocked(); lag >= uint64(s.cfg.MaxLag) {
		s.mu.Unlock()
		s.ctrShed.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		http.Error(w, fmt.Sprintf("shedding: merge lag %d >= max %d; retry later", lag, s.cfg.MaxLag),
			http.StatusTooManyRequests)
		return
	}
	// Journal before acknowledging: the fsynced append is the commit
	// point. A kill -9 after this line loses nothing; a kill before
	// it loses only an unacknowledged shard the client will retry.
	off, err := s.log.Append(rec)
	if err != nil {
		s.mu.Unlock()
		s.ctrRejected.Add(1)
		http.Error(w, fmt.Sprintf("journal append: %v", err), http.StatusInternalServerError)
		return
	}
	s.accepted[key] = struct{}{}
	s.appended++
	status := StatusMerged
	code := http.StatusOK
	if s.mode == modeLive {
		if len(s.queue) >= s.cfg.HighWater {
			// High watermark: step down the ladder. This record is
			// the catch-up goroutine's first deferred record.
			s.mode = modeLag
			s.ctrDegraded.Add(1)
			s.wg.Add(1)
			go s.catchup(off)
			s.logf("fleet: queue depth %d >= high watermark %d; degrading to journal-now-merge-later", len(s.queue), s.cfg.HighWater)
			status, code = StatusDeferred, http.StatusAccepted
		} else {
			select {
			case s.queue <- rec:
			default:
				// Lost the race for the last slot: degrade as above.
				s.mode = modeLag
				s.ctrDegraded.Add(1)
				s.wg.Add(1)
				go s.catchup(off)
				status, code = StatusDeferred, http.StatusAccepted
			}
		}
	} else {
		status, code = StatusDeferred, http.StatusAccepted
	}
	s.mu.Unlock()

	s.ctrIngested.Add(1)
	if status == StatusDeferred {
		s.ctrDeferred.Add(1)
	}
	s.gaugeLag.Set(s.Lag())
	s.gaugeQueue.Set(uint64(len(s.queue)))
	w.Header().Set(HeaderStatus, status)
	w.WriteHeader(code)
	fmt.Fprintln(w, status)
}

// Ingest API headers.
const (
	// HeaderKey is the shard's idempotency key; absent, the payload's
	// SHA-256 is used. Retried uploads with the same key are
	// acknowledged but never double-counted.
	HeaderKey = "X-Fleet-Key"
	// HeaderNode names the origin node (diagnostics only).
	HeaderNode = "X-Fleet-Node"
	// HeaderWindow is the shard's aggregation window ordinal
	// (default 0). Windows are logical — assigned by the node, not by
	// daemon wall clock — so aggregates stay reproducible.
	HeaderWindow = "X-Fleet-Window"
	// HeaderStatus reports the ingest outcome (see Status*).
	HeaderStatus = "X-Fleet-Status"
)

// retainedLocked reports whether a window ordinal is above the
// retention horizon. Compacted windows are gone from memory (the
// journal still holds their shards); only ordinals at or above the
// watermark are ever served. Caller holds aggMu.
func (s *Server) retainedLocked(window int) bool {
	return window >= s.compactedBelow
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	window, err := windowParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.aggMu.Lock()
	if !s.retainedLocked(window) {
		s.aggMu.Unlock()
		http.Error(w, fmt.Sprintf("window %d compacted (retain=%d)", window, s.cfg.Retain), http.StatusGone)
		return
	}
	agg, ok := s.windows[window]
	if !ok {
		s.aggMu.Unlock()
		http.Error(w, fmt.Sprintf("no aggregate for window %d", window), http.StatusNotFound)
		return
	}
	db := agg.database(window)
	s.aggMu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := db.Write(w); err != nil {
		s.logf("fleet: writing window %d aggregate: %v", window, err)
	}
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	window, err := windowParam(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k := 5
	if h := r.URL.Query().Get("k"); h != "" {
		if k, err = strconv.Atoi(h); err != nil || k <= 0 {
			http.Error(w, fmt.Sprintf("bad k %q", h), http.StatusBadRequest)
			return
		}
	}
	by := r.URL.Query().Get("by")
	if by == "" {
		by = "aborts"
	}
	s.aggMu.Lock()
	if !s.retainedLocked(window) {
		s.aggMu.Unlock()
		http.Error(w, fmt.Sprintf("window %d compacted (retain=%d)", window, s.cfg.Retain), http.StatusGone)
		return
	}
	agg, ok := s.windows[window]
	if !ok {
		s.aggMu.Unlock()
		http.Error(w, fmt.Sprintf("no aggregate for window %d", window), http.StatusNotFound)
		return
	}
	db := agg.database(window)
	shards := agg.shards
	s.aggMu.Unlock()

	rep := db.Report()
	var hot []analyzer.HotContext
	var value func(*core.Metrics) uint64
	switch by {
	case "aborts":
		hot = rep.TopAbortWeight(k)
		// Display the same app-abort weight the ranking sorts by
		// (ambient causes excluded).
		value = func(m *core.Metrics) uint64 {
			var sum uint64
			for c, v := range m.AbortWeight {
				if !htm.Cause(c).Ambient() {
					sum += v
				}
			}
			return sum
		}
	case "sharing":
		hot = rep.TopFalseSharing(k)
		value = func(m *core.Metrics) uint64 { return m.FalseSharing }
	case "time":
		hot = rep.TopTime(k)
		value = func(m *core.Metrics) uint64 { return m.T }
	default:
		http.Error(w, fmt.Sprintf("bad by %q (want aborts, sharing, or time)", by), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "window %d top %d by %s (%d shards)\n", window, k, by, shards)
	for i, hc := range hot {
		fmt.Fprintf(w, "%2d. %12d  %s\n", i+1, value(&hc.Metrics), hc.Path())
	}
}

func windowParam(r *http.Request) (int, error) {
	h := r.URL.Query().Get("window")
	if h == "" {
		return 0, nil
	}
	w, err := strconv.Atoi(h)
	if err != nil || w < 0 {
		return 0, fmt.Errorf("bad window %q", h)
	}
	return w, nil
}

// Stats is the /stats response document.
type Stats struct {
	Mode     string        `json:"mode"`
	Lag      uint64        `json:"merge_lag"`
	Queue    int           `json:"queue_depth"`
	Appended uint64        `json:"shards_journaled"`
	Merged   uint64        `json:"shards_merged"`
	Replayed uint64        `json:"shards_replayed"`
	Windows  []WindowStats `json:"windows"`
	Retain   int           `json:"retain,omitempty"`
	// CompactedBelow is the retention horizon: windows below this
	// ordinal were dropped from memory and answer 410 Gone.
	CompactedBelow int                     `json:"compacted_below,omitempty"`
	Counters       []telemetry.MetricValue `json:"counters,omitempty"`
}

// WindowStats summarizes one aggregation window.
type WindowStats struct {
	Window   int  `json:"window"`
	Shards   int  `json:"shards"`
	Retained bool `json:"retained"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := Stats{
		Mode:     modeName(s.mode),
		Lag:      s.lagLocked(),
		Queue:    len(s.queue),
		Appended: s.appended,
		Merged:   s.merged.Load(),
		Replayed: s.replayed,
		Retain:   s.cfg.Retain,
	}
	s.mu.Unlock()
	s.aggMu.Lock()
	st.CompactedBelow = s.compactedBelow
	wins := make([]int, 0, len(s.windows))
	for win := range s.windows {
		wins = append(wins, win)
	}
	sort.Ints(wins)
	for _, win := range wins {
		st.Windows = append(st.Windows, WindowStats{
			Window: win, Shards: s.windows[win].shards, Retained: s.retainedLocked(win),
		})
	}
	s.aggMu.Unlock()
	st.Counters = s.cfg.Metrics.Snapshot(true)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
