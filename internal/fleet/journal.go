// Package fleet turns the one-shot profiler into a continuous-
// profiling backend: a long-running daemon (cmd/txsamplerd) ingests
// framed v2 profile shards over HTTP from many nodes and merges them
// into time-windowed aggregate calling-context trees, and a resilient
// client (Uploader) ships shards with deadlines, bounded backoff,
// idempotency keys, and a per-node circuit breaker.
//
// The failure story is the design center, per the hybrid-TM
// literature's lesson that the degraded path dominates behaviour
// under contention: every accepted shard is fsynced to an append-only
// journal before it is acknowledged (kill -9 at any point replays to
// byte-identical aggregates), admission degrades along an explicit
// ladder — merge-on-arrival, then journal-now-merge-later, then load
// shedding with 429 + Retry-After — and every degradation step is
// counted in telemetry.
package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"txsampler/internal/campaign"
)

// JournalName is the shard journal's filename inside the daemon's
// state directory.
const JournalName = "shards.jsonl"

// Record is one journaled shard: its idempotency key, origin node,
// aggregation window, and the framed v2 profile payload (base64 in
// JSON). The payload carries its own CRC32+SHA-256 header, so replay
// re-verifies integrity end to end.
type Record struct {
	Key     string `json:"key"`
	Node    string `json:"node,omitempty"`
	Window  int    `json:"window"`
	Payload []byte `json:"payload"`
}

// ShardLog is the daemon's append-only shard journal, built on the
// campaign package's torn-tail-truncating JSONL machinery. Appends
// are fsynced before the ingest API acknowledges, so an acknowledged
// shard is never lost; a crash can at worst tear the final line,
// which OpenShardLog truncates away on restart.
type ShardLog struct {
	log *campaign.AppendLog
}

// OpenShardLog opens the journal at path, creating it if missing, and
// replays every intact record through replay in append order. A line
// that does not decode is the torn tail of a crashed append — it is
// truncated so the log ends on a clean boundary.
func OpenShardLog(path string, replay func(rec Record) error) (*ShardLog, error) {
	log, err := campaign.OpenAppendLog(path, true, func(line []byte) error {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		if rec.Key == "" {
			return fmt.Errorf("fleet: journal record without key")
		}
		if replay != nil {
			return replay(rec)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ShardLog{log: log}, nil
}

// Append journals one record and fsyncs it, returning the byte offset
// the record starts at (the catch-up reader's cursor unit).
func (l *ShardLog) Append(rec Record) (offset int64, err error) {
	line, err := json.Marshal(rec)
	if err != nil {
		return l.log.Size(), err
	}
	return l.log.Append(line)
}

// Size returns the journal's current intact byte length.
func (l *ShardLog) Size() int64 { return l.log.Size() }

// Path returns the journal file path.
func (l *ShardLog) Path() string { return l.log.Path() }

// Close closes the journal file.
func (l *ShardLog) Close() error { return l.log.Close() }

// ReadRange re-reads the records in the byte range [from, to) of the
// journal at path. The daemon's journal-now-merge-later catch-up uses
// it to merge deferred shards from disk instead of holding their
// payloads in memory; both bounds must lie on record boundaries
// (offsets returned by Append and Size).
func ReadRange(path string, from, to int64) ([]Record, error) {
	if to <= from {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(from, io.SeekStart); err != nil {
		return nil, err
	}
	buf := make([]byte, to-from)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("fleet: journal range [%d,%d): %w", from, to, err)
	}
	var recs []Record
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("fleet: journal range [%d,%d) does not end on a record boundary", from, to)
		}
		var rec Record
		if err := json.Unmarshal(buf[:nl], &rec); err != nil {
			return nil, fmt.Errorf("fleet: journal record at offset %d: %w", to-int64(len(buf)), err)
		}
		recs = append(recs, rec)
		buf = buf[nl+1:]
	}
	return recs, nil
}
