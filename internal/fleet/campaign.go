package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"txsampler"
	"txsampler/internal/campaign"
	"txsampler/internal/faults"
	"txsampler/internal/profile"
	"txsampler/internal/retry"
	"txsampler/internal/telemetry"
)

// FleetConfig describes a simulated fleet campaign: Nodes uploader
// nodes each ship one profile shard per workload to a txsamplerd
// daemon, optionally through a seed-deterministic fault-injecting
// network.
type FleetConfig struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8090".
	BaseURL string
	// Nodes is the simulated fleet size (default 4).
	Nodes int
	// Workloads to profile and upload (required).
	Workloads []string
	// Threads (0 = workload default) and Seed parameterize the runs.
	Threads int
	Seed    int64
	// Window is the aggregation window ordinal stamped on every shard.
	Window int
	// Plan injects machine faults into the profiled runs (the
	// crash-write storage fault does not apply; see Plan.MachineOnly).
	Plan faults.Plan
	// Net injects network faults into the uploads, seeded per node so
	// every node sees its own deterministic fault storm.
	Net faults.NetPlan
	// Quantum overrides the scheduler quantum for the profiled runs.
	Quantum int
	// Retries and Backoff shape each uploader's retry policy
	// (defaults: 5 attempts from a 50ms base).
	Retries int
	Backoff time.Duration
	// ShardTimeout bounds each upload attempt.
	ShardTimeout time.Duration
	// Context cancels the campaign between uploads.
	Context context.Context
	// Metrics receives uploader counters; Log receives progress lines.
	Metrics *telemetry.Registry
	Log     io.Writer
}

// FleetReport summarizes a fleet campaign.
type FleetReport struct {
	Shards     int // uploads attempted (nodes x workloads)
	Accepted   int // acked 200: journaled and merged on arrival
	Deferred   int // acked 202: journaled, merge deferred
	Duplicates int // acked as already-accepted idempotency keys
	Failed     int // uploads that exhausted retries or were rejected
	Attempts   int // total HTTP attempts across all uploads
	Net        faults.NetStats
}

// RunFleet profiles every configured workload once per node and
// uploads the shards concurrently (one goroutine per node, shards in
// workload order within a node).
//
// All nodes at the same base seed produce identical profile bytes, so
// the engine runs each workload once and shares the payload across
// nodes — the fleet dimension stresses ingestion, not the simulator.
// Each node still uploads under its own idempotency key, its own
// fault-injected transport (seeded Seed^node), and its own circuit
// breaker, so the daemon sees a genuine N-node fleet.
func RunFleet(cfg FleetConfig) (*FleetReport, error) {
	if len(cfg.Workloads) == 0 {
		return nil, fmt.Errorf("fleet: no workloads configured")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Retries <= 0 {
		cfg.Retries = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	// The shard identity: everything that changes the profile bytes.
	confighash := campaign.Hash(
		cfg.Plan.MachineOnly().String(),
		strconv.Itoa(cfg.Quantum),
		strconv.Itoa(profile.FormatVersion),
	)

	// Profile each workload once; payloads are shared across nodes.
	payloads := make(map[string][]byte, len(cfg.Workloads))
	for _, name := range cfg.Workloads {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := txsampler.Run(name, txsampler.Options{
			Threads: cfg.Threads,
			Seed:    cfg.Seed,
			Profile: true,
			Faults:  cfg.Plan.MachineOnly(),
			Quantum: cfg.Quantum,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: profiling %s: %w", name, err)
		}
		var buf bytes.Buffer
		if err := profile.FromReport(res.Report).Write(&buf); err != nil {
			return nil, fmt.Errorf("fleet: serializing %s: %w", name, err)
		}
		payloads[name] = buf.Bytes()
		logf("fleet: profiled %s (%d bytes)", name, buf.Len())
	}

	rep := &FleetReport{}
	var mu sync.Mutex
	var injectors []*faults.NetInjector
	var wg sync.WaitGroup
	for node := 0; node < cfg.Nodes; node++ {
		nodeName := fmt.Sprintf("node-%03d", node)
		var transport http.RoundTripper
		if cfg.Net.Enabled() {
			nt := faults.NewNetTransport(nil, cfg.Net, uint64(cfg.Seed)^uint64(node+1))
			injectors = append(injectors, nt.Injector)
			transport = nt
		}
		up := &Uploader{
			BaseURL: cfg.BaseURL,
			Client:  &http.Client{Transport: transport},
			Policy: retry.Policy{
				MaxAttempts: cfg.Retries,
				BaseDelay:   cfg.Backoff,
				Jitter:      0.2,
				Rand:        retry.SeededRand(cfg.Seed ^ int64(node+1)),
			},
			Breaker:      &retry.Breaker{Threshold: cfg.Retries, Cooldown: cfg.Backoff},
			ShardTimeout: cfg.ShardTimeout,
			Metrics:      cfg.Metrics,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, name := range cfg.Workloads {
				shard := Shard{
					Key: fmt.Sprintf("%s/%s/t%d/s%d/%s",
						nodeName, name, cfg.Threads, cfg.Seed, confighash),
					Node:    nodeName,
					Window:  cfg.Window,
					Payload: payloads[name],
				}
				res, err := up.Upload(ctx, shard)
				mu.Lock()
				rep.Shards++
				rep.Attempts += res.Attempts
				switch {
				case err != nil:
					rep.Failed++
					logf("fleet: %s: %s failed after %d attempts: %v", nodeName, name, res.Attempts, err)
				case res.Status == StatusDuplicate:
					rep.Duplicates++
				case res.Status == StatusDeferred:
					rep.Deferred++
				default:
					rep.Accepted++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, inj := range injectors {
		st := inj.Snapshot()
		rep.Net.Delayed += st.Delayed
		rep.Net.DelayedMS += st.DelayedMS
		rep.Net.Dropped += st.Dropped
		rep.Net.Duplicated += st.Duplicated
		rep.Net.Resets += st.Resets
	}
	logf("fleet: %d shards: %d accepted, %d deferred, %d duplicate, %d failed (%d attempts; net faults: %s)",
		rep.Shards, rep.Accepted, rep.Deferred, rep.Duplicates, rep.Failed, rep.Attempts, rep.Net)
	return rep, nil
}
