package fleet

// Benchmarks for the ingest daemon's two throughput axes: the
// journaled admission path (fsync-bound) and the decode+fold merge
// pipeline (CPU-bound, scales with MergeWorkers). Both report
// shards/sec so benchdiff can gate regressions on a
// higher-is-better metric.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// benchRecords pre-builds n distinct already-validated shard records
// so the benchmark loop measures only the merge pipeline.
func benchRecords(b *testing.B, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Key:     fmt.Sprintf("bench-%d", i),
			Window:  0,
			Payload: wideShardBytes(b, 0, 200),
		}
	}
	return recs
}

// mergeShardsPerSec pushes b.N pre-journaled records straight into the
// merge queue and waits for the worker pool to fold them all.
func mergeShardsPerSec(b *testing.B, workers int) {
	srv, err := Open(Config{Dir: b.TempDir(), MergeWorkers: workers, QueueCap: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	recs := benchRecords(b, 64)
	// The records bypass handleIngest, so account for them up front to
	// keep the lag arithmetic (appended - merged) from underflowing.
	srv.mu.Lock()
	srv.appended = uint64(b.N)
	srv.mu.Unlock()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.queue <- recs[i%len(recs)]
	}
	for srv.merged.Load() < uint64(b.N) {
		time.Sleep(50 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "shards/sec")
}

// BenchmarkFleetMergeShardsPerSec measures merge-pipeline throughput
// with one worker versus a full pool. The parallel/single ratio is the
// fan-in scaling number the fleet daemon's sizing relies on (on a
// single-core host the two coincide).
func BenchmarkFleetMergeShardsPerSec(b *testing.B) {
	// "max" rather than the numeric GOMAXPROCS so the benchmark name —
	// and the checked-in baseline key — is stable across runner core
	// counts.
	b.Run("workers=1", func(b *testing.B) { mergeShardsPerSec(b, 1) })
	b.Run("workers=max", func(b *testing.B) { mergeShardsPerSec(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkFleetIngestShardsPerSec measures the full admission path —
// validation, journal append with fsync, queueing — through the HTTP
// handler with a distinct idempotency key per shard.
func BenchmarkFleetIngestShardsPerSec(b *testing.B) {
	srv, err := Open(Config{Dir: b.TempDir(), QueueCap: 1 << 16, MaxLag: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	h := srv.Handler()
	payload := wideShardBytes(b, 0, 200)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(payload))
		req.Header.Set(HeaderKey, fmt.Sprintf("ingest-%d", i))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK && rw.Code != http.StatusAccepted {
			b.Fatalf("ingest %d: status %d: %s", i, rw.Code, rw.Body.String())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "shards/sec")
	waitLagZeroB(b, srv)
}

func waitLagZeroB(b *testing.B, srv *Server) {
	deadline := time.Now().Add(30 * time.Second)
	for srv.Lag() != 0 {
		if time.Now().After(deadline) {
			b.Fatalf("merge lag stuck at %d", srv.Lag())
		}
		time.Sleep(time.Millisecond)
	}
}
