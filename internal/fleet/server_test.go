package fleet

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

// shardBytes builds a small, valid framed v2 database whose contents
// are a function of program and weight, so tests can craft distinct
// shards cheaply.
func shardBytes(t testing.TB, program string, tid int, weight uint64) []byte {
	t.Helper()
	var leaf core.Metrics
	leaf.W = 10 * weight
	leaf.T = 4 * weight
	leaf.AbortWeight[htm.Conflict] = weight
	leaf.AbortCount[htm.Conflict] = 1
	leaf.FalseSharing = weight / 2
	db := &profile.Database{
		Version: profile.FormatVersion,
		Program: program,
		Threads: 2,
		Periods: [5]uint64{2000000, 20011, 20011, 8009, 8009},
		Totals:  leaf,
		PerThread: []profile.Thread{
			{TID: tid, CommitSamples: weight, AbortSamples: 1},
		},
		Root: &profile.Node{
			Fn: "<root>",
			Children: []*profile.Node{
				{Fn: "main." + strings.ReplaceAll(program, "/", "_"), Site: "L1", Metrics: leaf},
			},
		},
	}
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	srv, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// ingest POSTs one shard and returns the response (body consumed into
// the returned string).
func ingest(t *testing.T, url string, payload []byte, key string, window int) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/ingest", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set(HeaderKey, key)
	}
	req.Header.Set(HeaderWindow, fmt.Sprint(window))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body
}

func waitLagZero(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Lag() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("merge lag stuck at %d", srv.Lag())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestIngestAndQuery(t *testing.T) {
	srv, ts := openTestServer(t, Config{Metrics: telemetry.NewRegistry()})
	for i := 0; i < 3; i++ {
		payload := shardBytes(t, "micro/low-abort", i, uint64(10*(i+1)))
		resp, body := ingest(t, ts.URL, payload, fmt.Sprintf("node-%d/shard", i), 0)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, resp.StatusCode, body)
		}
		if st := resp.Header.Get(HeaderStatus); st != StatusMerged {
			t.Fatalf("ingest %d: status header %q", i, st)
		}
	}
	waitLagZero(t, srv)

	resp, body := get(t, ts.URL+"/profile?window=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: status %d: %s", resp.StatusCode, body)
	}
	agg, err := profile.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("aggregate does not parse: %v", err)
	}
	// Conflict weights 10+20+30 sum commutatively.
	if got := agg.Totals.AbortWeight[htm.Conflict]; got != 60 {
		t.Errorf("aggregate conflict weight = %d, want 60", got)
	}
	if len(agg.PerThread) != 3 {
		t.Errorf("aggregate per-thread entries = %d, want 3", len(agg.PerThread))
	}
	if !strings.HasPrefix(agg.Program, "fleet/window-0[") {
		t.Errorf("aggregate program = %q", agg.Program)
	}

	resp, body = get(t, ts.URL+"/top?window=0&by=aborts&k=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("top: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "main.micro_low-abort") {
		t.Errorf("top output missing hot context:\n%s", body)
	}
	for _, by := range []string{"sharing", "time"} {
		resp, _ = get(t, ts.URL+"/top?window=0&by="+by)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("top by %s: status %d", by, resp.StatusCode)
		}
	}

	resp, body = get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	for _, want := range []string{`"shards_journaled": 3`, `"shards_merged": 3`, `"fleet.ingested"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("stats missing %q:\n%s", want, body)
		}
	}

	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "live") {
		t.Errorf("readyz: status %d body %q", resp.StatusCode, body)
	}

	// Error paths.
	resp, _ = get(t, ts.URL+"/profile?window=7")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing window: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/profile?window=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/top?window=0&by=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad by: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/ingest")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /ingest: status %d", resp.StatusCode)
	}
}

func TestIngestIdempotency(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, ts := openTestServer(t, Config{Metrics: reg})
	payload := shardBytes(t, "micro/low-abort", 0, 10)

	resp, _ := ingest(t, ts.URL, payload, "same-key", 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: status %d", resp.StatusCode)
	}
	resp, _ = ingest(t, ts.URL, payload, "same-key", 0)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(HeaderStatus) != StatusDuplicate {
		t.Fatalf("retry: status %d header %q", resp.StatusCode, resp.Header.Get(HeaderStatus))
	}
	// No key: the payload hash is the key, so resending identical
	// bytes is also a duplicate.
	resp, _ = ingest(t, ts.URL, payload, "", 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyless ingest: status %d", resp.StatusCode)
	}
	resp, _ = ingest(t, ts.URL, payload, "", 0)
	if resp.Header.Get(HeaderStatus) != StatusDuplicate {
		t.Fatalf("keyless retry not deduplicated (header %q)", resp.Header.Get(HeaderStatus))
	}
	waitLagZero(t, srv)

	_, body := get(t, ts.URL+"/profile?window=0")
	agg, err := profile.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct keys accepted (named + hash), each exactly once.
	if got := agg.Totals.AbortWeight[htm.Conflict]; got != 20 {
		t.Errorf("aggregate conflict weight = %d, want 20 (no double-count)", got)
	}
	if v := reg.Counter("fleet.duplicates").Value(); v != 2 {
		t.Errorf("duplicate counter = %d, want 2", v)
	}
}

func TestIngestRejectsCorruptPayload(t *testing.T) {
	_, ts := openTestServer(t, Config{})
	payload := shardBytes(t, "micro/low-abort", 0, 10)

	// Flip a payload byte: the frame checksum catches it.
	corrupt := bytes.Clone(payload)
	corrupt[len(corrupt)-2] ^= 0xff
	resp, body := ingest(t, ts.URL, corrupt, "", 0)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt shard: status %d: %s", resp.StatusCode, body)
	}
	// Truncation (a reset mid-body that somehow reached us) too.
	resp, _ = ingest(t, ts.URL, payload[:len(payload)/2], "", 0)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated shard: status %d", resp.StatusCode)
	}
	resp, _ = ingest(t, ts.URL, []byte("not a profile"), "", 0)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage shard: status %d", resp.StatusCode)
	}
	// Bad window header.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/ingest", bytes.NewReader(payload))
	req.Header.Set(HeaderWindow, "minus one")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window header: status %d", r2.StatusCode)
	}
}

// TestDegradationLadder drives the server down the ladder with a
// blocked merge pipeline: live acks, then deferred acks past the high
// watermark, then 429 shedding past max lag — and back to live once
// the merger drains.
func TestDegradationLadder(t *testing.T) {
	gate := make(chan struct{})
	reg := telemetry.NewRegistry()
	srv, ts := openTestServer(t, Config{
		QueueCap:  2,
		HighWater: 2,
		LowWater:  1,
		MaxLag:    6,
		Metrics:   reg,
		MergeGate: func() { <-gate },
		// One worker: with a pool, each worker absorbs a queued shard
		// before blocking on the gate, which would keep the queue below
		// the high watermark on many-core machines and never trip the
		// ladder.
		MergeWorkers: 1,
	})

	statuses := make(map[string]int)
	codes := make(map[int]int)
	var shedResp *http.Response
	for i := 0; i < 10; i++ {
		payload := shardBytes(t, "micro/low-abort", i, uint64(i+1))
		resp, _ := ingest(t, ts.URL, payload, fmt.Sprintf("shard-%d", i), 0)
		statuses[resp.Header.Get(HeaderStatus)]++
		codes[resp.StatusCode]++
		if resp.StatusCode == http.StatusTooManyRequests {
			shedResp = resp
		}
	}
	if statuses[StatusMerged] == 0 || statuses[StatusDeferred] == 0 || codes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("ladder not exercised: statuses=%v codes=%v", statuses, codes)
	}
	if shedResp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// Shedding makes the daemon unready.
	resp, _ := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while shedding: status %d", resp.StatusCode)
	}
	if v := reg.Counter("fleet.shed").Value(); v == 0 {
		t.Error("shed counter is zero")
	}
	if v := reg.Counter("fleet.degraded_transitions").Value(); v == 0 {
		t.Error("degraded transition counter is zero")
	}

	// Unblock the pipeline: everything journaled must merge, and the
	// shed shards retry through to acceptance.
	close(gate)
	waitLagZero(t, srv)
	for i := 0; i < 10; i++ {
		payload := shardBytes(t, "micro/low-abort", i, uint64(i+1))
		resp, body := ingest(t, ts.URL, payload, fmt.Sprintf("shard-%d", i), 0)
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("retry of shard-%d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	waitLagZero(t, srv)

	// Ladder returned to live.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := get(t, ts.URL+"/readyz")
		if resp.StatusCode == http.StatusOK && strings.Contains(string(body), "live") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never returned to live mode: status %d body %q", resp.StatusCode, body)
		}
		time.Sleep(time.Millisecond)
	}

	_, body := get(t, ts.URL+"/profile?window=0")
	agg, err := profile.Read(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Weights 1..10 accepted exactly once each.
	if got := agg.Totals.AbortWeight[htm.Conflict]; got != 55 {
		t.Errorf("aggregate conflict weight = %d, want 55", got)
	}
}

func TestRetention(t *testing.T) {
	srv, ts := openTestServer(t, Config{Retain: 2})
	for w := 0; w < 4; w++ {
		payload := shardBytes(t, "micro/low-abort", w, uint64(w+1))
		resp, _ := ingest(t, ts.URL, payload, fmt.Sprintf("w%d", w), w)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("window %d: status %d", w, resp.StatusCode)
		}
	}
	waitLagZero(t, srv)
	for w, want := range map[int]int{0: http.StatusGone, 1: http.StatusGone, 2: http.StatusOK, 3: http.StatusOK} {
		resp, _ := get(t, fmt.Sprintf("%s/profile?window=%d", ts.URL, w))
		if resp.StatusCode != want {
			t.Errorf("window %d: status %d, want %d", w, resp.StatusCode, want)
		}
		resp, _ = get(t, fmt.Sprintf("%s/top?window=%d", ts.URL, w))
		if resp.StatusCode != want {
			t.Errorf("top window %d: status %d, want %d", w, resp.StatusCode, want)
		}
	}
}

// TestRestartReplayByteIdentical is the core crash-consistency
// property: reopening the state directory rebuilds byte-identical
// aggregates from the journal alone.
func TestRestartReplayByteIdentical(t *testing.T) {
	dir := t.TempDir()
	srv, ts := openTestServer(t, Config{Dir: dir})
	for i := 0; i < 5; i++ {
		payload := shardBytes(t, "micro/low-abort", i, uint64(7*(i+1)))
		window := i % 2
		if resp, body := ingest(t, ts.URL, payload, fmt.Sprintf("shard-%d", i), window); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	waitLagZero(t, srv)
	var before [2][]byte
	for w := range before {
		_, before[w] = get(t, fmt.Sprintf("%s/profile?window=%d", ts.URL, w))
	}
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	srv2, ts2 := openTestServer(t, Config{Dir: dir})
	if srv2.Replayed() != 5 {
		t.Errorf("replayed %d shards, want 5", srv2.Replayed())
	}
	for w := range before {
		_, after := get(t, fmt.Sprintf("%s/profile?window=%d", ts2.URL, w))
		if !bytes.Equal(before[w], after) {
			t.Errorf("window %d aggregate changed across restart (%d vs %d bytes)", w, len(before[w]), len(after))
		}
	}
	// Replayed keys still deduplicate.
	payload := shardBytes(t, "micro/low-abort", 0, 7)
	resp, _ := ingest(t, ts2.URL, payload, "shard-0", 0)
	if resp.Header.Get(HeaderStatus) != StatusDuplicate {
		t.Errorf("replayed key not deduplicated (header %q)", resp.Header.Get(HeaderStatus))
	}
}

// TestReplayTruncatesTornTail simulates a kill -9 mid-append: a
// half-written journal line is discarded on restart and every intact
// record before it survives.
func TestReplayTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	srv, ts := openTestServer(t, Config{Dir: dir})
	payload := shardBytes(t, "micro/low-abort", 0, 9)
	if resp, _ := ingest(t, ts.URL, payload, "intact", 0); resp.StatusCode != http.StatusOK {
		t.Fatal("ingest failed")
	}
	waitLagZero(t, srv)
	ts.Close()
	srv.Close()

	path := filepath.Join(dir, JournalName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"torn","window":0,"payload":"aGFsZi13cml0`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if srv2.Replayed() != 1 {
		t.Errorf("replayed %d, want 1 (torn tail dropped)", srv2.Replayed())
	}
	// The torn bytes are gone: the journal accepts new appends cleanly.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if resp, body := ingest(t, ts2.URL, shardBytes(t, "micro/low-abort", 1, 3), "fresh", 0); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-truncation ingest: status %d: %s", resp.StatusCode, body)
	}
}
