package pmu

import "testing"

func TestPeriodsAccessor(t *testing.T) {
	var c Counters
	p := DefaultPeriods()
	c.SetPeriods(p)
	if got := c.Periods(); got != p {
		t.Fatalf("Periods() = %v, want %v", got, p)
	}
}
