package pmu

import (
	"testing"
	"testing/quick"
)

func TestOverflowAtPeriod(t *testing.T) {
	var c Counters
	var p Periods
	p[Cycles] = 10
	c.SetPeriods(p)
	for i := 0; i < 9; i++ {
		if c.Add(Cycles, 1) {
			t.Fatalf("overflow at %d events, period 10", i+1)
		}
	}
	if !c.Add(Cycles, 1) {
		t.Fatal("no overflow at period")
	}
	if c.Add(Cycles, 9) {
		t.Fatal("early overflow after reset")
	}
	if !c.Add(Cycles, 1) {
		t.Fatal("no second overflow")
	}
}

func TestLargeAddKeepsRemainder(t *testing.T) {
	var c Counters
	var p Periods
	p[Cycles] = 10
	c.SetPeriods(p)
	if !c.Add(Cycles, 25) {
		t.Fatal("Add(25) with period 10 must overflow")
	}
	// Remainder is 5; 5 more events overflow again.
	if c.Add(Cycles, 4) {
		t.Fatal("overflowed too early")
	}
	if !c.Add(Cycles, 1) {
		t.Fatal("remainder lost")
	}
}

func TestDisabledEventNeverOverflows(t *testing.T) {
	var c Counters
	c.SetPeriods(Periods{}) // all zero
	for i := 0; i < 1000; i++ {
		if c.Add(TxAbort, 1) {
			t.Fatal("disabled counter overflowed")
		}
	}
	if c.Total(TxAbort) != 1000 {
		t.Fatalf("Total = %d, want 1000 (counting continues when disabled)", c.Total(TxAbort))
	}
}

func TestFreezeSuppressesOverflowButCounts(t *testing.T) {
	var c Counters
	var p Periods
	p[Loads] = 5
	c.SetPeriods(p)
	c.Freeze()
	for i := 0; i < 20; i++ {
		if c.Add(Loads, 1) {
			t.Fatal("frozen counter overflowed")
		}
	}
	if c.Total(Loads) != 20 {
		t.Fatalf("Total = %d, want 20", c.Total(Loads))
	}
	c.Unfreeze()
	// Pending did not accumulate while frozen.
	for i := 0; i < 4; i++ {
		if c.Add(Loads, 1) {
			t.Fatal("overflow before period after unfreeze")
		}
	}
	if !c.Add(Loads, 1) {
		t.Fatal("no overflow after unfreeze")
	}
}

func TestEventsIndependent(t *testing.T) {
	var c Counters
	var p Periods
	p[Cycles] = 100
	p[TxAbort] = 2
	c.SetPeriods(p)
	c.Add(Cycles, 99)
	if !c.Add(TxAbort, 2) {
		t.Fatal("TxAbort should overflow independently")
	}
	if c.Add(Cycles, 0) {
		t.Fatal("zero add overflowed")
	}
	if !c.Add(Cycles, 1) {
		t.Fatal("Cycles overflow lost")
	}
}

func TestEventString(t *testing.T) {
	for e, s := range map[Event]string{Cycles: "cycles", TxAbort: "rtm-abort", TxCommit: "rtm-commit", Loads: "mem-loads", Stores: "mem-stores"} {
		if e.String() != s {
			t.Errorf("%d.String() = %q, want %q", e, e.String(), s)
		}
	}
	if Event(99).String() != "event(99)" {
		t.Errorf("unknown event string = %q", Event(99).String())
	}
}

func TestDefaultPeriodsAllEnabled(t *testing.T) {
	p := DefaultPeriods()
	for e := Event(0); e < NumEvents; e++ {
		if p[e] == 0 {
			t.Errorf("default period for %v is zero", e)
		}
	}
}

// Property: over any sequence of single-event adds, the number of
// overflows equals total/period.
func TestQuickOverflowCount(t *testing.T) {
	f := func(period8 uint8, n16 uint16) bool {
		period := uint64(period8)%50 + 1
		n := uint64(n16) % 5000
		var c Counters
		var p Periods
		p[Stores] = period
		c.SetPeriods(p)
		overflows := uint64(0)
		for i := uint64(0); i < n; i++ {
			if c.Add(Stores, 1) {
				overflows++
			}
		}
		return overflows == n/period && c.Total(Stores) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJitterVariesThresholds(t *testing.T) {
	var c Counters
	var p Periods
	p[Cycles] = 1000
	c.SetPeriods(p)
	c.EnableJitter(42)
	// Count events between overflows over several windows; with
	// jitter the gaps must not all be identical.
	gaps := map[uint64]bool{}
	since := uint64(0)
	for i := 0; i < 20000 && len(gaps) < 3; i++ {
		since++
		if c.Add(Cycles, 1) {
			gaps[since] = true
			since = 0
		}
	}
	if len(gaps) < 3 {
		t.Fatalf("jittered thresholds produced only %d distinct gaps", len(gaps))
	}
	// All gaps stay within ±1/16 of the period.
	for g := range gaps {
		if g < 1000-1000/16 || g > 1000+1000/16 {
			t.Fatalf("gap %d outside the jitter window", g)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		var c Counters
		var p Periods
		p[Cycles] = 100
		c.SetPeriods(p)
		c.EnableJitter(seed)
		out := make([]bool, 1000)
		for i := range out {
			out[i] = c.Add(Cycles, 1)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different overflow patterns")
		}
	}
	c, d := run(7), run(8)
	same := true
	for i := range c {
		if c[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical overflow patterns")
	}
}

func TestJitterDisabledForTinyPeriods(t *testing.T) {
	// Period < 8 has a zero jitter span: behaviour stays exact.
	var c Counters
	var p Periods
	p[TxAbort] = 1
	c.SetPeriods(p)
	c.EnableJitter(99)
	for i := 0; i < 50; i++ {
		if !c.Add(TxAbort, 1) {
			t.Fatal("period-1 counter missed an overflow under jitter")
		}
	}
}
