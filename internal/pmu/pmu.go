// Package pmu models the performance monitoring unit the profiler
// samples with: a set of per-thread event counters, each with a
// configurable sampling period. When a counter accumulates period
// events it overflows, and the machine delivers an interrupt — which,
// exactly as on Intel hardware, aborts any transaction the thread is
// executing (paper §3.1, Challenge I).
package pmu

import "fmt"

// Event enumerates the hardware events TxSampler samples (paper §6):
// cycles, RTM_RETIRED:ABORTED, RTM_RETIRED:COMMIT, and
// MEM_UOPS_RETIRED:ALL_LOADS / ALL_STORES.
type Event uint8

const (
	// Cycles counts CPU cycles.
	Cycles Event = iota
	// TxAbort counts retired transaction aborts (RTM_RETIRED:ABORTED).
	TxAbort
	// TxCommit counts retired transaction commits (RTM_RETIRED:COMMIT).
	TxCommit
	// Loads counts retired memory loads.
	Loads
	// Stores counts retired memory stores.
	Stores

	// NumEvents is the number of defined events.
	NumEvents = iota
)

func (e Event) String() string {
	switch e {
	case Cycles:
		return "cycles"
	case TxAbort:
		return "rtm-abort"
	case TxCommit:
		return "rtm-commit"
	case Loads:
		return "mem-loads"
	case Stores:
		return "mem-stores"
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Periods configures the sampling period per event; a zero period
// disables sampling for that event. The paper's defaults are 1e7 for
// cycles and 1e4 for RTM and memory events; the simulated machine runs
// far fewer cycles than real hardware, so callers scale these down to
// reach the paper's target of 50–200 samples per thread per second.
type Periods [NumEvents]uint64

// DefaultPeriods returns sampling periods scaled to the simulator so a
// typical benchmark collects on the order of 10²–10³ samples per
// thread, matching the paper's target sampling rate regime.
func DefaultPeriods() Periods {
	var p Periods
	p[Cycles] = 16_000
	p[TxAbort] = 16
	p[TxCommit] = 16
	p[Loads] = 2_000
	p[Stores] = 2_000
	return p
}

// Counters is one thread's PMU state. The zero value counts nothing;
// configure with SetPeriods.
type Counters struct {
	periods   Periods
	pending   [NumEvents]uint64 // events since last overflow
	next      [NumEvents]uint64 // jittered threshold for the next overflow
	totals    [NumEvents]uint64
	overflows [NumEvents]uint64 // overflow interrupts generated
	frozen    bool
	jitter    uint64 // xorshift state; 0 = jitter disabled
}

// SetPeriods installs sampling periods and clears pending counts.
func (c *Counters) SetPeriods(p Periods) {
	c.periods = p
	c.pending = [NumEvents]uint64{}
	for e := range c.next {
		c.next[e] = c.threshold(Event(e))
	}
}

// EnableJitter randomizes each overflow threshold by up to ±1/16 of
// the period, as production profilers do to avoid harmonic lock-step
// with loop structure (deterministic: seeded xorshift). A zero seed
// disables jitter.
func (c *Counters) EnableJitter(seed uint64) {
	c.jitter = seed
	for e := range c.next {
		c.next[e] = c.threshold(Event(e))
	}
}

// threshold computes the next overflow point for event e.
func (c *Counters) threshold(e Event) uint64 {
	p := c.periods[e]
	if p == 0 {
		return 0
	}
	span := p / 8
	if c.jitter == 0 || span == 0 {
		return p
	}
	// xorshift64
	x := c.jitter
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	c.jitter = x
	return p - span/2 + x%span
}

// Periods returns the installed periods.
func (c *Counters) Periods() Periods { return c.periods }

// Freeze suspends overflow generation (counting continues), as
// hardware does while a PMI handler runs; Unfreeze re-enables it.
func (c *Counters) Freeze()   { c.frozen = true }
func (c *Counters) Unfreeze() { c.frozen = false }

// Add credits n events of type e and reports whether the counter
// overflowed (reached its — possibly jittered — period). On overflow
// the pending count resets, retaining the remainder so long ops
// cannot hide samples.
func (c *Counters) Add(e Event, n uint64) (overflowed bool) {
	c.totals[e] += n
	if c.periods[e] == 0 || c.frozen {
		return false
	}
	c.pending[e] += n
	if c.pending[e] >= c.next[e] {
		c.pending[e] -= c.next[e]
		if c.pending[e] >= c.periods[e] {
			c.pending[e] %= c.periods[e]
		}
		c.next[e] = c.threshold(e)
		c.overflows[e]++
		return true
	}
	return false
}

// Total returns the lifetime count of event e.
func (c *Counters) Total(e Event) uint64 { return c.totals[e] }

// Overflows returns how many overflow interrupts event e generated —
// the profiler self-report's sampling-pressure metric.
func (c *Counters) Overflows(e Event) uint64 { return c.overflows[e] }
