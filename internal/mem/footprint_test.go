package mem

import "testing"

func TestFootprintCountsBackedPages(t *testing.T) {
	m := NewMemory()
	if m.Footprint() != 0 {
		t.Fatalf("fresh memory footprint = %d", m.Footprint())
	}
	m.Store(0x1000, 1)
	one := m.Footprint()
	if one <= 0 {
		t.Fatalf("footprint after store = %d", one)
	}
	// A store on the same page costs nothing; a distant page doubles it.
	m.Store(0x1008, 2)
	if m.Footprint() != one {
		t.Fatalf("same-page store grew footprint: %d -> %d", one, m.Footprint())
	}
	m.Store(Addr(0x1000+2*uint64(one)), 3)
	if m.Footprint() != 2*one {
		t.Fatalf("distant store footprint = %d, want %d", m.Footprint(), 2*one)
	}
}
