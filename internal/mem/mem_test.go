package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadUnwrittenIsZero(t *testing.T) {
	m := NewMemory()
	if got := m.Load(0x10000); got != 0 {
		t.Fatalf("Load of unwritten memory = %d, want 0", got)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	m := NewMemory()
	a := m.AllocWords(4)
	m.Store(a, 42)
	m.Store(a.Offset(3), 7)
	if got := m.Load(a); got != 42 {
		t.Errorf("Load(a) = %d, want 42", got)
	}
	if got := m.Load(a.Offset(3)); got != 7 {
		t.Errorf("Load(a+3w) = %d, want 7", got)
	}
	if got := m.Load(a.Offset(1)); got != 0 {
		t.Errorf("Load(a+1w) = %d, want 0", got)
	}
}

func TestStoreLoadAcrossPages(t *testing.T) {
	m := NewMemory()
	// Write one word in each of several pages, far apart.
	for i := 0; i < 10; i++ {
		a := Addr(pageBytes * (i + 2))
		m.Store(a, Word(i+1))
	}
	for i := 0; i < 10; i++ {
		a := Addr(pageBytes * (i + 2))
		if got := m.Load(a); got != Word(i+1) {
			t.Errorf("page %d: Load = %d, want %d", i, got, i+1)
		}
	}
}

func TestAllocDisjoint(t *testing.T) {
	m := NewMemory()
	a := m.AllocWords(8)
	b := m.AllocWords(8)
	if a == b {
		t.Fatal("two allocations returned the same address")
	}
	if b < a+8*WordSize {
		t.Fatalf("allocations overlap: a=%s b=%s", a, b)
	}
}

func TestAllocLineAlignment(t *testing.T) {
	m := NewMemory()
	m.Alloc(24, WordSize) // misalign the frontier
	a := m.AllocLines(2)
	if a%LineSize != 0 {
		t.Fatalf("AllocLines returned unaligned address %s", a)
	}
	b := m.AllocWords(1)
	if b%LineSize != 0 {
		t.Fatalf("AllocWords returned unaligned address %s", b)
	}
	if b < a+2*LineSize {
		t.Fatalf("AllocWords %s overlaps prior 2-line allocation at %s", b, a)
	}
}

func TestAllocBadArgsPanic(t *testing.T) {
	m := NewMemory()
	for name, f := range map[string]func(){
		"zero size":      func() { m.Alloc(0, LineSize) },
		"negative size":  func() { m.Alloc(-8, LineSize) },
		"non-pow2 align": func() { m.Alloc(8, 24) },
		"tiny align":     func() { m.Alloc(8, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	m := NewMemory()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Load did not panic")
		}
	}()
	m.Load(0x10003)
}

func TestLineArithmetic(t *testing.T) {
	cases := []struct {
		a    Addr
		line Addr
	}{
		{0, 0}, {63, 0}, {64, 64}, {130, 128}, {0x10008, 0x10000},
	}
	for _, c := range cases {
		if got := c.a.Line(); got != c.line {
			t.Errorf("Line(%s) = %s, want %s", c.a, got, c.line)
		}
	}
	if idx := Addr(128).LineIndex(); idx != 2 {
		t.Errorf("LineIndex(128) = %d, want 2", idx)
	}
}

// Property: a store is always visible to a subsequent load of the same
// address and never disturbs a distinct word.
func TestQuickStoreIsolation(t *testing.T) {
	m := NewMemory()
	f := func(slot1, slot2 uint16, v1, v2 Word) bool {
		a := Addr(0x20000).Offset(int(slot1))
		b := Addr(0x20000).Offset(int(slot2))
		m.Store(a, v1)
		m.Store(b, v2)
		if a == b {
			return m.Load(a) == v2
		}
		return m.Load(a) == v1 && m.Load(b) == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Line() is idempotent and LineIndex is consistent with it.
func TestQuickLineConsistency(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw &^ 7) // aligned
		l := a.Line()
		return l.Line() == l && l%LineSize == 0 &&
			a.LineIndex() == uint64(l)/LineSize && l <= a && a-l < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: successive allocations are strictly increasing and disjoint.
func TestQuickAllocMonotonic(t *testing.T) {
	m := NewMemory()
	prevEnd := Addr(0)
	f := func(sz uint8) bool {
		n := int(sz)%512 + 1
		a := m.AllocWords(n)
		ok := a >= prevEnd && a%LineSize == 0
		prevEnd = a + Addr(n*WordSize)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
