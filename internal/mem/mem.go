// Package mem provides the simulated physical memory for the machine:
// a sparse, word-addressable address space plus cache-line arithmetic
// and a bump allocator that workloads use to lay out their data.
//
// Addresses are byte addresses, as on real hardware, but all accesses
// are performed at 8-byte word granularity. Cache lines are 64 bytes,
// matching Intel TSX's conflict-detection granularity.
package mem

import (
	"fmt"
	"sort"
)

// Word is the machine word: every load and store moves one Word.
type Word = uint64

// Addr is a byte address in the simulated address space.
type Addr uint64

const (
	// LineSize is the cache line size in bytes. Intel TSX detects
	// conflicts at this granularity.
	LineSize = 64
	// WordSize is the access granularity in bytes.
	WordSize = 8
	// WordsPerLine is the number of words on one cache line.
	WordsPerLine = LineSize / WordSize

	pageShift = 16 // 64 KiB pages
	pageBytes = 1 << pageShift
	pageWords = pageBytes / WordSize
	pageMask  = pageBytes - 1
)

// Line returns the cache line address containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// WordAligned reports whether a is aligned to the word size.
func (a Addr) WordAligned() bool { return a%WordSize == 0 }

// Offset returns a+i*WordSize: the address of the i'th word after a.
func (a Addr) Offset(i int) Addr { return a + Addr(i)*WordSize }

// LineIndex returns the global index of the cache line containing a.
func (a Addr) LineIndex() uint64 { return uint64(a) / LineSize }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

type page [pageWords]Word

// Memory is a sparse simulated physical memory. The zero value is not
// usable; call NewMemory. Memory is not safe for concurrent use: the
// machine's scheduler serializes all accesses.
type Memory struct {
	pages map[Addr]*page
	brk   Addr // bump-allocator frontier
}

// NewMemory returns an empty memory whose allocator starts at a
// non-zero base, so address 0 is never handed out and can act as a
// sentinel.
func NewMemory() *Memory {
	return &Memory{pages: make(map[Addr]*page), brk: pageBytes}
}

func (m *Memory) pageFor(a Addr, create bool) *page {
	base := a &^ Addr(pageMask)
	p := m.pages[base]
	if p == nil && create {
		p = new(page)
		m.pages[base] = p
	}
	return p
}

// Load returns the word stored at a. Loading from never-written memory
// returns zero, as hardware-zeroed pages would. Panics if a is not
// word-aligned: simulated workloads are expected to be well-formed.
func (m *Memory) Load(a Addr) Word {
	mustAligned(a)
	p := m.pageFor(a, false)
	if p == nil {
		return 0
	}
	return p[(a&pageMask)/WordSize]
}

// Store writes v to the word at a.
func (m *Memory) Store(a Addr, v Word) {
	mustAligned(a)
	m.pageFor(a, true)[(a&pageMask)/WordSize] = v
}

// Alloc reserves n bytes and returns the base address, aligned to align
// (which must be a power of two, at least WordSize). Allocations never
// overlap and are never reclaimed: the simulator's workloads have
// static footprints.
func (m *Memory) Alloc(n int, align Addr) Addr {
	if n <= 0 {
		panic("mem: Alloc size must be positive")
	}
	if align < WordSize || align&(align-1) != 0 {
		panic("mem: Alloc alignment must be a power of two >= WordSize")
	}
	base := (m.brk + align - 1) &^ (align - 1)
	m.brk = base + Addr((n+WordSize-1)&^(WordSize-1))
	return base
}

// AllocWords reserves n words aligned to a cache line and returns the
// base address. This is the common case for workload arrays.
func (m *Memory) AllocWords(n int) Addr { return m.Alloc(n*WordSize, LineSize) }

// AllocLines reserves n full cache lines and returns the base address.
// Use this when a structure must not share lines with its neighbours.
func (m *Memory) AllocLines(n int) Addr { return m.Alloc(n*LineSize, LineSize) }

// Footprint returns the number of bytes currently backed by pages.
func (m *Memory) Footprint() int { return len(m.pages) * pageBytes }

// Fingerprint returns a deterministic hash of the memory image: every
// non-zero word together with its address, in address order. Two
// memories with equal contents hash equally regardless of their
// page-allocation history (a page of zeroes is indistinguishable from
// an absent page, as on hardware-zeroed memory).
func (m *Memory) Fingerprint() uint64 {
	bases := make([]Addr, 0, len(m.pages))
	for b := range m.pages {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	for _, b := range bases {
		for i, w := range m.pages[b] {
			if w != 0 {
				mix(uint64(b.Offset(i)))
				mix(w)
			}
		}
	}
	return h
}

func mustAligned(a Addr) {
	if !a.WordAligned() {
		panic(fmt.Sprintf("mem: unaligned access at %s", a))
	}
}
