// Package tsxprof implements a record-and-replay HTM profiler in the
// style of TSXProf (Liu et al., PACT'15) — the paper's main prior-work
// comparison (§9). The record phase instruments every transaction
// instance through the RTM library's event hook, logging a timestamped
// event per begin/commit/abort/fallback; the replay phase re-executes
// the program with per-memory-access instrumentation (an STM-style
// approximation of the hardware execution) to recover the detail the
// record phase lacks.
//
// The comparison experiment measures what the paper argues:
//
//   - the record phase's trace grows with the number of attempted
//     transactions and the abort rate, whereas TxSampler's state is
//     proportional to distinct calling contexts;
//   - the replay pass costs a multiple of native time (the paper cites
//     ~3x), whereas TxSampler is one-pass;
//   - replay is an STM approximation: its abort behaviour differs from
//     the native HTM execution it tries to explain.
package tsxprof

import (
	"fmt"
	"io"

	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/rtm"
)

// Event is one record-phase log entry (16 bytes on disk: the paper's
// timestamp-counter logging).
type Event struct {
	TID   int
	Kind  rtm.EventKind
	Cycle uint64
}

// EventBytes is the serialized size of one event.
const EventBytes = 16

// Recorder is the record-phase instrumentation: an rtm.EventSink that
// appends one entry per event to an in-memory trace, charging the instrumented
// thread a fixed cost per event.
type Recorder struct {
	// Cost is the instrumentation cycles charged per event (default
	// 40: two rdtsc reads plus a buffered store).
	Cost   int
	Events []Event
}

// NewRecorder returns a recorder with the default per-event cost.
func NewRecorder() *Recorder { return &Recorder{Cost: 40} }

// TxEvent implements rtm.EventSink.
func (r *Recorder) TxEvent(t *machine.Thread, kind rtm.EventKind) {
	r.Events = append(r.Events, Event{TID: t.ID, Kind: kind, Cycle: t.Clock()})
}

// PerEventCost implements rtm.EventSink.
func (r *Recorder) PerEventCost() int { return r.Cost }

// TraceBytes returns the record phase's log size.
func (r *Recorder) TraceBytes() int { return len(r.Events) * EventBytes }

// Result compares one workload under TSXProf-style profiling against
// its native execution.
type Result struct {
	Workload string
	Threads  int

	NativeCycles uint64
	// RecordCycles is the makespan with the record-phase
	// instrumentation attached.
	RecordCycles uint64
	// ReplayCycles is the makespan of the replay pass (per-access
	// instrumentation, no HTM detail lost).
	ReplayCycles uint64

	Events     int
	TraceBytes int
}

// RecordOverhead returns the record phase's relative slowdown.
func (r *Result) RecordOverhead() float64 {
	return float64(r.RecordCycles)/float64(r.NativeCycles) - 1
}

// ReplaySlowdown returns replay time over native time (the paper cites
// ~3x for TSXProf's replay).
func (r *Result) ReplaySlowdown() float64 {
	return float64(r.ReplayCycles) / float64(r.NativeCycles)
}

// machineConfig mirrors the root package's benchmark machine without
// importing it (avoiding an import cycle).
type machineConfig struct {
	threads    int
	seed       int64
	memPenalty uint64
}

func runOnce(w *htmbench.Workload, mc machineConfig, sink rtm.EventSink) (uint64, error) {
	cfg := machine.Config{
		Threads:    mc.threads,
		Seed:       mc.seed,
		StartSkew:  1024,
		MemPenalty: mc.memPenalty,
	}
	cfg.Cache.Sets, cfg.Cache.Ways = 32, 4
	cfg.Cache.HitLatency, cfg.Cache.MissLatency, cfg.Cache.RemoteLatency = 4, 60, 90
	m := machine.New(cfg)
	inst := w.BuildInstance(m, nil)
	if sink != nil {
		inst.Lock.Sink = sink // instrument the workload's global lock
	}
	if err := m.Run(inst.Bodies...); err != nil {
		return 0, err
	}
	return m.Elapsed(), nil
}

// Profile runs the three phases for one workload: native, record
// (instrumented transactions), and replay (instrumented memory
// accesses, modelling the STM re-execution).
func Profile(name string, threads int, seed int64) (*Result, error) {
	w, err := htmbench.Get(name)
	if err != nil {
		return nil, err
	}
	if threads == 0 {
		threads = w.DefaultThreads
	}
	res := &Result{Workload: name, Threads: threads}

	if res.NativeCycles, err = runOnce(w, machineConfig{threads, seed, 0}, nil); err != nil {
		return nil, err
	}
	rec := NewRecorder()
	if res.RecordCycles, err = runOnce(w, machineConfig{threads, seed, 0}, rec); err != nil {
		return nil, err
	}
	res.Events = len(rec.Events)
	res.TraceBytes = rec.TraceBytes()
	// Replay: per-access instrumentation of every load and store (the
	// heavyweight read/write-set maintenance the paper describes).
	if res.ReplayCycles, err = runOnce(w, machineConfig{threads, seed, 60}, nil); err != nil {
		return nil, err
	}
	return res, nil
}

// Compare prints the TxSampler-vs-TSXProf table for a set of
// workloads; txOverhead supplies TxSampler's measured overhead per
// workload (from the Figure 5 harness).
func Compare(w io.Writer, names []string, threads int, seed int64, txOverhead func(name string) (float64, error)) error {
	fmt.Fprintf(w, "=== TSXProf-style record-and-replay vs TxSampler (%d threads) ===\n", threads)
	for _, name := range names {
		res, err := Profile(name, threads, seed)
		if err != nil {
			return err
		}
		tx, err := txOverhead(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-24s txsampler=%5.1f%%  record=%5.1f%%  replay=%4.2fx  trace=%6.1f KiB (%d events)\n",
			res.Workload, 100*tx, 100*res.RecordOverhead(), res.ReplaySlowdown(),
			float64(res.TraceBytes)/1024, res.Events)
	}
	fmt.Fprintln(w, "  (TxSampler: one pass, context-proportional state; record-and-replay: two passes, attempt-proportional trace.")
	fmt.Fprintln(w, "   Negative record overhead on hot workloads is real perturbation: per-event instrumentation decontends retries.)")
	return nil
}
