package tsxprof

import (
	"encoding/json"
	"strings"
	"testing"

	"txsampler/internal/rtm"
)

func TestProfilePhases(t *testing.T) {
	res, err := Profile("stamp/vacation", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.NativeCycles == 0 || res.RecordCycles == 0 || res.ReplayCycles == 0 {
		t.Fatalf("empty phases: %+v", res)
	}
	if res.RecordCycles <= res.NativeCycles {
		t.Errorf("record phase (%d) not slower than native (%d)", res.RecordCycles, res.NativeCycles)
	}
	if res.ReplaySlowdown() < 1.2 {
		t.Errorf("replay slowdown = %.2fx, expected a multiple of native", res.ReplaySlowdown())
	}
	// A memory-intensive workload pays the full replay cost.
	list, err := Profile("synchro/linkedlist", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if list.ReplaySlowdown() < 1.5 {
		t.Errorf("linkedlist replay slowdown = %.2fx, want >= 1.5x", list.ReplaySlowdown())
	}
	if res.Events == 0 || res.TraceBytes != res.Events*EventBytes {
		t.Fatalf("trace accounting wrong: %+v", res)
	}
}

func TestTraceGrowsWithAbortRate(t *testing.T) {
	// The record phase logs one event per attempt: a high-abort
	// workload produces a longer trace per committed transaction than
	// a low-abort one (the paper's disk-usage argument).
	low, err := Profile("micro/low-abort", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Profile("micro/true-sharing", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Normalize per critical section: low-abort does 400/thread,
	// true-sharing 120/thread.
	lowPerCS := float64(low.Events) / (400 * 8)
	highPerCS := float64(high.Events) / (120 * 8)
	if highPerCS <= lowPerCS {
		t.Errorf("events per CS: high-abort %.2f <= low-abort %.2f", highPerCS, lowPerCS)
	}
}

func TestRecorderCountsEventKinds(t *testing.T) {
	res, err := Profile("micro/sync-abort", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every critical section emits a begin plus at least one outcome.
	const sections = 200 * 4
	if res.Events < 2*sections {
		t.Errorf("events = %d, want >= %d (begin + outcome per CS)", res.Events, 2*sections)
	}
}

func TestProfileUnknownWorkload(t *testing.T) {
	if _, err := Profile("no/such", 4, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestCompareRendering(t *testing.T) {
	var b strings.Builder
	err := Compare(&b, []string{"micro/low-abort"}, 4, 1, func(string) (float64, error) { return 0.04, nil })
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"record=", "replay=", "trace=", "txsampler=  4.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	events, err := RecordTrace("micro/sync-abort", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"ph":"X"`, `"ph":"i"`, `"name":"commit"`, `"name":"fallback"`, `"name":"abort"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed) == 0 {
		t.Fatal("empty trace")
	}
}

func TestChromeTraceHandlesUnpairedEvents(t *testing.T) {
	// A commit without a recorded begin must not panic and still emit
	// a (zero-duration) slice.
	events := []Event{
		{TID: 0, Kind: rtm.EventCommit, Cycle: 100},
		{TID: 1, Kind: rtm.EventBegin, Cycle: 50},
		{TID: 1, Kind: rtm.EventFallback, Cycle: 400},
	}
	var b strings.Builder
	if err := WriteChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("entries = %d, want 2", len(parsed))
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	a, err := Profile("micro/low-abort", 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile("micro/low-abort", 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.NativeCycles != b.NativeCycles || a.ReplayCycles != b.ReplayCycles || a.Events != b.Events {
		t.Fatalf("record/replay nondeterministic: %+v vs %+v", a, b)
	}
}
