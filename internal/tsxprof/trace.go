package tsxprof

import (
	"encoding/json"
	"fmt"
	"io"

	"txsampler/internal/htmbench"
	"txsampler/internal/rtm"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, Perfetto): "X" complete events carry a duration,
// "i" instant events mark points in time.
type chromeEvent struct {
	Name  string `json:"name"`
	Phase string `json:"ph"`
	TS    uint64 `json:"ts"`
	Dur   uint64 `json:"dur,omitempty"`
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
	Scope string `json:"s,omitempty"`
}

// WriteChromeTrace converts a recorded event log to the Chrome
// trace-event JSON format: each critical section becomes a duration
// slice on its thread's track (named by its outcome), each abort an
// instant marker — the visualization TEP built for Blue Gene/Q traces
// (§9.2) on today's standard trace viewer.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out []chromeEvent
	open := map[int]uint64{} // tid -> begin cycle
	for _, e := range events {
		switch e.Kind {
		case rtm.EventBegin:
			open[e.TID] = e.Cycle
		case rtm.EventAbort:
			out = append(out, chromeEvent{
				Name: "abort", Phase: "i", TS: e.Cycle, TID: e.TID, Scope: "t",
			})
		case rtm.EventCommit, rtm.EventFallback:
			name := "commit"
			if e.Kind == rtm.EventFallback {
				name = "fallback"
			}
			start, ok := open[e.TID]
			if !ok {
				start = e.Cycle
			}
			delete(open, e.TID)
			out = append(out, chromeEvent{
				Name: name, Phase: "X", TS: start, Dur: e.Cycle - start, TID: e.TID,
			})
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("tsxprof: %w", err)
	}
	return nil
}

// RecordTrace runs a workload under record-phase instrumentation and
// returns the event log, for export with WriteChromeTrace.
func RecordTrace(name string, threads int, seed int64) ([]Event, error) {
	w, err := htmbench.Get(name)
	if err != nil {
		return nil, err
	}
	if threads == 0 {
		threads = w.DefaultThreads
	}
	rec := NewRecorder()
	if _, err := runOnce(w, machineConfig{threads, seed, 0}, rec); err != nil {
		return nil, err
	}
	return rec.Events, nil
}
