// Package experiments regenerates every table and figure of the
// paper's evaluation (§7, §8) on the simulated machine: Figure 5's
// runtime overhead, Figure 6's overhead-vs-threads sweep, Table 1 /
// Figure 7's CLOMP-TM characterization, Figure 8's program
// categorization, Table 2's optimization speedups, and the three §8
// case studies. The cmd/experiments binary and the root bench suite
// both drive this package.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"txsampler"
	"txsampler/internal/analyzer"
	"txsampler/internal/decision"
	"txsampler/internal/htm"
	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/tsxprof"
)

// Parallel is the worker count for sharding independent machine runs
// across CPUs. Every run is a fully deterministic function of its
// options, runs share no state, and results are gathered and printed
// in input order — so output is byte-identical for any worker count.
// 1 restores fully sequential execution.
var Parallel = runtime.GOMAXPROCS(0)

// Context, when non-nil, cancels every in-flight and queued machine
// run cooperatively (SIGINT/SIGTERM in cmd/experiments): in-flight
// runs stop at their next quantum boundary and pending ones never
// start. The sweep then returns an error wrapping machine.ErrCanceled.
var Context context.Context

// Hybrid selects the slow-path execution mode of every workload lock
// in the sweeps (zero = lock-only, the classic global-lock fallback).
// It is part of each run's identity: changing it changes the results.
var Hybrid machine.HybridPolicy

// ctxOrBackground returns the package cancellation context.
func ctxOrBackground() context.Context {
	if Context != nil {
		return Context
	}
	return context.Background()
}

// mapIndexed computes f(0..n-1) on min(Parallel, n) workers and
// returns the results in input order. The first error by index wins.
func mapIndexed[T any](n int, f func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	workers := Parallel
	if workers > n {
		workers = n
	}
	ctx := ctxOrBackground()
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: sweep canceled: %w", err)
			}
			v, err := f(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					// Canceled: drain the queue without starting runs.
					errs[i] = fmt.Errorf("experiments: sweep canceled: %w", err)
					continue
				}
				out[i], errs[i] = f(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Row formats helpers.
func pct(x float64) string { return fmt.Sprintf("%5.1f%%", 100*x) }

func bar(w io.Writer, label string, parts []float64, names []string) {
	fmt.Fprintf(w, "  %-16s", label)
	for i, p := range parts {
		fmt.Fprintf(w, " %s=%s", names[i], pct(p))
	}
	fmt.Fprintln(w)
}

// Fig5Row is one benchmark's overhead measurement.
type Fig5Row struct {
	Name      string
	NativeCyc uint64
	ProfCyc   uint64
	Overhead  float64
}

// Fig5 measures TxSampler's runtime overhead on every registered
// non-optimized workload (the paper's Figure 5). Following §7.1, each
// program's overhead is averaged over five of seven executions
// (different seeds), excluding the smallest and largest. It returns
// the rows and the geometric-mean overhead.
func Fig5(w io.Writer, threads int, seed int64) ([]Fig5Row, float64, error) {
	fmt.Fprintf(w, "=== Figure 5: TxSampler runtime overhead (%d threads) ===\n", threads)
	var names []string
	for _, wl := range htmbench.All() {
		if wl.Suite == "opt" {
			continue // Figure 5 covers the base programs
		}
		names = append(names, wl.Name)
	}
	rows, err := mapIndexed(len(names), func(i int) (Fig5Row, error) {
		return overheadRow(names[i], threads, seed)
	})
	if err != nil {
		return nil, 0, err
	}
	geo := 1.0
	for _, row := range rows {
		fmt.Fprintf(w, "  %-26s native=%-10d profiled=%-10d overhead=%s\n",
			row.Name, row.NativeCyc, row.ProfCyc, pct(row.Overhead))
		geo *= 1 + row.Overhead
	}
	mean := 0.0
	if len(rows) > 0 {
		mean = math.Pow(geo, 1/float64(len(rows))) - 1
	}
	fmt.Fprintf(w, "  geometric-mean overhead: %s (paper: ~4%%, <10%% geo-mean)\n", pct(mean))
	return rows, mean, nil
}

// Fig6 measures the average overhead across the STAMP-like suite for
// several thread counts (the paper's Figure 6), with the same
// exclude-extremes averaging as Fig5.
func Fig6(w io.Writer, seed int64) (map[int]float64, error) {
	fmt.Fprintln(w, "=== Figure 6: overhead vs thread count (STAMP suite) ===")
	counts := []int{1, 2, 4, 8, 14}
	stamp := htmbench.BySuite("stamp")
	type cell struct{ threads, wl int }
	var cells []cell
	for ti := range counts {
		for wi := range stamp {
			cells = append(cells, cell{ti, wi})
		}
	}
	rows, err := mapIndexed(len(cells), func(i int) (Fig5Row, error) {
		return overheadRow(stamp[cells[i].wl].Name, counts[cells[i].threads], seed)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64)
	for ti, threads := range counts {
		sum := 0.0
		for wi := range stamp {
			sum += rows[ti*len(stamp)+wi].Overhead
		}
		out[threads] = sum / float64(len(stamp))
		fmt.Fprintf(w, "  %2d threads: mean overhead %s\n", threads, pct(out[threads]))
	}
	return out, nil
}

// overheadRow measures one program's overhead as the paper does:
// seven executions with distinct seeds, dropping the smallest and
// largest overhead, averaging the remaining five.
func overheadRow(name string, threads int, seed int64) (Fig5Row, error) {
	const runs = 7
	type run struct {
		nat, prof uint64
		ov        float64
	}
	results, err := mapIndexed(runs, func(i int) (run, error) {
		native, profiled, ov, err := txsampler.Overhead(name, txsampler.Options{Threads: threads, Seed: seed + int64(i), Hybrid: Hybrid, Context: Context})
		if err != nil {
			return run{}, err
		}
		return run{native.ElapsedCycles, profiled.ElapsedCycles, ov}, nil
	})
	if err != nil {
		return Fig5Row{}, err
	}
	overheads := make([]float64, 0, runs)
	var nat, prof uint64
	for _, r := range results {
		overheads = append(overheads, r.ov)
		nat += r.nat / runs
		prof += r.prof / runs
	}
	sort.Float64s(overheads)
	mean := 0.0
	trimmed := overheads[1 : len(overheads)-1]
	for _, ov := range trimmed {
		mean += ov
	}
	mean /= float64(len(trimmed))
	return Fig5Row{Name: name, NativeCyc: nat, ProfCyc: prof, Overhead: mean}, nil
}

// Table1 prints the CLOMP-TM input characterization.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "=== Table 1: CLOMP-TM inputs ===")
	fmt.Fprintln(w, "  input 1  Adjacent    rare conflicts, cache prefetch friendly")
	fmt.Fprintln(w, "  input 2  FirstParts  high conflicts, cache prefetch friendly")
	fmt.Fprintln(w, "  input 3  Random      rare conflicts, cache prefetch unfriendly")
}

// ClompRow is one CLOMP-TM configuration's decompositions (Figure 7).
type ClompRow struct {
	Name string
	// Time shares of total work W: non-CS, HTM, fallback, lock
	// waiting, overhead.
	NonCS, Ttx, Tfb, Twait, Toh float64
	// Abort counts by cause and their weights.
	Conflicts, Capacity, Sync    uint64
	ConflictW, CapacityW, SyncW  uint64
	AbortCommitRatio, MeanWeight float64
}

// Fig7 profiles the six CLOMP-TM configurations and prints the
// paper's three decompositions.
func Fig7(w io.Writer, threads int, seed int64) ([]ClompRow, error) {
	fmt.Fprintf(w, "=== Figure 7: CLOMP-TM decompositions (%d threads) ===\n", threads)
	cfgs := htmbench.ClompConfigs()
	rows, err := mapIndexed(len(cfgs), func(i int) (ClompRow, error) {
		name := htmbench.ClompName(cfgs[i])
		res, err := txsampler.Run(name, txsampler.Options{Threads: threads, Seed: seed, Profile: true, Hybrid: Hybrid, Context: Context})
		if err != nil {
			return ClompRow{}, err
		}
		r := res.Report
		tot := r.Totals
		wAll := float64(tot.W)
		if wAll == 0 {
			wAll = 1
		}
		row := ClompRow{
			Name:  name,
			NonCS: float64(tot.W-tot.T) / wAll,
			Ttx:   float64(tot.Ttx) / wAll,
			Tfb:   float64(tot.Tfb) / wAll,
			Twait: float64(tot.Twait) / wAll,
			Toh:   float64(tot.Toh) / wAll,

			Conflicts: tot.AbortCount[htm.Conflict],
			Capacity:  tot.AbortCount[htm.Capacity],
			Sync:      tot.AbortCount[htm.Sync],
			ConflictW: tot.AbortWeight[htm.Conflict],
			CapacityW: tot.AbortWeight[htm.Capacity],
			SyncW:     tot.AbortWeight[htm.Sync],

			AbortCommitRatio: r.AbortCommitRatio(),
			MeanWeight:       r.MeanAbortWeight(),
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "-- time decomposition (share of W) --")
	for _, r := range rows {
		bar(w, r.Name, []float64{r.NonCS, r.Ttx, r.Tfb, r.Twait, r.Toh},
			[]string{"nonCS", "HTM", "fallback", "lock_wait", "TX_overhead"})
	}
	fmt.Fprintln(w, "-- abort decomposition (sampled counts) --")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s conflicts=%-6d capacity=%-6d sync=%-4d a/c=%.3f\n",
			r.Name, r.Conflicts, r.Capacity, r.Sync, r.AbortCommitRatio)
	}
	fmt.Fprintln(w, "-- abort weight decomposition --")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s conflict_w=%-9d capacity_w=%-9d sync_w=%-6d mean_w=%.0f\n",
			r.Name, r.ConflictW, r.CapacityW, r.SyncW, r.MeanWeight)
	}
	return rows, nil
}

// Fig8Row is one program's categorization.
type Fig8Row struct {
	Name     string
	Rcs      float64
	RatioAC  float64
	Category analyzer.Category
	Expected analyzer.Category // 0 when the paper does not place it
}

// Fig8 categorizes every non-optimized workload by r_cs and
// abort/commit ratio (the paper's Figure 8).
func Fig8(w io.Writer, threads int, seed int64) ([]Fig8Row, error) {
	fmt.Fprintf(w, "=== Figure 8: application categorization (%d threads) ===\n", threads)
	var wls []*htmbench.Workload
	for _, wl := range htmbench.All() {
		if wl.Suite == "opt" || wl.Suite == "clomp" || wl.Suite == "micro" {
			continue
		}
		wls = append(wls, wl)
	}
	rows, err := mapIndexed(len(wls), func(i int) (Fig8Row, error) {
		wl := wls[i]
		res, err := txsampler.Run(wl.Name, txsampler.Options{Threads: threads, Seed: seed, Profile: true, Hybrid: Hybrid, Context: Context})
		if err != nil {
			return Fig8Row{}, err
		}
		r := res.Report
		return Fig8Row{wl.Name, r.Rcs(), r.AbortCommitRatio(), r.Categorize(), wl.Expected}, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Category != rows[j].Category {
			return rows[i].Category < rows[j].Category
		}
		return rows[i].Name < rows[j].Name
	})
	match, total := 0, 0
	for _, r := range rows {
		mark := ""
		if r.Expected != 0 {
			total++
			if r.Expected == r.Category {
				match++
				mark = "  [matches paper]"
			} else {
				mark = fmt.Sprintf("  [paper: %v]", r.Expected)
			}
		}
		fmt.Fprintf(w, "  %-26s r_cs=%s  a/c=%-8.3f %v%s\n", r.Name, pct(r.Rcs), r.RatioAC, r.Category, mark)
	}
	if total > 0 {
		fmt.Fprintf(w, "  category agreement with the paper: %d/%d\n", match, total)
	}
	return rows, nil
}

// Table2Row is one optimization's measured speedup.
type Table2Row struct {
	Code     string
	Base     string
	Opt      string
	Symptom  string
	Solution string
	Paper    float64 // the paper's reported speedup
	Speedup  float64
}

// Table2Pairs lists the paper's optimization case studies and the
// workload pairs that reproduce them.
func Table2Pairs() []Table2Row {
	return []Table2Row{
		{"dedup", "parsec/dedup", "parsec/dedup-opt", "high capacity + sync aborts", "refine hash table, remove system calls", 1.20, 0},
		{"AVL Tree", "app/avltree", "app/avltree-opt", "high T_wait", "elide read lock", 1.21, 0},
		{"histo", "parboil/histo-1", "parboil/histo-1-merged", "high T_oh", "merge transactions", 2.95, 0},
		{"histo-2", "parboil/histo-2", "parboil/histo-2-sorted", "T_oh + severe false sharing", "merge transactions, sort the input", 2.91, 0},
		{"UA", "npb/ua", "npb/ua-merged", "high T_oh", "merge transactions", 1.05, 0},
		{"vacation", "stamp/vacation", "stamp/vacation-opt", "high abort rate", "reduce transaction size", 1.21, 0},
		{"LevelDB", "app/leveldb", "app/leveldb-opt", "high abort rate", "split transactions", 1.05, 0},
		{"SSCA2", "hpcs/ssca2", "hpcs/ssca2-opt", "high T_tx", "defer transaction", 1.10, 0},
		{"netdedup", "parsec/netdedup", "parsec/netdedup-opt", "high sync aborts", "remove system calls", 2.10, 0},
		{"linkedlist", "synchro/linkedlist", "synchro/linkedlist-opt", "high abort rate, low penalty", "limit transaction size (aux locks)", 3.78, 0},
	}
}

// Table2 measures every optimization pair's speedup.
func Table2(w io.Writer, threads int, seed int64) ([]Table2Row, error) {
	fmt.Fprintf(w, "=== Table 2: optimization overview (%d threads) ===\n", threads)
	rows := Table2Pairs()
	speedups, err := mapIndexed(len(rows), func(i int) (float64, error) {
		return txsampler.Speedup(rows[i].Base, rows[i].Opt, txsampler.Options{Threads: threads, Seed: seed, Hybrid: Hybrid, Context: Context})
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		rows[i].Speedup = speedups[i]
		fmt.Fprintf(w, "  %-10s %-34s %-38s measured=%.2fx paper=%.2fx\n",
			rows[i].Code, rows[i].Symptom, rows[i].Solution, rows[i].Speedup, rows[i].Paper)
	}
	return rows, nil
}

// AccuracyComparison quantifies §9's tool comparison: the share of
// in-transaction samples whose full calling context each approach
// recovers, judged against ground truth.
func AccuracyComparison(w io.Writer, threads int, seed int64) error {
	fmt.Fprintf(w, "=== Attribution accuracy: TxSampler vs conventional profiler (%d threads) ===\n", threads)
	names := []string{"parsec/dedup", "micro/deep-calls", "synchro/linkedlist", "stamp/vacation"}
	accs, err := mapIndexed(len(names), func(i int) (txsampler.Accuracy, error) {
		_, acc, err := txsampler.RunWithAccuracy(names[i], txsampler.Options{Threads: threads, Seed: seed, Hybrid: Hybrid, Context: Context})
		return acc, err
	})
	if err != nil {
		return err
	}
	for i, name := range names {
		acc := accs[i]
		if acc.InTx == 0 {
			fmt.Fprintf(w, "  %-26s no in-transaction samples\n", name)
			continue
		}
		fmt.Fprintf(w, "  %-26s in-tx samples=%-5d detected=%s txsampler=%s stack-only=%s\n",
			name, acc.InTx,
			pct(float64(acc.PathDetected)/float64(acc.InTx)),
			pct(float64(acc.TxSamplerCorrect)/float64(acc.InTx)),
			pct(float64(acc.NaiveCorrect)/float64(acc.InTx)))
	}
	fmt.Fprintln(w, "  (a conventional profiler sees only the rolled-back stack: Challenge I/IV)")
	return nil
}

// TSXProfComparison runs the record-and-replay baseline (§9) against
// TxSampler's single-pass overhead on representative workloads.
func TSXProfComparison(w io.Writer, threads int, seed int64) error {
	names := []string{"stamp/vacation", "synchro/linkedlist", "parsec/dedup", "micro/true-sharing"}
	return tsxprof.Compare(w, names, threads, seed, func(name string) (float64, error) {
		row, err := overheadRow(name, threads, seed)
		if err != nil {
			return 0, err
		}
		return row.Overhead, nil
	})
}

// CaseStudy profiles one workload and prints its report plus the
// decision tree walk (the §8 investigations).
func CaseStudy(w io.Writer, name string, threads int, seed int64) (*analyzer.Report, *decision.Advice, error) {
	res, err := txsampler.Run(name, txsampler.Options{Threads: threads, Seed: seed, Profile: true, Hybrid: Hybrid, Context: Context})
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "=== Case study: %s ===\n", name)
	res.Report.Render(w)
	fmt.Fprintln(w)
	res.Advice.Render(w)
	return res.Report, res.Advice, nil
}

// MemOverhead reports the collector's memory footprint per thread for
// a few representative workloads (§7.1: <5MB per thread).
func MemOverhead(w io.Writer, threads int, seed int64) (maxPerThread int, err error) {
	fmt.Fprintf(w, "=== Collector memory overhead (%d threads) ===\n", threads)
	names := []string{"parsec/dedup", "stamp/vacation", "synchro/linkedlist", "app/leveldb"}
	pers, err := mapIndexed(len(names), func(i int) (int, error) {
		res, err := txsampler.Run(names[i], txsampler.Options{Threads: threads, Seed: seed, Profile: true, Hybrid: Hybrid, Context: Context})
		if err != nil {
			return 0, err
		}
		return res.CollectorBytes / threads, nil
	})
	if err != nil {
		return 0, err
	}
	for i, name := range names {
		per := pers[i]
		if per > maxPerThread {
			maxPerThread = per
		}
		fmt.Fprintf(w, "  %-26s %6.1f KiB/thread\n", name, float64(per)/1024)
	}
	fmt.Fprintln(w, "  paper bound: < 5 MiB per thread")
	return maxPerThread, nil
}

// SamplingRate verifies the paper's §6 guidance (50-200 samples per
// thread per second, rescaled here to samples per run) by reporting
// samples taken per thread for one workload at the default periods.
func SamplingRate(w io.Writer, threads int, seed int64) error {
	res, err := txsampler.Run("stamp/vacation", txsampler.Options{Threads: threads, Seed: seed, Profile: true, Hybrid: Hybrid, Context: Context})
	if err != nil {
		return err
	}
	var per []string
	for _, t := range res.Report.PerThread {
		per = append(per, fmt.Sprintf("%d", t.CommitSamples+t.AbortSamples))
	}
	fmt.Fprintf(w, "per-thread RTM samples: %s\n", strings.Join(per, " "))
	return nil
}
