package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"txsampler"
	"txsampler/internal/faults"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

func TestProfileCampaignFreshResumeRepair(t *testing.T) {
	dir := t.TempDir()
	cfg := CampaignConfig{
		Dir: dir, Workloads: []string{"micro/low-abort"},
		Threads: 2, Seed: 3,
		Metrics: telemetry.NewRegistry(),
	}
	var out strings.Builder
	rep, err := ProfileCampaign(&out, cfg)
	if err != nil || rep.Ran != 1 || rep.Failed != 0 {
		t.Fatalf("fresh run: %+v err=%v\n%s", rep, err, out.String())
	}
	artifact := filepath.Join(dir, artifactName("micro/low-abort", 3))
	if err := VerifyArtifact(artifact); err != nil {
		t.Fatal(err)
	}

	// Resume skips the verified shard.
	cfg.Resume = true
	out.Reset()
	rep, err = ProfileCampaign(&out, cfg)
	if err != nil || rep.Skipped != 1 || rep.Ran != 0 {
		t.Fatalf("resume: %+v err=%v", rep, err)
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Fatalf("output: %s", out.String())
	}

	// Damage the artifact: the journal still says done, but the resumed
	// campaign re-verifies, notices, and re-runs the shard to the exact
	// same bytes.
	good, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artifact, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	rep, err = ProfileCampaign(&out, cfg)
	if err != nil || rep.Ran != 1 || rep.Rerun != 1 {
		t.Fatalf("repair: %+v err=%v", rep, err)
	}
	repaired, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if string(repaired) != string(good) {
		t.Fatal("re-run artifact differs from the original")
	}
}

func TestProfileCampaignTornWriteFails(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	rep, err := ProfileCampaign(&out, CampaignConfig{
		Dir: dir, Workloads: []string{"micro/low-abort"},
		Threads: 2, Seed: 3,
		Plan: faults.Plan{CrashWriteOffset: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || !strings.Contains(out.String(), "FAILED") {
		t.Fatalf("report %+v\n%s", rep, out.String())
	}
	// The torn write is detectable, never silently loadable.
	artifact := filepath.Join(dir, artifactName("micro/low-abort", 3))
	if err := VerifyArtifact(artifact); err == nil {
		t.Fatal("torn artifact verified")
	}

	// Resume WITHOUT the storage fault: the shard key is unchanged
	// (crash-write is not part of the config hash), so the failed shard
	// re-runs and the artifact becomes whole.
	out.Reset()
	rep, err = ProfileCampaign(&out, CampaignConfig{
		Dir: dir, Workloads: []string{"micro/low-abort"},
		Threads: 2, Seed: 3, Resume: true,
	})
	if err != nil || rep.Ran != 1 || rep.Rerun != 1 {
		t.Fatalf("recovery: %+v err=%v\n%s", rep, err, out.String())
	}
	if err := VerifyArtifact(artifact); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyArtifactRejectsPartial(t *testing.T) {
	res, err := txsampler.Run("micro/low-abort", txsampler.Options{Threads: 2, Seed: 1, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	res.Report.Partial = true
	path := filepath.Join(t.TempDir(), "p.json")
	if err := profile.FromReport(res.Report).Save(path); err != nil {
		t.Fatal(err)
	}
	err = VerifyArtifact(path)
	if err == nil || !strings.Contains(err.Error(), "partial") {
		t.Fatalf("err = %v, want partial rejection", err)
	}
}
