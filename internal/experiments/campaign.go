package experiments

// Profile campaigns: the crash-safe, resumable form of "profile every
// workload and save its database". cmd/htmbench -profiledir and
// cmd/experiments -sweep both drive this helper, so both CLIs share
// one journal format, one artifact layout, and one resume semantics.

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"txsampler"
	"txsampler/internal/campaign"
	"txsampler/internal/faults"
	"txsampler/internal/machine"
	"txsampler/internal/profile"
	"txsampler/internal/telemetry"
)

// JournalName is the campaign manifest's filename inside the artifact
// directory. Byte-level comparisons of two campaign directories must
// exclude it when worker counts differ: parallel workers interleave
// journal lines in completion order, while the artifacts themselves
// stay byte-identical.
const JournalName = "campaign.jsonl"

// CampaignConfig describes a profile sweep.
type CampaignConfig struct {
	// Dir receives one profile database per shard plus the journal.
	Dir string
	// Workloads to profile, in output order.
	Workloads []string
	// Threads (0 = each workload's default) and the base Seed; Seeds > 1
	// fans each workload out over Seed..Seed+Seeds-1.
	Threads int
	Seed    int64
	Seeds   int
	// Plan is the fault-injection plan. Machine faults are part of the
	// shard identity; the crash-write storage fault is not (see
	// faults.Plan.MachineOnly) — it tears the artifact write instead.
	Plan    faults.Plan
	Quantum int
	// Hybrid selects the slow-path execution mode of every workload
	// lock; part of the shard identity (it changes the profile bytes).
	Hybrid machine.HybridPolicy
	// Resume replays Dir's journal and skips shards whose artifacts
	// verify; false starts a fresh journal (artifacts are overwritten as
	// their shards complete).
	Resume bool
	// Retries, Backoff, Timeout, Parallel, Context, Metrics, and
	// CrashAfterShards map to the campaign runner's options.
	Retries          int
	Backoff          time.Duration
	Timeout          time.Duration
	Parallel         int
	Context          context.Context
	Metrics          *telemetry.Registry
	CrashAfterShards int
}

// artifactName flattens a workload name into the per-seed database
// filename, e.g. stamp/vacation seed 5 -> stamp_vacation_s5.json.
func artifactName(workload string, seed int64) string {
	return fmt.Sprintf("%s_s%d.json", strings.ReplaceAll(workload, "/", "_"), seed)
}

// VerifyArtifact checks one campaign artifact: it must load cleanly
// from the crash-safe store and must not be a partial (interrupted)
// profile.
func VerifyArtifact(path string) error {
	info, err := profile.Verify(path)
	if err != nil {
		return err
	}
	if info.Partial {
		return fmt.Errorf("%s: partial profile (interrupted run)", path)
	}
	return nil
}

// ProfileCampaign profiles every workload×seed shard into c.Dir under
// the campaign journal, printing one ground-truth line per shard in
// input order (byte-identical for any Parallel), then the campaign
// summary. Failed shards are reported, not fatal; the returned report
// says what ran, what the journal skipped, and what failed. The error
// is non-nil only when the campaign context was canceled.
func ProfileCampaign(w io.Writer, c CampaignConfig) (*campaign.Report, error) {
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return nil, err
	}
	j, err := campaign.OpenJournal(filepath.Join(c.Dir, JournalName), c.Resume)
	if err != nil {
		return nil, err
	}
	defer j.Close()

	// The config hash covers everything else a shard's bytes depend on:
	// the machine-visible fault plan and the database format version.
	// Quantum and Parallel stay out — results are invariant to both —
	// and so does the crash-write offset, a storage-layer fault.
	confighash := campaign.Hash(c.Plan.MachineOnly().String(), strconv.Itoa(profile.FormatVersion), c.Hybrid.String())

	lines := make([]string, len(c.Workloads)*c.Seeds)
	shards := make([]campaign.Shard, 0, len(lines))
	for wi, name := range c.Workloads {
		for si := 0; si < c.Seeds; si++ {
			idx := wi*c.Seeds + si
			name, seed := name, c.Seed+int64(si)
			rel := artifactName(name, seed)
			shards = append(shards, campaign.Shard{
				Workload:   name,
				Threads:    c.Threads,
				Seed:       seed,
				ConfigHash: confighash,
				Artifact:   rel,
				Run: func(ctx context.Context) error {
					opt := txsampler.Options{
						Threads: c.Threads, Seed: seed, Profile: true,
						Faults: c.Plan, Quantum: c.Quantum, Hybrid: c.Hybrid, Context: ctx,
					}
					res, err := txsampler.Run(name, opt)
					if err != nil {
						return err
					}
					db := profile.FromReport(res.Report)
					path := filepath.Join(c.Dir, rel)
					if off := c.Plan.CrashWriteOffset; off > 0 {
						return db.SaveCrash(path, off)
					}
					if err := db.Save(path); err != nil {
						return err
					}
					lines[idx] = groundTruthLine(name, seed, res)
					return nil
				},
			})
		}
	}

	rep, err := campaign.Run(shards, j, campaign.Options{
		Workers: c.Parallel, Timeout: c.Timeout,
		Retries: c.Retries, Backoff: c.Backoff,
		Context: c.Context, Metrics: c.Metrics,
		Verify:           func(rel string) error { return VerifyArtifact(filepath.Join(c.Dir, rel)) },
		Log:              nil, // decisions are summarized below, in input order
		CrashAfterShards: c.CrashAfterShards,
	})

	for i, s := range shards {
		if lines[i] != "" {
			fmt.Fprint(w, lines[i])
			continue
		}
		if e, ok := j.State(s.Key()); ok {
			switch e.Status {
			case campaign.StatusDone:
				fmt.Fprintf(w, "%-28s seed=%-4d skipped (journal: done, artifact verified)\n", s.Workload, s.Seed)
			case campaign.StatusFailed:
				if rep != nil && rep.Canceled && strings.Contains(e.Err, "canceled") {
					fmt.Fprintf(w, "%-28s seed=%-4d interrupted (re-runs on resume)\n", s.Workload, s.Seed)
				} else {
					fmt.Fprintf(w, "%-28s seed=%-4d FAILED: %s\n", s.Workload, s.Seed, e.Err)
				}
			default:
				fmt.Fprintf(w, "%-28s seed=%-4d interrupted (attempt %d)\n", s.Workload, s.Seed, e.Attempt)
			}
		}
	}
	fmt.Fprintln(w, rep.String())
	return rep, err
}

// groundTruthLine formats one shard's native-statistics line (the same
// shape htmbench prints for plain runs).
func groundTruthLine(name string, seed int64, res *txsampler.Result) string {
	g := res.GroundTruth
	var aborts uint64
	for _, n := range g.Aborts {
		aborts += n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s seed=%-4d cycles=%-10d commits=%-7d aborts=%-7d causes:",
		name, seed, res.ElapsedCycles, g.Commits, aborts)
	for _, c := range g.AbortCauses() {
		fmt.Fprintf(&b, " %v=%d", c, g.Aborts[c])
	}
	b.WriteByte('\n')
	return b.String()
}
