package experiments

import (
	"io"
	"strings"
	"testing"
)

// Tests run the experiments at reduced thread counts to keep runtime
// modest; the full-scale numbers come from cmd/experiments and the
// root benchmark suite.

func TestTable1Prints(t *testing.T) {
	var b strings.Builder
	Table1(&b)
	for _, want := range []string{"Adjacent", "FirstParts", "Random"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	rows, err := Fig7(io.Discard, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	byName := map[string]ClompRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Small transactions carry more begin/end overhead than large
	// ones on the conflict-free input.
	if byName["clomp/small-1"].Toh <= byName["clomp/large-1"].Toh {
		t.Errorf("small-1 Toh=%.2f should exceed large-1 Toh=%.2f",
			byName["clomp/small-1"].Toh, byName["clomp/large-1"].Toh)
	}
	// The high-conflict input serializes large transactions: its lock
	// waiting dominates every other configuration's.
	l2 := byName["clomp/large-2"]
	for _, r := range rows {
		if r.Name != "clomp/large-2" && r.Twait > l2.Twait {
			t.Errorf("%s Twait=%.2f exceeds large-2's %.2f", r.Name, r.Twait, l2.Twait)
		}
	}
	// Input 2 shows conflict aborts; input 1 shows none.
	if byName["clomp/large-2"].Conflicts == 0 {
		t.Error("large-2 has no conflict aborts")
	}
	if byName["clomp/large-1"].Conflicts+byName["clomp/large-1"].Capacity != 0 {
		t.Error("large-1 should be abort-free")
	}
	// Input 3 is where capacity aborts appear.
	if byName["clomp/large-3"].Capacity == 0 {
		t.Error("large-3 has no capacity aborts")
	}
	if byName["clomp/large-2"].Capacity != 0 {
		t.Error("large-2 should have no capacity aborts")
	}
}

func TestFig8SplashIsTypeI(t *testing.T) {
	rows, err := Fig8(io.Discard, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if strings.HasPrefix(r.Name, "splash2/") && r.Category != 1 {
			t.Errorf("%s categorized %v, want Type I", r.Name, r.Category)
		}
	}
	if len(rows) < 25 {
		t.Fatalf("only %d programs categorized", len(rows))
	}
}

func TestTable2PairsResolve(t *testing.T) {
	for _, p := range Table2Pairs() {
		if p.Base == "" || p.Opt == "" || p.Paper <= 0 {
			t.Errorf("bad pair: %+v", p)
		}
	}
	if len(Table2Pairs()) != 10 {
		t.Fatalf("Table 2 has %d rows, want 10", len(Table2Pairs()))
	}
}

func TestTable2RobustWins(t *testing.T) {
	rows, err := Table2(io.Discard, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("%s: nonpositive speedup %.2f", r.Code, r.Speedup)
		}
		if r.Speedup > 1 {
			wins++
		}
	}
	if wins < 8 {
		t.Errorf("only %d/%d optimizations win at 8 threads", wins, len(rows))
	}
}

func TestCaseStudyDedupFindsHashtableSearch(t *testing.T) {
	report, advice, err := CaseStudy(io.Discard, "parsec/dedup", 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range report.TopAbortWeight(5) {
		if strings.Contains(h.Path(), "hashtable_search") {
			found = true
		}
	}
	if !found {
		t.Error("dedup's abort weight not attributed to hashtable_search (Figure 9)")
	}
	if len(advice.Suggestions) == 0 {
		t.Error("no advice for dedup")
	}
}

func TestMemOverheadUnderPaperBound(t *testing.T) {
	maxPer, err := MemOverhead(io.Discard, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if maxPer > 5<<20 {
		t.Fatalf("collector uses %d bytes/thread, paper bound is 5MB", maxPer)
	}
}

func TestSamplingRatePrints(t *testing.T) {
	var b strings.Builder
	if err := SamplingRate(&b, 6, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "per-thread RTM samples") {
		t.Error("missing sampling rate output")
	}
}

func TestAccuracyComparisonRendering(t *testing.T) {
	var b strings.Builder
	if err := AccuracyComparison(&b, 6, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "txsampler=") || !strings.Contains(out, "stack-only=") {
		t.Fatalf("missing columns:\n%s", out)
	}
}

func TestTSXProfComparisonRendering(t *testing.T) {
	var b strings.Builder
	if err := TSXProfComparison(&b, 6, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "replay=") || !strings.Contains(out, "trace=") {
		t.Fatalf("missing columns:\n%s", out)
	}
}

// TestParallelOutputIdentical shards the same experiment across 1 and
// 8 workers and requires byte-identical output: every run is a pure
// function of its options and results print in input order.
func TestParallelOutputIdentical(t *testing.T) {
	defer func(old int) { Parallel = old }(Parallel)

	run := func(workers int) string {
		Parallel = workers
		var b strings.Builder
		if _, err := MemOverhead(&b, 4, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := Fig7(&b, 4, 1); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	seq := run(1)
	par := run(8)
	if seq != par {
		t.Fatalf("output differs between -parallel 1 and 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}
