package decision

import (
	"strings"
	"testing"

	"txsampler/internal/analyzer"
	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

func stack(fns ...string) []lbr.IP {
	out := make([]lbr.IP, len(fns))
	for i, f := range fns {
		out[i] = lbr.IP{Fn: f}
	}
	return out
}

func cycles(c *core.Collector, n int, state uint32, inTx bool) {
	for i := 0; i < n; i++ {
		s := &machine.Sample{Event: pmu.Cycles, State: state, Stack: stack("main"), IP: lbr.IP{Fn: "main"}}
		if inTx {
			s.LBR = []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}}
		}
		c.HandleSample(s)
	}
}

func aborts(c *core.Collector, n int, cause htm.Cause, w uint64) {
	for i := 0; i < n; i++ {
		c.HandleSample(&machine.Sample{
			Event: pmu.TxAbort, Stack: stack("main"), IP: lbr.IP{Fn: "main"},
			LBR:   []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}},
			Abort: &machine.AbortInfo{Cause: cause, Weight: w, AbortedBy: -1},
		})
	}
}

func commits(c *core.Collector, n int) {
	for i := 0; i < n; i++ {
		c.HandleSample(&machine.Sample{Event: pmu.TxCommit, Stack: stack("main"), IP: lbr.IP{Fn: "main"}})
	}
}

// stores feeds alternating-thread store samples at addr+tid*8: with
// distinct words on one line this manufactures false sharing.
func stores(c *core.Collector, n int, base uint64, spreadWords bool) {
	for i := 0; i < n; i++ {
		tid := i % 2
		a := base
		if spreadWords {
			a += uint64(tid) * 8
		}
		c.HandleSample(&machine.Sample{
			Event: pmu.Stores, TID: tid, HasAddr: true, IsWrite: true,
			Addr: mem.Addr(a), Time: uint64(i * 10),
			Stack: stack("main"), IP: lbr.IP{Fn: "main"},
		})
	}
}

func uniform() pmu.Periods {
	var p pmu.Periods
	p[pmu.Cycles], p[pmu.TxAbort], p[pmu.TxCommit], p[pmu.Loads], p[pmu.Stores] = 100, 1, 1, 10, 10
	return p
}

func evaluate(c *core.Collector) *Advice {
	return Evaluate(analyzer.Analyze("test", c), Thresholds{})
}

func hasSuggestion(a *Advice, substr string) bool {
	for _, s := range a.Suggestions {
		if strings.Contains(s, substr) {
			return true
		}
	}
	return false
}

func hasStep(a *Advice, id int, node string) bool {
	for _, s := range a.Steps {
		if s.ID == id && strings.Contains(s.Node, node) {
			return true
		}
	}
	return false
}

func TestTypeIStopsEarly(t *testing.T) {
	c := core.NewCollector(1, uniform(), 0)
	cycles(c, 95, 0, false)
	cycles(c, 5, rtm.InCS, true)
	a := evaluate(c)
	if !hasSuggestion(a, "No HTM-related") {
		t.Fatalf("advice = %s", a)
	}
	if len(a.Steps) != 1 {
		t.Fatalf("steps = %d, want 1 (stop at time analysis)", len(a.Steps))
	}
}

func TestTxDominantNoAction(t *testing.T) {
	c := core.NewCollector(1, uniform(), 0)
	cycles(c, 40, 0, false)
	cycles(c, 55, rtm.InCS, true) // Ttx
	cycles(c, 5, rtm.InCS|rtm.InOverhead, false)
	commits(c, 50)
	a := evaluate(c)
	if !hasSuggestion(a, "no HTM-specific optimization") {
		t.Fatalf("advice = %s", a)
	}
}

func TestHighOverheadSuggestsMerging(t *testing.T) {
	c := core.NewCollector(1, uniform(), 0)
	cycles(c, 30, 0, false)
	cycles(c, 40, rtm.InCS, true)
	cycles(c, 30, rtm.InCS|rtm.InOverhead, false) // large Toh
	commits(c, 50)
	a := evaluate(c)
	if !hasSuggestion(a, "Merge multiple small transactions") {
		t.Fatalf("advice = %s", a)
	}
}

func TestHighWaitWithTrueSharing(t *testing.T) {
	c := core.NewCollector(2, uniform(), 0)
	cycles(c, 20, 0, false)
	cycles(c, 30, rtm.InCS|rtm.InLockWaiting, false)
	cycles(c, 30, rtm.InCS|rtm.InFallback, false)
	cycles(c, 20, rtm.InCS, true)
	aborts(c, 30, htm.Conflict, 200)
	commits(c, 10)
	a := evaluate(c)
	if !hasStep(a, 2, "high lock waiting") {
		t.Fatalf("missing lock-waiting step: %s", a)
	}
	if !hasSuggestion(a, "Elide read locks") {
		t.Fatalf("advice = %s", a)
	}
	if !hasStep(a, 5, "shared data contention") {
		t.Fatalf("missing contention step: %s", a)
	}
	if !hasSuggestion(a, "Shrink transactions") {
		t.Fatalf("advice = %s", a)
	}
}

func TestCapacityDominant(t *testing.T) {
	c := core.NewCollector(1, uniform(), 0)
	cycles(c, 20, 0, false)
	cycles(c, 50, rtm.InCS|rtm.InFallback, false)
	cycles(c, 30, rtm.InCS, true)
	aborts(c, 20, htm.Capacity, 400)
	commits(c, 10)
	a := evaluate(c)
	if !hasStep(a, 5, "footprint large") {
		t.Fatalf("missing footprint step: %s", a)
	}
	if !hasSuggestion(a, "fits the L1 capacity") {
		t.Fatalf("advice = %s", a)
	}
}

func TestSyncDominantStepSix(t *testing.T) {
	c := core.NewCollector(1, uniform(), 0)
	cycles(c, 20, 0, false)
	cycles(c, 60, rtm.InCS|rtm.InFallback, false)
	cycles(c, 20, rtm.InCS, true)
	aborts(c, 20, htm.Sync, 300)
	commits(c, 30)
	a := evaluate(c)
	if !hasStep(a, 6, "unfriendly instructions") {
		t.Fatalf("missing step 6: %s", a)
	}
	if !hasSuggestion(a, "Move unfriendly instructions") {
		t.Fatalf("advice = %s", a)
	}
}

func TestMixedCausesAllReported(t *testing.T) {
	c := core.NewCollector(1, uniform(), 0)
	cycles(c, 10, 0, false)
	cycles(c, 60, rtm.InCS|rtm.InFallback, false)
	cycles(c, 30, rtm.InCS, true)
	aborts(c, 10, htm.Conflict, 300)
	aborts(c, 10, htm.Capacity, 300)
	aborts(c, 10, htm.Sync, 300)
	commits(c, 5)
	a := evaluate(c)
	if !hasStep(a, 5, "shared data contention") || !hasStep(a, 5, "footprint large") || !hasStep(a, 6, "unfriendly") {
		t.Fatalf("missing steps: %s", a)
	}
}

func TestFalseSharingBranch(t *testing.T) {
	c := core.NewCollector(2, uniform(), 0)
	cycles(c, 10, 0, false)
	cycles(c, 50, rtm.InCS|rtm.InLockWaiting, false)
	cycles(c, 40, rtm.InCS, true)
	aborts(c, 30, htm.Conflict, 200)
	commits(c, 10)
	stores(c, 40, 0x9000, true) // different words, same line
	a := evaluate(c)
	if !hasStep(a, 5, "false sharing") {
		t.Fatalf("missing false-sharing step: %s", a)
	}
	if !hasSuggestion(a, "different cache lines") {
		t.Fatalf("advice = %s", a)
	}
}

func TestThresholdDefaults(t *testing.T) {
	th := Thresholds{}.withDefaults()
	if th.MinRcs != 0.2 || th.HighRatio != 1.0 || th.LargeShare != 0.3 {
		t.Fatalf("defaults = %+v", th)
	}
	// Explicit values survive.
	th = Thresholds{MinRcs: 0.5}.withDefaults()
	if th.MinRcs != 0.5 {
		t.Fatalf("explicit MinRcs overwritten: %v", th.MinRcs)
	}
}

func TestRenderContainsWalk(t *testing.T) {
	c := core.NewCollector(1, uniform(), 0)
	cycles(c, 95, 0, false)
	cycles(c, 5, rtm.InCS, true)
	out := evaluate(c).String()
	if !strings.Contains(out, "decision tree walk") || !strings.Contains(out, "(1)") {
		t.Fatalf("render = %s", out)
	}
}

// TestPerContextRefinement: a context concentrating the capacity
// weight or dominated by sync aborts is flagged even when conflicts
// dominate the global mix (the §8.1 iterative investigation).
func TestPerContextRefinement(t *testing.T) {
	c := core.NewCollector(1, uniform(), 0)
	cycles(c, 20, 0, false)
	cycles(c, 50, rtm.InCS|rtm.InFallback, false)
	cycles(c, 30, rtm.InCS, true)
	commits(c, 10)
	// Conflicts dominate globally...
	for i := 0; i < 30; i++ {
		c.HandleSample(&machine.Sample{
			Event: pmu.TxAbort, Stack: stack("main", "contended"), IP: lbr.IP{Fn: "contended"},
			LBR:   []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}},
			Abort: &machine.AbortInfo{Cause: htm.Conflict, Weight: 300, AbortedBy: 1},
		})
	}
	// ...but one context holds all the capacity weight...
	c.HandleSample(&machine.Sample{
		Event: pmu.TxAbort, Stack: stack("main", "bigfootprint"), IP: lbr.IP{Fn: "bigfootprint"},
		LBR:   []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}},
		Abort: &machine.AbortInfo{Cause: htm.Capacity, CapKind: htm.CapacityRead, Weight: 900, AbortedBy: -1},
	})
	// ...and another is pure sync aborts.
	for i := 0; i < 3; i++ {
		c.HandleSample(&machine.Sample{
			Event: pmu.TxAbort, Stack: stack("main", "write_file"), IP: lbr.IP{Fn: "write_file"},
			LBR:   []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}},
			Abort: &machine.AbortInfo{Cause: htm.Sync, Weight: 400, AbortedBy: -1},
		})
	}
	a := evaluate(c)
	if !hasSuggestion(a, "bigfootprint") {
		t.Errorf("capacity-concentrating context not flagged:\n%s", a)
	}
	if !hasSuggestion(a, "write_file") {
		t.Errorf("sync-dominated context not flagged:\n%s", a)
	}
}

func TestImbalanceBranch(t *testing.T) {
	c := core.NewCollector(4, uniform(), 0)
	cycles(c, 10, 0, false)
	cycles(c, 60, rtm.InCS|rtm.InFallback, false)
	cycles(c, 30, rtm.InCS, true)
	aborts(c, 20, htm.Conflict, 100)
	// Thread 0 commits everything; the others starve.
	for i := 0; i < 30; i++ {
		c.HandleSample(&machine.Sample{Event: pmu.TxCommit, TID: 0, Stack: stack("main"), IP: lbr.IP{Fn: "main"}})
	}
	c.HandleSample(&machine.Sample{Event: pmu.TxCommit, TID: 1, Stack: stack("main"), IP: lbr.IP{Fn: "main"}})
	a := evaluate(c)
	if !hasStep(a, 5, "thread imbalance") {
		t.Fatalf("imbalance step missing:\n%s", a)
	}
	if !hasSuggestion(a, "Redistribute the work") {
		t.Fatalf("redistribute suggestion missing:\n%s", a)
	}
}
