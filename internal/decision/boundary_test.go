package decision

import (
	"testing"

	"txsampler/internal/analyzer"
	"txsampler/internal/cct"
	"txsampler/internal/core"
	"txsampler/internal/htm"
)

// nw is a sampled abort population: count and accumulated weight.
type nw struct{ n, w uint64 }

// ctxSpec plants one calling context in the merged tree so the
// per-context refinement loop has something to rank.
type ctxSpec struct {
	path    []string
	aborts  map[htm.Cause]nw
	capRead uint64
}

// spec assembles an analyzer.Report with exact metric ratios. Every
// decision-tree comparison divides small integers (e.g. Twait/T =
// 30/100), and correctly-rounded division makes 29/100, 30/100, 31/100
// compare exactly against the 0.3 literal — so each branch can be
// pinned exactly at, one unit below, and one unit above its threshold.
type spec struct {
	w, t, ttx, tfb, twait, toh uint64
	commits                    uint64
	aborts                     map[htm.Cause]nw
	trueSh, falseSh            uint64
	capRead, capWrite          uint64
	perThread                  []uint64 // sampled commits per thread
	contexts                   []ctxSpec
}

func (s spec) report() *analyzer.Report {
	r := &analyzer.Report{
		Program: "boundary", Threads: len(s.perThread),
		Merged: cct.NewTree[core.Metrics](), Periods: uniform(),
	}
	tot := &r.Totals
	tot.W, tot.T = s.w, s.t
	tot.Ttx, tot.Tfb, tot.Twait, tot.Toh = s.ttx, s.tfb, s.twait, s.toh
	tot.CommitSamples = s.commits
	tot.TrueSharing, tot.FalseSharing = s.trueSh, s.falseSh
	tot.CapReadW, tot.CapWriteW = s.capRead, s.capWrite
	for c, a := range s.aborts {
		tot.AbortCount[c], tot.AbortWeight[c] = a.n, a.w
		tot.AbortSamples += a.n
	}
	for _, cx := range s.contexts {
		n := r.Merged.Path(stack(cx.path...))
		for c, a := range cx.aborts {
			n.Data.AbortCount[c], n.Data.AbortWeight[c] = a.n, a.w
		}
		n.Data.CapReadW = cx.capRead
	}
	for i, v := range s.perThread {
		r.PerThread = append(r.PerThread, analyzer.ThreadSummary{TID: i, CommitSamples: v})
	}
	return r
}

// TestRcsBoundary: the tree's entry gate is `rcs < MinRcs` — exactly
// at the threshold must proceed past time analysis; one below stops.
func TestRcsBoundary(t *testing.T) {
	for _, c := range []struct {
		name  string
		t     uint64
		stops bool
	}{
		{"one-below stops", 19, true},
		{"exactly-at proceeds", 20, false},
		{"one-above proceeds", 21, false},
	} {
		t.Run(c.name, func(t *testing.T) {
			s := spec{w: 100, t: c.t, ttx: c.t, commits: 10}
			a := Evaluate(s.report(), Thresholds{})
			if got := hasSuggestion(a, "No HTM-related"); got != c.stops {
				t.Fatalf("T=%d: early-stop=%v, want %v:\n%s", c.t, got, c.stops, a)
			}
			if c.stops && len(a.Steps) != 1 {
				t.Fatalf("T=%d: early stop took %d steps, want 1", c.t, len(a.Steps))
			}
		})
	}
}

// TestThresholdBoundaries drives every remaining decision-tree branch
// through its threshold boundary. Each case pins one comparison
// exactly at, one unit below, or one unit above the default threshold
// and asserts the branch's step node and suggestion flip together.
// Branch operators differ (>= for shares, strict > for the
// abort/commit ratio), so the exactly-at rows also lock in the
// operator choice.
func TestThresholdBoundaries(t *testing.T) {
	// Shorthand specs. All keep rcs at 1.0 so only the branch under
	// test moves.
	waits := func(x uint64) spec {
		return spec{w: 100, t: 100, twait: x, ttx: 100 - x, commits: 10}
	}
	fbs := func(x uint64) spec {
		return spec{w: 100, t: 100, tfb: x, commits: 10}
	}
	ohs := func(x uint64) spec {
		return spec{w: 100, t: 100, toh: x, ttx: 100 - x, commits: 10}
	}
	ratio := func(n uint64) spec { // aborts/commits with 1:1 periods
		return spec{w: 100, t: 100, ttx: 100, commits: 10,
			aborts: map[htm.Cause]nw{htm.Conflict: {n, 100}}}
	}
	txdom := func(x uint64) spec {
		return spec{w: 100, t: 100, ttx: x, commits: 10}
	}
	cause := func(c htm.Cause, x uint64) spec { // share x/100, rest Explicit
		return spec{w: 100, t: 100, ttx: 100, commits: 10,
			aborts: map[htm.Cause]nw{c: {20, x}, htm.Explicit: {10, 100 - x}}}
	}
	falseSh := func(x uint64) spec {
		return spec{w: 100, t: 100, ttx: 100, commits: 10,
			aborts:  map[htm.Cause]nw{htm.Conflict: {20, 100}},
			trueSh:  100 - x,
			falseSh: x}
	}
	skew := func(per ...uint64) spec {
		return spec{w: 100, t: 100, ttx: 100, commits: 10,
			aborts:    map[htm.Cause]nw{htm.Conflict: {20, 100}},
			perThread: per}
	}
	ctxCap := func(x uint64) spec { // global capacity share 0.1, one context holds x% of cap weight
		return spec{w: 100, t: 100, ttx: 100, commits: 10, capRead: 100,
			aborts: map[htm.Cause]nw{htm.Conflict: {20, 90}, htm.Capacity: {2, 10}},
			contexts: []ctxSpec{{path: []string{"main", "hotcap"},
				aborts: map[htm.Cause]nw{htm.Conflict: {10, 50}}, capRead: x}}}
	}
	ctxSync := func(x uint64) spec { // global sync share 0.1, one context locally x%
		return spec{w: 100, t: 100, ttx: 100, commits: 10,
			aborts: map[htm.Cause]nw{htm.Conflict: {20, 90}, htm.Sync: {2, 10}},
			contexts: []ctxSpec{{path: []string{"main", "syncctx"},
				aborts: map[htm.Cause]nw{htm.Sync: {5, x}, htm.Conflict: {5, 100 - x}}}}}
	}

	cases := []struct {
		name string
		s    spec
		id   int    // step ID to look for (0 = suggestion only)
		node string // step node substring
		sug  string // suggestion substring ("" = step only)
		want bool
	}{
		// wait >= LargeShare (0.3)
		{"wait one-below", waits(29), 2, "high lock waiting", "Elide read locks", false},
		{"wait exactly-at", waits(30), 2, "high lock waiting", "Elide read locks", true},
		{"wait one-above", waits(31), 2, "high lock waiting", "Elide read locks", true},
		// fb >= LargeShare (0.3); firing must open the abort analysis
		{"fb one-below", fbs(29), 2, "large T_fb", "", false},
		{"fb exactly-at", fbs(30), 2, "large T_fb", "", true},
		{"fb one-above", fbs(31), 2, "large T_fb", "", true},
		{"fb one-below skips abort analysis", fbs(29), 3, "abort analysis", "", false},
		{"fb exactly-at reaches abort analysis", fbs(30), 3, "abort analysis", "", true},
		// oh >= LargeOverhead (0.15)
		{"oh one-below", ohs(14), 2, "large T_oh", "Merge multiple small transactions", false},
		{"oh exactly-at", ohs(15), 2, "large T_oh", "Merge multiple small transactions", true},
		{"oh one-above", ohs(16), 2, "large T_oh", "Merge multiple small transactions", true},
		// abort/commit ratio > HighRatio (1.0): STRICT — exactly-at stays out
		{"ratio one-below", ratio(9), 3, "abort analysis", "", false},
		{"ratio exactly-at", ratio(10), 3, "abort analysis", "", false},
		{"ratio one-above", ratio(11), 3, "abort analysis", "", true},
		// tx >= LargeShare (0.3) with nothing else firing
		{"txdom one-below", txdom(29), 2, "large T_tx", "no HTM-specific optimization", false},
		{"txdom exactly-at", txdom(30), 2, "large T_tx", "no HTM-specific optimization", true},
		{"txdom one-above", txdom(31), 2, "large T_tx", "no HTM-specific optimization", true},
		// conflict share >= HighCause (0.3)
		{"conflict one-below", cause(htm.Conflict, 29), 5, "shared data contention", "Redesign the algorithm", false},
		{"conflict exactly-at", cause(htm.Conflict, 30), 5, "shared data contention", "Redesign the algorithm", true},
		{"conflict one-above", cause(htm.Conflict, 31), 5, "shared data contention", "Redesign the algorithm", true},
		// false-sharing share >= HighFalse (0.3) within the conflict branch
		{"false-share one-below", falseSh(29), 5, "false sharing", "different cache lines", false},
		{"false-share exactly-at", falseSh(30), 5, "false sharing", "different cache lines", true},
		{"false-share one-above", falseSh(31), 5, "false sharing", "different cache lines", true},
		{"false-share one-below falls to contention", falseSh(29), 5, "shared data contention", "", true},
		// capacity share >= HighCause (0.3)
		{"capacity one-below", cause(htm.Capacity, 29), 5, "footprint large", "fits the L1 capacity", false},
		{"capacity exactly-at", cause(htm.Capacity, 30), 5, "footprint large", "fits the L1 capacity", true},
		{"capacity one-above", cause(htm.Capacity, 31), 5, "footprint large", "fits the L1 capacity", true},
		// sync share >= HighCause (0.3)
		{"sync one-below", cause(htm.Sync, 29), 6, "unfriendly instructions", "Move unfriendly instructions", false},
		{"sync exactly-at", cause(htm.Sync, 30), 6, "unfriendly instructions", "Move unfriendly instructions", true},
		{"sync one-above", cause(htm.Sync, 31), 6, "unfriendly instructions", "Move unfriendly instructions", true},
		// commit skew >= HighSkew (2.5): max/mean with mean 2.0
		{"skew one-below", skew(4, 2, 1, 1), 5, "thread imbalance", "Redistribute the work", false},
		{"skew exactly-at", skew(5, 1, 1, 1), 5, "thread imbalance", "Redistribute the work", true},
		{"skew one-above", skew(6, 1, 1, 0), 5, "thread imbalance", "Redistribute the work", true},
		// per-context capacity concentration >= HighCause (0.3) while
		// the global capacity share stays below it
		{"ctx-capacity one-below", ctxCap(29), 5, "footprint large", "hotcap", false},
		{"ctx-capacity exactly-at", ctxCap(30), 5, "footprint large", "hotcap", true},
		{"ctx-capacity one-above", ctxCap(31), 5, "footprint large", "hotcap", true},
		// per-context local sync share >= HighCause (0.3) while the
		// global sync share stays below it
		{"ctx-sync one-below", ctxSync(29), 6, "unfriendly instructions", "out of the transaction at", false},
		{"ctx-sync exactly-at", ctxSync(30), 6, "unfriendly instructions", "out of the transaction at", true},
		{"ctx-sync one-above", ctxSync(31), 6, "unfriendly instructions", "out of the transaction at", true},
		// fall-through: frequent aborts, no dominating cause
		{"no dominating cause", spec{w: 100, t: 100, ttx: 100, commits: 10,
			aborts: map[htm.Cause]nw{htm.Explicit: {10, 40}, htm.Conflict: {10, 20},
				htm.Capacity: {5, 20}, htm.Sync: {5, 20}}},
			0, "", "no single cause dominates", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := Evaluate(c.s.report(), Thresholds{})
			if c.node != "" {
				if got := hasStep(a, c.id, c.node); got != c.want {
					t.Errorf("step (%d) %q present=%v, want %v:\n%s", c.id, c.node, got, c.want, a)
				}
			}
			if c.sug != "" {
				if got := hasSuggestion(a, c.sug); got != c.want {
					t.Errorf("suggestion %q present=%v, want %v:\n%s", c.sug, got, c.want, a)
				}
			}
		})
	}
}

// TestCustomThresholds: explicit thresholds displace the defaults in
// the same boundary-exact way — the knobs are honored, not just the
// paper constants.
func TestCustomThresholds(t *testing.T) {
	// Twait = 40% of T: below a 0.5 threshold, at/above a 0.4 one.
	s := spec{w: 100, t: 100, twait: 40, ttx: 60, commits: 10}
	if a := Evaluate(s.report(), Thresholds{LargeShare: 0.5}); hasStep(a, 2, "high lock waiting") {
		t.Fatalf("0.40 wait fired at a 0.5 threshold:\n%s", a)
	}
	if a := Evaluate(s.report(), Thresholds{LargeShare: 0.4}); !hasStep(a, 2, "high lock waiting") {
		t.Fatalf("0.40 wait missed an exactly-at 0.4 threshold:\n%s", a)
	}
	// MinRcs raised above the measured 1.0 rcs stops the walk outright.
	if a := Evaluate(spec{w: 100, t: 100, ttx: 100, commits: 10}.report(),
		Thresholds{MinRcs: 1.5}); !hasSuggestion(a, "No HTM-related") {
		t.Fatalf("rcs below a raised MinRcs did not stop:\n%s", a)
	}
}
