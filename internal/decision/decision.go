// Package decision implements TxSampler's decision-tree model
// (paper Figure 1): a structured walk over the analyzer's metrics
// that pinpoints the bottleneck class and emits the paper's
// rule-of-thumb optimization suggestions. The numbered steps mirror
// the figure's annotations (the ①–⑥ trace of the Dedup case study).
package decision

import (
	"fmt"
	"io"
	"strings"

	"txsampler/internal/analyzer"
	"txsampler/internal/htm"
)

// Thresholds parameterize the tree's branch tests. Zero values take
// the paper's defaults.
type Thresholds struct {
	MinRcs        float64 // "CS time significant": T/W (default 0.2)
	LargeShare    float64 // a time component is "large" (default 0.3)
	LargeOverhead float64 // Toh is "large" (default 0.15)
	HighCause     float64 // an abort cause share is "high" (default 0.3)
	HighFalse     float64 // false sharing share is "high" (default 0.3)
	HighRatio     float64 // abort/commit ratio is "high" (default 1.0)
	HighSkew      float64 // per-thread commit skew is "imbalanced" (default 2.5)
}

func (t Thresholds) withDefaults() Thresholds {
	def := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&t.MinRcs, 0.2)
	def(&t.LargeShare, 0.3)
	def(&t.LargeOverhead, 0.15)
	def(&t.HighCause, 0.3)
	def(&t.HighFalse, 0.3)
	def(&t.HighRatio, 1.0)
	def(&t.HighSkew, 2.5)
	return t
}

// Step is one visited decision-tree node.
type Step struct {
	ID      int    // ①, ②, ... as in Figure 1
	Node    string // which box of the tree
	Finding string // the measured fact that drove the branch
}

// Advice is the result of one tree walk.
type Advice struct {
	Steps       []Step
	Suggestions []string
}

func (a *Advice) step(id int, node, format string, args ...any) {
	a.Steps = append(a.Steps, Step{ID: id, Node: node, Finding: fmt.Sprintf(format, args...)})
}

func (a *Advice) suggest(ss ...string) { a.Suggestions = append(a.Suggestions, ss...) }

// Render writes the walk and the suggestions.
func (a *Advice) Render(w io.Writer) {
	fmt.Fprintln(w, "--- decision tree walk (Figure 1) ---")
	for _, s := range a.Steps {
		fmt.Fprintf(w, " (%d) %-22s %s\n", s.ID, s.Node, s.Finding)
	}
	fmt.Fprintln(w, "suggestions:")
	for _, s := range a.Suggestions {
		fmt.Fprintf(w, "  * %s\n", s)
	}
}

// String renders the advice to a string.
func (a *Advice) String() string {
	var b strings.Builder
	a.Render(&b)
	return b.String()
}

// Evaluate walks the decision tree over a report.
func Evaluate(r *analyzer.Report, th Thresholds) *Advice {
	th = th.withDefaults()
	a := &Advice{}

	// (1) Time analysis: is critical-section time significant?
	rcs := r.Rcs()
	a.step(1, "time analysis", "T/W = %.1f%%", 100*rcs)
	if rcs < th.MinRcs {
		a.suggest("No HTM-related performance issue: critical sections take <" +
			fmt.Sprintf("%.0f%%", 100*th.MinRcs) + " of execution; optimize elsewhere.")
		return a
	}

	// (2) Decompose T.
	tx, stm, fb, wait, oh, persist := r.TimeShares()
	a.step(2, "time decomposition", "tx=%.0f%% stm=%.0f%% fb=%.0f%% wait=%.0f%% oh=%.0f%%",
		100*tx, 100*stm, 100*fb, 100*wait, 100*oh)
	if stm >= th.LargeShare {
		a.step(2, "large T_stm", "software slow path takes %.0f%% of T (stm/htm overhead %.2f)",
			100*stm, r.StmOverhead())
		a.suggest("Software transactions dominate: shrink read/write sets or raise the HTM retry budget so more sections commit in hardware.")
	}
	if persist >= th.LargeShare {
		a.step(2, "large T_persist", "persist epilogue takes %.0f%% of T (persistence stalls)",
			100*persist)
		a.suggest("Durable commits dominate: batch small persistent transactions, or shrink write sets so each commit flushes fewer lines.")
	}

	needAbort := false
	switch {
	case wait >= th.LargeShare:
		a.step(2, "high lock waiting", "T_wait = %.0f%% of T", 100*wait)
		a.suggest(
			"Elide read locks where possible.",
			"Use fine-grained locks to serialize instead of the single global fallback lock.")
		needAbort = true
	case fb >= th.LargeShare:
		a.step(2, "large T_fb", "T_fb = %.0f%% of T", 100*fb)
		needAbort = true
	}
	if oh >= th.LargeOverhead {
		a.step(2, "large T_oh", "T_oh = %.0f%% of T", 100*oh)
		a.suggest("Merge multiple small transactions into a larger one to amortize begin/end overhead.")
	}
	if !needAbort && r.AbortCommitRatio() > th.HighRatio {
		// Even with a time profile dominated by Ttx, a pathological
		// abort rate warrants abort analysis.
		needAbort = true
	}
	if !needAbort {
		if tx >= th.LargeShare && len(a.Suggestions) == 0 {
			a.step(2, "large T_tx", "transaction path dominates; usually no action needed")
			a.suggest("Transaction path dominates with few aborts: no HTM-specific optimization recommended.")
		}
		return a
	}

	// (3) Abort analysis: locate the worst place.
	a.step(3, "abort analysis", "abort/commit = %.2f, mean abort weight = %.0f",
		r.AbortCommitRatio(), r.MeanAbortWeight())
	if hot := r.TopAbortWeight(1); len(hot) > 0 {
		a.step(3, "hottest abort context", "%s", hot[0].Path())
	}

	// (4) Analyze abort type.
	conflict := r.CauseShare(htm.Conflict)
	capacity := r.CauseShare(htm.Capacity)
	sync := r.CauseShare(htm.Sync)
	a.step(4, "analyze abort type", "conflict=%.0f%% capacity=%.0f%% sync=%.0f%%",
		100*conflict, 100*capacity, 100*sync)

	if conflict >= th.HighCause {
		// (5) Conflicts: true vs false sharing.
		fss := r.FalseSharingShare()
		if fss >= th.HighFalse && r.Totals.FalseSharing > 0 {
			a.step(5, "false sharing", "false-sharing share of contention = %.0f%%", 100*fss)
			a.suggest(
				"Relocate contended data to different cache lines (pad or realign).",
				"Relocate data so each thread's updates stay on thread-local cache lines.")
		} else {
			a.step(5, "shared data contention", "true sharing dominates contention")
			a.suggest(
				"Redesign the algorithm to reduce shared-data conflicts.",
				"Shrink transactions to narrow the conflict window.",
				"Split transactions so independent updates do not conflict.")
		}
	}
	if capacity >= th.HighCause {
		a.step(5, "footprint large", "capacity share = %.0f%% (read w=%d, write w=%d)",
			100*capacity, r.Totals.CapReadW, r.Totals.CapWriteW)
		a.suggest(
			"Redesign the data structure to reduce the transactional footprint.",
			"Split or shrink transactions so the working set fits the L1 capacity.",
			"Relocate data to share cache lines (improve locality of the footprint).")
	}
	if sync >= th.HighCause {
		// (6) Unfriendly instructions.
		a.step(6, "unfriendly instructions", "synchronous abort share = %.0f%%", 100*sync)
		a.suggest(
			"Move unfriendly instructions (system calls, page-faulting accesses) out of transactions.",
			"Use an HTM-friendly equivalent for the unfriendly operation.")
	}
	// Per-context refinement: the paper re-applies the abort analysis
	// to each hot transaction (§8.1 finds hashtable_search's capacity
	// aborts and write_file's synchronous aborts separately, even
	// though neither dominates the program-wide mix).
	totalCapW := r.Totals.CapReadW + r.Totals.CapWriteW
	for _, hot := range r.TopAbortWeight(3) {
		m := hot.Metrics
		var total uint64
		for c, w := range m.AbortWeight {
			if !htm.Cause(c).Ambient() {
				total += w
			}
		}
		if total == 0 {
			continue
		}
		leaf := hot.Frames[len(hot.Frames)-1].String()
		local := func(c htm.Cause) float64 { return float64(m.AbortWeight[c]) / float64(total) }
		// A context concentrating the program's capacity-abort weight
		// is a footprint problem even when conflicts dominate its own
		// abort mix (the paper's Figure 9 reads the "capacity abort"
		// column per context).
		if capacity < th.HighCause && totalCapW > 0 {
			if capShare := float64(m.CapReadW+m.CapWriteW) / float64(totalCapW); capShare >= th.HighCause {
				a.step(5, "footprint large", "%s: %.0f%% of all capacity abort weight", leaf, 100*capShare)
				a.suggest("Split or shrink transactions so the working set fits the L1 capacity (hot: " + leaf + ").")
			}
		}
		if v := local(htm.Sync); v >= th.HighCause && sync < th.HighCause {
			a.step(6, "unfriendly instructions", "%s: synchronous share %.0f%% within this transaction", leaf, 100*v)
			a.suggest("Move unfriendly instructions (system calls, page faults) out of the transaction at " + leaf + ".")
		}
	}
	// Contention metrics (§5): an imbalanced commit histogram means
	// some threads starve (e.g. one thread keeps aborting the others).
	if skew := r.Imbalance(); skew >= th.HighSkew {
		a.step(5, "thread imbalance", "max/mean commit skew = %.1f", skew)
		a.suggest("Redistribute the work across threads to balance transaction execution.")
	}
	if len(a.Suggestions) == 0 {
		a.suggest("Aborts are frequent but no single cause dominates: inspect the per-context abort weights.")
	}
	return a
}
