// Package analyzer is TxSampler's offline data analyzer (paper §6):
// it coalesces the per-thread profiles produced by the collector,
// derives the paper's metrics — time decomposition shares, abort
// penalty and cause ratios, critical-section significance r_cs,
// abort/commit ratio r_a/c, per-thread balance — and renders reports.
// The decision-tree model in the decision package consumes its
// Report.
package analyzer

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"txsampler/internal/cct"
	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
	"txsampler/internal/pmu"
	"txsampler/internal/telemetry"
)

// ThreadSummary is one thread's sampled commit/abort balance, the
// §5 contention histogram.
type ThreadSummary struct {
	TID           int
	CommitSamples uint64
	AbortSamples  uint64 // application aborts only
}

// Report is the merged, derived view of one profiled execution.
type Report struct {
	Program string
	Threads int

	// Merged is the cross-thread coalesced calling context tree.
	Merged *core.Tree
	// Totals aggregates all contexts.
	Totals core.Metrics
	// PerThread holds the §5 per-thread histograms.
	PerThread []ThreadSummary

	// Profiles are the collector's per-thread profiles (not
	// serialized; nil for reports loaded from a profile database).
	// The GUI-style per-context per-thread plots read them.
	Profiles []*core.Profile

	Periods pmu.Periods

	// Quality reports how degraded the underlying data is: the
	// collector's malformed/unresolvable-sample counters plus, when a
	// frontend merged them in, the machine's fault-injection stats.
	Quality core.DataQuality

	// Partial marks a report built from a cooperatively canceled run
	// (SIGINT/SIGTERM or a shard deadline stopped the machine at a
	// quantum boundary): consistent, but covering only a prefix of the
	// workload. Serialized into the profile database's Partial stamp.
	Partial bool

	// Self is the profiler self-report: the telemetry snapshot of the
	// run that produced this profile (machine, collector, and analyzer
	// self-metrics). Nil when telemetry was disabled. Volatile
	// (wall-clock) entries are dropped when the report is serialized.
	Self []telemetry.MetricValue
}

// Analyze merges a collector's per-thread profiles with a reduction
// tree (pairs at each round, mirroring the paper's parallel merge) and
// derives the report.
func Analyze(program string, col *core.Collector) *Report {
	return AnalyzeInstrumented(program, col, nil, nil)
}

// AnalyzeInstrumented is Analyze with self-telemetry: the copy and
// reduction phases become spans on the tracer's analyzer track
// (virtual sequence timestamps, deterministic), per-phase wall time
// lands in reg as volatile gauges, and the merge fan-in is counted.
func AnalyzeInstrumented(program string, col *core.Collector, tr *telemetry.Tracer, reg *telemetry.Registry) *Report {
	profiles := col.Profiles()
	r := &Report{
		Program: program,
		Threads: len(profiles),
		Periods: col.Periods(),
		Quality: col.Quality(),
	}
	r.Profiles = profiles
	start := time.Now()
	tr.BeginPhase("analyze:copy")
	trees := make([]*core.Tree, len(profiles))
	for i, p := range profiles {
		// Copy each profile tree so analysis never mutates collector
		// state: merge into a fresh tree.
		t := newTree()
		t.Merge(p.Tree, mergeMetrics)
		trees[i] = t
		r.Totals.Merge(&p.Totals)
		r.PerThread = append(r.PerThread, ThreadSummary{
			TID:           p.TID,
			CommitSamples: p.Totals.CommitSamples,
			AbortSamples:  p.Totals.AppAborts(),
		})
	}
	tr.EndPhase("analyze:copy")
	copied := time.Now()
	// Reduction tree: combine pairs until one remains. Pairs within a
	// round are independent, so they merge in parallel — the paper's
	// parallelized coalescing (§6, citing the HPCToolkit reduction
	// tree).
	tr.BeginPhase("analyze:reduce")
	var merges uint64
	for len(trees) > 1 {
		var next []*core.Tree
		var wg sync.WaitGroup
		for i := 0; i < len(trees); i += 2 {
			if i+1 < len(trees) {
				wg.Add(1)
				merges++
				go func(dst, src *core.Tree) {
					defer wg.Done()
					dst.Merge(src, mergeMetrics)
				}(trees[i], trees[i+1])
			}
			next = append(next, trees[i])
		}
		wg.Wait()
		trees = next
	}
	tr.EndPhase("analyze:reduce")
	if len(trees) == 1 {
		r.Merged = trees[0]
	} else {
		r.Merged = newTree()
	}
	if reg != nil {
		reg.Counter("analyzer.merges").Add(merges)
		reg.Gauge("analyzer.merged.nodes", false).Set(uint64(r.Merged.Size()))
		reg.Gauge("analyzer.phase.copy.wall_ns", true).Set(uint64(copied.Sub(start)))
		reg.Gauge("analyzer.phase.reduce.wall_ns", true).Set(uint64(time.Since(copied)))
	}
	return r
}

func newTree() *core.Tree { return cct.NewTree[core.Metrics]() }

func mergeMetrics(dst, src *core.Metrics) { dst.Merge(src) }

// Rcs returns the critical-section duration ratio r_cs = T/W
// (paper §7.3). Zero when no cycles samples were taken.
func (r *Report) Rcs() float64 { return ratio(r.Totals.T, r.Totals.W) }

// TimeShares returns the shares of T spent in the hardware
// transaction path, the instrumented software-transaction path, the
// fallback path, lock waiting, transaction overhead, and the
// persist epilogue (Equation 2 extended with the hybrid-TM stm bucket
// and the pmem persistence-stall bucket; stm is zero under the
// lock-only policy, persist is zero without the pmem tier).
func (r *Report) TimeShares() (tx, stm, fb, wait, oh, persist float64) {
	t := r.Totals
	return ratio(t.Ttx, t.T), ratio(t.Tstm, t.T), ratio(t.Tfb, t.T),
		ratio(t.Twait, t.T), ratio(t.Toh, t.T), ratio(t.Tpersist, t.T)
}

// StmOverhead returns the instrumentation-overhead ratio of the
// hybrid-TM slow path: cycles samples in instrumented software
// transactions per cycles sample in hardware transactions (stm ÷ htm).
// Zero when no software transactions ran; large values mean the
// workload pays heavily for STM coexistence (the HyTM cost both
// Alistarh et al. and Brown & Ravi bound from below).
func (r *Report) StmOverhead() float64 {
	return ratio(r.Totals.Tstm, r.Totals.Ttx)
}

// TopStmOverhead ranks contexts by instrumented-software-path samples
// — the call paths paying the most STM instrumentation cost.
func (r *Report) TopStmOverhead(k int) []HotContext {
	return r.TopBy(k, func(m *core.Metrics) uint64 { return m.Tstm })
}

// PersistOverhead returns the persistence-stall ratio of the pmem
// tier: cycles samples in the durable-commit persist epilogue per
// critical-section cycles sample (persist ÷ T). Zero without the pmem
// tier; large values mean durable commits — flushes, the persist
// fence, the commit record — dominate the critical-section budget.
func (r *Report) PersistOverhead() float64 {
	return ratio(r.Totals.Tpersist, r.Totals.T)
}

// TopPersist ranks contexts by persist-epilogue samples — the flush
// sites paying the most persistence-stall cycles.
func (r *Report) TopPersist(k int) []HotContext {
	return r.TopBy(k, func(m *core.Metrics) uint64 { return m.Tpersist })
}

// AbortCommitRatio returns r_a/c over sampled application aborts and
// commits, scaled by their sampling periods so differing periods
// still compare event counts.
func (r *Report) AbortCommitRatio() float64 {
	a := float64(r.Totals.AppAborts()) * float64(max64(r.Periods[pmu.TxAbort], 1))
	c := float64(r.Totals.CommitSamples) * float64(max64(r.Periods[pmu.TxCommit], 1))
	if c == 0 {
		if a == 0 {
			return 0
		}
		return inf
	}
	return a / c
}

const inf = 1e18

// CauseShare returns cause's share of the total application abort
// weight (Equation 4's r_conflict and friends).
func (r *Report) CauseShare(c htm.Cause) float64 {
	var total uint64
	for cc, w := range r.Totals.AbortWeight {
		if !htm.Cause(cc).Ambient() {
			total += w
		}
	}
	return ratio(r.Totals.AbortWeight[c], total)
}

// MeanAbortWeight returns w_t (Equation 3) over all sampled
// application aborts.
func (r *Report) MeanAbortWeight() float64 {
	var w, n uint64
	for c := range r.Totals.AbortWeight {
		if htm.Cause(c).Ambient() {
			continue
		}
		w += r.Totals.AbortWeight[c]
		n += r.Totals.AbortCount[c]
	}
	if n == 0 {
		return 0
	}
	return float64(w) / float64(n)
}

// FalseSharingShare returns false-sharing samples over all contention
// samples.
func (r *Report) FalseSharingShare() float64 {
	return ratio(r.Totals.FalseSharing, r.Totals.TrueSharing+r.Totals.FalseSharing)
}

// Category is the paper's Figure 8 program classification.
type Category int

const (
	// TypeI: critical sections are insignificant (r_cs < 0.2).
	TypeI Category = iota + 1
	// TypeII: significant critical sections, low abort/commit ratio.
	TypeII
	// TypeIII: significant critical sections, aborts exceed commits.
	TypeIII
)

func (c Category) String() string {
	switch c {
	case TypeI:
		return "Type I (CS < 20%)"
	case TypeII:
		return "Type II (CS >= 20%, abort/commit <= 1)"
	case TypeIII:
		return "Type III (CS >= 20%, abort/commit > 1)"
	}
	return "unknown"
}

// Categorize applies Figure 8's thresholds.
func (r *Report) Categorize() Category {
	if r.Rcs() < 0.2 {
		return TypeI
	}
	if r.AbortCommitRatio() <= 1 {
		return TypeII
	}
	return TypeIII
}

// Imbalance returns max/mean of per-thread sampled commit counts — a
// histogram skew indicator for §5's contention metrics (1 = balanced).
func (r *Report) Imbalance() float64 {
	if len(r.PerThread) == 0 {
		return 1
	}
	var sum, maxN uint64
	for _, t := range r.PerThread {
		sum += t.CommitSamples
		if t.CommitSamples > maxN {
			maxN = t.CommitSamples
		}
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(len(r.PerThread))
	return float64(maxN) / mean
}

// WastedWorkShare estimates the fraction of all cycles burned in
// aborted transaction attempts: aggregate application abort weight over
// the work estimated from cycles samples (VTune's "wasted cycles"
// metric, §9). Returns 0 when no cycles samples were taken.
func (r *Report) WastedWorkShare() float64 {
	totalCycles := float64(r.Totals.W) * float64(max64(r.Periods[pmu.Cycles], 1))
	if totalCycles == 0 {
		return 0
	}
	var wasted float64
	for c, wgt := range r.Totals.AbortWeight {
		if !htm.Cause(c).Ambient() {
			// Weights are sampled once per Periods[TxAbort] aborts.
			wasted += float64(wgt) * float64(max64(r.Periods[pmu.TxAbort], 1))
		}
	}
	share := wasted / totalCycles
	if share > 1 {
		share = 1
	}
	return share
}

// ImbalancedContext reports a calling context whose per-thread
// critical-section samples are skewed — §5's contention histogram
// finding ("a thread may always abort other threads, causing thread
// starvation").
type ImbalancedContext struct {
	Frames    []lbr.IP
	PerThread []uint64
	Skew      float64 // max over mean
}

// ImbalancedContexts scans the hottest critical-section contexts for
// per-thread skew above the threshold (e.g. 2.0 = one thread gets
// twice the mean). It needs the collector's per-thread trees, so it
// returns nil for reports loaded from a profile database.
func (r *Report) ImbalancedContexts(k int, threshold float64) []ImbalancedContext {
	if r.Profiles == nil || len(r.Profiles) < 2 {
		return nil
	}
	var out []ImbalancedContext
	for _, hot := range r.TopTime(k) {
		per := make([]uint64, len(r.Profiles))
		var sum, maxV uint64
		for i, p := range r.Profiles {
			n := p.Tree.Root
			for _, f := range hot.Frames {
				if n = n.Lookup(f); n == nil {
					break
				}
			}
			if n != nil {
				per[i] = n.Data.T
			}
			sum += per[i]
			if per[i] > maxV {
				maxV = per[i]
			}
		}
		if sum == 0 {
			continue
		}
		mean := float64(sum) / float64(len(per))
		if skew := float64(maxV) / mean; skew >= threshold {
			out = append(out, ImbalancedContext{Frames: hot.Frames, PerThread: per, Skew: skew})
		}
	}
	return out
}

// HotContext is one ranked calling context.
type HotContext struct {
	Frames  []lbr.IP
	Metrics core.Metrics
}

func (h HotContext) Path() string {
	parts := make([]string, len(h.Frames))
	for i, f := range h.Frames {
		parts[i] = f.String()
	}
	return strings.Join(parts, " > ")
}

// TopBy returns the k contexts with the largest value(metrics),
// considering only nodes where the metric was directly recorded.
func (r *Report) TopBy(k int, value func(*core.Metrics) uint64) []HotContext {
	var all []HotContext
	r.Merged.Walk(func(n *core.Node, _ int) {
		if v := value(&n.Data); v > 0 {
			all = append(all, HotContext{Frames: n.Frames(), Metrics: n.Data})
		}
	})
	sort.SliceStable(all, func(i, j int) bool {
		return value(&all[i].Metrics) > value(&all[j].Metrics)
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// TopAbortWeight ranks contexts by total application abort weight —
// the paper's "sort abort weight" investigation step (§8.1).
func (r *Report) TopAbortWeight(k int) []HotContext {
	return r.TopBy(k, func(m *core.Metrics) uint64 {
		var w uint64
		for c, v := range m.AbortWeight {
			if !htm.Cause(c).Ambient() {
				w += v
			}
		}
		return w
	})
}

// TopTime ranks contexts by critical-section samples.
func (r *Report) TopTime(k int) []HotContext {
	return r.TopBy(k, func(m *core.Metrics) uint64 { return m.T })
}

// TopFalseSharing ranks contexts by false-sharing samples.
func (r *Report) TopFalseSharing(k int) []HotContext {
	return r.TopBy(k, func(m *core.Metrics) uint64 { return m.FalseSharing })
}

// Render writes a human-readable report in the spirit of the paper's
// GUI metric pane.
func (r *Report) Render(w io.Writer) {
	t := r.Totals
	fmt.Fprintf(w, "=== TxSampler report: %s (%d threads) ===\n", r.Program, r.Threads)
	fmt.Fprintf(w, "samples: W=%d T=%d (r_cs=%.2f)\n", t.W, t.T, r.Rcs())
	tx, stm, fb, wait, oh, persist := r.TimeShares()
	fmt.Fprintf(w, "time in CS: tx=%.1f%% fallback=%.1f%% lock-wait=%.1f%% overhead=%.1f%%\n",
		100*tx, 100*fb, 100*wait, 100*oh)
	if t.Tstm > 0 {
		fmt.Fprintf(w, "hybrid: stm=%.1f%% of CS; instrumentation overhead stm/htm=%.2f\n",
			100*stm, r.StmOverhead())
	}
	if t.Tpersist > 0 {
		fmt.Fprintf(w, "pmem: persist=%.1f%% of CS (persistence stalls: flush+fence+commit-record)\n",
			100*persist)
	}
	fmt.Fprintf(w, "aborts/commits (sampled, scaled): ratio=%.3f mean-weight=%.0f\n",
		r.AbortCommitRatio(), r.MeanAbortWeight())
	fmt.Fprintf(w, "abort weight shares: conflict=%.1f%% capacity=%.1f%% sync=%.1f%%\n",
		100*r.CauseShare(htm.Conflict), 100*r.CauseShare(htm.Capacity), 100*r.CauseShare(htm.Sync))
	if t.ConflictTx+t.ConflictNonTx > 0 {
		fmt.Fprintf(w, "conflict sources: transactional=%d non-transactional(lock)=%d\n",
			t.ConflictTx, t.ConflictNonTx)
	}
	fmt.Fprintf(w, "sharing: true=%d false=%d (false share %.1f%%)\n",
		t.TrueSharing, t.FalseSharing, 100*r.FalseSharingShare())
	fmt.Fprintf(w, "category: %s; commit imbalance=%.2f; wasted work=%.1f%%\n",
		r.Categorize(), r.Imbalance(), 100*r.WastedWorkShare())
	if q := r.Quality; q.Degraded() > 0 {
		fmt.Fprintf(w, "data quality: DEGRADED (%d events): injected=%d malformed=%d unresolved-in-tx=%d inconsistent-state=%d dropped=%d coalesced=%d\n",
			q.Degraded(), q.Injected.Total(), q.MalformedSamples, q.UnresolvedInTx,
			q.InconsistentState, q.Injected.DroppedSamples, q.Injected.CoalescedSamples)
	} else {
		fmt.Fprintf(w, "data quality: clean (truncated in-tx paths: %d)\n", q.TruncatedPaths)
	}
	for _, ic := range r.ImbalancedContexts(5, 3.0) {
		fmt.Fprintf(w, "imbalanced context (skew %.1f): %s\n", ic.Skew, HotContext{Frames: ic.Frames}.Path())
	}
	if hot := r.TopAbortWeight(3); len(hot) > 0 {
		fmt.Fprintf(w, "hottest abort contexts:\n")
		for _, h := range hot {
			fmt.Fprintf(w, "  %s\n", h.Path())
		}
	}
	if hot := r.TopTime(3); len(hot) > 0 {
		fmt.Fprintf(w, "hottest CS contexts:\n")
		for _, h := range hot {
			fmt.Fprintf(w, "  %s (T=%d)\n", h.Path(), h.Metrics.T)
		}
	}
	if t.Tstm > 0 {
		if hot := r.TopStmOverhead(3); len(hot) > 0 {
			fmt.Fprintf(w, "hottest instrumented (stm) contexts:\n")
			for _, h := range hot {
				fmt.Fprintf(w, "  %s (stm=%d htm=%d stm/htm=%.2f)\n",
					h.Path(), h.Metrics.Tstm, h.Metrics.Ttx, ratio(h.Metrics.Tstm, h.Metrics.Ttx))
			}
		}
	}
	if t.Tpersist > 0 {
		if hot := r.TopPersist(3); len(hot) > 0 {
			fmt.Fprintf(w, "hottest persistence-stall (flush) contexts:\n")
			for _, h := range hot {
				fmt.Fprintf(w, "  %s (persist=%d, %.1f%% of context CS)\n",
					h.Path(), h.Metrics.Tpersist, 100*ratio(h.Metrics.Tpersist, h.Metrics.T))
			}
		}
	}
	if sites := r.ElisionSites(); len(sites) > 0 {
		r.renderElision(w, sites)
	}
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
