package analyzer

import (
	"strings"
	"testing"

	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

func stack(fns ...string) []lbr.IP {
	out := make([]lbr.IP, len(fns))
	for i, f := range fns {
		out[i] = lbr.IP{Fn: f}
	}
	return out
}

func abortedLBR() []lbr.Entry {
	return []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}}
}

// feed sends n synthetic cycles samples with the given state.
func feed(c *core.Collector, tid int, n int, state uint32, inTx bool, fns ...string) {
	for i := 0; i < n; i++ {
		s := &machine.Sample{
			Event: pmu.Cycles, TID: tid, State: state,
			Stack: stack(fns...), IP: lbr.IP{Fn: fns[len(fns)-1]},
		}
		if inTx {
			s.LBR = abortedLBR()
		}
		c.HandleSample(s)
	}
}

func feedAbort(c *core.Collector, tid int, cause htm.Cause, weight uint64, fns ...string) {
	c.HandleSample(&machine.Sample{
		Event: pmu.TxAbort, TID: tid,
		Stack: stack(fns...), IP: lbr.IP{Fn: fns[len(fns)-1]},
		LBR:   abortedLBR(),
		Abort: &machine.AbortInfo{Cause: cause, Weight: weight, AbortedBy: -1},
	})
}

func feedCommit(c *core.Collector, tid int, n int, fns ...string) {
	for i := 0; i < n; i++ {
		c.HandleSample(&machine.Sample{
			Event: pmu.TxCommit, TID: tid,
			Stack: stack(fns...), IP: lbr.IP{Fn: fns[len(fns)-1]},
		})
	}
}

func periods(cycles, abort, commit uint64) pmu.Periods {
	var p pmu.Periods
	p[pmu.Cycles] = cycles
	p[pmu.TxAbort] = abort
	p[pmu.TxCommit] = commit
	return p
}

func TestRcsAndShares(t *testing.T) {
	c := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(c, 0, 55, 0, false, "main")                         // S
	feed(c, 0, 10, rtm.InCS, true, "main", "tm_begin")       // Ttx
	feed(c, 0, 5, rtm.InCS|rtm.InSTM, false, "main")         // Tstm
	feed(c, 0, 20, rtm.InCS|rtm.InFallback, false, "main")   // Tfb
	feed(c, 0, 5, rtm.InCS|rtm.InLockWaiting, false, "main") // Twait
	feed(c, 0, 5, rtm.InCS|rtm.InOverhead, false, "main")    // Toh
	r := Analyze("synthetic", c)
	if got := r.Rcs(); got != 0.45 {
		t.Errorf("Rcs = %v, want 0.45", got)
	}
	tx, stm, fb, wait, oh, persist := r.TimeShares()
	if tx != 10.0/45 || stm != 5.0/45 || fb != 20.0/45 || wait != 5.0/45 || oh != 5.0/45 {
		t.Errorf("shares = %v %v %v %v %v", tx, stm, fb, wait, oh)
	}
	if persist != 0 {
		t.Errorf("persist share = %v, want 0 without the pmem tier", persist)
	}
	if got := r.StmOverhead(); got != 0.5 {
		t.Errorf("StmOverhead = %v, want 0.5", got)
	}
}

func TestAbortCommitRatioScalesByPeriod(t *testing.T) {
	// 2 abort samples at period 10 = ~20 aborts; 4 commit samples at
	// period 100 = ~400 commits; ratio 0.05.
	c := core.NewCollector(1, periods(100, 10, 100), 0)
	feedAbort(c, 0, htm.Conflict, 50, "main")
	feedAbort(c, 0, htm.Conflict, 50, "main")
	feedCommit(c, 0, 4, "main")
	r := Analyze("synthetic", c)
	if got := r.AbortCommitRatio(); got != 0.05 {
		t.Errorf("ratio = %v, want 0.05", got)
	}
}

func TestInterruptAbortsExcluded(t *testing.T) {
	c := core.NewCollector(1, periods(100, 1, 1), 0)
	feedAbort(c, 0, htm.Interrupt, 100, "main")
	feedAbort(c, 0, htm.Interrupt, 100, "main")
	feedAbort(c, 0, htm.Conflict, 60, "main")
	feedCommit(c, 0, 10, "main")
	r := Analyze("synthetic", c)
	if got := r.AbortCommitRatio(); got != 0.1 {
		t.Errorf("ratio = %v, want 0.1 (interrupt aborts excluded)", got)
	}
	if got := r.CauseShare(htm.Conflict); got != 1.0 {
		t.Errorf("conflict share = %v, want 1.0", got)
	}
	if got := r.MeanAbortWeight(); got != 60 {
		t.Errorf("mean weight = %v, want 60", got)
	}
}

func TestCategorize(t *testing.T) {
	// Type I: r_cs below 0.2.
	c := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(c, 0, 90, 0, false, "main")
	feed(c, 0, 10, rtm.InCS, true, "main")
	if got := Analyze("x", c).Categorize(); got != TypeI {
		t.Errorf("category = %v, want TypeI", got)
	}
	// Type II: significant CS, ratio <= 1.
	c = core.NewCollector(1, periods(100, 1, 1), 0)
	feed(c, 0, 50, 0, false, "main")
	feed(c, 0, 50, rtm.InCS, true, "main")
	feedAbort(c, 0, htm.Conflict, 10, "main")
	feedCommit(c, 0, 5, "main")
	if got := Analyze("x", c).Categorize(); got != TypeII {
		t.Errorf("category = %v, want TypeII", got)
	}
	// Type III: ratio > 1.
	c = core.NewCollector(1, periods(100, 1, 1), 0)
	feed(c, 0, 50, 0, false, "main")
	feed(c, 0, 50, rtm.InCS, true, "main")
	for i := 0; i < 5; i++ {
		feedAbort(c, 0, htm.Conflict, 10, "main")
	}
	feedCommit(c, 0, 2, "main")
	if got := Analyze("x", c).Categorize(); got != TypeIII {
		t.Errorf("category = %v, want TypeIII", got)
	}
}

func TestMergeAcrossThreads(t *testing.T) {
	c := core.NewCollector(2, periods(100, 1, 1), 0)
	feed(c, 0, 5, rtm.InCS, true, "main", "f")
	feed(c, 1, 7, rtm.InCS, true, "main", "f")
	feed(c, 1, 3, rtm.InCS, true, "main", "g")
	r := Analyze("x", c)
	var fT, gT uint64
	r.Merged.Walk(func(n *core.Node, _ int) {
		switch n.Frame.Fn {
		case "f":
			fT += n.Data.T
		case "g":
			gT += n.Data.T
		}
	})
	if fT != 12 || gT != 3 {
		t.Errorf("merged f=%d g=%d, want 12,3", fT, gT)
	}
	if r.Totals.T != 15 {
		t.Errorf("totals T = %d, want 15", r.Totals.T)
	}
}

func TestAnalyzeDoesNotMutateCollector(t *testing.T) {
	c := core.NewCollector(2, periods(100, 1, 1), 0)
	feed(c, 0, 5, rtm.InCS, true, "main", "f")
	feed(c, 1, 7, rtm.InCS, true, "main", "f")
	Analyze("x", c)
	Analyze("x", c)
	r := Analyze("x", c)
	if r.Totals.T != 12 {
		t.Errorf("repeated analysis changed totals: T = %d, want 12", r.Totals.T)
	}
	// Thread 0's own tree must still hold only its own samples.
	var fT uint64
	c.Profiles()[0].Tree.Walk(func(n *core.Node, _ int) {
		if n.Frame.Fn == "f" {
			fT += n.Data.T
		}
	})
	if fT != 5 {
		t.Errorf("collector tree mutated: thread 0 f.T = %d, want 5", fT)
	}
}

func TestTopAbortWeightOrdering(t *testing.T) {
	c := core.NewCollector(1, periods(100, 1, 1), 0)
	feedAbort(c, 0, htm.Conflict, 10, "main", "cold")
	feedAbort(c, 0, htm.Capacity, 500, "main", "hot")
	feedAbort(c, 0, htm.Conflict, 90, "main", "warm")
	r := Analyze("x", c)
	top := r.TopAbortWeight(2)
	if len(top) != 2 {
		t.Fatalf("top = %d entries", len(top))
	}
	if got := top[0].Frames[len(top[0].Frames)-1].Fn; got != "hot" {
		t.Errorf("top[0] = %q, want hot", got)
	}
	if got := top[1].Frames[len(top[1].Frames)-1].Fn; got != "warm" {
		t.Errorf("top[1] = %q, want warm", got)
	}
}

func TestImbalance(t *testing.T) {
	c := core.NewCollector(4, periods(100, 1, 1), 0)
	feedCommit(c, 0, 10, "main")
	feedCommit(c, 1, 10, "main")
	feedCommit(c, 2, 10, "main")
	feedCommit(c, 3, 10, "main")
	if got := Analyze("x", c).Imbalance(); got != 1 {
		t.Errorf("balanced imbalance = %v, want 1", got)
	}
	c = core.NewCollector(2, periods(100, 1, 1), 0)
	feedCommit(c, 0, 30, "main")
	feedCommit(c, 1, 10, "main")
	if got := Analyze("x", c).Imbalance(); got != 1.5 {
		t.Errorf("imbalance = %v, want 1.5", got)
	}
}

func TestRenderSmoke(t *testing.T) {
	c := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(c, 0, 50, 0, false, "main")
	feed(c, 0, 50, rtm.InCS, true, "main", "tm_begin", "hot")
	feedAbort(c, 0, htm.Conflict, 77, "main", "tm_begin", "hot")
	feedCommit(c, 0, 3, "main", "tm_begin")
	var b strings.Builder
	Analyze("demo", c).Render(&b)
	out := b.String()
	for _, want := range []string{"demo", "r_cs", "conflict", "hottest"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestNoCommitsNoAborts(t *testing.T) {
	c := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(c, 0, 10, 0, false, "main")
	r := Analyze("x", c)
	if got := r.AbortCommitRatio(); got != 0 {
		t.Errorf("ratio = %v, want 0", got)
	}
	if got := r.MeanAbortWeight(); got != 0 {
		t.Errorf("mean weight = %v, want 0", got)
	}
	if got := r.Categorize(); got != TypeI {
		t.Errorf("category = %v", got)
	}
}

func TestAbortsWithoutCommitsIsInfinite(t *testing.T) {
	c := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(c, 0, 10, rtm.InCS, true, "main")
	feedAbort(c, 0, htm.Conflict, 5, "main")
	r := Analyze("x", c)
	if got := r.AbortCommitRatio(); got < 1e17 {
		t.Errorf("ratio = %v, want effectively infinite", got)
	}
}

// TestParallelReductionManyThreads: merging an odd, large profile
// count through the parallel reduction tree preserves totals.
func TestParallelReductionManyThreads(t *testing.T) {
	const n = 13
	c := core.NewCollector(n, periods(100, 1, 1), 0)
	for tid := 0; tid < n; tid++ {
		feed(c, tid, tid+1, rtm.InCS, true, "main", "f")
	}
	r := Analyze("wide", c)
	want := uint64(n * (n + 1) / 2)
	if r.Totals.T != want {
		t.Fatalf("totals T = %d, want %d", r.Totals.T, want)
	}
	var fT uint64
	r.Merged.Walk(func(node *core.Node, _ int) {
		if node.Frame.Fn == "f" {
			fT += node.Data.T
		}
	})
	if fT != want {
		t.Fatalf("merged f.T = %d, want %d", fT, want)
	}
}

func TestWastedWorkShare(t *testing.T) {
	c := core.NewCollector(1, periods(100, 10, 10), 0)
	feed(c, 0, 50, rtm.InCS, true, "main") // ~5000 cycles of work
	feedAbort(c, 0, htm.Conflict, 100, "main")
	// 1 abort sample at period 10 = ~10 aborts of weight 100 = 1000
	// wasted cycles over 5000 total.
	r := Analyze("x", c)
	if got := r.WastedWorkShare(); got != 0.2 {
		t.Fatalf("wasted work = %v, want 0.2", got)
	}
}

func TestImbalancedContexts(t *testing.T) {
	c := core.NewCollector(4, periods(100, 1, 1), 0)
	// Thread 0 hogs the hot context; others barely touch it.
	feed(c, 0, 40, rtm.InCS, true, "main", "hot")
	feed(c, 1, 2, rtm.InCS, true, "main", "hot")
	feed(c, 2, 2, rtm.InCS, true, "main", "hot")
	feed(c, 3, 2, rtm.InCS, true, "main", "hot")
	r := Analyze("x", c)
	skewed := r.ImbalancedContexts(5, 2.0)
	if len(skewed) == 0 {
		t.Fatal("skewed context not reported")
	}
	if skewed[0].Skew < 3 {
		t.Fatalf("skew = %.2f, want >= 3", skewed[0].Skew)
	}
	// Balanced load: nothing reported.
	c2 := core.NewCollector(4, periods(100, 1, 1), 0)
	for tid := 0; tid < 4; tid++ {
		feed(c2, tid, 10, rtm.InCS, true, "main", "hot")
	}
	if got := Analyze("x", c2).ImbalancedContexts(5, 2.0); len(got) != 0 {
		t.Fatalf("balanced run reported %d skewed contexts", len(got))
	}
}

func TestImbalancedContextsLoadedProfileNil(t *testing.T) {
	r := &Report{Program: "loaded"}
	if got := r.ImbalancedContexts(5, 2.0); got != nil {
		t.Fatal("loaded profile should return nil")
	}
}

func TestDiffFindsMovers(t *testing.T) {
	before := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(before, 0, 40, rtm.InCS, true, "main", "hot")
	feed(before, 0, 5, rtm.InCS, true, "main", "steady")
	feedAbort(before, 0, htm.Conflict, 500, "main", "hot")
	after := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(after, 0, 4, rtm.InCS, true, "main", "hot") // optimized away
	feed(after, 0, 5, rtm.InCS, true, "main", "steady")
	rb, ra := Analyze("before", before), Analyze("after", after)
	deltas := Diff(rb, ra, 3)
	if len(deltas) == 0 {
		t.Fatal("no deltas")
	}
	top := deltas[0]
	if top.Frames[len(top.Frames)-1].Fn != "hot" {
		t.Fatalf("top mover = %s, want the hot context", top.Path())
	}
	if top.TBefore <= top.TAfter {
		t.Fatalf("hot context did not shrink: %d -> %d", top.TBefore, top.TAfter)
	}
	var b strings.Builder
	RenderDiff(&b, rb, ra, 3)
	out := b.String()
	for _, want := range []string{"profile diff", "r_cs", "top moving", "hot"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffContextOnlyInOneProfile(t *testing.T) {
	before := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(before, 0, 10, rtm.InCS, true, "main", "removed")
	after := core.NewCollector(1, periods(100, 1, 1), 0)
	feed(after, 0, 10, rtm.InCS, true, "main", "added")
	deltas := Diff(Analyze("b", before), Analyze("a", after), 10)
	var sawRemoved, sawAdded bool
	for _, d := range deltas {
		leaf := d.Frames[len(d.Frames)-1].Fn
		if leaf == "removed" && d.TAfter == 0 {
			sawRemoved = true
		}
		if leaf == "added" && d.TBefore == 0 {
			sawAdded = true
		}
	}
	if !sawRemoved || !sawAdded {
		t.Fatalf("one-sided contexts missing: removed=%v added=%v", sawRemoved, sawAdded)
	}
}
