package analyzer

import (
	"testing"

	"txsampler/internal/core"
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
)

// TestTopFalseSharing: contexts rank by false-sharing samples, and
// clean contexts never appear.
func TestTopFalseSharing(t *testing.T) {
	p := periods(100, 1, 1)
	p[pmu.Stores] = 1
	c := core.NewCollector(2, p, 0)
	store := func(tid int, fn string, addr uint64, now uint64) {
		c.HandleSample(&machine.Sample{
			Event: pmu.Stores, TID: tid, HasAddr: true, IsWrite: true,
			Addr: mem.Addr(addr), Time: now,
			Stack: stack("main", fn), IP: lbr.IP{Fn: fn},
		})
	}
	// padfree: two threads hammer sibling words of one line.
	for i := uint64(0); i < 8; i++ {
		store(int(i%2), "padfree", 0x9000+(i%2)*8, i*10)
	}
	// clean: a private line, one thread.
	for i := uint64(0); i < 8; i++ {
		store(0, "clean", 0xa000, i*10)
	}
	r := Analyze("sharing", c)
	top := r.TopFalseSharing(5)
	if len(top) == 0 {
		t.Fatal("no false-sharing contexts found")
	}
	leaf := top[0].Frames[len(top[0].Frames)-1].Fn
	if leaf != "padfree" {
		t.Fatalf("hottest false-sharing leaf = %q, want padfree", leaf)
	}
	for _, hc := range top {
		if hc.Metrics.FalseSharing == 0 {
			t.Fatalf("clean context ranked: %v", hc.Frames)
		}
	}
}
