package analyzer

import (
	"fmt"
	"io"
	"sort"

	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

// ElisionSite aggregates one elided lock site (an rtm.ElidedLock's
// elide:<site> frame subtree): how its critical-section samples split
// across the fallback ladder, and its abort-cause mix. The split is
// the evidence behind the "would elision win?" verdict — the OCC
// question answered with TxSampler-style sampled data instead of
// instrumentation.
type ElisionSite struct {
	Site string

	// Cycles samples inside the site's subtree, by execution mode:
	// Htm are sections that ran speculatively, Stm sections in the
	// instrumented software slow path, Lock sections that acquired the
	// lock (the fallback when eliding; every section when not), Wait
	// lock/drain waiting, Overhead begin/retry/cleanup bookkeeping.
	Htm, Stm, Lock, Wait, Overhead uint64

	// Elided reports whether the site actually ran elided (any sample
	// carried the InElision bit). False means the samples are
	// plain-lock baseline data and the verdict is unavailable.
	Elided bool

	// SpecCommits and SpecAborts are period-scaled estimates of the
	// site's hardware commits and application (non-ambient) aborts —
	// attempt-level evidence for the verdict. Time shares alone
	// mislead here: a section whose every attempt dies to a capacity
	// abort still accrues large Ttx from the doomed speculation, so
	// success must be judged on outcomes, not cycles.
	SpecCommits, SpecAborts uint64

	// Abort-cause mix of the site's speculation attempts.
	AbortCount  [htm.NumCauses]uint64
	AbortWeight [htm.NumCauses]uint64
}

// Executed returns the samples spent executing section bodies (htm +
// stm + lock), the verdict's denominator; waiting and overhead are
// ladder cost, not execution.
func (s ElisionSite) Executed() uint64 { return s.Htm + s.Stm + s.Lock }

// SuccessRate returns the elision success rate: the share of
// speculative attempts that committed, from the period-scaled commit
// and application-abort estimates. When neither event was sampled
// (tiny sites) it falls back to the time-share split.
func (s ElisionSite) SuccessRate() float64 {
	if s.SpecCommits+s.SpecAborts > 0 {
		return ratio(s.SpecCommits, s.SpecCommits+s.SpecAborts)
	}
	return ratio(s.Htm, s.Executed())
}

// SavedCycles estimates the serialized time elision saved: the share
// of speculative cycles belonging to committed attempts — work that
// ran concurrently instead of under the lock. Doomed attempts saved
// nothing, so the htm time is discounted by the success rate.
func (s ElisionSite) SavedCycles(cyclesPeriod uint64) uint64 {
	return uint64(float64(s.Htm*max64(cyclesPeriod, 1)) * s.SuccessRate())
}

// Win reports the verdict: the site ran elided and most of its
// speculative attempts committed. Sites whose attempts mostly abort
// into the STM or the lock pay the ladder's overhead on top of the
// serialization they were meant to avoid — elision loses there.
func (s ElisionSite) Win() bool {
	return s.Elided && s.Executed() > 0 && s.SuccessRate() >= 0.5
}

// Verdict renders the per-site verdict column.
func (s ElisionSite) Verdict() string {
	switch {
	case !s.Elided:
		return "plain-lock"
	case s.Executed() == 0:
		return "no-data"
	case s.Win():
		return "win"
	default:
		return "lose"
	}
}

// TopAbortCause returns the site's dominant application abort cause
// by weight, or htm.None when no application aborts were sampled.
func (s ElisionSite) TopAbortCause() (htm.Cause, uint64) {
	best, bestW := htm.None, uint64(0)
	for c, w := range s.AbortWeight {
		if !htm.Cause(c).Ambient() && w > bestW {
			best, bestW = htm.Cause(c), w
		}
	}
	return best, bestW
}

// ElisionSites aggregates the merged tree's elide:<site> frames into
// per-lock-site elision evidence, ordered by executed samples
// (largest first, ties by site name) for deterministic output. Empty
// when the program has no elidable locks.
func (r *Report) ElisionSites() []ElisionSite {
	acc := make(map[string]*ElisionSite)
	var collect func(n *core.Node, s *ElisionSite)
	collect = func(n *core.Node, s *ElisionSite) {
		d := &n.Data
		s.Htm += d.Ttx
		s.Stm += d.Tstm
		s.Lock += d.Tfb
		s.Wait += d.Twait
		s.Overhead += d.Toh
		s.SpecCommits += d.CommitSamples
		if d.TelideHtm+d.TelideStm+d.TelideLock > 0 {
			s.Elided = true
		}
		for c := range d.AbortCount {
			s.AbortCount[c] += d.AbortCount[c]
			s.AbortWeight[c] += d.AbortWeight[c]
		}
		for _, c := range n.Children() {
			collect(c, s)
		}
	}
	var walk func(n *core.Node)
	walk = func(n *core.Node) {
		if site, ok := rtm.ElisionSiteOf(n.Frame.Fn); ok {
			s := acc[site]
			if s == nil {
				s = &ElisionSite{Site: site}
				acc[site] = s
			}
			collect(n, s)
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(r.Merged.Root)
	commitPeriod := max64(r.Periods[pmu.TxCommit], 1)
	abortPeriod := max64(r.Periods[pmu.TxAbort], 1)
	out := make([]ElisionSite, 0, len(acc))
	for _, s := range acc {
		s.SpecCommits *= commitPeriod
		for c, n := range s.AbortCount {
			if !htm.Cause(c).Ambient() {
				s.SpecAborts += n * abortPeriod
			}
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Executed() != out[j].Executed() {
			return out[i].Executed() > out[j].Executed()
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// ElisionShares returns the elided splits of the Figure 4 buckets:
// the shares of T spent in elided-htm, elided-stm, and elided-lock
// sections. All zero when nothing ran elided.
func (r *Report) ElisionShares() (htm, stm, lock float64) {
	t := r.Totals
	return ratio(t.TelideHtm, t.T), ratio(t.TelideStm, t.T), ratio(t.TelideLock, t.T)
}

// renderElision writes the per-site verdict table; no output when the
// program has no elidable locks.
func (r *Report) renderElision(w io.Writer, sites []ElisionSite) {
	fmt.Fprintf(w, "lock elision (per site):\n")
	fmt.Fprintf(w, "  %-20s %6s %6s %6s %8s %10s  %s\n",
		"site", "htm", "stm", "lock", "success", "saved(cyc)", "verdict")
	for _, s := range sites {
		line := fmt.Sprintf("  %-20s %6d %6d %6d %7.1f%% %10d  %s",
			s.Site, s.Htm, s.Stm, s.Lock, 100*s.SuccessRate(),
			s.SavedCycles(r.Periods[pmu.Cycles]), s.Verdict())
		if c, cw := s.TopAbortCause(); cw > 0 {
			line += fmt.Sprintf(" (top abort: %v)", c)
		}
		fmt.Fprintln(w, line)
	}
}
