package analyzer

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
)

// Delta is one calling context's change between two profiles.
type Delta struct {
	Frames []lbr.IP
	// Before/After are the context's inclusive critical-section
	// samples and application abort weight in each profile.
	TBefore, TAfter   uint64
	AWBefore, AWAfter uint64
}

// Path renders the context.
func (d Delta) Path() string {
	parts := make([]string, len(d.Frames))
	for i, f := range d.Frames {
		parts[i] = f.String()
	}
	return strings.Join(parts, " > ")
}

// Diff compares two reports context-by-context — the paper's §8
// workflow of re-profiling after each optimization step ("re-applying
// abort analysis (3) and (4)...") made mechanical. It returns the
// contexts with the largest absolute change in critical-section
// samples or abort weight, largest first.
func Diff(before, after *Report, k int) []Delta {
	type acc struct {
		t  [2]uint64
		aw [2]uint64
	}
	byPath := map[string]*acc{}
	frames := map[string][]lbr.IP{}

	collect := func(r *Report, idx int) {
		r.Merged.Walk(func(n *core.Node, _ int) {
			var aw uint64
			for c, v := range n.Data.AbortWeight {
				if !htm.Cause(c).Ambient() {
					aw += v
				}
			}
			if n.Data.T == 0 && aw == 0 {
				return
			}
			fs := n.Frames()
			key := pathKey(fs)
			a := byPath[key]
			if a == nil {
				a = &acc{}
				byPath[key] = a
				frames[key] = fs
			}
			a.t[idx] += n.Data.T
			a.aw[idx] += aw
		})
	}
	collect(before, 0)
	collect(after, 1)

	var out []Delta
	for key, a := range byPath {
		out = append(out, Delta{
			Frames:  frames[key],
			TBefore: a.t[0], TAfter: a.t[1],
			AWBefore: a.aw[0], AWAfter: a.aw[1],
		})
	}
	magnitude := func(d Delta) uint64 {
		return absDiff(d.TBefore, d.TAfter) + absDiff(d.AWBefore, d.AWAfter)/100
	}
	sort.SliceStable(out, func(i, j int) bool {
		mi, mj := magnitude(out[i]), magnitude(out[j])
		if mi != mj {
			return mi > mj
		}
		return pathKey(out[i].Frames) < pathKey(out[j].Frames)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// RenderDiff writes a before/after comparison of the headline metrics
// and the top-moving contexts.
func RenderDiff(w io.Writer, before, after *Report, k int) {
	fmt.Fprintf(w, "=== profile diff: %s -> %s ===\n", before.Program, after.Program)
	row := func(name string, b, a float64, unit string) {
		fmt.Fprintf(w, "  %-22s %10.3f -> %-10.3f %s\n", name, b, a, unit)
	}
	row("r_cs", before.Rcs(), after.Rcs(), "")
	row("abort/commit", clampRatio(before.AbortCommitRatio()), clampRatio(after.AbortCommitRatio()), "")
	row("mean abort weight", before.MeanAbortWeight(), after.MeanAbortWeight(), "cycles")
	row("wasted work", before.WastedWorkShare(), after.WastedWorkShare(), "share")
	btx, bstm, bfb, bwait, boh, bpersist := before.TimeShares()
	atx, astm, afb, await, aoh, apersist := after.TimeShares()
	row("T_tx share", btx, atx, "")
	row("T_stm share", bstm, astm, "")
	row("T_fb share", bfb, afb, "")
	row("T_wait share", bwait, await, "")
	row("T_oh share", boh, aoh, "")
	if before.Totals.Tpersist > 0 || after.Totals.Tpersist > 0 {
		row("T_persist share", bpersist, apersist, "")
	}
	belide := before.Totals.TelideHtm + before.Totals.TelideStm + before.Totals.TelideLock
	aelide := after.Totals.TelideHtm + after.Totals.TelideStm + after.Totals.TelideLock
	if belide > 0 || aelide > 0 {
		bh, bs, bl := before.ElisionShares()
		ah, as, al := after.ElisionShares()
		row("elided-htm share", bh, ah, "")
		row("elided-stm share", bs, as, "")
		row("elided-lock share", bl, al, "")
		diffElisionVerdicts(w, before, after)
	}
	fmt.Fprintln(w, "top moving contexts (CS samples, abort weight):")
	for _, d := range Diff(before, after, k) {
		fmt.Fprintf(w, "  T %5d -> %-5d  AW %8d -> %-8d  %s\n",
			d.TBefore, d.TAfter, d.AWBefore, d.AWAfter, d.Path())
	}
}

// diffElisionVerdicts lists lock sites whose elision verdict flipped
// between the two profiles — the re-profile-after-each-step workflow
// applied to the elision decision.
func diffElisionVerdicts(w io.Writer, before, after *Report) {
	bv := make(map[string]string)
	for _, s := range before.ElisionSites() {
		bv[s.Site] = s.Verdict()
	}
	var moved []string
	for _, s := range after.ElisionSites() {
		if prev, ok := bv[s.Site]; ok && prev != s.Verdict() {
			moved = append(moved, fmt.Sprintf("  elision verdict %s: %s -> %s", s.Site, prev, s.Verdict()))
		}
	}
	sort.Strings(moved)
	for _, line := range moved {
		fmt.Fprintln(w, line)
	}
}

func pathKey(fs []lbr.IP) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, "\x00")
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func clampRatio(v float64) float64 {
	if v > 1e6 {
		return 1e6
	}
	return v
}
