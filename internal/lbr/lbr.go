// Package lbr models the Last Branch Records feature of modern Intel
// CPUs: a per-core circular buffer holding the most recent N taken
// branches. Each entry carries the (from, to) instruction pointers, an
// abort bit marking a branch caused by a transactional abort, and an
// "in-tsx" bit marking whether the branch executed inside a hardware
// transaction (paper §3.1, Figure 3(b)).
//
// TxSampler configures the LBR to capture calls and returns; the
// profiler pairs them to reconstruct the call-path suffix that executed
// speculatively inside a transaction and is otherwise lost when the
// abort rolls the architectural state back.
package lbr

// Kind classifies a recorded branch.
type Kind uint8

const (
	// KindCall is a function call branch.
	KindCall Kind = iota
	// KindReturn is a function return branch.
	KindReturn
	// KindAbort is the asynchronous branch from a transactional abort
	// to the fallback/XBEGIN target; its Abort bit is always set.
	KindAbort
	// KindInterrupt is the branch recorded when a PMU interrupt is
	// delivered without aborting a transaction (the triggering entry
	// the handler inspects first, Figure 3(b) LBR[0]).
	KindInterrupt
)

func (k Kind) String() string {
	switch k {
	case KindCall:
		return "call"
	case KindReturn:
		return "return"
	case KindAbort:
		return "abort"
	case KindInterrupt:
		return "interrupt"
	}
	return "unknown"
}

// IP identifies an instruction location in the simulated program:
// a function name plus a site label within it. It stands in for the
// instruction pointer values real LBR entries hold.
type IP struct {
	Fn   string
	Site string
}

func (ip IP) String() string {
	if ip.Site == "" {
		return ip.Fn
	}
	return ip.Fn + ":" + ip.Site
}

// Entry is one LBR record.
type Entry struct {
	Kind  Kind
	From  IP
	To    IP
	Abort bool // branch caused by a transaction abort
	InTSX bool // branch executed inside a transaction
}

// Buffer is a fixed-capacity circular branch record. Haswell/Broadwell
// provide 16 entries, Skylake and successors 32 (paper §3.1).
type Buffer struct {
	entries []Entry
	head    int // index of the slot the *next* record will occupy
	filled  int
	frozen  bool
}

// New returns a buffer holding the most recent depth branches.
func New(depth int) *Buffer {
	if depth <= 0 {
		panic("lbr: depth must be positive")
	}
	return &Buffer{entries: make([]Entry, depth)}
}

// Depth returns the buffer capacity.
func (b *Buffer) Depth() int { return len(b.entries) }

// Record appends a branch, overwriting the oldest when full. Recording
// is a no-op while the buffer is frozen (during PMU handler execution,
// as hardware freezes LBRs on PMI).
func (b *Buffer) Record(e Entry) {
	if b.frozen {
		return
	}
	b.entries[b.head] = e
	b.head = (b.head + 1) % len(b.entries)
	if b.filled < len(b.entries) {
		b.filled++
	}
}

// Freeze stops recording; Unfreeze resumes it.
func (b *Buffer) Freeze()   { b.frozen = true }
func (b *Buffer) Unfreeze() { b.frozen = false }

// Snapshot returns the recorded branches most-recent-first, so index 0
// is LBR[0] in the paper's Figure 3(b): the entry the profiler checks
// for the abort bit.
func (b *Buffer) Snapshot() []Entry {
	return b.SnapshotInto(nil)
}

// SnapshotInto is Snapshot writing into dst (grown as needed), so a
// caller that reuses scratch between samples avoids the allocation.
func (b *Buffer) SnapshotInto(dst []Entry) []Entry {
	if cap(dst) < b.filled {
		dst = make([]Entry, b.filled)
	}
	dst = dst[:b.filled]
	for i := 0; i < b.filled; i++ {
		idx := (b.head - 1 - i + len(b.entries)*2) % len(b.entries)
		dst[i] = b.entries[idx]
	}
	return dst
}

// Clear empties the buffer.
func (b *Buffer) Clear() {
	b.head = 0
	b.filled = 0
}
