package lbr

import (
	"fmt"
	"testing"
)

// FuzzHashConsing hardens the profile hash-consing primitives: equal
// branch sequences must hash equal (the consing contract — unequal
// hashes would split identical contexts), hashing must be insensitive
// to buffer wraparound history, and the circular buffer's snapshot
// must always present the most recent entries first.
func FuzzHashConsing(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add([]byte{0x08, 1, 0x08, 2, 0x09, 1}, uint8(2))
	f.Add([]byte{0x00, 0, 0x07, 0xff}, uint8(16))
	f.Add([]byte{0x0c, 3, 0x0c, 3, 0x0c, 3, 0x0c, 3, 0x0c, 3}, uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, depth uint8) {
		d := int(depth%32) + 1
		var entries []Entry
		for i := 0; i+1 < len(data); i += 2 {
			k := data[i]
			entries = append(entries, Entry{
				Kind:  Kind(k % 4),
				From:  IP{Fn: fmt.Sprintf("fn%d", data[i+1]%8)},
				To:    IP{Fn: fmt.Sprintf("fn%d", data[i+1]%8), Site: fmt.Sprintf("s%d", k%3)},
				Abort: k&4 != 0,
				InTSX: k&8 != 0,
			})
		}

		// Consing contract: the same sequence hashes identically, and
		// the hash chain composes (hashing entry-by-entry equals
		// hashing the slice).
		h1 := HashEntries(HashSeed, entries)
		h2 := HashEntries(HashSeed, entries)
		if h1 != h2 {
			t.Fatal("HashEntries is not deterministic")
		}
		ips := make([]IP, len(entries))
		for i, e := range entries {
			ips[i] = e.To
		}
		if HashIPs(HashSeed, ips) != HashIPs(HashSeed, ips) {
			t.Fatal("HashIPs is not deterministic")
		}

		// Buffer semantics: after recording N entries into a depth-d
		// ring, the snapshot holds min(N, d) entries, most recent
		// first, regardless of how many wraps occurred.
		b := New(d)
		for _, e := range entries {
			b.Record(e)
		}
		snap := b.Snapshot()
		want := len(entries)
		if want > d {
			want = d
		}
		if len(snap) != want {
			t.Fatalf("snapshot has %d entries, want %d (depth %d, recorded %d)",
				len(snap), want, d, len(entries))
		}
		for i := range snap {
			if snap[i] != entries[len(entries)-1-i] {
				t.Fatalf("snapshot[%d] = %+v, want most-recent-first order", i, snap[i])
			}
		}
		// Wraparound insensitivity: a fresh buffer fed only the last
		// min(N,d) entries yields a snapshot with the same hash.
		b2 := New(d)
		for _, e := range entries[len(entries)-want:] {
			b2.Record(e)
		}
		if HashEntries(HashSeed, snap) != HashEntries(HashSeed, b2.Snapshot()) {
			t.Fatal("snapshot hash depends on overwritten history")
		}

		// A frozen buffer must drop records and unfreeze must restore
		// them.
		b.Freeze()
		b.Record(Entry{Kind: KindCall, To: IP{Fn: "frozen"}})
		if got := b.Snapshot(); len(got) > 0 && got[0].To.Fn == "frozen" {
			t.Fatal("frozen buffer accepted a record")
		}
		b.Unfreeze()
		b.Record(Entry{Kind: KindCall, To: IP{Fn: "thawed"}})
		if got := b.Snapshot(); len(got) == 0 || got[0].To.Fn != "thawed" {
			t.Fatal("unfrozen buffer rejected a record")
		}
	})
}
