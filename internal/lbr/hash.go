package lbr

// FNV-1a hashing over IPs and LBR entries. The collector hash-conses
// reconstructed calling contexts keyed by (stack, LBR, IP), so the
// hash must fold in every field that can change the derived context;
// collisions are tolerated (callers verify with full equality) but
// determinism is required, so no per-process seeding.

// HashSeed is the FNV-1a offset basis; start every hash chain here.
const HashSeed uint64 = 14695981039346656037

const fnvPrime uint64 = 1099511628211

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	// Terminator so ("ab","c") and ("a","bc") hash differently.
	return hashByte(h, 0xff)
}

// HashIP folds one IP into h.
func HashIP(h uint64, ip IP) uint64 {
	return hashString(hashString(h, ip.Fn), ip.Site)
}

// HashIPs folds a whole call stack into h.
func HashIPs(h uint64, ips []IP) uint64 {
	for _, ip := range ips {
		h = HashIP(h, ip)
	}
	return h
}

// HashEntries folds an LBR snapshot into h, including the branch kind
// and flag bits that steer in-transaction path reconstruction.
func HashEntries(h uint64, es []Entry) uint64 {
	for _, e := range es {
		b := byte(e.Kind)
		if e.Abort {
			b |= 0x10
		}
		if e.InTSX {
			b |= 0x20
		}
		h = hashByte(h, b)
		h = HashIP(h, e.From)
		h = HashIP(h, e.To)
	}
	return h
}
