package lbr

import (
	"fmt"
	"testing"
	"testing/quick"
)

func call(from, to string) Entry {
	return Entry{Kind: KindCall, From: IP{Fn: from}, To: IP{Fn: to}}
}

func TestSnapshotOrderMostRecentFirst(t *testing.T) {
	b := New(4)
	b.Record(call("a", "b"))
	b.Record(call("b", "c"))
	b.Record(call("c", "d"))
	s := b.Snapshot()
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3", len(s))
	}
	if s[0].To.Fn != "d" || s[1].To.Fn != "c" || s[2].To.Fn != "b" {
		t.Fatalf("order wrong: %v", s)
	}
}

func TestOverwriteOldest(t *testing.T) {
	b := New(2)
	b.Record(call("a", "b"))
	b.Record(call("b", "c"))
	b.Record(call("c", "d"))
	s := b.Snapshot()
	if len(s) != 2 {
		t.Fatalf("len = %d, want 2", len(s))
	}
	if s[0].To.Fn != "d" || s[1].To.Fn != "c" {
		t.Fatalf("oldest not overwritten: %v", s)
	}
}

func TestFreezeBlocksRecording(t *testing.T) {
	b := New(4)
	b.Record(call("a", "b"))
	b.Freeze()
	b.Record(call("b", "c"))
	if n := len(b.Snapshot()); n != 1 {
		t.Fatalf("frozen buffer recorded: %d entries", n)
	}
	b.Unfreeze()
	b.Record(call("b", "c"))
	if n := len(b.Snapshot()); n != 2 {
		t.Fatalf("unfrozen buffer did not record: %d entries", n)
	}
}

func TestClear(t *testing.T) {
	b := New(4)
	b.Record(call("a", "b"))
	b.Clear()
	if len(b.Snapshot()) != 0 {
		t.Fatal("snapshot after Clear not empty")
	}
	b.Record(call("x", "y"))
	if s := b.Snapshot(); len(s) != 1 || s[0].To.Fn != "y" {
		t.Fatalf("record after Clear wrong: %v", s)
	}
}

func TestAbortAndInTSXBitsPreserved(t *testing.T) {
	b := New(4)
	b.Record(Entry{Kind: KindAbort, Abort: true, InTSX: true, To: IP{Fn: "fallback"}})
	s := b.Snapshot()
	if !s[0].Abort || !s[0].InTSX || s[0].Kind != KindAbort {
		t.Fatalf("bits lost: %+v", s[0])
	}
}

func TestZeroDepthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestIPString(t *testing.T) {
	if got := (IP{Fn: "f", Site: "12"}).String(); got != "f:12" {
		t.Errorf("IP.String() = %q", got)
	}
	if got := (IP{Fn: "f"}).String(); got != "f" {
		t.Errorf("IP.String() = %q", got)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{KindCall: "call", KindReturn: "return", KindAbort: "abort", KindInterrupt: "interrupt", Kind(99): "unknown"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

// Property: after any sequence of records, Snapshot returns
// min(len(seq), depth) entries, and they are the most recent ones in
// reverse order of recording.
func TestQuickSnapshotWindow(t *testing.T) {
	f := func(depth8 uint8, n8 uint8) bool {
		depth := int(depth8)%16 + 1
		n := int(n8) % 64
		b := New(depth)
		for i := 0; i < n; i++ {
			b.Record(call(fmt.Sprint(i), fmt.Sprint(i+1)))
		}
		s := b.Snapshot()
		want := n
		if want > depth {
			want = depth
		}
		if len(s) != want {
			return false
		}
		for i, e := range s {
			if e.To.Fn != fmt.Sprint(n-i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
