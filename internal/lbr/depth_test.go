package lbr

import "testing"

func TestBufferDepth(t *testing.T) {
	if d := New(16).Depth(); d != 16 {
		t.Fatalf("Depth() = %d, want 16", d)
	}
	// Depth is capacity, not occupancy.
	b := New(4)
	b.Record(Entry{Kind: KindCall})
	if b.Depth() != 4 {
		t.Fatalf("Depth() changed with occupancy: %d", b.Depth())
	}
}
