// Package shadow implements the profiler's contention analysis
// (paper §3.3): every sampled memory access updates a per-cache-line
// and a per-address shadow memory recording who touched what, when,
// and how. A sample whose line was recently touched by a different
// thread — with at least one of the two accesses a store — is
// contention; the per-address shadow then separates true sharing
// (same word) from false sharing (same line, different words).
package shadow

import "txsampler/internal/mem"

// Sharing classifies one sampled access.
type Sharing uint8

const (
	// NoSharing: the access did not contend.
	NoSharing Sharing = iota
	// TrueSharing: another thread recently accessed the same word.
	TrueSharing
	// FalseSharing: another thread recently accessed a different word
	// on the same cache line.
	FalseSharing
)

func (s Sharing) String() string {
	switch s {
	case TrueSharing:
		return "true-sharing"
	case FalseSharing:
		return "false-sharing"
	default:
		return "none"
	}
}

type record struct {
	tid     int
	time    uint64
	isWrite bool
	valid   bool
}

// Memory is the two-level shadow memory. Entries are created lazily,
// one per sampled line and word — memory use is proportional to the
// number of distinct sampled addresses, which is what keeps the
// paper's collector under 5MB per thread.
type Memory struct {
	// Threshold is the contention window P in cycles: two accesses
	// further apart than this are not considered contending
	// (paper §3.3 uses 100ms of wall clock).
	Threshold uint64

	byLine map[mem.Addr]record
	byWord map[mem.Addr]record

	// Counters of classified samples.
	True, False uint64
}

// DefaultThreshold approximates the paper's 100ms window in simulated
// cycles: effectively "recent" for any workload this simulator runs.
const DefaultThreshold = 5_000_000

// New returns an empty shadow memory with the given threshold
// (0 means DefaultThreshold).
func New(threshold uint64) *Memory {
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	return &Memory{
		Threshold: threshold,
		byLine:    make(map[mem.Addr]record),
		byWord:    make(map[mem.Addr]record),
	}
}

// Observe processes one sampled access and classifies it. The three
// contention conditions of §3.3: (1) the line's previous sampled
// access came from a different thread, (2) at least one of the two
// accesses is a store, and (3) they are closer than Threshold cycles.
func (m *Memory) Observe(tid int, addr mem.Addr, isWrite bool, now uint64) Sharing {
	line := addr.Line()
	prev := m.byLine[line]

	result := NoSharing
	if prev.valid && prev.tid != tid && (prev.isWrite || isWrite) && within(now, prev.time, m.Threshold) {
		// Contention. Same word from a different thread → true
		// sharing; otherwise the conflicting access hit a different
		// word on the line → false sharing.
		if w := m.byWord[addr]; w.valid && w.tid != tid {
			result = TrueSharing
			m.True++
		} else {
			result = FalseSharing
			m.False++
		}
	}

	r := record{tid: tid, time: now, isWrite: isWrite, valid: true}
	m.byLine[line] = r
	m.byWord[addr] = r
	return result
}

// Footprint returns the number of shadow entries, a proxy for the
// collector's memory overhead.
func (m *Memory) Footprint() int { return len(m.byLine) + len(m.byWord) }

func within(a, b, window uint64) bool {
	if a < b {
		a, b = b, a
	}
	return a-b < window
}
