package shadow

import (
	"testing"

	"txsampler/internal/mem"
)

// TestLineStraddleBoundary: the last word of one line and the first
// word of the next are 8 bytes apart but must never contend — line
// classification is by line base, not by byte distance.
func TestLineStraddleBoundary(t *testing.T) {
	const base = mem.Addr(0x1000)
	last := base.Offset(mem.WordsPerLine - 1) // 0x1038: final word of the line
	next := base.Offset(mem.WordsPerLine)     // 0x1040: first word of the next line

	m := New(0)
	m.Observe(0, last, true, 10)
	if got := m.Observe(1, next, true, 20); got != NoSharing {
		t.Fatalf("straddling accesses %s/%s classified %v, want none", last, next, got)
	}
	// The same pair within one line IS false sharing: the straddle
	// result above is the line boundary, not a timing accident.
	if got := m.Observe(1, base, true, 30); got != FalseSharing {
		t.Fatalf("same-line sibling %s after %s = %v, want false sharing", base, last, got)
	}
	if m.True != 0 || m.False != 1 {
		t.Fatalf("counters true=%d false=%d, want 0/1", m.True, m.False)
	}
}

// TestAdjacentWordAllOffsets: a remote write to any of the other
// WordsPerLine-1 words of a written line is false sharing, and the
// same word is true sharing — at every offset, not just word 0.
func TestAdjacentWordAllOffsets(t *testing.T) {
	for w := 0; w < mem.WordsPerLine; w++ {
		base := mem.Addr(0x2000 + uint64(w)*0x100) // fresh line per sub-case
		owned := base.Offset(w)
		m := New(0)
		m.Observe(0, owned, true, 10)
		now := uint64(20)
		for o := 0; o < mem.WordsPerLine; o++ {
			m2 := New(0)
			m2.Observe(0, owned, true, 10)
			want := FalseSharing
			if o == w {
				want = TrueSharing
			}
			if got := m2.Observe(1, base.Offset(o), true, 20); got != want {
				t.Errorf("owner word %d, remote word %d: %v, want %v", w, o, got, want)
			}
		}
		// Sequential sweep over the same shadow: every sibling word
		// contends against the previous toucher of the line. Tids
		// alternate in visit order so each access is remote to the
		// last.
		k := 0
		for o := 0; o < mem.WordsPerLine; o++ {
			if o == w {
				continue
			}
			tid := 1 + k%2
			k++
			if got := m.Observe(tid, base.Offset(o), true, now); got != FalseSharing {
				t.Errorf("sweep owner=%d remote word %d (tid %d): %v, want false sharing", w, o, tid, got)
			}
			now += 10
		}
	}
}

// TestContentionWindowBoundary: within() is strict — two accesses
// exactly Threshold cycles apart do not contend; one cycle closer
// they do.
func TestContentionWindowBoundary(t *testing.T) {
	const window = 100
	cases := []struct {
		name string
		gap  uint64
		want Sharing
	}{
		{"one-inside", window - 1, TrueSharing},
		{"exactly-at", window, NoSharing},
		{"one-outside", window + 1, NoSharing},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := New(window)
			m.Observe(0, 0x3000, true, 1000)
			if got := m.Observe(1, 0x3000, true, 1000+c.gap); got != c.want {
				t.Fatalf("gap %d with window %d = %v, want %v", c.gap, window, got, c.want)
			}
			// Same boundary holds with the timestamps reversed (loosely
			// synchronized thread clocks).
			m2 := New(window)
			m2.Observe(0, 0x3000, true, 1000+c.gap)
			if got := m2.Observe(1, 0x3000, true, 1000); got != c.want {
				t.Fatalf("reversed gap %d with window %d = %v, want %v", c.gap, window, got, c.want)
			}
		})
	}
}

// TestStraddleFootprint: a straddling pair costs two line entries and
// two word entries — the shadow never aliases across the boundary.
func TestStraddleFootprint(t *testing.T) {
	m := New(0)
	base := mem.Addr(0x4000)
	m.Observe(0, base.Offset(mem.WordsPerLine-1), true, 10)
	m.Observe(0, base.Offset(mem.WordsPerLine), true, 20)
	if m.Footprint() != 4 {
		t.Fatalf("footprint = %d, want 4 (2 lines + 2 words)", m.Footprint())
	}
}
