package shadow

import (
	"testing"

	"txsampler/internal/mem"
)

func BenchmarkObserve(b *testing.B) {
	m := New(0)
	for i := 0; i < b.N; i++ {
		m.Observe(i%8, mem.Addr(0x1000+uint64(i%512)*8), i%3 == 0, uint64(i)*10)
	}
}
