package shadow

import (
	"testing"
	"testing/quick"

	"txsampler/internal/mem"
)

func TestFirstAccessNeverContends(t *testing.T) {
	m := New(0)
	if got := m.Observe(0, 0x1000, true, 10); got != NoSharing {
		t.Fatalf("first access = %v", got)
	}
}

func TestSameThreadNeverContends(t *testing.T) {
	m := New(0)
	m.Observe(1, 0x1000, true, 10)
	if got := m.Observe(1, 0x1000, true, 20); got != NoSharing {
		t.Fatalf("same-thread reaccess = %v", got)
	}
}

func TestTrueSharingSameWord(t *testing.T) {
	m := New(0)
	m.Observe(0, 0x1000, true, 10)
	if got := m.Observe(1, 0x1000, false, 20); got != TrueSharing {
		t.Fatalf("remote read after write of same word = %v, want true sharing", got)
	}
	if m.True != 1 || m.False != 0 {
		t.Fatalf("counters true=%d false=%d", m.True, m.False)
	}
}

func TestFalseSharingDifferentWords(t *testing.T) {
	m := New(0)
	m.Observe(0, 0x1000, true, 10)
	if got := m.Observe(1, 0x1008, true, 20); got != FalseSharing {
		t.Fatalf("remote write to sibling word = %v, want false sharing", got)
	}
	if m.False != 1 {
		t.Fatalf("false counter = %d", m.False)
	}
}

func TestReadReadNeverContends(t *testing.T) {
	m := New(0)
	m.Observe(0, 0x1000, false, 10)
	if got := m.Observe(1, 0x1000, false, 20); got != NoSharing {
		t.Fatalf("read-read = %v, want none", got)
	}
	if got := m.Observe(2, 0x1008, false, 30); got != NoSharing {
		t.Fatalf("read-read sibling = %v, want none", got)
	}
}

func TestWriteAfterRemoteReadContends(t *testing.T) {
	m := New(0)
	m.Observe(0, 0x2000, false, 10)
	if got := m.Observe(1, 0x2000, true, 20); got != TrueSharing {
		t.Fatalf("write after remote read = %v, want true sharing", got)
	}
}

func TestThresholdWindow(t *testing.T) {
	m := New(100)
	m.Observe(0, 0x3000, true, 10)
	if got := m.Observe(1, 0x3000, true, 200); got != NoSharing {
		t.Fatalf("accesses %d cycles apart with window 100 = %v", 190, got)
	}
	m.Observe(0, 0x3000, true, 300)
	if got := m.Observe(1, 0x3000, true, 350); got != TrueSharing {
		t.Fatalf("accesses 50 apart with window 100 = %v", got)
	}
}

func TestOutOfOrderTimestampsTolerated(t *testing.T) {
	// Thread clocks are only loosely synchronized: an earlier
	// timestamp arriving after a later one must still classify.
	m := New(100)
	m.Observe(0, 0x4000, true, 500)
	if got := m.Observe(1, 0x4000, true, 460); got != TrueSharing {
		t.Fatalf("out-of-order contention = %v", got)
	}
}

func TestDistinctLinesIndependent(t *testing.T) {
	m := New(0)
	m.Observe(0, 0x5000, true, 10)
	if got := m.Observe(1, 0x5040, true, 20); got != NoSharing {
		t.Fatalf("adjacent line = %v, want none", got)
	}
}

func TestTrueSharingTakesPrecedenceOverStaleWord(t *testing.T) {
	// Thread 0 writes word A; thread 1 writes word B (false sharing);
	// thread 0 then writes word B: the word shadow shows thread 1 →
	// true sharing.
	m := New(0)
	m.Observe(0, 0x6000, true, 10)
	m.Observe(1, 0x6008, true, 20)
	if got := m.Observe(0, 0x6008, true, 30); got != TrueSharing {
		t.Fatalf("rewrite of remote word = %v, want true sharing", got)
	}
}

func TestFootprintGrowsPerAddress(t *testing.T) {
	m := New(0)
	for i := 0; i < 10; i++ {
		m.Observe(0, mem.Addr(0x7000+i*8), false, uint64(i))
	}
	// 10 words on 2 lines (64-byte lines): 10 word entries + 2 line
	// entries.
	if m.Footprint() != 12 {
		t.Fatalf("footprint = %d, want 12", m.Footprint())
	}
}

func TestSharingString(t *testing.T) {
	for s, w := range map[Sharing]string{NoSharing: "none", TrueSharing: "true-sharing", FalseSharing: "false-sharing"} {
		if s.String() != w {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

// Property: classification is TrueSharing only if the same word was
// previously touched by a different thread; FalseSharing implies the
// line was contended; counters always sum consistently.
func TestQuickClassificationConsistency(t *testing.T) {
	m := New(1 << 62)
	lastWordTID := map[mem.Addr]int{}
	lastLine := map[mem.Addr]struct {
		tid   int
		write bool
		init  bool
	}{}
	now := uint64(0)
	f := func(tid8, slot uint8, write bool) bool {
		tid := int(tid8) % 4
		addr := mem.Addr(0x8000 + uint64(slot%32)*8)
		now += 10
		got := m.Observe(tid, addr, write, now)
		line := addr.Line()
		prev := lastLine[line]
		contended := prev.init && prev.tid != tid && (prev.write || write)
		var want Sharing
		if contended {
			if wt, ok := lastWordTID[addr]; ok && wt != tid {
				want = TrueSharing
			} else {
				want = FalseSharing
			}
		}
		lastWordTID[addr] = tid
		lastLine[line] = struct {
			tid   int
			write bool
			init  bool
		}{tid, write, true}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
