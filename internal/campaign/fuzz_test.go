package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay hardens the crash-recovery journal parser against
// arbitrary on-disk state: resuming from any byte sequence — torn
// lines, binary garbage, duplicate keys — must never panic, and a
// journal that resumes must still accept appends and survive a second
// resume with the appended entry intact (the crash-safety contract).
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"key":"s1","status":"done","artifact":"a.pb"}` + "\n"))
	f.Add([]byte(`{"key":"s1","status":"started"}` + "\n" + `{"key":"s1","status":"done"}` + "\n"))
	f.Add([]byte(`{"key":"s1","status":"started"}` + "\n" + `{"key":"s2","status":`)) // torn tail
	f.Add([]byte("not json\n"))
	f.Add([]byte(`{"key":""}` + "\n")) // empty key: treated as garbage
	f.Add([]byte("{\"key\":\"s1\"}\n\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path, true)
		if err != nil {
			return // rejected: fine
		}
		replayed := j.Len()
		// The journal must stay appendable after replaying arbitrary
		// state: a fresh entry lands and wins for its key.
		if err := j.Record(Entry{Key: "fuzz-probe", Status: StatusDone}); err != nil {
			t.Fatalf("journal not appendable after replay: %v", err)
		}
		j.Close()
		again, err := OpenJournal(path, true)
		if err != nil {
			t.Fatalf("journal unreadable after clean append: %v", err)
		}
		defer again.Close()
		if e, ok := again.State("fuzz-probe"); !ok || e.Status != StatusDone {
			t.Fatalf("appended entry lost across resume: %+v ok=%v", e, ok)
		}
		// Replay is idempotent: the second resume sees every key the
		// first one did, plus the probe.
		if got := again.Len(); got != replayed+1 && got != replayed {
			// replayed+1 normally; == replayed only if the fuzzer
			// already journaled a "fuzz-probe" key.
			t.Fatalf("resume changed state count: first %d, second %d", replayed, got)
		}
	})
}
