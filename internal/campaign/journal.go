package campaign

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Shard statuses as journaled.
const (
	StatusStarted = "started" // attempt began; if it is the last word, the process died mid-shard
	StatusDone    = "done"    // artifact written and synced
	StatusFailed  = "failed"  // attempt ended in an error (may be retried)
)

// Entry is one journal line. The journal is append-only: a shard's
// current state is its last entry. No wall-clock timestamps — journals
// from identical campaigns stay byte-identical.
type Entry struct {
	Key      string `json:"key"`
	Status   string `json:"status"`
	Artifact string `json:"artifact,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Journal is the append-only JSONL manifest of a campaign, built on
// AppendLog: appends are fsynced line-by-line, so the journal never
// claims more than the disk holds; a crash can at worst tear the
// final line, which OpenJournal truncates away on resume.
type Journal struct {
	mu    sync.Mutex
	log   *AppendLog
	state map[string]Entry
}

// OpenJournal opens (resume=true) or recreates (resume=false) the
// journal at path. On resume, existing entries are replayed into the
// in-memory state — last entry per key wins — and a torn final line
// (crash mid-append) is discarded and truncated so later appends start
// on a clean boundary.
func OpenJournal(path string, resume bool) (*Journal, error) {
	j := &Journal{state: make(map[string]Entry)}
	log, err := OpenAppendLog(path, resume, func(line []byte) error {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		if e.Key == "" {
			return fmt.Errorf("campaign: journal line without key")
		}
		j.state[e.Key] = e
		return nil
	})
	if err != nil {
		return nil, err
	}
	j.log = log
	return j, nil
}

// State returns the last journaled entry for key.
func (j *Journal) State(key string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.state[key]
	return e, ok
}

// Len returns the number of distinct journaled shards.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.state)
}

// Record appends one entry and fsyncs it. Append errors are returned
// but the in-memory state is updated regardless, so a campaign on a
// full disk still runs to completion and reports correctly.
func (j *Journal) Record(e Entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state[e.Key] = e
	_, err = j.log.Append(line)
	return err
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.log.Close()
}
