package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Shard statuses as journaled.
const (
	StatusStarted = "started" // attempt began; if it is the last word, the process died mid-shard
	StatusDone    = "done"    // artifact written and synced
	StatusFailed  = "failed"  // attempt ended in an error (may be retried)
)

// Entry is one journal line. The journal is append-only: a shard's
// current state is its last entry. No wall-clock timestamps — journals
// from identical campaigns stay byte-identical.
type Entry struct {
	Key      string `json:"key"`
	Status   string `json:"status"`
	Artifact string `json:"artifact,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Journal is the append-only JSONL manifest of a campaign. Appends are
// fsynced line-by-line, so the journal never claims more than the disk
// holds; a crash can at worst tear the final line, which OpenJournal
// truncates away on resume.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	state map[string]Entry
}

// OpenJournal opens (resume=true) or recreates (resume=false) the
// journal at path. On resume, existing entries are replayed into the
// in-memory state — last entry per key wins — and a torn final line
// (crash mid-append) is discarded and truncated so later appends start
// on a clean boundary.
func OpenJournal(path string, resume bool) (*Journal, error) {
	mode := os.O_RDWR | os.O_CREATE
	if !resume {
		mode |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, state: make(map[string]Entry)}
	if resume {
		if err := j.replay(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// replay loads the journal, tolerating exactly one torn trailing line.
func (j *Journal) replay() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return err
	}
	valid := 0 // bytes up to the end of the last intact line
	for len(data) > valid {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := data[valid : valid+nl]
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			break // torn or garbage tail: stop replay here
		}
		j.state[e.Key] = e
		valid += nl + 1
	}
	if valid < len(data) {
		// Drop the torn tail so the next append starts a fresh line.
		if err := j.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("campaign: truncating torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(int64(valid), io.SeekStart); err != nil {
		return err
	}
	return nil
}

// State returns the last journaled entry for key.
func (j *Journal) State(key string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.state[key]
	return e, ok
}

// Len returns the number of distinct journaled shards.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.state)
}

// Record appends one entry and fsyncs it. Append errors are returned
// but the in-memory state is updated regardless, so a campaign on a
// full disk still runs to completion and reports correctly.
func (j *Journal) Record(e Entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state[e.Key] = e
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
