// Package campaign makes long experiment sweeps crash-safe and
// resumable. A campaign is an ordered set of shards — one fully
// deterministic machine run each, identified by
// workload/threads/seed/config-hash — whose progress is journaled to
// an append-only JSONL manifest next to the artifacts. After a crash,
// a kill, or a torn write, re-running the campaign with resume replays
// the journal, skips shards whose artifacts verify, and re-runs the
// failed or interrupted ones; because every shard is a pure function
// of its key, the resumed campaign's artifacts are byte-identical to
// an uninterrupted run's.
//
// The runner gives each shard a deadline, bounded retries with
// exponential backoff, and panic isolation: a shard that panics is
// recorded as failed and surfaced in the final report instead of
// aborting the sweep.
package campaign

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"txsampler/internal/retry"
	"txsampler/internal/telemetry"
)

// Shard is one unit of a campaign: a deterministic run producing one
// artifact.
type Shard struct {
	Workload string
	Threads  int
	Seed     int64
	// ConfigHash fingerprints every remaining run-affecting option
	// (fault plan, periods, format version, ...); see Hash. Options
	// the results are invariant to — worker count, scheduler quantum —
	// must stay out, so their flags do not invalidate a journal.
	ConfigHash string
	// Artifact is the output path recorded in the journal, relative to
	// the campaign directory so journals are location-independent.
	Artifact string
	// Run produces the artifact. It must honor ctx: campaign
	// cancellation and the per-shard deadline arrive through it.
	Run func(ctx context.Context) error
}

// Key is the shard's journal identity.
func (s Shard) Key() string {
	return fmt.Sprintf("%s/t%d/s%d/%s", s.Workload, s.Threads, s.Seed, s.ConfigHash)
}

// Hash fingerprints config ingredients into a short stable hex string
// for Shard.ConfigHash.
func Hash(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Options configures a campaign run.
type Options struct {
	// Workers shards the campaign across goroutines (artifacts are
	// deterministic for any worker count). <=1 runs sequentially.
	Workers int
	// Timeout is the per-shard deadline (0 = none). A shard that
	// exceeds it is canceled at its next quantum boundary and counts
	// as a failed attempt.
	Timeout time.Duration
	// Retries is the number of re-attempts after a shard's first
	// failure (0 = fail immediately). Attempts back off exponentially
	// from Backoff (default 100ms) via the shared retry policy;
	// campaign backoff is jitter-free so identical campaigns remain
	// deterministic.
	Retries int
	Backoff time.Duration
	// Context cancels the whole campaign (nil = Background). Already
	// journaled progress survives for a later resume.
	Context context.Context
	// Verify checks an artifact before a resumed campaign skips its
	// shard (nil = trust the journal). A failed verification re-runs
	// the shard.
	Verify func(artifact string) error
	// Log receives one line per shard decision (skip, retry, failure);
	// nil silences it.
	Log io.Writer
	// Metrics, when non-nil, receives campaign counters: shards run,
	// skipped, re-run after failure, failed, and retries.
	Metrics *telemetry.Registry

	// CrashAfterShards is a test and CI hook: after this many shards
	// complete, the process exits immediately with code 137 (as a kill
	// -9 mid-campaign would), leaving the journal and artifacts for a
	// resume to pick up. 0 disables it.
	CrashAfterShards int
}

// Failure is one shard the campaign gave up on.
type Failure struct {
	Key string
	Err string
}

// Report summarizes a campaign run.
type Report struct {
	Ran      int // shards executed to completion this run
	Skipped  int // shards skipped because the journal + artifact verified
	Rerun    int // executed shards that a previous run left failed or interrupted
	Failed   int // shards that exhausted their attempts
	Retries  int // failed attempts that were retried
	Canceled bool
	Failures []Failure
}

func (r *Report) String() string {
	s := fmt.Sprintf("campaign: %d run, %d skipped (journal), %d recovered, %d failed, %d retries",
		r.Ran, r.Skipped, r.Rerun, r.Failed, r.Retries)
	if r.Canceled {
		s += " [canceled]"
	}
	return s
}

// Run executes the campaign against the journal. It returns the
// report and, when the campaign context was canceled, its error; shard
// failures do NOT abort the run — they are isolated, journaled, and
// listed in Report.Failures.
func Run(shards []Shard, j *Journal, o Options) (*Report, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Backoff <= 0 {
		o.Backoff = 100 * time.Millisecond
	}
	backoff := retry.Policy{BaseDelay: o.Backoff}
	var (
		mu        sync.Mutex
		rep       Report
		completed atomic.Int64
	)
	logf := func(format string, args ...any) {
		if o.Log != nil {
			mu.Lock()
			fmt.Fprintf(o.Log, format+"\n", args...)
			mu.Unlock()
		}
	}
	count := func(c *int, metric string) {
		mu.Lock()
		*c++
		mu.Unlock()
		o.Metrics.Counter("campaign." + metric).Add(1)
	}

	runShard := func(s Shard) {
		key := s.Key()
		prev, seen := j.State(key)
		if seen && prev.Status == StatusDone {
			verr := error(nil)
			if o.Verify != nil {
				verr = o.Verify(s.Artifact)
			}
			if verr == nil {
				count(&rep.Skipped, "shards_skipped")
				logf("campaign: %s: skipped (done, artifact verified)", key)
				return
			}
			logf("campaign: %s: journaled done but artifact bad (%v); re-running", key, verr)
		}
		if seen {
			count(&rep.Rerun, "shards_rerun")
		}
		for attempt := 1; ; attempt++ {
			if ctx.Err() != nil {
				mu.Lock()
				rep.Canceled = true
				mu.Unlock()
				return
			}
			j.Record(Entry{Key: key, Status: StatusStarted, Artifact: s.Artifact, Attempt: attempt})
			err := attemptShard(ctx, o.Timeout, s)
			if err == nil {
				j.Record(Entry{Key: key, Status: StatusDone, Artifact: s.Artifact, Attempt: attempt})
				count(&rep.Ran, "shards_run")
				if o.CrashAfterShards > 0 && int(completed.Add(1)) == o.CrashAfterShards {
					logf("campaign: injected crash after %d shards", o.CrashAfterShards)
					os.Exit(137)
				}
				return
			}
			j.Record(Entry{Key: key, Status: StatusFailed, Artifact: s.Artifact, Attempt: attempt, Err: err.Error()})
			if ctx.Err() != nil {
				// Campaign-level cancellation, not a shard fault: stop
				// without burning retries; a resume re-runs this shard.
				mu.Lock()
				rep.Canceled = true
				mu.Unlock()
				return
			}
			if attempt > o.Retries {
				count(&rep.Failed, "shards_failed")
				mu.Lock()
				rep.Failures = append(rep.Failures, Failure{Key: key, Err: err.Error()})
				mu.Unlock()
				logf("campaign: %s: FAILED after %d attempt(s): %v", key, attempt, err)
				return
			}
			count(&rep.Retries, "retries")
			delay := backoff.Delay(attempt)
			logf("campaign: %s: attempt %d failed (%v); retrying in %v", key, attempt, err, delay)
			_ = retry.Sleep(ctx, delay) // a cancel here is caught at the top of the loop
		}
	}

	workers := o.Workers
	if workers > len(shards) {
		workers = len(shards)
	}
	if workers <= 1 {
		for _, s := range shards {
			runShard(s)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(shards) {
						return
					}
					runShard(shards[i])
				}
			}()
		}
		wg.Wait()
	}
	if rep.Canceled {
		return &rep, fmt.Errorf("campaign: %w", context.Cause(ctx))
	}
	return &rep, nil
}

// attemptShard runs one attempt under the per-shard deadline with
// panic isolation.
func attemptShard(ctx context.Context, timeout time.Duration, s Shard) (err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("shard panicked: %v", r)
		}
	}()
	return s.Run(ctx)
}
