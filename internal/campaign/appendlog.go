package campaign

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// AppendLog is the reusable core of the campaign journal: an
// append-only line-oriented file whose appends are fsynced one line
// at a time, so the log never claims more than the disk holds. A
// crash can at worst tear the final line; OpenAppendLog detects the
// torn tail during replay and truncates it away, so later appends
// start on a clean boundary. The campaign journal and the fleet
// ingest shard log are both built on it.
type AppendLog struct {
	f *os.File
	// size is the current byte length of the intact log; Append
	// returns each record's starting offset against it.
	size int64
}

// OpenAppendLog opens (resume=true) or recreates (resume=false) the
// log at path. On resume every intact line is passed to replay in
// order; a line that replay rejects (or that lacks its newline) is
// treated as the torn tail — it and everything after it are
// truncated. replay may be nil to skip per-line processing.
func OpenAppendLog(path string, resume bool, replay func(line []byte) error) (*AppendLog, error) {
	mode := os.O_RDWR | os.O_CREATE
	if !resume {
		mode |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, mode, 0o644)
	if err != nil {
		return nil, err
	}
	l := &AppendLog{f: f}
	if resume {
		if err := l.replay(replay); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

// replay loads the log, tolerating exactly one torn trailing line.
func (l *AppendLog) replay(handle func(line []byte) error) error {
	data, err := io.ReadAll(l.f)
	if err != nil {
		return err
	}
	valid := 0 // bytes up to the end of the last intact line
	for len(data) > valid {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		line := data[valid : valid+nl]
		if handle != nil {
			if err := handle(line); err != nil {
				break // torn or garbage tail: stop replay here
			}
		}
		valid += nl + 1
	}
	if valid < len(data) {
		// Drop the torn tail so the next append starts a fresh line.
		if err := l.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("campaign: truncating torn log tail: %w", err)
		}
	}
	if _, err := l.f.Seek(int64(valid), io.SeekStart); err != nil {
		return err
	}
	l.size = int64(valid)
	return nil
}

// Append writes one line (a trailing newline is added) and fsyncs it.
// It returns the byte offset the record starts at, so callers can
// later re-read it (the fleet daemon's journal-now-merge-later
// catch-up does). The offset is valid even when the write fails
// partway — callers that keep going treat the log as advisory.
func (l *AppendLog) Append(line []byte) (offset int64, err error) {
	offset = l.size
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	n, err := l.f.Write(buf)
	l.size += int64(n)
	if err != nil {
		return offset, err
	}
	return offset, l.f.Sync()
}

// Size returns the current intact byte length of the log.
func (l *AppendLog) Size() int64 { return l.size }

// Path returns the log's file path.
func (l *AppendLog) Path() string { return l.f.Name() }

// Close closes the log file.
func (l *AppendLog) Close() error { return l.f.Close() }
