package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"txsampler/internal/telemetry"
)

func TestJournalReplayLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Entry{Key: "a", Status: StatusStarted, Attempt: 1})
	j.Record(Entry{Key: "a", Status: StatusFailed, Attempt: 1, Err: "boom"})
	j.Record(Entry{Key: "a", Status: StatusStarted, Attempt: 2})
	j.Record(Entry{Key: "a", Status: StatusDone, Artifact: "a.json", Attempt: 2})
	j.Record(Entry{Key: "b", Status: StatusStarted, Attempt: 1})
	j.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("replayed %d keys", j2.Len())
	}
	if e, ok := j2.State("a"); !ok || e.Status != StatusDone || e.Attempt != 2 || e.Artifact != "a.json" {
		t.Fatalf("a = %+v", e)
	}
	if e, ok := j2.State("b"); !ok || e.Status != StatusStarted {
		t.Fatalf("b = %+v", e)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	j, _ := OpenJournal(path, false)
	j.Record(Entry{Key: "a", Status: StatusDone})
	j.Close()
	// Simulate a crash mid-append: a torn, newline-less JSON prefix.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString(`{"key":"b","sta`)
	f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 1 {
		t.Fatalf("torn tail replayed: %d keys", j2.Len())
	}
	// The torn bytes are gone; a new append lands on a clean line.
	j2.Record(Entry{Key: "c", Status: StatusDone})
	j2.Close()
	j3, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Fatalf("post-truncate journal has %d keys", j3.Len())
	}
	if _, ok := j3.State("c"); !ok {
		t.Fatal("appended entry lost")
	}
}

// fresh returns a new journal in a temp dir.
func fresh(t *testing.T, resume bool) (*Journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "c.jsonl")
	j, err := OpenJournal(path, resume)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, path
}

func shard(name string, run func(ctx context.Context) error) Shard {
	return Shard{Workload: name, Threads: 2, Seed: 1, ConfigHash: "h", Artifact: name + ".json", Run: run}
}

func TestRunSkipsVerifiedDoneShards(t *testing.T) {
	j, path := fresh(t, false)
	ran := 0
	ok := func(ctx context.Context) error { ran++; return nil }
	shards := []Shard{shard("w1", ok), shard("w2", ok)}
	rep, err := Run(shards, j, Options{})
	if err != nil || rep.Ran != 2 || rep.Skipped != 0 {
		t.Fatalf("first run: %+v err=%v", rep, err)
	}
	j.Close()

	// Resume: everything journaled done and verification passes.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	verified := []string{}
	rep, err = Run(shards, j2, Options{Verify: func(a string) error { verified = append(verified, a); return nil }})
	if err != nil || rep.Ran != 0 || rep.Skipped != 2 || ran != 2 {
		t.Fatalf("resume: %+v err=%v ran=%d", rep, err, ran)
	}
	if len(verified) != 2 {
		t.Fatalf("verified %v", verified)
	}
}

func TestRunRerunsFailedAndBadArtifacts(t *testing.T) {
	j, path := fresh(t, false)
	j.Record(Entry{Key: shard("bad-artifact", nil).Key(), Status: StatusDone, Artifact: "bad-artifact.json"})
	j.Record(Entry{Key: shard("failed", nil).Key(), Status: StatusFailed, Err: "old failure"})
	j.Record(Entry{Key: shard("interrupted", nil).Key(), Status: StatusStarted})
	j.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ran := map[string]int{}
	mk := func(name string) Shard {
		return shard(name, func(ctx context.Context) error { ran[name]++; return nil })
	}
	var log strings.Builder
	rep, err := Run([]Shard{mk("bad-artifact"), mk("failed"), mk("interrupted")}, j2, Options{
		Verify: func(a string) error { return errors.New("torn") },
		Log:    &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All three are re-run: done-but-bad-artifact, failed, and
	// started-but-never-finished (killed mid-shard).
	if rep.Ran != 3 || rep.Rerun != 3 || rep.Skipped != 0 {
		t.Fatalf("report %+v\n%s", rep, log.String())
	}
	for _, n := range []string{"bad-artifact", "failed", "interrupted"} {
		if ran[n] != 1 {
			t.Fatalf("ran=%v", ran)
		}
	}
}

func TestRunRetriesWithBackoffThenFails(t *testing.T) {
	j, _ := fresh(t, false)
	attempts := 0
	flaky := shard("flaky", func(ctx context.Context) error {
		attempts++
		if attempts < 3 {
			return fmt.Errorf("transient %d", attempts)
		}
		return nil
	})
	hopeless := shard("hopeless", func(ctx context.Context) error { return errors.New("always") })
	reg := telemetry.NewRegistry()
	rep, err := Run([]Shard{flaky, hopeless}, j, Options{Retries: 2, Backoff: time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 1 || rep.Failed != 1 || rep.Retries != 4 {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Failures) != 1 || !strings.Contains(rep.Failures[0].Err, "always") {
		t.Fatalf("failures %+v", rep.Failures)
	}
	if got := reg.Counter("campaign.retries").Value(); got != 4 {
		t.Fatalf("retry counter = %d", got)
	}
	if got := reg.Counter("campaign.shards_failed").Value(); got != 1 {
		t.Fatalf("failed counter = %d", got)
	}
}

// TestRunPanicIsolation: a panicking shard is recorded as failed and
// the campaign continues to the remaining shards.
func TestRunPanicIsolation(t *testing.T) {
	j, _ := fresh(t, false)
	ran := false
	rep, err := Run([]Shard{
		shard("boom", func(ctx context.Context) error { panic("kaboom") }),
		shard("fine", func(ctx context.Context) error { ran = true; return nil }),
	}, j, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("panic aborted the campaign")
	}
	if rep.Ran != 1 || rep.Failed != 1 || !strings.Contains(rep.Failures[0].Err, "kaboom") {
		t.Fatalf("report %+v", rep)
	}
	if e, _ := j.State(shard("boom", nil).Key()); e.Status != StatusFailed {
		t.Fatalf("journal for panicked shard: %+v", e)
	}
}

func TestRunShardDeadline(t *testing.T) {
	j, _ := fresh(t, false)
	slow := shard("slow", func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	start := time.Now()
	rep, err := Run([]Shard{slow}, j, Options{Timeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("report %+v", rep)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline did not fire")
	}
}

func TestRunCampaignCancellation(t *testing.T) {
	j, _ := fresh(t, false)
	ctx, cancel := context.WithCancel(context.Background())
	var order []string
	mk := func(name string, f func()) Shard {
		return shard(name, func(c context.Context) error {
			order = append(order, name)
			if f != nil {
				f()
			}
			return c.Err()
		})
	}
	rep, err := Run([]Shard{mk("first", cancel), mk("second", nil), mk("third", nil)}, j, Options{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if !rep.Canceled {
		t.Fatal("report not marked canceled")
	}
	// The first shard observed the cancel; the rest never started.
	if len(order) != 1 {
		t.Fatalf("order = %v", order)
	}
	// Retries are not burned on cancellation.
	if rep.Retries != 0 {
		t.Fatalf("retries = %d", rep.Retries)
	}
}

func TestRunParallelWorkers(t *testing.T) {
	j, _ := fresh(t, false)
	var shards []Shard
	for i := 0; i < 8; i++ {
		shards = append(shards, Shard{
			Workload: fmt.Sprintf("w%d", i), Threads: 1, Seed: int64(i), ConfigHash: "h",
			Artifact: fmt.Sprintf("w%d.json", i),
			Run:      func(ctx context.Context) error { return nil },
		})
	}
	rep, err := Run(shards, j, Options{Workers: 4})
	if err != nil || rep.Ran != 8 {
		t.Fatalf("report %+v err=%v", rep, err)
	}
	for _, s := range shards {
		if e, _ := j.State(s.Key()); e.Status != StatusDone {
			t.Fatalf("%s: %+v", s.Key(), e)
		}
	}
}

func TestHashStable(t *testing.T) {
	if Hash("a", "b") != Hash("a", "b") {
		t.Fatal("hash not stable")
	}
	if Hash("a", "b") == Hash("ab") || Hash("a", "b") == Hash("b", "a") {
		t.Fatal("hash ignores part boundaries or order")
	}
}
