package htmbench

import (
	"txsampler/internal/analyzer"
	"txsampler/internal/machine"
)

// PARSEC-like kernels, including the paper's §8.1 Dedup case study:
// a pipelined deduplicator whose ChunkProcess stage searches a chained
// hash table inside its transaction. With the original's poor hash
// function only ~2% of buckets are occupied, chains grow long, the
// transactional footprint explodes (capacity aborts, Figure 9), and a
// master-thread write_file issues system calls inside the critical
// section (synchronous aborts). The optimized variant refines the
// hash and hoists the system calls out (Table 2, 1.20x).

const (
	dedupBuckets    = 512
	dedupKeySpace   = 1000
	dedupChunks     = 130 // chunks per pipeline thread
	dedupBadBuckets = 16  // the bad hash reaches ~3% of the buckets
)

func badHash(k uint64) int  { return int(k % dedupBadBuckets) }
func goodHash(k uint64) int { return int((k * 2654435761) % dedupBuckets) }

type dedupFlavor struct {
	name, desc  string
	hash        func(uint64) int
	syscallInCS bool
	netSyscalls bool // netdedup: every chunk talks to the network
}

func registerDedupFlavor(f dedupFlavor, suite string, expected analyzer.Category) {
	Register(&Workload{
		Name: f.name, Suite: suite, Desc: f.desc, Expected: expected,
		Build: func(ctx *Ctx) *Instance {
			cache := newHashTable(ctx.M, ctx.Threads, dedupBuckets, dedupChunks+8, false, f.hash)
			anchors := newPadded(ctx.M, ctx.Threads)
			written := newPadded(ctx.M, 1)

			chunkProcess := func(t *machine.Thread) {
				for i := 0; i < dedupChunks; i++ {
					net := f.netSyscalls && i%8 == 0
					t.Func("ChunkProcess", func() {
						key := uint64(t.Rand().Intn(dedupKeySpace))
						t.Compute(900) // chunk fingerprint
						if net && !f.syscallInCS {
							t.Syscall("recv") // network input outside the CS
						}
						t.Func("sub_ChunkProcess", func() {
							ctx.Lock.Run(t, func() {
								if net && f.syscallInCS {
									t.At("net_recv")
									t.Syscall("recv")
								}
								if _, found := cache.search(t, key); !found {
									cache.insert(t, key, key)
								}
							})
						})
					})
				}
			}
			findAllAnchors := func(t *machine.Thread) {
				for i := 0; i < dedupChunks; i++ {
					t.Func("FindAllAnchors", func() {
						t.Compute(1000)
						ctx.Lock.Run(t, func() {
							t.At("anchor_update")
							t.Add(anchors.at(t.ID), 1)
						})
					})
				}
			}
			compress := func(master bool) func(t *machine.Thread) {
				return func(t *machine.Thread) {
					for i := 0; i < dedupChunks; i++ {
						t.Func("Compress", func() {
							t.Compute(1000)
							if master {
								t.Func("write_file", func() {
									if f.syscallInCS {
										ctx.Lock.Run(t, func() {
											t.At("fwrite")
											t.Syscall("write")
											t.Add(written.at(0), 1)
										})
									} else {
										// Optimized: system call outside
										// the critical section.
										t.Syscall("write")
										ctx.Lock.Run(t, func() {
											t.At("offset_update")
											t.Add(written.at(0), 1)
										})
									}
								})
							}
						})
					}
				}
			}

			bodies := make([]func(*machine.Thread), ctx.Threads)
			for i := range bodies {
				switch i % 3 {
				case 0:
					bodies[i] = chunkProcess
				case 1:
					bodies[i] = findAllAnchors
				default:
					bodies[i] = compress(i == 2) // exactly one master writer
				}
			}
			return &Instance{Bodies: bodies}
		},
	})
}

func init() {
	registerDedupFlavor(dedupFlavor{
		name: "parsec/dedup",
		desc: "pipelined deduplication; poor hash → long chains → capacity aborts; write_file syscalls in the CS",
		hash: badHash, syscallInCS: true,
	}, "parsec", analyzer.TypeII)

	registerDedupFlavor(dedupFlavor{
		name: "parsec/dedup-opt",
		desc: "dedup with a refined hash (82% bucket utilization) and system calls hoisted out (Table 2)",
		hash: goodHash, syscallInCS: false,
	}, "opt", 0)

	registerDedupFlavor(dedupFlavor{
		name: "parsec/netdedup",
		desc: "networked dedup: per-chunk recv() inside the critical section — heavy synchronous aborts",
		hash: goodHash, syscallInCS: true, netSyscalls: true,
	}, "parsec", analyzer.TypeII)

	registerDedupFlavor(dedupFlavor{
		name: "parsec/netdedup-opt",
		desc: "netdedup with network calls moved out of transactions (Table 2, remove system calls)",
		hash: goodHash, syscallInCS: false, netSyscalls: true,
	}, "opt", 0)

	Register(&Workload{
		Name: "parsec/netstreamcluster", Suite: "parsec",
		Desc:     "streaming clustering: per-point work plus center updates spread over many lines",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			const centers = 256
			weights := newPadded(ctx.M, centers)
			const points = 140
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < points; i++ {
						t.Func("assign", func() {
							t.Compute(420)
							c := t.Rand().Intn(centers)
							ctx.Lock.Run(t, func() {
								t.At("weight_update")
								t.Add(weights.at(c), 1)
								t.Compute(25)
							})
						})
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "parsec/netferret", Suite: "parsec",
		Desc:     "similarity search: ranking work with short shared result-list updates",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			const slots = 128
			ranks := newPadded(ctx.M, slots)
			const queries = 130
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < queries; i++ {
						t.Func("rank_query", func() {
							t.Compute(430)
							s := t.Rand().Intn(slots)
							ctx.Lock.Run(t, func() {
								t.At("rank_insert")
								t.Load(ranks.at(s))
								t.Add(ranks.at(s), 1)
								t.Compute(15)
							})
						})
					}
				}),
			}
		},
	})
}
