package htmbench

import (
	"txsampler/internal/analyzer"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// Synchrobench kernels. The sorted linked list is Table 2's best case:
// whole-traversal transactions build read sets proportional to the
// list length, so they abort constantly (high rate, low per-abort
// penalty); the optimized variant walks the list non-transactionally
// and uses a minimal validate-and-link transaction — the paper's
// "limit transaction size with auxiliary locks" (3.78x).

const (
	listPreload = 40
	listKeyStep = 16
	listOps     = 50 // per thread
)

// preloadList builds the initial sorted list directly in memory (the
// untimed setup phase of the original benchmark).
func preloadList(m *machine.Machine, l *sortedList) {
	prevCell := l.head
	for i := 0; i < listPreload; i++ {
		n := l.pool.allocHost(m, 0)
		m.Mem.Store(fieldAddr(n, fKey), uint64((i+1)*listKeyStep))
		m.Mem.Store(prevCell, mem.Word(n))
		prevCell = fieldAddr(n, fNext)
	}
}

func init() {
	Register(&Workload{
		Name: "synchro/linkedlist", Suite: "synchrobench",
		Desc:     "sorted linked list with whole-traversal transactions: huge read sets, constant aborts",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			l := newSortedList(ctx.M, ctx.Threads, listPreload+listOps+4)
			preloadList(ctx.M, l)
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < listOps; i++ {
						key := uint64(1 + t.Rand().Intn(listPreload*listKeyStep))
						if t.Rand().Intn(100) < 20 {
							ctx.Lock.Run(t, func() { l.insert(t, key) })
						} else {
							ctx.Lock.Run(t, func() { l.contains(t, key) })
						}
						t.Compute(500)
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "synchro/linkedlist-opt", Suite: "opt",
		Desc: "linked list with non-transactional traversal and a tiny validate-and-link transaction (Table 2, 3.78x)",
		Build: func(ctx *Ctx) *Instance {
			l := newSortedList(ctx.M, ctx.Threads, listPreload+listOps+4)
			preloadList(ctx.M, l)
			// locate walks without a transaction and returns the
			// pointer cell preceding key and the node it points at.
			locate := func(t *machine.Thread, key uint64) (prev, cur mem.Addr) {
				t.Func("list_locate", func() {
					prev = l.head
					cur = mem.Addr(t.Load(prev))
					for cur != 0 {
						k := t.Load(fieldAddr(cur, fKey))
						if k >= key {
							return
						}
						prev = fieldAddr(cur, fNext)
						cur = mem.Addr(t.Load(prev))
					}
				})
				return prev, cur
			}
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < listOps; i++ {
						key := uint64(1 + t.Rand().Intn(listPreload*listKeyStep))
						if t.Rand().Intn(100) < 20 {
							for {
								prev, cur := locate(t, key)
								linked := false
								ctx.Lock.Run(t, func() {
									t.At("validate_link")
									if mem.Addr(t.Load(prev)) != cur {
										return // a neighbour changed: retry
									}
									if cur != 0 && t.Load(fieldAddr(cur, fKey)) == key {
										linked = true // already present
										return
									}
									n := l.pool.alloc(t)
									t.Store(fieldAddr(n, fKey), key)
									t.Store(fieldAddr(n, fNext), mem.Word(cur))
									t.Store(prev, mem.Word(n))
									linked = true
								})
								if linked {
									break
								}
							}
						} else {
							locate(t, key)
						}
						t.Compute(500)
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "synchro/skiplist", Suite: "synchrobench",
		Desc:     "logarithmic search structure with frequent updates near the root: aborts outpace commits",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			tree := newBST(ctx.M, ctx.Threads, 300)
			// Preload a modest tree directly in memory.
			preKeys := []uint64{128, 64, 192, 32, 96, 160, 224, 16, 80, 144, 208}
			build := func(m *machine.Machine) {
				for _, k := range preKeys {
					// Host-side insertion walking stored pointers.
					slot := tree.root
					for {
						cur := mem.Addr(m.Mem.Load(slot))
						if cur == 0 {
							n := tree.pool.allocHost(m, 0)
							m.Mem.Store(fieldAddr(n, fKey), k)
							m.Mem.Store(slot, mem.Word(n))
							break
						}
						ck := m.Mem.Load(fieldAddr(cur, fKey))
						if k < ck {
							slot = fieldAddr(cur, fLeft)
						} else {
							slot = fieldAddr(cur, fRight)
						}
					}
				}
			}
			build(ctx.M)
			const ops = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < ops; i++ {
						key := uint64(t.Rand().Intn(32))
						if t.Rand().Intn(100) < 45 {
							ctx.Lock.Run(t, func() { tree.insert(t, key, key) })
						} else {
							ctx.Lock.Run(t, func() { tree.lookup(t, key) })
						}
						t.Compute(400)
					}
				}),
			}
		},
	})
}
