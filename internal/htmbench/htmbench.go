// Package htmbench is the HTMBench suite: 30+ simulated HTM programs
// modelled on the benchmarks the paper evaluates (STAMP, PARSEC,
// SPLASH2, Parboil, NPB, Synchrobench, CLOMP-TM, and several
// applications), plus the optimized variants of Table 2. Each workload
// is a kernel that reproduces its original's documented
// critical-section character — transaction size, footprint, contention
// pattern, and unfriendly instructions — on the simulated machine, so
// the profiler observes the same pathologies the paper reports.
package htmbench

import (
	"fmt"
	"sort"

	"txsampler/internal/analyzer"
	"txsampler/internal/machine"
	"txsampler/internal/rtm"
)

// Ctx is the environment a workload builds its instance in.
type Ctx struct {
	M       *machine.Machine
	Threads int
	// Lock is the default elided global lock guarding the workload's
	// critical sections; workloads may allocate additional locks.
	Lock *rtm.Lock
}

// Instance is a built, runnable workload.
type Instance struct {
	// Bodies holds one entry per thread.
	Bodies []func(*machine.Thread)
	// Check validates the computation's result after the run; nil
	// means nothing to validate.
	Check func(m *machine.Machine) error
	// Lock is the workload's elided global lock (the ctx.Lock the
	// Build function received), exposed so instrumentation-based
	// tools can attach an event sink to it.
	Lock *rtm.Lock
}

// Workload is one registered HTMBench program.
type Workload struct {
	Name  string
	Suite string
	Desc  string
	// DefaultThreads used when the caller passes 0. Most programs use
	// the paper's 14.
	DefaultThreads int
	// Expected is the paper's Figure 8 category for the program
	// (0 when the paper does not place it).
	Expected analyzer.Category
	// Build constructs the instance.
	Build func(ctx *Ctx) *Instance
}

var registry = map[string]*Workload{}

// Register adds a workload; duplicate names panic (registration is an
// init-time programming error).
func Register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("htmbench: duplicate workload %q", w.Name))
	}
	if w.DefaultThreads == 0 {
		w.DefaultThreads = 14
	}
	registry[w.Name] = w
}

// Get returns the named workload.
func Get(name string) (*Workload, error) {
	w := registry[name]
	if w == nil {
		return nil, fmt.Errorf("htmbench: unknown workload %q", name)
	}
	return w, nil
}

// Names returns all workload names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns all workloads sorted by name.
func All() []*Workload {
	names := Names()
	out := make([]*Workload, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// BySuite returns the workloads of one suite, sorted by name.
func BySuite(suite string) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	return out
}

// BuildInstance prepares a machine-bound instance of w. A non-nil
// policy overrides the default retry policy of the workload's global
// lock (used by the ablation benchmarks).
func (w *Workload) BuildInstance(m *machine.Machine, policy *rtm.Policy) *Instance {
	ctx := &Ctx{M: m, Threads: m.Config().Threads, Lock: rtm.NewLock(m)}
	if policy != nil {
		ctx.Lock.Policy = *policy
	}
	inst := w.Build(ctx)
	inst.Lock = ctx.Lock
	if len(inst.Bodies) != ctx.Threads {
		panic(fmt.Sprintf("htmbench: %s built %d bodies for %d threads", w.Name, len(inst.Bodies), ctx.Threads))
	}
	return inst
}
