package htmbench

import (
	"errors"
	"fmt"

	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// ErrPoolExhausted matches any node-pool exhaustion failure via
// errors.Is, including one that escaped a workload as a thread panic
// and was wrapped by machine.Run.
var ErrPoolExhausted = errors.New("htmbench: node pool exhausted")

// PoolExhaustedError reports which thread's per-thread node pool ran
// dry — a workload sizing bug, not a machine fault.
type PoolExhaustedError struct {
	TID int
}

func (e *PoolExhaustedError) Error() string {
	return fmt.Sprintf("htmbench: node pool exhausted for thread %d", e.TID)
}

// Is makes errors.Is(err, ErrPoolExhausted) succeed.
func (e *PoolExhaustedError) Is(target error) bool { return target == ErrPoolExhausted }

// sameBodies returns n copies of body, for SPMD workloads.
func sameBodies(n int, body func(*machine.Thread)) []func(*machine.Thread) {
	out := make([]func(*machine.Thread), n)
	for i := range out {
		out[i] = body
	}
	return out
}

// padded allocates n counters, one cache line apart, so distinct
// indices never share a line.
type padded struct{ base mem.Addr }

func newPadded(m *machine.Machine, n int) padded {
	return padded{base: m.Mem.AllocLines(n)}
}

func (p padded) at(i int) mem.Addr { return p.base + mem.Addr(i)*mem.LineSize }

// wordArray allocates n contiguous words (densely packed: eight words
// share one line, so neighbouring indices false-share).
type wordArray struct{ base mem.Addr }

func newWordArray(m *machine.Machine, n int) wordArray {
	return wordArray{base: m.Mem.AllocWords(n)}
}

func (a wordArray) at(i int) mem.Addr { return a.base.Offset(i) }

// nodePool hands out per-thread preallocated one-line nodes, the way
// real TM programs use thread-local allocators to keep memory
// management out of transactions. The per-thread bump pointer lives in
// simulated memory (one private line per thread), so an allocation
// made inside a transaction rolls back with the abort — exactly how a
// transactional free-list behaves. Each node is one cache line laid
// out as words [0..7]; the caller defines the fields.
type nodePool struct {
	base      mem.Addr
	perThread int
	bump      padded // per-thread next-free index cells
}

func newNodePool(m *machine.Machine, threads, perThread int) *nodePool {
	return &nodePool{
		base:      m.Mem.AllocLines(threads * perThread),
		perThread: perThread,
		bump:      newPadded(m, threads),
	}
}

// alloc returns the next node line for thread t, bumping the pointer
// through the memory system (transactionally inside a transaction, so
// aborted attempts release their nodes). Exhaustion (a sizing bug in
// the workload) panics with a *PoolExhaustedError; machine.Run
// converts the panic into an error matching ErrPoolExhausted instead
// of crashing the process.
func (p *nodePool) alloc(t *machine.Thread) mem.Addr {
	cell := p.bump.at(t.ID)
	i := t.Load(cell)
	if int(i) >= p.perThread {
		panic(&PoolExhaustedError{TID: t.ID})
	}
	t.Store(cell, i+1)
	return p.base + mem.Addr(t.ID*p.perThread+int(i))*mem.LineSize
}

// allocHost is alloc for untimed setup code running outside the
// simulation (list/tree preloading): it manipulates memory directly.
func (p *nodePool) allocHost(m *machine.Machine, tid int) mem.Addr {
	cell := p.bump.at(tid)
	i := m.Mem.Load(cell)
	if int(i) >= p.perThread {
		panic(&PoolExhaustedError{TID: tid})
	}
	m.Mem.Store(cell, i+1)
	return p.base + mem.Addr(tid*p.perThread+int(i))*mem.LineSize
}

// Node field offsets for list/tree nodes: one line per node.
const (
	fKey   = 0 // key word
	fVal   = 1 // value word
	fNext  = 2 // next pointer (address as word; 0 = nil)
	fLeft  = 2 // left child (trees reuse the slot)
	fRight = 3 // right child
)

func fieldAddr(node mem.Addr, field int) mem.Addr { return node.Offset(field) }

// hashTable is a chained hash table over simulated memory: a bucket
// array of head pointers (optionally padded) and one-line nodes.
// The hash function is pluggable so workloads can reproduce the
// paper's Dedup pathology (a hash that clusters keys into few
// buckets, §8.1).
type hashTable struct {
	buckets  int
	headBase mem.Addr
	dense    bool // heads densely packed (8 per line) vs padded
	pool     *nodePool
	hash     func(key uint64) int
}

func newHashTable(m *machine.Machine, threads, buckets, poolPerThread int, dense bool, hash func(uint64) int) *hashTable {
	h := &hashTable{buckets: buckets, dense: dense, pool: newNodePool(m, threads, poolPerThread), hash: hash}
	if dense {
		h.headBase = m.Mem.AllocWords(buckets)
	} else {
		h.headBase = m.Mem.AllocLines(buckets)
	}
	return h
}

func (h *hashTable) head(b int) mem.Addr {
	if h.dense {
		return h.headBase.Offset(b)
	}
	return h.headBase + mem.Addr(b)*mem.LineSize
}

// search walks the chain for key, as the paper's hashtable_search; the
// walk's loads join the enclosing transaction's read set, so long
// chains inflate the footprint exactly as in Dedup.
func (h *hashTable) search(t *machine.Thread, key uint64) (node mem.Addr, found bool) {
	var result mem.Addr
	t.Func("hashtable_search", func() {
		t.At("chain_walk")
		p := mem.Addr(t.Load(h.head(h.hash(key))))
		for p != 0 {
			if t.Load(fieldAddr(p, fKey)) == key {
				result = p
				return
			}
			p = mem.Addr(t.Load(fieldAddr(p, fNext)))
		}
	})
	return result, result != 0
}

// insert prepends a new node for key (caller must hold the critical
// section; duplicate keys allowed for simplicity).
func (h *hashTable) insert(t *machine.Thread, key, val uint64) {
	t.Func("hashtable_insert", func() {
		n := h.pool.alloc(t)
		b := h.head(h.hash(key))
		t.Store(fieldAddr(n, fKey), key)
		t.Store(fieldAddr(n, fVal), val)
		t.Store(fieldAddr(n, fNext), mem.Word(t.Load(b)))
		t.Store(b, mem.Word(n))
	})
}

// sortedList is a singly linked sorted list (Synchrobench linkedlist):
// long transactional traversals build large read sets.
type sortedList struct {
	head mem.Addr // head pointer cell (its own line)
	pool *nodePool
}

func newSortedList(m *machine.Machine, threads, poolPerThread int) *sortedList {
	return &sortedList{head: m.Mem.AllocLines(1), pool: newNodePool(m, threads, poolPerThread)}
}

// insert adds key in sorted position; returns false if present.
func (l *sortedList) insert(t *machine.Thread, key uint64) bool {
	ok := false
	t.Func("list_insert", func() {
		// prev is the address of the pointer cell to relink.
		prev := l.head
		cur := mem.Addr(t.Load(prev))
		for cur != 0 {
			k := t.Load(fieldAddr(cur, fKey))
			if k == key {
				return
			}
			if k > key {
				break
			}
			prev = fieldAddr(cur, fNext)
			cur = mem.Addr(t.Load(prev))
		}
		n := l.pool.alloc(t)
		t.Store(fieldAddr(n, fKey), key)
		t.Store(fieldAddr(n, fNext), mem.Word(cur))
		t.Store(prev, mem.Word(n))
		ok = true
	})
	return ok
}

// contains searches for key.
func (l *sortedList) contains(t *machine.Thread, key uint64) bool {
	found := false
	t.Func("list_contains", func() {
		cur := mem.Addr(t.Load(l.head))
		for cur != 0 {
			k := t.Load(fieldAddr(cur, fKey))
			if k == key {
				found = true
				return
			}
			if k > key {
				return
			}
			cur = mem.Addr(t.Load(fieldAddr(cur, fNext)))
		}
	})
	return found
}

// bst is an unbalanced binary search tree over one-line nodes,
// standing in for the AVL tree, B+ tree, and skip list workloads'
// logarithmic search structures.
type bst struct {
	root mem.Addr // root pointer cell
	pool *nodePool
}

func newBST(m *machine.Machine, threads, poolPerThread int) *bst {
	return &bst{root: m.Mem.AllocLines(1), pool: newNodePool(m, threads, poolPerThread)}
}

func (b *bst) insert(t *machine.Thread, key, val uint64) {
	t.Func("tree_insert", func() {
		slot := b.root
		for {
			cur := mem.Addr(t.Load(slot))
			if cur == 0 {
				n := b.pool.alloc(t)
				t.Store(fieldAddr(n, fKey), key)
				t.Store(fieldAddr(n, fVal), val)
				t.Store(slot, mem.Word(n))
				return
			}
			k := t.Load(fieldAddr(cur, fKey))
			switch {
			case key == k:
				t.Store(fieldAddr(cur, fVal), val)
				return
			case key < k:
				slot = fieldAddr(cur, fLeft)
			default:
				slot = fieldAddr(cur, fRight)
			}
		}
	})
}

func (b *bst) lookup(t *machine.Thread, key uint64) (uint64, bool) {
	var val uint64
	found := false
	t.Func("tree_lookup", func() {
		cur := mem.Addr(t.Load(b.root))
		for cur != 0 {
			k := t.Load(fieldAddr(cur, fKey))
			if k == key {
				val = t.Load(fieldAddr(cur, fVal))
				found = true
				return
			}
			if key < k {
				cur = mem.Addr(t.Load(fieldAddr(cur, fLeft)))
			} else {
				cur = mem.Addr(t.Load(fieldAddr(cur, fRight)))
			}
		}
	})
	return val, found
}

// expectWord builds a Check that asserts a memory word's final value.
func expectWord(addr mem.Addr, want uint64, what string) func(*machine.Machine) error {
	return func(m *machine.Machine) error {
		if got := m.Mem.Load(addr); got != want {
			return fmt.Errorf("%s = %d, want %d", what, got, want)
		}
		return nil
	}
}
