package htmbench

import (
	"fmt"

	"txsampler/internal/machine"
)

// CLOMP-TM (paper §7.2, Table 1, Figure 7): a controlled benchmark
// that deposits values into "zones" under two transaction-size
// configurations and three scatter modes:
//
//	input 1 Adjacent:   each thread updates its own contiguous zones —
//	                    rare conflicts, prefetch friendly;
//	input 2 FirstParts: all threads hammer the same leading zones —
//	                    high conflicts;
//	input 3 Random:     random zones across a large array — rare
//	                    conflicts but a large, cache-unfriendly
//	                    footprint.
//
// "small" wraps every zone update in its own transaction; "large"
// coalesces zonesPerTx updates into one.

// ScatterMode selects the CLOMP-TM input (Table 1).
type ScatterMode int

const (
	// Adjacent: thread-contiguous zones.
	Adjacent ScatterMode = iota + 1
	// FirstParts: all threads start at the same zones.
	FirstParts
	// Random: random zone per update.
	Random
)

func (s ScatterMode) String() string {
	switch s {
	case Adjacent:
		return "Adjacent"
	case FirstParts:
		return "FirstParts"
	case Random:
		return "Random"
	}
	return "?"
}

// ClompConfig parameterizes one CLOMP-TM run.
type ClompConfig struct {
	Scatter    ScatterMode
	ZonesPerTx int // 1 = small transactions; >1 = large
}

const (
	clompZones     = 1 << 20 // zone array size (lines)
	clompDeposits  = 480     // zone updates per thread
	clompLargeSize = 16      // zones per large transaction
)

func buildClomp(cfg ClompConfig) func(ctx *Ctx) *Instance {
	return func(ctx *Ctx) *Instance {
		zones := newPadded(ctx.M, clompZones)
		// zoneFor picks the target zone for a thread's i'th update.
		zoneFor := func(t *machine.Thread, i int) int {
			switch cfg.Scatter {
			case Adjacent:
				span := clompZones / ctx.Threads
				return t.ID*span + i%span
			case FirstParts:
				return i % 24 // everyone shares the same two dozen zones
			default: // Random
				return t.Rand().Intn(clompZones)
			}
		}
		return &Instance{
			Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
				deposits := 0
				for deposits < clompDeposits {
					n := cfg.ZonesPerTx
					if n > clompDeposits-deposits {
						n = clompDeposits - deposits
					}
					start := deposits
					ctx.Lock.Run(t, func() {
						t.At("deposit")
						for j := 0; j < n; j++ {
							z := zoneFor(t, start+j)
							if cfg.Scatter == Random {
								// Prefetch-unfriendly gather: input 3
								// walks a column of the zone matrix.
								// The column stride aliases L1 sets, so
								// scattered footprints hit the cache's
								// tracking capacity, as on hardware.
								t.At("gather")
								stride := ctx.M.Config().Cache.Sets
								t.Load(zones.at((z + stride) % clompZones))
								t.At("deposit")
							}
							t.Add(zones.at(z), 1)
						}
					})
					deposits += n
					t.Compute(60 * n)
				}
			}),
			Check: func(m *machine.Machine) error {
				var total uint64
				for z := 0; z < clompZones; z++ {
					total += m.Mem.Load(zones.at(z))
				}
				want := uint64(clompDeposits * ctx.Threads)
				if total != want {
					return fmt.Errorf("clomp deposits = %d, want %d", total, want)
				}
				return nil
			},
		}
	}
}

// ClompName returns the registered name for a configuration, e.g.
// "clomp/small-2".
func ClompName(cfg ClompConfig) string {
	size := "small"
	if cfg.ZonesPerTx > 1 {
		size = "large"
	}
	return fmt.Sprintf("clomp/%s-%d", size, int(cfg.Scatter))
}

// ClompConfigs lists the six paper configurations in Figure 7's order.
func ClompConfigs() []ClompConfig {
	var out []ClompConfig
	for _, size := range []int{1, clompLargeSize} {
		for _, s := range []ScatterMode{Adjacent, FirstParts, Random} {
			out = append(out, ClompConfig{Scatter: s, ZonesPerTx: size})
		}
	}
	return out
}

func init() {
	descs := map[ScatterMode]string{
		Adjacent:   "rare conflicts, cache prefetch friendly",
		FirstParts: "high conflicts, cache prefetch friendly",
		Random:     "rare conflicts, cache prefetch unfriendly",
	}
	for _, cfg := range ClompConfigs() {
		cfg := cfg
		size := "small transactions"
		if cfg.ZonesPerTx > 1 {
			size = "large transactions"
		}
		Register(&Workload{
			Name:  ClompName(cfg),
			Suite: "clomp",
			Desc:  fmt.Sprintf("CLOMP-TM %s, input %d (%s): %s", size, int(cfg.Scatter), cfg.Scatter, descs[cfg.Scatter]),
			Build: buildClomp(cfg),
		})
	}
}
