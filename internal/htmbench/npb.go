package htmbench

import (
	"txsampler/internal/analyzer"
	"txsampler/internal/machine"
)

// NPB UA (unstructured adaptive mesh): the paper's Table 2 entry shows
// high T_oh from many tiny element updates, fixed by merging
// transactions (1.05x).

const (
	uaElements = 1024
	uaUpdates  = 480 // per thread
	uaGran     = 2   // updates per merged transaction
)

func registerUA(name, desc string, gran int, suite string, expected analyzer.Category) {
	Register(&Workload{
		Name: name, Suite: suite, Desc: desc, Expected: expected,
		Build: func(ctx *Ctx) *Instance {
			elems := newPadded(ctx.M, uaElements)
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					t.Func("adapt_mesh", func() {
						for i := 0; i < uaUpdates; i += gran {
							n := gran
							if n > uaUpdates-i {
								n = uaUpdates - i
							}
							ctx.Lock.Run(t, func() {
								t.At("element_update")
								for j := 0; j < n; j++ {
									// Mostly thread-local elements with
									// occasional neighbours.
									e := (t.ID*uaElements/ctx.Threads + t.Rand().Intn(uaElements/ctx.Threads+4)) % uaElements
									t.Add(elems.at(e), 1)
								}
							})
							t.Compute(150 * n) // per-element physics, outside the CS
						}
					})
				}),
			}
		},
	})
}

func init() {
	registerUA("npb/ua", "unstructured adaptive mesh: one tiny transaction per element update (high T_oh)",
		1, "npb", analyzer.TypeII)
	registerUA("npb/ua-merged", "UA with merged element-update transactions (Table 2, 1.05x)",
		uaGran, "opt", 0)
}
