package htmbench

import (
	"fmt"

	"txsampler/internal/analyzer"
	"txsampler/internal/machine"
)

// SPLASH2-like kernels: compute-dominated scientific programs whose
// critical sections are tiny — the paper's Type I programs (Figure 8,
// bottom group). They exist so the Figure 5 overhead and Figure 8
// categorization sweeps include programs the decision tree should
// dismiss at step (1).

func registerSplash(name, desc string, computePerIter, iters, csEvery int) {
	Register(&Workload{
		Name:     "splash2/" + name,
		Suite:    "splash2",
		Desc:     desc,
		Expected: analyzer.TypeI,
		Build: func(ctx *Ctx) *Instance {
			acc := newPadded(ctx.M, ctx.Threads)
			global := ctx.M.Mem.AllocLines(1)
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						t.Func("step", func() {
							t.Compute(computePerIter)
							t.Add(acc.at(t.ID), 1) // private accumulation
							if i%csEvery == 0 {
								ctx.Lock.Run(t, func() {
									t.At("global_reduce")
									t.Add(global, 1)
								})
							}
						})
					}
				}),
				Check: func(m *machine.Machine) error {
					want := uint64(ctx.Threads * ((iters + csEvery - 1) / csEvery))
					if got := m.Mem.Load(global); got != want {
						return fmt.Errorf("%s global = %d, want %d", name, got, want)
					}
					return nil
				},
			}
		},
	})
}

func init() {
	registerSplash("barnes", "Barnes-Hut N-body: long force computations, rare tree-lock sections", 500, 100, 10)
	registerSplash("fmm", "fast multipole: heavy per-cell math, occasional shared list append", 600, 90, 12)
	registerSplash("ocean", "ocean simulation: stencil sweeps with rare global reductions", 400, 110, 14)
	registerSplash("water", "water molecular dynamics: pairwise forces, tiny shared updates", 450, 100, 12)
	registerSplash("raytrace", "ray tracing: independent rays with an occasional shared ray-count", 550, 95, 16)
}
