package htmbench

// Pool exhaustion must surface as a typed, matchable error — through
// machine.Run for in-simulation allocation, and as a typed panic value
// for host-side setup — instead of an anonymous panic string.

import (
	"errors"
	"testing"

	"txsampler/internal/machine"
)

func TestPoolExhaustionIsTypedThroughRun(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	pool := newNodePool(m, 1, 4)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 5; i++ { // one more than the pool holds
			pool.alloc(th)
		}
	})
	if err == nil {
		t.Fatal("exhausting the pool returned nil")
	}
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("errors.Is(err, ErrPoolExhausted) = false for %v", err)
	}
	var pe *PoolExhaustedError
	if !errors.As(err, &pe) || pe.TID != 0 {
		t.Fatalf("errors.As failed or wrong TID: %v", err)
	}
}

func TestPoolExhaustionHostSide(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	pool := newNodePool(m, 1, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("host-side exhaustion did not panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrPoolExhausted) {
			t.Fatalf("panic value %v is not a pool-exhaustion error", r)
		}
	}()
	for i := 0; i < 3; i++ {
		pool.allocHost(m, 0)
	}
}
