package htmbench

import (
	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// The micro suite provides the controlled-abort-ratio programs of the
// paper's correctness evaluation (§7.2): known low/moderate/high abort
// rates with known causes.

func init() {
	Register(&Workload{
		Name:  "micro/low-abort",
		Suite: "micro",
		Desc:  "per-thread private counters: transactions almost never abort",
		Build: func(ctx *Ctx) *Instance {
			counters := newPadded(ctx.M, ctx.Threads)
			const iters = 400
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() {
							t.At("private_update")
							t.Add(counters.at(t.ID), 1)
						})
						t.Compute(40)
					}
				}),
				Check: func(m *machine.Machine) error {
					for i := 0; i < ctx.Threads; i++ {
						if err := expectWord(counters.at(i), iters, "counter")(m); err != nil {
							return err
						}
					}
					return nil
				},
			}
		},
	})

	Register(&Workload{
		Name:  "micro/true-sharing",
		Suite: "micro",
		Desc:  "all threads update one word: heavy conflict aborts from true sharing",
		Build: func(ctx *Ctx) *Instance {
			shared := ctx.M.Mem.AllocLines(1)
			const iters = 120
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() {
							t.At("shared_update")
							v := t.Load(shared)
							t.Compute(15)
							t.Store(shared, v+1)
						})
					}
				}),
				Check: expectWord(shared, uint64(iters*ctx.Threads), "shared counter"),
			}
		},
	})

	Register(&Workload{
		Name:  "micro/false-sharing",
		Suite: "micro",
		Desc:  "threads update distinct words of one cache line: conflicts despite disjoint data",
		Build: func(ctx *Ctx) *Instance {
			// One line holds 8 words; map threads onto them.
			line := ctx.M.Mem.AllocLines(2)
			slot := func(tid int) mem.Addr { return line.Offset(tid % (2 * mem.WordsPerLine)) }
			const iters = 120
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() {
							t.At("falsely_shared_update")
							v := t.Load(slot(t.ID))
							t.Compute(15)
							t.Store(slot(t.ID), v+1)
						})
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name:  "micro/sync-abort",
		Suite: "micro",
		Desc:  "a system call inside every fourth transaction: synchronous aborts",
		Build: func(ctx *Ctx) *Instance {
			counters := newPadded(ctx.M, ctx.Threads)
			const iters = 200
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() {
							t.At("work")
							t.Add(counters.at(t.ID), 1)
							if i%4 == 0 {
								t.At("log_write")
								t.Syscall("write")
							}
						})
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name:  "micro/capacity",
		Suite: "micro",
		Desc:  "transactions write more lines of one L1 set than its associativity: capacity aborts",
		Build: func(ctx *Ctx) *Instance {
			cache := ctx.M.Config().Cache
			stride := mem.Addr(mem.LineSize * cache.Sets)
			span := cache.Ways + 2
			base := make([]mem.Addr, ctx.Threads)
			for i := range base {
				base[i] = ctx.M.Mem.Alloc(int(stride)*span, mem.LineSize)
			}
			const iters = 60
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() {
							t.At("big_footprint")
							for j := 0; j < span; j++ {
								t.Store(base[t.ID]+mem.Addr(j)*stride, uint64(i))
							}
						})
						t.Compute(30)
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name:  "micro/deep-calls",
		Suite: "micro",
		Desc:  "deep call chains with sibling calls inside transactions: stresses LBR path reconstruction",
		Build: func(ctx *Ctx) *Instance {
			counters := newPadded(ctx.M, ctx.Threads)
			const iters = 150
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					var descend func(depth int)
					descend = func(depth int) {
						t.Func("level_"+string(rune('a'+depth)), func() {
							t.Compute(5)
							if depth < 5 {
								// A sibling call that returns, then the
								// real descent: churns LBR entries.
								t.Func("leaf_check", func() { t.Compute(3) })
								descend(depth + 1)
							} else {
								t.At("deep_update")
								t.Add(counters.at(t.ID), 1)
							}
						})
					}
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() { descend(0) })
						t.Compute(60)
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name:  "micro/mixed",
		Suite: "micro",
		Desc:  "moderate mix of private work, shared updates, and occasional syscalls",
		Build: func(ctx *Ctx) *Instance {
			counters := newPadded(ctx.M, ctx.Threads)
			shared := ctx.M.Mem.AllocLines(1)
			const iters = 200
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() {
							t.Add(counters.at(t.ID), 1)
							if i%5 == 0 {
								t.At("shared")
								t.Add(shared, 1)
							}
							if i%23 == 0 {
								t.Syscall("stat")
							}
						})
						t.Compute(25)
					}
				}),
			}
		},
	})
}
