package htmbench

import (
	"fmt"

	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/rtm"
)

// The elide suite exercises the lock-elision fallback ladder on the
// four canonical lock-usage shapes: a sharded map (mostly disjoint
// writers), an RWMutex-style read-mostly table, a short CAS-able hot
// counter, and a long syscall-poisoned section. Each workload builds
// its own rtm.ElidedLock(s), so the same program runs plain (elision
// off) or speculating (elision on) with identical final memory — the
// cross-mode equivalence the elision tests pin down — and the profiler
// gets one per-lock-site verdict per lock.

func init() {
	Register(&Workload{
		Name:  "elide/sharded-map",
		Suite: "elide",
		Desc:  "hash map with one elidable lock per shard: disjoint writers, elision wins",
		Build: func(ctx *Ctx) *Instance {
			const shards = 4
			const buckets = 16 // padded: one line per bucket
			locks := make([]*rtm.ElidedLock, shards)
			tables := make([]padded, shards)
			for s := 0; s < shards; s++ {
				locks[s] = rtm.NewElidedLock(ctx.M, []string{"map_shard0", "map_shard1", "map_shard2", "map_shard3"}[s])
				tables[s] = newPadded(ctx.M, buckets)
			}
			const iters = 200
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						key := uint64(i*ctx.Threads + t.ID)
						s := int(key % shards)
						locks[s].Run(t, func() {
							t.At("map_put")
							t.Add(tables[s].at(int(key/shards)%buckets), 1)
						})
						t.Compute(30)
					}
				}),
				Check: func(m *machine.Machine) error {
					var total uint64
					for s := 0; s < shards; s++ {
						for b := 0; b < buckets; b++ {
							total += m.Mem.Load(tables[s].at(b))
						}
					}
					want := uint64(iters * ctx.Threads)
					if total != want {
						return fmt.Errorf("sharded-map total = %d, want %d", total, want)
					}
					return nil
				},
			}
		},
	})

	Register(&Workload{
		Name:  "elide/read-mostly",
		Suite: "elide",
		Desc:  "RWMutex-shaped table: scans dominate, rare version bumps — elision wins",
		Build: func(ctx *Ctx) *Instance {
			lock := rtm.NewElidedLock(ctx.M, "rw_table")
			table := ctx.M.Mem.AllocLines(4)
			version := ctx.M.Mem.AllocLines(1)
			const iters = 160
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						i := i
						lock.Run(t, func() {
							if i%32 == 0 {
								t.At("table_write")
								t.Add(version, 1)
								t.Add(table.Offset((t.ID%4)*mem.WordsPerLine), 1)
								return
							}
							t.At("table_scan")
							for j := 0; j < 4; j++ {
								t.Load(table.Offset(j * mem.WordsPerLine))
							}
							t.Compute(20)
						})
						t.Compute(25)
					}
				}),
				Check: expectWord(version, uint64(ctx.Threads*(iters/32)), "table version"),
			}
		},
	})

	Register(&Workload{
		Name:  "elide/counter",
		Suite: "elide",
		Desc:  "short CAS-able hot counter under one elidable lock: tiny conflicting sections",
		Build: func(ctx *Ctx) *Instance {
			lock := rtm.NewElidedLock(ctx.M, "hot_counter")
			counter := ctx.M.Mem.AllocLines(1)
			const iters = 150
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						lock.Run(t, func() {
							t.At("counter_inc")
							t.Add(counter, 1)
						})
						t.Compute(35)
					}
				}),
				Check: expectWord(counter, uint64(iters*ctx.Threads), "hot counter"),
			}
		},
	})

	Register(&Workload{
		Name:  "elide/syscall-section",
		Suite: "elide",
		Desc:  "long syscall-poisoned section: every speculative attempt aborts, elision loses",
		Build: func(ctx *Ctx) *Instance {
			lock := rtm.NewElidedLock(ctx.M, "log_section")
			counters := newPadded(ctx.M, ctx.Threads)
			const iters = 120
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						lock.Run(t, func() {
							t.At("log_append")
							t.Add(counters.at(t.ID), 1)
							t.Syscall("fsync")
							t.Compute(80)
						})
						t.Compute(20)
					}
				}),
				Check: func(m *machine.Machine) error {
					for i := 0; i < ctx.Threads; i++ {
						if err := expectWord(counters.at(i), iters, "log counter")(m); err != nil {
							return err
						}
					}
					return nil
				},
			}
		},
	})
}
