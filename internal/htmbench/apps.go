package htmbench

import (
	"txsampler/internal/analyzer"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// Application workloads, including the paper's LevelDB (§8.2) and AVL
// tree (Table 2) case studies.

func init() {
	registerLevelDB()
	registerAVLTree()
	registerBPlusTree()
	registerKyotoCabinet()
	registerMemcached()
	registerBerkeleyDB()
	registerQuakeTM()
	registerPBZip2()
	registerNufft()
	registerRMSTM()
	registerLeeTM()
	registerSSCA2()
}

// leveldb models db_bench's ReadRandom (§8.2): every Get() increments
// the reference counts of three shared objects in one transaction at
// entry, reads, then decrements them in a second transaction at exit.
// The shared counters make the abort/commit ratio explode (2.8 in the
// paper). The optimized variant splits the transactions so each only
// covers one counter update (ratio 0.38, ReadRandom 2.06x).
func registerLevelDB() {
	build := func(split bool) func(ctx *Ctx) *Instance {
		return func(ctx *Ctx) *Instance {
			refs := newPadded(ctx.M, 3) // memtable, immutable memtable, version
			table := newBST(ctx.M, ctx.Threads, 220)
			// Preload keys.
			for i, k := range []uint64{500, 250, 750, 125, 375, 625, 875, 60, 180, 310, 440, 560, 690, 810, 940} {
				slot := table.root
				for {
					cur := mem.Addr(ctx.M.Mem.Load(slot))
					if cur == 0 {
						n := table.pool.allocHost(ctx.M, 0)
						ctx.M.Mem.Store(fieldAddr(n, fKey), k)
						ctx.M.Mem.Store(fieldAddr(n, fVal), uint64(i))
						ctx.M.Mem.Store(slot, mem.Word(n))
						break
					}
					if k < ctx.M.Mem.Load(fieldAddr(cur, fKey)) {
						slot = fieldAddr(cur, fLeft)
					} else {
						slot = fieldAddr(cur, fRight)
					}
				}
			}
			const gets = 55
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < gets; i++ {
						t.Func("ReadRandom", func() {
							t.Func("Get", func() {
								if split {
									for r := 0; r < 3; r++ {
										ctx.Lock.Run(t, func() {
											t.At("Ref")
											t.Add(refs.at(r), 1)
										})
									}
								} else {
									ctx.Lock.Run(t, func() {
										t.At("Ref")
										for r := 0; r < 3; r++ {
											t.Add(refs.at(r), 1)
										}
										t.Compute(20) // snapshot setup inside the same tx
									})
								}
								key := uint64(t.Rand().Intn(1000))
								table.lookup(t, key) // the read itself is lock-free
								t.Compute(12000)     // decode block, checksum, copy value
								if split {
									for r := 0; r < 3; r++ {
										ctx.Lock.Run(t, func() {
											t.At("Unref")
											t.Add(refs.at(r), -1)
										})
									}
								} else {
									ctx.Lock.Run(t, func() {
										t.At("Unref")
										for r := 0; r < 3; r++ {
											t.Add(refs.at(r), -1)
										}
										t.Compute(20)
									})
								}
							})
						})
					}
				}),
			}
		}
	}
	Register(&Workload{
		Name: "app/leveldb", Suite: "app",
		Desc:     "ReadRandom Gets bracketed by shared ref-count transactions: abort/commit ~ 2.8 (§8.2)",
		Expected: analyzer.TypeIII,
		Build:    build(false),
	})
	Register(&Workload{
		Name: "app/leveldb-opt", Suite: "opt",
		Desc:  "LevelDB with the bracketing transactions split to bare ref-count updates (Table 2, §8.2)",
		Build: build(true),
	})
}

// avltree: a read-dominated search tree. The baseline takes the global
// lock even for lookups, so readers serialize (high T_wait); the
// optimized variant elides the read lock with HTM (Table 2, 1.21x).
func registerAVLTree() {
	buildTree := func(ctx *Ctx) *bst {
		tree := newBST(ctx.M, ctx.Threads, 260)
		for _, k := range []uint64{400, 200, 600, 100, 300, 500, 700, 50, 150, 250, 350, 450, 550, 650, 750} {
			slot := tree.root
			for {
				cur := mem.Addr(ctx.M.Mem.Load(slot))
				if cur == 0 {
					n := tree.pool.allocHost(ctx.M, 0)
					ctx.M.Mem.Store(fieldAddr(n, fKey), k)
					ctx.M.Mem.Store(slot, mem.Word(n))
					break
				}
				if k < ctx.M.Mem.Load(fieldAddr(cur, fKey)) {
					slot = fieldAddr(cur, fLeft)
				} else {
					slot = fieldAddr(cur, fRight)
				}
			}
		}
		return tree
	}
	const ops = 60
	body := func(ctx *Ctx, tree *bst, elideReadLock bool) func(*machine.Thread) {
		return func(t *machine.Thread) {
			for i := 0; i < ops; i++ {
				key := uint64(t.Rand().Intn(800))
				write := t.Rand().Intn(100) < 10
				switch {
				case write:
					ctx.Lock.Run(t, func() { tree.insert(t, key, key) })
				case elideReadLock:
					ctx.Lock.Run(t, func() { tree.lookup(t, key) })
				default:
					// Baseline: lookups acquire the lock outright.
					ctx.Lock.RunLocked(t, func() { tree.lookup(t, key) })
				}
				t.Compute(2800)
			}
		}
	}
	Register(&Workload{
		Name: "app/avltree", Suite: "app",
		Desc:     "search tree whose readers acquire the global lock: lookups serialize (high T_wait)",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			tree := buildTree(ctx)
			return &Instance{Bodies: sameBodies(ctx.Threads, body(ctx, tree, false))}
		},
	})
	Register(&Workload{
		Name: "app/avltree-opt", Suite: "opt",
		Desc: "AVL tree with the read lock elided into transactions (Table 2, 1.21x)",
		Build: func(ctx *Ctx) *Instance {
			tree := buildTree(ctx)
			return &Instance{Bodies: sameBodies(ctx.Threads, body(ctx, tree, true))}
		},
	})
}

func registerBPlusTree() {
	Register(&Workload{
		Name: "app/bplustree", Suite: "app",
		Desc:     "B+ tree style index: transactional descents with update traffic near the root",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			tree := newBST(ctx.M, ctx.Threads, 300)
			const ops = 100
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < ops; i++ {
						key := uint64(t.Rand().Intn(40))
						if t.Rand().Intn(100) < 55 {
							ctx.Lock.Run(t, func() { tree.insert(t, key, key) })
						} else {
							ctx.Lock.Run(t, func() { tree.lookup(t, key) })
						}
						t.Compute(350)
					}
				}),
			}
		},
	})
}

func registerKyotoCabinet() {
	Register(&Workload{
		Name: "app/kyotocabinet", Suite: "app",
		Desc:     "DBM-style hash store: bucket updates plus a hot global record counter",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			table := newHashTable(ctx.M, ctx.Threads, 128, 160, false, func(k uint64) int { return int(k % 128) })
			count := ctx.M.Mem.AllocLines(1)
			const ops = 90
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < ops; i++ {
						key := uint64(t.Rand().Intn(900))
						ctx.Lock.Run(t, func() {
							if _, found := table.search(t, key); !found {
								table.insert(t, key, key)
								t.At("record_count")
								t.Add(count, 1)
							}
						})
						t.Compute(500)
					}
				}),
			}
		},
	})
}

func registerMemcached() {
	Register(&Workload{
		Name: "app/memcached", Suite: "app",
		Desc:     "slab cache gets/sets: wide hash, short critical sections, mostly parallel",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			slots := newPadded(ctx.M, 512)
			const ops = 130
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < ops; i++ {
						s := t.Rand().Intn(512)
						t.Func("process_command", func() {
							t.Compute(320) // parse + hash
							ctx.Lock.Run(t, func() {
								t.At("item_touch")
								t.Add(slots.at(s), 1)
								t.Compute(12)
							})
						})
					}
				}),
			}
		},
	})
}

func registerBerkeleyDB() {
	Register(&Workload{
		Name: "app/berkeleydb", Suite: "app",
		Desc:     "page-cache pin/unpin over many pages: hot CS, low conflict probability",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			pages := newPadded(ctx.M, 384)
			const ops = 120
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < ops; i++ {
						p := t.Rand().Intn(384)
						ctx.Lock.Run(t, func() {
							t.At("page_pin")
							t.Add(pages.at(p), 1)
							t.Compute(20)
						})
						t.Compute(280)
					}
				}),
			}
		},
	})
}

func registerQuakeTM() {
	Register(&Workload{
		Name: "app/quaketm", Suite: "app",
		Desc:     "game-world frame updates: per-region transactions over a partitioned map",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			regions := newPadded(ctx.M, 256)
			const frames = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < frames; i++ {
						t.Func("frame_update", func() {
							t.Compute(380) // physics
							r := (t.ID*16 + t.Rand().Intn(20)) % 256
							ctx.Lock.Run(t, func() {
								t.At("region_commit")
								t.Add(regions.at(r), 1)
								t.Compute(15)
							})
						})
					}
				}),
			}
		},
	})
}

func registerPBZip2() {
	Register(&Workload{
		Name: "app/pbzip2", Suite: "app",
		Desc:     "parallel compression: heavy per-block work, queue index updates in the CS",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			ticket := ctx.M.Mem.AllocLines(1) // lock-free block dispenser
			directory := newPadded(ctx.M, 64) // output block directory
			const blocks = 60
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < blocks; i++ {
						blk := t.AtomicAdd(ticket, 1) // as pbzip2's atomic queue index
						t.Compute(900)                // compress the block
						ctx.Lock.Run(t, func() {
							t.At("directory_insert")
							t.Add(directory.at(int(blk)%64), 1)
							t.Compute(150)
						})
					}
				}),
			}
		},
	})
}

func registerNufft() {
	Register(&Workload{
		Name: "bart/nufft", Suite: "app",
		Desc:     "non-uniform FFT gridding: long compute, scattered grid accumulation in the CS",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			grid := newPadded(ctx.M, 512)
			const samples = 100
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < samples; i++ {
						t.Func("grid_sample", func() {
							t.Compute(550) // kernel evaluation
							g := t.Rand().Intn(512)
							ctx.Lock.Run(t, func() {
								t.At("grid_accumulate")
								t.Add(grid.at(g), 1)
								t.Add(grid.at((g+1)%512), 1)
							})
						})
					}
				}),
			}
		},
	})
}

func registerRMSTM() {
	Register(&Workload{
		Name: "rms/utilitymine", Suite: "rms",
		Desc:     "utility mining: per-item counters over a wide padded array",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			items := newPadded(ctx.M, 640)
			const txns = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < txns; i++ {
						t.Compute(400)
						ctx.Lock.Run(t, func() {
							t.At("utility_update")
							for j := 0; j < 3; j++ {
								t.Add(items.at(t.Rand().Intn(640)), 1)
							}
						})
					}
				}),
			}
		},
	})
	Register(&Workload{
		Name: "rms/scalparc", Suite: "rms",
		Desc:     "decision-tree statistics: attribute histogram updates with wide spread",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			stats := newPadded(ctx.M, 448)
			const records = 120
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < records; i++ {
						t.Compute(380)
						ctx.Lock.Run(t, func() {
							t.At("stat_update")
							t.Add(stats.at(t.Rand().Intn(448)), 1)
							t.Compute(10)
						})
					}
				}),
			}
		},
	})
}

func registerLeeTM() {
	Register(&Workload{
		Name: "lee/lee-tm", Suite: "app",
		Desc:     "circuit routing: long transactional wavefront reads plus path writes",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			const cells = 2048
			board := newPadded(ctx.M, cells)
			const routes = 40
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < routes; i++ {
						t.Func("lay_track", func() {
							start := t.Rand().Intn(cells)
							ctx.Lock.Run(t, func() {
								t.At("expand_wavefront")
								for j := 0; j < 22; j++ {
									t.Load(board.at((start + j*17) % cells))
								}
								t.At("backtrack_write")
								for j := 0; j < 6; j++ {
									t.Add(board.at((start+j*17)%cells), 1)
								}
							})
							t.Compute(600)
						})
					}
				}),
			}
		},
	})
}

// ssca2 (HPCS graph analysis): the paper's Table 2 entry reports high
// T_tx with the fix "defer transaction" — hoisting the expensive
// computation out so the transaction only covers the update (1.10x).
func registerSSCA2() {
	build := func(deferred bool) func(ctx *Ctx) *Instance {
		return func(ctx *Ctx) *Instance {
			const vertices = 24
			bc := newPadded(ctx.M, vertices)
			const relaxations = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < relaxations; i++ {
						t.Func("relax_edge", func() {
							v := t.Rand().Intn(vertices)
							if deferred {
								t.Compute(500) // score computed outside
								ctx.Lock.Run(t, func() {
									t.At("bc_update")
									t.Add(bc.at(v), 1)
								})
							} else {
								ctx.Lock.Run(t, func() {
									t.At("bc_compute")
									t.Compute(500) // heavy work inside the tx
									t.At("bc_update")
									t.Add(bc.at(v), 1)
								})
							}
						})
					}
				}),
			}
		}
	}
	Register(&Workload{
		Name: "hpcs/ssca2", Suite: "hpcs",
		Desc:     "betweenness updates with the scoring computation inside the transaction (high T_tx)",
		Expected: analyzer.TypeII,
		Build:    build(false),
	})
	Register(&Workload{
		Name: "hpcs/ssca2-opt", Suite: "opt",
		Desc:  "ssca2 with the computation deferred out of the transaction (Table 2, 1.10x)",
		Build: build(true),
	})
}
