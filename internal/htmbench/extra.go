package htmbench

import (
	"fmt"

	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// Additional programs from the suites the paper's evaluation draws on
// (CORAL, Parboil beyond histo, STAMP's bayes, Synchrobench's hash
// set). Figure 8 does not place these, so they carry no Expected
// category; they widen the Figure 5 overhead population.

func init() {
	Register(&Workload{
		Name: "coral/amg", Suite: "coral",
		Desc: "algebraic multigrid: stencil relaxation sweeps with boundary-row critical sections",
		Build: func(ctx *Ctx) *Instance {
			rows := newPadded(ctx.M, 512)
			const sweeps = 90
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < sweeps; i++ {
						t.Func("relax_rows", func() {
							t.Compute(350) // interior rows, fully parallel
							// Boundary rows shared with a neighbour.
							b := (t.ID*36 + t.Rand().Intn(40)) % 512
							ctx.Lock.Run(t, func() {
								t.At("boundary_row")
								t.Add(rows.at(b), 1)
								t.Compute(20)
							})
						})
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "coral/lulesh", Suite: "coral",
		Desc: "shock hydrodynamics: long element kernels, rare nodal-mass reductions",
		Build: func(ctx *Ctx) *Instance {
			nodalMass := ctx.M.Mem.AllocLines(1)
			const steps = 80
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < steps; i++ {
						t.Func("calc_element", func() {
							t.Compute(700)
							if i%8 == 0 {
								ctx.Lock.Run(t, func() {
									t.At("nodal_reduce")
									t.Add(nodalMass, 1)
								})
							}
						})
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "parboil/spmv", Suite: "parboil",
		Desc: "sparse matrix-vector multiply: private row dot-products, shared norm update",
		Build: func(ctx *Ctx) *Instance {
			norm := ctx.M.Mem.AllocLines(1)
			acc := newPadded(ctx.M, ctx.Threads)
			const rows = 100
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < rows; i++ {
						t.Func("row_dot", func() {
							t.Compute(420)
							t.Add(acc.at(t.ID), 1)
							if i%10 == 0 {
								ctx.Lock.Run(t, func() {
									t.At("norm_update")
									t.Add(norm, 1)
								})
							}
						})
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "parboil/cutcp", Suite: "parboil",
		Desc: "cutoff Coulomb potential: lattice bins accumulated under short transactions",
		Build: func(ctx *Ctx) *Instance {
			lattice := newPadded(ctx.M, 384)
			const atoms = 120
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < atoms; i++ {
						t.Func("bin_atom", func() {
							t.Compute(300)
							cell := t.Rand().Intn(384)
							ctx.Lock.Run(t, func() {
								t.At("lattice_add")
								t.Add(lattice.at(cell), 1)
								t.Add(lattice.at((cell+1)%384), 1)
							})
						})
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "stamp/bayes", Suite: "stamp",
		Desc: "Bayesian network structure learning: dependency-graph edges under contended transactions",
		Build: func(ctx *Ctx) *Instance {
			const vars = 48
			adj := newPadded(ctx.M, vars)
			const learns = 90
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < learns; i++ {
						t.Func("learn_structure", func() {
							t.Compute(450) // score candidate edges
							from := t.Rand().Intn(vars)
							to := t.Rand().Intn(vars)
							ctx.Lock.Run(t, func() {
								t.At("insert_edge")
								t.Load(adj.at(from))
								t.Add(adj.at(to), 1)
								t.Compute(25)
							})
						})
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "synchro/hashset", Suite: "synchrobench",
		Desc: "open hash set: short transactional probes over a wide padded table",
		Build: func(ctx *Ctx) *Instance {
			table := newHashTable(ctx.M, ctx.Threads, 256, 140, false, func(k uint64) int { return int(k % 256) })
			const ops = 100
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < ops; i++ {
						key := uint64(t.Rand().Intn(1200))
						ctx.Lock.Run(t, func() {
							if _, found := table.search(t, key); !found && i%3 == 0 {
								table.insert(t, key, key)
							}
						})
						t.Compute(320)
					}
				}),
			}
		},
	})

	Register(&Workload{
		Name: "app/hle-counter", Suite: "app",
		Desc: "hardware lock elision (HLE) exercising RunHLE: elided increments over a banked counter",
		Build: func(ctx *Ctx) *Instance {
			banks := newPadded(ctx.M, 64)
			const ops = 120
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < ops; i++ {
						b := t.Rand().Intn(64)
						ctx.Lock.RunHLE(t, func() {
							t.At("bank_add")
							t.Add(banks.at(b), 1)
						})
						t.Compute(260)
					}
				}),
				Check: func(m *machine.Machine) error {
					var total mem.Word
					for i := 0; i < 64; i++ {
						total += m.Mem.Load(banks.at(i))
					}
					if total != mem.Word(ops*ctx.Threads) {
						return fmt.Errorf("hle-counter total = %d, want %d", total, ops*ctx.Threads)
					}
					return nil
				},
			}
		},
	})
}
