package htmbench

import (
	"txsampler/internal/analyzer"
	"txsampler/internal/machine"
)

// Parboil Histo (paper §8.3, Listings 3/4) and NPB UA. Histo updates a
// densely packed 256-bin histogram under HTM:
//
//   - the baseline wraps every pixel in its own transaction, so the
//     begin/end overhead T_oh dominates (>40% in the paper);
//   - "merged" coalesces txnGran pixels per transaction (Listing 4);
//   - input 1 has spatial structure: with static scheduling each
//     thread's pixels fall mostly into its own bins, so merging is
//     nearly conflict-free (2.95x in the paper);
//   - input 2 is uniformly random: merged transactions touch bins all
//     over the shared array and false-share lines with every other
//     thread (abort/commit exploded from 0.002 to 5.7 in the paper);
//   - "sorted" concentrates each thread's input-2 values (the paper
//     sorts the input array), removing the false sharing (2.91x).

const (
	histoBins     = 256
	histoPixels   = 520 // per thread
	histoGran     = 12  // pixels per merged transaction
	histoMaxCount = 255
)

type histoFlavor struct {
	name, desc string
	uniform    bool // input 2
	merged     bool
	sorted     bool
	expected   analyzer.Category
}

func registerHisto(f histoFlavor, suite string) {
	Register(&Workload{
		Name: f.name, Suite: suite, Desc: f.desc, Expected: f.expected,
		Build: func(ctx *Ctx) *Instance {
			bins := newWordArray(ctx.M, histoBins) // dense: 8 bins per line
			img := newWordArray(ctx.M, ctx.Threads*histoPixels)

			// value picks the bin for a thread's i'th pixel. Structured
			// inputs give each thread a value range aligned to whole
			// cache lines (8 bins), as a real image's spatial locality
			// plus OpenMP static scheduling produces.
			span := histoBins / ctx.Threads / 8 * 8
			if span == 0 {
				span = 8
			}
			value := func(t *machine.Thread, i int) int {
				switch {
				case !f.uniform:
					// Input 1: spatial structure — a thread's pixels
					// cluster in its own value range, unevenly
					// (quadratic skew within the range).
					r := t.Rand().Intn(span)
					return (t.ID*span + r*r/span) % histoBins
				case f.sorted:
					// Input 2 after sorting + static scheduling: each
					// thread sees a mostly concentrated range; a small
					// residue of stragglers keeps some contention, as
					// the paper observed (ratio 5.7 -> 3.7, not 0).
					if t.Rand().Intn(100) < 2 {
						return t.Rand().Intn(histoBins)
					}
					return (t.ID*span + t.Rand().Intn(span)) % histoBins
				default:
					// Input 2: uniformly random values.
					return t.Rand().Intn(histoBins)
				}
			}

			gran := 1
			if f.merged {
				gran = histoGran
			}
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					t.Func("histo_main", func() {
						for i := 0; i < histoPixels; i += gran {
							n := gran
							if n > histoPixels-i {
								n = histoPixels - i
							}
							start := i
							ctx.Lock.Run(t, func() {
								t.At("histo_loop")
								for j := 0; j < n; j++ {
									pixel := t.ID*histoPixels + start + j
									t.Load(img.at(pixel)) // img[i]
									t.Compute(20)         // pixel decode
									v := value(t, start+j)
									t.At("bin_update")
									if t.Load(bins.at(v)) < histoMaxCount {
										t.Add(bins.at(v), 1)
									}
									t.At("histo_loop")
								}
							})
						}
					})
				}),
			}
		},
	})
}

func init() {
	registerHisto(histoFlavor{
		name: "parboil/histo-1", uniform: false,
		desc:     "histogram, input 1 (skewed/spatial): one transaction per pixel — T_oh dominates",
		expected: analyzer.TypeII,
	}, "parboil")
	registerHisto(histoFlavor{
		name: "parboil/histo-2", uniform: true,
		desc:     "histogram, input 2 (uniform): one transaction per pixel — T_oh dominates",
		expected: analyzer.TypeII,
	}, "parboil")
	registerHisto(histoFlavor{
		name: "parboil/histo-1-merged", uniform: false, merged: true,
		desc: "input 1 with coalesced transactions (Listing 4): overhead gone, few conflicts",
	}, "opt")
	registerHisto(histoFlavor{
		name: "parboil/histo-2-merged", uniform: true, merged: true,
		desc: "input 2 with coalesced transactions: false sharing across threads explodes the abort rate",
	}, "opt")
	registerHisto(histoFlavor{
		name: "parboil/histo-2-sorted", uniform: true, merged: true, sorted: true,
		desc: "input 2 coalesced after sorting the input: concentrated footprints remove the false sharing",
	}, "opt")
}
