package htmbench

import (
	"fmt"

	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// The pmem suite exercises the persistent-memory tier: transactional
// updates to durable regions, modeled on persistent key-value stores
// (go-redis-pmem) and persistent append-only logs. Durable regions are
// registered with machine.PmemTrack at build time; with the pmem tier
// disabled the workloads run (and Check) identically as plain volatile
// programs.
//
// Crash-recovery soundness constraint: transactional stores inside the
// critical sections touch only thread-private durable lines, so an
// injected crash that rolls one thread's section back and re-executes
// it cannot interfere with another thread's committed durable state.

func init() {
	Register(&Workload{
		Name:  "pmem/kv",
		Suite: "pmem",
		Desc:  "per-thread durable KV shard: each put updates a value word and an update counter on one persistent line",
		Build: func(ctx *Ctx) *Instance {
			const slots = 4 // durable lines per thread shard
			const iters = 120
			shard := newPadded(ctx.M, ctx.Threads*slots)
			ctx.M.PmemTrack(shard.at(0), ctx.Threads*slots*mem.WordsPerLine)
			slot := func(tid, s int) mem.Addr { return shard.at(tid*slots + s) }
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() {
							t.Func("kv_put", func() {
								t.At("durable_update")
								a := slot(t.ID, i%slots)
								v := t.Load(a)
								t.Compute(10)
								t.Store(a, v+uint64(i)+1)
								t.Store(a.Offset(1), t.Load(a.Offset(1))+1)
							})
						})
						t.Compute(30)
					}
				}),
				Check: func(m *machine.Machine) error {
					for tid := 0; tid < ctx.Threads; tid++ {
						for s := 0; s < slots; s++ {
							var val, n uint64
							for i := s; i < iters; i += slots {
								val += uint64(i) + 1
								n++
							}
							a := slot(tid, s)
							if got := m.Mem.Load(a); got != val {
								return fmt.Errorf("kv slot t%d/%d = %d, want %d", tid, s, got, val)
							}
							if got := m.Mem.Load(a.Offset(1)); got != n {
								return fmt.Errorf("kv count t%d/%d = %d, want %d", tid, s, got, n)
							}
						}
					}
					return nil
				},
			}
		},
	})

	Register(&Workload{
		Name:  "pmem/log",
		Suite: "pmem",
		Desc:  "per-thread durable append-only log: each append writes an entry and bumps a persistent cursor (two durable lines per commit)",
		Build: func(ctx *Ctx) *Instance {
			const iters = 160
			// Entry space rounded up to whole lines so each thread's log
			// lines are private to it.
			entryLines := (iters + mem.WordsPerLine - 1) / mem.WordsPerLine
			logs := newPadded(ctx.M, ctx.Threads*entryLines)
			cursors := newPadded(ctx.M, ctx.Threads)
			ctx.M.PmemTrack(logs.at(0), ctx.Threads*entryLines*mem.WordsPerLine)
			ctx.M.PmemTrack(cursors.at(0), ctx.Threads*mem.WordsPerLine)
			logBase := func(tid int) mem.Addr { return logs.at(tid * entryLines) }
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						ctx.Lock.Run(t, func() {
							t.Func("log_append", func() {
								t.At("durable_append")
								cur := t.Load(cursors.at(t.ID))
								t.Store(logBase(t.ID).Offset(int(cur)), uint64(3*i)+uint64(t.ID)+1)
								t.Store(cursors.at(t.ID), cur+1)
							})
						})
						t.Compute(20)
					}
				}),
				Check: func(m *machine.Machine) error {
					for tid := 0; tid < ctx.Threads; tid++ {
						if got := m.Mem.Load(cursors.at(tid)); got != iters {
							return fmt.Errorf("log cursor t%d = %d, want %d", tid, got, iters)
						}
						for i := 0; i < iters; i++ {
							want := uint64(3*i) + uint64(tid) + 1
							if got := m.Mem.Load(logBase(tid).Offset(i)); got != want {
								return fmt.Errorf("log entry t%d[%d] = %d, want %d", tid, i, got, want)
							}
						}
					}
					return nil
				},
			}
		},
	})
}
