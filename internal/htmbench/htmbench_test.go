package htmbench

import (
	"sort"
	"strings"
	"testing"

	"txsampler/internal/cache"
	"txsampler/internal/htm"
	"txsampler/internal/machine"
)

// benchConfig mirrors the root package's scaled benchmark machine.
func benchConfig(threads int, seed int64) machine.Config {
	return machine.Config{
		Threads: threads,
		Cache:   cache.Config{Sets: 32, Ways: 4, HitLatency: 4, MissLatency: 60, RemoteLatency: 90},
		Seed:    seed,
	}
}

func TestRegistryNamesSortedUnique(t *testing.T) {
	names := Names()
	if len(names) < 30 {
		t.Fatalf("registry has %d workloads, want >= 30 (HTMBench is 'more than 30 programs')", len(names))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatal("Names() not sorted")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no/such-benchmark"); err == nil {
		t.Fatal("Get of unknown workload succeeded")
	}
}

func TestBySuiteCoversAllSuites(t *testing.T) {
	wantSuites := []string{"micro", "clomp", "stamp", "splash2", "parsec", "parboil", "npb", "synchrobench", "app", "rms", "hpcs", "opt"}
	for _, s := range wantSuites {
		if len(BySuite(s)) == 0 {
			t.Errorf("suite %q is empty", s)
		}
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(&Workload{Name: "micro/low-abort"})
}

func TestDefaultThreadsFourteen(t *testing.T) {
	for _, w := range All() {
		if w.DefaultThreads != 14 {
			t.Errorf("%s: default threads = %d, want 14 (the paper's core count)", w.Name, w.DefaultThreads)
		}
	}
}

// TestAllWorkloadsRunAndValidate builds and runs every registered
// workload at 4 threads, requiring clean completion and a passing
// result check where one is defined.
func TestAllWorkloadsRunAndValidate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(strings.ReplaceAll(w.Name, "/", "_"), func(t *testing.T) {
			t.Parallel()
			m := machine.New(benchConfig(4, 7))
			inst := w.BuildInstance(m, nil)
			if err := m.Run(inst.Bodies...); err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if inst.Check != nil {
				if err := inst.Check(m); err != nil {
					t.Fatalf("result check failed: %v", err)
				}
			}
			if m.Elapsed() == 0 {
				t.Fatal("workload did no work")
			}
		})
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"stamp/vacation", "parsec/dedup", "synchro/linkedlist"} {
		run := func() (uint64, uint64) {
			w, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			m := machine.New(benchConfig(6, 42))
			inst := w.BuildInstance(m, nil)
			if err := m.Run(inst.Bodies...); err != nil {
				t.Fatal(err)
			}
			return m.Elapsed(), m.GroundTruth().Commits
		}
		e1, c1 := run()
		e2, c2 := run()
		if e1 != e2 || c1 != c2 {
			t.Errorf("%s nondeterministic: (%d,%d) vs (%d,%d)", name, e1, c1, e2, c2)
		}
	}
}

func TestClompConfigsComplete(t *testing.T) {
	cfgs := ClompConfigs()
	if len(cfgs) != 6 {
		t.Fatalf("ClompConfigs = %d entries, want 6", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		name := ClompName(c)
		if seen[name] {
			t.Fatalf("duplicate clomp name %s", name)
		}
		seen[name] = true
		if _, err := Get(name); err != nil {
			t.Errorf("clomp config %s not registered", name)
		}
	}
	if !seen["clomp/small-1"] || !seen["clomp/large-3"] {
		t.Fatal("expected canonical clomp names missing")
	}
}

// TestMicroAbortCharacters verifies the §7.2 microbenchmarks produce
// their designed abort causes.
func TestMicroAbortCharacters(t *testing.T) {
	run := func(name string, threads int) machine.GroundTruth {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(benchConfig(threads, 3))
		inst := w.BuildInstance(m, nil)
		if err := m.Run(inst.Bodies...); err != nil {
			t.Fatal(err)
		}
		return m.GroundTruth()
	}

	if g := run("micro/low-abort", 4); g.Aborts[htm.Conflict] > g.Commits/20 {
		t.Errorf("low-abort: %d conflicts for %d commits", g.Aborts[htm.Conflict], g.Commits)
	}
	if g := run("micro/true-sharing", 8); g.Aborts[htm.Conflict] == 0 {
		t.Error("true-sharing produced no conflict aborts")
	}
	if g := run("micro/false-sharing", 8); g.Aborts[htm.Conflict] == 0 {
		t.Error("false-sharing produced no conflict aborts")
	}
	if g := run("micro/sync-abort", 4); g.Aborts[htm.Sync] == 0 {
		t.Error("sync-abort produced no synchronous aborts")
	}
	if g := run("micro/capacity", 2); g.Aborts[htm.Capacity] == 0 {
		t.Error("capacity produced no capacity aborts")
	}
}

// TestOptimizedVariantsWin: each Table 2 pair's optimized variant must
// beat its baseline even at 8 threads.
func TestOptimizedVariantsWin(t *testing.T) {
	pairs := [][2]string{
		{"parsec/dedup", "parsec/dedup-opt"},
		{"parsec/netdedup", "parsec/netdedup-opt"},
		{"parboil/histo-1", "parboil/histo-1-merged"},
		{"npb/ua", "npb/ua-merged"},
		{"synchro/linkedlist", "synchro/linkedlist-opt"},
		{"app/avltree", "app/avltree-opt"},
	}
	elapsed := func(name string) uint64 {
		w, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m := machine.New(benchConfig(8, 1))
		inst := w.BuildInstance(m, nil)
		if err := m.Run(inst.Bodies...); err != nil {
			t.Fatal(err)
		}
		return m.Elapsed()
	}
	for _, p := range pairs {
		base, opt := elapsed(p[0]), elapsed(p[1])
		if opt >= base {
			t.Errorf("%s (%d) not faster than %s (%d)", p[1], opt, p[0], base)
		}
	}
}
