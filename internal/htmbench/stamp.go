package htmbench

import (
	"txsampler/internal/analyzer"
	"txsampler/internal/machine"
	"txsampler/internal/rtm"
)

// STAMP-like kernels. Each reproduces the original benchmark's
// critical-section character: vacation's multi-table reservations,
// kmeans' hot cluster centers, genome's hash-set deduplication,
// labyrinth's large grid footprints, yada's region retriangulation,
// intruder's hot queue head, and ssca's well-spread adjacency updates.

func init() {
	registerVacation()
	registerKmeans()
	registerKmeansFineGrained()
	registerGenome()
	registerLabyrinth()
	registerYada()
	registerIntruder()
	registerSSCA()
}

// vacation: a travel reservation system with car/room/flight tables.
// Each transaction queries several relations and updates reservation
// counts in a narrow hot range, so aborts exceed commits (Type III).
// The optimized variant shrinks the transaction to just the updates
// (Table 2: "reduce transaction size", 1.21x).
func registerVacation() {
	build := func(reduced bool) func(ctx *Ctx) *Instance {
		return func(ctx *Ctx) *Instance {
			const relations = 3
			const hot = 64 // contended reservation records per relation
			tables := make([]padded, relations)
			for i := range tables {
				tables[i] = newPadded(ctx.M, hot)
			}
			const iters = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < iters; i++ {
						t.Func("client_run", func() {
							r := t.Rand()
							slots := [relations]int{r.Intn(hot), r.Intn(hot), r.Intn(hot)}
							// query browses six records per relation —
							// table state the reservations mutate.
							query := func() {
								t.Func("query_tables", func() {
									for rel := 0; rel < relations; rel++ {
										for q := 0; q < 2; q++ {
											t.Load(tables[rel].at(r.Intn(hot)))
											t.Compute(12)
										}
									}
								})
							}
							reserve := func() {
								t.Func("make_reservation", func() {
									for rel := 0; rel < relations; rel++ {
										t.At("reserve")
										t.Add(tables[rel].at(slots[rel]), 1)
									}
								})
							}
							if reduced {
								// Browse outside the transaction, reserve
								// inside a minimal one (Table 2: reduce
								// transaction size).
								query()
								ctx.Lock.Run(t, reserve)
							} else {
								// Original: the whole client session is
								// one transaction with a large read set.
								ctx.Lock.Run(t, func() {
									query()
									reserve()
								})
							}
							t.Compute(900) // client think time
						})
					}
				}),
			}
		}
	}
	Register(&Workload{
		Name: "stamp/vacation", Suite: "stamp",
		Desc:     "travel reservations across three relations; hot records make aborts frequent",
		Expected: analyzer.TypeIII,
		Build:    build(false),
	})
	Register(&Workload{
		Name: "stamp/vacation-opt", Suite: "opt",
		Desc:  "vacation with queries hoisted out of the transaction (Table 2: reduce transaction size)",
		Build: build(true),
	})
}

// kmeans: every thread accumulates points into K shared cluster
// centers; the centers are the classic contention hot spot.
func registerKmeans() {
	Register(&Workload{
		Name: "stamp/kmeans", Suite: "stamp",
		Desc:     "cluster-center accumulation: all threads update K hot centers",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			const k = 8
			centers := newPadded(ctx.M, k)
			counts := newPadded(ctx.M, k)
			const points = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < points; i++ {
						t.Func("assign_point", func() {
							t.Compute(600) // distance computation
							c := t.Rand().Intn(k)
							ctx.Lock.Run(t, func() {
								t.At("center_update")
								t.Add(centers.at(c), int64(i%7))
								t.Add(counts.at(c), 1)
							})
						})
					}
				}),
			}
		},
	})
}

// kmeansFineGrained demonstrates the decision tree's "use fine-grained
// locks to serialize" suggestion: one elidable lock per cluster center
// instead of the single global lock, so fallbacks of different centers
// no longer serialize against each other.
func registerKmeansFineGrained() {
	Register(&Workload{
		Name: "stamp/kmeans-finegrained", Suite: "opt",
		Desc: "kmeans with one elidable lock per center (decision-tree suggestion for high T_wait)",
		Build: func(ctx *Ctx) *Instance {
			const k = 8
			centers := newPadded(ctx.M, k)
			counts := newPadded(ctx.M, k)
			locks := make([]*rtm.Lock, k)
			for i := range locks {
				locks[i] = rtm.NewLock(ctx.M)
			}
			const points = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < points; i++ {
						t.Func("assign_point", func() {
							t.Compute(600)
							c := t.Rand().Intn(k)
							locks[c].Run(t, func() {
								t.At("center_update")
								t.Add(centers.at(c), int64(i%7))
								t.Add(counts.at(c), 1)
							})
						})
					}
				}),
			}
		},
	})
}

// genome: segment deduplication through a small shared hash set; the
// narrow bucket array keeps insertions colliding.
func registerGenome() {
	Register(&Workload{
		Name: "stamp/genome", Suite: "stamp",
		Desc:     "segment dedup into a narrow hash set: bucket collisions abort often",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			table := newHashTable(ctx.M, ctx.Threads, 24, 200, true, func(k uint64) int { return int(k % 24) })
			const segs = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < segs; i++ {
						key := uint64(t.Rand().Intn(600))
						t.Func("dedup_segment", func() {
							ctx.Lock.Run(t, func() {
								if _, found := table.search(t, key); !found {
									table.insert(t, key, 1)
								}
							})
						})
						t.Compute(420)
					}
				}),
			}
		},
	})
}

// labyrinth: path routing claims a long scattered trail of grid cells
// inside one transaction — the classic capacity-abort workload.
func registerLabyrinth() {
	Register(&Workload{
		Name: "stamp/labyrinth", Suite: "stamp",
		Desc:     "grid path claims with long scattered footprints: capacity and conflict aborts",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			const cells = 8192
			grid := newPadded(ctx.M, cells)
			const routes = 35
			const pathLen = 20
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < routes; i++ {
						t.Func("route_path", func() {
							start := t.Rand().Intn(cells)
							stride := 37 + t.Rand().Intn(61)
							ctx.Lock.Run(t, func() {
								t.At("claim_cells")
								for j := 0; j < pathLen; j++ {
									cell := (start + j*stride) % cells
									if t.Load(grid.at(cell)) == 0 {
										t.Store(grid.at(cell), uint64(t.ID)+1)
									}
								}
							})
						})
						t.Compute(800)
					}
				}),
			}
		},
	})
}

// yada: Delaunay-like region refinement — medium transactions reading
// a neighbourhood and rewriting part of it.
func registerYada() {
	Register(&Workload{
		Name: "stamp/yada", Suite: "stamp",
		Desc:     "mesh region refinement: medium read/write neighbourhoods, moderate conflicts",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			const elems = 512
			mesh := newPadded(ctx.M, elems)
			const refinements = 70
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < refinements; i++ {
						t.Func("refine", func() {
							center := t.Rand().Intn(elems)
							ctx.Lock.Run(t, func() {
								t.At("read_cavity")
								for j := 0; j < 11; j++ {
									t.Load(mesh.at((center + j) % elems))
								}
								t.At("retriangulate")
								for j := 0; j < 4; j++ {
									t.Add(mesh.at((center+j)%elems), 1)
								}
							})
							t.Compute(500)
						})
					}
				}),
			}
		},
	})
}

// intruder: packet reassembly pops work from one shared queue head —
// a single contended line — then inserts into a flow table.
func registerIntruder() {
	Register(&Workload{
		Name: "stamp/intruder", Suite: "stamp",
		Desc:     "shared work-queue head plus flow-table insertions: the queue head is a single hot line",
		Expected: analyzer.TypeIII,
		Build: func(ctx *Ctx) *Instance {
			queueHead := ctx.M.Mem.AllocLines(1)
			flows := newHashTable(ctx.M, ctx.Threads, 256, 200, false, func(k uint64) int { return int(k % 256) })
			const packets = 110
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < packets; i++ {
						var pkt uint64
						t.Func("pop_packet", func() {
							ctx.Lock.Run(t, func() {
								t.At("queue_head")
								pkt = t.Load(queueHead)
								t.Store(queueHead, pkt+1)
							})
						})
						t.Compute(450) // decode
						t.Func("insert_flow", func() {
							ctx.Lock.Run(t, func() {
								flows.insert(t, pkt%512, pkt)
							})
						})
					}
				}),
			}
		},
	})
}

// ssca (STAMP's ssca2 port): adjacency-list construction with inserts
// spread over a wide padded array — significant CS time but few
// conflicts (Type II).
func registerSSCA() {
	Register(&Workload{
		Name: "stamp/ssca", Suite: "stamp",
		Desc:     "graph adjacency construction over a wide array: hot CS, rare conflicts",
		Expected: analyzer.TypeII,
		Build: func(ctx *Ctx) *Instance {
			const nodes = 2048
			degree := newPadded(ctx.M, nodes)
			const edges = 220
			return &Instance{
				Bodies: sameBodies(ctx.Threads, func(t *machine.Thread) {
					for i := 0; i < edges; i++ {
						t.Func("add_edge", func() {
							u := t.Rand().Intn(nodes)
							ctx.Lock.Run(t, func() {
								t.At("degree_update")
								t.Add(degree.at(u), 1)
								t.Compute(18)
							})
						})
						t.Compute(300)
					}
				}),
			}
		},
	})
}
