package viewer

import (
	"strings"
	"testing"

	"txsampler/internal/telemetry"
)

// TestDataQualityClean: a fault-free report renders as clean, with the
// LBR-truncation note only when paths actually truncated.
func TestDataQualityClean(t *testing.T) {
	r := report(t)
	var b strings.Builder
	DataQuality(&b, r)
	if !strings.Contains(b.String(), "data quality: clean") {
		t.Fatalf("clean report not reported clean:\n%s", b.String())
	}
	if strings.Contains(b.String(), "truncated") {
		t.Fatalf("truncation note without truncated paths:\n%s", b.String())
	}

	r.Quality.TruncatedPaths = 3
	b.Reset()
	DataQuality(&b, r)
	if !strings.Contains(b.String(), "clean") || !strings.Contains(b.String(), "3 in-tx paths truncated") {
		t.Fatalf("truncation note missing:\n%s", b.String())
	}
}

// TestDataQualityDegraded: every degradation counter gets its own row,
// zero counters stay silent, and the headline counts only
// fault-driven events.
func TestDataQualityDegraded(t *testing.T) {
	r := report(t)
	r.Quality.Injected.SpuriousAborts = 2
	r.Quality.Injected.DroppedSamples = 5
	r.Quality.MalformedSamples = 1
	r.Quality.UnresolvedInTx = 4
	r.Quality.InconsistentState = 7
	r.Quality.TruncatedPaths = 9 // reported, but not "degradation"
	var b strings.Builder
	DataQuality(&b, r)
	out := b.String()
	if !strings.Contains(out, "DEGRADED — 19 events") {
		t.Fatalf("headline wrong (want 2+5+1+4+7=19):\n%s", out)
	}
	for _, row := range []string{
		"spurious aborts injected     2",
		"PMU samples dropped          5",
		"malformed samples            1",
		"unresolved in-tx contexts    4",
		"inconsistent state words     7",
		"truncated in-tx paths        9",
	} {
		if !strings.Contains(out, row) {
			t.Errorf("missing row %q:\n%s", row, out)
		}
	}
	if strings.Contains(out, "thread stalls") {
		t.Errorf("zero counter rendered:\n%s", out)
	}
}

// TestSelfReport: silent without telemetry, headed metric dump with
// it.
func TestSelfReport(t *testing.T) {
	r := report(t)
	var b strings.Builder
	SelfReport(&b, r)
	if b.Len() != 0 {
		t.Fatalf("self-report without telemetry:\n%s", b.String())
	}
	r.Self = []telemetry.MetricValue{
		{Name: "collector.samples", Kind: "counter", Value: 64},
		{Name: "machine.run_ops", Kind: "histogram", Count: 4, Sum: 400},
	}
	SelfReport(&b, r)
	out := b.String()
	if !strings.Contains(out, "Profiler self-report") ||
		!strings.Contains(out, "collector.samples") ||
		!strings.Contains(out, "mean=100.0") {
		t.Fatalf("self-report incomplete:\n%s", out)
	}
}

// TestRenderReportsQuality: the analyzer's own Render must surface
// degradation too — the panel is not viewer-only.
func TestRenderReportsQuality(t *testing.T) {
	r := report(t)
	r.Quality.MalformedSamples = 2
	var b strings.Builder
	r.Render(&b)
	if !strings.Contains(b.String(), "DEGRADED") {
		t.Fatalf("degradation absent from Render:\n%s", b.String())
	}
}
