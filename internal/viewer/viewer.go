// Package viewer renders profile databases for humans — the
// text-mode analogue of the paper's GUI (§6): a calling-context view
// with metric columns (Figure 9), and per-thread commit/abort
// histograms for spotting imbalance (§5's contention metrics).
package viewer

import (
	"fmt"
	"io"
	"strings"

	"txsampler/internal/analyzer"
	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
	"txsampler/internal/telemetry"
)

// TreeOptions controls the calling-context view.
type TreeOptions struct {
	// MaxDepth prunes the tree (0 = unlimited).
	MaxDepth int
	// MinShare hides contexts holding less than this share of the
	// total critical-section samples and abort weight (default 0.01).
	MinShare float64
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.MinShare == 0 {
		o.MinShare = 0.01
	}
	return o
}

// Tree writes the calling-context view: every context's share of
// critical-section time, abort weight, and capacity abort weight —
// the columns of the paper's Figure 9 screenshot.
func Tree(w io.Writer, r *analyzer.Report, opt TreeOptions) {
	opt = opt.withDefaults()
	totalT := float64(r.Totals.T)
	var totalAW float64
	for c, v := range r.Totals.AbortWeight {
		if !htm.Cause(c).Ambient() {
			totalAW += float64(v)
		}
	}
	totalCap := float64(r.Totals.CapReadW + r.Totals.CapWriteW)

	fmt.Fprintf(w, "%-64s %9s %12s %14s\n", "scope", "CS time", "abort weight", "capacity abort")
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", 102))

	var rec func(n *core.Node, depth int)
	rec = func(n *core.Node, depth int) {
		if opt.MaxDepth > 0 && depth > opt.MaxDepth {
			return
		}
		// Inclusive metrics: sum over the subtree.
		inc := subtreeMetrics(n)
		var aw float64
		for c, v := range inc.AbortWeight {
			if !htm.Cause(c).Ambient() {
				aw += float64(v)
			}
		}
		capW := float64(inc.CapReadW + inc.CapWriteW)
		tShare := share(float64(inc.T), totalT)
		awShare := share(aw, totalAW)
		capShare := share(capW, totalCap)
		if depth > 0 && tShare < opt.MinShare && awShare < opt.MinShare {
			return
		}
		label := n.Frame.String()
		if depth == 0 {
			label = "<thread root>"
		}
		fmt.Fprintf(w, "%-64s %8.1f%% %11.1f%% %13.1f%%\n",
			strings.Repeat("  ", depth)+label, 100*tShare, 100*awShare, 100*capShare)
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(r.Merged.Root, 0)
}

func share(v, total float64) float64 {
	if total == 0 {
		return 0
	}
	return v / total
}

func subtreeMetrics(n *core.Node) core.Metrics {
	m := n.Data
	for _, c := range n.Children() {
		cm := subtreeMetrics(c)
		m.Merge(&cm)
	}
	return m
}

// ContextHistogram plots one metric of one calling context across
// threads — the paper GUI's "plotting per-thread metrics on any given
// context" (§6), the view that exposes per-thread imbalance such as a
// starving thread. The context is addressed by its function path;
// metric extracts the value from the per-thread node.
func ContextHistogram(w io.Writer, r *analyzer.Report, path []lbr.IP, metricName string, metric func(*core.Metrics) uint64) {
	if r.Profiles == nil {
		fmt.Fprintln(w, "per-thread trees unavailable (profile loaded from disk)")
		return
	}
	const width = 40
	values := make([]uint64, len(r.Profiles))
	var maxV uint64 = 1
	for i, p := range r.Profiles {
		// Sum the metric over every node matching the path. A path
		// element with an empty site matches any site of that
		// function, and the value is inclusive of the subtree.
		nodes := []*core.Node{p.Tree.Root}
		for _, f := range path {
			var next []*core.Node
			for _, n := range nodes {
				for _, c := range n.Children() {
					if c.Frame.Fn == f.Fn && (f.Site == "" || c.Frame.Site == f.Site) {
						next = append(next, c)
					}
				}
			}
			nodes = next
		}
		for _, n := range nodes {
			m := subtreeMetrics(n)
			values[i] += metric(&m)
		}
		if values[i] > maxV {
			maxV = values[i]
		}
	}
	var label strings.Builder
	for i, f := range path {
		if i > 0 {
			label.WriteString(" > ")
		}
		label.WriteString(f.String())
	}
	fmt.Fprintf(w, "%s of %s across threads\n", metricName, label.String())
	for i, v := range values {
		n := int(v * width / maxV)
		fmt.Fprintf(w, "  t%02d %-8d |%-*s|\n", i, v, width, strings.Repeat("#", n))
	}
}

// DataQuality writes the degradation panel: whether the profile's
// input data was corrupted or lost (fault injection, dropped PMU
// samples, unresolvable LBRs) and by how much, so a reader knows how
// far to trust the numbers above it.
func DataQuality(w io.Writer, r *analyzer.Report) {
	q := r.Quality
	if q.Degraded() == 0 {
		fmt.Fprintf(w, "data quality: clean")
		if q.TruncatedPaths > 0 {
			fmt.Fprintf(w, " (%d in-tx paths truncated by LBR capacity)", q.TruncatedPaths)
		}
		fmt.Fprintln(w)
		return
	}
	fmt.Fprintf(w, "data quality: DEGRADED — %d events\n", q.Degraded())
	row := func(label string, v uint64) {
		if v > 0 {
			fmt.Fprintf(w, "  %-28s %d\n", label, v)
		}
	}
	row("spurious aborts injected", q.Injected.SpuriousAborts)
	row("PMU samples dropped", q.Injected.DroppedSamples)
	row("PMU samples coalesced", q.Injected.CoalescedSamples)
	row("LBRs truncated", q.Injected.TruncatedLBRs)
	row("LBRs with stale entries", q.Injected.StaleLBRs)
	row("LBR abort bits cleared", q.Injected.ClearedAbortBits)
	row("thread stalls", q.Injected.Stalls)
	row("clock-skew spikes", q.Injected.ClockSkews)
	row("malformed samples", q.MalformedSamples)
	row("unresolved in-tx contexts", q.UnresolvedInTx)
	row("inconsistent state words", q.InconsistentState)
	row("truncated in-tx paths", q.TruncatedPaths)
}

// SelfReport writes the profiler self-report: the telemetry snapshot
// of the run that produced this profile (samples ingested, LBR
// pairings, cache-conflict aborts, context-cache hit rate, per-phase
// wall time). Silent when the run had telemetry disabled.
func SelfReport(w io.Writer, r *analyzer.Report) {
	if len(r.Self) == 0 {
		return
	}
	fmt.Fprintln(w, "=== Profiler self-report ===")
	telemetry.WriteText(w, r.Self)
}

// Histogram writes the per-thread commit/abort bar chart the paper's
// GUI plots for any context — here for the whole program — so
// imbalance (e.g. a thread that always aborts the others) is visible
// at a glance.
func Histogram(w io.Writer, r *analyzer.Report) {
	const width = 40
	var maxV uint64 = 1
	for _, t := range r.PerThread {
		if t.CommitSamples > maxV {
			maxV = t.CommitSamples
		}
		if t.AbortSamples > maxV {
			maxV = t.AbortSamples
		}
	}
	bar := func(v uint64) string {
		n := int(v * width / maxV)
		return strings.Repeat("#", n)
	}
	fmt.Fprintf(w, "per-thread commit/abort samples (imbalance %.2f)\n", r.Imbalance())
	for _, t := range r.PerThread {
		fmt.Fprintf(w, "  t%02d commits %-6d |%-*s|\n", t.TID, t.CommitSamples, width, bar(t.CommitSamples))
		fmt.Fprintf(w, "      aborts  %-6d |%-*s|\n", t.AbortSamples, width, bar(t.AbortSamples))
	}
}
