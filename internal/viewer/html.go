package viewer

import (
	"fmt"
	"html/template"
	"io"

	"txsampler/internal/analyzer"
	"txsampler/internal/core"
	"txsampler/internal/decision"
	"txsampler/internal/htm"
	"txsampler/internal/pmu"
)

// htmlNode is one row of the HTML calling-context view.
type htmlNode struct {
	Depth    int
	Label    string
	TShare   float64 // % of critical-section samples (inclusive)
	AWShare  float64 // % of application abort weight (inclusive)
	CapShare float64 // % of capacity abort weight (inclusive)
}

type htmlThread struct {
	TID             int
	Commits, Aborts uint64
	CommitPct       float64 // bar width
	AbortPct        float64
}

type htmlReport struct {
	Program  string
	Threads  int
	Rcs      float64
	Tx, Fb   float64
	Wait, Oh float64
	Stm      float64
	StmRatio float64 // instrumentation overhead: stm cycles / htm cycles
	HasStm   bool
	Persist  float64 // persistence-stall share of CS time
	HasPmem  bool
	Elision  []htmlElisionSite
	RatioAC  float64
	Conflict float64
	Capacity float64
	Sync     float64
	Category string

	Nodes     []htmlNode
	PerThread []htmlThread
	Steps     []decision.Step
	Advice    []string
	Self      []htmlMetric
}

// htmlMetric is one self-report row.
type htmlMetric struct {
	Name    string
	Kind    string
	Display string
}

// htmlElisionSite is one row of the per-lock-site elision verdict
// table.
type htmlElisionSite struct {
	Site           string
	Htm, Stm, Lock uint64
	SuccessPct     float64
	Saved          uint64
	Verdict        string
}

var htmlTemplate = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>TxSampler: {{.Program}}</title>
<style>
body { font-family: ui-monospace, monospace; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.5em; }
table { border-collapse: collapse; }
td, th { padding: 2px 10px; text-align: right; }
td.scope { text-align: left; white-space: pre; }
tr:hover { background: #f3f3f3; }
.bar { display: inline-block; height: 10px; background: #4a78b8; }
.abar { background: #c0504d; }
.meta { color: #666; }
li { margin: 2px 0; }
</style></head><body>
<h1>TxSampler profile: {{.Program}} ({{.Threads}} threads)</h1>
<p class="meta">r_cs = {{printf "%.1f" .Rcs}}% &middot; in CS: tx {{printf "%.1f" .Tx}}%,
fallback {{printf "%.1f" .Fb}}%, lock-wait {{printf "%.1f" .Wait}}%, overhead {{printf "%.1f" .Oh}}%
&middot; abort/commit = {{printf "%.3f" .RatioAC}} &middot; {{.Category}}</p>
{{if .HasStm}}<p class="meta">hybrid: stm {{printf "%.1f" .Stm}}% of CS &middot;
instrumentation overhead stm/htm = {{printf "%.2f" .StmRatio}}</p>{{end}}
{{if .HasPmem}}<p class="meta">pmem: persist {{printf "%.1f" .Persist}}% of CS
(persistence stalls: flush + fence + commit record)</p>{{end}}
{{if .Elision}}<h2>Lock elision: would it win?</h2>
<table><tr><th>lock site</th><th>htm</th><th>stm</th><th>lock</th>
<th>success</th><th>saved (cycles)</th><th>verdict</th></tr>
{{range .Elision}}<tr><td class="scope">{{.Site}}</td><td>{{.Htm}}</td><td>{{.Stm}}</td>
<td>{{.Lock}}</td><td>{{printf "%.1f" .SuccessPct}}%</td><td>{{.Saved}}</td><td>{{.Verdict}}</td></tr>
{{end}}</table>{{end}}
<p class="meta">abort weight: conflict {{printf "%.1f" .Conflict}}%,
capacity {{printf "%.1f" .Capacity}}%, sync {{printf "%.1f" .Sync}}%</p>

<h2>Calling context view</h2>
<table><tr><th>scope</th><th>CS time</th><th>abort weight</th><th>capacity</th></tr>
{{range .Nodes}}<tr><td class="scope">{{.Label}}</td>
<td>{{printf "%.1f" .TShare}}%</td><td>{{printf "%.1f" .AWShare}}%</td>
<td>{{printf "%.1f" .CapShare}}%</td></tr>
{{end}}</table>

<h2>Per-thread commits / aborts (sampled)</h2>
<table>{{range .PerThread}}<tr><td>t{{.TID}}</td>
<td>{{.Commits}}</td><td><span class="bar" style="width:{{printf "%.0f" .CommitPct}}px"></span></td>
<td>{{.Aborts}}</td><td><span class="bar abar" style="width:{{printf "%.0f" .AbortPct}}px"></span></td></tr>
{{end}}</table>

<h2>Decision tree walk (Figure 1)</h2>
<ol>{{range .Steps}}<li>({{.ID}}) <b>{{.Node}}</b> — {{.Finding}}</li>{{end}}</ol>
<h2>Suggestions</h2>
<ul>{{range .Advice}}<li>{{.}}</li>{{end}}</ul>
{{if .Self}}<h2>Profiler self-report</h2>
<table><tr><th>metric</th><th>kind</th><th>value</th></tr>
{{range .Self}}<tr><td class="scope">{{.Name}}</td><td>{{.Kind}}</td><td>{{.Display}}</td></tr>
{{end}}</table>{{end}}
</body></html>
`))

// HTML renders a standalone HTML report for a profile: the
// calling-context view, the per-thread histogram, and the decision
// tree's advice — the paper's GUI deliverable as a single file.
func HTML(w io.Writer, r *analyzer.Report, advice *decision.Advice, opt TreeOptions) error {
	opt = opt.withDefaults()
	data := &htmlReport{
		Program:  r.Program,
		Threads:  r.Threads,
		Rcs:      100 * r.Rcs(),
		RatioAC:  r.AbortCommitRatio(),
		Conflict: 100 * r.CauseShare(htm.Conflict),
		Capacity: 100 * r.CauseShare(htm.Capacity),
		Sync:     100 * r.CauseShare(htm.Sync),
		Category: r.Categorize().String(),
	}
	tx, stm, fb, wait, oh, persist := r.TimeShares()
	data.Tx, data.Fb, data.Wait, data.Oh = 100*tx, 100*fb, 100*wait, 100*oh
	if r.Totals.Tstm > 0 {
		data.HasStm = true
		data.Stm = 100 * stm
		data.StmRatio = r.StmOverhead()
	}
	if r.Totals.Tpersist > 0 {
		data.HasPmem = true
		data.Persist = 100 * persist
	}
	for _, s := range r.ElisionSites() {
		data.Elision = append(data.Elision, htmlElisionSite{
			Site: s.Site, Htm: s.Htm, Stm: s.Stm, Lock: s.Lock,
			SuccessPct: 100 * s.SuccessRate(),
			Saved:      s.SavedCycles(r.Periods[pmu.Cycles]),
			Verdict:    s.Verdict(),
		})
	}

	totalT := float64(r.Totals.T)
	var totalAW float64
	for c, v := range r.Totals.AbortWeight {
		if !htm.Cause(c).Ambient() {
			totalAW += float64(v)
		}
	}
	totalCap := float64(r.Totals.CapReadW + r.Totals.CapWriteW)
	var rec func(n *core.Node, depth int)
	rec = func(n *core.Node, depth int) {
		if opt.MaxDepth > 0 && depth > opt.MaxDepth {
			return
		}
		inc := subtreeMetrics(n)
		var aw float64
		for c, v := range inc.AbortWeight {
			if !htm.Cause(c).Ambient() {
				aw += float64(v)
			}
		}
		tShare := share(float64(inc.T), totalT)
		awShare := share(aw, totalAW)
		if depth > 0 && tShare < opt.MinShare && awShare < opt.MinShare {
			return
		}
		label := n.Frame.String()
		if depth == 0 {
			label = "<thread root>"
		}
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		data.Nodes = append(data.Nodes, htmlNode{
			Depth: depth, Label: indent + label,
			TShare:   100 * tShare,
			AWShare:  100 * awShare,
			CapShare: 100 * share(float64(inc.CapReadW+inc.CapWriteW), totalCap),
		})
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(r.Merged.Root, 0)

	var maxN uint64 = 1
	for _, t := range r.PerThread {
		if t.CommitSamples > maxN {
			maxN = t.CommitSamples
		}
		if t.AbortSamples > maxN {
			maxN = t.AbortSamples
		}
	}
	for _, t := range r.PerThread {
		data.PerThread = append(data.PerThread, htmlThread{
			TID: t.TID, Commits: t.CommitSamples, Aborts: t.AbortSamples,
			CommitPct: 200 * float64(t.CommitSamples) / float64(maxN),
			AbortPct:  200 * float64(t.AbortSamples) / float64(maxN),
		})
	}
	if advice != nil {
		data.Steps = advice.Steps
		data.Advice = advice.Suggestions
	}
	for _, mv := range r.Self {
		var display string
		if mv.Kind == "histogram" {
			mean := float64(0)
			if mv.Count > 0 {
				mean = float64(mv.Sum) / float64(mv.Count)
			}
			display = fmt.Sprintf("count=%d sum=%d mean=%.1f", mv.Count, mv.Sum, mean)
		} else {
			display = fmt.Sprintf("%d", mv.Value)
		}
		data.Self = append(data.Self, htmlMetric{Name: mv.Name, Kind: mv.Kind, Display: display})
	}
	if err := htmlTemplate.Execute(w, data); err != nil {
		return fmt.Errorf("viewer: %w", err)
	}
	return nil
}
