package viewer

import (
	"strings"
	"testing"

	"txsampler/internal/analyzer"
	"txsampler/internal/core"
	"txsampler/internal/decision"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

func report(t *testing.T) *analyzer.Report {
	t.Helper()
	c := core.NewCollector(2, pmu.DefaultPeriods(), 0)
	mk := func(tid int, ev pmu.Event, inTx bool, fns ...string) *machine.Sample {
		stack := make([]lbr.IP, len(fns))
		for i, f := range fns {
			stack[i] = lbr.IP{Fn: f}
		}
		s := &machine.Sample{Event: ev, TID: tid, State: rtm.InCS, Stack: stack, IP: stack[len(stack)-1]}
		if inTx {
			s.LBR = []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}}
		}
		return s
	}
	for i := 0; i < 50; i++ {
		c.HandleSample(mk(0, pmu.Cycles, true, "main", "hashtable_search"))
	}
	for i := 0; i < 5; i++ {
		c.HandleSample(mk(1, pmu.Cycles, true, "main", "minor"))
	}
	s := mk(0, pmu.TxAbort, true, "main", "hashtable_search")
	s.Abort = &machine.AbortInfo{Cause: htm.Capacity, CapKind: htm.CapacityRead, Weight: 500, AbortedBy: -1}
	c.HandleSample(s)
	for i := 0; i < 8; i++ {
		c.HandleSample(mk(0, pmu.TxCommit, false, "main"))
	}
	c.HandleSample(mk(1, pmu.TxCommit, false, "main"))
	return analyzer.Analyze("view/test", c)
}

func TestTreeShowsHotContextWithShares(t *testing.T) {
	var b strings.Builder
	Tree(&b, report(t), TreeOptions{})
	out := b.String()
	if !strings.Contains(out, "hashtable_search") {
		t.Fatalf("hot context missing:\n%s", out)
	}
	if !strings.Contains(out, "begin_in_tx") {
		t.Fatalf("pseudo node missing:\n%s", out)
	}
	if !strings.Contains(out, "abort weight") || !strings.Contains(out, "capacity abort") {
		t.Fatalf("metric columns missing:\n%s", out)
	}
	// The root row accounts for 100% of CS time.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "<thread root>") && !strings.Contains(line, "100.0%") {
			t.Fatalf("root row lacks 100%% share: %q", line)
		}
	}
}

func TestTreeMinShareHidesNoise(t *testing.T) {
	var loose, tight strings.Builder
	Tree(&loose, report(t), TreeOptions{MinShare: 0.001})
	Tree(&tight, report(t), TreeOptions{MinShare: 0.5})
	if !strings.Contains(loose.String(), "minor") {
		t.Fatal("low threshold should show the minor context")
	}
	if strings.Contains(tight.String(), "minor") {
		t.Fatal("high threshold should hide the minor context")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	var b strings.Builder
	Tree(&b, report(t), TreeOptions{MaxDepth: 1})
	if strings.Contains(b.String(), "hashtable_search") {
		t.Fatal("depth-limited tree leaked a deep context")
	}
	if !strings.Contains(b.String(), "main") {
		t.Fatal("depth-1 context missing")
	}
}

func TestHistogramShowsImbalance(t *testing.T) {
	var b strings.Builder
	Histogram(&b, report(t))
	out := b.String()
	if !strings.Contains(out, "t00") || !strings.Contains(out, "t01") {
		t.Fatalf("missing thread rows:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars drawn:\n%s", out)
	}
	if !strings.Contains(out, "imbalance") {
		t.Fatalf("imbalance header missing:\n%s", out)
	}
}

func TestHistogramEmptyReport(t *testing.T) {
	r := &analyzer.Report{Program: "empty"}
	var b strings.Builder
	Histogram(&b, r) // must not panic or divide by zero
	if !strings.Contains(b.String(), "per-thread") {
		t.Fatal("no output for empty report")
	}
}

func TestContextHistogram(t *testing.T) {
	r := report(t)
	var b strings.Builder
	path := []lbr.IP{{Fn: "thread_root"}}
	ContextHistogram(&b, r, path, "T", func(m *core.Metrics) uint64 { return m.T })
	out := b.String()
	if !strings.Contains(out, "T of thread_root across threads") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "t00") || !strings.Contains(out, "t01") {
		t.Fatalf("thread rows missing:\n%s", out)
	}
}

func TestContextHistogramUnknownPath(t *testing.T) {
	r := report(t)
	var b strings.Builder
	ContextHistogram(&b, r, []lbr.IP{{Fn: "nope"}}, "T", func(m *core.Metrics) uint64 { return m.T })
	if !strings.Contains(b.String(), "t00 0") {
		t.Fatalf("unknown path should plot zeros:\n%s", b.String())
	}
}

func TestContextHistogramLoadedProfile(t *testing.T) {
	r := &analyzer.Report{Program: "loaded"} // no Profiles
	var b strings.Builder
	ContextHistogram(&b, r, nil, "T", func(m *core.Metrics) uint64 { return m.T })
	if !strings.Contains(b.String(), "unavailable") {
		t.Fatal("missing unavailable notice")
	}
}

func TestHTMLReport(t *testing.T) {
	r := report(t)
	adv := decision.Evaluate(r, decision.Thresholds{})
	var b strings.Builder
	if err := HTML(&b, r, adv, TreeOptions{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "view/test", "hashtable_search",
		"Decision tree walk", "Per-thread", "abort weight",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
}

func TestHTMLNilAdvice(t *testing.T) {
	var b strings.Builder
	if err := HTML(&b, report(t), nil, TreeOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Calling context view") {
		t.Fatal("tree section missing")
	}
}

func TestHTMLEscapesUntrustedNames(t *testing.T) {
	c := core.NewCollector(1, pmu.DefaultPeriods(), 0)
	c.HandleSample(&machine.Sample{
		Event: pmu.Cycles, State: rtm.InCS,
		Stack: []lbr.IP{{Fn: "<script>alert(1)</script>"}},
		IP:    lbr.IP{Fn: "<script>alert(1)</script>"},
	})
	r := analyzer.Analyze("<b>evil</b>", c)
	var b strings.Builder
	if err := HTML(&b, r, nil, TreeOptions{MinShare: 0.0001}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, "<script>") {
		t.Fatal("unescaped script tag in HTML output")
	}
	if strings.Contains(out, "<b>evil</b>") {
		t.Fatal("unescaped program name")
	}
}
