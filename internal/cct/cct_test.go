package cct

import (
	"reflect"
	"testing"
	"testing/quick"

	"txsampler/internal/lbr"
)

type metric struct{ n int }

func fn(name string) lbr.IP { return lbr.IP{Fn: name} }

func TestPathCreatesAndReuses(t *testing.T) {
	tr := NewTree[metric]()
	a := tr.Path([]lbr.IP{fn("main"), fn("f")})
	b := tr.Path([]lbr.IP{fn("main"), fn("f")})
	if a != b {
		t.Fatal("same path produced different nodes")
	}
	c := tr.Path([]lbr.IP{fn("main"), fn("g")})
	if c == a {
		t.Fatal("different paths shared a node")
	}
	if tr.Size() != 4 { // root, main, f, g
		t.Fatalf("Size = %d, want 4", tr.Size())
	}
}

func TestFramesRoundTrip(t *testing.T) {
	tr := NewTree[metric]()
	frames := []lbr.IP{fn("main"), {Fn: "f", Site: "12"}, fn("g")}
	n := tr.Path(frames)
	if got := n.Frames(); !reflect.DeepEqual(got, frames) {
		t.Fatalf("Frames() = %v, want %v", got, frames)
	}
}

func TestChildrenSorted(t *testing.T) {
	tr := NewTree[metric]()
	tr.Path([]lbr.IP{fn("zeta")})
	tr.Path([]lbr.IP{fn("alpha")})
	tr.Path([]lbr.IP{{Fn: "alpha", Site: "9"}})
	kids := tr.Root.Children()
	if len(kids) != 3 {
		t.Fatalf("children = %d, want 3", len(kids))
	}
	if kids[0].Frame.Fn != "alpha" || kids[0].Frame.Site != "" || kids[1].Frame.Site != "9" || kids[2].Frame.Fn != "zeta" {
		t.Fatalf("order wrong: %v %v %v", kids[0].Frame, kids[1].Frame, kids[2].Frame)
	}
}

func TestMergeCombines(t *testing.T) {
	a := NewTree[metric]()
	a.Path([]lbr.IP{fn("main"), fn("f")}).Data.n = 3
	a.Path([]lbr.IP{fn("main")}).Data.n = 1
	b := NewTree[metric]()
	b.Path([]lbr.IP{fn("main"), fn("f")}).Data.n = 4
	b.Path([]lbr.IP{fn("main"), fn("g")}).Data.n = 5
	a.Merge(b, func(dst, src *metric) { dst.n += src.n })
	if got := a.Path([]lbr.IP{fn("main"), fn("f")}).Data.n; got != 7 {
		t.Errorf("f = %d, want 7", got)
	}
	if got := a.Path([]lbr.IP{fn("main"), fn("g")}).Data.n; got != 5 {
		t.Errorf("g = %d, want 5", got)
	}
	if got := a.Path([]lbr.IP{fn("main")}).Data.n; got != 1 {
		t.Errorf("main = %d, want 1", got)
	}
}

func TestWalkPreorderDeterministic(t *testing.T) {
	tr := NewTree[metric]()
	tr.Path([]lbr.IP{fn("b"), fn("x")})
	tr.Path([]lbr.IP{fn("a")})
	var order []string
	tr.Walk(func(n *Node[metric], d int) { order = append(order, n.Frame.Fn) })
	want := []string{"<root>", "a", "b", "x"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("walk order = %v, want %v", order, want)
	}
}

// --- InTxPath: the Figure 3 reconstruction ---

func call(from, to string, inTx bool) lbr.Entry {
	return lbr.Entry{Kind: lbr.KindCall, From: lbr.IP{Fn: from}, To: lbr.IP{Fn: to}, InTSX: inTx}
}
func ret(from, to string, inTx bool) lbr.Entry {
	return lbr.Entry{Kind: lbr.KindReturn, From: lbr.IP{Fn: from}, To: lbr.IP{Fn: to}, InTSX: inTx}
}
func abortEntry() lbr.Entry {
	return lbr.Entry{Kind: lbr.KindAbort, Abort: true, InTSX: true}
}

// TestPaperFigure3 reproduces the paper's example: inside a
// transaction, A calls B, B calls D (returns), D returns, A calls C,
// C calls D, and the sample lands in D. The LBR (most recent first)
// is: interrupt/abort, call D, call C, B return, D return, call D,
// call B, call A(not in tx).
func TestPaperFigure3(t *testing.T) {
	snapshot := []lbr.Entry{
		abortEntry(),             // 0: triggering interrupt
		call("C", "D", true),     // 1
		call("A", "C", true),     // 2
		ret("B", "A", true),      // 3
		ret("D", "B", true),      // 4
		call("B", "D", true),     // 5
		call("A", "B", true),     // 6
		call("main", "A", false), // 7: before the transaction
	}
	path, truncated := InTxPath(snapshot)
	want := []lbr.IP{fn("C"), fn("D")}
	if !reflect.DeepEqual(path, want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	if truncated {
		t.Fatal("window reached the non-TSX boundary: must not report truncation")
	}
	full := Concat([]lbr.IP{fn("main"), fn("A")}, path)
	wantFull := []lbr.IP{fn("main"), fn("A"), fn("C"), fn("D")}
	if !reflect.DeepEqual(full, wantFull) {
		t.Fatalf("full context = %v, want %v", full, wantFull)
	}
}

func TestInTxPathTruncatedByWindow(t *testing.T) {
	// Entire buffer is in-TSX entries: the oldest call may be lost.
	snapshot := []lbr.Entry{
		abortEntry(),
		call("Y", "Z", true),
		call("X", "Y", true),
	}
	path, truncated := InTxPath(snapshot)
	if !truncated {
		t.Fatal("full in-TSX buffer must report truncation")
	}
	want := []lbr.IP{fn("Y"), fn("Z")}
	if !reflect.DeepEqual(path, want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
}

func TestInTxPathUnmatchedReturn(t *testing.T) {
	// A return whose call scrolled out of the window.
	snapshot := []lbr.Entry{
		abortEntry(),
		call("A", "E", true),
		ret("Q", "A", true),
		call("main", "A", false),
	}
	path, truncated := InTxPath(snapshot)
	if !truncated {
		t.Fatal("unmatched return must report truncation")
	}
	if !reflect.DeepEqual(path, []lbr.IP{fn("E")}) {
		t.Fatalf("path = %v", path)
	}
}

func TestInTxPathStopsAtPriorAbort(t *testing.T) {
	// Entries from a previous aborted transaction must not leak into
	// the current reconstruction.
	snapshot := []lbr.Entry{
		abortEntry(),           // current sample
		call("A", "B", true),   // current tx
		abortEntry(),           // previous tx's abort branch
		call("A", "OLD", true), // previous tx
	}
	path, _ := InTxPath(snapshot)
	if !reflect.DeepEqual(path, []lbr.IP{fn("B")}) {
		t.Fatalf("path = %v, want [B]", path)
	}
}

func TestInTxPathBalancedCallsLeaveEmptyPath(t *testing.T) {
	// Sample at transaction top level after a call that returned.
	snapshot := []lbr.Entry{
		abortEntry(),
		ret("F", "A", true),
		call("A", "F", true),
		call("main", "A", false),
	}
	path, truncated := InTxPath(snapshot)
	if len(path) != 0 || truncated {
		t.Fatalf("path = %v truncated=%v, want empty/false", path, truncated)
	}
}

func TestInTxPathEmptySnapshot(t *testing.T) {
	path, truncated := InTxPath(nil)
	if path != nil || !truncated {
		t.Fatalf("nil snapshot: path=%v truncated=%v", path, truncated)
	}
}

func TestInTxPathNoTxEntries(t *testing.T) {
	snapshot := []lbr.Entry{
		{Kind: lbr.KindInterrupt},
		call("main", "A", false),
	}
	path, truncated := InTxPath(snapshot)
	if len(path) != 0 || truncated {
		t.Fatalf("non-tx snapshot: path=%v truncated=%v", path, truncated)
	}
}

// Property: replaying any randomly generated balanced call/return
// prefix inside a transaction reconstructs exactly the open frames,
// provided the window holds all entries plus the pre-tx boundary.
func TestQuickReconstructionMatchesSimulatedStack(t *testing.T) {
	f := func(script []uint8) bool {
		var entries []lbr.Entry // oldest first
		var stack []string
		next := 0
		for _, b := range script[:min(len(script), 10)] {
			if b%3 == 0 && len(stack) > 0 {
				from := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				to := "root"
				if len(stack) > 0 {
					to = stack[len(stack)-1]
				}
				entries = append(entries, ret(from, to, true))
			} else {
				from := "root"
				if len(stack) > 0 {
					from = stack[len(stack)-1]
				}
				name := string(rune('a' + next))
				next++
				entries = append(entries, call(from, name, true))
				stack = append(stack, name)
			}
		}
		// Build snapshot: most recent first, with the triggering abort
		// on top and a non-TSX boundary at the bottom.
		snapshot := []lbr.Entry{abortEntry()}
		for i := len(entries) - 1; i >= 0; i-- {
			snapshot = append(snapshot, entries[i])
		}
		snapshot = append(snapshot, call("main", "root", false))
		path, truncated := InTxPath(snapshot)
		if truncated {
			return false
		}
		if len(path) != len(stack) {
			return false
		}
		for i := range path {
			if path[i].Fn != stack[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: InTxPath never panics and returns only frames that appear
// as call targets, for arbitrary (even malformed) snapshots.
func TestQuickInTxPathRobustness(t *testing.T) {
	f := func(raw []byte) bool {
		var snapshot []lbr.Entry
		for i := 0; i+2 < len(raw); i += 3 {
			e := lbr.Entry{
				Kind:  lbr.Kind(raw[i] % 4),
				From:  lbr.IP{Fn: string(rune('a' + raw[i+1]%6))},
				To:    lbr.IP{Fn: string(rune('a' + raw[i+2]%6))},
				Abort: raw[i]%5 == 0,
				InTSX: raw[i]%3 != 0,
			}
			snapshot = append(snapshot, e)
		}
		path, _ := InTxPath(snapshot)
		targets := map[string]bool{}
		for _, e := range snapshot {
			if e.Kind == lbr.KindCall {
				targets[e.To.Fn] = true
			}
		}
		for _, f := range path {
			if !targets[f.Fn] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is order-insensitive for totals — merging A into B
// and B into A yields the same per-node sums.
func TestQuickMergeCommutesOnTotals(t *testing.T) {
	build := func(seeds []uint8) *Tree[metric] {
		tr := NewTree[metric]()
		for _, s := range seeds {
			frames := []lbr.IP{fn(string(rune('a' + s%4)))}
			if s%2 == 0 {
				frames = append(frames, fn(string(rune('p'+s%3))))
			}
			tr.Path(frames).Data.n += int(s)
		}
		return tr
	}
	sum := func(tr *Tree[metric]) int {
		total := 0
		tr.Walk(func(n *Node[metric], _ int) { total += n.Data.n })
		return total
	}
	f := func(a, b []uint8) bool {
		t1, t2 := build(a), build(b)
		t3, t4 := build(b), build(a)
		t1.Merge(t2, func(d, s *metric) { d.n += s.n })
		t3.Merge(t4, func(d, s *metric) { d.n += s.n })
		return sum(t1) == sum(t3) && t1.Size() == t3.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
