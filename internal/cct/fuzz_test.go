package cct

import (
	"fmt"
	"testing"

	"txsampler/internal/lbr"
)

// decodeEntries maps an arbitrary byte string onto an LBR snapshot:
// two bytes per entry — a kind/flag byte and a function id. The
// decoder can express every pairing shape the machine produces
// (calls, returns, abort/interrupt boundaries, non-TSX entries) plus
// malformed ones it never does.
func decodeEntries(data []byte) []lbr.Entry {
	var out []lbr.Entry
	for i := 0; i+1 < len(data); i += 2 {
		k := data[i]
		fn := fmt.Sprintf("fn%d", data[i+1]%16)
		out = append(out, lbr.Entry{
			Kind:  lbr.Kind(k % 4),
			From:  lbr.IP{Fn: fn},
			To:    lbr.IP{Fn: fn, Site: "s"},
			Abort: k&4 != 0,
			InTSX: k&8 != 0,
		})
	}
	return out
}

// FuzzInTxPath hardens the §3.4 LBR pairing against arbitrary
// snapshots: reconstruction must never panic, must be deterministic,
// and every reconstructed frame must come from a call entry's target
// inside the current transaction's window.
func FuzzInTxPath(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x08, 1, 0x08, 2})          // two in-TSX calls
	f.Add([]byte{0x09, 1, 0x08, 2})          // in-TSX return above window
	f.Add([]byte{0x06, 0, 0x08, 1, 0x08, 2}) // abort boundary first
	f.Add([]byte{0x08, 1, 0x03, 0, 0x08, 2}) // interrupt splits the run
	f.Add([]byte{0x00, 1, 0x08, 2})          // non-TSX call stops the scan
	f.Add([]byte{0x08, 1, 0x09, 1, 0x08, 1}) // call-return-call
	f.Add([]byte{0x0b, 0, 0x08, 1, 0x09, 2}) // interrupt+in-TSX marker first

	f.Fuzz(func(t *testing.T, data []byte) {
		snap := decodeEntries(data)
		path, truncated := InTxPath(snap)
		path2, truncated2 := InTxPath(snap)
		if truncated != truncated2 || len(path) != len(path2) {
			t.Fatal("InTxPath is not deterministic")
		}
		for i := range path {
			if path[i] != path2[i] {
				t.Fatal("InTxPath is not deterministic")
			}
		}
		// Every open frame must be the target of some in-TSX call
		// entry of the snapshot, and there can be at most one open
		// frame per call entry.
		calls := make(map[lbr.IP]int)
		n := 0
		for _, e := range snap {
			if e.Kind == lbr.KindCall && e.InTSX {
				calls[e.To]++
				n++
			}
		}
		if len(path) > n {
			t.Fatalf("%d open frames from %d in-TSX calls", len(path), n)
		}
		used := make(map[lbr.IP]int)
		for _, ip := range path {
			used[ip]++
			if used[ip] > calls[ip] {
				t.Fatalf("frame %v appears %d times but was called %d times in-TSX", ip, used[ip], calls[ip])
			}
		}
		// Concat must preserve both parts in order.
		full := Concat([]lbr.IP{{Fn: "root"}}, path)
		if len(full) != 1+len(path) || full[0].Fn != "root" {
			t.Fatalf("Concat mangled the path: %v", full)
		}
	})
}
