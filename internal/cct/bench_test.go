package cct

import (
	"fmt"
	"testing"

	"txsampler/internal/lbr"
)

func BenchmarkPathLookup(b *testing.B) {
	tr := NewTree[int]()
	frames := []lbr.IP{{Fn: "main"}, {Fn: "a"}, {Fn: "b"}, {Fn: "c", Site: "42"}}
	tr.Path(frames)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Path(frames)
	}
}

func BenchmarkInTxPathReconstruction(b *testing.B) {
	snapshot := []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}}
	for i := 0; i < 12; i++ {
		snapshot = append(snapshot, lbr.Entry{
			Kind: lbr.KindCall, From: lbr.IP{Fn: fmt.Sprint(i)}, To: lbr.IP{Fn: fmt.Sprint(i + 1)}, InTSX: true,
		})
	}
	snapshot = append(snapshot, lbr.Entry{Kind: lbr.KindCall, From: lbr.IP{Fn: "main"}, To: lbr.IP{Fn: "0"}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InTxPath(snapshot)
	}
}

func BenchmarkMergeWideTrees(b *testing.B) {
	build := func() *Tree[int] {
		tr := NewTree[int]()
		for i := 0; i < 200; i++ {
			tr.Path([]lbr.IP{{Fn: fmt.Sprint(i % 20)}, {Fn: fmt.Sprint(i)}}).Data = i
		}
		return tr
	}
	src := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := build()
		dst.Merge(src, func(d, s *int) { *d += *s })
	}
}
