// Package cct provides the calling context tree the profiler
// attributes metrics to, and the paper's Figure 3 algorithm for
// reconstructing the call-path suffix that executed inside a hardware
// transaction from an LBR snapshot.
//
// A context is a path of frames from the thread root; each node holds
// caller-supplied metric data. The tree is generic over the metric
// type so the profiler and the analyzer can use their own structures.
package cct

import (
	"sort"

	"txsampler/internal/lbr"
)

// Node is one calling context. Data is the per-context metric payload.
type Node[M any] struct {
	Frame    lbr.IP
	Parent   *Node[M]
	children map[lbr.IP]*Node[M]
	Data     M
}

// Tree is a calling context tree rooted at a synthetic node.
type Tree[M any] struct {
	Root *Node[M]
}

// NewTree returns an empty tree with a "<root>" node.
func NewTree[M any]() *Tree[M] {
	return &Tree[M]{Root: &Node[M]{Frame: lbr.IP{Fn: "<root>"}}}
}

// Child returns the child of n for frame f, creating it if needed.
func (n *Node[M]) Child(f lbr.IP) *Node[M] {
	if n.children == nil {
		n.children = make(map[lbr.IP]*Node[M])
	}
	c := n.children[f]
	if c == nil {
		c = &Node[M]{Frame: f, Parent: n}
		n.children[f] = c
	}
	return c
}

// Lookup returns the child for frame f, or nil.
func (n *Node[M]) Lookup(f lbr.IP) *Node[M] {
	return n.children[f]
}

// Children returns the node's children sorted by frame for stable
// iteration.
func (n *Node[M]) Children() []*Node[M] {
	out := make([]*Node[M], 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Frame, out[j].Frame
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.Site < b.Site
	})
	return out
}

// Path walks (creating as needed) the context for the given frames and
// returns its node.
func (t *Tree[M]) Path(frames []lbr.IP) *Node[M] {
	n := t.Root
	for _, f := range frames {
		n = n.Child(f)
	}
	return n
}

// Frames returns the path from the root (exclusive) to n.
func (n *Node[M]) Frames() []lbr.IP {
	var rev []lbr.IP
	for c := n; c.Parent != nil; c = c.Parent {
		rev = append(rev, c.Frame)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Walk visits every node in depth-first preorder with its depth
// (root = 0), in deterministic child order.
func (t *Tree[M]) Walk(visit func(n *Node[M], depth int)) {
	var rec func(n *Node[M], d int)
	rec = func(n *Node[M], d int) {
		visit(n, d)
		for _, c := range n.Children() {
			rec(c, d+1)
		}
	}
	rec(t.Root, 0)
}

// Merge folds src into t, combining metric payloads of matching
// contexts with combine(dst, src). It implements the analyzer's
// cross-thread profile coalescing (paper §6).
func (t *Tree[M]) Merge(src *Tree[M], combine func(dst *M, src *M)) {
	var rec func(dst, s *Node[M])
	rec = func(dst, s *Node[M]) {
		combine(&dst.Data, &s.Data)
		for _, sc := range s.Children() {
			rec(dst.Child(sc.Frame), sc)
		}
	}
	rec(t.Root, src.Root)
}

// Size returns the number of nodes, root included.
func (t *Tree[M]) Size() int {
	n := 0
	t.Walk(func(*Node[M], int) { n++ })
	return n
}

// InTxPath reconstructs the call-path suffix executed inside the
// current transaction from an LBR snapshot (most recent first, as
// returned by lbr.Buffer.Snapshot). It implements the paper's §3.4
// pairing: the in-transaction call and return entries are replayed
// oldest-to-newest to rebuild the frames still open at the sample
// point. The scan stops at the previous transaction's abort branch or
// interrupt marker, so stale in-TSX entries from earlier transactions
// are not mixed in.
//
// truncated reports that the LBR window did not reach back to the
// transaction start (an unmatched return was seen, or the buffer was
// full of in-TSX entries), so path is only a suffix of the true
// in-transaction context — the concatenation may miss a prefix
// (paper §3.4, last sentence).
func InTxPath(snapshot []lbr.Entry) (path []lbr.IP, truncated bool) {
	// Collect the contiguous run of in-TSX call/return entries that
	// belong to the current transaction, skipping the triggering
	// entry (abort or interrupt) at index 0 if present.
	start := 0
	if len(snapshot) > 0 && (snapshot[0].Kind == lbr.KindAbort || snapshot[0].Kind == lbr.KindInterrupt) {
		start = 1
	}
	var run []lbr.Entry // most recent first
	for i := start; i < len(snapshot); i++ {
		e := snapshot[i]
		if e.Kind == lbr.KindAbort || e.Kind == lbr.KindInterrupt {
			break // boundary of an earlier transaction or sample
		}
		if !e.InTSX {
			break // left the current transaction's window
		}
		run = append(run, e)
	}
	if len(run) == 0 {
		return nil, len(snapshot) == 0
	}
	// The run may occupy the whole buffer, in which case older in-TSX
	// entries may have been overwritten.
	if start+len(run) == len(snapshot) {
		truncated = true
	}
	// Replay oldest -> newest.
	var stack []lbr.IP
	for i := len(run) - 1; i >= 0; i-- {
		e := run[i]
		switch e.Kind {
		case lbr.KindCall:
			stack = append(stack, e.To)
		case lbr.KindReturn:
			if len(stack) == 0 {
				// Return above the visible window: its call scrolled
				// out of the LBR.
				truncated = true
			} else {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return stack, truncated
}

// Concat joins the unwound stack prefix (which reaches the transaction
// begin) with the LBR-reconstructed in-transaction suffix, the
// profiler's full-context construction of Figure 3(c).
func Concat(unwound, inTx []lbr.IP) []lbr.IP {
	out := make([]lbr.IP, 0, len(unwound)+len(inTx))
	out = append(out, unwound...)
	out = append(out, inTx...)
	return out
}
