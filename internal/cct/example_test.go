package cct_test

import (
	"fmt"

	"txsampler/internal/cct"
	"txsampler/internal/lbr"
)

// ExampleInTxPath reproduces the paper's Figure 3: a sample lands in D
// inside a transaction after the call history A→B→D, returns, A→C→D.
// Stack unwinding only reaches the transaction begin (main→A); the LBR
// pairing recovers C→D, so the concatenated context disambiguates D's
// caller.
func ExampleInTxPath() {
	snapshot := []lbr.Entry{
		{Kind: lbr.KindAbort, Abort: true, InTSX: true},
		{Kind: lbr.KindCall, From: lbr.IP{Fn: "C"}, To: lbr.IP{Fn: "D"}, InTSX: true},
		{Kind: lbr.KindCall, From: lbr.IP{Fn: "A"}, To: lbr.IP{Fn: "C"}, InTSX: true},
		{Kind: lbr.KindReturn, From: lbr.IP{Fn: "B"}, To: lbr.IP{Fn: "A"}, InTSX: true},
		{Kind: lbr.KindReturn, From: lbr.IP{Fn: "D"}, To: lbr.IP{Fn: "B"}, InTSX: true},
		{Kind: lbr.KindCall, From: lbr.IP{Fn: "B"}, To: lbr.IP{Fn: "D"}, InTSX: true},
		{Kind: lbr.KindCall, From: lbr.IP{Fn: "A"}, To: lbr.IP{Fn: "B"}, InTSX: true},
		{Kind: lbr.KindCall, From: lbr.IP{Fn: "main"}, To: lbr.IP{Fn: "A"}},
	}
	suffix, truncated := cct.InTxPath(snapshot)
	unwound := []lbr.IP{{Fn: "main"}, {Fn: "A"}}
	full := cct.Concat(unwound, suffix)
	for i, f := range full {
		if i > 0 {
			fmt.Print(" -> ")
		}
		fmt.Print(f.Fn)
	}
	fmt.Println("\ntruncated:", truncated)
	// Output:
	// main -> A -> C -> D
	// truncated: false
}
