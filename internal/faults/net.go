package faults

// Network fault injection for the fleet ingest path. Where the
// machine-side Plan models a lossy measurement medium (dropped PMU
// samples, corrupted LBRs), NetPlan models a lossy transport: added
// latency, vanished requests, duplicated deliveries, and connections
// reset mid-body. A NetInjector is seeded per node and advances one
// decision per request, so a fault storm against the fleet daemon is
// exactly as reproducible as a chaos profiling run — same seed, same
// plan, same fault sequence.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Injected network errors, distinguishable by errors.Is so retry
// loops and tests can tell an injected fault from a real one.
var (
	// ErrNetDrop marks a request that vanished before reaching the
	// server (connection refused / black-holed packet).
	ErrNetDrop = errors.New("faults: injected network drop")
	// ErrNetReset marks a connection reset mid-body: the server saw a
	// truncated request, the client saw a write failure.
	ErrNetReset = errors.New("faults: injected connection reset mid-body")
)

// NetPlan configures the network fault regimes. The zero value
// injects nothing. All rates are per-request probabilities in [0,1].
type NetPlan struct {
	// LatencyRate delays a request before it is forwarded, by a
	// uniform 1..LatencyMaxMS milliseconds (default 50). Latency is
	// the benign regime: it exercises deadlines and pacing without
	// losing anything.
	LatencyRate  float64
	LatencyMaxMS uint64

	// DropRate makes the request vanish: the server never sees it and
	// the client gets ErrNetDrop, as for a refused connection or a
	// black-holed packet. Retries are the only remedy.
	DropRate float64

	// DupRate delivers the request twice (a retransmit whose original
	// also arrived). The client sees the second response. Duplicates
	// are the regime idempotency keys exist for: without dedup the
	// server double-counts.
	DupRate float64

	// ResetRate tears the connection mid-body: the server receives a
	// truncated request (its framed-payload integrity check fails)
	// and the client gets ErrNetReset without knowing how much
	// arrived — the ambiguous-outcome case that forces
	// acknowledged-only-once semantics.
	ResetRate float64
}

// Enabled reports whether the plan injects anything.
func (p NetPlan) Enabled() bool {
	return p.LatencyRate > 0 || p.DropRate > 0 || p.DupRate > 0 || p.ResetRate > 0
}

// Validate checks that every rate is a probability.
func (p NetPlan) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"latency", p.LatencyRate},
		{"net-drop", p.DropRate},
		{"dup", p.DupRate},
		{"reset", p.ResetRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %g outside [0,1]", r.name, r.v)
		}
	}
	return nil
}

func (p NetPlan) withDefaults() NetPlan {
	if p.LatencyRate > 0 && p.LatencyMaxMS == 0 {
		p.LatencyMaxMS = 50
	}
	return p
}

// String renders the plan in the key=value form ParseNetPlan accepts.
func (p NetPlan) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	add("latency", p.LatencyRate)
	if p.LatencyMaxMS > 0 {
		parts = append(parts, "latency-ms="+strconv.FormatUint(p.LatencyMaxMS, 10))
	}
	add("net-drop", p.DropRate)
	add("dup", p.DupRate)
	add("reset", p.ResetRate)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// NetPresets name ready-made network fault plans for the CLI and the
// chaos suite.
var NetPresets = map[string]NetPlan{
	"slow":  {LatencyRate: 0.5, LatencyMaxMS: 30},
	"lossy": {DropRate: 0.15, DupRate: 0.05, LatencyRate: 0.2, LatencyMaxMS: 20},
	"chaos": {DropRate: 0.15, DupRate: 0.1, ResetRate: 0.1, LatencyRate: 0.2, LatencyMaxMS: 20},
}

// NetPresetNames returns the preset names, sorted.
func NetPresetNames() []string {
	out := make([]string, 0, len(NetPresets))
	for n := range NetPresets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseNetPlan parses a comma-separated key=value network fault
// specification, e.g. "net-drop=0.1,dup=0.05,reset=0.02". A bare
// preset name ("slow", "lossy", "chaos") or "none" is also accepted.
// The result is validated.
func ParseNetPlan(s string) (NetPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return NetPlan{}, nil
	}
	if p, ok := NetPresets[s]; ok {
		return p, nil
	}
	var p NetPlan
	for _, kv := range strings.Split(s, ",") {
		key, val, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found {
			return NetPlan{}, fmt.Errorf("faults: %q is not key=value and not a preset (presets: %s)",
				kv, strings.Join(NetPresetNames(), ", "))
		}
		fv, ferr := strconv.ParseFloat(val, 64)
		uv, uerr := strconv.ParseUint(val, 10, 64)
		switch key {
		case "latency":
			p.LatencyRate = fv
		case "latency-ms":
			p.LatencyMaxMS = uv
			ferr = uerr
		case "net-drop":
			p.DropRate = fv
		case "dup":
			p.DupRate = fv
		case "reset":
			p.ResetRate = fv
		default:
			return NetPlan{}, fmt.Errorf("faults: unknown network fault key %q", key)
		}
		if ferr != nil {
			return NetPlan{}, fmt.Errorf("faults: bad value for %s: %q", key, val)
		}
	}
	if err := p.Validate(); err != nil {
		return NetPlan{}, err
	}
	return p, nil
}

// NetStats counts the network faults one injector delivered.
type NetStats struct {
	Delayed    uint64 `json:"delayed,omitempty"`
	DelayedMS  uint64 `json:"delayed_ms,omitempty"`
	Dropped    uint64 `json:"dropped,omitempty"`
	Duplicated uint64 `json:"duplicated,omitempty"`
	Resets     uint64 `json:"resets,omitempty"`
}

// Total returns the number of injected loss-class faults (latency is
// benign bookkeeping and excluded).
func (s NetStats) Total() uint64 { return s.Dropped + s.Duplicated + s.Resets }

// String renders the stats for log lines.
func (s NetStats) String() string {
	return fmt.Sprintf("delayed=%d dropped=%d dup=%d reset=%d",
		s.Delayed, s.Dropped, s.Duplicated, s.Resets)
}

// NetDecision is the fate of one request, drawn up front so a request
// consumes a fixed number of PRNG draws regardless of outcome.
type NetDecision struct {
	Delay     time.Duration
	Drop      bool
	Duplicate bool
	Reset     bool
}

// NetInjector draws per-request network fault decisions from a seeded
// PRNG. Decisions depend only on (plan, seed, request ordinal), so a
// node replaying the same upload sequence replays the same faults.
type NetInjector struct {
	mu    sync.Mutex
	plan  NetPlan
	rng   uint64 // xorshift64 state; never zero
	Stats NetStats
}

// NewNetInjector returns an injector for the plan, deterministically
// seeded (typically campaign seed mixed with the node ordinal).
// Returns nil for a plan that injects nothing.
func NewNetInjector(p NetPlan, seed uint64) *NetInjector {
	p = p.withDefaults()
	if !p.Enabled() {
		return nil
	}
	rng := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15
	}
	return &NetInjector{plan: p, rng: rng}
}

func (in *NetInjector) next() uint64 {
	x := in.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	in.rng = x
	return x
}

func (in *NetInjector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(in.next()%1_000_000_000) < p*1_000_000_000
}

// Decide draws the fate of the next request. Drop wins over
// duplicate/reset (a vanished request cannot also be delivered);
// reset wins over duplicate.
func (in *NetInjector) Decide() NetDecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d NetDecision
	if in.chance(in.plan.LatencyRate) {
		ms := in.next()%in.plan.LatencyMaxMS + 1
		d.Delay = time.Duration(ms) * time.Millisecond
		in.Stats.Delayed++
		in.Stats.DelayedMS += ms
	}
	drop := in.chance(in.plan.DropRate)
	reset := in.chance(in.plan.ResetRate)
	dup := in.chance(in.plan.DupRate)
	switch {
	case drop:
		d.Drop = true
		in.Stats.Dropped++
	case reset:
		d.Reset = true
		in.Stats.Resets++
	case dup:
		d.Duplicate = true
		in.Stats.Duplicated++
	}
	return d
}

// Snapshot returns the stats accumulated so far.
func (in *NetInjector) Snapshot() NetStats {
	if in == nil {
		return NetStats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.Stats
}

// NetTransport is an http.RoundTripper that applies a NetInjector's
// decisions to every outgoing request. It buffers request bodies (the
// fleet's shard payloads are in-memory already) so duplicates and
// resets can be materialized faithfully: a duplicate is two complete
// deliveries, a reset is a request whose body errors out after half
// the declared bytes — the server reads a truncated frame, the client
// gets ErrNetReset.
type NetTransport struct {
	// Inner performs the real round trips (nil = http.DefaultTransport).
	Inner http.RoundTripper
	// Injector supplies decisions; nil passes everything through.
	Injector *NetInjector
}

// NewNetTransport wraps inner with a fresh injector for the plan.
// With a disabled plan it still returns a working transport that
// injects nothing.
func NewNetTransport(inner http.RoundTripper, p NetPlan, seed uint64) *NetTransport {
	return &NetTransport{Inner: inner, Injector: NewNetInjector(p, seed)}
}

func (t *NetTransport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *NetTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Injector == nil {
		return t.inner().RoundTrip(req)
	}
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	d := t.Injector.Decide()
	if d.Delay > 0 {
		select {
		case <-time.After(d.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if d.Drop {
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL, ErrNetDrop)
	}
	if d.Reset {
		// Deliver a request whose body fails after half the declared
		// bytes: the server-side read sees an unexpected EOF, and the
		// client's round trip fails.
		half := len(body) / 2
		reset := req.Clone(req.Context())
		reset.Body = io.NopCloser(io.MultiReader(
			bytes.NewReader(body[:half]),
			&errReader{err: ErrNetReset},
		))
		reset.ContentLength = int64(len(body))
		resp, err := t.inner().RoundTrip(reset)
		if err == nil {
			// The server answered the truncated request (e.g. 400);
			// the client still experiences a reset.
			resp.Body.Close()
		}
		return nil, fmt.Errorf("%s %s: %w", req.Method, req.URL, ErrNetReset)
	}
	send := func() (*http.Response, error) {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return t.inner().RoundTrip(r)
	}
	if d.Duplicate {
		// First delivery: complete, response discarded (the "original"
		// of a retransmit pair). Its failure does not fail the round
		// trip — the second delivery is the one the client observes.
		if resp, err := send(); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	return send()
}

// errReader returns err on every read.
type errReader struct{ err error }

func (r *errReader) Read([]byte) (int, error) { return 0, r.err }
