package faults

import (
	"bytes"
	"errors"
	"testing"
)

func TestCrashWriterTearsAtOffset(t *testing.T) {
	var sink bytes.Buffer
	w := CrashWriter(&sink, 10)
	// First write fits under the offset entirely.
	if n, err := w.Write([]byte("abcde")); n != 5 || err != nil {
		t.Fatalf("write 1: n=%d err=%v", n, err)
	}
	// Second write crosses the offset: the prefix lands, then ErrCrashWrite.
	if n, err := w.Write([]byte("fghijKLM")); n != 5 || !errors.Is(err, ErrCrashWrite) {
		t.Fatalf("write 2: n=%d err=%v", n, err)
	}
	// Every later write fails without touching the sink.
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrCrashWrite) {
		t.Fatalf("write 3: n=%d err=%v", n, err)
	}
	if got := sink.String(); got != "abcdefghij" {
		t.Fatalf("torn prefix = %q", got)
	}
}

func TestCrashWritePlanParsing(t *testing.T) {
	p, err := ParsePlan("crash-write=512")
	if err != nil {
		t.Fatal(err)
	}
	if p.CrashWriteOffset != 512 {
		t.Fatalf("offset = %d", p.CrashWriteOffset)
	}
	// Storage-only faults do not enable machine injection and are
	// stripped from the machine-affecting view used by config hashes.
	if p.Enabled() {
		t.Fatal("crash-write alone must not enable machine fault injection")
	}
	if p.MachineOnly() != (Plan{}) {
		t.Fatalf("MachineOnly = %+v", p.MachineOnly())
	}
	if got := p.String(); got != "crash-write=512" {
		t.Fatalf("String = %q", got)
	}
}
