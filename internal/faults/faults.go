// Package faults is the deterministic fault-injection subsystem of the
// simulated machine. Real TSX deployments are noisy in ways the clean
// simulation is not: transactions suffer spurious transient aborts that
// set no status bits, PMU interrupts are dropped or coalesced under
// handler backpressure, LBR contents arrive truncated or stale, and
// threads are preempted or observe clock skew. A Plan enables any
// subset of these regimes; an Injector, seeded per thread and advanced
// only at the machine's deterministic scheduling points, produces a
// fault sequence that is a pure function of (seed, plan, workload) — so
// chaos runs are exactly as reproducible as clean ones.
//
// The package has no dependency on the machine; the machine consults an
// Injector at its operation and sample-delivery points.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"txsampler/internal/lbr"
)

// Plan configures the fault regimes. The zero value injects nothing.
// All rates are per-decision-point probabilities in [0,1].
type Plan struct {
	// SpuriousAbortRate injects transient aborts into in-flight
	// transactions, checked once per operation executed inside a
	// transaction. They model real TSX's spurious aborts whose EAX
	// status is completely clear (not even _XABORT_RETRY), yet which
	// succeed when simply retried.
	SpuriousAbortRate float64

	// SampleDropRate drops delivered PMU samples (the overflow and any
	// transaction abort it caused still happen; only the sample data is
	// lost), modelling dropped PMI records under buffer pressure.
	SampleDropRate float64
	// CoalesceWindow, when non-zero, coalesces samples delivered within
	// the window (in cycles) of the previous delivery on the same
	// thread: the later sample is merged away, modelling interrupt
	// coalescing under handler backpressure.
	CoalesceWindow uint64

	// LBR corruption regimes, checked once per sample delivery.
	// LBRTruncateRate truncates the snapshot to a random shorter
	// prefix; LBRStaleRate splices entries from an earlier snapshot
	// over the tail (stale records from a prior transaction);
	// LBRClearAbortRate clears the abort bit on LBR[0], hiding the
	// evidence the profiler's in-transaction classification needs.
	LBRTruncateRate   float64
	LBRStaleRate      float64
	LBRClearAbortRate float64

	// StallRate preempts the thread for up to StallCycles cycles
	// (uniform in [1, StallCycles]), checked once per operation —
	// thread stalls and preemption bursts. StallCycles defaults to
	// 5000 when a rate is set.
	StallRate   float64
	StallCycles uint64
	// ClockSkewRate perturbs a delivered sample's timestamp by up to
	// ±ClockSkewCycles cycles (default 2000), modelling cross-core TSC
	// skew spikes. The thread's own clock is unaffected, so only
	// time-keyed analyses (shadow-memory windows) observe the skew.
	ClockSkewRate   float64
	ClockSkewCycles uint64

	// CrashWriteOffset, when non-zero, arms the crash-at-write-offset
	// mode: the first profile database persisted after the run is torn
	// after this many bytes and the frontend simulates a process kill
	// (immediate exit, no cleanup), leaving genuinely torn files for
	// the recovery paths to detect. It is a storage fault: it does not
	// perturb the run itself and is excluded from Enabled and from
	// campaign config hashes.
	CrashWriteOffset uint64

	// PmemCrashPoint, when set, arms persistent-memory crash injection
	// (the machine's pmem tier must be enabled): at each triggering
	// durable commit the machine simulates a whole-machine crash at the
	// named point of the persist epilogue — one of PmemCrashPoints —
	// tears the undo log accordingly, runs recovery replay against the
	// persist-domain image, and resumes as after a reboot. Unlike
	// CrashWriteOffset this perturbs the run itself, so it counts
	// toward Enabled. PmemCrashTx fires once, at the Nth durable
	// commit; PmemCrashEvery fires at every Nth durable commit (a crash
	// storm). With a point set and neither trigger, PmemCrashTx
	// defaults to 1.
	PmemCrashPoint string
	PmemCrashTx    uint64
	PmemCrashEvery uint64

	// Storms inject bursty correlated faults: every StormPeriod
	// operations a storm runs for StormLength operations during which
	// every rate above is multiplied by StormFactor (default 10,
	// capped so probabilities stay <= 1). StormPeriod = 0 disables
	// storms.
	StormPeriod uint64
	StormLength uint64
	StormFactor float64
}

// The persistent-memory crash-point taxonomy (DESIGN.md §13): where in
// the durable-commit epilogue the injected crash lands.
const (
	// PmemCrashBeforeFlush crashes with the undo log fully durable but
	// before any data-line flush: recovery rolls the whole transaction
	// back.
	PmemCrashBeforeFlush = "before-flush"
	// PmemCrashMidLog crashes during undo logging: only a prefix of the
	// transaction's log entries is durable (and, by the undo-ordering
	// invariant, only those lines' data can have reached the persist
	// domain).
	PmemCrashMidLog = "mid-log"
	// PmemCrashTornTail crashes mid-append: the log ends inside a
	// record, which recovery must detect by its checksum.
	PmemCrashTornTail = "torn-tail"
	// PmemCrashAfterCommit crashes after the commit record is durable:
	// recovery finds a committed log and rolls nothing back.
	PmemCrashAfterCommit = "after-commit"
)

// PmemCrashPoints lists the valid Plan.PmemCrashPoint values.
var PmemCrashPoints = []string{
	PmemCrashBeforeFlush, PmemCrashMidLog, PmemCrashTornTail, PmemCrashAfterCommit,
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool {
	return p.SpuriousAbortRate > 0 || p.SampleDropRate > 0 || p.CoalesceWindow > 0 ||
		p.LBRTruncateRate > 0 || p.LBRStaleRate > 0 || p.LBRClearAbortRate > 0 ||
		p.StallRate > 0 || p.ClockSkewRate > 0 || p.PmemArmed()
}

// PmemArmed reports whether the plan injects persistent-memory
// crashes. The pmem crash machinery lives in the machine's pmem tier,
// not the per-thread injector, but an armed plan perturbs the run and
// so counts as enabled.
func (p Plan) PmemArmed() bool { return p.PmemCrashPoint != "" }

// MachineOnly returns the plan with storage-side faults stripped:
// only the regimes that perturb the run itself remain. Campaign config
// hashes use it, so arming crash-at-write-offset does not change a
// shard's identity (the run it tears is bit-identical to a clean one).
func (p Plan) MachineOnly() Plan {
	p.CrashWriteOffset = 0
	return p
}

// Validate checks that every rate is a probability and the storm
// geometry is coherent.
func (p Plan) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"spurious", p.SpuriousAbortRate},
		{"drop", p.SampleDropRate},
		{"lbr-trunc", p.LBRTruncateRate},
		{"lbr-stale", p.LBRStaleRate},
		{"lbr-noabort", p.LBRClearAbortRate},
		{"stall", p.StallRate},
		{"skew", p.ClockSkewRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("faults: %s rate %g outside [0,1] (valid presets: %s)",
				r.name, r.v, strings.Join(PresetNames(), ", "))
		}
	}
	if p.StormFactor < 0 {
		return fmt.Errorf("faults: storm factor %g negative (valid presets: %s)",
			p.StormFactor, strings.Join(PresetNames(), ", "))
	}
	if p.StormPeriod > 0 && p.StormLength == 0 {
		return fmt.Errorf("faults: storm period set but storm length is zero")
	}
	if p.StormLength > p.StormPeriod && p.StormPeriod > 0 {
		return fmt.Errorf("faults: storm length %d exceeds period %d", p.StormLength, p.StormPeriod)
	}
	if p.PmemCrashPoint != "" {
		valid := false
		for _, pt := range PmemCrashPoints {
			if p.PmemCrashPoint == pt {
				valid = true
				break
			}
		}
		if !valid {
			return fmt.Errorf("faults: unknown pmem crash point %q (valid points: %s; valid presets: %s)",
				p.PmemCrashPoint, strings.Join(PmemCrashPoints, ", "), strings.Join(PresetNames(), ", "))
		}
	} else if p.PmemCrashTx > 0 || p.PmemCrashEvery > 0 {
		return fmt.Errorf("faults: pmem crash trigger set without pmem-crash point (valid points: %s)",
			strings.Join(PmemCrashPoints, ", "))
	}
	return nil
}

func (p Plan) withDefaults() Plan {
	if p.StallRate > 0 && p.StallCycles == 0 {
		p.StallCycles = 5000
	}
	if p.ClockSkewRate > 0 && p.ClockSkewCycles == 0 {
		p.ClockSkewCycles = 2000
	}
	if p.StormPeriod > 0 && p.StormFactor == 0 {
		p.StormFactor = 10
	}
	if p.PmemCrashPoint != "" && p.PmemCrashTx == 0 && p.PmemCrashEvery == 0 {
		p.PmemCrashTx = 1
	}
	return p
}

// WithDefaults returns the plan with defaulted fields filled in; the
// machine's pmem tier uses it to read the effective crash trigger.
func (p Plan) WithDefaults() Plan { return p.withDefaults() }

// String renders the plan in the key=value form ParsePlan accepts.
func (p Plan) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	addU := func(k string, v uint64) {
		if v > 0 {
			parts = append(parts, k+"="+strconv.FormatUint(v, 10))
		}
	}
	add("spurious", p.SpuriousAbortRate)
	add("drop", p.SampleDropRate)
	addU("coalesce", p.CoalesceWindow)
	add("lbr-trunc", p.LBRTruncateRate)
	add("lbr-stale", p.LBRStaleRate)
	add("lbr-noabort", p.LBRClearAbortRate)
	add("stall", p.StallRate)
	addU("stall-cycles", p.StallCycles)
	add("skew", p.ClockSkewRate)
	addU("skew-cycles", p.ClockSkewCycles)
	addU("crash-write", p.CrashWriteOffset)
	if p.PmemCrashPoint != "" {
		parts = append(parts, "pmem-crash="+p.PmemCrashPoint)
	}
	addU("pmem-crash-tx", p.PmemCrashTx)
	addU("pmem-crash-every", p.PmemCrashEvery)
	addU("storm-period", p.StormPeriod)
	addU("storm-len", p.StormLength)
	add("storm-factor", p.StormFactor)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Presets name ready-made plans for the CLI and the chaos suite.
var Presets = map[string]Plan{
	"spurious": {SpuriousAbortRate: 0.01},
	"drops":    {SampleDropRate: 0.2, CoalesceWindow: 400},
	"lbr":      {LBRTruncateRate: 0.1, LBRStaleRate: 0.05, LBRClearAbortRate: 0.05},
	"sched":    {StallRate: 0.002, StallCycles: 4000, ClockSkewRate: 0.05, ClockSkewCycles: 2000},
	"storm": {
		SpuriousAbortRate: 0.002, SampleDropRate: 0.02, LBRTruncateRate: 0.01,
		StormPeriod: 4000, StormLength: 400, StormFactor: 25,
	},
	// elide-storm targets the elision ladder: dense spurious-abort
	// bursts knock speculative lock acquisitions onto the fallback
	// path, stress-testing per-site verdict stability under abort
	// storms.
	"elide-storm": {
		SpuriousAbortRate: 0.005,
		StormPeriod:       3000, StormLength: 600, StormFactor: 30,
	},
	"all": {
		SpuriousAbortRate: 0.005, SampleDropRate: 0.1, CoalesceWindow: 300,
		LBRTruncateRate: 0.05, LBRStaleRate: 0.02, LBRClearAbortRate: 0.02,
		StallRate: 0.001, StallCycles: 3000, ClockSkewRate: 0.02,
		StormPeriod: 8000, StormLength: 500, StormFactor: 10,
	},
	// The pmem presets require a machine with the persistent tier
	// enabled; on a machine without tracked durable lines they inject
	// nothing.
	"torn-flush":    {PmemCrashPoint: PmemCrashTornTail, PmemCrashEvery: 5},
	"crash-mid-log": {PmemCrashPoint: PmemCrashMidLog, PmemCrashEvery: 5},
}

// PmemPreset reports whether the named preset is one of the
// persistent-memory crash presets (which need a pmem-enabled machine
// to inject anything).
func PmemPreset(name string) bool {
	p, ok := Presets[name]
	return ok && p.PmemArmed()
}

// PresetNames returns the preset names, sorted.
func PresetNames() []string {
	out := make([]string, 0, len(Presets))
	for n := range Presets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParsePlan parses a comma-separated key=value fault specification,
// e.g. "spurious=0.01,drop=0.2,storm-period=4000,storm-len=400".
// A bare preset name ("spurious", "drops", "lbr", "sched", "storm",
// "all") or "none" is also accepted. The result is validated.
func ParsePlan(s string) (Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return Plan{}, nil
	}
	if p, ok := Presets[s]; ok {
		return p, nil
	}
	var p Plan
	for _, kv := range strings.Split(s, ",") {
		key, val, found := strings.Cut(strings.TrimSpace(kv), "=")
		if !found {
			return Plan{}, fmt.Errorf("faults: %q is not key=value and not a preset (presets: %s)",
				kv, strings.Join(PresetNames(), ", "))
		}
		fv, ferr := strconv.ParseFloat(val, 64)
		uv, uerr := strconv.ParseUint(val, 10, 64)
		switch key {
		case "spurious":
			p.SpuriousAbortRate = fv
		case "drop":
			p.SampleDropRate = fv
		case "coalesce":
			p.CoalesceWindow = uv
			ferr = uerr
		case "lbr-trunc":
			p.LBRTruncateRate = fv
		case "lbr-stale":
			p.LBRStaleRate = fv
		case "lbr-noabort":
			p.LBRClearAbortRate = fv
		case "stall":
			p.StallRate = fv
		case "stall-cycles":
			p.StallCycles = uv
			ferr = uerr
		case "skew":
			p.ClockSkewRate = fv
		case "skew-cycles":
			p.ClockSkewCycles = uv
			ferr = uerr
		case "crash-write":
			p.CrashWriteOffset = uv
			ferr = uerr
		case "pmem-crash":
			p.PmemCrashPoint = val
			ferr = nil
		case "pmem-crash-tx":
			p.PmemCrashTx = uv
			ferr = uerr
		case "pmem-crash-every":
			p.PmemCrashEvery = uv
			ferr = uerr
		case "storm-period":
			p.StormPeriod = uv
			ferr = uerr
		case "storm-len":
			p.StormLength = uv
			ferr = uerr
		case "storm-factor":
			p.StormFactor = fv
		default:
			return Plan{}, fmt.Errorf("faults: unknown key %q", key)
		}
		if ferr != nil {
			return Plan{}, fmt.Errorf("faults: bad value for %s: %q", key, val)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Stats counts the faults one injector actually delivered. The machine
// aggregates per-thread stats into its fault report.
type Stats struct {
	SpuriousAborts   uint64 `json:"spurious_aborts,omitempty"`
	DroppedSamples   uint64 `json:"dropped_samples,omitempty"`
	CoalescedSamples uint64 `json:"coalesced_samples,omitempty"`
	TruncatedLBRs    uint64 `json:"truncated_lbrs,omitempty"`
	StaleLBRs        uint64 `json:"stale_lbrs,omitempty"`
	ClearedAbortBits uint64 `json:"cleared_abort_bits,omitempty"`
	Stalls           uint64 `json:"stalls,omitempty"`
	StallCycles      uint64 `json:"stall_cycles,omitempty"`
	ClockSkews       uint64 `json:"clock_skews,omitempty"`
	StormOps         uint64 `json:"storm_ops,omitempty"`

	// Persistent-memory crash injection (counted by the machine's pmem
	// tier, not a per-thread injector).
	PmemCrashes    uint64 `json:"pmem_crashes,omitempty"`
	PmemRolledBack uint64 `json:"pmem_rolled_back,omitempty"`
	PmemTornTails  uint64 `json:"pmem_torn_tails,omitempty"`
}

// Merge accumulates src into s.
func (s *Stats) Merge(src Stats) {
	s.SpuriousAborts += src.SpuriousAborts
	s.DroppedSamples += src.DroppedSamples
	s.CoalescedSamples += src.CoalescedSamples
	s.TruncatedLBRs += src.TruncatedLBRs
	s.StaleLBRs += src.StaleLBRs
	s.ClearedAbortBits += src.ClearedAbortBits
	s.Stalls += src.Stalls
	s.StallCycles += src.StallCycles
	s.ClockSkews += src.ClockSkews
	s.StormOps += src.StormOps
	s.PmemCrashes += src.PmemCrashes
	s.PmemRolledBack += src.PmemRolledBack
	s.PmemTornTails += src.PmemTornTails
}

// Total returns the number of injected faults of every kind (storm ops,
// stall cycles, and recovery rollback counts are bookkeeping, not
// faults, and are excluded; a torn tail is an aspect of its crash, not
// a second fault).
func (s Stats) Total() uint64 {
	return s.SpuriousAborts + s.DroppedSamples + s.CoalescedSamples +
		s.TruncatedLBRs + s.StaleLBRs + s.ClearedAbortBits + s.Stalls + s.ClockSkews +
		s.PmemCrashes
}

// Injector is one thread's fault source. It must only be used from the
// owning thread's scheduling points, so its PRNG advances in the
// machine's deterministic total order.
type Injector struct {
	plan  Plan
	rng   uint64 // xorshift64 state; never zero
	ops   uint64 // operations seen, drives the storm phase
	last  uint64 // clock of the last delivered (not dropped) sample
	any   bool   // a sample was delivered before
	stale []lbr.Entry

	Stats Stats
}

// NewInjector returns an injector for the plan, deterministically
// seeded (seed is typically machineSeed mixed with the thread ID).
// Returns nil for a plan that injects nothing, so the machine's hot
// path can test a single pointer.
func NewInjector(p Plan, seed uint64) *Injector {
	p = p.withDefaults()
	if !p.Enabled() {
		return nil
	}
	rng := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15
	}
	return &Injector{plan: p, rng: rng}
}

// next advances the xorshift64 PRNG.
func (in *Injector) next() uint64 {
	x := in.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	in.rng = x
	return x
}

// chance returns true with probability p (scaled by the storm factor
// when a storm is active).
func (in *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if in.storming() {
		p *= in.plan.StormFactor
		if p > 1 {
			p = 1
		}
	}
	return float64(in.next()%1_000_000_000) < p*1_000_000_000
}

// storming reports whether the current operation falls in a storm
// window.
func (in *Injector) storming() bool {
	return in.plan.StormPeriod > 0 && in.ops%in.plan.StormPeriod < in.plan.StormLength
}

// Tick advances the injector by one machine operation. It must be
// called exactly once per operation, before any other query for that
// operation.
func (in *Injector) Tick() {
	in.ops++
	if in.storming() {
		in.Stats.StormOps++
	}
}

// SpuriousAbort reports whether the current in-transaction operation
// suffers a spurious transient abort.
func (in *Injector) SpuriousAbort() bool {
	if !in.chance(in.plan.SpuriousAbortRate) {
		return false
	}
	in.Stats.SpuriousAborts++
	return true
}

// Stall returns the preemption penalty, in cycles, to add to the
// thread's clock at this operation (0 = no stall).
func (in *Injector) Stall() uint64 {
	if in.plan.StallCycles == 0 || !in.chance(in.plan.StallRate) {
		return 0
	}
	n := in.next()%in.plan.StallCycles + 1
	in.Stats.Stalls++
	in.Stats.StallCycles += n
	return n
}

// DropSample reports whether the sample about to be delivered at the
// given thread clock is lost — either dropped outright or coalesced
// into the previous delivery. A dropped sample does not update the
// backpressure window; a delivered one does.
func (in *Injector) DropSample(now uint64) bool {
	if in.plan.CoalesceWindow > 0 && in.any && now-in.last < in.plan.CoalesceWindow {
		in.Stats.CoalescedSamples++
		return true
	}
	if in.chance(in.plan.SampleDropRate) {
		in.Stats.DroppedSamples++
		return true
	}
	in.last = now
	in.any = true
	return false
}

// SkewTime perturbs a sample timestamp by up to ±ClockSkewCycles.
func (in *Injector) SkewTime(now uint64) uint64 {
	if in.plan.ClockSkewCycles == 0 || !in.chance(in.plan.ClockSkewRate) {
		return now
	}
	in.Stats.ClockSkews++
	d := in.next() % (2*in.plan.ClockSkewCycles + 1)
	skewed := now + d
	if skewed < in.plan.ClockSkewCycles {
		return 0
	}
	return skewed - in.plan.ClockSkewCycles
}

// CorruptLBR applies the configured LBR corruption regimes to a
// snapshot (most recent first) and remembers it as the stale source
// for future corruptions. The input slice is owned by the caller and
// is modified in place where possible.
func (in *Injector) CorruptLBR(snapshot []lbr.Entry) []lbr.Entry {
	if len(snapshot) > 0 && snapshot[0].Abort && in.chance(in.plan.LBRClearAbortRate) {
		snapshot[0].Abort = false
		in.Stats.ClearedAbortBits++
	}
	if len(snapshot) > 1 && in.chance(in.plan.LBRTruncateRate) {
		keep := int(in.next()%uint64(len(snapshot)-1)) + 1
		snapshot = snapshot[:keep]
		in.Stats.TruncatedLBRs++
	}
	if len(in.stale) > 0 && len(snapshot) > 1 && in.chance(in.plan.LBRStaleRate) {
		// Splice stale history over the tail: entries from an earlier
		// snapshot appear beyond a random split point, exactly the
		// misaligned window a late LBR freeze produces.
		at := int(in.next()%uint64(len(snapshot)-1)) + 1
		n := copy(snapshot[at:], in.stale)
		snapshot = snapshot[:at+n]
		in.Stats.StaleLBRs++
	}
	// Remember this (possibly corrupted) snapshot as future stale data.
	in.stale = append(in.stale[:0], snapshot...)
	return snapshot
}
