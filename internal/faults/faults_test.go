package faults

import (
	"strings"
	"testing"

	"txsampler/internal/lbr"
)

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("spurious=0.01,drop=0.2,coalesce=400,lbr-trunc=0.1,stall=0.001,stall-cycles=3000,skew=0.02,skew-cycles=500,storm-period=4000,storm-len=400,storm-factor=25")
	if err != nil {
		t.Fatal(err)
	}
	if p.SpuriousAbortRate != 0.01 || p.CoalesceWindow != 400 || p.StormFactor != 25 {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", p.String(), err)
	}
	if back != p {
		t.Fatalf("round trip changed the plan: %+v vs %+v", back, p)
	}
}

func TestParsePlanPresetsAndErrors(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := ParsePlan(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if !p.Enabled() {
			t.Fatalf("preset %s injects nothing", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
	if p, err := ParsePlan("none"); err != nil || p.Enabled() {
		t.Fatalf("none: %+v, %v", p, err)
	}
	for _, bad := range []string{
		"bogus", "spurious=", "spurious=x", "spurious=2",
		"drop=-0.1", "storm-period=100,storm-len=0", "storm-period=10,storm-len=20",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid input", bad)
		}
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	if err := (Plan{SpuriousAbortRate: 1.5}).Validate(); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if err := (Plan{StormFactor: -1}).Validate(); err == nil {
		t.Fatal("negative storm factor accepted")
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Fatalf("zero plan rejected: %v", err)
	}
}

func TestInjectorNilForEmptyPlan(t *testing.T) {
	if in := NewInjector(Plan{}, 7); in != nil {
		t.Fatal("empty plan produced a live injector")
	}
	if in := NewInjector(Plan{SpuriousAbortRate: 0.5}, 7); in == nil {
		t.Fatal("enabled plan produced no injector")
	}
}

// drive runs a fixed synthetic schedule against an injector and
// returns a transcript of every decision.
func drive(in *Injector) string {
	var b strings.Builder
	snap := []lbr.Entry{
		{Kind: lbr.KindAbort, Abort: true},
		{Kind: lbr.KindCall, From: lbr.IP{Fn: "a"}, To: lbr.IP{Fn: "b"}, InTSX: true},
		{Kind: lbr.KindCall, From: lbr.IP{Fn: "x"}, To: lbr.IP{Fn: "a"}, InTSX: true},
		{Kind: lbr.KindReturn, From: lbr.IP{Fn: "c"}, To: lbr.IP{Fn: "x"}},
	}
	var now uint64
	for i := 0; i < 5000; i++ {
		in.Tick()
		now += uint64(i%13) * 20 // irregular spacing straddling coalesce windows
		if in.SpuriousAbort() {
			b.WriteByte('S')
		}
		if n := in.Stall(); n > 0 {
			b.WriteString("P")
		}
		if i%7 == 0 {
			if in.DropSample(now) {
				b.WriteByte('D')
			} else {
				b.WriteByte('d')
			}
			cp := append([]lbr.Entry{}, snap...)
			out := in.CorruptLBR(cp)
			b.WriteString(strings.Repeat("L", len(snap)-len(out)))
			if len(out) > 0 && !out[0].Abort {
				b.WriteByte('A')
			}
			_ = in.SkewTime(now)
		}
	}
	return b.String()
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	plan := Presets["all"]
	a := drive(NewInjector(plan, 42))
	b := drive(NewInjector(plan, 42))
	if a != b {
		t.Fatal("same seed produced different fault sequences")
	}
	c := drive(NewInjector(plan, 43))
	if a == c {
		t.Fatal("different seeds produced identical fault sequences (suspicious PRNG)")
	}
}

func TestInjectorStatsCountEveryRegime(t *testing.T) {
	plan := Plan{
		SpuriousAbortRate: 0.2, SampleDropRate: 0.3, CoalesceWindow: 1100,
		LBRTruncateRate: 0.3, LBRStaleRate: 0.3, LBRClearAbortRate: 0.3,
		StallRate: 0.2, ClockSkewRate: 0.3,
		StormPeriod: 100, StormLength: 20, StormFactor: 3,
	}
	in := NewInjector(plan, 1)
	drive(in)
	s := in.Stats
	if s.SpuriousAborts == 0 || s.DroppedSamples == 0 || s.CoalescedSamples == 0 ||
		s.TruncatedLBRs == 0 || s.StaleLBRs == 0 || s.ClearedAbortBits == 0 ||
		s.Stalls == 0 || s.StallCycles == 0 || s.ClockSkews == 0 || s.StormOps == 0 {
		t.Fatalf("some regime never fired: %+v", s)
	}
	if s.Total() == 0 {
		t.Fatal("Total() = 0")
	}
	var merged Stats
	merged.Merge(s)
	merged.Merge(s)
	if merged.Total() != 2*s.Total() {
		t.Fatalf("Merge arithmetic wrong: %d vs %d", merged.Total(), 2*s.Total())
	}
}

func TestStormWindows(t *testing.T) {
	in := NewInjector(Plan{SpuriousAbortRate: 0.001, StormPeriod: 100, StormLength: 25}, 9)
	for i := 0; i < 1000; i++ {
		in.Tick()
	}
	if got, want := in.Stats.StormOps, uint64(250); got != want {
		t.Fatalf("storm ops = %d, want %d", got, want)
	}
}
