package faults

// Crash-at-write-offset mode: the storage-side fault regime. Unlike
// the machine faults, which perturb a run while it executes, this one
// models the process dying partway through persisting its results — a
// kill -9 or power loss mid-write — so durability code is tested
// against genuinely torn files rather than synthetic ones.

import (
	"errors"
	"io"
)

// ErrCrashWrite is the terminal error a crash writer returns once its
// offset is reached. Frontends treat it as a simulated process death:
// they stop immediately without cleanup, leaving the torn file behind.
var ErrCrashWrite = errors.New("faults: injected crash at write offset")

// crashWriter passes bytes through to the underlying writer until
// offset bytes have been written, then fails every write with
// ErrCrashWrite. The bytes before the offset ARE written (the torn
// prefix survives on disk); everything after is lost.
type crashWriter struct {
	w         io.Writer
	remaining uint64
}

// CrashWriter wraps w so that writes tear permanently after offset
// bytes, modelling a crash mid-write.
func CrashWriter(w io.Writer, offset uint64) io.Writer {
	return &crashWriter{w: w, remaining: offset}
}

func (c *crashWriter) Write(p []byte) (int, error) {
	if c.remaining == 0 {
		return 0, ErrCrashWrite
	}
	if uint64(len(p)) <= c.remaining {
		n, err := c.w.Write(p)
		c.remaining -= uint64(n)
		return n, err
	}
	n, err := c.w.Write(p[:c.remaining])
	c.remaining -= uint64(n)
	if err != nil {
		return n, err
	}
	return n, ErrCrashWrite
}
