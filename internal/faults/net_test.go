package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestParseNetPlan(t *testing.T) {
	p, err := ParseNetPlan("net-drop=0.1,dup=0.05,reset=0.02,latency=0.3,latency-ms=20")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropRate != 0.1 || p.DupRate != 0.05 || p.ResetRate != 0.02 || p.LatencyRate != 0.3 || p.LatencyMaxMS != 20 {
		t.Errorf("parsed plan = %+v", p)
	}
	// Round-trip through String.
	p2, err := ParseNetPlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("String round-trip: %+v != %+v", p2, p)
	}
	if s := (NetPlan{}).String(); s != "none" {
		t.Errorf("zero plan String = %q", s)
	}
	for _, name := range NetPresetNames() {
		if _, err := ParseNetPlan(name); err != nil {
			t.Errorf("preset %q does not parse: %v", name, err)
		}
	}
	if _, err := ParseNetPlan("none"); err != nil {
		t.Errorf("none: %v", err)
	}
	for _, bad := range []string{"bogus", "net-drop=x", "unknown=1", "net-drop=1.5"} {
		if _, err := ParseNetPlan(bad); err == nil {
			t.Errorf("ParseNetPlan(%q) accepted", bad)
		}
	}
}

func TestNetInjectorDeterministic(t *testing.T) {
	plan := NetPlan{DropRate: 0.3, DupRate: 0.2, ResetRate: 0.1, LatencyRate: 0.5, LatencyMaxMS: 10}
	a := NewNetInjector(plan, 42)
	b := NewNetInjector(plan, 42)
	for i := 0; i < 200; i++ {
		da, db := a.Decide(), b.Decide()
		if da != db {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, da, db)
		}
	}
	if a.Snapshot() != b.Snapshot() {
		t.Errorf("stats diverged: %+v vs %+v", a.Snapshot(), b.Snapshot())
	}
	if a.Snapshot().Total() == 0 {
		t.Error("no faults injected at these rates in 200 requests")
	}
	c := NewNetInjector(plan, 43)
	same := true
	for i := 0; i < 50; i++ {
		if a1, c1 := NewNetInjector(plan, 42).Decide(), c.Decide(); a1 != c1 {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision streams")
	}
	if NewNetInjector(NetPlan{}, 1) != nil {
		t.Error("disabled plan should yield a nil injector")
	}
}

// echoServer counts complete deliveries and reports read errors.
type echoServer struct {
	mu        sync.Mutex
	delivered int
	truncated int
}

func (s *echoServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		s.mu.Lock()
		defer s.mu.Unlock()
		if err != nil || int64(len(body)) != r.ContentLength {
			s.truncated++
			http.Error(w, "truncated", http.StatusBadRequest)
			return
		}
		s.delivered++
		w.WriteHeader(http.StatusOK)
	})
}

func post(t *testing.T, client *http.Client, url, body string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return client.Do(req)
}

func TestNetTransportDrop(t *testing.T) {
	srv := &echoServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	tr := &NetTransport{Injector: &NetInjector{plan: NetPlan{DropRate: 1}, rng: 1}}
	client := &http.Client{Transport: tr}
	_, err := post(t, client, ts.URL, "payload")
	if !errors.Is(err, ErrNetDrop) {
		t.Fatalf("err = %v, want ErrNetDrop", err)
	}
	if srv.delivered != 0 {
		t.Errorf("dropped request reached the server")
	}
}

func TestNetTransportDuplicate(t *testing.T) {
	srv := &echoServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	tr := &NetTransport{Injector: &NetInjector{plan: NetPlan{DupRate: 1}, rng: 1}}
	client := &http.Client{Transport: tr}
	resp, err := post(t, client, ts.URL, "payload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if srv.delivered != 2 {
		t.Errorf("delivered = %d, want 2 (duplicate)", srv.delivered)
	}
}

func TestNetTransportResetMidBody(t *testing.T) {
	srv := &echoServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	tr := &NetTransport{Injector: &NetInjector{plan: NetPlan{ResetRate: 1}, rng: 1}}
	client := &http.Client{Transport: tr}
	_, err := post(t, client, ts.URL, strings.Repeat("x", 4096))
	if !errors.Is(err, ErrNetReset) {
		t.Fatalf("err = %v, want ErrNetReset", err)
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if srv.delivered != 0 {
		t.Errorf("reset request counted as delivered")
	}
}

func TestNetTransportPassThrough(t *testing.T) {
	srv := &echoServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	// Nil injector (disabled plan) passes everything through untouched.
	client := &http.Client{Transport: NewNetTransport(nil, NetPlan{}, 7)}
	resp, err := post(t, client, ts.URL, "payload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if srv.delivered != 1 {
		t.Errorf("delivered = %d, want 1", srv.delivered)
	}
}

func TestNetTransportLatency(t *testing.T) {
	srv := &echoServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	tr := NewNetTransport(nil, NetPlan{LatencyRate: 1, LatencyMaxMS: 1}, 3)
	client := &http.Client{Transport: tr}
	resp, err := post(t, client, ts.URL, "payload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := tr.Injector.Snapshot()
	if st.Delayed != 1 || st.DelayedMS == 0 {
		t.Errorf("latency stats = %+v", st)
	}
}

func TestNetTransportBodylessRequest(t *testing.T) {
	srv := &echoServer{}
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	tr := NewNetTransport(nil, NetPlan{DupRate: 1}, 3)
	client := &http.Client{Transport: tr}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestNetStatsTotal(t *testing.T) {
	s := NetStats{Dropped: 1, Duplicated: 2, Resets: 3, Delayed: 10}
	if s.Total() != 6 {
		t.Errorf("Total = %d, want 6 (latency excluded)", s.Total())
	}
}
