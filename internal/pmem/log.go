package pmem

import (
	"encoding/binary"
	"hash/crc32"

	"txsampler/internal/mem"
)

// Undo-log wire format. Like the v2 profile format, every record is
// CRC-framed so recovery can tell a torn tail from a complete log: a
// crash mid-append leaves a partial frame whose checksum cannot match.
//
// Two record kinds, both little-endian with a trailing IEEE CRC32 over
// the preceding frame bytes:
//
//	undo   'U' | txid u64 | line addr u64 | 8 pre-image words | crc u32
//	commit 'C' | txid u64 | crc u32
//
// An undo record carries the full cache-line pre-image captured before
// the transaction's first store to that line (eager per-line undo
// logging, as in the go-redis-pmem transaction package). A commit
// record marks every preceding undo record as belonging to a durably
// committed transaction; entries after the last commit record belong
// to an incomplete transaction and are rolled back by Recover.
const (
	tagUndo   = 'U'
	tagCommit = 'C'

	// undoFrameSize is 1 tag + 8 txid + 8 addr + 64 line bytes + 4 crc.
	undoFrameSize = 1 + 8 + 8 + mem.LineSize + 4
	// commitFrameSize is 1 tag + 8 txid + 4 crc.
	commitFrameSize = 1 + 8 + 4
)

// undoFrame is the in-memory form of one undo record: the pre-image of
// one tracked cache line at the transaction's first store to it.
type undoFrame struct {
	line mem.Addr
	vals [mem.WordsPerLine]mem.Word
}

// appendUndo appends one CRC-framed undo record to dst.
func appendUndo(dst []byte, txid uint64, f undoFrame) []byte {
	start := len(dst)
	dst = append(dst, tagUndo)
	dst = binary.LittleEndian.AppendUint64(dst, txid)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(f.line))
	for _, w := range f.vals {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}

// appendCommit appends one CRC-framed commit record to dst.
func appendCommit(dst []byte, txid uint64) []byte {
	start := len(dst)
	dst = append(dst, tagCommit)
	dst = binary.LittleEndian.AppendUint64(dst, txid)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}
