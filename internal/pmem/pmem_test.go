package pmem

import (
	"testing"

	"txsampler/internal/faults"
	"txsampler/internal/mem"
)

func testFrame(line mem.Addr, seed mem.Word) undoFrame {
	var f undoFrame
	f.line = line
	for i := range f.vals {
		f.vals[i] = seed + mem.Word(i)
	}
	return f
}

func TestRecoverRollsBackUncommittedTail(t *testing.T) {
	img := mem.NewMemory()
	f1 := testFrame(0x1000, 100) // committed: must NOT be restored
	f2 := testFrame(0x2000, 200) // uncommitted: must be restored
	for i := 0; i < mem.WordsPerLine; i++ {
		img.Store(f1.line.Offset(i), 1) // post-commit data stays
		img.Store(f2.line.Offset(i), 2) // uncommitted data reverts
	}
	var log []byte
	log = appendUndo(log, 1, f1)
	log = appendCommit(log, 1)
	log = appendUndo(log, 2, f2)

	rec := Recover(log, img)
	if rec.Entries != 2 || rec.Commits != 1 || rec.RolledBack != 1 || rec.Torn || rec.Corrupt {
		t.Fatalf("rec = %+v, want 2 entries, 1 commit, 1 rolled back", rec)
	}
	if rec.Clean() {
		t.Fatal("recovery with rollback reported Clean")
	}
	for i := 0; i < mem.WordsPerLine; i++ {
		if got := img.Load(f1.line.Offset(i)); got != 1 {
			t.Fatalf("committed line reverted: word %d = %d", i, got)
		}
		if got, want := img.Load(f2.line.Offset(i)), f2.vals[i]; got != want {
			t.Fatalf("uncommitted line word %d = %d, want pre-image %d", i, got, want)
		}
	}
}

func TestRecoverNewestFirstWins(t *testing.T) {
	// Two uncommitted records for the SAME line: the older pre-image
	// (first touch) must win, which newest-first replay guarantees.
	img := mem.NewMemory()
	older := testFrame(0x3000, 10)
	newer := testFrame(0x3000, 99)
	var log []byte
	log = appendUndo(log, 1, newer)
	log = appendUndo(log, 1, older)
	rec := Recover(log, img)
	if rec.RolledBack != 2 {
		t.Fatalf("RolledBack = %d, want 2", rec.RolledBack)
	}
	if got, want := img.Load(mem.Addr(0x3000)), newer.vals[0]; got != want {
		t.Fatalf("replay order wrong: word = %d, want %d (appended-first record replayed last)", got, want)
	}
}

func TestRecoverTornTail(t *testing.T) {
	var log []byte
	log = appendUndo(log, 1, testFrame(0x1000, 1))
	for cut := 1; cut < undoFrameSize; cut++ {
		rec := Recover(log[:cut], mem.NewMemory())
		if !rec.Torn {
			t.Fatalf("cut at %d bytes not flagged Torn: %+v", cut, rec)
		}
		if rec.Clean() {
			t.Fatalf("torn log reported Clean at cut %d", cut)
		}
	}
}

func TestRecoverBitFlip(t *testing.T) {
	var log []byte
	log = appendUndo(log, 1, testFrame(0x1000, 1))
	log = appendCommit(log, 1)
	for bit := 0; bit < len(log)*8; bit++ {
		mutated := append([]byte(nil), log...)
		mutated[bit/8] ^= 1 << (bit % 8)
		rec := Recover(mutated, mem.NewMemory())
		if rec.Clean() {
			t.Fatalf("bit flip at %d reported Clean: %+v", bit, rec)
		}
	}
}

func TestRecoverIdempotent(t *testing.T) {
	img := mem.NewMemory()
	var log []byte
	log = appendUndo(log, 1, testFrame(0x1000, 7))
	log = appendUndo(log, 1, testFrame(0x2000, 17))
	Recover(log, img)
	first := img.Fingerprint()
	Recover(log, img)
	if img.Fingerprint() != first {
		t.Fatal("recovery replay is not idempotent")
	}
}

func TestRecoverRejectsUnalignedLine(t *testing.T) {
	var log []byte
	log = appendUndo(log, 1, undoFrame{line: mem.Addr(0x1003)}) // checksummed but unaligned
	rec := Recover(log, mem.NewMemory())
	if !rec.Corrupt {
		t.Fatalf("unaligned line address not flagged Corrupt: %+v", rec)
	}
}

func TestDomainFirstTouchLogging(t *testing.T) {
	d := New(Config{Enabled: true}, faults.Plan{}, 1)
	base := mem.Addr(0x4000)
	d.Track(base, 2*mem.WordsPerLine)
	d.Begin(0)
	if cost := d.OnStore(0, base, 1); cost != d.Costs().LogCost {
		t.Fatalf("first store cost = %d, want LogCost %d", cost, d.Costs().LogCost)
	}
	if cost := d.OnStore(0, base.Offset(1), 2); cost != 0 {
		t.Fatalf("second store to the same line cost = %d, want 0", cost)
	}
	if cost := d.OnStore(0, base+mem.LineSize, 3); cost != d.Costs().LogCost {
		t.Fatalf("store to a second line cost = %d, want LogCost", cost)
	}
	if cost := d.OnStore(0, base+0x10000, 4); cost != 0 {
		t.Fatal("untracked store charged a log cost")
	}
	if got := len(d.DirtyLines(0)); got != 2 {
		t.Fatalf("DirtyLines = %d, want 2", got)
	}
	if got := d.img.Load(base); got != 1 {
		t.Fatalf("write-through missing: img word = %d, want 1", got)
	}
}

func TestDomainArmTriggers(t *testing.T) {
	d := New(Config{Enabled: true}, faults.Plan{
		PmemCrashPoint: faults.PmemCrashMidLog, PmemCrashEvery: 3,
	}, 1)
	var fired []uint64
	for i := uint64(1); i <= 9; i++ {
		if d.Arm(0) != "" {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 3 || fired[1] != 6 || fired[2] != 9 {
		t.Fatalf("crash-every=3 fired at %v, want [3 6 9]", fired)
	}

	nth := New(Config{Enabled: true}, faults.Plan{PmemCrashPoint: faults.PmemCrashTornTail}, 1)
	// PmemCrashTx defaults to 1 when a point is set without a trigger.
	if nth.Arm(0) == "" {
		t.Fatal("defaulted crash-tx=1 did not fire on the first commit")
	}
	if nth.Arm(0) != "" {
		t.Fatal("crash-tx=1 fired again on the second commit")
	}
}
