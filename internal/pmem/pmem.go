// Package pmem simulates a persistent-memory tier behind the machine.
//
// The model splits memory into a volatile cache domain (the machine's
// ordinary mem.Memory) and a persist domain (an image of the tracked
// durable regions). Workloads register durable regions with the
// machine; transactional stores to tracked cache lines eagerly append
// per-line undo-log records (pre-image captured at the transaction's
// first store to the line, as in go-redis-pmem's transaction package),
// and the durable-commit epilogue issues explicit flush, fence, and
// commit-record operations with configurable cycle costs — the
// persistence stalls the profiler learns to attribute.
//
// Eviction is modeled adversarially: a store to a tracked line reaches
// the persist domain immediately (as if the line were evicted right
// after the store), which is the worst case an undo-logging protocol
// must survive — a crash then leaves uncommitted data in the persist
// domain, and recovery must really roll it back from the log. The one
// ordering real undo logging enforces with its log-entry fence is
// preserved: a line's data can be in the persist domain only if its
// log entry is durable, so when a crash tears log entries off, the
// torn entries' lines revert to their pre-images (the eviction cannot
// have happened yet).
//
// Crash points are injected through faults.Plan (PmemCrashPoint plus a
// commit-count trigger); at a triggering durable commit the domain
// tears the log per the crash class, runs Recover against the persist
// image, reloads the volatile copies of the transaction's lines from
// the recovered image (the reboot), and the runtime re-executes the
// section — so a run with injected crashes must converge to the same
// final memory as a crash-free run.
package pmem

import (
	"sort"

	"txsampler/internal/faults"
	"txsampler/internal/mem"
)

// Config enables and prices the persistent-memory tier. The zero value
// is disabled; enabling with zero costs applies the defaults.
type Config struct {
	// Enabled turns the persistent tier on. Disabled, the machine has
	// no persist domain and every pmem hook is a no-op.
	Enabled bool
	// FlushCost is the cycle cost of one cache-line writeback (CLWB).
	FlushCost uint64
	// FenceCost is the cycle cost of the persist fence (SFENCE +
	// write-pending-queue drain) ordering flushes before the commit
	// record.
	FenceCost uint64
	// LogCost is the cycle cost of one eager undo-log append: the
	// entry write plus the flush+fence that orders it before the data
	// store.
	LogCost uint64
	// CommitCost is the cycle cost of writing and persisting the
	// commit record.
	CommitCost uint64
}

// Default per-operation cycle costs, loosely calibrated to published
// Optane DC latencies relative to the machine's cache model: a flush
// is a writeback to the persist buffer, a fence drains it (the
// expensive part), a log append is an entry write plus its ordering
// flush+fence, and the commit record is one small persisted write.
const (
	DefaultFlushCost  = 120
	DefaultFenceCost  = 250
	DefaultLogCost    = 180
	DefaultCommitCost = 150
)

func (c Config) withDefaults() Config {
	if !c.Enabled {
		return c
	}
	if c.FlushCost == 0 {
		c.FlushCost = DefaultFlushCost
	}
	if c.FenceCost == 0 {
		c.FenceCost = DefaultFenceCost
	}
	if c.LogCost == 0 {
		c.LogCost = DefaultLogCost
	}
	if c.CommitCost == 0 {
		c.CommitCost = DefaultCommitCost
	}
	return c
}

// CrashStats counts the crash events the domain injected and the
// recovery work they caused.
type CrashStats struct {
	Crashes    uint64 // injected whole-machine crashes
	RolledBack uint64 // undo records replayed by recovery
	TornTails  uint64 // recoveries that detected a torn log tail
	Commits    uint64 // durable commits completed (bookkeeping)
}

// section is one thread's in-progress durable transaction: the lines
// logged so far (first-touch order), their pre-image records, and the
// accumulated undo log bytes.
type section struct {
	active bool
	seq    uint64
	txid   uint64
	logged map[mem.Addr]bool
	frames []undoFrame
	log    []byte
}

// Domain is the persist-domain simulation. All methods mutate shared
// machine state and must be called at the owning thread's canonical
// scheduling position (under the scheduler gate), exactly like the
// memory and HTM engines.
type Domain struct {
	cfg Config
	img *mem.Memory // the persist-domain image of tracked regions

	ranges  []trackRange
	tracked map[mem.Addr]bool // cache line -> durable
	synced  bool

	sections []section

	crashPoint string
	crashTx    uint64
	crashEvery uint64
	commits    uint64 // durable-commit attempts, in canonical order

	stats CrashStats
}

type trackRange struct {
	base  mem.Addr
	words int
}

// New builds the domain for an enabled config. The crash trigger comes
// from the machine-perturbing fault plan; threads sizes the per-thread
// section table.
func New(cfg Config, plan faults.Plan, threads int) *Domain {
	plan = plan.WithDefaults()
	return &Domain{
		cfg:        cfg.withDefaults(),
		img:        mem.NewMemory(),
		tracked:    make(map[mem.Addr]bool),
		sections:   make([]section, threads),
		crashPoint: plan.PmemCrashPoint,
		crashTx:    plan.PmemCrashTx,
		crashEvery: plan.PmemCrashEvery,
	}
}

// Costs returns the effective (defaulted) per-operation cycle costs.
func (d *Domain) Costs() Config { return d.cfg }

// Track registers [base, base+words*WordSize) as durable. Every cache
// line the range touches becomes tracked. Workloads call it at build
// time, before the machine runs.
func (d *Domain) Track(base mem.Addr, words int) {
	if words <= 0 {
		return
	}
	d.ranges = append(d.ranges, trackRange{base: base, words: words})
	last := base.Offset(words - 1).Line()
	for line := base.Line(); line <= last; line += mem.LineSize {
		d.tracked[line] = true
	}
}

// Tracked reports whether the line containing a is durable.
func (d *Domain) Tracked(a mem.Addr) bool { return d.tracked[a.Line()] }

// Sync copies the tracked regions' current volatile contents into the
// persist image — the machine calls it once at run start, after the
// workload's build-time initialization stores.
func (d *Domain) Sync(vol *mem.Memory) {
	if d.synced {
		return
	}
	d.synced = true
	for _, r := range d.ranges {
		for i := 0; i < r.words; i++ {
			a := r.base.Offset(i)
			if v := vol.Load(a); v != 0 {
				d.img.Store(a, v)
			}
		}
	}
}

// Begin opens thread tid's durable section. The runtime calls it at
// every critical-section entry; a section that never stores to a
// tracked line stays empty and commits for free.
func (d *Domain) Begin(tid int) {
	s := &d.sections[tid]
	s.active = true
	s.seq++
	s.txid = uint64(tid+1)<<32 | s.seq
	s.frames = s.frames[:0]
	s.log = s.log[:0]
	if s.logged == nil {
		s.logged = make(map[mem.Addr]bool)
	} else {
		clear(s.logged)
	}
}

// Pending reports whether tid's section touched durable lines and so
// needs the persist epilogue.
func (d *Domain) Pending(tid int) bool {
	s := &d.sections[tid]
	return s.active && len(s.frames) > 0
}

// OnStore is the write-through hook for a store of v at a. For a
// tracked line inside an active section, the first touch appends an
// undo record (pre-image read from the persist image) and returns the
// log-append cycle cost; every tracked store then reaches the persist
// image immediately (adversarial eviction). Untracked stores cost
// nothing and change nothing.
func (d *Domain) OnStore(tid int, a mem.Addr, v mem.Word) (logCost uint64) {
	line := a.Line()
	if !d.tracked[line] {
		return 0
	}
	s := &d.sections[tid]
	if s.active && !s.logged[line] {
		var f undoFrame
		f.line = line
		for i := range f.vals {
			f.vals[i] = d.img.Load(line.Offset(i))
		}
		s.logged[line] = true
		s.frames = append(s.frames, f)
		s.log = appendUndo(s.log, s.txid, f)
		logCost = d.cfg.LogCost
	}
	d.img.Store(a, v)
	return logCost
}

// DirtyLines returns tid's logged lines in address order — the flush
// schedule of the persist epilogue.
func (d *Domain) DirtyLines(tid int) []mem.Addr {
	s := &d.sections[tid]
	lines := make([]mem.Addr, 0, len(s.frames))
	for _, f := range s.frames {
		lines = append(lines, f.line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// Arm counts one durable-commit attempt and returns the crash class to
// inject at it ("" for none). Calls happen in the scheduler's canonical
// order, so the trigger is deterministic.
func (d *Domain) Arm(tid int) string {
	d.commits++
	if d.crashPoint == "" {
		return ""
	}
	if d.crashTx != 0 && d.commits == d.crashTx {
		return d.crashPoint
	}
	if d.crashEvery != 0 && d.commits%d.crashEvery == 0 {
		return d.crashPoint
	}
	return ""
}

// Commit appends tid's commit record to its undo log.
func (d *Domain) Commit(tid int) {
	s := &d.sections[tid]
	s.log = appendCommit(s.log, s.txid)
}

// Complete closes tid's section after a durable commit: the log is
// truncated (its transaction is committed; nothing to replay).
func (d *Domain) Complete(tid int) {
	d.sections[tid].active = false
	d.stats.Commits++
}

// Crash injects a whole-machine crash at the given point of tid's
// persist epilogue, then recovers: tear the log per the crash class,
// restore the pre-images of lines whose log entries were torn off
// (their data cannot have been evicted before the entry was durable),
// replay the torn log against the persist image, and — unless the
// commit record made it — reload the volatile copies of the
// transaction's lines from the recovered image, as the post-reboot
// process would. Returns the recovery summary.
func (d *Domain) Crash(tid int, class string, vol *mem.Memory) Recovery {
	s := &d.sections[tid]
	torn := s.log
	restoreFrom := len(s.frames) // frames whose log entries the crash tore off
	switch class {
	case faults.PmemCrashMidLog:
		k := len(s.frames) / 2
		torn = s.log[:k*undoFrameSize]
		restoreFrom = k
	case faults.PmemCrashTornTail:
		if len(s.log) >= undoFrameSize {
			torn = s.log[:len(s.log)-undoFrameSize/2]
			restoreFrom = len(s.frames) - 1
		} else {
			torn = s.log[:len(s.log)/2]
			restoreFrom = 0
		}
	}
	for _, f := range s.frames[restoreFrom:] {
		for i, w := range f.vals {
			d.img.Store(f.line.Offset(i), w)
		}
	}
	rec := Recover(torn, d.img)
	d.stats.Crashes++
	d.stats.RolledBack += uint64(rec.RolledBack)
	if rec.Torn {
		d.stats.TornTails++
	}
	if class != faults.PmemCrashAfterCommit {
		for _, f := range s.frames {
			for i := range f.vals {
				a := f.line.Offset(i)
				vol.Store(a, d.img.Load(a))
			}
		}
	}
	s.active = false
	return rec
}

// Log returns the at-rest contents of the undo-log region: every
// thread's most recent section log, concatenated in thread order. On a
// cleanly stopped machine a recovery pass over it must be a no-op —
// every surviving record belongs to a committed transaction.
func (d *Domain) Log() []byte {
	var out []byte
	for i := range d.sections {
		out = append(out, d.sections[i].log...)
	}
	return out
}

// Fingerprint hashes the persist-domain image, exactly as
// mem.Fingerprint hashes the volatile image.
func (d *Domain) Fingerprint() uint64 { return d.img.Fingerprint() }

// Image exposes the persist-domain image (tests and recovery checks).
func (d *Domain) Image() *mem.Memory { return d.img }

// Stats returns the domain's crash-injection counters.
func (d *Domain) Stats() CrashStats { return d.stats }

// FaultStats maps the crash counters into the fault-injection report.
func (d *Domain) FaultStats() faults.Stats {
	return faults.Stats{
		PmemCrashes:    d.stats.Crashes,
		PmemRolledBack: d.stats.RolledBack,
		PmemTornTails:  d.stats.TornTails,
	}
}
