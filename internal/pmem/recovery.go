package pmem

import (
	"encoding/binary"
	"hash/crc32"

	"txsampler/internal/mem"
)

// Recovery summarizes one recovery replay over an undo log.
type Recovery struct {
	// Entries is the number of complete, checksummed undo records
	// parsed; Commits the number of commit records.
	Entries int
	Commits int
	// RolledBack counts the undo records replayed into the image:
	// every entry after the last commit record, newest first.
	RolledBack int
	// Torn reports that the log ended inside a record — the signature
	// of a crash mid-append.
	Torn bool
	// Corrupt reports a checksum mismatch, an unknown record tag, or a
	// malformed line address. Parsing stops at the first corrupt frame;
	// everything before it is still replayed.
	Corrupt bool
}

// Clean reports a recovery that found a fully parsed log whose tail is
// durably committed: nothing torn, nothing corrupt, nothing to roll
// back. Any corruption or rollback makes the recovery non-clean.
func (r Recovery) Clean() bool { return !r.Torn && !r.Corrupt && r.RolledBack == 0 }

// Recover replays an undo log against the persist-domain image: undo
// records written after the last commit record belong to a transaction
// that did not commit durably, and their cache-line pre-images are
// restored newest-first. The decoder is total — torn tails, bit flips,
// duplicated entries, and arbitrary garbage terminate parsing with the
// matching flag set, never a panic — and replay is idempotent: records
// store absolute pre-images, so recovering twice yields the same image.
func Recover(log []byte, img *mem.Memory) Recovery {
	var rec Recovery
	var pending []undoFrame // undo records since the last commit record
	off := 0
	for off < len(log) {
		switch log[off] {
		case tagUndo:
			if off+undoFrameSize > len(log) {
				rec.Torn = true
				return finishRecover(rec, pending, img)
			}
			frame := log[off : off+undoFrameSize]
			sum := binary.LittleEndian.Uint32(frame[undoFrameSize-4:])
			if crc32.ChecksumIEEE(frame[:undoFrameSize-4]) != sum {
				rec.Corrupt = true
				return finishRecover(rec, pending, img)
			}
			line := mem.Addr(binary.LittleEndian.Uint64(frame[9:17]))
			if line.Line() != line {
				// A checksummed frame naming a non-line-aligned address
				// was corrupted before it was summed; replaying it would
				// scribble on unaligned words.
				rec.Corrupt = true
				return finishRecover(rec, pending, img)
			}
			var f undoFrame
			f.line = line
			for i := 0; i < mem.WordsPerLine; i++ {
				f.vals[i] = binary.LittleEndian.Uint64(frame[17+8*i:])
			}
			pending = append(pending, f)
			rec.Entries++
			off += undoFrameSize
		case tagCommit:
			if off+commitFrameSize > len(log) {
				rec.Torn = true
				return finishRecover(rec, pending, img)
			}
			frame := log[off : off+commitFrameSize]
			sum := binary.LittleEndian.Uint32(frame[commitFrameSize-4:])
			if crc32.ChecksumIEEE(frame[:commitFrameSize-4]) != sum {
				rec.Corrupt = true
				return finishRecover(rec, pending, img)
			}
			rec.Commits++
			pending = pending[:0]
			off += commitFrameSize
		default:
			rec.Corrupt = true
			return finishRecover(rec, pending, img)
		}
	}
	return finishRecover(rec, pending, img)
}

// finishRecover rolls back the uncommitted tail newest-first.
func finishRecover(rec Recovery, pending []undoFrame, img *mem.Memory) Recovery {
	for i := len(pending) - 1; i >= 0; i-- {
		f := pending[i]
		for j, w := range f.vals {
			img.Store(f.line.Offset(j), w)
		}
		rec.RolledBack++
	}
	return rec
}
