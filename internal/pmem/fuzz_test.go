package pmem

import (
	"testing"

	"txsampler/internal/mem"
)

// FuzzRecover feeds the undo-log recovery decoder arbitrary bytes —
// torn tails, bit flips, duplicated entries, garbage — and asserts the
// decoder's total-function contract: never panic, never store outside
// line-aligned words, never report a log Clean when parsing stopped
// early, and stay idempotent under replay.
func FuzzRecover(f *testing.F) {
	var valid []byte
	valid = appendUndo(valid, 1, testFrame(0x1000, 5))
	valid = appendCommit(valid, 1)
	f.Add(valid)
	f.Add(valid[:len(valid)-7])                         // torn commit record
	f.Add(valid[:undoFrameSize/2])                      // torn undo record
	f.Add(append(append([]byte{}, valid...), valid...)) // duplicated
	flipped := append([]byte(nil), valid...)
	flipped[3] ^= 0x40 // bit flip in the txid
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{'U'})
	f.Add([]byte{'C', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	var uncommitted []byte
	uncommitted = appendUndo(uncommitted, 2, testFrame(0x2000, 9))
	f.Add(uncommitted)

	f.Fuzz(func(t *testing.T, log []byte) {
		img := mem.NewMemory()
		empty := img.Fingerprint()
		rec := Recover(log, img) // must not panic for any input
		if rec.RolledBack > rec.Entries {
			t.Fatalf("rolled back %d of %d parsed entries", rec.RolledBack, rec.Entries)
		}
		if rec.Clean() {
			// A clean verdict promises the whole log parsed as committed
			// transactions: byte count must account for every record and
			// nothing may have been replayed.
			if rec.RolledBack != 0 {
				t.Fatalf("Clean with %d rollbacks", rec.RolledBack)
			}
			want := rec.Entries*undoFrameSize + rec.Commits*commitFrameSize
			if want != len(log) {
				t.Fatalf("Clean but parsed %d bytes of %d", want, len(log))
			}
			if img.Fingerprint() != empty {
				t.Fatal("Clean recovery mutated the image")
			}
		}
		// Idempotence: replaying the same log over the recovered image
		// must be a fixed point (absolute pre-images).
		first := img.Fingerprint()
		Recover(log, img)
		if img.Fingerprint() != first {
			t.Fatal("recovery replay is not idempotent")
		}
	})
}
