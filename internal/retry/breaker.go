package retry

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the breaker rejects
// calls. Callers that want to keep trying should treat it as
// retryable with the breaker's RemainingCooldown as the delay.
var ErrOpen = errors.New("retry: circuit breaker open")

// Breaker is a per-peer circuit breaker: a streak of consecutive
// failures opens it, rejecting calls without touching the peer for a
// cooldown; after the cooldown a single half-open probe is let
// through, and its outcome closes or re-opens the circuit. The fleet
// uploader keeps one per node so a dead daemon costs each node one
// probe per cooldown instead of a full retry storm.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe (default 1s).
	Cooldown time.Duration
	// Now is the clock (default time.Now); tests inject a fake.
	Now func() time.Time

	mu       sync.Mutex
	failures int
	open     bool
	openedAt time.Time
	probing  bool

	// trips counts open transitions, for telemetry.
	trips uint64
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

func (b *Breaker) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// Allow reports whether a call may proceed. While open it returns
// ErrOpen until the cooldown elapses, then admits exactly one
// half-open probe; further calls keep getting ErrOpen until Record
// settles the probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return nil
	}
	if b.probing || b.now().Sub(b.openedAt) < b.cooldown() {
		return ErrOpen
	}
	b.probing = true
	return nil
}

// Record reports one call outcome. Success closes the breaker and
// clears the failure streak; failure extends the streak and opens (or
// re-opens, after a failed probe) the circuit once the streak reaches
// Threshold.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.failures = 0
		b.open = false
		b.probing = false
		return
	}
	b.failures++
	if b.probing {
		// Failed half-open probe: re-open for a fresh cooldown.
		b.probing = false
		b.openedAt = b.now()
		b.trips++
		return
	}
	if !b.open && b.failures >= b.threshold() {
		b.open = true
		b.openedAt = b.now()
		b.trips++
	}
}

// RemainingCooldown returns how long until the next half-open probe
// is admitted (0 when closed or already due).
func (b *Breaker) RemainingCooldown() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return 0
	}
	rem := b.cooldown() - b.now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Open reports whether the breaker currently rejects calls.
func (b *Breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
