package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDelayGrowsExponentiallyUncapped(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond}
	want := []time.Duration{100, 200, 400, 800, 1600}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestDelayDefaultsAndCap(t *testing.T) {
	p := Policy{}
	if got := p.Delay(1); got != 100*time.Millisecond {
		t.Errorf("zero policy Delay(1) = %v, want 100ms", got)
	}
	p = Policy{BaseDelay: 50 * time.Millisecond, MaxDelay: 180 * time.Millisecond}
	if got := p.Delay(3); got != 180*time.Millisecond {
		t.Errorf("capped Delay(3) = %v, want 180ms", got)
	}
	// Huge attempt numbers must not overflow past the cap.
	if got := p.Delay(200); got != 180*time.Millisecond {
		t.Errorf("capped Delay(200) = %v, want 180ms", got)
	}
}

func TestDelayJitterBoundsAndDeterminism(t *testing.T) {
	seq := []float64{0, 0.999, 0.5}
	i := 0
	p := Policy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5,
		Rand: func() float64 { v := seq[i%len(seq)]; i++; return v }}
	lo := time.Duration(float64(100*time.Millisecond) * 0.5)
	for k := 0; k < 3; k++ {
		d := p.Delay(1)
		if d < lo || d > 100*time.Millisecond {
			t.Errorf("jittered delay %v outside [%v, 100ms]", d, lo)
		}
	}
	// Nil Rand still jitters, deterministically (mid-range).
	p.Rand = nil
	if a, b := p.Delay(1), p.Delay(1); a != b {
		t.Errorf("nil-Rand jitter is not deterministic: %v vs %v", a, b)
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	var slept []time.Duration
	var retried []int
	calls := 0
	p := Policy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond,
		Sleep:   func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
		OnRetry: func(a int, _ error, _ time.Duration) { retried = append(retried, a) },
	}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	wantSleeps := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(wantSleeps) || slept[0] != wantSleeps[0] || slept[1] != wantSleeps[1] {
		t.Errorf("slept = %v, want %v", slept, wantSleeps)
	}
	if len(retried) != 2 || retried[0] != 1 || retried[1] != 2 {
		t.Errorf("OnRetry attempts = %v, want [1 2]", retried)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	boom := errors.New("boom")
	p := Policy{MaxAttempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := p.Do(context.Background(), func(context.Context) error { calls++; return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want %v", err, boom)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	calls := 0
	fatal := errors.New("fatal")
	p := Policy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	err := p.Do(context.Background(), func(context.Context) error { calls++; return Permanent(fatal) })
	if !errors.Is(err, fatal) {
		t.Fatalf("Do = %v, want %v", err, fatal)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
	if !IsPermanent(Permanent(fatal)) || IsPermanent(fatal) {
		t.Error("IsPermanent misclassifies")
	}
}

func TestDoHonorsAfterHint(t *testing.T) {
	var slept []time.Duration
	calls := 0
	p := Policy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond,
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }}
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			return After(errors.New("shed"), 750*time.Millisecond)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(slept) != 1 || slept[0] != 750*time.Millisecond {
		t.Errorf("slept = %v, want [750ms] (server hint must win)", slept)
	}
	if After(nil, time.Second) != nil {
		t.Error("After(nil) != nil")
	}
	if d := AfterDelay(After(errors.New("x"), 2*time.Second)); d != 2*time.Second {
		t.Errorf("AfterDelay = %v, want 2s", d)
	}
	if d := AfterDelay(errors.New("x")); d != 0 {
		t.Errorf("AfterDelay(plain) = %v, want 0", d)
	}
}

func TestDoCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := Policy{MaxAttempts: 3}
	calls := 0
	err := p.Do(ctx, func(context.Context) error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on canceled ctx = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("op ran %d times on a canceled context", calls)
	}
}

func TestDoCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel() // cancel between attempt and backoff sleep
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestSleepContextAware(t *testing.T) {
	if err := Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep(0) = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep on canceled ctx = %v", err)
	}
	start := time.Now()
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Errorf("Sleep(1ms) = %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("Sleep overslept wildly")
	}
}
