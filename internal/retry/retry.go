// Package retry is the shared client-resilience layer: bounded
// exponential backoff with optional jitter, context-aware sleeping,
// permanent-error short-circuiting, server-directed delay hints
// (Retry-After), and a per-peer circuit breaker. The campaign runner
// and the fleet uploader both build their retry loops on it, so one
// backoff implementation — with one deterministic-delay contract —
// serves every degraded path in the system.
package retry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Policy describes one bounded retry schedule. The zero value retries
// nothing (a single attempt) with the default 100ms base delay; all
// fields are optional.
type Policy struct {
	// MaxAttempts is the total number of attempts Do makes (first try
	// included). <= 0 means exactly one attempt.
	MaxAttempts int
	// BaseDelay is the delay after the first failure (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown delay; 0 leaves it uncapped.
	MaxDelay time.Duration
	// Multiplier is the per-attempt growth factor (default 2).
	Multiplier float64
	// Jitter randomizes each delay down into [(1-Jitter)*d, d]. 0 (the
	// default) keeps delays fully deterministic — the campaign runner
	// relies on that — while distributed clients should set ~0.2 so a
	// fleet of nodes rejected together does not retry together.
	Jitter float64
	// Rand supplies jitter randomness in [0,1); nil uses a fixed
	// mid-range value so even jittered delays are reproducible unless
	// the caller wires a real (or seeded) source.
	Rand func() float64
	// Sleep waits between attempts; nil uses a context-aware timer.
	// Tests inject a recorder here.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes every scheduled retry: the
	// attempt that just failed (1-based), its error, and the delay
	// about to be slept. Callers hang metrics and logging off it.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// Delay returns the backoff delay after the given 1-based failed
// attempt: BaseDelay * Multiplier^(attempt-1), capped at MaxDelay,
// then jittered down by up to Jitter.
func (p Policy) Delay(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := float64(base)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		u := 0.5
		if p.Rand != nil {
			u = p.Rand()
		}
		d -= p.Jitter * d * u
	}
	return time.Duration(d)
}

// Do runs op until it succeeds, returns a permanent error, exhausts
// MaxAttempts, or the context is canceled. A retryable error's delay
// is Delay(attempt) unless the error carries an After hint, which
// wins (the server knows its own backlog better than the client's
// curve does).
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("retry: canceled before attempt %d: %w", attempt, err)
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if attempt >= attempts {
			return err
		}
		d := p.Delay(attempt)
		var hint *afterError
		if errors.As(err, &hint) && hint.delay > 0 {
			d = hint.delay
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, d)
		}
		sleep := p.Sleep
		if sleep == nil {
			sleep = Sleep
		}
		if serr := sleep(ctx, d); serr != nil {
			return fmt.Errorf("retry: canceled during backoff after attempt %d: %w (last error: %v)", attempt, serr, err)
		}
	}
}

// Sleep waits d or until the context is done, returning the context's
// error in the latter case.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SeededRand returns a deterministic jitter source for Policy.Rand:
// an xorshift64* stream in [0,1) that is safe for concurrent use.
// Distinct seeds give distinct streams, so a fleet of clients can
// jitter apart while each stays reproducible.
func SeededRand(seed int64) func() float64 {
	var mu sync.Mutex
	state := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	return func() float64 {
		mu.Lock()
		defer mu.Unlock()
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state>>11) / float64(1<<53)
	}
}

// permanentError marks an error Do must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns err as-is.
// A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err was marked Permanent.
func IsPermanent(err error) bool {
	var perm *permanentError
	return errors.As(err, &perm)
}

// afterError carries a server-directed retry delay.
type afterError struct {
	err   error
	delay time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// After wraps a retryable err with an explicit delay before the next
// attempt (an HTTP 429's Retry-After). A nil err stays nil.
func After(err error, delay time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, delay: delay}
}

// AfterDelay extracts a delay attached with After (0 if none).
func AfterDelay(err error) time.Duration {
	var hint *afterError
	if errors.As(err, &hint) {
		return hint.delay
	}
	return 0
}
