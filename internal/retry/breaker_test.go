package retry

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives a Breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newBreaker(c *fakeClock, thr int, cd time.Duration) *Breaker {
	return &Breaker{Threshold: thr, Cooldown: cd, Now: c.now}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(clk, 3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow before threshold: %v", err)
		}
		b.Record(false)
	}
	if b.Open() {
		t.Fatal("open before threshold")
	}
	b.Record(false)
	if !b.Open() {
		t.Fatal("not open after threshold failures")
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow while open = %v, want ErrOpen", err)
	}
	if b.Trips() != 1 {
		t.Errorf("trips = %d, want 1", b.Trips())
	}
	if rem := b.RemainingCooldown(); rem != time.Second {
		t.Errorf("RemainingCooldown = %v, want 1s", rem)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(clk, 1, time.Second)
	b.Record(false) // opens
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	// Only one probe is admitted until it settles.
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe = %v, want ErrOpen", err)
	}
	// Failed probe re-opens for a fresh cooldown.
	b.Record(false)
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow after failed probe = %v, want ErrOpen", err)
	}
	if b.Trips() != 2 {
		t.Errorf("trips = %d, want 2", b.Trips())
	}
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(true)
	if b.Open() {
		t.Fatal("open after successful probe")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after close: %v", err)
	}
	if rem := b.RemainingCooldown(); rem != 0 {
		t.Errorf("RemainingCooldown when closed = %v, want 0", rem)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(clk, 2, time.Second)
	b.Record(false)
	b.Record(true)
	b.Record(false)
	if b.Open() {
		t.Fatal("streak did not reset on success")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := &Breaker{}
	for i := 0; i < 5; i++ {
		b.Record(false)
	}
	if !b.Open() {
		t.Fatal("default threshold (5) did not open")
	}
	if rem := b.RemainingCooldown(); rem <= 0 || rem > time.Second {
		t.Errorf("default cooldown remaining = %v, want (0, 1s]", rem)
	}
}
