package progen_test

import (
	"reflect"
	"testing"

	"txsampler"
	"txsampler/internal/progen"
)

// TestGenerateDeterministic: equal configs must yield equal programs.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := progen.Generate(progen.Config{Seed: seed})
		b := progen.Generate(progen.Config{Seed: seed})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: programs differ:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestGenerateVariety: across a window of seeds the generator must
// produce every region kind — otherwise the validation campaign is
// not exercising the op set it claims to.
func TestGenerateVariety(t *testing.T) {
	seen := make(map[progen.Kind]bool)
	for seed := int64(0); seed < 50; seed++ {
		p := progen.Generate(progen.Config{Seed: seed})
		if len(p.TrueSites)+len(p.FalseSites) == 0 {
			t.Fatalf("seed %d: no sharing sites (first region must be contended)", seed)
		}
		for _, r := range p.Regions {
			seen[r.Kind] = true
			if got := 2 * (r.Depth + r.Fanout + 1); got > 12 {
				t.Fatalf("seed %d region %d: %d in-tx branches exceeds the LBR budget", seed, r.ID, got)
			}
		}
	}
	for k := progen.Kind(0); k < progen.NumKinds; k++ {
		if !seen[k] {
			t.Errorf("kind %s never generated in 50 seeds", k)
		}
	}
}

// TestProgramsRun: generated programs must execute to completion with
// their memory-state checks passing, both natively and profiled.
func TestProgramsRun(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := progen.Generate(progen.Config{Seed: seed})
		w := p.Workload()
		if _, err := txsampler.RunWorkload(w, txsampler.Options{Seed: seed}); err != nil {
			t.Fatalf("seed %d native: %v", seed, err)
		}
		res, err := txsampler.RunWorkload(w, txsampler.Options{Seed: seed, Profile: true})
		if err != nil {
			t.Fatalf("seed %d profiled: %v", seed, err)
		}
		if res.GroundTruth.Commits == 0 {
			t.Fatalf("seed %d: no commits in ground truth", seed)
		}
	}
}

// TestProgramsDeterministic: the same program under the same options
// must produce identical ground truth and elapsed cycles.
func TestProgramsDeterministic(t *testing.T) {
	p := progen.Generate(progen.Config{Seed: 7})
	a, err := txsampler.RunWorkload(p.Workload(), txsampler.Options{Seed: 7, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := txsampler.RunWorkload(p.Workload(), txsampler.Options{Seed: 7, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.ElapsedCycles != b.ElapsedCycles {
		t.Fatalf("elapsed cycles differ: %d vs %d", a.ElapsedCycles, b.ElapsedCycles)
	}
	if !reflect.DeepEqual(a.GroundTruth, b.GroundTruth) {
		t.Fatalf("ground truth differs:\n%+v\n%+v", a.GroundTruth, b.GroundTruth)
	}
}
