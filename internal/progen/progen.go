// Package progen generates seed-deterministic random transactional
// programs: small DSL descriptions over the simulated machine's op set
// (transaction begin/end, loads/stores with controllable footprint and
// conflict topology, nested transactions and fallback-lock paths,
// in-transaction call trees, unfriendly instructions) that compile
// into runnable htmbench workloads.
//
// The generator exists to exercise the profiler on the long tail of
// transaction shapes a fixed benchmark suite cannot cover (paper
// §7.2's hidden-ground-truth validation, extended to randomized
// programs). Every program records, by construction, the ground truth
// the validation harness (internal/validate) judges the profiler
// against: which source sites truly share data, which falsely share a
// cache line, what the final memory state must be, and which abort
// causes its regions can produce.
//
// Generation is a pure function of the Config: the same seed yields
// the same Program, and building the program on two machines yields
// bit-identical executions for equal machine seeds.
package progen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"txsampler/internal/htmbench"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/rtm"
)

// Kind enumerates the region templates the generator composes
// programs from. Each kind is designed to provoke one documented
// profiler-visible behaviour with a known ground truth.
type Kind uint8

const (
	// KindPrivate updates a per-thread private cache line: the
	// low-abort baseline region.
	KindPrivate Kind = iota
	// KindTrueShare makes every thread read-modify-write the same
	// word: conflict aborts plus true-sharing memory samples.
	KindTrueShare
	// KindFalseShare gives each thread its own word on one shared
	// cache line: conflict aborts despite disjoint data, plus
	// false-sharing memory samples.
	KindFalseShare
	// KindCapacity writes a strided footprint through one L1 set; at
	// Lines > associativity the write set overflows and the region
	// aborts with a capacity(write) cause on every attempt.
	KindCapacity
	// KindSyscall executes an unfriendly instruction inside the
	// transaction on every Every'th iteration: synchronous aborts and
	// guaranteed fallback serialization.
	KindSyscall
	// KindExplicit XABORTs the transaction on every Every'th
	// iteration: explicit aborts with fallback re-execution.
	KindExplicit
	// KindNested opens a nested transaction (TSX flattening) around
	// its update; in the fallback path the nested begin runs
	// non-speculatively under the held lock.
	KindNested

	// NumKinds is the number of region kinds in the default random
	// mix. The STM-biased templates below sit past it so the default
	// mix (and every existing seed's program) is unchanged.
	NumKinds = iota
)

// STM-biased templates, selected only under Config.StmBias: each one
// forces the slow path with an unfriendly instruction so that, under a
// software-capable hybrid policy, the region executes as a software
// transaction (and under lock-only, under the global lock) — the
// workloads the four-way mode-classification validation runs on.
const (
	// KindStmConflict forces the slow path and holds a wide
	// read-compute-write window over one contended word: software
	// validation failures, undo-log rollbacks, and retries.
	KindStmConflict Kind = NumKinds + iota
	// KindStmCapacity forces the slow path and writes a strided
	// multi-line footprint: large read/write sets, long validation
	// scans, and many per-word locks held at once.
	KindStmCapacity
)

// Pmem-biased templates, selected only under Config.PmemBias: durable
// regions registered with the machine's persistent-memory tier, so
// every committed section runs the durable-commit persist epilogue —
// the workloads the persistence-stall classification validation runs
// on. Durable lines are strictly thread-private, keeping generated
// programs sound under crash injection and section re-execution.
const (
	// KindPmemKV read-modify-writes one durable per-thread line, as a
	// persistent key-value store's put path would.
	KindPmemKV Kind = KindStmCapacity + 1 + iota
	// KindPmemLog appends to a durable per-thread log and bumps a
	// durable cursor: two persistent lines per commit.
	KindPmemLog
)

// Elision-biased templates, selected only under Config.ElisionBias:
// each region runs under its own rtm.ElidedLock (not the program's
// global lock), and each kind is built so the elision verdict is
// unambiguous by construction — ShouldElide is the ground truth the
// verdict validation scores against.
const (
	// KindElideWin updates a short per-thread private counter: the
	// speculative path essentially always commits, so elision wins.
	KindElideWin Kind = KindPmemLog + 1 + iota
	// KindElideRead reads a never-written shared line and bumps a
	// private counter — the RWMutex read-mostly shape. No conflicts,
	// so elision wins.
	KindElideRead
	// KindElideSyscall executes an unfriendly instruction on every
	// single visit: every speculative attempt sync-aborts and the
	// section serializes through the ladder's tail, so elision loses.
	KindElideSyscall
	// KindElideCapacity writes a footprint past the L1 associativity
	// on every visit: every speculative attempt capacity-aborts, so
	// elision loses.
	KindElideCapacity
)

// ElideVerdict returns the by-construction ground truth for an
// elision-biased kind: ok=false for non-elision kinds, otherwise
// shouldWin says whether a profiler's per-site verdict must be "win".
func (k Kind) ElideVerdict() (shouldWin, ok bool) {
	switch k {
	case KindElideWin, KindElideRead:
		return true, true
	case KindElideSyscall, KindElideCapacity:
		return false, true
	}
	return false, false
}

func (k Kind) String() string {
	switch k {
	case KindPrivate:
		return "private"
	case KindTrueShare:
		return "true-share"
	case KindFalseShare:
		return "false-share"
	case KindCapacity:
		return "capacity"
	case KindSyscall:
		return "syscall"
	case KindExplicit:
		return "explicit"
	case KindNested:
		return "nested"
	case KindStmConflict:
		return "stm-conflict"
	case KindStmCapacity:
		return "stm-capacity"
	case KindPmemKV:
		return "pmem-kv"
	case KindPmemLog:
		return "pmem-log"
	case KindElideWin:
		return "elide-win"
	case KindElideRead:
		return "elide-read"
	case KindElideSyscall:
		return "elide-syscall"
	case KindElideCapacity:
		return "elide-capacity"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Region is one generated critical-section template. All threads visit
// every region once per iteration, inside the program's elided global
// lock, wrapped in a generated call chain so in-transaction calling
// contexts are non-trivial.
type Region struct {
	Kind Kind
	ID   int
	// Site is the source-site label (machine.Thread.At) attached to
	// the region's accesses; the validation harness matches reported
	// sharing sites against it.
	Site string
	// Depth is the in-transaction call-chain depth above the access
	// (frames g<ID>_0 .. g<ID>_{Depth-1}).
	Depth int
	// Fanout adds completed sibling calls (call+return pairs) before
	// the access — LBR churn that the §3.4 pairing must replay and
	// discard without corrupting the open-frame reconstruction.
	Fanout int
	// Lines is the strided footprint of a KindCapacity region; with
	// the benchmark cache's 4-way L1 sets, Lines > 4 overflows.
	Lines int
	// Compute is in-transaction compute padding in cycles, widening
	// the conflict window.
	Compute int
	// Every gates KindSyscall/KindExplicit misbehaviour to every
	// Every'th iteration (1 = always).
	Every int
	// NonCSWork is compute burned outside the critical section before
	// each visit, diluting critical-section time.
	NonCSWork int
}

// branches returns the taken in-transaction branches one clean attempt
// of the region records (calls and returns, including the dedicated
// leaf frame), which the generator keeps under the LBR budget so
// fault-free reconstructions never truncate.
func (r Region) branches() int { return 2 * (r.Depth + r.Fanout + 1) }

// Program is one generated transactional program plus its
// by-construction ground truth.
type Program struct {
	Name    string
	Seed    int64
	Threads int
	// Iters is the per-thread iteration count; each iteration visits
	// every region once.
	Iters   int
	Regions []Region

	// TrueSites and FalseSites are the site labels that perform
	// same-word and same-line/different-word cross-thread accesses —
	// the expected answer for the profiler's sharing classification.
	TrueSites  []string
	FalseSites []string
}

// Config parameterizes generation. The zero value of every field
// selects a seed-deterministic random choice (or a documented
// default), so Config{Seed: s} is the common call.
type Config struct {
	Seed    int64
	Threads int // 0 = random in [2,6]
	Regions int // 0 = random in [3,6]
	Iters   int // 0 = random in [30,70]
	// LBRBudget bounds the in-transaction branches a region's clean
	// attempt records (0 = 12, under the default 16-deep LBR so
	// fault-free reconstructions never truncate). Raising it past the
	// machine's LBR depth deliberately generates truncating programs.
	LBRBudget int
	// Ways is the L1 associativity capacity regions overflow against
	// (0 = 4, matching txsampler.BenchCache).
	Ways int
	// StmBias switches generation to the slow-path-forcing template
	// mix (KindStmConflict/KindStmCapacity plus the contended base
	// kinds) for hybrid-mode validation. It does not change how
	// non-biased programs generate: with StmBias false the draw
	// sequence is byte-identical to earlier versions.
	StmBias bool
	// PmemBias switches generation to the durable template mix
	// (KindPmemKV/KindPmemLog plus base kinds) for persistence-stall
	// validation; the program's workload registers its durable regions
	// with machine.PmemTrack at build time. Mutually exclusive with
	// StmBias (PmemBias wins). With PmemBias false the draw sequence
	// is byte-identical to earlier versions.
	PmemBias bool
	// ElisionBias switches generation to the elidable-lock template
	// mix (the KindElide* kinds): every region runs under a per-region
	// rtm.ElidedLock whose win/lose verdict is known by construction —
	// the workloads the verdict validation runs on. PmemBias wins over
	// it; it wins over StmBias. With ElisionBias false the draw
	// sequence is byte-identical to earlier versions.
	ElisionBias bool
}

func (c Config) withDefaults(rng *rand.Rand) Config {
	if c.Threads == 0 {
		c.Threads = 2 + rng.Intn(5)
	}
	if c.Regions == 0 {
		c.Regions = 3 + rng.Intn(4)
	}
	if c.Iters == 0 {
		c.Iters = 30 + rng.Intn(41)
	}
	if c.LBRBudget == 0 {
		c.LBRBudget = 12
	}
	if c.Ways == 0 {
		c.Ways = 4
	}
	return c
}

// Generate produces the program for a configuration. It is pure:
// equal configs yield equal programs.
func Generate(cfg Config) *Program {
	rng := rand.New(rand.NewSource(cfg.Seed*0x5deece66d + 0xb))
	cfg = cfg.withDefaults(rng)
	name := fmt.Sprintf("progen/s%d", cfg.Seed)
	if cfg.StmBias {
		name = fmt.Sprintf("progen/stm-s%d", cfg.Seed)
	}
	if cfg.ElisionBias {
		cfg.StmBias = false
		name = fmt.Sprintf("progen/elide-s%d", cfg.Seed)
	}
	if cfg.PmemBias {
		cfg.StmBias = false
		cfg.ElisionBias = false
		name = fmt.Sprintf("progen/pmem-s%d", cfg.Seed)
	}
	p := &Program{
		Name:    name,
		Seed:    cfg.Seed,
		Threads: cfg.Threads,
		Iters:   cfg.Iters,
	}
	// The STM-biased mix pins a conflict-heavy and a capacity-heavy
	// slow-path region, then draws from the templates that spend time
	// in every execution mode (software path, lock path, waiting, and
	// the hardware path of the unforced kinds).
	stmMix := []Kind{KindStmConflict, KindStmCapacity, KindPrivate, KindTrueShare, KindSyscall}
	// The pmem mix pins both durable templates, then draws from
	// templates that also spend time in the other execution modes so
	// persistence stalls compete with real transactional work.
	pmemMix := []Kind{KindPmemKV, KindPmemLog, KindPrivate, KindTrueShare, KindSyscall}
	// The elision mix draws only from the verdict-graded templates:
	// every region is an elidable lock site, and pinning one winner and
	// one loser guarantees both verdicts appear in every program.
	elideMix := []Kind{KindElideWin, KindElideRead, KindElideSyscall, KindElideCapacity}
	// The first two regions always pin down one contended and one
	// private template so every program has both a known sharing site
	// and a low-abort baseline; the rest draw from the full mix.
	for i := 0; i < cfg.Regions; i++ {
		var kind Kind
		switch {
		case cfg.PmemBias && i == 0:
			kind = KindPmemKV
		case cfg.PmemBias && i == 1:
			kind = KindPmemLog
		case cfg.PmemBias:
			kind = pmemMix[rng.Intn(len(pmemMix))]
		case cfg.ElisionBias && i == 0:
			kind = KindElideWin
		case cfg.ElisionBias && i == 1:
			kind = KindElideSyscall
		case cfg.ElisionBias:
			kind = elideMix[rng.Intn(len(elideMix))]
		case cfg.StmBias && i == 0:
			kind = KindStmConflict
		case cfg.StmBias && i == 1:
			kind = KindStmCapacity
		case cfg.StmBias:
			kind = stmMix[rng.Intn(len(stmMix))]
		case i == 0:
			if rng.Intn(2) == 0 {
				kind = KindTrueShare
			} else {
				kind = KindFalseShare
			}
		case i == 1:
			kind = KindPrivate
		default:
			kind = Kind(rng.Intn(NumKinds))
		}
		r := Region{
			Kind:      kind,
			ID:        i,
			Depth:     rng.Intn(4),
			Fanout:    rng.Intn(3),
			Compute:   5 + rng.Intn(40),
			Every:     1 + rng.Intn(4),
			NonCSWork: 20 + rng.Intn(120),
		}
		// Respect the LBR budget: shed fanout first, then depth.
		for r.branches() > cfg.LBRBudget && r.Fanout > 0 {
			r.Fanout--
		}
		for r.branches() > cfg.LBRBudget && r.Depth > 0 {
			r.Depth--
		}
		if kind == KindCapacity {
			// Around the associativity edge: Ways-1 (always fits),
			// Ways (exactly at capacity), or Ways+1..Ways+2
			// (overflows), so profiles see both sides of the edge.
			r.Lines = cfg.Ways - 1 + rng.Intn(4)
		}
		if kind == KindStmCapacity {
			// The slow path has no associativity limit; the footprint
			// just sizes the software read/write sets.
			r.Lines = 2 + rng.Intn(3)
		}
		if kind == KindElideCapacity {
			// Always past the associativity edge: every speculative
			// attempt overflows, so the lose verdict is unambiguous.
			r.Lines = cfg.Ways + 1 + rng.Intn(2)
		}
		r.Site = fmt.Sprintf("r%d_%s", r.ID, r.Kind)
		switch kind {
		case KindTrueShare, KindStmConflict:
			p.TrueSites = append(p.TrueSites, r.Site)
		case KindFalseShare:
			p.FalseSites = append(p.FalseSites, r.Site)
		}
		p.Regions = append(p.Regions, r)
	}
	return p
}

// FrameRegion maps a generated function name back to the region that
// owns it: call-chain frames g<ID>_<lvl>, leaf frames f<ID>, and
// sibling frames h<ID>_<j>. Reports ok=false for runtime frames
// (thread_root, tm_begin, begin_in_tx) and anything else.
func FrameRegion(fn string) (id int, ok bool) {
	if len(fn) < 2 || (fn[0] != 'g' && fn[0] != 'f' && fn[0] != 'h') {
		return 0, false
	}
	num := fn[1:]
	if i := strings.IndexByte(num, '_'); i >= 0 {
		num = num[:i]
	} else if fn[0] != 'f' {
		return 0, false
	}
	id, err := strconv.Atoi(num)
	return id, err == nil
}

// layout is the per-machine address assignment of a program's regions.
type layout struct {
	// shared[i] is the shared line of region i (true/false sharing);
	// private[i][tid] the per-thread private word; capacity[i][tid]
	// the strided footprint lines.
	shared   []mem.Addr
	private  [][]mem.Addr
	capacity [][][]mem.Addr
	// elocks[i] is region i's per-region elidable lock (nil for
	// non-elision kinds, which serialize on the program's global lock).
	elocks []*rtm.ElidedLock
}

// Workload compiles the program into an (unregistered) htmbench
// workload whose Check verifies the machine's final memory state
// against the program's computed expectation.
func (p *Program) Workload() *htmbench.Workload {
	return &htmbench.Workload{
		Name:           p.Name,
		Suite:          "progen",
		Desc:           fmt.Sprintf("generated program: %d regions x %d iters", len(p.Regions), p.Iters),
		DefaultThreads: p.Threads,
		Build:          p.build,
	}
}

func (p *Program) build(ctx *htmbench.Ctx) *htmbench.Instance {
	m := ctx.M
	sets := m.Config().Cache.Sets
	lay := &layout{
		shared:   make([]mem.Addr, len(p.Regions)),
		private:  make([][]mem.Addr, len(p.Regions)),
		capacity: make([][][]mem.Addr, len(p.Regions)),
		elocks:   make([]*rtm.ElidedLock, len(p.Regions)),
	}
	for i, r := range p.Regions {
		if _, elide := r.Kind.ElideVerdict(); elide {
			lay.elocks[i] = rtm.NewElidedLock(m, r.Site)
		}
		switch r.Kind {
		case KindTrueShare, KindFalseShare, KindStmConflict:
			lay.shared[i] = m.Mem.AllocLines(1)
		case KindElideRead:
			// Never-written shared line read by every thread, plus the
			// per-thread private progress counter.
			lay.shared[i] = m.Mem.AllocLines(1)
			lay.private[i] = make([]mem.Addr, ctx.Threads)
			for tid := 0; tid < ctx.Threads; tid++ {
				lay.private[i][tid] = m.Mem.AllocLines(1)
			}
		case KindElideCapacity:
			lay.capacity[i] = make([][]mem.Addr, ctx.Threads)
			for tid := 0; tid < ctx.Threads; tid++ {
				base := m.Mem.AllocLines(1 + (r.Lines-1)*sets)
				lines := make([]mem.Addr, r.Lines)
				for j := 0; j < r.Lines; j++ {
					lines[j] = base.Offset(j * sets * mem.WordsPerLine)
				}
				lay.capacity[i][tid] = lines
			}
		case KindCapacity, KindStmCapacity:
			lay.capacity[i] = make([][]mem.Addr, ctx.Threads)
			for tid := 0; tid < ctx.Threads; tid++ {
				// A strided footprint through one cache set: line j
				// maps to the same set as line 0, so Lines beyond the
				// associativity overflow the transactional write set.
				base := m.Mem.AllocLines(1 + (r.Lines-1)*sets)
				lines := make([]mem.Addr, r.Lines)
				for j := 0; j < r.Lines; j++ {
					lines[j] = base.Offset(j * sets * mem.WordsPerLine)
				}
				lay.capacity[i][tid] = lines
			}
		case KindPmemKV:
			lay.private[i] = make([]mem.Addr, ctx.Threads)
			for tid := 0; tid < ctx.Threads; tid++ {
				lay.private[i][tid] = m.Mem.AllocLines(1)
				m.PmemTrack(lay.private[i][tid], mem.WordsPerLine)
			}
		case KindPmemLog:
			// Per-thread durable cursor line plus a contiguous durable
			// entry array sized for one word per iteration.
			lay.private[i] = make([]mem.Addr, ctx.Threads)
			lay.capacity[i] = make([][]mem.Addr, ctx.Threads)
			entryLines := (p.Iters + mem.WordsPerLine - 1) / mem.WordsPerLine
			for tid := 0; tid < ctx.Threads; tid++ {
				lay.private[i][tid] = m.Mem.AllocLines(1)
				m.PmemTrack(lay.private[i][tid], mem.WordsPerLine)
				base := m.Mem.AllocLines(entryLines)
				lines := make([]mem.Addr, entryLines)
				for j := 0; j < entryLines; j++ {
					lines[j] = base.Offset(j * mem.WordsPerLine)
				}
				lay.capacity[i][tid] = lines
				m.PmemTrack(base, entryLines*mem.WordsPerLine)
			}
		default:
			lay.private[i] = make([]mem.Addr, ctx.Threads)
			for tid := 0; tid < ctx.Threads; tid++ {
				lay.private[i][tid] = m.Mem.AllocLines(1)
			}
		}
	}

	bodies := make([]func(*machine.Thread), ctx.Threads)
	for tid := 0; tid < ctx.Threads; tid++ {
		tid := tid
		bodies[tid] = func(t *machine.Thread) {
			for it := 0; it < p.Iters; it++ {
				for i := range p.Regions {
					p.visit(ctx, lay, &p.Regions[i], t, tid, it)
				}
			}
		}
	}
	return &htmbench.Instance{Bodies: bodies, Check: p.check(ctx.Threads, lay)}
}

// visit executes one region visit on thread tid, iteration it.
// Elision-kind regions serialize on their own elidable lock (whose Run
// pushes the elide:<site> frame the analyzer aggregates on); everything
// else shares the program's global lock.
func (p *Program) visit(ctx *htmbench.Ctx, lay *layout, r *Region, t *machine.Thread, tid, it int) {
	t.Compute(r.NonCSWork)
	body := func() {
		p.descend(r, t, r.Depth, func() {
			t.At(r.Site)
			p.access(lay, r, t, tid, it)
		})
	}
	if el := lay.elocks[r.ID]; el != nil {
		el.Run(t, body)
		return
	}
	ctx.Lock.Run(t, body)
}

// descend wraps leaf in the region's generated call chain, inserting
// the completed sibling calls (LBR churn) at the innermost level. The
// leaf always gets a dedicated frame so its source-site annotation
// (Thread.At) is popped with the frame — otherwise a depth-0 region
// would leave a stale site on the caller's frame and the next
// region's lock-word spin samples would be mis-attributed to it.
func (p *Program) descend(r *Region, t *machine.Thread, depth int, leaf func()) {
	if depth == 0 {
		t.Func(fmt.Sprintf("f%d", r.ID), func() {
			for j := 0; j < r.Fanout; j++ {
				t.Func(fmt.Sprintf("h%d_%d", r.ID, j), func() {
					t.Compute(2)
				})
			}
			leaf()
		})
		return
	}
	t.Func(fmt.Sprintf("g%d_%d", r.ID, r.Depth-depth), func() {
		p.descend(r, t, depth-1, leaf)
	})
}

// access performs the region's memory operations. Bodies must be
// idempotent up to their writes (any transactional attempt may be
// discarded), so every template applies its externally visible effect
// exactly once per committed execution.
func (p *Program) access(lay *layout, r *Region, t *machine.Thread, tid, it int) {
	i := r.ID
	switch r.Kind {
	case KindPrivate:
		t.Compute(r.Compute)
		t.Add(lay.private[i][tid], 1)
	case KindTrueShare:
		v := t.Load(lay.shared[i])
		t.Compute(r.Compute)
		t.Store(lay.shared[i], v+1)
	case KindFalseShare:
		slot := lay.shared[i].Offset(tid % mem.WordsPerLine)
		v := t.Load(slot)
		t.Compute(r.Compute)
		t.Store(slot, v+1)
	case KindCapacity:
		t.Compute(r.Compute)
		for _, line := range lay.capacity[i][tid] {
			t.Store(line, mem.Word(it)+1)
		}
	case KindSyscall:
		t.Add(lay.private[i][tid], 1)
		if it%r.Every == 0 {
			t.Syscall("generated")
		}
		t.Compute(r.Compute)
	case KindExplicit:
		t.Add(lay.private[i][tid], 1)
		t.Compute(r.Compute)
		if it%r.Every == 0 && t.InTx() {
			// XABORT outside a transaction is a no-op on real TSX, so
			// the fallback re-execution of this body just commits the
			// update under the lock.
			t.TxAbort()
		}
	case KindStmConflict:
		// The syscall is a Sync (non-retryable) abort in the hardware
		// attempt, so the region always executes on the configured slow
		// path; the wide compute window between the read and the write
		// provokes software validation failures under contention.
		t.Syscall("stm_forced")
		v := t.Load(lay.shared[i])
		t.Compute(r.Compute * 4)
		t.Store(lay.shared[i], v+1)
	case KindStmCapacity:
		t.Syscall("stm_forced")
		t.Compute(r.Compute)
		for _, line := range lay.capacity[i][tid] {
			t.Store(line, mem.Word(it)+1)
		}
	case KindPmemKV:
		// Durable put: read-modify-write one thread-private persistent
		// line; every commit pays the persist epilogue for it.
		line := lay.private[i][tid]
		v := t.Load(line)
		t.Compute(r.Compute)
		t.Store(line, v+1)
	case KindPmemLog:
		// Durable append: write the next entry word and bump the
		// cursor — two persistent lines dirty per commit. The cursor
		// is read transactionally, so a discarded attempt (crash,
		// abort) re-derives the same slot on re-execution.
		cursor := lay.private[i][tid]
		cur := int(t.Load(cursor))
		t.Compute(r.Compute)
		lines := lay.capacity[i][tid]
		t.Store(lines[cur/mem.WordsPerLine].Offset(cur%mem.WordsPerLine), mem.Word(it)+1)
		t.Store(cursor, mem.Word(cur)+1)
	case KindElideWin:
		// Short, conflict-free critical section: the ideal elision
		// target.
		t.Compute(r.Compute / 4)
		t.Add(lay.private[i][tid], 1)
	case KindElideRead:
		// Read-mostly: load a line no thread ever writes, then update
		// private state. Speculative attempts never conflict.
		t.Load(lay.shared[i])
		t.Compute(r.Compute)
		t.Add(lay.private[i][tid], 1)
	case KindElideSyscall:
		// The unfriendly instruction sync-aborts every speculative
		// attempt, so every visit serializes through the ladder's tail.
		t.Add(lay.private[i][tid], 1)
		t.Syscall("elide_serial")
		t.Compute(r.Compute)
	case KindElideCapacity:
		t.Compute(r.Compute)
		for _, line := range lay.capacity[i][tid] {
			t.Store(line, mem.Word(it)+1)
		}
	case KindNested:
		t.Compute(r.Compute)
		// A nested transaction: in the speculative path it flattens
		// into the enclosing one (an abort unwinds to the outermost
		// XBEGIN, past this loop). In the fallback path there is no
		// enclosing transaction, so the nested begin opens a real
		// top-level one while the lock is held — the nested
		// fallback-lock shape the paper's fixed suite never
		// exercises; after a few aborted attempts (ambient faults
		// can doom them) it executes directly under the lock.
		for try := 0; ; try++ {
			if t.Attempt(func() { t.Add(lay.private[i][tid], 1) }) == nil {
				break
			}
			if try == 2 {
				t.Add(lay.private[i][tid], 1)
				break
			}
		}
	}
}

// check returns the result validator: every region's final memory
// state must match the program's arithmetic expectation, proving the
// generated program executed to completion exactly once per committed
// path.
func (p *Program) check(threads int, lay *layout) func(m *machine.Machine) error {
	return func(m *machine.Machine) error {
		iters := mem.Word(p.Iters)
		for i, r := range p.Regions {
			switch r.Kind {
			case KindTrueShare, KindStmConflict:
				want := iters * mem.Word(threads)
				if got := m.Mem.Load(lay.shared[i]); got != want {
					return fmt.Errorf("progen: region %d (%s): shared word = %d, want %d", i, r.Kind, got, want)
				}
			case KindFalseShare:
				// Threads beyond WordsPerLine share a slot.
				want := make(map[mem.Addr]mem.Word)
				for tid := 0; tid < threads; tid++ {
					want[lay.shared[i].Offset(tid%mem.WordsPerLine)] += iters
				}
				for a, w := range want {
					if got := m.Mem.Load(a); got != w {
						return fmt.Errorf("progen: region %d (%s): slot %v = %d, want %d", i, r.Kind, a, got, w)
					}
				}
			case KindElideRead:
				if got := m.Mem.Load(lay.shared[i]); got != 0 {
					return fmt.Errorf("progen: region %d (%s): read-only line = %d, want 0", i, r.Kind, got)
				}
				for tid := 0; tid < threads; tid++ {
					if got := m.Mem.Load(lay.private[i][tid]); got != iters {
						return fmt.Errorf("progen: region %d (%s): thread %d counter = %d, want %d", i, r.Kind, tid, got, iters)
					}
				}
			case KindCapacity, KindStmCapacity, KindElideCapacity:
				for tid := 0; tid < threads; tid++ {
					for j, line := range lay.capacity[i][tid] {
						if got := m.Mem.Load(line); got != iters {
							return fmt.Errorf("progen: region %d (%s): thread %d line %d = %d, want %d", i, r.Kind, tid, j, got, iters)
						}
					}
				}
			case KindPmemLog:
				for tid := 0; tid < threads; tid++ {
					if got := m.Mem.Load(lay.private[i][tid]); got != iters {
						return fmt.Errorf("progen: region %d (%s): thread %d cursor = %d, want %d", i, r.Kind, tid, got, iters)
					}
					lines := lay.capacity[i][tid]
					for j := 0; j < p.Iters; j++ {
						a := lines[j/mem.WordsPerLine].Offset(j % mem.WordsPerLine)
						if got := m.Mem.Load(a); got != mem.Word(j)+1 {
							return fmt.Errorf("progen: region %d (%s): thread %d entry %d = %d, want %d", i, r.Kind, tid, j, got, j+1)
						}
					}
				}
			default:
				for tid := 0; tid < threads; tid++ {
					if got := m.Mem.Load(lay.private[i][tid]); got != iters {
						return fmt.Errorf("progen: region %d (%s): thread %d counter = %d, want %d", i, r.Kind, tid, got, iters)
					}
				}
			}
		}
		return nil
	}
}
