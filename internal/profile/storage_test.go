package profile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"txsampler/internal/faults"
)

// saved writes a small valid database and returns its bytes.
func saved(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := FromReport(buildReport(t)).Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadFailureTaxonomy asserts that every damage class maps to its
// typed error: truncation, trailing garbage, version mismatch, and
// bit flips are distinguished, never silently loaded.
func TestReadFailureTaxonomy(t *testing.T) {
	good := saved(t)
	headerEnd := bytes.IndexByte(good, '\n') + 1
	bitflip := append([]byte(nil), good...)
	bitflip[headerEnd+len(bitflip[headerEnd:])/2] ^= 0x20

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty file", nil, ErrTruncated},
		{"header cut short", good[:headerEnd/2], ErrTruncated},
		{"payload cut short", good[:headerEnd+(len(good)-headerEnd)/2], ErrTruncated},
		{"missing last byte", good[:len(good)-1], ErrTruncated},
		{"trailing garbage", append(append([]byte(nil), good...), "junk"...), ErrCorrupt},
		{"bit-flipped payload", bitflip, ErrCorrupt},
		{"bad magic", append([]byte("xxprofdb"), good[len(magic):]...), ErrCorrupt},
		{"headerless junk", []byte("not a database"), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.data))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func TestReadVersionMismatch(t *testing.T) {
	// A framed database from a future format version.
	future := strings.Replace(string(saved(t)), magic+" 2 ", magic+" 3 ", 1)
	var ve *VersionError
	if _, err := Read(strings.NewReader(future)); !errors.As(err, &ve) || ve.Got != 3 {
		t.Fatalf("future version: got %v, want *VersionError{Got:3}", err)
	}
	// A headerless version-1 file (the seed format) is a version
	// mismatch, not corruption: the bytes are fine, the format is old.
	if _, err := Read(strings.NewReader(`{"version": 1, "program": "old"}`)); !errors.As(err, &ve) || ve.Got != 1 {
		t.Fatalf("legacy v1: got %v, want *VersionError{Got:1}", err)
	}
}

// TestSaveAtomic asserts the crash-safety contract: a successful Save
// leaves exactly the database (no temp debris), and the saved file
// verifies.
func TestSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	db := FromReport(buildReport(t))
	// Regression for the seed's double f.Close() in Save: saving twice
	// over the same path must succeed and keep the file loadable.
	for i := 0; i < 2; i++ {
		if err := db.Save(path); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "p.json" {
		t.Fatalf("directory not clean after save: %v", entries)
	}
	info, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != FormatVersion || info.Partial || info.Program != "test/prog" {
		t.Fatalf("verify info = %+v", info)
	}
}

// TestSaveCrashTornFileDetected injects a crash at several write
// offsets and asserts the torn file is detected as truncated (or, for
// a crash inside the header, corrupt) — never silently loaded.
func TestSaveCrashTornFileDetected(t *testing.T) {
	dir := t.TempDir()
	db := FromReport(buildReport(t))
	for _, offset := range []uint64{0, 10, 100, 1000} {
		path := filepath.Join(dir, "torn.json")
		err := db.SaveCrash(path, offset)
		if !errors.Is(err, faults.ErrCrashWrite) {
			t.Fatalf("offset %d: SaveCrash returned %v", offset, err)
		}
		st, serr := os.Stat(path)
		if serr != nil {
			t.Fatalf("offset %d: torn file missing: %v", offset, serr)
		}
		if got := uint64(st.Size()); got != offset {
			t.Fatalf("offset %d: torn file has %d bytes", offset, got)
		}
		if _, lerr := Load(path); !errors.Is(lerr, ErrTruncated) && !errors.Is(lerr, ErrCorrupt) {
			t.Fatalf("offset %d: torn file loaded as %v", offset, lerr)
		}
	}
}

func TestPartialRoundTrip(t *testing.T) {
	r := buildReport(t)
	r.Partial = true
	db := FromReport(r)
	if !db.Partial {
		t.Fatal("Partial not stamped into the database")
	}
	path := filepath.Join(t.TempDir(), "partial.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	info, err := Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Partial {
		t.Fatal("Partial lost on disk")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Report().Partial {
		t.Fatal("Partial lost in report reconstruction")
	}
}

func TestFsck(t *testing.T) {
	dir := t.TempDir()
	db := FromReport(buildReport(t))
	if err := db.Save(filepath.Join(dir, "good.json")); err != nil {
		t.Fatal(err)
	}
	partial := FromReport(buildReport(t))
	partial.Partial = true
	if err := partial.Save(filepath.Join(dir, "partial.json")); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveCrash(filepath.Join(dir, "torn.json"), 64); !errors.Is(err, faults.ErrCrashWrite) {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "leftover.json.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The campaign journal is not a database and must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "campaign.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	res, err := Fsck(&out, []string{dir}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 3 || res.Clean != 2 || res.Partial != 1 || res.Bad != 1 || res.Orphans != 1 || res.Repaired != 0 {
		t.Fatalf("dry run result = %+v\n%s", res, out.String())
	}
	if !res.Problems() {
		t.Fatal("problems not reported")
	}

	res, err = Fsck(&out, []string{dir}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired != 2 {
		t.Fatalf("repair result = %+v\n%s", res, out.String())
	}
	// After repair the directory is clean: torn file quarantined, temp
	// removed.
	res, err = Fsck(&out, []string{dir}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Problems() || res.Scanned != 2 || res.Clean != 2 {
		t.Fatalf("post-repair result = %+v\n%s", res, out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "torn.json.corrupt")); err != nil {
		t.Fatalf("quarantine missing: %v", err)
	}
}

func TestFsckSingleFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "one.json")
	if err := FromReport(buildReport(t)).Save(path); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	res, err := Fsck(&out, []string{path}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 1 || res.Clean != 1 || res.Problems() {
		t.Fatalf("result = %+v", res)
	}
	if _, err := Fsck(&out, []string{filepath.Join(t.TempDir(), "missing.json")}, false); err == nil {
		t.Fatal("missing path not reported")
	}
}

// TestReadHeaderFieldDamage exercises the header parser's field-level
// validation: every malformed field is corruption, never a crash or a
// silent default.
func TestReadHeaderFieldDamage(t *testing.T) {
	good := string(saved(t))
	headerEnd := strings.IndexByte(good, '\n') + 1
	header := good[:headerEnd-1]
	payload := good[headerEnd:]
	fields := strings.Fields(header) // magic version len=, crc32=, sha256=

	cases := []struct {
		name   string
		header string
	}{
		{"missing field", strings.Join(fields[:4], " ")},
		{"extra field", header + " extra=1"},
		{"non-numeric version", strings.Replace(header, magic+" 2", magic+" two", 1)},
		{"field without equals", strings.Replace(header, fields[2], "len", 1)},
		{"non-numeric len", strings.Replace(header, fields[2], "len=xyz", 1)},
		{"bad crc hex", strings.Replace(header, fields[3], "crc32=zzzzzzzz", 1)},
		{"unknown key", strings.Replace(header, fields[2], "bytes=10", 1)},
		{"short sha", strings.Replace(header, fields[4], "sha256=abcd", 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.header + "\n" + payload))
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v, want ErrCorrupt", err)
			}
		})
	}
	if got := (&VersionError{Got: 3, Want: 2}).Error(); !strings.Contains(got, "3") || !strings.Contains(got, "2") {
		t.Fatalf("VersionError.Error() = %q", got)
	}
}

// TestSaveErrorPaths: a failed save must not leave temp debris or
// touch an existing destination.
func TestSaveErrorPaths(t *testing.T) {
	db := FromReport(buildReport(t))
	if err := db.Save(filepath.Join(t.TempDir(), "no", "such", "dir", "p.json")); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveCrash(filepath.Join(dir, "no", "such", "t.json"), 10); err == nil ||
		errors.Is(err, faults.ErrCrashWrite) {
		t.Fatalf("SaveCrash open failure: %v", err)
	}
	// Crash offset beyond the encoding still reports the injected crash.
	big := filepath.Join(dir, "big.json")
	if err := db.SaveCrash(big, 1<<40); !errors.Is(err, faults.ErrCrashWrite) {
		t.Fatalf("SaveCrash beyond end: %v", err)
	}
	// ... but the full prefix happens to be the whole database.
	if _, err := Load(big); err != nil {
		t.Fatalf("full-length crash write should load: %v", err)
	}
}

func TestFsckResultString(t *testing.T) {
	s := FsckResult{Scanned: 3, Clean: 2, Partial: 1, Bad: 1, Orphans: 1, Repaired: 2}.String()
	for _, want := range []string{"3 scanned", "2 clean", "1 partial", "1 bad", "1 orphaned", "2 repaired"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
