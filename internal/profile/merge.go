package profile

// Cross-database merging: the same commutative fold the fleet daemon
// applies to ingested shards, exposed as a library so any tool holding
// several databases (shards of one campaign, per-node uploads, repeated
// runs) can coalesce them. Every combining operation is commutative
// and associative and the rendered child order is canonical, so a
// merge is a pure function of the database multiset — worker count and
// reduction order never change a byte of the result.

import (
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Merge folds other into db in place: metric totals, data-quality
// counters, per-thread histograms, and the calling-context tree sum;
// thread counts and sampling periods take maxima; program names union
// (joined with "+" in sorted order); a merge involving a partial
// profile is partial. Children of every merged CCT node are re-sorted
// into canonical (fn, site) order. The telemetry self-report is
// dropped — self-metrics describe one profiling process and do not
// combine. other is left untouched.
func (db *Database) Merge(other *Database) {
	db.Program = mergePrograms(db.Program, other.Program)
	if other.Threads > db.Threads {
		db.Threads = other.Threads
	}
	for i, p := range other.Periods {
		if p > db.Periods[i] {
			db.Periods[i] = p
		}
	}
	db.Totals.Merge(&other.Totals)
	db.Quality.Merge(other.Quality)
	db.Partial = db.Partial || other.Partial
	db.Telemetry = nil

	byTID := make(map[int]int, len(db.PerThread))
	for i, t := range db.PerThread {
		byTID[t.TID] = i
	}
	for _, t := range other.PerThread {
		if i, ok := byTID[t.TID]; ok {
			db.PerThread[i].CommitSamples += t.CommitSamples
			db.PerThread[i].AbortSamples += t.AbortSamples
		} else {
			byTID[t.TID] = len(db.PerThread)
			db.PerThread = append(db.PerThread, t)
		}
	}
	sort.Slice(db.PerThread, func(i, j int) bool { return db.PerThread[i].TID < db.PerThread[j].TID })

	switch {
	case db.Root == nil:
		db.Root = cloneNode(other.Root)
	case other.Root != nil:
		mergeNodes(db.Root, other.Root)
	}
}

// mergePrograms unions two "+"-joined program-name sets.
func mergePrograms(a, b string) string {
	if a == b || b == "" {
		return a
	}
	if a == "" {
		return b
	}
	set := make(map[string]struct{})
	for _, s := range strings.Split(a, "+") {
		set[s] = struct{}{}
	}
	for _, s := range strings.Split(b, "+") {
		set[s] = struct{}{}
	}
	names := make([]string, 0, len(set))
	for s := range set {
		names = append(names, s)
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

func cloneNode(n *Node) *Node {
	if n == nil {
		return nil
	}
	out := &Node{Fn: n.Fn, Site: n.Site, Metrics: n.Metrics}
	for _, c := range n.Children {
		out.Children = append(out.Children, cloneNode(c))
	}
	sortChildren(out)
	return out
}

type frameKey struct{ fn, site string }

func mergeNodes(dst, src *Node) {
	dst.Metrics.Merge(&src.Metrics)
	if len(src.Children) > 0 {
		idx := make(map[frameKey]*Node, len(dst.Children))
		for _, c := range dst.Children {
			idx[frameKey{c.Fn, c.Site}] = c
		}
		for _, sc := range src.Children {
			if dc, ok := idx[frameKey{sc.Fn, sc.Site}]; ok {
				mergeNodes(dc, sc)
			} else {
				dst.Children = append(dst.Children, cloneNode(sc))
			}
		}
	}
	sortChildren(dst)
}

func sortChildren(n *Node) {
	sort.Slice(n.Children, func(i, j int) bool {
		a, b := n.Children[i], n.Children[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		return a.Site < b.Site
	})
}

// MergeAll coalesces dbs into a single database with a parallel
// pairwise tree reduction: each round merges disjoint pairs across at
// most workers goroutines (0 = GOMAXPROCS), halving the set until one
// remains. Pairs are disjoint, so workers never contend, and the fold
// is commutative, so the result is byte-identical for every worker
// count. The input databases are consumed as scratch (the survivor is
// returned, the rest are mutated); nil for an empty slice. A
// single-element slice is returned as-is, un-canonicalized.
func MergeAll(dbs []*Database, workers int) *Database {
	if len(dbs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cur := append([]*Database(nil), dbs...)
	for len(cur) > 1 {
		pairs := len(cur) / 2
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := 0; i < pairs; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				cur[2*i].Merge(cur[2*i+1])
				<-sem
			}(i)
		}
		wg.Wait()
		next := make([]*Database, 0, (len(cur)+1)/2)
		for i := 0; i < pairs; i++ {
			next = append(next, cur[2*i])
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}
