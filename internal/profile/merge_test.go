package profile

import (
	"bytes"
	"fmt"
	"testing"

	"txsampler/internal/core"
	"txsampler/internal/htm"
)

// testDB builds a small database whose contents are a function of the
// arguments, with deliberately unsorted CCT children.
func testDB(program string, tid int, weight uint64) *Database {
	var leaf core.Metrics
	leaf.W = 10 * weight
	leaf.T = 4 * weight
	leaf.AbortWeight[htm.Conflict] = weight
	leaf.AbortCount[htm.Conflict] = 1
	leaf.FalseSharing = weight / 2
	var q core.DataQuality
	q.MalformedSamples = weight
	return &Database{
		Version: FormatVersion,
		Program: program,
		Threads: tid + 1,
		Periods: [5]uint64{2000000, 20011, 20011, 8009, 8009},
		Totals:  leaf,
		Quality: q,
		PerThread: []Thread{
			{TID: tid, CommitSamples: weight, AbortSamples: 1},
		},
		Root: &Node{
			Fn: "<root>",
			Children: []*Node{
				{Fn: "zeta", Site: "L9", Metrics: leaf},
				{Fn: "alpha", Site: "L1", Metrics: leaf, Children: []*Node{
					{Fn: fmt.Sprintf("leaf-%d", tid), Site: "L2", Metrics: leaf},
				}},
			},
		},
	}
}

func dbBytes(t *testing.T, db *Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// reload deep-copies a database through its serialized form, so merge
// tests can mutate one copy and keep the original.
func reload(t *testing.T, db *Database) *Database {
	t.Helper()
	out, err := Read(bytes.NewReader(dbBytes(t, db)))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMergeCommutes(t *testing.T) {
	a, b := testDB("prog/a", 0, 10), testDB("prog/b", 1, 3)
	ab, ba := reload(t, a), reload(t, b)
	ab.Merge(b)
	ba.Merge(a)
	if !bytes.Equal(dbBytes(t, ab), dbBytes(t, ba)) {
		t.Error("A+B and B+A render differently")
	}
	if ab.Program != "prog/a+prog/b" {
		t.Errorf("merged program = %q", ab.Program)
	}
	if ab.Totals.AbortWeight[htm.Conflict] != 13 {
		t.Errorf("merged conflict weight = %d, want 13", ab.Totals.AbortWeight[htm.Conflict])
	}
	if len(ab.PerThread) != 2 || ab.PerThread[0].TID != 0 || ab.PerThread[1].TID != 1 {
		t.Errorf("merged per-thread = %+v", ab.PerThread)
	}
	if ab.Threads != 2 {
		t.Errorf("merged threads = %d, want 2", ab.Threads)
	}
	// Matching contexts sum; disjoint leaves both survive.
	var alpha *Node
	for _, c := range ab.Root.Children {
		if c.Fn == "alpha" {
			alpha = c
		}
	}
	if alpha == nil || len(alpha.Children) != 2 {
		t.Fatalf("alpha children not merged: %+v", alpha)
	}
	if alpha.Metrics.W != 10*10+10*3 {
		t.Errorf("alpha W = %d, want %d", alpha.Metrics.W, 10*10+10*3)
	}
}

func TestMergeSameThreadSums(t *testing.T) {
	a := testDB("prog/a", 0, 5)
	a.Merge(testDB("prog/a", 0, 7))
	if a.Program != "prog/a" {
		t.Errorf("program = %q", a.Program)
	}
	if len(a.PerThread) != 1 || a.PerThread[0].CommitSamples != 12 {
		t.Errorf("per-thread = %+v, want one entry with 12 commits", a.PerThread)
	}
	if !a.Partial {
		a.Merge(&Database{Version: FormatVersion, Partial: true})
		if !a.Partial {
			t.Error("merging a partial profile did not mark the result partial")
		}
	}
}

func TestMergeAllWorkerInvariance(t *testing.T) {
	build := func() []*Database {
		dbs := make([]*Database, 7)
		for i := range dbs {
			dbs[i] = testDB(fmt.Sprintf("prog/%c", 'a'+i%3), i%4, uint64(2*i+1))
		}
		return dbs
	}
	var rendered [][]byte
	for _, workers := range []int{1, 4, 8} {
		merged := MergeAll(build(), workers)
		rendered = append(rendered, dbBytes(t, merged))
	}
	for i := 1; i < len(rendered); i++ {
		if !bytes.Equal(rendered[0], rendered[i]) {
			t.Errorf("MergeAll output differs between worker counts (variant %d)", i)
		}
	}
	if MergeAll(nil, 4) != nil {
		t.Error("MergeAll(nil) != nil")
	}
	one := testDB("prog/solo", 0, 1)
	if MergeAll([]*Database{one}, 4) != one {
		t.Error("MergeAll of one database did not return it")
	}
}
