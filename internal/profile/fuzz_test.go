package profile

import (
	"bytes"
	"strings"
	"testing"

	"txsampler/internal/analyzer"
	"txsampler/internal/core"
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

// FuzzRead hardens the profile-database parser against arbitrary
// input: it must never panic, and anything it accepts must survive a
// re-encode/re-decode round trip.
func FuzzRead(f *testing.F) {
	c := core.NewCollector(1, pmu.DefaultPeriods(), 0)
	c.HandleSample(&machine.Sample{
		Event: pmu.Cycles, State: rtm.InCS,
		Stack: []lbr.IP{{Fn: "main"}, {Fn: "f", Site: "3"}},
		IP:    lbr.IP{Fn: "f", Site: "3"},
	})
	var seed bytes.Buffer
	if err := FromReport(analyzer.Analyze("seed", c)).Write(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"cct":{"fn":"x","children":[{"fn":"y"}]}}`)
	f.Add(`not json at all`)
	f.Add(`{"version":1,"per_thread":[{"tid":-1,"commits":18446744073709551615}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		db, err := Read(strings.NewReader(data))
		if err != nil {
			return // rejected: fine
		}
		// Accepted input: the report reconstruction and re-encoding
		// must not panic, and the round trip must stay stable.
		rep := db.Report()
		var buf bytes.Buffer
		if err := FromReport(rep).Write(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := Read(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
