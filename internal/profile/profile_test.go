package profile

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"txsampler/internal/analyzer"
	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/lbr"
	"txsampler/internal/machine"
	"txsampler/internal/pmu"
	"txsampler/internal/rtm"
)

// buildReport produces a small but non-trivial report.
func buildReport(t *testing.T) *analyzer.Report {
	t.Helper()
	c := core.NewCollector(2, pmu.DefaultPeriods(), 0)
	mk := func(tid int, ev pmu.Event, state uint32, inTx bool, fns ...string) *machine.Sample {
		stack := make([]lbr.IP, len(fns))
		for i, f := range fns {
			stack[i] = lbr.IP{Fn: f}
		}
		s := &machine.Sample{Event: ev, TID: tid, State: state, Stack: stack, IP: stack[len(stack)-1]}
		if inTx {
			s.LBR = []lbr.Entry{{Kind: lbr.KindAbort, Abort: true, InTSX: true}}
		}
		return s
	}
	for i := 0; i < 10; i++ {
		c.HandleSample(mk(0, pmu.Cycles, rtm.InCS, true, "main", "hot"))
		c.HandleSample(mk(1, pmu.Cycles, 0, false, "main", "cold"))
	}
	s := mk(0, pmu.TxAbort, rtm.InCS, true, "main", "hot")
	s.Abort = &machine.AbortInfo{Cause: htm.Conflict, Weight: 123, AbortedBy: 1}
	c.HandleSample(s)
	c.HandleSample(mk(1, pmu.TxCommit, rtm.InCS, false, "main", "hot"))
	return analyzer.Analyze("test/prog", c)
}

func TestRoundTrip(t *testing.T) {
	r := buildReport(t)
	db := FromReport(r)
	var buf bytes.Buffer
	if err := db.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r2 := got.Report()
	if r2.Program != r.Program || r2.Threads != r.Threads {
		t.Fatalf("metadata lost: %+v", r2)
	}
	if !reflect.DeepEqual(r2.Totals, r.Totals) {
		t.Fatalf("totals differ:\n%+v\n%+v", r2.Totals, r.Totals)
	}
	if !reflect.DeepEqual(r2.PerThread, r.PerThread) {
		t.Fatalf("per-thread differ")
	}
	// Derived analyses agree.
	if r2.Rcs() != r.Rcs() || r2.AbortCommitRatio() != r.AbortCommitRatio() {
		t.Fatalf("derived metrics differ")
	}
	// Tree structure round-trips: same hot context ranking.
	top1, top2 := r.TopAbortWeight(1), r2.TopAbortWeight(1)
	if len(top1) != len(top2) || top1[0].Path() != top2[0].Path() {
		t.Fatalf("ranking differs: %v vs %v", top1, top2)
	}
}

func TestVersionRejected(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestMalformedRejected(t *testing.T) {
	if _, err := Read(strings.NewReader(`{not json`)); err == nil {
		t.Fatal("malformed input accepted")
	}
}

func TestSaveLoad(t *testing.T) {
	r := buildReport(t)
	path := filepath.Join(t.TempDir(), "prof.json")
	if err := FromReport(r).Save(path); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Program != "test/prog" {
		t.Fatalf("program = %q", db.Program)
	}
	if db.Root == nil || len(db.Root.Children) == 0 {
		t.Fatal("tree lost")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file load succeeded")
	}
}

// Property: any randomly shaped metric tree survives a write/read
// round trip with identical structure and payloads.
func TestQuickTreeRoundTrip(t *testing.T) {
	f := func(spec []uint16) bool {
		c := core.NewCollector(1, pmu.DefaultPeriods(), 0)
		for _, v := range spec {
			depth := int(v%3) + 1
			frames := make([]lbr.IP, depth)
			for d := 0; d < depth; d++ {
				frames[d] = lbr.IP{Fn: string(rune('a' + (v>>uint(d))%5))}
				if v%7 == 0 {
					frames[d].Site = "s"
				}
			}
			c.HandleSample(&machine.Sample{
				Event: pmu.Cycles, State: rtm.InCS,
				Stack: frames, IP: frames[len(frames)-1],
			})
		}
		r := analyzer.Analyze("quick", c)
		var buf bytes.Buffer
		if err := FromReport(r).Write(&buf); err != nil {
			return false
		}
		db, err := Read(&buf)
		if err != nil {
			return false
		}
		r2 := db.Report()
		if r2.Totals != r.Totals {
			return false
		}
		// Same node count and same per-node T sums.
		sum := func(rr *analyzer.Report) (n int, total uint64) {
			rr.Merged.Walk(func(node *core.Node, _ int) { n++; total += node.Data.T })
			return
		}
		n1, t1 := sum(r)
		n2, t2 := sum(r2)
		return n1 == n2 && t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
