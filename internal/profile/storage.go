package profile

// Crash-consistent on-disk storage. A version-2 database is a framed
// file:
//
//	txprofdb <version> len=<payload bytes> crc32=<hex8> sha256=<hex64>\n
//	<payload: indented JSON, exactly len bytes>
//
// The header carries both a CRC32 (cheap first-line check) and a
// SHA-256 (strong integrity) over the payload, so Load can distinguish
// a torn write (payload shorter than the header claims: ErrTruncated)
// from bit rot or trailing garbage (ErrCorrupt) from a format change
// (*VersionError). Save is atomic: the payload is written to a
// temporary file in the same directory, fsynced, renamed over the
// destination, and the directory is fsynced — a crash at any write
// offset leaves either the old complete database or a torn temp file
// that Fsck removes, never a half-new database under the real name.

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"txsampler/internal/faults"
)

// magic is the first header token of a framed database.
const magic = "txprofdb"

// TmpSuffix is appended to the temporary file Save writes before the
// atomic rename. A file with this suffix is always garbage: either a
// save in progress or the debris of a crash mid-write.
const TmpSuffix = ".tmp"

// Typed load failures. Load and Read wrap exactly one of these (or a
// plain I/O error) so callers can triage a damaged database:
// re-running the producer fixes a truncated or corrupt file, while a
// version mismatch needs a different reader.
var (
	// ErrTruncated marks a database cut short mid-write: the payload
	// is shorter than the header claims, or the header itself is
	// incomplete.
	ErrTruncated = errors.New("truncated profile database")
	// ErrCorrupt marks a database whose bytes are all present but
	// wrong: checksum mismatch, trailing garbage, or undecodable
	// payload.
	ErrCorrupt = errors.New("corrupt profile database")
)

// VersionError reports a database written by an incompatible format
// version (including headerless version-1 files).
type VersionError struct {
	Got, Want int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("profile: unsupported version %d (want %d)", e.Got, e.Want)
}

// encode renders the framed representation: header line + payload.
func (db *Database) encode() ([]byte, error) {
	var payload bytes.Buffer
	enc := json.NewEncoder(&payload)
	enc.SetIndent("", "  ")
	if err := enc.Encode(db); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	p := payload.Bytes()
	sum := sha256.Sum256(p)
	header := fmt.Sprintf("%s %d len=%d crc32=%08x sha256=%s\n",
		magic, db.Version, len(p), crc32.ChecksumIEEE(p), hex.EncodeToString(sum[:]))
	return append([]byte(header), p...), nil
}

// Write serializes the database in the framed format.
func (db *Database) Write(w io.Writer) error {
	buf, err := db.encode()
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// header is the parsed first line of a framed database.
type header struct {
	version int
	length  int
	crc     uint32
	sha     string
}

func parseHeader(line string) (header, error) {
	var h header
	fields := strings.Fields(line)
	if len(fields) != 5 || fields[0] != magic {
		return h, fmt.Errorf("profile: %w: bad header", ErrCorrupt)
	}
	var err error
	if h.version, err = strconv.Atoi(fields[1]); err != nil {
		return h, fmt.Errorf("profile: %w: bad header version", ErrCorrupt)
	}
	for _, f := range fields[2:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return h, fmt.Errorf("profile: %w: bad header field %q", ErrCorrupt, f)
		}
		switch key {
		case "len":
			h.length, err = strconv.Atoi(val)
		case "crc32":
			var v uint64
			v, err = strconv.ParseUint(val, 16, 32)
			h.crc = uint32(v)
		case "sha256":
			h.sha = val
		default:
			return h, fmt.Errorf("profile: %w: unknown header field %q", ErrCorrupt, key)
		}
		if err != nil {
			return h, fmt.Errorf("profile: %w: bad header field %q", ErrCorrupt, f)
		}
	}
	if h.length < 0 || len(h.sha) != 2*sha256.Size {
		return h, fmt.Errorf("profile: %w: bad header", ErrCorrupt)
	}
	return h, nil
}

// Read parses a framed database, verifying length, checksums, and
// version. Failures wrap ErrTruncated, ErrCorrupt, or *VersionError.
func Read(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("profile: %w: empty database", ErrTruncated)
	}
	if first[0] == '{' {
		// Headerless version-1 file (bare JSON, no integrity check).
		var db Database
		if err := json.NewDecoder(br).Decode(&db); err != nil {
			return nil, fmt.Errorf("profile: %w: headerless and undecodable", ErrCorrupt)
		}
		return nil, &VersionError{Got: db.Version, Want: FormatVersion}
	}
	if pre, err := br.Peek(len(magic) + 1); err != nil || string(pre) != magic+" " {
		return nil, fmt.Errorf("profile: %w: bad magic", ErrCorrupt)
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("profile: %w: unterminated header", ErrTruncated)
	}
	h, err := parseHeader(line)
	if err != nil {
		return nil, err
	}
	if h.version != FormatVersion {
		return nil, &VersionError{Got: h.version, Want: FormatVersion}
	}
	payload := make([]byte, h.length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("profile: %w: payload has fewer than the %d header-declared bytes", ErrTruncated, h.length)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("profile: %w: trailing garbage after payload", ErrCorrupt)
	}
	if got := crc32.ChecksumIEEE(payload); got != h.crc {
		return nil, fmt.Errorf("profile: %w: crc32 %08x does not match header %08x", ErrCorrupt, got, h.crc)
	}
	if sum := sha256.Sum256(payload); hex.EncodeToString(sum[:]) != h.sha {
		return nil, fmt.Errorf("profile: %w: sha256 mismatch", ErrCorrupt)
	}
	var db Database
	if err := json.Unmarshal(payload, &db); err != nil {
		return nil, fmt.Errorf("profile: %w: checksummed payload is not valid JSON: %v", ErrCorrupt, err)
	}
	if db.Version != h.version {
		return nil, fmt.Errorf("profile: %w: payload version %d contradicts header version %d", ErrCorrupt, db.Version, h.version)
	}
	return &db, nil
}

// Save writes the database to path atomically: temp file in the same
// directory, fsync, rename, directory fsync. Readers never observe a
// half-written database, and a crash leaves at worst a TmpSuffix file.
func (db *Database) Save(path string) error {
	buf, err := db.encode()
	if err != nil {
		return err
	}
	tmp := path + TmpSuffix
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// One close path only (the seed's Save raced a deferred Close
	// against an explicit one); any failure removes the temp file so
	// the destination is either the old database or the new one.
	err = func() error {
		if _, err := f.Write(buf); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		return f.Close()
	}()
	if err != nil {
		f.Close() // no-op when the write path already closed it
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// SaveCrash writes the database non-atomically, straight to path, and
// tears the write after failAfter bytes — the storage half of the
// faults package's crash-at-write-offset mode. The destination is left
// genuinely torn (a prefix of the framed encoding) exactly as a
// process kill mid-write of the pre-atomic writer would, so recovery
// paths are exercised against real damage. Always returns an error
// wrapping faults.ErrCrashWrite.
func (db *Database) SaveCrash(path string, failAfter uint64) error {
	buf, err := db.encode()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	cw := faults.CrashWriter(f, failAfter)
	_, werr := cw.Write(buf)
	f.Close()
	if werr == nil {
		werr = faults.ErrCrashWrite // offset beyond the encoding still "crashes"
	}
	return fmt.Errorf("profile: save %s: %w", path, werr)
}

// syncDir fsyncs a directory so the rename itself is durable. Errors
// are ignored: some filesystems reject directory fsync, and the data
// file was already synced.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Load reads a database from path. Failures wrap ErrTruncated,
// ErrCorrupt, or *VersionError (besides plain I/O errors).
func Load(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Info summarizes a verified database.
type Info struct {
	Version int
	Partial bool
	Program string
}

// Verify fully checks one database: header, payload length, both
// checksums, version, and JSON decodability. The returned Info is
// valid only when err is nil.
func Verify(path string) (Info, error) {
	db, err := Load(path)
	if err != nil {
		return Info{}, err
	}
	return Info{Version: db.Version, Partial: db.Partial, Program: db.Program}, nil
}

// FsckResult summarizes one Fsck pass.
type FsckResult struct {
	Scanned  int // databases examined
	Clean    int // databases that verified (including partial ones)
	Partial  int // verified databases stamped Partial
	Bad      int // truncated / corrupt / version-mismatched databases
	Orphans  int // leftover TmpSuffix files
	Repaired int // files quarantined or removed by repair mode
}

// Problems reports whether the scan found anything wrong. Partial
// databases are not problems: they are valid flushes of canceled runs
// that a resumed campaign replaces.
func (r FsckResult) Problems() bool { return r.Bad > 0 || r.Orphans > 0 }

// String is the one-line summary cmd/profck prints.
func (r FsckResult) String() string {
	return fmt.Sprintf("profck: %d scanned, %d clean (%d partial), %d bad, %d orphaned tmp, %d repaired",
		r.Scanned, r.Clean, r.Partial, r.Bad, r.Orphans, r.Repaired)
}

// Fsck scans profile databases (each path a database file or a
// directory holding *.json databases), verifies every one, and reports
// a line per file to w. With repair true it quarantines damaged
// databases by renaming them to <name>.corrupt — so a resumed campaign
// re-runs the shard instead of silently loading bad data — and removes
// orphaned temp files. The scan continues past damaged files; only I/O
// failures walking the paths abort it.
func Fsck(w io.Writer, paths []string, repair bool) (FsckResult, error) {
	var res FsckResult
	var files, orphans []string
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return res, err
		}
		if !st.IsDir() {
			files = append(files, p)
			continue
		}
		err = filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			switch {
			case strings.HasSuffix(path, TmpSuffix):
				orphans = append(orphans, path)
			case strings.HasSuffix(path, ".json"):
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return res, err
		}
	}
	sort.Strings(files)
	sort.Strings(orphans)
	for _, path := range files {
		res.Scanned++
		info, err := Verify(path)
		switch {
		case err == nil && info.Partial:
			res.Clean++
			res.Partial++
			fmt.Fprintf(w, "%s: ok (partial: flushed by a canceled run)\n", path)
		case err == nil:
			res.Clean++
			fmt.Fprintf(w, "%s: ok\n", path)
		default:
			res.Bad++
			fmt.Fprintf(w, "%s: %v\n", path, err)
			if repair {
				if rerr := os.Rename(path, path+".corrupt"); rerr == nil {
					res.Repaired++
					fmt.Fprintf(w, "%s: quarantined as %s.corrupt\n", path, path)
				} else {
					fmt.Fprintf(w, "%s: quarantine failed: %v\n", path, rerr)
				}
			}
		}
	}
	for _, path := range orphans {
		res.Orphans++
		fmt.Fprintf(w, "%s: orphaned temp file (crash mid-save)\n", path)
		if repair {
			if rerr := os.Remove(path); rerr == nil {
				res.Repaired++
				fmt.Fprintf(w, "%s: removed\n", path)
			} else {
				fmt.Fprintf(w, "%s: remove failed: %v\n", path, rerr)
			}
		}
	}
	return res, nil
}
