// Package profile implements TxSampler's on-disk profile database
// (paper §6: "the analyzer records all the insights into files and
// passes them to TxSampler's GUI for visualization"). A database holds
// the merged calling-context tree with its per-context metrics, the
// per-thread summaries, and the run metadata, serialized as JSON so
// external viewers can consume it.
package profile

import (
	"txsampler/internal/analyzer"
	"txsampler/internal/cct"
	"txsampler/internal/core"
	"txsampler/internal/lbr"
	"txsampler/internal/pmu"
	"txsampler/internal/telemetry"
)

// FormatVersion identifies the database layout. Version 2 frames the
// JSON payload with a checksummed header (see storage.go) and adds the
// Partial stamp; version 1 was bare JSON with no integrity protection.
const FormatVersion = 2

// Node is one serialized calling context.
type Node struct {
	Fn       string       `json:"fn"`
	Site     string       `json:"site,omitempty"`
	Metrics  core.Metrics `json:"metrics"`
	Children []*Node      `json:"children,omitempty"`
}

// Thread is one thread's §5 histogram entry.
type Thread struct {
	TID           int    `json:"tid"`
	CommitSamples uint64 `json:"commits"`
	AbortSamples  uint64 `json:"aborts"`
}

// Database is a complete serialized profile.
type Database struct {
	Version   int              `json:"version"`
	Program   string           `json:"program"`
	Threads   int              `json:"threads"`
	Periods   [5]uint64        `json:"periods"`
	Totals    core.Metrics     `json:"totals"`
	Quality   core.DataQuality `json:"quality"`
	PerThread []Thread         `json:"per_thread"`
	Root      *Node            `json:"cct"`

	// Partial marks a profile flushed by cooperative cancellation
	// (SIGINT/SIGTERM or a per-shard deadline) rather than a completed
	// run: the data is internally consistent up to the quantum boundary
	// the machine stopped at, but covers only a prefix of the workload.
	// Resumable campaigns replace partial artifacts by re-running the
	// shard from scratch.
	Partial bool `json:"partial,omitempty"`

	// Telemetry is the profiler self-report captured when the profile
	// was produced (machine, collector, analyzer self-metrics).
	// Volatile wall-clock entries are stripped before serialization so
	// databases from identical seeds stay byte-identical.
	Telemetry []telemetry.MetricValue `json:"telemetry,omitempty"`
}

// FromReport converts an analyzer report into a database.
func FromReport(r *analyzer.Report) *Database {
	db := &Database{
		Version: FormatVersion,
		Program: r.Program,
		Threads: r.Threads,
		Totals:  r.Totals,
		Quality: r.Quality,
		Partial: r.Partial,
	}
	for i, p := range r.Periods {
		if i < len(db.Periods) {
			db.Periods[i] = p
		}
	}
	for _, t := range r.PerThread {
		db.PerThread = append(db.PerThread, Thread{TID: t.TID, CommitSamples: t.CommitSamples, AbortSamples: t.AbortSamples})
	}
	db.Root = fromNode(r.Merged.Root)
	for _, mv := range r.Self {
		if !mv.Volatile {
			db.Telemetry = append(db.Telemetry, mv)
		}
	}
	return db
}

func fromNode(n *core.Node) *Node {
	out := &Node{Fn: n.Frame.Fn, Site: n.Frame.Site, Metrics: n.Data}
	for _, c := range n.Children() {
		out.Children = append(out.Children, fromNode(c))
	}
	return out
}

// Report reconstructs an analyzer report from a database; the merged
// tree round-trips exactly, so downstream analyses (ranking, decision
// tree) run identically on a loaded profile.
func (db *Database) Report() *analyzer.Report {
	r := &analyzer.Report{
		Program: db.Program,
		Threads: db.Threads,
		Totals:  db.Totals,
		Quality: db.Quality,
		Partial: db.Partial,
		Merged:  cct.NewTree[core.Metrics](),
	}
	var periods pmu.Periods
	for i := range db.Periods {
		if i < len(periods) {
			periods[i] = db.Periods[i]
		}
	}
	r.Periods = periods
	for _, t := range db.PerThread {
		r.PerThread = append(r.PerThread, analyzer.ThreadSummary{TID: t.TID, CommitSamples: t.CommitSamples, AbortSamples: t.AbortSamples})
	}
	if db.Root != nil {
		r.Merged.Root.Data = db.Root.Metrics
		attach(r.Merged.Root, db.Root.Children)
	}
	r.Self = db.Telemetry
	return r
}

func attach(parent *core.Node, children []*Node) {
	for _, c := range children {
		n := parent.Child(lbr.IP{Fn: c.Fn, Site: c.Site})
		n.Data = c.Metrics
		attach(n, c.Children)
	}
}
