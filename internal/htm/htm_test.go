package htm

import (
	"testing"
	"testing/quick"

	"txsampler/internal/mem"
)

func eng() *Engine { return NewEngine(Config{Sets: 8, Ways: 2, MaxReadLines: 32}) }

func TestCommitAppliesBufferedStores(t *testing.T) {
	e := eng()
	tx := e.Begin(0, 100)
	e.Write(tx, 0x1000, 7)
	e.Write(tx, 0x1008, 8)
	if tx.Doomed {
		t.Fatal("unexpected doom")
	}
	stores, ok := e.Commit(tx)
	if !ok {
		t.Fatal("commit failed")
	}
	if stores[0x1000] != 7 || stores[0x1008] != 8 {
		t.Fatalf("stores = %v", stores)
	}
	if e.Commits != 1 {
		t.Fatalf("Commits = %d", e.Commits)
	}
	if r, w := e.InFlight(); r != 0 || w != 0 {
		t.Fatalf("leaked tracking: r=%d w=%d", r, w)
	}
}

func TestReadSeesOwnWrite(t *testing.T) {
	e := eng()
	tx := e.Begin(0, 0)
	e.Write(tx, 0x2000, 99)
	v, ok := e.Read(tx, 0x2000)
	if !ok || v != 99 {
		t.Fatalf("Read = %d,%v, want 99,true", v, ok)
	}
	// A different word on the same line is not forwarded.
	if _, ok := e.Read(tx, 0x2008); ok {
		t.Fatal("forwarded a value never written")
	}
}

func TestWriteWriteConflictRequesterWins(t *testing.T) {
	e := eng()
	a := e.Begin(0, 0)
	b := e.Begin(1, 0)
	e.Write(a, 0x3000, 1)
	e.Write(b, 0x3008, 2) // same line, different word: still a conflict
	if !a.Doomed || a.AbortCause != Conflict || a.AbortedBy != 1 {
		t.Fatalf("victim a: doomed=%v cause=%v by=%d", a.Doomed, a.AbortCause, a.AbortedBy)
	}
	if b.Doomed {
		t.Fatal("requester b should survive")
	}
	if a.ConflictLine != mem.Addr(0x3000).Line() {
		t.Fatalf("conflict line = %v", a.ConflictLine)
	}
}

func TestReadOfRemoteWriteSetAbortsWriter(t *testing.T) {
	e := eng()
	a := e.Begin(0, 0)
	b := e.Begin(1, 0)
	e.Write(a, 0x4000, 1)
	e.Read(b, 0x4000)
	if !a.Doomed || a.AbortCause != Conflict {
		t.Fatal("writer not aborted by remote read")
	}
	if b.Doomed {
		t.Fatal("reader should survive")
	}
}

func TestWriteToRemoteReadSetAbortsReaders(t *testing.T) {
	e := eng()
	r1 := e.Begin(0, 0)
	r2 := e.Begin(1, 0)
	w := e.Begin(2, 0)
	e.Read(r1, 0x5000)
	e.Read(r2, 0x5000)
	e.Write(w, 0x5000, 1)
	if !r1.Doomed || !r2.Doomed {
		t.Fatal("readers not aborted by remote write")
	}
	if w.Doomed {
		t.Fatal("writer should survive")
	}
}

func TestConcurrentReadersNoConflict(t *testing.T) {
	e := eng()
	r1 := e.Begin(0, 0)
	r2 := e.Begin(1, 0)
	e.Read(r1, 0x6000)
	e.Read(r2, 0x6000)
	if r1.Doomed || r2.Doomed {
		t.Fatal("read sharing should not conflict")
	}
}

func TestNonTxWriteAbortsReadersAndWriter(t *testing.T) {
	e := eng()
	r := e.Begin(0, 0)
	w := e.Begin(1, 0)
	e.Read(r, 0x7000)
	e.Write(w, 0x7040, 1)
	e.NonTxAccess(2, 0x7000, true)
	e.NonTxAccess(2, 0x7040, true)
	if !r.Doomed || !w.Doomed {
		t.Fatal("non-tx write must abort conflicting transactions")
	}
	if r.AbortedBy != 2 || w.AbortedBy != 2 {
		t.Fatalf("AbortedBy = %d,%d, want 2,2", r.AbortedBy, w.AbortedBy)
	}
}

func TestNonTxReadAbortsOnlyWriter(t *testing.T) {
	e := eng()
	r := e.Begin(0, 0)
	w := e.Begin(1, 0)
	e.Read(r, 0x8000)
	e.Write(w, 0x8000+64, 1)
	e.NonTxAccess(2, 0x8000, false)
	e.NonTxAccess(2, 0x8000+64, false)
	if r.Doomed {
		t.Fatal("non-tx read must not abort readers")
	}
	if !w.Doomed {
		t.Fatal("non-tx read must abort a transactional writer")
	}
}

func TestOwnNonTxAccessDoesNotSelfAbort(t *testing.T) {
	e := eng()
	tx := e.Begin(0, 0)
	e.Write(tx, 0x9000, 1)
	e.NonTxAccess(0, 0x9000, true) // same thread (e.g. fallback after cleanup bug): no self-doom
	if tx.Doomed {
		t.Fatal("self access aborted own transaction")
	}
}

func TestWriteCapacityPerSetOverflow(t *testing.T) {
	e := NewEngine(Config{Sets: 4, Ways: 2, MaxReadLines: 100})
	tx := e.Begin(0, 0)
	// Lines with index ≡ 0 mod 4 all land in set 0: 64*4 stride.
	stride := mem.Addr(64 * 4)
	e.Write(tx, 0*stride+0x10000, 1)
	e.Write(tx, 1*stride+0x10000, 1)
	if tx.Doomed {
		t.Fatal("doomed before overflow")
	}
	e.Write(tx, 2*stride+0x10000, 1)
	if !tx.Doomed || tx.AbortCause != Capacity || tx.CapKind != CapacityWrite {
		t.Fatalf("want write-capacity abort, got doomed=%v cause=%v kind=%v", tx.Doomed, tx.AbortCause, tx.CapKind)
	}
}

func TestWriteCapacitySpreadAcrossSetsSurvives(t *testing.T) {
	e := NewEngine(Config{Sets: 4, Ways: 2, MaxReadLines: 100})
	tx := e.Begin(0, 0)
	// 8 lines spread across 4 sets: 2 per set, exactly at capacity.
	for i := 0; i < 8; i++ {
		e.Write(tx, mem.Addr(0x10000+i*64), 1)
	}
	if tx.Doomed {
		t.Fatal("evenly spread write set should fit")
	}
	if _, ok := e.Commit(tx); !ok {
		t.Fatal("commit failed")
	}
}

func TestReadCapacity(t *testing.T) {
	e := NewEngine(Config{Sets: 8, Ways: 8, MaxReadLines: 4})
	tx := e.Begin(0, 0)
	for i := 0; i < 4; i++ {
		e.Read(tx, mem.Addr(0x20000+i*64))
	}
	if tx.Doomed {
		t.Fatal("doomed before read limit")
	}
	e.Read(tx, 0x30000)
	if !tx.Doomed || tx.CapKind != CapacityRead {
		t.Fatalf("want read-capacity abort, got cause=%v kind=%v", tx.AbortCause, tx.CapKind)
	}
}

func TestDoomFirstCauseWins(t *testing.T) {
	e := eng()
	tx := e.Begin(0, 0)
	e.Doom(tx, Sync, -1, 0)
	e.Doom(tx, Conflict, 3, 0x40)
	if tx.AbortCause != Sync || tx.AbortedBy != -1 {
		t.Fatalf("second doom overwrote first: %v by %d", tx.AbortCause, tx.AbortedBy)
	}
	if e.Aborts[Sync] != 1 || e.Aborts[Conflict] != 0 {
		t.Fatalf("abort stats: %v", e.Aborts)
	}
}

func TestDoomedTxStopsConflicting(t *testing.T) {
	e := eng()
	a := e.Begin(0, 0)
	b := e.Begin(1, 0)
	e.Write(a, 0xa000, 1)
	e.Doom(a, Interrupt, -1, 0)
	e.Write(b, 0xa000, 2) // must not be affected by the dead tx
	if b.Doomed {
		t.Fatal("doomed tx still caused a conflict")
	}
	if _, ok := e.Commit(b); !ok {
		t.Fatal("b should commit")
	}
}

func TestCommitDoomedFails(t *testing.T) {
	e := eng()
	tx := e.Begin(0, 0)
	e.Write(tx, 0xb000, 1)
	e.Doom(tx, Explicit, -1, 0)
	if _, ok := e.Commit(tx); ok {
		t.Fatal("doomed transaction committed")
	}
}

func TestTSXStatusRoundTrip(t *testing.T) {
	for _, c := range []Cause{Conflict, Capacity, Explicit} {
		if got := CauseFromStatus(c.TSXStatus()); got != c {
			t.Errorf("round trip %v -> %#x -> %v", c, c.TSXStatus(), got)
		}
	}
	// Sync and Interrupt both encode as zero status: hardware cannot
	// tell them apart either, and zero decodes to Sync.
	if Sync.TSXStatus() != 0 || Interrupt.TSXStatus() != 0 {
		t.Error("sync/interrupt status must be zero")
	}
	if CauseFromStatus(0) != Sync {
		t.Error("zero status must decode to Sync")
	}
	// The retry hint matches Retryable for hardware-reported causes.
	if Conflict.TSXStatus()&StatusRetry == 0 {
		t.Error("conflict status lacks the retry hint")
	}
	if Capacity.TSXStatus()&StatusRetry != 0 {
		t.Error("capacity status must not hint retry")
	}
}

func TestCauseRetryable(t *testing.T) {
	want := map[Cause]bool{Conflict: true, Interrupt: true, Capacity: false, Sync: false, Explicit: false}
	for c, r := range want {
		if c.Retryable() != r {
			t.Errorf("%v.Retryable() = %v, want %v", c, c.Retryable(), r)
		}
	}
}

func TestCauseStrings(t *testing.T) {
	for c, s := range map[Cause]string{None: "none", Conflict: "conflict", Capacity: "capacity", Sync: "sync", Explicit: "explicit", Interrupt: "interrupt", Cause(200): "unknown"} {
		if c.String() != s {
			t.Errorf("Cause(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	for k, s := range map[CapacityKind]string{CapacityNone: "none", CapacityRead: "read", CapacityWrite: "write"} {
		if k.String() != s {
			t.Errorf("CapacityKind.String() = %q, want %q", k.String(), s)
		}
	}
}

// Property: serial transactions (begin, ops, commit — one at a time,
// fitting in capacity) always commit, and the engine never leaks
// tracked lines.
func TestQuickSerialAlwaysCommits(t *testing.T) {
	e := NewEngine(Config{Sets: 64, Ways: 8, MaxReadLines: 1024})
	f := func(ops []uint16) bool {
		tx := e.Begin(0, 0)
		for _, o := range ops {
			a := mem.Addr(0x100000 + uint64(o%256)*8)
			if o&0x8000 != 0 {
				e.Write(tx, a, mem.Word(o))
			} else {
				e.Read(tx, a)
			}
			if tx.Doomed {
				return false
			}
		}
		if _, ok := e.Commit(tx); !ok {
			return false
		}
		r, w := e.InFlight()
		return r == 0 && w == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: under two concurrently interleaved transactions touching a
// small address pool, at most one of any conflicting pair survives, and
// a surviving transaction's commit succeeds.
func TestQuickRequesterAlwaysSurvives(t *testing.T) {
	type op struct {
		T     bool // which tx
		Slot  uint8
		Write bool
	}
	f := func(ops []op) bool {
		e := NewEngine(Config{Sets: 64, Ways: 8, MaxReadLines: 1024})
		txs := []*Tx{e.Begin(0, 0), e.Begin(1, 0)}
		for _, o := range ops {
			idx := 0
			if o.T {
				idx = 1
			}
			tx := txs[idx]
			if tx.Doomed {
				continue
			}
			a := mem.Addr(0x200000 + uint64(o.Slot%8)*64)
			if o.Write {
				e.Write(tx, a, 1)
			} else {
				e.Read(tx, a)
			}
			// The requester must never be doomed by its own access
			// (capacity is impossible here: pool is 8 lines).
			if tx.Doomed {
				return false
			}
		}
		for _, tx := range txs {
			if !tx.Doomed {
				if _, ok := e.Commit(tx); !ok {
					return false
				}
			}
		}
		r, w := e.InFlight()
		return r == 0 && w == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
