package htm

import "testing"

// TestFootprintAccessors: the read/write set sizes count distinct
// lines, not accesses — two words on one line are one entry.
func TestFootprintAccessors(t *testing.T) {
	e := eng()
	tx := e.Begin(0, 0)
	e.Read(tx, 0x1000)
	e.Read(tx, 0x1008) // same line
	e.Read(tx, 0x1040) // next line
	e.Write(tx, 0x2000, 1)
	if r := tx.ReadSetLines(); r != 2 {
		t.Fatalf("ReadSetLines = %d, want 2", r)
	}
	if w := tx.WriteSetLines(); w != 1 {
		t.Fatalf("WriteSetLines = %d, want 1", w)
	}
}
