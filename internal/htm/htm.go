// Package htm implements the hardware transactional memory engine of
// the simulated machine, modelled on Intel TSX's Restricted
// Transactional Memory (RTM).
//
// Like TSX, the engine detects conflicts at cache-line granularity
// through the coherence protocol with a requester-wins policy: when a
// core's access needs a line another transaction is tracking in a
// conflicting mode, the *tracking* transaction aborts (it is the one
// that receives the invalidation). Transactional stores are buffered
// and become visible only at commit. A transaction whose write set
// overflows an L1 set, or whose read set exceeds the read-tracking
// capacity, suffers a capacity abort. Unfriendly instructions (system
// calls, page faults) cause synchronous aborts, and PMU interrupts
// cause interrupt aborts — the machine layer reports those through
// Doom.
package htm

import (
	"fmt"

	"txsampler/internal/mem"
)

// Cause identifies why a transaction aborted. The zero value means the
// transaction has not aborted.
type Cause uint8

const (
	// None: no abort.
	None Cause = iota
	// Conflict: another core's memory access conflicted with this
	// transaction's read or write set (asynchronous abort).
	Conflict
	// Capacity: the transactional footprint exceeded the hardware's
	// tracking capacity (asynchronous abort).
	Capacity
	// Sync: an unfriendly instruction (system call, page fault, ...)
	// executed inside the transaction (synchronous abort).
	Sync
	// Explicit: the program executed XABORT.
	Explicit
	// Interrupt: a PMU counter overflow interrupt landed while the
	// transaction was running. These aborts are induced by the
	// profiler itself and are reported separately from application
	// aborts (paper §3.1).
	Interrupt
	// Spurious: an environment-injected transient abort with no cause
	// visible to software — real TSX occasionally aborts with a fully
	// clear EAX status (not even the retry bit) even though an
	// immediate retry succeeds. Produced only by the fault-injection
	// subsystem (internal/faults); like Interrupt, it is ambient noise
	// and excluded from application abort classification.
	Spurious

	// NumCauses is the number of defined abort causes (including
	// None), for metric arrays indexed by Cause.
	NumCauses = iota
)

func (c Cause) String() string {
	switch c {
	case None:
		return "none"
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	case Sync:
		return "sync"
	case Explicit:
		return "explicit"
	case Interrupt:
		return "interrupt"
	case Spurious:
		return "spurious"
	}
	return "unknown"
}

// TSX EAX status bits, as the XBEGIN fallback path receives them
// (Intel SDM Vol. 1, RTM status register).
const (
	// StatusExplicit: the abort came from XABORT.
	StatusExplicit uint32 = 1 << 0
	// StatusRetry: the hardware hints the transaction may succeed on
	// retry.
	StatusRetry uint32 = 1 << 1
	// StatusConflict: another logical processor conflicted.
	StatusConflict uint32 = 1 << 2
	// StatusCapacity: an internal buffer overflowed.
	StatusCapacity uint32 = 1 << 3
	// StatusDebug: a debug breakpoint was hit (unused here).
	StatusDebug uint32 = 1 << 4
	// StatusNested: the abort occurred in a nested transaction
	// (unused: the RTM layer flattens nesting).
	StatusNested uint32 = 1 << 5
)

// TSXStatus encodes the cause as the EAX status word the fallback
// path of a real XBEGIN receives. Synchronous and interrupt aborts
// report a zero status, exactly as unfriendly instructions and
// asynchronous events do on hardware.
func (c Cause) TSXStatus() uint32 {
	switch c {
	case Conflict:
		return StatusConflict | StatusRetry
	case Capacity:
		return StatusCapacity
	case Explicit:
		return StatusExplicit
	default:
		return 0
	}
}

// CauseFromStatus decodes an EAX status word back to a cause; a zero
// status is indistinguishable between sync aborts and interrupts, as
// on hardware, and decodes to Sync.
func CauseFromStatus(s uint32) Cause {
	switch {
	case s&StatusExplicit != 0:
		return Explicit
	case s&StatusConflict != 0:
		return Conflict
	case s&StatusCapacity != 0:
		return Capacity
	default:
		return Sync
	}
}

// Retryable reports whether an abort with this cause may succeed if the
// transaction is simply retried, mirroring the TSX "retry" status bit:
// conflicts, interrupt-induced aborts, and spurious aborts are
// transient; capacity, synchronous, and explicit aborts are persistent.
func (c Cause) Retryable() bool { return c == Conflict || c == Interrupt || c == Spurious }

// Ambient reports whether the cause is environment noise rather than
// application behaviour: profiler-induced interrupt aborts and
// fault-injected spurious aborts. The analyzer excludes ambient causes
// from application abort classification so profiles stay comparable
// between clean and chaos runs.
func (c Cause) Ambient() bool { return c == Interrupt || c == Spurious }

// Config sizes the transactional tracking structures.
type Config struct {
	// Sets and Ways give the per-core L1 geometry used to track the
	// write set: a transaction aborts when the distinct write-set
	// lines mapping to one set exceed Ways.
	Sets, Ways int
	// MaxReadLines bounds the total read-set size (reads are tracked
	// in a larger secondary structure on real hardware). Zero means
	// 4096 lines (a 256 KiB L2 worth).
	MaxReadLines int
}

func (c Config) maxRead() int {
	if c.MaxReadLines > 0 {
		return c.MaxReadLines
	}
	return 4096
}

// Validate reports whether the tracking geometry is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 {
		return fmt.Errorf("htm: invalid geometry sets=%d ways=%d (both must be positive)", c.Sets, c.Ways)
	}
	if c.MaxReadLines < 0 {
		return fmt.Errorf("htm: negative MaxReadLines %d", c.MaxReadLines)
	}
	return nil
}

// CapacityKind records which set overflowed on a capacity abort.
type CapacityKind uint8

const (
	// CapacityNone: not a capacity abort.
	CapacityNone CapacityKind = iota
	// CapacityRead: the read set overflowed.
	CapacityRead
	// CapacityWrite: the write set overflowed an L1 set.
	CapacityWrite
)

func (k CapacityKind) String() string {
	switch k {
	case CapacityRead:
		return "read"
	case CapacityWrite:
		return "write"
	default:
		return "none"
	}
}

// Tx is one hardware transaction attempt. Fields are read-only for
// callers; the engine mutates them.
type Tx struct {
	ID  uint64
	TID int // simulated thread owning the transaction

	Doomed     bool
	AbortCause Cause
	CapKind    CapacityKind
	// ConflictLine is the line whose access triggered a conflict
	// abort, and AbortedBy the thread that issued it (-1 otherwise).
	// AbortedByTx distinguishes conflicts with another transaction
	// from conflicts with non-transactional code (e.g. the fallback
	// lock acquisition) — the finer cause granularity POWER8 exposes
	// and Intel does not (paper §10).
	ConflictLine mem.Addr
	AbortedBy    int
	AbortedByTx  bool

	StartCycle uint64 // thread clock at XBEGIN, for abort-weight accounting

	readSet  map[mem.Addr]struct{}
	writeSet map[mem.Addr]struct{}
	occBySet []uint16 // distinct tracked lines (read or write) per L1 set
	writeBuf map[mem.Addr]mem.Word
}

// ReadSetLines and WriteSetLines report the current footprint.
func (t *Tx) ReadSetLines() int  { return len(t.readSet) }
func (t *Tx) WriteSetLines() int { return len(t.writeSet) }

// Engine tracks all in-flight transactions on the machine.
type Engine struct {
	cfg    Config
	nextID uint64

	// readers maps a line to the transactions tracking it in their
	// read set; writers maps a line to the single transaction holding
	// it in its write set. Doomed transactions are removed eagerly,
	// as hardware stops tracking an aborted transaction's lines.
	readers map[mem.Addr]map[*Tx]struct{}
	writers map[mem.Addr]*Tx

	// Stats.
	Commits uint64
	Aborts  map[Cause]uint64
}

// NewEngine returns an engine for the given tracking geometry. Direct
// API misuse panics; construct through a validated machine.Config (or
// call Config.Validate first) for an error instead.
func NewEngine(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &Engine{
		cfg:     cfg,
		readers: make(map[mem.Addr]map[*Tx]struct{}),
		writers: make(map[mem.Addr]*Tx),
		Aborts:  make(map[Cause]uint64),
	}
}

// Begin starts a transaction for thread tid whose clock reads
// startCycle.
func (e *Engine) Begin(tid int, startCycle uint64) *Tx {
	e.nextID++
	return &Tx{
		ID:         e.nextID,
		TID:        tid,
		AbortedBy:  -1,
		StartCycle: startCycle,
		readSet:    make(map[mem.Addr]struct{}),
		writeSet:   make(map[mem.Addr]struct{}),
		occBySet:   make([]uint16, e.cfg.Sets),
		writeBuf:   make(map[mem.Addr]mem.Word),
	}
}

// Doom marks tx aborted with the given cause and untracks its lines.
// byTID identifies the conflicting thread for conflict aborts; pass -1
// otherwise. Doom on an already-doomed transaction is a no-op so the
// first cause wins.
func (e *Engine) Doom(tx *Tx, cause Cause, byTID int, line mem.Addr) {
	e.doom(tx, cause, byTID, line, false)
}

func (e *Engine) doom(tx *Tx, cause Cause, byTID int, line mem.Addr, byTx bool) {
	if tx.Doomed {
		return
	}
	tx.Doomed = true
	tx.AbortCause = cause
	tx.AbortedBy = byTID
	tx.AbortedByTx = byTx
	tx.ConflictLine = line
	e.Aborts[cause]++
	e.untrack(tx)
}

func (e *Engine) untrack(tx *Tx) {
	for line := range tx.readSet {
		if rs := e.readers[line]; rs != nil {
			delete(rs, tx)
			if len(rs) == 0 {
				delete(e.readers, line)
			}
		}
	}
	for line := range tx.writeSet {
		if e.writers[line] == tx {
			delete(e.writers, line)
		}
	}
}

// Read performs a transactional load of the word at a. It returns the
// loaded value's source: ok=false means the value must come from
// memory; ok=true returns the transaction's own buffered store. Side
// effects: the line joins the read set (aborting a conflicting remote
// writer, requester-wins), and the transaction may doom itself with a
// capacity abort. Callers must check tx.Doomed afterwards.
func (e *Engine) Read(tx *Tx, a mem.Addr) (v mem.Word, ok bool) {
	if tx.Doomed {
		return 0, false
	}
	if v, ok := tx.writeBuf[a]; ok {
		return v, true
	}
	line := a.Line()
	// Requester wins: a remote transaction holding the line in its
	// write set receives our share request and aborts.
	if w := e.writers[line]; w != nil && w != tx {
		e.doom(w, Conflict, tx.TID, line, true)
	}
	if _, tracked := tx.readSet[line]; !tracked {
		if len(tx.readSet) >= e.cfg.maxRead() {
			tx.CapKind = CapacityRead
			e.Doom(tx, Capacity, -1, line)
			return 0, false
		}
		// Both read and write sets are tracked in the L1: a set whose
		// tracked lines exceed the associativity cannot hold the
		// footprint, and the transaction aborts (TSX read-set
		// evictions behave this way on the modelled parts).
		if _, written := tx.writeSet[line]; !written {
			set := int(line.LineIndex() % uint64(e.cfg.Sets))
			if int(tx.occBySet[set]) >= e.cfg.Ways {
				tx.CapKind = CapacityRead
				e.Doom(tx, Capacity, -1, line)
				return 0, false
			}
			tx.occBySet[set]++
		}
		tx.readSet[line] = struct{}{}
		rs := e.readers[line]
		if rs == nil {
			rs = make(map[*Tx]struct{})
			e.readers[line] = rs
		}
		rs[tx] = struct{}{}
	}
	return 0, false
}

// Write performs a transactional store, buffering the value. Remote
// transactions tracking the line in read or write sets abort
// (requester-wins). The transaction may doom itself with a capacity
// abort if the write set overflows its L1 set. Callers must check
// tx.Doomed afterwards.
func (e *Engine) Write(tx *Tx, a mem.Addr, v mem.Word) {
	if tx.Doomed {
		return
	}
	line := a.Line()
	if w := e.writers[line]; w != nil && w != tx {
		e.doom(w, Conflict, tx.TID, line, true)
	}
	for r := range e.readers[line] {
		if r != tx {
			e.doom(r, Conflict, tx.TID, line, true)
		}
	}
	if _, tracked := tx.writeSet[line]; !tracked {
		// A line already in the read set is already tracked in its L1
		// set; only new lines consume a way.
		if _, read := tx.readSet[line]; !read {
			set := int(line.LineIndex() % uint64(e.cfg.Sets))
			if int(tx.occBySet[set]) >= e.cfg.Ways {
				tx.CapKind = CapacityWrite
				e.Doom(tx, Capacity, -1, line)
				return
			}
			tx.occBySet[set]++
		}
		tx.writeSet[line] = struct{}{}
		e.writers[line] = tx
	}
	tx.writeBuf[a] = v
}

// NonTxAccess notifies the engine of a non-transactional access by
// thread tid, aborting any transactions that conflict with it. A
// non-transactional write conflicts with remote read and write sets; a
// non-transactional read conflicts with remote write sets.
func (e *Engine) NonTxAccess(tid int, a mem.Addr, write bool) {
	line := a.Line()
	if w := e.writers[line]; w != nil && w.TID != tid {
		e.Doom(w, Conflict, tid, line)
	}
	if write {
		for r := range e.readers[line] {
			if r.TID != tid {
				e.Doom(r, Conflict, tid, line)
			}
		}
	}
}

// Commit attempts to commit tx. On success it returns the buffered
// stores for the machine to apply to memory and records the commit; if
// the transaction was doomed it returns nil and false.
func (e *Engine) Commit(tx *Tx) (stores map[mem.Addr]mem.Word, ok bool) {
	if tx.Doomed {
		return nil, false
	}
	e.untrack(tx)
	e.Commits++
	return tx.writeBuf, true
}

// InFlight reports how many lines are globally tracked; used by tests
// to verify no leaks after commits and aborts.
func (e *Engine) InFlight() (readLines, writeLines int) {
	return len(e.readers), len(e.writers)
}
