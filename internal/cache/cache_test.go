package cache

import (
	"testing"
	"testing/quick"

	"txsampler/internal/mem"
)

func cfg() Config { return DefaultConfig() }

func TestReadMissThenHit(t *testing.T) {
	h := New(2, cfg())
	a := mem.Addr(0x10000)
	r := h.Access(0, a, false)
	if r.Hit || r.Latency != cfg().MissLatency {
		t.Fatalf("first read: hit=%v lat=%d, want miss lat=%d", r.Hit, r.Latency, cfg().MissLatency)
	}
	r = h.Access(0, a, false)
	if !r.Hit || r.Latency != cfg().HitLatency {
		t.Fatalf("second read: hit=%v lat=%d, want hit lat=%d", r.Hit, r.Latency, cfg().HitLatency)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := New(4, cfg())
	a := mem.Addr(0x10000)
	h.Access(1, a, false)
	h.Access(2, a, false)
	h.Access(3, a, false)
	r := h.Access(0, a, true)
	if len(r.Invalidated) != 3 {
		t.Fatalf("invalidated %v, want cores 1,2,3", r.Invalidated)
	}
	if r.Latency != cfg().RemoteLatency {
		t.Fatalf("write over sharers latency = %d, want remote %d", r.Latency, cfg().RemoteLatency)
	}
	for c := 1; c <= 3; c++ {
		if h.Holds(c, a) {
			t.Errorf("core %d still holds the line after invalidation", c)
		}
	}
	// The writer now owns it: a repeat write is a hit.
	if r := h.Access(0, a, true); !r.Hit {
		t.Error("owner's repeat write missed")
	}
}

func TestReadDowngradesModified(t *testing.T) {
	h := New(2, cfg())
	a := mem.Addr(0x20000)
	h.Access(0, a, true) // core 0 takes M
	r := h.Access(1, a, false)
	if r.Hit {
		t.Fatal("remote read of modified line reported hit")
	}
	if r.Latency != cfg().RemoteLatency {
		t.Fatalf("remote read latency = %d, want %d", r.Latency, cfg().RemoteLatency)
	}
	if len(r.Invalidated) != 0 {
		t.Fatalf("read should not invalidate, got %v", r.Invalidated)
	}
	// Both copies are now shared; core 0 re-acquiring ownership must
	// invalidate core 1.
	r = h.Access(0, a, true)
	if len(r.Invalidated) != 1 || r.Invalidated[0] != 1 {
		t.Fatalf("upgrade invalidated %v, want [1]", r.Invalidated)
	}
}

func TestWriteUpgradeOfOwnSharedCopyKeepsLine(t *testing.T) {
	h := New(2, cfg())
	a := mem.Addr(0x30000)
	h.Access(0, a, false) // S in core 0
	r := h.Access(0, a, true)
	if r.Evicted {
		t.Fatal("in-place upgrade caused an eviction")
	}
	if !h.Holds(0, a) {
		t.Fatal("line lost during upgrade")
	}
}

func TestSetOverflowEvictsLRU(t *testing.T) {
	c := Config{Sets: 2, Ways: 2, HitLatency: 1, MissLatency: 10, RemoteLatency: 20}
	h := New(1, c)
	// Four lines all mapping to set 0 (line index even).
	lines := []mem.Addr{0 * 64, 4 * 64, 8 * 64, 12 * 64}
	for _, l := range lines[:2] {
		h.Access(0, l, false)
	}
	h.Access(0, lines[0], false) // make lines[1] the LRU
	r := h.Access(0, lines[2], false)
	if !r.Evicted || r.EvictedLine != lines[1] {
		t.Fatalf("evicted %v/%v, want %v", r.Evicted, r.EvictedLine, lines[1])
	}
	if !h.Holds(0, lines[0]) || !h.Holds(0, lines[2]) {
		t.Fatal("expected lines 0 and 2 resident")
	}
	if h.Holds(0, lines[1]) {
		t.Fatal("evicted line still resident")
	}
}

func TestEvictionClearsDirectory(t *testing.T) {
	c := Config{Sets: 2, Ways: 1, HitLatency: 1, MissLatency: 10, RemoteLatency: 20}
	h := New(2, c)
	a, b := mem.Addr(0*64), mem.Addr(4*64) // same set
	h.Access(0, a, true)
	h.Access(0, b, true) // evicts a
	// Core 1 writing a must not see core 0 as owner anymore.
	r := h.Access(1, a, true)
	if len(r.Invalidated) != 0 {
		t.Fatalf("write to evicted line invalidated %v, want none", r.Invalidated)
	}
}

func TestDistinctLinesNoInterference(t *testing.T) {
	h := New(2, cfg())
	a, b := mem.Addr(0x1000), mem.Addr(0x1040) // adjacent lines
	h.Access(0, a, true)
	r := h.Access(1, b, true)
	if len(r.Invalidated) != 0 {
		t.Fatalf("write to different line invalidated %v", r.Invalidated)
	}
	if !h.Holds(0, a) || !h.Holds(1, b) {
		t.Fatal("both cores should retain their lines")
	}
}

func TestSameLineDifferentWordsConflict(t *testing.T) {
	// False sharing at the coherence level: words 0 and 7 of one line.
	h := New(2, cfg())
	a := mem.Addr(0x2000)
	h.Access(0, a, true)
	r := h.Access(1, a+56, true)
	if len(r.Invalidated) != 1 || r.Invalidated[0] != 0 {
		t.Fatalf("false-sharing write invalidated %v, want [0]", r.Invalidated)
	}
}

func TestNewValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero cores":    func() { New(0, cfg()) },
		"too many":      func() { New(65, cfg()) },
		"non-pow2 sets": func() { New(2, Config{Sets: 3, Ways: 1}) },
		"zero ways":     func() { New(2, Config{Sets: 4, Ways: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: at most one core ever observes write-hit status for a line
// without an intervening miss — i.e. single-writer is preserved under
// arbitrary access sequences.
func TestQuickSingleWriter(t *testing.T) {
	type op struct {
		Core  uint8
		Slot  uint8
		Write bool
	}
	h := New(4, cfg())
	f := func(ops []op) bool {
		for _, o := range ops {
			core := int(o.Core) % 4
			a := mem.Addr(0x4000 + uint64(o.Slot%16)*64)
			h.Access(core, a, o.Write)
			if o.Write {
				// After a write, no other core may write-hit.
				for other := 0; other < 4; other++ {
					if other == core {
						continue
					}
					if h.Holds(other, a) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: latency is always one of the three configured values.
func TestQuickLatencyDomain(t *testing.T) {
	h := New(3, cfg())
	f := func(core, slot uint8, write bool) bool {
		r := h.Access(int(core)%3, mem.Addr(uint64(slot)*64), write)
		c := cfg()
		return r.Latency == c.HitLatency || r.Latency == c.MissLatency || r.Latency == c.RemoteLatency
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
