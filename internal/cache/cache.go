// Package cache models the memory hierarchy the simulated machine runs
// on: one private set-associative L1 cache per core kept coherent by an
// invalidation-based directory (MESI-style, collapsed to the states the
// simulation needs: Modified, Shared, Invalid).
//
// The cache serves two purposes. First, it supplies access latencies,
// so workload timing reflects locality and sharing: a write to a line
// another core holds costs an invalidation round-trip, which is how
// false sharing becomes visible in the cycle counts. Second, its set
// geometry is reused by the HTM engine to decide capacity aborts: a
// transaction whose footprint overflows an L1 set cannot be tracked by
// the hardware, exactly as on Intel TSX.
package cache

import (
	"fmt"

	"txsampler/internal/mem"
)

// Config describes the per-core L1 geometry and the latency model.
// All latencies are in cycles.
type Config struct {
	Sets int // number of sets per L1 (power of two)
	Ways int // associativity

	HitLatency    int // L1 hit
	MissLatency   int // fill from memory/LLC
	RemoteLatency int // fill or upgrade requiring another core's copy
}

// DefaultConfig mirrors the paper's evaluation machine closely enough
// for shape: a 64KB 8-way L1 with 64-byte lines (128 sets).
func DefaultConfig() Config {
	return Config{Sets: 128, Ways: 8, HitLatency: 4, MissLatency: 60, RemoteLatency: 90}
}

// Validate reports whether the geometry and latency model are usable.
// The zero Config is rejected; callers treating it as "use defaults"
// must substitute DefaultConfig before validating.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: Sets %d must be a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: Ways %d must be positive", c.Ways)
	}
	if c.HitLatency < 0 || c.MissLatency < 0 || c.RemoteLatency < 0 {
		return fmt.Errorf("cache: negative latency (hit=%d miss=%d remote=%d)",
			c.HitLatency, c.MissLatency, c.RemoteLatency)
	}
	return nil
}

// SetIndex returns the L1 set a line maps to.
func (c Config) SetIndex(line mem.Addr) int {
	return int(line.LineIndex() % uint64(c.Sets))
}

// LinesPerL1 returns the total line capacity of one L1.
func (c Config) LinesPerL1() int { return c.Sets * c.Ways }

type way struct {
	line  mem.Addr
	valid bool
	dirty bool
	lru   uint64 // last-use tick; larger = more recent
}

type l1 struct {
	sets [][]way
	tick uint64
}

func newL1(cfg Config) *l1 {
	c := &l1{sets: make([][]way, cfg.Sets)}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	return c
}

// lookup returns the way holding line, or nil.
func (c *l1) lookup(set int, line mem.Addr) *way {
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if w.valid && w.line == line {
			return w
		}
	}
	return nil
}

// insert places line into set, evicting LRU if needed. Returns the
// evicted line and whether an eviction happened.
func (c *l1) insert(set int, line mem.Addr, dirty bool) (mem.Addr, bool) {
	c.tick++
	victim := &c.sets[set][0]
	for i := range c.sets[set] {
		w := &c.sets[set][i]
		if !w.valid {
			victim = w
			break
		}
		if w.lru < victim.lru {
			victim = w
		}
	}
	evicted, had := victim.line, victim.valid
	*victim = way{line: line, valid: true, dirty: dirty, lru: c.tick}
	return evicted, had
}

func (c *l1) touch(w *way) {
	c.tick++
	w.lru = c.tick
}

func (c *l1) invalidate(set int, line mem.Addr) {
	if w := c.lookup(set, line); w != nil {
		w.valid = false
	}
}

// dirEntry tracks which cores hold a line. owner >= 0 means that core
// has the line Modified; otherwise sharers holds the Shared copies.
type dirEntry struct {
	sharers uint64 // bitmask of cores with a shared copy
	owner   int    // core with modified copy, or -1
}

// AccessResult reports the outcome of one cache access.
type AccessResult struct {
	Latency     int
	Hit         bool
	Invalidated []int // cores whose copy was invalidated by this access
	Evicted     bool  // this core's L1 evicted a line to make room
	EvictedLine mem.Addr
}

// Hierarchy is the full multi-core cache system.
type Hierarchy struct {
	cfg   Config
	cores []*l1
	dir   map[mem.Addr]*dirEntry

	// Stats, cumulative across all cores.
	Hits, Misses, Invalidations, Evictions uint64
}

// New returns a hierarchy with n private L1 caches.
func New(n int, cfg Config) *Hierarchy {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("cache: core count %d out of range [1,64]", n))
	}
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	h := &Hierarchy{cfg: cfg, dir: make(map[mem.Addr]*dirEntry)}
	for i := 0; i < n; i++ {
		h.cores = append(h.cores, newL1(cfg))
	}
	return h
}

// Config returns the geometry the hierarchy was built with.
func (h *Hierarchy) Config() Config { return h.cfg }

func (h *Hierarchy) entry(line mem.Addr) *dirEntry {
	e := h.dir[line]
	if e == nil {
		e = &dirEntry{owner: -1}
		h.dir[line] = e
	}
	return e
}

// Access performs a load (write=false) or store (write=true) by core to
// the cache line containing a, updating coherence state, and returns
// the latency and any remote invalidations. The returned Invalidated
// slice is the set of *other* cores that lost their copy — the machine
// layer uses it to charge sharing costs; the HTM engine performs its
// own conflict detection on read/write sets.
func (h *Hierarchy) Access(core int, a mem.Addr, write bool) AccessResult {
	line := a.Line()
	set := h.cfg.SetIndex(line)
	c := h.cores[core]
	e := h.entry(line)
	w := c.lookup(set, line)

	var res AccessResult
	if !write {
		if w != nil {
			c.touch(w)
			h.Hits++
			return AccessResult{Latency: h.cfg.HitLatency, Hit: true}
		}
		// Read miss: downgrade a remote M copy if present.
		h.Misses++
		res.Latency = h.cfg.MissLatency
		if e.owner >= 0 && e.owner != core {
			res.Latency = h.cfg.RemoteLatency
			e.sharers |= 1 << uint(e.owner)
			e.owner = -1
		}
		e.sharers |= 1 << uint(core)
		res.EvictedLine, res.Evicted = c.insert(set, line, false)
		if res.Evicted {
			h.evictFrom(core, res.EvictedLine)
		}
		return res
	}

	// Write.
	if w != nil && e.owner == core {
		c.touch(w)
		w.dirty = true
		h.Hits++
		return AccessResult{Latency: h.cfg.HitLatency, Hit: true}
	}
	h.Misses++
	res.Latency = h.cfg.MissLatency
	// Invalidate every other copy.
	if e.owner >= 0 && e.owner != core {
		res.Latency = h.cfg.RemoteLatency
		h.invalidateAt(e.owner, line)
		res.Invalidated = append(res.Invalidated, e.owner)
	}
	for other := 0; other < len(h.cores); other++ {
		if other == core || e.sharers&(1<<uint(other)) == 0 {
			continue
		}
		res.Latency = h.cfg.RemoteLatency
		h.invalidateAt(other, line)
		res.Invalidated = append(res.Invalidated, other)
	}
	e.sharers = 0
	e.owner = core
	if w != nil {
		// Upgrade in place: no fill needed.
		c.touch(w)
		w.dirty = true
	} else {
		res.EvictedLine, res.Evicted = c.insert(set, line, true)
		if res.Evicted {
			h.evictFrom(core, res.EvictedLine)
		}
	}
	return res
}

func (h *Hierarchy) invalidateAt(core int, line mem.Addr) {
	h.Invalidations++
	h.cores[core].invalidate(h.cfg.SetIndex(line), line)
}

// evictFrom updates directory state after core silently evicted line.
func (h *Hierarchy) evictFrom(core int, line mem.Addr) {
	h.Evictions++
	e := h.dir[line]
	if e == nil {
		return
	}
	if e.owner == core {
		e.owner = -1
	}
	e.sharers &^= 1 << uint(core)
	if e.owner < 0 && e.sharers == 0 {
		delete(h.dir, line)
	}
}

// Holds reports whether core currently caches the line containing a.
// Used by tests and by the machine's lock-spin fast path.
func (h *Hierarchy) Holds(core int, a mem.Addr) bool {
	line := a.Line()
	return h.cores[core].lookup(h.cfg.SetIndex(line), line) != nil
}
