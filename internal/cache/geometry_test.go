package cache

import "testing"

func TestGeometryAccessors(t *testing.T) {
	cfg := Config{Sets: 8, Ways: 4}
	if n := cfg.LinesPerL1(); n != 32 {
		t.Fatalf("LinesPerL1 = %d, want 32", n)
	}
	h := New(2, cfg)
	if got := h.Config(); got != cfg {
		t.Fatalf("Config() = %+v, want %+v", got, cfg)
	}
}
