// Package validate is the differential validation harness for
// generated transactional programs (internal/progen): it runs each
// program through the full txsampler pipeline and judges the profiler
// against the machine's hidden ground truth, mirroring the paper's
// §7.2 accuracy methodology (E10/E12) — in-transaction context
// recovery rate, the abort-cause confusion matrix, and true/false
// sharing site precision/recall — and then checks a library of
// metamorphic invariants (period stability, thread-permutation
// isomorphism, quantum byte-identity, bounded fault drift).
//
// cmd/txvalidate drives campaigns of N programs and emits the
// machine-readable report; CI fails when aggregate metrics drop below
// the checked-in baseline (VALIDATE_baseline.json).
package validate

import (
	"fmt"
	"sort"

	"txsampler"
	"txsampler/internal/core"
	"txsampler/internal/htm"
	"txsampler/internal/machine"
	"txsampler/internal/pmem"
	"txsampler/internal/pmu"
	"txsampler/internal/progen"
	"txsampler/internal/rtm"
)

// Periods returns the dense sampling periods validation runs use.
// Generated programs are small (thousands of transactions), so the
// §7.2 metrics need far denser sampling than DefaultPeriods for the
// precision/recall fractions to measure profiler bias rather than
// sampling noise — the same reasoning as the chaos suite's periods.
func Periods() pmu.Periods {
	var p pmu.Periods
	p[pmu.Cycles] = 400
	p[pmu.TxAbort] = 2
	p[pmu.TxCommit] = 8
	p[pmu.Loads] = 12
	p[pmu.Stores] = 12
	return p
}

// CauseCell is one row of the abort-cause confusion comparison: the
// cause's share of all application aborts per the machine's exact
// instrumentation (truth) vs. per the profiler's period-scaled sample
// counts (sampled).
type CauseCell struct {
	Cause   string  `json:"cause"`
	Truth   float64 `json:"truth_share"`
	Sampled float64 `json:"sampled_share"`
}

// Sharing is a precision/recall pair for one sharing class. Reported
// sites are the source-site labels of merged-CCT contexts the profiler
// classified into the class; expected sites come from the generated
// program's construction. Recall is measured over expected sites that
// received at least two memory samples — detection pairs sampled
// accesses, so an under-sampled site is a sampling miss, not a
// classification miss (§7.2 judges the classifier).
type Sharing struct {
	ReportedSites []string `json:"reported_sites"`
	ExpectedSites []string `json:"expected_sites"`
	// SampledSites is the subset of expected sites with >= 2 memory
	// samples (the recall denominator).
	SampledSites []string `json:"sampled_sites"`
	Precision    float64  `json:"precision"`
	Recall       float64  `json:"recall"`
}

// ProgramResult is the full validation outcome for one generated
// program.
type ProgramResult struct {
	Name    string `json:"name"`
	Seed    int64  `json:"seed"`
	Threads int    `json:"threads"`
	Regions int    `json:"regions"`

	// Context recovery (§7.2 E10): of the samples that truly executed
	// inside a transaction, the fraction whose reconstructed calling
	// context matches the hidden true frame path — for TxSampler's
	// LBR-based reconstruction and for the naive rolled-back stack a
	// conventional profiler reports.
	InTxSamples     uint64  `json:"in_tx_samples"`
	ContextCorrect  uint64  `json:"context_correct"`
	NaiveCorrect    uint64  `json:"naive_correct"`
	PathDetected    uint64  `json:"path_detected"`
	ContextRecovery float64 `json:"context_recovery"`
	NaiveRecovery   float64 `json:"naive_recovery"`
	PathDetection   float64 `json:"path_detection"`

	// Abort-cause confusion (§7.2 E12): per-cause truth vs. sampled
	// shares over non-ambient causes, and the largest absolute share
	// difference.
	CauseMatrix []CauseCell `json:"cause_matrix"`
	CauseDrift  float64     `json:"cause_drift"`

	TrueSharing  Sharing `json:"true_sharing"`
	FalseSharing Sharing `json:"false_sharing"`

	// Execution-mode classification (hybrid-TM four-way split): of the
	// cycles samples taken inside critical sections, how many the
	// profiler's state-word + LBR-abort-bit classification puts into
	// the same htm/stm/lock/waiting bucket as the machine's exact
	// ground truth, plus the non-zero confusion-matrix cells.
	ModeSamples  uint64     `json:"mode_samples"`
	ModeCorrect  uint64     `json:"mode_correct"`
	ModeAccuracy float64    `json:"mode_accuracy"`
	ModeMatrix   []ModeCell `json:"mode_matrix,omitempty"`

	// Persistence-stall classification (pmem tier): over the cycles
	// samples whose ground truth OR profiler classification is the
	// durable-commit persist epilogue, the fraction on the diagonal.
	// Zero/omitted for programs without durable regions.
	PersistSamples  uint64  `json:"persist_samples,omitempty"`
	PersistCorrect  uint64  `json:"persist_correct,omitempty"`
	PersistAccuracy float64 `json:"persist_accuracy,omitempty"`

	// Elision-verdict scoring (elision tier): of the program's elidable
	// lock sites that received samples, how many the profiler's per-site
	// "would elision win?" verdict matches the by-construction ground
	// truth, plus the verdict confusion matrix. Zero/omitted for
	// programs without elidable locks.
	ElideSites    int         `json:"elide_sites,omitempty"`
	ElideCorrect  int         `json:"elide_correct,omitempty"`
	ElideAccuracy float64     `json:"elide_accuracy,omitempty"`
	ElideMatrix   []ElideCell `json:"elide_matrix,omitempty"`

	// Violations lists every failed metamorphic invariant (empty on a
	// healthy program).
	Violations []string `json:"violations"`
}

// ModeCell is one non-zero cell of a program's execution-mode
// confusion matrix.
type ModeCell struct {
	Truth string `json:"truth"`
	Got   string `json:"got"`
	Count uint64 `json:"count"`
}

// ElideCell is one non-zero cell of a program's elision-verdict
// confusion matrix: the by-construction truth vs. the profiler's
// per-site verdict.
type ElideCell struct {
	Truth string `json:"truth"`
	Got   string `json:"got"`
	Count int    `json:"count"`
}

// Options tunes a validation run; the zero value is the standard
// harness configuration.
type Options struct {
	// Threads overrides the program's generated thread count.
	Threads int
	// Quantum overrides the base run's scheduler quantum (the
	// byte-identity invariant always compares against quantum 1).
	Quantum int
	// Hybrid selects the slow-path execution mode of the generated
	// programs' global lock (zero = lock-only).
	Hybrid machine.HybridPolicy
	// StmBias switches generation to progen's slow-path-forcing
	// template mix, so software-transaction samples dominate the mode
	// classification population.
	StmBias bool
	// PmemBias switches generation to progen's durable template mix
	// and enables the machine's persistent-memory tier, so the
	// persistence-stall bucket carries real sample mass for the
	// classification-accuracy gate.
	PmemBias bool
	// ElisionBias switches generation to progen's elidable-lock
	// template mix and turns elision on, so the per-site "would elision
	// win?" verdict can be scored against the by-construction truth.
	ElisionBias bool
}

// Program validates one generated program: the base profiled run with
// the accuracy probe, the §7.2 metric extraction, and the metamorphic
// invariant suite (three further machine runs).
func Program(p *progen.Program, o Options) (*ProgramResult, error) {
	w := p.Workload()
	base := txsampler.Options{
		Threads: o.Threads, Seed: p.Seed, Profile: true,
		Periods: Periods(), Quantum: o.Quantum, Hybrid: o.Hybrid,
	}
	if o.PmemBias {
		base.Pmem = pmem.Config{Enabled: true}
	}
	if o.ElisionBias {
		base.Elision = machine.ElisionOn
	}
	res, acc, err := txsampler.RunWorkloadWithAccuracy(w, base)
	if err != nil {
		return nil, fmt.Errorf("validate %s: %w", p.Name, err)
	}
	pr := &ProgramResult{
		Name:    p.Name,
		Seed:    p.Seed,
		Threads: res.Threads,
		Regions: len(p.Regions),

		InTxSamples:     acc.InTx,
		ContextCorrect:  acc.TxSamplerCorrect,
		NaiveCorrect:    acc.NaiveCorrect,
		PathDetected:    acc.PathDetected,
		ContextRecovery: frac(acc.TxSamplerCorrect, acc.InTx),
		NaiveRecovery:   frac(acc.NaiveCorrect, acc.InTx),
		PathDetection:   frac(acc.PathDetected, acc.InTx),
	}
	pr.CauseMatrix, pr.CauseDrift = causeMatrix(res)
	pr.TrueSharing = sharingScore(res, p.TrueSites, true)
	pr.FalseSharing = sharingScore(res, p.FalseSites, false)
	pr.ModeSamples = acc.Modes.Total()
	pr.ModeCorrect = acc.Modes.Correct()
	pr.ModeAccuracy = round(acc.Modes.Accuracy())
	pr.ModeMatrix = modeCells(&acc.Modes)
	pr.PersistSamples, pr.PersistCorrect, pr.PersistAccuracy = persistScore(&acc.Modes)
	pr.ElideSites, pr.ElideCorrect, pr.ElideMatrix = elisionScore(p, res)
	pr.ElideAccuracy = ratioOr1(pr.ElideCorrect, pr.ElideSites)
	pr.Violations, err = checkInvariants(p, base, res, o)
	if err != nil {
		return nil, fmt.Errorf("validate %s: %w", p.Name, err)
	}
	return pr, nil
}

// minCauseSamples gates the confusion-matrix drift metric: a share
// estimate from fewer sampled aborts is statistical noise, so the
// matrix is still reported but its drift does not count against the
// baseline.
const minCauseSamples = 25

// causeMatrix compares the machine's exact abort-cause distribution
// with the profiler's period-scaled estimate, over non-ambient
// (application) causes.
func causeMatrix(res *txsampler.Result) ([]CauseCell, float64) {
	period := res.Report.Periods[pmu.TxAbort]
	if period == 0 {
		period = 1
	}
	var truthTotal, sampTotal float64
	var samples uint64
	sampled := make(map[htm.Cause]float64)
	for c := htm.Cause(0); c < htm.NumCauses; c++ {
		if c.Ambient() {
			continue
		}
		truthTotal += float64(res.GroundTruth.Aborts[c])
		samples += res.Report.Totals.AbortCount[c]
		sampled[c] = float64(res.Report.Totals.AbortCount[c]) * float64(period)
		sampTotal += sampled[c]
	}
	var cells []CauseCell
	var drift float64
	for c := htm.Cause(0); c < htm.NumCauses; c++ {
		if c.Ambient() {
			continue
		}
		truth := float64(res.GroundTruth.Aborts[c])
		if truth == 0 && sampled[c] == 0 {
			continue
		}
		cell := CauseCell{Cause: c.String()}
		if truthTotal > 0 {
			cell.Truth = round(truth / truthTotal)
		}
		if sampTotal > 0 {
			cell.Sampled = round(sampled[c] / sampTotal)
		}
		if d := abs(cell.Truth - cell.Sampled); d > drift {
			drift = d
		}
		cells = append(cells, cell)
	}
	if samples < minCauseSamples {
		drift = 0
	}
	return cells, round(drift)
}

// sharingScore extracts the source sites the profiler classified as
// true- (or false-) sharing from the merged CCT and scores them
// against the program's by-construction expectation. Only contexts
// whose leaf frame carries a source-site annotation participate:
// runtime-internal contention (the fallback lock word, spinning in
// tm_begin) is unlabeled and is not the program's data.
func sharingScore(res *txsampler.Result, expected []string, wantTrue bool) Sharing {
	reported := make(map[string]bool)
	sampledAt := make(map[string]uint64)
	res.Report.Merged.Walk(func(n *core.Node, _ int) {
		frames := n.Frames()
		if len(frames) == 0 {
			return
		}
		site := frames[len(frames)-1].Site
		if site == "" {
			return
		}
		sampledAt[site] += n.Data.MemSamples
		count := n.Data.TrueSharing
		if !wantTrue {
			count = n.Data.FalseSharing
		}
		if count > 0 {
			reported[site] = true
		}
	})
	s := Sharing{
		ReportedSites: sortedKeys(reported),
		ExpectedSites: append([]string(nil), expected...),
	}
	sort.Strings(s.ExpectedSites)
	var tp, fn int
	for _, site := range s.ExpectedSites {
		// Sharing detection pairs two sampled accesses (§3.3), so a
		// site with fewer than two memory samples cannot be detected
		// by any classifier: a sampling miss, not a profiler miss.
		if sampledAt[site] < 2 {
			continue
		}
		s.SampledSites = append(s.SampledSites, site)
		if reported[site] {
			tp++
		} else {
			fn++
		}
	}
	if len(s.ReportedSites) > 0 {
		s.Precision = round(float64(tp) / float64(len(s.ReportedSites)))
	} else {
		s.Precision = 1 // nothing reported, nothing wrong
	}
	if tp+fn > 0 {
		s.Recall = round(float64(tp) / float64(tp+fn))
	} else {
		s.Recall = 1 // nothing sampled at expected sites: vacuous
	}
	return s
}

// persistScore extracts the persistence-stall cell of the mode
// confusion matrix: the population is every sample whose ground truth
// or classification is the persist epilogue (union, so both missed
// stalls and phantom stalls count against the accuracy), correct is
// the diagonal. Returns zeros when the population is empty.
func persistScore(m *core.ModeMatrix) (samples, correct uint64, accuracy float64) {
	f := rtm.ModeFlush
	diag := m.Counts[f][f]
	union := diag
	for g := rtm.Mode(0); g < rtm.NumModes; g++ {
		if g != f {
			union += m.Counts[f][g] + m.Counts[g][f]
		}
	}
	if union == 0 {
		return 0, 0, 0
	}
	return union, diag, round(float64(diag) / float64(union))
}

// elisionScore grades the profiler's per-lock-site elision verdicts
// against the program's by-construction expectation. Sites whose
// verdict is "no-data" (no executed sample landed in the site's
// subtree) are sampling misses, not classification misses, and are
// excluded — everything else, including a "plain-lock" verdict on a
// site that truly ran elided, counts against the accuracy.
func elisionScore(p *progen.Program, res *txsampler.Result) (sites, correct int, cells []ElideCell) {
	verdicts := make(map[string]string)
	for _, s := range res.Report.ElisionSites() {
		verdicts[s.Site] = s.Verdict()
	}
	counts := make(map[[2]string]int)
	for _, r := range p.Regions {
		shouldWin, ok := r.Kind.ElideVerdict()
		if !ok {
			continue
		}
		got, found := verdicts[r.Site]
		if !found || got == "no-data" {
			continue
		}
		truth := "lose"
		if shouldWin {
			truth = "win"
		}
		sites++
		if got == truth {
			correct++
		}
		counts[[2]string{truth, got}]++
	}
	keys := make([][2]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		cells = append(cells, ElideCell{Truth: k[0], Got: k[1], Count: counts[k]})
	}
	return sites, correct, cells
}

// modeCells flattens the non-zero confusion cells in fixed
// (truth, got) order, so JSON reports stay deterministic.
func modeCells(m *core.ModeMatrix) []ModeCell {
	var cells []ModeCell
	for truth := rtm.Mode(0); truth < rtm.NumModes; truth++ {
		for got := rtm.Mode(0); got < rtm.NumModes; got++ {
			if n := m.Counts[truth][got]; n > 0 {
				cells = append(cells, ModeCell{Truth: truth.String(), Got: got.String(), Count: n})
			}
		}
	}
	return cells
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func frac(num, den uint64) float64 {
	if den == 0 {
		return 1
	}
	return round(float64(num) / float64(den))
}

// round keeps reported fractions at a fixed precision so JSON output
// is stable and baselines are not sensitive to float formatting.
func round(f float64) float64 {
	const scale = 1e6
	if f < 0 {
		return float64(int64(f*scale-0.5)) / scale
	}
	return float64(int64(f*scale+0.5)) / scale
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
