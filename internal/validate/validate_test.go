package validate

import (
	"bytes"
	"strings"
	"testing"

	"txsampler/internal/progen"
)

// TestProgramHealthy: a fault-free generated program must validate
// with full context recovery and no invariant violations — the
// acceptance property of the harness, at unit scale.
func TestProgramHealthy(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p := progen.Generate(progen.Config{Seed: seed})
		pr, err := Program(p, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if pr.InTxSamples == 0 {
			t.Fatalf("seed %d: no in-tx samples", seed)
		}
		if pr.ContextRecovery < 0.99 {
			t.Errorf("seed %d: context recovery %.4f < 0.99", seed, pr.ContextRecovery)
		}
		if pr.PathDetection < 0.99 {
			t.Errorf("seed %d: path detection %.4f < 0.99", seed, pr.PathDetection)
		}
		if len(pr.Violations) != 0 {
			t.Errorf("seed %d: invariant violations: %v", seed, pr.Violations)
		}
	}
}

// TestCampaignDeterministic: equal campaign parameters must produce
// byte-identical JSON reports.
func TestCampaignDeterministic(t *testing.T) {
	run := func() []byte {
		r, err := Campaign(3, 11, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same campaign produced different reports")
	}
}

// TestCampaignAggregates: the aggregate must micro-average the
// per-program counts, not average the per-program ratios.
func TestCampaignAggregates(t *testing.T) {
	progs := []*ProgramResult{
		{InTxSamples: 100, ContextCorrect: 100, NaiveCorrect: 50, PathDetected: 100,
			TrueSharing: Sharing{ReportedSites: []string{"a"}, SampledSites: []string{"a"}}},
		{InTxSamples: 300, ContextCorrect: 240, NaiveCorrect: 0, PathDetected: 300,
			CauseDrift:  0.07,
			TrueSharing: Sharing{ReportedSites: []string{"b", "x"}, SampledSites: []string{"b", "c"}},
			Violations:  []string{"boom"}},
	}
	a := aggregate(progs)
	if a.Programs != 2 || a.InTxSamples != 400 {
		t.Fatalf("population wrong: %+v", a)
	}
	if a.ContextRecovery != 0.85 { // 340/400, not (1.0+0.8)/2
		t.Errorf("context recovery %.4f, want 0.85", a.ContextRecovery)
	}
	if a.NaiveRecovery != 0.125 {
		t.Errorf("naive recovery %.4f, want 0.125", a.NaiveRecovery)
	}
	if a.MaxCauseDrift != 0.07 {
		t.Errorf("max cause drift %.4f, want 0.07", a.MaxCauseDrift)
	}
	// true sharing: reported {a}+{b,x}=3, tp = a,b = 2, sampled {a}+{b,c}=3
	if a.TrueSharingPrecision != round(2.0/3) {
		t.Errorf("precision %.4f, want %.4f", a.TrueSharingPrecision, round(2.0/3))
	}
	if a.TrueSharingRecall != round(2.0/3) {
		t.Errorf("recall %.4f, want %.4f", a.TrueSharingRecall, round(2.0/3))
	}
	if a.FalseSharingPrecision != 1 || a.FalseSharingRecall != 1 {
		t.Errorf("false sharing not vacuous: %+v", a)
	}
	if a.InvariantViolations != 1 {
		t.Errorf("violations %d, want 1", a.InvariantViolations)
	}
}

// TestBaselineCheck: every gated metric must fail independently and
// name itself in the error.
func TestBaselineCheck(t *testing.T) {
	b := Baseline{
		MinContextRecovery:       0.99,
		MinTrueSharingPrecision:  0.9,
		MinTrueSharingRecall:     0.9,
		MinFalseSharingPrecision: 0.9,
		MinFalseSharingRecall:    0.9,
		MaxCauseDrift:            0.15,
		MaxInvariantViolations:   0,
	}
	good := Aggregate{
		ContextRecovery: 1, TrueSharingPrecision: 1, TrueSharingRecall: 1,
		FalseSharingPrecision: 1, FalseSharingRecall: 1, MaxCauseDrift: 0.1,
	}
	if err := b.Check(good); err != nil {
		t.Fatalf("healthy aggregate rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Aggregate)
	}{
		{"context_recovery", func(a *Aggregate) { a.ContextRecovery = 0.98 }},
		{"true_sharing_precision", func(a *Aggregate) { a.TrueSharingPrecision = 0.5 }},
		{"true_sharing_recall", func(a *Aggregate) { a.TrueSharingRecall = 0.5 }},
		{"false_sharing_precision", func(a *Aggregate) { a.FalseSharingPrecision = 0.5 }},
		{"false_sharing_recall", func(a *Aggregate) { a.FalseSharingRecall = 0.5 }},
		{"max_cause_drift", func(a *Aggregate) { a.MaxCauseDrift = 0.2 }},
		{"invariant", func(a *Aggregate) { a.InvariantViolations = 1 }},
	}
	for _, c := range cases {
		bad := good
		c.mutate(&bad)
		err := b.Check(bad)
		if err == nil {
			t.Errorf("%s regression accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.name) {
			t.Errorf("%s regression error does not name the metric: %v", c.name, err)
		}
	}
}

// TestLoadBaseline round-trips the checked-in baseline file.
func TestLoadBaseline(t *testing.T) {
	b, err := LoadBaseline("../../VALIDATE_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if b.MinContextRecovery < 0.9 {
		t.Fatalf("checked-in baseline implausibly low: %+v", b)
	}
	if _, err := LoadBaseline("does-not-exist.json"); err == nil {
		t.Fatal("missing baseline file accepted")
	}
}

// TestDriftBound: the statistical widening must shrink toward the
// base bound as populations grow.
func TestDriftBound(t *testing.T) {
	if small, big := driftBound(40, 40), driftBound(4000, 4000); small <= big {
		t.Fatalf("bound not monotonic: n=40 gives %.3f, n=4000 gives %.3f", small, big)
	}
	if b := driftBound(1e12, 1e12); b > shareDrift+0.001 {
		t.Fatalf("bound does not converge to shareDrift: %.4f", b)
	}
}

// TestFrameRegion covers the generated-frame naming contract the
// harness depends on.
func TestFrameRegion(t *testing.T) {
	cases := []struct {
		fn string
		id int
		ok bool
	}{
		{"g3_1", 3, true},
		{"f12", 12, true},
		{"h0_2", 0, true},
		{"thread_root", 0, false},
		{"tm_begin", 0, false},
		{"begin_in_tx", 0, false},
		{"g", 0, false},
		{"fX", 0, false},
	}
	for _, c := range cases {
		id, ok := progen.FrameRegion(c.fn)
		if ok != c.ok || (ok && id != c.id) {
			t.Errorf("FrameRegion(%q) = (%d, %v), want (%d, %v)", c.fn, id, ok, c.id, c.ok)
		}
	}
}
