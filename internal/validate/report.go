package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"txsampler/internal/machine"
	"txsampler/internal/progen"
)

// Aggregate is the campaign-level §7.2 scorecard: micro-averaged over
// every program's samples and sites, so large programs weigh more —
// the same weighting the paper's aggregate accuracy numbers use.
type Aggregate struct {
	Programs int `json:"programs"`
	// InTxSamples is the total in-transaction sample population the
	// recovery rates are measured over.
	InTxSamples     uint64  `json:"in_tx_samples"`
	ContextRecovery float64 `json:"context_recovery"`
	NaiveRecovery   float64 `json:"naive_recovery"`
	PathDetection   float64 `json:"path_detection"`
	// MaxCauseDrift is the worst per-program confusion-matrix drift.
	MaxCauseDrift float64 `json:"max_cause_drift"`

	TrueSharingPrecision  float64 `json:"true_sharing_precision"`
	TrueSharingRecall     float64 `json:"true_sharing_recall"`
	FalseSharingPrecision float64 `json:"false_sharing_precision"`
	FalseSharingRecall    float64 `json:"false_sharing_recall"`

	// ModeSamples and ModeAccuracy micro-average the execution-mode
	// confusion matrices: of all in-CS cycles samples across programs,
	// the fraction classified into the correct htm/stm/lock/waiting
	// bucket.
	ModeSamples  uint64  `json:"mode_samples"`
	ModeAccuracy float64 `json:"mode_accuracy"`

	// PersistSamples and PmemAccuracy micro-average the
	// persistence-stall classification: over every sample whose truth
	// or classification is the durable-commit persist epilogue, the
	// fraction on the diagonal. Vacuously 1 for campaigns without
	// durable regions.
	PersistSamples uint64  `json:"persist_samples,omitempty"`
	PmemAccuracy   float64 `json:"pmem_accuracy"`

	// ElideSites and ElisionAccuracy micro-average the elision-verdict
	// scoring: over every sampled elidable lock site across programs,
	// the fraction whose "would elision win?" verdict matches the
	// by-construction truth. Vacuously 1 for campaigns without
	// elidable locks.
	ElideSites      int     `json:"elide_sites,omitempty"`
	ElisionAccuracy float64 `json:"elision_accuracy"`

	// InvariantViolations counts failed metamorphic invariants across
	// all programs (zero on a healthy profiler).
	InvariantViolations int `json:"invariant_violations"`
}

// Report is the machine-readable output of one validation campaign.
type Report struct {
	// N and Seed reproduce the campaign: program i uses generation
	// seed Seed+i.
	N           int    `json:"n"`
	Seed        int64  `json:"seed"`
	Threads     int    `json:"threads,omitempty"`
	Hybrid      string `json:"hybrid_policy,omitempty"`
	StmBias     bool   `json:"stm_bias,omitempty"`
	PmemBias    bool   `json:"pmem_bias,omitempty"`
	ElisionBias bool   `json:"elision_bias,omitempty"`

	Aggregate Aggregate        `json:"aggregate"`
	Programs  []*ProgramResult `json:"programs"`
}

// Campaign generates and validates n programs with generation seeds
// seed..seed+n-1. It is deterministic: equal (n, seed, o) yield
// byte-identical reports.
func Campaign(n int, seed int64, o Options) (*Report, error) {
	r := &Report{N: n, Seed: seed, Threads: o.Threads, StmBias: o.StmBias, PmemBias: o.PmemBias, ElisionBias: o.ElisionBias}
	if o.Hybrid != machine.HybridLockOnly {
		r.Hybrid = o.Hybrid.String()
	}
	for i := 0; i < n; i++ {
		p := progen.Generate(progen.Config{Seed: seed + int64(i), Threads: o.Threads, StmBias: o.StmBias, PmemBias: o.PmemBias, ElisionBias: o.ElisionBias})
		pr, err := Program(p, o)
		if err != nil {
			return nil, err
		}
		r.Programs = append(r.Programs, pr)
	}
	r.Aggregate = aggregate(r.Programs)
	return r, nil
}

func aggregate(progs []*ProgramResult) Aggregate {
	a := Aggregate{Programs: len(progs)}
	var txCorrect, naiveCorrect, detected, inTx uint64
	var modeTotal, modeCorrect uint64
	var persistTotal, persistCorrect uint64
	var elideTotal, elideCorrect int
	var tTP, tRep, tSam, fTP, fRep, fSam int
	for _, p := range progs {
		inTx += p.InTxSamples
		txCorrect += p.ContextCorrect
		naiveCorrect += p.NaiveCorrect
		detected += p.PathDetected
		modeTotal += p.ModeSamples
		modeCorrect += p.ModeCorrect
		persistTotal += p.PersistSamples
		persistCorrect += p.PersistCorrect
		elideTotal += p.ElideSites
		elideCorrect += p.ElideCorrect
		if p.CauseDrift > a.MaxCauseDrift {
			a.MaxCauseDrift = p.CauseDrift
		}
		tp, rep, sam := sharingCounts(p.TrueSharing)
		tTP, tRep, tSam = tTP+tp, tRep+rep, tSam+sam
		tp, rep, sam = sharingCounts(p.FalseSharing)
		fTP, fRep, fSam = fTP+tp, fRep+rep, fSam+sam
		a.InvariantViolations += len(p.Violations)
	}
	a.InTxSamples = inTx
	a.ContextRecovery = frac(txCorrect, inTx)
	a.NaiveRecovery = frac(naiveCorrect, inTx)
	a.PathDetection = frac(detected, inTx)
	a.TrueSharingPrecision = ratioOr1(tTP, tRep)
	a.TrueSharingRecall = ratioOr1(tTP, tSam)
	a.FalseSharingPrecision = ratioOr1(fTP, fRep)
	a.FalseSharingRecall = ratioOr1(fTP, fSam)
	a.ModeSamples = modeTotal
	a.ModeAccuracy = frac(modeCorrect, modeTotal)
	a.PersistSamples = persistTotal
	a.PmemAccuracy = frac(persistCorrect, persistTotal)
	a.ElideSites = elideTotal
	a.ElisionAccuracy = ratioOr1(elideCorrect, elideTotal)
	return a
}

// sharingCounts recovers (true positives, reported, sampled-expected)
// from one program's Sharing so the campaign can micro-average.
func sharingCounts(s Sharing) (tp, reported, sampled int) {
	in := make(map[string]bool, len(s.ReportedSites))
	for _, r := range s.ReportedSites {
		in[r] = true
	}
	for _, e := range s.SampledSites {
		if in[e] {
			tp++
		}
	}
	return tp, len(s.ReportedSites), len(s.SampledSites)
}

func ratioOr1(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return round(float64(num) / float64(den))
}

// WriteJSON emits the report as deterministic, indented JSON (struct
// field order; no maps).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Baseline holds the minimum acceptable aggregate metrics (and
// maximum acceptable drift/violations) for CI accuracy-regression
// gating; see VALIDATE_baseline.json.
type Baseline struct {
	MinContextRecovery       float64 `json:"min_context_recovery"`
	MinTrueSharingPrecision  float64 `json:"min_true_sharing_precision"`
	MinTrueSharingRecall     float64 `json:"min_true_sharing_recall"`
	MinFalseSharingPrecision float64 `json:"min_false_sharing_precision"`
	MinFalseSharingRecall    float64 `json:"min_false_sharing_recall"`
	MaxCauseDrift            float64 `json:"max_cause_drift"`
	MaxInvariantViolations   int     `json:"max_invariant_violations"`
	// MinModeAccuracy floors the four-way execution-mode
	// classification accuracy (htm/stm/lock/waiting buckets vs the
	// machine's ground truth).
	MinModeAccuracy float64 `json:"min_mode_accuracy"`
	// MinPmemAccuracy floors the persistence-stall classification
	// accuracy on pmem-bias campaigns (vacuously satisfied by
	// campaigns without durable regions).
	MinPmemAccuracy float64 `json:"min_pmem_accuracy"`
	// MinElisionAccuracy floors the per-site elision-verdict accuracy
	// on elision-bias campaigns (vacuously satisfied by campaigns
	// without elidable locks).
	MinElisionAccuracy float64 `json:"min_elision_accuracy"`
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("baseline %s: %w", path, err)
	}
	return b, nil
}

// Check compares a campaign's aggregate against the baseline and
// returns one error per regressed metric, joined.
func (b Baseline) Check(a Aggregate) error {
	var errs []string
	low := func(name string, got, min float64) {
		if got < min {
			errs = append(errs, fmt.Sprintf("%s %.4f below baseline %.4f", name, got, min))
		}
	}
	low("context_recovery", a.ContextRecovery, b.MinContextRecovery)
	low("true_sharing_precision", a.TrueSharingPrecision, b.MinTrueSharingPrecision)
	low("true_sharing_recall", a.TrueSharingRecall, b.MinTrueSharingRecall)
	low("false_sharing_precision", a.FalseSharingPrecision, b.MinFalseSharingPrecision)
	low("false_sharing_recall", a.FalseSharingRecall, b.MinFalseSharingRecall)
	low("mode_accuracy", a.ModeAccuracy, b.MinModeAccuracy)
	low("pmem_accuracy", a.PmemAccuracy, b.MinPmemAccuracy)
	low("elision_accuracy", a.ElisionAccuracy, b.MinElisionAccuracy)
	if a.MaxCauseDrift > b.MaxCauseDrift {
		errs = append(errs, fmt.Sprintf("max_cause_drift %.4f above baseline %.4f", a.MaxCauseDrift, b.MaxCauseDrift))
	}
	if a.InvariantViolations > b.MaxInvariantViolations {
		errs = append(errs, fmt.Sprintf("%d invariant violations (baseline allows %d)",
			a.InvariantViolations, b.MaxInvariantViolations))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("accuracy regression: %s", joinErrs(errs))
}

func joinErrs(errs []string) string {
	out := errs[0]
	for _, e := range errs[1:] {
		out += "; " + e
	}
	return out
}
