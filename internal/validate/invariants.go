package validate

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"txsampler"
	"txsampler/internal/analyzer"
	"txsampler/internal/core"
	"txsampler/internal/faults"
	"txsampler/internal/htm"
	"txsampler/internal/pmu"
	"txsampler/internal/profile"
	"txsampler/internal/progen"
)

// Metamorphic invariant bounds. A generated program has no reference
// output, but related runs of the same program must relate in known
// ways; these constants bound the allowed deviation.
const (
	// topK is how many abort regions the period-stability invariant
	// compares; shareDrift bounds how far any top-k region's share of
	// the total abort weight may move between period variants, before
	// the per-program statistical tolerance is added (see driftBound).
	// Rank-order among near-tied minor regions legitimately flips
	// with the sampling grid, so the invariant is share-based: a
	// bounded share change implies boundedly small reordering.
	topK       = 3
	shareDrift = 0.15
	// minAbortSamples gates the statistical invariants: below this
	// many sampled application aborts even the widened bound would
	// mostly measure sampling noise, and the invariant holds
	// vacuously.
	minAbortSamples = 40
	// faultDriftBound caps how far the time-decomposition shares may
	// move under low-rate fault injection — the PR-1 chaos bound
	// (±10 points).
	faultDriftBound = 0.10
)

// lowFaultPlan is the low-rate injection regime the fault-drift
// invariant compares against the fault-free base run.
func lowFaultPlan() faults.Plan {
	return faults.Plan{SpuriousAbortRate: 0.002, SampleDropRate: 0.01}
}

// periodVariant returns the perturbed sampling periods for the
// period-stability invariant: every period shifted to values coprime
// with the base so sample points interleave completely differently,
// but of comparable density — PMU interrupts abort transactions, so a
// radically sparser grid would change the machine's retry timing
// itself rather than just the observation points.
func periodVariant() pmu.Periods {
	var p pmu.Periods
	p[pmu.Cycles] = 500
	p[pmu.TxAbort] = 3
	p[pmu.TxCommit] = 13
	p[pmu.Loads] = 17
	p[pmu.Stores] = 17
	return p
}

// checkInvariants runs the metamorphic invariant suite against the
// base profiled run. It returns the violations (nil when all hold)
// and performs three further machine runs: a period variant, a
// quantum-1 variant, and a low-fault variant.
func checkInvariants(p *progen.Program, base txsampler.Options, res *txsampler.Result, o Options) ([]string, error) {
	var violations []string
	w := p.Workload

	// Invariant 1 — period stability: changing sampling periods
	// changes which events are sampled, but must not reorder the top-k
	// abort contexts beyond the drift bound (the hot spots are
	// properties of the program, not of the sampling grid). The
	// invariant's premise is that the grid only moves the observation
	// points; slow-path-forcing (stm-bias) programs break it — most
	// sections execute in software, where interrupt handler overhead
	// shifts the STM read windows and so the conflict pattern itself —
	// so the check is skipped for them. Durable (pmem-bias) programs
	// break it the same way: persist epilogues serialize on the
	// canonical durable-commit order, so shifting interrupt timing
	// reshapes the conflict interleaving of the few contended regions
	// rather than just the observation points. The remaining
	// invariants (permutation, quantum identity, fault drift) still
	// apply to both. Elision-bias programs break it too: the lose
	// templates sync-abort every attempt, and shifting interrupt
	// timing moves which ladder rung each retry lands on.
	if !o.StmBias && !o.PmemBias && !o.ElisionBias {
		perOpts := base
		perOpts.Periods = periodVariant()
		per, err := txsampler.RunWorkload(w(), perOpts)
		if err != nil {
			return nil, fmt.Errorf("period variant: %w", err)
		}
		if v := topKDrift(res.Report, per.Report); v != "" {
			violations = append(violations, "period-stability: "+v)
		}
	}

	// Invariant 2 — thread-ID permutation: the analyzer's cross-thread
	// coalescing must be order-independent, so re-merging the same
	// per-thread profiles in reversed order must yield an isomorphic
	// merged profile (identical context->metrics mapping).
	perm := make([]int, res.Threads)
	for i := range perm {
		perm[i] = len(perm) - 1 - i
	}
	permuted := analyzer.Analyze(res.Workload, res.Collector.Reordered(perm))
	if v := fingerprintDiff(res.Report, permuted); v != "" {
		violations = append(violations, "thread-permutation: "+v)
	}

	// Invariant 3 — quantum byte-identity: the scheduler's proven
	// quantum invariance, extended to generated programs. A quantum-1
	// (per-op scheduling) run must serialize to the byte-identical
	// profile database.
	qOpts := base
	qOpts.Quantum = 1
	q, _, err := txsampler.RunWorkloadWithAccuracy(w(), qOpts)
	if err != nil {
		return nil, fmt.Errorf("quantum variant: %w", err)
	}
	baseBytes, err := serialize(res.Report)
	if err != nil {
		return nil, err
	}
	qBytes, err := serialize(q.Report)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(baseBytes, qBytes) {
		violations = append(violations, fmt.Sprintf(
			"quantum-identity: profile bytes differ (%d vs %d bytes)", len(baseBytes), len(qBytes)))
	}

	// Invariant 4 — bounded fault drift: low-rate ambient injection
	// may cost samples but must not move the time-decomposition
	// classification by more than the chaos bound.
	fOpts := base
	fOpts.Faults = lowFaultPlan()
	f, err := txsampler.RunWorkload(w(), fOpts)
	if err != nil {
		return nil, fmt.Errorf("fault variant: %w", err)
	}
	violations = append(violations, faultDrift(res.Report, f.Report)...)
	return violations, nil
}

// topKDrift checks period stability of the hot abort regions: every
// region in either run's top-k (by share of total application abort
// weight) must have a share within shareDrift of its share in the
// other run. Comparison is at region granularity — abort samples land
// at arbitrary depths of a region's call chain, so full context paths
// of one hot region are near-tied prefix entries whose relative rank
// legitimately flips with the sampling grid, while the region's
// aggregate share may not. Vacuously holds when either run sampled
// fewer than minAbortSamples application aborts.
func topKDrift(a, b *analyzer.Report) string {
	na, nb := appAbortSamples(a), appAbortSamples(b)
	if na < minAbortSamples || nb < minAbortSamples {
		return ""
	}
	bound := driftBound(na, nb)
	sa, sb := regionShares(a), regionShares(b)
	for _, region := range append(topShares(sa), topShares(sb)...) {
		if d := abs(sa[region] - sb[region]); d > bound {
			return fmt.Sprintf("abort region %s share moved %.3f across period variants (%.3f vs %.3f, bound %.3f)",
				region, d, sa[region], sb[region], bound)
		}
	}
	return ""
}

// driftBound widens shareDrift by the sampling noise of the two share
// estimates: a share from n samples has standard error sqrt(p(1-p)/n)
// <= 0.5/sqrt(n), and the estimates are independent, so two two-sigma
// terms are added. At n=40 the bound is ~0.31, converging to
// shareDrift as populations grow — large programs are held to the
// tight bound, small ones are not failed on noise.
func driftBound(na, nb uint64) float64 {
	return shareDrift + 1/math.Sqrt(float64(na)) + 1/math.Sqrt(float64(nb))
}

// statistical reports whether an abort cause carries statistical
// hot-spot information for the period-stability invariant. Ambient
// causes are injected noise. Sync aborts are excluded too: a section
// with an unfriendly instruction aborts on every single attempt, so
// its abort events form a deterministic periodic comb, and sampling a
// periodic comb with a periodic counter aliases — the sampled share
// then depends on the grid phase, not on program behavior. (The
// slow-path-forcing stm-bias programs are built entirely from such
// sections.) Conflict and capacity aborts remain genuinely
// timing-dependent and are held to the drift bound.
func statistical(c htm.Cause) bool {
	return !c.Ambient() && c != htm.Sync
}

func appAbortSamples(r *analyzer.Report) uint64 {
	var n uint64
	for c, v := range r.Totals.AbortCount {
		if statistical(htm.Cause(c)) {
			n += v
		}
	}
	return n
}

// regionShares aggregates application abort weight by generated
// region: each context collapses to the region owning its outermost
// generated frame; contexts entirely inside the runtime (lock spin
// under tm_begin) collapse to "runtime". Shares are normalized over
// the total.
func regionShares(r *analyzer.Report) map[string]float64 {
	weights := make(map[string]uint64)
	var total uint64
	r.Merged.Walk(func(n *core.Node, _ int) {
		var w uint64
		for c, v := range n.Data.AbortWeight {
			if statistical(htm.Cause(c)) {
				w += v
			}
		}
		if w == 0 {
			return
		}
		key := "runtime"
		for _, f := range n.Frames() {
			if id, ok := progen.FrameRegion(f.Fn); ok {
				key = fmt.Sprintf("r%d", id)
				break
			}
		}
		weights[key] += w
		total += w
	})
	shares := make(map[string]float64, len(weights))
	for k, w := range weights {
		shares[k] = float64(w) / float64(total)
	}
	return shares
}

// topShares returns the topK region keys by share, ties broken by
// name for determinism.
func topShares(shares map[string]float64) []string {
	keys := make([]string, 0, len(shares))
	for k := range shares {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if shares[keys[i]] != shares[keys[j]] {
			return shares[keys[i]] > shares[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > topK {
		keys = keys[:topK]
	}
	return keys
}

// fingerprintDiff compares two merged profiles as canonical
// context->metrics maps. Child insertion order may legitimately differ
// under permuted merges, so the comparison is structural, not
// rendered-byte.
func fingerprintDiff(a, b *analyzer.Report) string {
	if a.Totals != b.Totals {
		return fmt.Sprintf("totals differ: %+v vs %+v", a.Totals, b.Totals)
	}
	af, bf := fingerprint(a), fingerprint(b)
	if len(af) != len(bf) {
		return fmt.Sprintf("merged trees have %d vs %d contexts", len(af), len(bf))
	}
	for path, m := range af {
		if bm, ok := bf[path]; !ok {
			return fmt.Sprintf("context %q missing from permuted profile", path)
		} else if m != bm {
			return fmt.Sprintf("context %q metrics differ: %+v vs %+v", path, m, bm)
		}
	}
	return ""
}

func fingerprint(r *analyzer.Report) map[string]core.Metrics {
	fp := make(map[string]core.Metrics)
	r.Merged.Walk(func(n *core.Node, _ int) {
		fp[analyzer.HotContext{Frames: n.Frames()}.Path()] = n.Data
	})
	return fp
}

// faultDrift applies the chaos-suite classification bound: r_cs and
// each time-decomposition share must stay within faultDriftBound of
// the fault-free run.
func faultDrift(clean, faulted *analyzer.Report) []string {
	cTx, cStm, cFb, cWait, cOh, cPersist := clean.TimeShares()
	fTx, fStm, fFb, fWait, fOh, fPersist := faulted.TimeShares()
	checks := []struct {
		name        string
		clean, with float64
	}{
		{"r_cs", clean.Rcs(), faulted.Rcs()},
		{"tx-share", cTx, fTx},
		{"stm-share", cStm, fStm},
		{"fallback-share", cFb, fFb},
		{"wait-share", cWait, fWait},
		{"overhead-share", cOh, fOh},
		{"persist-share", cPersist, fPersist},
	}
	var violations []string
	for _, c := range checks {
		if d := math.Abs(c.clean - c.with); d > faultDriftBound {
			violations = append(violations, fmt.Sprintf(
				"fault-drift: %s moved %.3f under low-fault injection (%.3f vs %.3f)",
				c.name, d, c.with, c.clean))
		}
	}
	return violations
}

func serialize(r *analyzer.Report) ([]byte, error) {
	var buf bytes.Buffer
	if err := profile.FromReport(r).Write(&buf); err != nil {
		return nil, fmt.Errorf("serialize profile: %w", err)
	}
	return buf.Bytes(), nil
}
