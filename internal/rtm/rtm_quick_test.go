package rtm

import (
	"testing"
	"testing/quick"

	"txsampler/internal/machine"
)

// Property: critical sections serialize correctly under ANY retry
// policy — the shared counter is always exact, whatever combination of
// retries, capacity policy, backoff, and thread count is in force.
func TestQuickPolicySpaceSerializability(t *testing.T) {
	f := func(maxRetries, backoff uint8, retryCap bool, threads8, seed8 uint8) bool {
		threads := int(threads8)%6 + 2
		m := machine.New(machine.Config{Threads: threads, Seed: int64(seed8)})
		l := NewLock(m)
		l.Policy = Policy{
			MaxRetries:      int(maxRetries) % 8,
			RetryOnCapacity: retryCap,
			MaxLockBusy:     50,
			BackoffBase:     int(backoff) % 60,
		}
		a := m.Mem.AllocWords(1)
		const per = 25
		if err := m.RunAll(func(th *machine.Thread) {
			for i := 0; i < per; i++ {
				l.Run(th, func() {
					v := th.Load(a)
					th.Compute(8)
					th.Store(a, v+1)
				})
			}
		}); err != nil {
			return false
		}
		if m.Mem.Load(a) != uint64(threads*per) {
			return false
		}
		// Every critical section ended exactly one way.
		return l.Stats.Commits+l.Stats.Fallbacks == uint64(threads*per)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: HLE also serializes exactly for any seed/thread mix.
func TestQuickHLESerializability(t *testing.T) {
	f := func(threads8, seed8 uint8) bool {
		threads := int(threads8)%6 + 2
		m := machine.New(machine.Config{Threads: threads, Seed: int64(seed8), StartSkew: 256})
		l := NewLock(m)
		a := m.Mem.AllocWords(1)
		const per = 25
		if err := m.RunAll(func(th *machine.Thread) {
			for i := 0; i < per; i++ {
				l.RunHLE(th, func() {
					v := th.Load(a)
					th.Compute(8)
					th.Store(a, v+1)
				})
			}
		}); err != nil {
			return false
		}
		return m.Mem.Load(a) == uint64(threads*per)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the state word is always zero outside critical sections
// and never shows fallback and HTM simultaneously inside.
func TestQuickStateWordInvariants(t *testing.T) {
	f := func(seed8 uint8) bool {
		m := machine.New(machine.Config{Threads: 4, Seed: int64(seed8)})
		l := NewLock(m)
		a := m.Mem.AllocWords(1)
		ok := true
		if err := m.RunAll(func(th *machine.Thread) {
			for i := 0; i < 20; i++ {
				l.Run(th, func() {
					s := th.State
					if !IsInCS(s) || (IsInHTM(s) && IsInFallback(s)) {
						ok = false
					}
					th.Add(a, 1)
				})
				if th.State != 0 {
					ok = false
				}
				th.Compute(15)
			}
		}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
