// Lock elision: a sync.Mutex-shaped lock whose critical sections can
// run through the TM runtime instead of serializing. With elision on
// (machine.Config.Elision), Run maps the section onto the full
// adaptive fallback ladder — hardware attempt with retry, then the
// configured hybrid STM slow path, then actually acquiring the lock —
// and every state-word update carries the InElision bit so the
// profiler classifies the section's samples as elided-htm /
// elided-stm / elided-lock. With elision off the lock is a plain
// spinlock and the machine is bit-for-bit the pre-elision machine
// (samples classify as plain ModeLock).
//
// Determinism: the elision decision is a per-machine configuration
// constant, and all policy metadata motion (retry budgets, storm
// state, stats) already happens inside machine.Thread.Exclusive
// sections in the shared ladder, so schedules stay seed-deterministic
// and quantum-invariant in both modes.
package rtm

import (
	"strings"

	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// ElisionFramePrefix prefixes the runtime frame an ElidedLock pushes
// around its critical sections: the frame is ElisionFramePrefix +
// Site, which is how the analyzer aggregates samples and abort weight
// per lock site for the "would elision win?" verdict.
const ElisionFramePrefix = "elide:"

// ElisionSiteOf extracts the lock-site name from a frame function
// name, reporting whether the frame is an elided-lock frame.
func ElisionSiteOf(fn string) (string, bool) {
	if rest, ok := strings.CutPrefix(fn, ElisionFramePrefix); ok {
		return rest, true
	}
	return "", false
}

// ElidedLock is a mutex whose critical sections are candidates for
// lock elision. Each lock names a Site (the per-lock-site aggregation
// key of the verdict) and owns a private Lock as its speculation
// engine, so per-site Stats are exact ground truth.
type ElidedLock struct {
	// Site names the lock site in profiles and verdicts.
	Site string
	// Elide reports whether this lock speculates. NewElidedLock copies
	// it from the machine's Elision configuration; tests may override
	// it before first use (never mid-run).
	Elide bool

	inner *Lock
}

// NewElidedLock allocates an elidable lock on machine m. Whether it
// actually elides follows m's Elision configuration; the speculation
// ladder (retry policy, hybrid slow path) follows m's Hybrid
// configuration via the inner Lock.
func NewElidedLock(m *machine.Machine, site string) *ElidedLock {
	e := &ElidedLock{
		Site:  site,
		Elide: m.Config().Elision == machine.ElisionOn,
		inner: NewLock(m),
	}
	e.inner.elided = e.Elide
	return e
}

// Inner exposes the speculation engine for policy overrides and exact
// per-site statistics (Commits = elided-htm sections, StmCommits =
// elided-stm, Fallbacks = lock acquisitions).
func (e *ElidedLock) Inner() *Lock { return e.inner }

// Run executes body as one critical section of this lock, under an
// elide:<site> frame. Eliding, it is Lock.Run's full fallback ladder;
// not eliding, it is a plain lock acquisition. Like Run, the body
// must be idempotent up to its memory writes when eliding, and the
// lock is not reentrant.
func (e *ElidedLock) Run(t *machine.Thread, body func()) {
	t.Func(ElisionFramePrefix+e.Site, func() {
		if e.Elide {
			for !e.inner.critical(t, body) {
			}
			return
		}
		for !e.inner.plain(t, body) {
		}
	})
}

// Lock acquires the lock non-speculatively, pairing with Unlock — the
// sync.Mutex shape for code that cannot express its critical section
// as a closure. Elision needs the closure: a speculative attempt must
// be able to discard and re-execute the whole section, and control
// flow that already returned from Lock cannot be rolled back. Lock
// sites wanting the elision verdict use Run.
func (e *ElidedLock) Lock(t *machine.Thread) {
	l := e.inner
	l.resetRunOn(t)
	t.State = InCS | InLockWaiting
	for !t.AtomicCAS(l.Addr, 0, mem.Word(t.ID)+1) {
		for t.Load(l.Addr) != 0 {
			t.Compute(2)
		}
	}
	if l.Hybrid != machine.HybridLockOnly {
		// Same protocol as the ladder's fallback rung: software
		// writers that entered their write phase before the CAS must
		// drain before the holder owns memory — their eager writes
		// are invisible to a non-transactional reader until then.
		l.waitQuiesce(t)
	}
	t.State = InCS | InFallback
}

// Unlock releases a lock acquired with Lock.
func (e *ElidedLock) Unlock(t *machine.Thread) {
	l := e.inner
	t.State = InCS | InOverhead
	t.Store(l.Addr, 0)
	t.State = 0
	t.Exclusive(func() { l.Stats.Fallbacks++ })
}

// plain runs one plain-lock execution attempt of the section —
// ElidedLock's non-eliding mode. It mirrors critical's fallback tail
// (including the durable-commit epilogue and its crash re-execution
// contract) without ever speculating; the section's samples classify
// as ModeLock.
func (l *Lock) plain(t *machine.Thread, body func()) bool {
	l.resetRunOn(t)
	t.PmemSectionBegin()
	t.State = l.cs(InCS | InLockWaiting)
	for !t.AtomicCAS(l.Addr, 0, mem.Word(t.ID)+1) {
		for t.Load(l.Addr) != 0 {
			t.Compute(2)
		}
	}
	if l.Hybrid != machine.HybridLockOnly {
		// A plain-mode lock can share its word with speculating
		// sections (Lock/Unlock callers, crash re-execution), so it
		// honors the same writer-drain protocol as the fallback rung.
		l.waitQuiesce(t)
	}
	t.State = l.cs(InCS | InFallback)
	body()
	t.State = l.cs(InCS | InOverhead)
	t.Store(l.Addr, 0)
	ok := l.persist(t)
	t.State = 0
	t.Exclusive(func() { l.Stats.Fallbacks++ })
	return ok
}
