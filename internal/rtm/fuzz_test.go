package rtm

import (
	"fmt"
	"testing"

	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// FuzzElisionPolicy drives an arbitrary critical-section script over
// elidable locks across the whole policy space — thread count, seed,
// hybrid policy, retry budget, elision on/off — and asserts the
// elision runtime's total contract: every section serializes exactly
// (shared and private counters come out arithmetically right), the
// mode word inside a section always classifies to a legal mode for
// the path taken, stats conserve sections (each section ends exactly
// one way — a double unlock or a lost section breaks the count), no
// lock word or state word leaks past the run, and the whole machine
// is a deterministic function of the input (identical fingerprints
// on replay). Deadlock surfaces as a fuzzer timeout.
//
// Script encoding: data[0] threads, data[1] seed, data[2] hybrid
// policy, data[3] elision mode, data[4] retry policy; data[5:] is the
// op list every thread executes (low bits pick the op shape, bit 4
// picks which of two locks).
func FuzzElisionPolicy(f *testing.F) {
	f.Add([]byte{1, 9, 1, 1, 12, 0, 1, 2, 3, 4, 5, 16, 17, 19, 20})
	f.Add([]byte{2, 5, 0, 1, 3, 3, 3, 3, 3, 0, 3, 3})  // syscall-poisoned, lock-only
	f.Add([]byte{1, 2, 2, 0, 7, 0, 1, 2, 4, 0})        // elision off
	f.Add([]byte{3, 1, 3, 1, 4, 2, 2, 0, 1, 3, 4, 21}) // sandboxed slow path
	f.Add([]byte{0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		threads := 2 + int(data[0])%4
		seed := int64(data[1])
		pol := machine.HybridPolicy(int(data[2]) % len(machine.HybridPolicies()))
		elide := data[3]%2 == 1
		emode := machine.ElisionOff
		if elide {
			emode = machine.ElisionOn
		}
		policy := Policy{
			MaxRetries:      int(data[4]) % 8,
			RetryOnCapacity: data[4]&8 != 0,
			MaxLockBusy:     50,
			BackoffBase:     int(data[4]) % 60,
		}
		ops := data[5:]
		if len(ops) > 24 {
			ops = ops[:24]
		}

		// The expected result is computable from the script alone:
		// that is the serializability oracle. Shared state is per lock
		// — data shared across two different locks without common
		// protection is outside the programming model (a lock's
		// sections only serialize against sections of the same lock).
		var privateAdds uint64
		sharedAdds := [2]uint64{}
		sections := [2]uint64{}
		for _, op := range ops {
			kind := op % 6
			lk := (op >> 4) & 1
			switch kind {
			case 0, 4:
				sharedAdds[lk]++
			case 1, 3:
				privateAdds++
			}
			if kind <= 4 {
				sections[lk]++
			}
		}

		run := func() uint64 {
			m := machine.New(machine.Config{
				Threads: threads, Seed: seed, StartSkew: 256,
				Hybrid: pol, Elision: emode,
			})
			locks := [2]*ElidedLock{
				NewElidedLock(m, "fuzz_a"),
				NewElidedLock(m, "fuzz_b"),
			}
			locks[0].Inner().Policy = policy
			locks[1].Inner().Policy = policy
			shared := [2]mem.Addr{m.Mem.AllocLines(1), m.Mem.AllocLines(1)}
			private := m.Mem.AllocLines(threads)
			var violation string
			fail := func(msg string) {
				if violation == "" {
					violation = msg
				}
			}
			checkMode := func(th *machine.Thread) {
				mode := ModeOf(th.State, IsInHTM(th.State))
				if elide {
					if mode != ModeElidedHTM && mode != ModeElidedSTM && mode != ModeElidedLock {
						fail(fmt.Sprintf("elided section classified as %v", mode))
					}
				} else if mode != ModeLock {
					fail(fmt.Sprintf("plain section classified as %v", mode))
				}
			}
			if err := m.RunAll(func(th *machine.Thread) {
				ctr := private.Offset(th.ID * mem.WordsPerLine)
				for _, op := range ops {
					lk := (op >> 4) & 1
					l, sh := locks[lk], shared[lk]
					switch op % 6 {
					case 0: // short shared add: the CAS-able shape
						l.Run(th, func() {
							checkMode(th)
							th.Add(sh, 1)
						})
					case 1: // disjoint private add: elision-friendly
						l.Run(th, func() {
							checkMode(th)
							th.Add(ctr, 1)
						})
					case 2: // read-only scan
						l.Run(th, func() {
							checkMode(th)
							th.Load(sh)
							th.Compute(10)
						})
					case 3: // syscall-poisoned: forces the ladder down
						l.Run(th, func() {
							checkMode(th)
							th.Add(ctr, 1)
							th.Syscall("fuzz_serial")
						})
					case 4: // non-speculative Lock/Unlock pairing
						l.Lock(th)
						if mode := ModeOf(th.State, false); mode != ModeLock {
							fail(fmt.Sprintf("held lock classified as %v", mode))
						}
						th.Add(sh, 1)
						l.Unlock(th)
					default: // no section
						th.Compute(12)
					}
					if th.State != 0 {
						fail(fmt.Sprintf("state word %#x leaked past a section", th.State))
					}
				}
			}); err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if violation != "" {
				t.Fatal(violation)
			}
			for i, sh := range shared {
				if got, want := m.Mem.Load(sh), uint64(threads)*sharedAdds[i]; got != want {
					t.Fatalf("shared counter %d = %d, want %d", i, got, want)
				}
			}
			for id := 0; id < threads; id++ {
				if got := m.Mem.Load(private.Offset(id * mem.WordsPerLine)); got != privateAdds {
					t.Fatalf("thread %d private counter = %d, want %d", id, got, privateAdds)
				}
			}
			for i, l := range locks {
				if w := m.Mem.Load(l.Inner().Addr); w != 0 {
					t.Fatalf("lock %d word = %d after run: leaked acquisition", i, w)
				}
				st := l.Inner().Stats
				ended := st.Commits + st.StmCommits + st.Fallbacks
				if want := uint64(threads) * sections[i]; ended != want {
					t.Fatalf("lock %d ended %d sections (commits=%d stm=%d fallbacks=%d), want %d",
						i, ended, st.Commits, st.StmCommits, st.Fallbacks, want)
				}
			}
			return m.Mem.Fingerprint()
		}

		if a, b := run(), run(); a != b {
			t.Fatalf("nondeterministic: fingerprints %#x vs %#x for one input", a, b)
		}
	})
}
