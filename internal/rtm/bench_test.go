package rtm

// Micro-benchmarks of the runtime's execution paths: critical sections
// per second when the section commits in hardware, through the
// word-based STM slow path, and through the global-lock fallback. The
// stm/htm throughput ratio is the instrumentation-overhead headline
// that CI gates with benchdiff -ratio: the software path must stay
// within an order of magnitude of hardware commits.

import (
	"fmt"
	"testing"

	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/pmem"
)

// benchCS drives threads through b.N total critical sections, each
// incrementing a thread-private word (no cross-thread conflicts, so
// the path cost itself is measured rather than contention), and
// reports aggregate sections/sec.
func benchCS(b *testing.B, threads int, hybrid machine.HybridPolicy, force bool) {
	b.ReportAllocs()
	perThread := b.N/threads + 1
	m := machine.New(machine.Config{Threads: threads, Seed: 1, Hybrid: hybrid})
	l := NewLock(m)
	base := m.Mem.AllocLines(threads)
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(th *machine.Thread) {
			ctr := base.Offset(th.ID * 8) // one line per thread
			body := func() { th.Add(ctr, 1) }
			run := body
			if force {
				run = func() {
					th.Syscall("bench_forced")
					body()
				}
			}
			for i := 0; i < perThread; i++ {
				l.Run(th, run)
			}
		})
		close(done)
	}()
	<-done
	b.StopTimer()
	ops := float64(perThread) * float64(threads)
	b.ReportMetric(ops/b.Elapsed().Seconds(), "cs/sec")
}

// benchPmemCS is benchCS over durable per-thread counters: every
// committed section dirties one tracked line, so with the tier on each
// commit pays the full persist epilogue (log append, flush, fence,
// commit record) on top of the hardware commit.
func benchPmemCS(b *testing.B, threads int, durable bool) {
	b.ReportAllocs()
	perThread := b.N/threads + 1
	m := machine.New(machine.Config{
		Threads: threads, Seed: 1,
		Pmem: pmem.Config{Enabled: durable},
	})
	l := NewLock(m)
	base := m.Mem.AllocLines(threads)
	if durable {
		m.PmemTrack(base, threads*mem.WordsPerLine)
	}
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(th *machine.Thread) {
			ctr := base.Offset(th.ID * mem.WordsPerLine)
			for i := 0; i < perThread; i++ {
				l.Run(th, func() { th.Add(ctr, 1) })
			}
		})
		close(done)
	}()
	<-done
	b.StopTimer()
	ops := float64(perThread) * float64(threads)
	b.ReportMetric(ops/b.Elapsed().Seconds(), "cs/sec")
}

// BenchmarkPmemOpsPerSec prices the persistent tier: critical sections
// per second with the tier off (plain hardware commits) and on (every
// commit runs the durable persist epilogue). CI holds the on/off
// throughput ratio above a floor with benchdiff -ratio — the epilogue
// must stay a bounded multiplier, not a cliff.
func BenchmarkPmemOpsPerSec(b *testing.B) {
	const threads = 4
	for _, c := range []struct {
		name    string
		durable bool
	}{
		{"off", false},
		{"on", true},
	} {
		b.Run(fmt.Sprintf("%dthreads-%s", threads, c.name), func(b *testing.B) {
			benchPmemCS(b, threads, c.durable)
		})
	}
}

// benchElisionCS drives threads through b.N critical sections of one
// lock-usage shape on a single elidable lock, plain or eliding. It
// reports two throughputs: host cs/sec (the simulator's path cost,
// like the other runtime benchmarks) and simulated simcs/sec —
// sections per simulated second at a nominal 1 GHz, from the
// machine's makespan. The simulated number is the "what would elision
// buy here" answer the profiler's verdict estimates from samples, and
// the one CI's elided/plain ratio gate holds.
func benchElisionCS(b *testing.B, threads int, shape string, elide bool) {
	b.ReportAllocs()
	perThread := b.N/threads + 1
	emode := machine.ElisionOff
	if elide {
		emode = machine.ElisionOn
	}
	m := machine.New(machine.Config{Threads: threads, Seed: 1, Elision: emode})
	el := NewElidedLock(m, "bench_"+shape)
	table := m.Mem.AllocLines(4)
	version := m.Mem.AllocLines(1)
	private := m.Mem.AllocLines(threads)
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		_ = m.RunAll(func(th *machine.Thread) {
			ctr := private.Offset(th.ID * mem.WordsPerLine)
			for i := 0; i < perThread; i++ {
				switch shape {
				case "read-mostly":
					i := i
					el.Run(th, func() {
						if i%32 == 0 {
							th.Add(version, 1)
							return
						}
						for j := 0; j < 4; j++ {
							th.Load(table.Offset(j * mem.WordsPerLine))
						}
					})
				case "counter":
					el.Run(th, func() { th.Add(version, 1) })
				case "syscall":
					el.Run(th, func() {
						th.Add(ctr, 1)
						th.Syscall("bench_serial")
					})
				}
			}
		})
		close(done)
	}()
	<-done
	b.StopTimer()
	ops := float64(perThread) * float64(threads)
	b.ReportMetric(ops/b.Elapsed().Seconds(), "cs/sec")
	if cyc := m.Elapsed(); cyc > 0 {
		b.ReportMetric(ops/(float64(cyc)/1e9), "simcs/sec")
	}
}

// BenchmarkElisionOpsPerSec prices lock elision on three canonical
// shapes under the paper's lock-only ladder: a read-mostly table
// (elision should win — CI holds the elided/plain simulated
// throughput ratio above 1.0 with benchdiff -ratio), a short
// conflicting counter, and a syscall-poisoned section (the ladder's
// worst case: every attempt burns speculation before serializing
// anyway, so eliding costs throughput — the "lose" verdict's price).
func BenchmarkElisionOpsPerSec(b *testing.B) {
	const threads = 4
	for _, shape := range []string{"read-mostly", "counter", "syscall"} {
		for _, mode := range []struct {
			name  string
			elide bool
		}{
			{"plain", false},
			{"elided", true},
		} {
			b.Run(fmt.Sprintf("%dthreads-%s-%s", threads, shape, mode.name), func(b *testing.B) {
				benchElisionCS(b, threads, shape, mode.elide)
			})
		}
	}
}

// BenchmarkSTMOpsPerSec compares the three ways a critical section can
// execute: committing in hardware (htm), the forced word-based STM
// slow path (stm), and the forced global-lock fallback (lock). CI
// holds "stm cs/sec / htm cs/sec" above a floor with benchdiff -ratio.
func BenchmarkSTMOpsPerSec(b *testing.B) {
	const threads = 4
	cases := []struct {
		name   string
		hybrid machine.HybridPolicy
		force  bool
	}{
		{"htm", machine.HybridStmFallback, false},
		{"stm", machine.HybridStmFallback, true},
		{"lock", machine.HybridLockOnly, true},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%dthreads-%s", threads, c.name), func(b *testing.B) {
			benchCS(b, threads, c.hybrid, c.force)
		})
	}
}
