// Package rtm is the RTM runtime library workloads link against: the
// software side of Intel TSX lock elision. A critical section wrapped
// in Run (the paper's TM_BEGIN/TM_END) first waits for the global
// fallback lock to be free, then attempts the body as a hardware
// transaction that reads the lock word into its read set (so a
// fallback acquisition aborts it); after Policy.MaxRetries transient
// aborts — or immediately on a persistent abort — it falls back to
// acquiring the global lock and running the body non-speculatively.
//
// The package also implements the paper's ~21-line extension (§3.2):
// a thread-private state word recording whether the thread is in a
// critical section, transaction, fallback path, lock wait, or
// transaction-overhead code, exposed to the profiler through a query
// function. Updates inside the transaction roll back with it, so a
// post-abort handler observes the pre-transaction state, as on real
// hardware.
package rtm

import (
	"sync/atomic"

	"txsampler/internal/htm"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/telemetry"
)

// State word bits (paper §3.2).
const (
	// InCS: executing in a critical section.
	InCS uint32 = 1 << iota
	// InHTM: executing in a transaction path.
	InHTM
	// InFallback: executing in a fallback path.
	InFallback
	// InLockWaiting: waiting for the global lock to be available.
	InLockWaiting
	// InOverhead: initiating, retrying, or cleaning up a transaction.
	InOverhead
	// InSTM: executing in the instrumented software-transaction slow
	// path (the hybrid-TM extension; not part of the paper's Figure 4).
	InSTM
	// InFlush: executing the durable-commit persist epilogue of the
	// pmem tier — flushing logged lines, draining the persist fence,
	// writing the commit record (not part of the paper's Figure 4).
	InFlush
	// InElision: the critical section is an elided lock (an
	// ElidedLock running speculatively, not a TM_BEGIN section). The
	// bit qualifies whichever base bucket is set — HTM attempt, STM
	// slow path, fallback lock — so samples split into the
	// elided-htm/elided-stm/elided-lock modes. It is set outside the
	// hardware transaction (before XBEGIN), so the rolled-back state a
	// PMU handler observes still carries it.
	InElision
)

// The query functions of the profiler-facing state API (Figure 4).

// IsInCS reports whether the state word shows a critical section.
func IsInCS(s uint32) bool { return s&InCS != 0 }

// IsInFallback reports whether the state word shows the fallback path.
func IsInFallback(s uint32) bool { return s&InFallback != 0 }

// IsInLockWaiting reports whether the state word shows a lock wait.
func IsInLockWaiting(s uint32) bool { return s&InLockWaiting != 0 }

// IsInHTM reports whether the state word shows a transaction. A PMU
// handler never observes this bit set for the sampled thread — the
// interrupt's abort rolled the transactional update back — which is
// precisely why the profiler needs the LBR abort bit (Challenge I).
func IsInHTM(s uint32) bool { return s&InHTM != 0 }

// IsInSTM reports whether the state word shows the software slow
// path. Unlike InHTM, this bit survives PMU interrupts: the STM is
// plain instrumented software, so the handler observes it live.
func IsInSTM(s uint32) bool { return s&InSTM != 0 }

// IsInFlush reports whether the state word shows the persist epilogue.
// Like InSTM it survives PMU interrupts: the epilogue runs outside any
// hardware transaction, so the handler observes the bit live.
func IsInFlush(s uint32) bool { return s&InFlush != 0 }

// IsInElision reports whether the state word shows an elided-lock
// critical section. Set non-transactionally, so it survives PMU
// interrupts like InSTM and InFlush.
func IsInElision(s uint32) bool { return s&InElision != 0 }

// Mode is the execution-mode classification of one cycles sample
// under hybrid TM: the paper's Figure 4 buckets extended with the
// instrumented software path. ModeHTM is only observable through the
// LBR abort bit (the state word's InHTM bit rolls back); every other
// mode reads directly off the live state word.
type Mode uint8

const (
	// ModeNone: outside any critical section (the profiler's S
	// bucket).
	ModeNone Mode = iota
	// ModeHTM: inside a hardware transaction.
	ModeHTM
	// ModeSTM: inside an instrumented software transaction.
	ModeSTM
	// ModeLock: in the fallback path under the global lock.
	ModeLock
	// ModeWaiting: waiting for the global lock (or for software
	// writers to drain).
	ModeWaiting
	// ModeOverhead: transaction begin/retry/cleanup bookkeeping.
	ModeOverhead
	// ModeFlush: the durable-commit persist epilogue (flush, fence,
	// commit record) of the pmem tier — persistence stalls.
	ModeFlush
	// ModeElidedHTM: inside a hardware transaction speculating an
	// elided lock's critical section. A plain-lock section (elision
	// off, or a non-elidable lock) classifies as ModeLock instead.
	ModeElidedHTM
	// ModeElidedSTM: an elided lock's critical section running in the
	// instrumented software slow path.
	ModeElidedSTM
	// ModeElidedLock: an elided lock's critical section that exhausted
	// the speculation ladder and actually acquired the lock.
	ModeElidedLock

	// NumModes sizes confusion matrices over Mode.
	NumModes
)

var modeNames = [...]string{
	ModeNone: "none", ModeHTM: "htm", ModeSTM: "stm",
	ModeLock: "lock", ModeWaiting: "waiting", ModeOverhead: "overhead",
	ModeFlush: "flush", ModeElidedHTM: "elided-htm",
	ModeElidedSTM: "elided-stm", ModeElidedLock: "elided-lock",
}

func (m Mode) String() string {
	if int(m) >= len(modeNames) {
		return "invalid"
	}
	return modeNames[m]
}

// ModeOf classifies a sampled state word. inTx is the evidence that
// the sample interrupted a hardware transaction: the LBR abort bit
// for the profiler, the machine's ground truth for the validator.
// Order matters and mirrors the collector's Figure 4 switch: hardware
// evidence wins (the rolled-back state word cannot show InHTM), then
// the live software bits.
func ModeOf(state uint32, inTx bool) Mode {
	elided := IsInElision(state)
	switch {
	case inTx:
		if elided {
			return ModeElidedHTM
		}
		return ModeHTM
	case !IsInCS(state):
		return ModeNone
	case IsInFlush(state):
		return ModeFlush
	case IsInSTM(state):
		if elided {
			return ModeElidedSTM
		}
		return ModeSTM
	case IsInFallback(state):
		if elided {
			return ModeElidedLock
		}
		return ModeLock
	case IsInLockWaiting(state):
		return ModeWaiting
	default:
		return ModeOverhead
	}
}

// Policy controls the retry behaviour of a critical section.
type Policy struct {
	// MaxRetries bounds retries of transient (conflict/interrupt)
	// aborts before taking the fallback path. The paper's evaluation
	// uses 5.
	MaxRetries int
	// RetryOnCapacity, if set, also retries capacity aborts. The
	// paper's evaluation retries everything except persistent aborts
	// such as system calls (§7), so this defaults to true; TSX's
	// retry-bit heuristic would fall back immediately instead (see
	// the ablation benchmarks).
	RetryOnCapacity bool
	// MaxLockBusy bounds consecutive lock-busy aborts (the explicit
	// abort taken when the lock is observed held inside the
	// transaction) before giving up and falling back.
	MaxLockBusy int
	// BackoffBase is the unit of the randomized exponential backoff
	// inserted before conflict retries, in cycles. Without backoff,
	// colliding transactions retry in lockstep and cascade into the
	// fallback path (the "lemming effect"). Zero disables backoff.
	BackoffBase int

	// Adaptive enables storm shedding: when consecutive ambient aborts
	// (interrupt or spurious — aborts the application did not cause
	// and retrying cannot fix) reach StormThreshold without an
	// intervening commit, the lock concludes the machine is in a
	// transient-abort storm, sheds retries down to StormRetries, and
	// widens backoff, so threads stop burning cycles re-executing
	// doomed speculation and serialize through the fallback lock until
	// the storm passes. A commit ends storm mode.
	Adaptive bool
	// StormThreshold is the consecutive-ambient-abort count that
	// triggers storm mode. Zero means 16.
	StormThreshold int
	// StormRetries replaces MaxRetries while a storm is active. Zero
	// means 1.
	StormRetries int

	// StmRetries bounds software-transaction attempts before the
	// slow path gives up and takes the global lock (hybrid policies
	// only; HybridSerializeOnConflict always uses 1). Zero means 3.
	StmRetries int
}

// DefaultPolicy matches the paper's evaluation setup.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 5, RetryOnCapacity: true, MaxLockBusy: 50, BackoffBase: 30}
}

// AdaptivePolicy is DefaultPolicy plus storm shedding.
func AdaptivePolicy() Policy {
	p := DefaultPolicy()
	p.Adaptive = true
	p.StormThreshold = 16
	p.StormRetries = 1
	return p
}

func (p Policy) stormThreshold() int {
	if p.StormThreshold <= 0 {
		return 16
	}
	return p.StormThreshold
}

func (p Policy) stormRetries() int {
	if p.StormRetries <= 0 {
		return 1
	}
	return p.StormRetries
}

func (p Policy) stmRetries() int {
	if p.StmRetries <= 0 {
		return 3
	}
	return p.StmRetries
}

// Stats counts critical-section outcomes for one lock; exact ground
// truth, not sampled.
type Stats struct {
	Commits   uint64
	Fallbacks uint64
	Aborts    map[htm.Cause]uint64
	LockBusy  uint64 // explicit aborts because the lock was held

	// Adaptive-policy accounting (zero unless Policy.Adaptive).
	StormsDetected uint64 // transitions into storm mode
	StormFallbacks uint64 // fallbacks taken while a storm was active

	// Hybrid-TM accounting (zero unless Lock.Hybrid enables the STM
	// slow path).
	StmCommits   uint64 // software transactions committed
	StmAborts    uint64 // software-transaction conflicts/validation failures
	StmFallbacks uint64 // STM retry budgets exhausted; lock taken
	StmBusy      uint64 // hardware aborts on an active software writer
}

// EventKind enumerates the critical-section events an instrumenting
// profiler intercepts (TSXProf's record phase, §9).
type EventKind uint8

const (
	// EventBegin: a critical section was entered.
	EventBegin EventKind = iota
	// EventCommit: a transactional attempt committed.
	EventCommit
	// EventAbort: a transactional attempt aborted.
	EventAbort
	// EventFallback: the critical section ran under the lock.
	EventFallback
)

// EventSink receives instrumentation callbacks from the RTM library.
// Each delivery costs the instrumented thread PerEventCost cycles, the
// overhead instrumentation-based tools pay per transaction instance.
type EventSink interface {
	TxEvent(t *machine.Thread, kind EventKind)
	PerEventCost() int
}

// Lock is one elidable global lock protecting a set of critical
// sections. The lock word occupies a dedicated cache line so that
// false sharing never aborts transactions through the lock itself.
type Lock struct {
	Addr   mem.Addr
	Policy Policy
	Stats  Stats

	// Hybrid selects the slow path taken after hardware retries are
	// exhausted (see machine.HybridPolicy). NewLock copies it from the
	// machine's configuration; tests may override it before use. With
	// the default, HybridLockOnly, the lock behaves exactly as the
	// paper's runtime.
	Hybrid HybridPolicy

	// Sink, when set, receives begin/commit/abort/fallback events —
	// the instrumentation hook record-and-replay tools need. Nil for
	// normal (sampling-profiled or native) runs.
	Sink EventSink

	overheadCycles int // software bookkeeping burned per attempt

	// elided marks this lock as the engine of an ElidedLock running
	// speculatively: every state-word update then carries InElision,
	// splitting the lock's samples into the elided-* modes. False for
	// TM_BEGIN sections and for elidable locks with elision off, which
	// keeps those bit-identical to the pre-elision runtime.
	elided bool

	// Adaptive-policy state, mutated only by the simulated threads.
	// All cross-thread reads and writes of this state (and of Stats)
	// happen inside machine.Thread.Exclusive sections, which the
	// scheduler orders at the thread's canonical position — the serial
	// scheduler's for-free ordering, made explicit so the sharded
	// scheduler preserves it.
	ambientStreak int  // consecutive ambient aborts since last commit
	storming      bool // storm mode active

	// runM is the machine this lock last ran on. A Lock reused across
	// machine runs must not carry storm state (or software-TM word
	// locks) from a previous run into the next; critical resets both
	// when the machine changes. Atomic because the fast-path check in
	// resetRunOn reads it outside Exclusive (writes stay inside).
	runM atomic.Pointer[machine.Machine]

	// stm is the software-transaction side of the lock (see stm.go).
	// Always present so hybrid policies can be chosen per run without
	// perturbing memory layout; idle unless Hybrid enables it.
	stm stmState
}

// Storming reports whether the adaptive policy currently has retries
// shed (useful for tests and diagnostics).
func (l *Lock) Storming() bool { return l.storming }

// ResetRun clears per-run lock state: the adaptive storm detector and
// any software-TM word locks. critical calls it automatically when it
// first runs on a new machine; callers reusing a Lock outside Run can
// invoke it directly.
func (l *Lock) ResetRun() {
	l.ambientStreak = 0
	l.storming = false
	l.runM.Store(nil)
	l.stm.reset()
}

// resetRunOn resets per-run state the first time the lock is used on
// machine m. The check is a plain atomic pointer load (no machine
// operation, so schedules are unchanged); the reset itself is ordered
// by Exclusive and idempotent, so concurrent first entries are safe.
func (l *Lock) resetRunOn(t *machine.Thread) {
	if l.runM.Load() == t.Machine() {
		return
	}
	t.Exclusive(func() {
		if l.runM.Load() != t.Machine() {
			l.ambientStreak = 0
			l.storming = false
			l.stm.reset()
			l.runM.Store(t.Machine())
		}
	})
}

// noteOutcome updates the adaptive storm detector after one attempt.
func (l *Lock) noteOutcome(committed bool, cause htm.Cause) {
	if !l.Policy.Adaptive {
		return
	}
	switch {
	case committed:
		// Speculation works again; restore the full retry budget.
		l.ambientStreak = 0
		l.storming = false
	case cause.Ambient():
		l.ambientStreak++
		if !l.storming && l.ambientStreak >= l.Policy.stormThreshold() {
			l.storming = true
			l.Stats.StormsDetected++
		}
	default:
		// An application-caused abort breaks the streak: the aborts
		// are explainable, not ambient noise.
		l.ambientStreak = 0
	}
}

// maxRetries returns the retry budget currently in force.
func (l *Lock) maxRetries() int {
	if l.storming {
		return l.Policy.stormRetries()
	}
	return l.Policy.MaxRetries
}

// cs returns the state-word bits for this lock's critical sections:
// the given base buckets, plus InElision when the lock is an elided
// lock. Pure bit arithmetic — no machine operation, so schedules are
// unchanged and non-elided locks produce exactly the old words.
func (l *Lock) cs(bits uint32) uint32 {
	if l.elided {
		return bits | InElision
	}
	return bits
}

// emit delivers an instrumentation event and charges its cost.
func (l *Lock) emit(t *machine.Thread, kind EventKind) {
	if l.Sink == nil {
		return
	}
	t.Exclusive(func() { l.Sink.TxEvent(t, kind) })
	if c := l.Sink.PerEventCost(); c > 0 {
		t.Compute(c)
	}
}

// NewLock allocates a lock on machine m with the default policy and
// the machine's configured hybrid policy. The software-TM "active
// writers" word lives on the lock's own cache line (word 1, next to
// the lock word at word 0): hardware transactions already subscribe
// to that line through the lock-word check, so a software writer
// announcing itself aborts them with no additional instrumentation
// in the hardware fast path.
func NewLock(m *machine.Machine) *Lock {
	l := &Lock{
		Addr:           m.Mem.AllocLines(1),
		Policy:         DefaultPolicy(),
		Hybrid:         m.Config().Hybrid,
		Stats:          Stats{Aborts: make(map[htm.Cause]uint64)},
		overheadCycles: 25,
	}
	l.stm.init(l.Addr)
	return l
}

// Run executes body as one critical section on thread t: the paper's
// TM_BEGIN(); body; TM_END(). The body runs either inside a hardware
// transaction or, after exhausting retries, under the global lock; it
// must be idempotent up to its memory writes, as any transactional
// attempt may be discarded.
//
// Like a pthread mutex, the lock is not reentrant: nesting Run on the
// SAME lock deadlocks if the outer section falls back to the lock
// (the inner elision observes the self-held lock forever). Nesting on
// distinct locks, or within machine.Attempt, flattens as TSX does.
func (l *Lock) Run(t *machine.Thread, body func()) {
	t.Func("tm_begin", func() {
		// A section that durably committed (or touched no durable
		// lines) is done; an injected pmem crash without a durable
		// commit rolls the section back and re-executes it, as the
		// post-reboot process would.
		for !l.critical(t, body) {
		}
	})
}

// critical runs one execution attempt of the section and reports
// whether its effects are settled — true unless an injected pmem crash
// discarded them, in which case the caller re-executes.
func (l *Lock) critical(t *machine.Thread, body func()) bool {
	l.resetRunOn(t)
	t.PmemSectionBegin()
	l.emit(t, EventBegin)
	hybrid := l.Hybrid != HybridLockOnly
	retries, lockBusy := 0, 0
	for {
		// Transaction setup overhead (paper's T_oh component).
		t.State = l.cs(InCS | InOverhead)
		t.Compute(l.overheadCycles)

		// Wait for the lock to be free before starting (Figure 2).
		t.State = l.cs(InCS | InLockWaiting)
		waited := false
		for t.Load(l.Addr) != 0 {
			t.Compute(2)
			waited = true
		}
		if hybrid && l.Hybrid != HybridSandboxed {
			// Also wait for software writers to drain; the sandboxed
			// policy skips this and burns speculative attempts on the
			// in-transaction check instead.
			for t.Load(l.stm.active) != 0 {
				t.Compute(2)
				waited = true
			}
		}
		if waited && l.Policy.BackoffBase > 0 {
			// Desynchronize the herd released by the lock holder.
			t.Compute(1 + t.Rand().Intn(4*l.Policy.BackoffBase))
		}

		t.State = l.cs(InCS | InOverhead)
		sawLockHeld, sawStmWriter := false, false
		abort := t.Attempt(func() {
			t.State |= InHTM // transactional update; rolls back on abort
			// Read the lock word into the read set: a fallback
			// acquisition elsewhere now aborts this transaction.
			if t.Load(l.Addr) != 0 {
				sawLockHeld = true
				t.TxAbort()
			}
			if hybrid && t.Load(l.stm.active) != 0 {
				// Subscribe to the software writer count (same cache
				// line, so it costs no extra read-set entry): a
				// hardware transaction must never commit having read
				// a software transaction's eager, unvalidated writes.
				// A writer active at begin aborts here; one appearing
				// later conflicts on this line and dooms us.
				sawStmWriter = true
				t.TxAbort()
			}
			body()
		})
		if abort == nil {
			// Committed. Clean up (overhead), leave the CS.
			t.State = l.cs(InCS | InOverhead)
			t.Compute(l.overheadCycles)
			l.emit(t, EventCommit)
			ok := l.persist(t)
			t.State = 0
			t.Exclusive(func() {
				l.Stats.Commits++
				l.noteOutcome(true, htm.None)
			})
			return ok
		}

		l.emit(t, EventAbort)
		lockHeldAbort := sawLockHeld && abort.Cause == htm.Explicit
		stmBusyAbort := sawStmWriter && abort.Cause == htm.Explicit
		var budget int
		var storm bool
		t.Exclusive(func() {
			l.Stats.Aborts[abort.Cause]++
			l.noteOutcome(false, abort.Cause)
			if lockHeldAbort {
				l.Stats.LockBusy++
			}
			if stmBusyAbort {
				l.Stats.StmBusy++
			}
			budget = l.maxRetries()
			storm = l.storming
		})
		switch {
		case lockHeldAbort || stmBusyAbort:
			lockBusy++
			if lockBusy <= l.Policy.MaxLockBusy {
				continue // wait for the lock/writers and try again
			}
		case abort.Cause.Retryable() && retries < budget:
			retries++
			l.backoff(t, retries, storm)
			continue
		case abort.Cause == htm.Capacity && l.Policy.RetryOnCapacity && retries < budget:
			retries++
			l.backoff(t, retries, storm)
			continue
		}
		if storm {
			t.Exclusive(func() { l.Stats.StormFallbacks++ })
		}
		break // persistent abort or retries exhausted: fall back
	}

	// Instrumented software slow path: before serializing through the
	// lock, hybrid policies retry the body as a software transaction.
	if hybrid && l.runSTM(t, body) {
		return l.persist(t)
	}

	// Fallback path: acquire the global lock. The CAS is a
	// non-transactional write to the lock line, aborting every
	// transaction that has read it — the serialization the paper's
	// T_wait measures.
	t.State = l.cs(InCS | InLockWaiting)
	for !t.AtomicCAS(l.Addr, 0, mem.Word(t.ID)+1) {
		for t.Load(l.Addr) != 0 {
			t.Compute(2)
		}
	}
	if hybrid {
		// Software writers that entered their write phase before the
		// CAS drain here; new ones wait for the lock word. Their
		// eager writes are complete (and will validate cleanly — the
		// holder has written nothing yet), so once the count is zero
		// the holder owns memory exclusively.
		l.waitQuiesce(t)
	}
	held := t.Clock() // lock acquired; the serialization span begins
	t.State = l.cs(InCS | InFallback)
	body()
	t.State = l.cs(InCS | InOverhead)
	t.Store(l.Addr, 0) // release
	t.TraceEvent(telemetry.Event{
		Kind: telemetry.KindSpan, TS: held, Dur: t.Clock() - held,
		TID: int32(t.ID), Name: "fallback-lock",
	})
	l.emit(t, EventFallback)
	ok := l.persist(t)
	t.State = 0
	t.Exclusive(func() { l.Stats.Fallbacks++ })
	return ok
}

// persist runs the durable-commit epilogue when the section stored to
// tracked persistent lines: flush each logged line, drain the persist
// fence, write the commit record. It runs inside a pmem_persist frame
// with the InFlush state bit set, so samples landing here classify as
// persistence stalls and attribute to the flush site in the CCT. The
// return value is false exactly when an injected crash discarded the
// section (crashed without a durable commit record) and the caller
// must re-execute it.
func (l *Lock) persist(t *machine.Thread) bool {
	if !t.PmemPending() {
		return true
	}
	prev := t.State
	t.State = l.cs(InCS | InFlush)
	crashed, committed := false, true
	t.Func("pmem_persist", func() {
		crashed, committed = t.PmemPersist()
	})
	t.State = prev
	return committed || !crashed
}

// backoff burns a randomized, exponentially growing pause before a
// conflict retry; the state word shows transaction overhead. storming
// is the storm flag as observed in the caller's Exclusive section.
func (l *Lock) backoff(t *machine.Thread, retries int, storming bool) {
	if l.Policy.BackoffBase <= 0 {
		return
	}
	window := l.Policy.BackoffBase << uint(retries-1)
	if storming {
		window <<= 2 // desynchronize harder while the storm lasts
	}
	t.State = l.cs(InCS | InOverhead)
	t.Compute(1 + t.Rand().Intn(window))
}

// RunHLE executes body with hardware lock elision semantics (paper
// §2): the lock acquisition is elided into a single transactional
// attempt whose read set contains the lock word; any abort re-executes
// the critical section under the real lock, with no retry loop —
// exactly the XACQUIRE/XRELEASE behaviour. The state word is
// maintained identically, so the profiler needs no HLE-specific code.
func (l *Lock) RunHLE(t *machine.Thread, body func()) {
	t.Func("hle_acquire", func() {
		t.State = l.cs(InCS | InLockWaiting)
		for t.Load(l.Addr) != 0 {
			t.Compute(2)
		}
		t.State = l.cs(InCS | InOverhead)
		abort := t.Attempt(func() {
			t.State |= InHTM
			if t.Load(l.Addr) != 0 {
				t.TxAbort()
			}
			body()
		})
		if abort == nil {
			t.State = 0
			t.Exclusive(func() { l.Stats.Commits++ })
			return
		}
		t.Exclusive(func() { l.Stats.Aborts[abort.Cause]++ })
		// HLE retries by grabbing the real lock immediately.
		t.State = l.cs(InCS | InLockWaiting)
		for !t.AtomicCAS(l.Addr, 0, mem.Word(t.ID)+1) {
			for t.Load(l.Addr) != 0 {
				t.Compute(2)
			}
		}
		t.State = l.cs(InCS | InFallback)
		body()
		t.State = l.cs(InCS | InOverhead)
		t.Store(l.Addr, 0)
		t.State = 0
		t.Exclusive(func() { l.Stats.Fallbacks++ })
	})
}

// RunLocked executes body under the global lock without attempting a
// transaction — the pure pthread-mutex baseline the paper's workloads
// were ported from.
func (l *Lock) RunLocked(t *machine.Thread, body func()) {
	t.Func("lock_acquire", func() {
		t.State = l.cs(InCS | InLockWaiting)
		for !t.AtomicCAS(l.Addr, 0, mem.Word(t.ID)+1) {
			for t.Load(l.Addr) != 0 {
				t.Compute(2)
			}
		}
		t.State = l.cs(InCS | InFallback)
		body()
		t.Store(l.Addr, 0)
		t.State = 0
	})
}
