// Package rtm is the RTM runtime library workloads link against: the
// software side of Intel TSX lock elision. A critical section wrapped
// in Run (the paper's TM_BEGIN/TM_END) first waits for the global
// fallback lock to be free, then attempts the body as a hardware
// transaction that reads the lock word into its read set (so a
// fallback acquisition aborts it); after Policy.MaxRetries transient
// aborts — or immediately on a persistent abort — it falls back to
// acquiring the global lock and running the body non-speculatively.
//
// The package also implements the paper's ~21-line extension (§3.2):
// a thread-private state word recording whether the thread is in a
// critical section, transaction, fallback path, lock wait, or
// transaction-overhead code, exposed to the profiler through a query
// function. Updates inside the transaction roll back with it, so a
// post-abort handler observes the pre-transaction state, as on real
// hardware.
package rtm

import (
	"txsampler/internal/htm"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/telemetry"
)

// State word bits (paper §3.2).
const (
	// InCS: executing in a critical section.
	InCS uint32 = 1 << iota
	// InHTM: executing in a transaction path.
	InHTM
	// InFallback: executing in a fallback path.
	InFallback
	// InLockWaiting: waiting for the global lock to be available.
	InLockWaiting
	// InOverhead: initiating, retrying, or cleaning up a transaction.
	InOverhead
)

// The query functions of the profiler-facing state API (Figure 4).

// IsInCS reports whether the state word shows a critical section.
func IsInCS(s uint32) bool { return s&InCS != 0 }

// IsInFallback reports whether the state word shows the fallback path.
func IsInFallback(s uint32) bool { return s&InFallback != 0 }

// IsInLockWaiting reports whether the state word shows a lock wait.
func IsInLockWaiting(s uint32) bool { return s&InLockWaiting != 0 }

// IsInHTM reports whether the state word shows a transaction. A PMU
// handler never observes this bit set for the sampled thread — the
// interrupt's abort rolled the transactional update back — which is
// precisely why the profiler needs the LBR abort bit (Challenge I).
func IsInHTM(s uint32) bool { return s&InHTM != 0 }

// Policy controls the retry behaviour of a critical section.
type Policy struct {
	// MaxRetries bounds retries of transient (conflict/interrupt)
	// aborts before taking the fallback path. The paper's evaluation
	// uses 5.
	MaxRetries int
	// RetryOnCapacity, if set, also retries capacity aborts. The
	// paper's evaluation retries everything except persistent aborts
	// such as system calls (§7), so this defaults to true; TSX's
	// retry-bit heuristic would fall back immediately instead (see
	// the ablation benchmarks).
	RetryOnCapacity bool
	// MaxLockBusy bounds consecutive lock-busy aborts (the explicit
	// abort taken when the lock is observed held inside the
	// transaction) before giving up and falling back.
	MaxLockBusy int
	// BackoffBase is the unit of the randomized exponential backoff
	// inserted before conflict retries, in cycles. Without backoff,
	// colliding transactions retry in lockstep and cascade into the
	// fallback path (the "lemming effect"). Zero disables backoff.
	BackoffBase int

	// Adaptive enables storm shedding: when consecutive ambient aborts
	// (interrupt or spurious — aborts the application did not cause
	// and retrying cannot fix) reach StormThreshold without an
	// intervening commit, the lock concludes the machine is in a
	// transient-abort storm, sheds retries down to StormRetries, and
	// widens backoff, so threads stop burning cycles re-executing
	// doomed speculation and serialize through the fallback lock until
	// the storm passes. A commit ends storm mode.
	Adaptive bool
	// StormThreshold is the consecutive-ambient-abort count that
	// triggers storm mode. Zero means 16.
	StormThreshold int
	// StormRetries replaces MaxRetries while a storm is active. Zero
	// means 1.
	StormRetries int
}

// DefaultPolicy matches the paper's evaluation setup.
func DefaultPolicy() Policy {
	return Policy{MaxRetries: 5, RetryOnCapacity: true, MaxLockBusy: 50, BackoffBase: 30}
}

// AdaptivePolicy is DefaultPolicy plus storm shedding.
func AdaptivePolicy() Policy {
	p := DefaultPolicy()
	p.Adaptive = true
	p.StormThreshold = 16
	p.StormRetries = 1
	return p
}

func (p Policy) stormThreshold() int {
	if p.StormThreshold <= 0 {
		return 16
	}
	return p.StormThreshold
}

func (p Policy) stormRetries() int {
	if p.StormRetries <= 0 {
		return 1
	}
	return p.StormRetries
}

// Stats counts critical-section outcomes for one lock; exact ground
// truth, not sampled.
type Stats struct {
	Commits   uint64
	Fallbacks uint64
	Aborts    map[htm.Cause]uint64
	LockBusy  uint64 // explicit aborts because the lock was held

	// Adaptive-policy accounting (zero unless Policy.Adaptive).
	StormsDetected uint64 // transitions into storm mode
	StormFallbacks uint64 // fallbacks taken while a storm was active
}

// EventKind enumerates the critical-section events an instrumenting
// profiler intercepts (TSXProf's record phase, §9).
type EventKind uint8

const (
	// EventBegin: a critical section was entered.
	EventBegin EventKind = iota
	// EventCommit: a transactional attempt committed.
	EventCommit
	// EventAbort: a transactional attempt aborted.
	EventAbort
	// EventFallback: the critical section ran under the lock.
	EventFallback
)

// EventSink receives instrumentation callbacks from the RTM library.
// Each delivery costs the instrumented thread PerEventCost cycles, the
// overhead instrumentation-based tools pay per transaction instance.
type EventSink interface {
	TxEvent(t *machine.Thread, kind EventKind)
	PerEventCost() int
}

// Lock is one elidable global lock protecting a set of critical
// sections. The lock word occupies a dedicated cache line so that
// false sharing never aborts transactions through the lock itself.
type Lock struct {
	Addr   mem.Addr
	Policy Policy
	Stats  Stats

	// Sink, when set, receives begin/commit/abort/fallback events —
	// the instrumentation hook record-and-replay tools need. Nil for
	// normal (sampling-profiled or native) runs.
	Sink EventSink

	overheadCycles int // software bookkeeping burned per attempt

	// Adaptive-policy state, mutated only by the simulated threads.
	// All cross-thread reads and writes of this state (and of Stats)
	// happen inside machine.Thread.Exclusive sections, which the
	// scheduler orders at the thread's canonical position — the serial
	// scheduler's for-free ordering, made explicit so the sharded
	// scheduler preserves it.
	ambientStreak int  // consecutive ambient aborts since last commit
	storming      bool // storm mode active
}

// Storming reports whether the adaptive policy currently has retries
// shed (useful for tests and diagnostics).
func (l *Lock) Storming() bool { return l.storming }

// noteOutcome updates the adaptive storm detector after one attempt.
func (l *Lock) noteOutcome(committed bool, cause htm.Cause) {
	if !l.Policy.Adaptive {
		return
	}
	switch {
	case committed:
		// Speculation works again; restore the full retry budget.
		l.ambientStreak = 0
		l.storming = false
	case cause.Ambient():
		l.ambientStreak++
		if !l.storming && l.ambientStreak >= l.Policy.stormThreshold() {
			l.storming = true
			l.Stats.StormsDetected++
		}
	default:
		// An application-caused abort breaks the streak: the aborts
		// are explainable, not ambient noise.
		l.ambientStreak = 0
	}
}

// maxRetries returns the retry budget currently in force.
func (l *Lock) maxRetries() int {
	if l.storming {
		return l.Policy.stormRetries()
	}
	return l.Policy.MaxRetries
}

// emit delivers an instrumentation event and charges its cost.
func (l *Lock) emit(t *machine.Thread, kind EventKind) {
	if l.Sink == nil {
		return
	}
	t.Exclusive(func() { l.Sink.TxEvent(t, kind) })
	if c := l.Sink.PerEventCost(); c > 0 {
		t.Compute(c)
	}
}

// NewLock allocates a lock on machine m with the default policy.
func NewLock(m *machine.Machine) *Lock {
	return &Lock{
		Addr:           m.Mem.AllocLines(1),
		Policy:         DefaultPolicy(),
		Stats:          Stats{Aborts: make(map[htm.Cause]uint64)},
		overheadCycles: 25,
	}
}

// Run executes body as one critical section on thread t: the paper's
// TM_BEGIN(); body; TM_END(). The body runs either inside a hardware
// transaction or, after exhausting retries, under the global lock; it
// must be idempotent up to its memory writes, as any transactional
// attempt may be discarded.
//
// Like a pthread mutex, the lock is not reentrant: nesting Run on the
// SAME lock deadlocks if the outer section falls back to the lock
// (the inner elision observes the self-held lock forever). Nesting on
// distinct locks, or within machine.Attempt, flattens as TSX does.
func (l *Lock) Run(t *machine.Thread, body func()) {
	t.Func("tm_begin", func() { l.critical(t, body) })
}

func (l *Lock) critical(t *machine.Thread, body func()) {
	l.emit(t, EventBegin)
	retries, lockBusy := 0, 0
	for {
		// Transaction setup overhead (paper's T_oh component).
		t.State = InCS | InOverhead
		t.Compute(l.overheadCycles)

		// Wait for the lock to be free before starting (Figure 2).
		t.State = InCS | InLockWaiting
		waited := false
		for t.Load(l.Addr) != 0 {
			t.Compute(2)
			waited = true
		}
		if waited && l.Policy.BackoffBase > 0 {
			// Desynchronize the herd released by the lock holder.
			t.Compute(1 + t.Rand().Intn(4*l.Policy.BackoffBase))
		}

		t.State = InCS | InOverhead
		sawLockHeld := false
		abort := t.Attempt(func() {
			t.State |= InHTM // transactional update; rolls back on abort
			// Read the lock word into the read set: a fallback
			// acquisition elsewhere now aborts this transaction.
			if t.Load(l.Addr) != 0 {
				sawLockHeld = true
				t.TxAbort()
			}
			body()
		})
		if abort == nil {
			// Committed. Clean up (overhead), leave the CS.
			t.State = InCS | InOverhead
			t.Compute(l.overheadCycles)
			l.emit(t, EventCommit)
			t.State = 0
			t.Exclusive(func() {
				l.Stats.Commits++
				l.noteOutcome(true, htm.None)
			})
			return
		}

		l.emit(t, EventAbort)
		lockHeldAbort := sawLockHeld && abort.Cause == htm.Explicit
		var budget int
		var storm bool
		t.Exclusive(func() {
			l.Stats.Aborts[abort.Cause]++
			l.noteOutcome(false, abort.Cause)
			if lockHeldAbort {
				l.Stats.LockBusy++
			}
			budget = l.maxRetries()
			storm = l.storming
		})
		switch {
		case lockHeldAbort:
			lockBusy++
			if lockBusy <= l.Policy.MaxLockBusy {
				continue // wait for the lock and try again
			}
		case abort.Cause.Retryable() && retries < budget:
			retries++
			l.backoff(t, retries, storm)
			continue
		case abort.Cause == htm.Capacity && l.Policy.RetryOnCapacity && retries < budget:
			retries++
			l.backoff(t, retries, storm)
			continue
		}
		if storm {
			t.Exclusive(func() { l.Stats.StormFallbacks++ })
		}
		break // persistent abort or retries exhausted: fall back
	}

	// Fallback path: acquire the global lock. The CAS is a
	// non-transactional write to the lock line, aborting every
	// transaction that has read it — the serialization the paper's
	// T_wait measures.
	t.State = InCS | InLockWaiting
	for !t.AtomicCAS(l.Addr, 0, mem.Word(t.ID)+1) {
		for t.Load(l.Addr) != 0 {
			t.Compute(2)
		}
	}
	held := t.Clock() // lock acquired; the serialization span begins
	t.State = InCS | InFallback
	body()
	t.State = InCS | InOverhead
	t.Store(l.Addr, 0) // release
	t.TraceEvent(telemetry.Event{
		Kind: telemetry.KindSpan, TS: held, Dur: t.Clock() - held,
		TID: int32(t.ID), Name: "fallback-lock",
	})
	l.emit(t, EventFallback)
	t.State = 0
	t.Exclusive(func() { l.Stats.Fallbacks++ })
}

// backoff burns a randomized, exponentially growing pause before a
// conflict retry; the state word shows transaction overhead. storming
// is the storm flag as observed in the caller's Exclusive section.
func (l *Lock) backoff(t *machine.Thread, retries int, storming bool) {
	if l.Policy.BackoffBase <= 0 {
		return
	}
	window := l.Policy.BackoffBase << uint(retries-1)
	if storming {
		window <<= 2 // desynchronize harder while the storm lasts
	}
	t.State = InCS | InOverhead
	t.Compute(1 + t.Rand().Intn(window))
}

// RunHLE executes body with hardware lock elision semantics (paper
// §2): the lock acquisition is elided into a single transactional
// attempt whose read set contains the lock word; any abort re-executes
// the critical section under the real lock, with no retry loop —
// exactly the XACQUIRE/XRELEASE behaviour. The state word is
// maintained identically, so the profiler needs no HLE-specific code.
func (l *Lock) RunHLE(t *machine.Thread, body func()) {
	t.Func("hle_acquire", func() {
		t.State = InCS | InLockWaiting
		for t.Load(l.Addr) != 0 {
			t.Compute(2)
		}
		t.State = InCS | InOverhead
		abort := t.Attempt(func() {
			t.State |= InHTM
			if t.Load(l.Addr) != 0 {
				t.TxAbort()
			}
			body()
		})
		if abort == nil {
			t.State = 0
			t.Exclusive(func() { l.Stats.Commits++ })
			return
		}
		t.Exclusive(func() { l.Stats.Aborts[abort.Cause]++ })
		// HLE retries by grabbing the real lock immediately.
		t.State = InCS | InLockWaiting
		for !t.AtomicCAS(l.Addr, 0, mem.Word(t.ID)+1) {
			for t.Load(l.Addr) != 0 {
				t.Compute(2)
			}
		}
		t.State = InCS | InFallback
		body()
		t.State = InCS | InOverhead
		t.Store(l.Addr, 0)
		t.State = 0
		t.Exclusive(func() { l.Stats.Fallbacks++ })
	})
}

// RunLocked executes body under the global lock without attempting a
// transaction — the pure pthread-mutex baseline the paper's workloads
// were ported from.
func (l *Lock) RunLocked(t *machine.Thread, body func()) {
	t.Func("lock_acquire", func() {
		t.State = InCS | InLockWaiting
		for !t.AtomicCAS(l.Addr, 0, mem.Word(t.ID)+1) {
			for t.Load(l.Addr) != 0 {
				t.Compute(2)
			}
		}
		t.State = InCS | InFallback
		body()
		t.Store(l.Addr, 0)
		t.State = 0
	})
}
