package rtm

import (
	"testing"

	"txsampler/internal/htm"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

func TestSingleThreadCommitsTransactionally(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	l := NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 10; i++ {
			l.Run(th, func() { th.Add(a, 1) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 10 {
		t.Fatalf("counter = %d, want 10", v)
	}
	if l.Stats.Commits != 10 || l.Stats.Fallbacks != 0 {
		t.Fatalf("stats = %+v", l.Stats)
	}
}

func TestContendedCounterIsExact(t *testing.T) {
	m := machine.New(machine.Config{Threads: 8, Seed: 5})
	l := NewLock(m)
	a := m.Mem.AllocWords(1)
	const per = 100
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < per; i++ {
			l.Run(th, func() {
				v := th.Load(a)
				th.Compute(10)
				th.Store(a, v+1)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 8*per {
		t.Fatalf("counter = %d, want %d (critical sections must serialize)", v, 8*per)
	}
	if l.Stats.Aborts[htm.Conflict] == 0 {
		t.Fatal("expected conflict aborts under contention")
	}
}

func TestSyncAbortGoesStraightToFallback(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	l := NewLock(m)
	err := m.RunAll(func(th *machine.Thread) {
		l.Run(th, func() { th.Syscall("write") })
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Stats.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", l.Stats.Fallbacks)
	}
	if l.Stats.Aborts[htm.Sync] != 1 {
		t.Fatalf("sync aborts = %d, want exactly 1 (no retry of persistent aborts)", l.Stats.Aborts[htm.Sync])
	}
	// The fallback execution of the body performed the syscall without
	// a transaction, so the machine saw exactly one app abort.
	if got := m.GroundTruth().Aborts[htm.Sync]; got != 1 {
		t.Fatalf("machine sync aborts = %d, want 1", got)
	}
}

func TestCapacityAbortFallsBackWithoutRetry(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	l := NewLock(m)
	l.Policy.RetryOnCapacity = false // TSX retry-bit heuristic
	cache := m.Config().Cache
	stride := mem.Addr(mem.LineSize * cache.Sets)
	base := m.Mem.Alloc(int(stride)*(cache.Ways+2), mem.LineSize)
	err := m.RunAll(func(th *machine.Thread) {
		l.Run(th, func() {
			for i := 0; i <= cache.Ways; i++ {
				th.Store(base+mem.Addr(i)*stride, 1)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Stats.Aborts[htm.Capacity] != 1 || l.Stats.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want one capacity abort and one fallback", l.Stats)
	}
	// The fallback completed the stores.
	for i := 0; i <= cache.Ways; i++ {
		if m.Mem.Load(base+mem.Addr(i)*stride) != 1 {
			t.Fatalf("fallback lost store %d", i)
		}
	}
}

func TestRetryOnCapacityPolicy(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	l := NewLock(m)
	l.Policy.MaxRetries = 2
	cache := m.Config().Cache
	stride := mem.Addr(mem.LineSize * cache.Sets)
	base := m.Mem.Alloc(int(stride)*(cache.Ways+2), mem.LineSize)
	err := m.RunAll(func(th *machine.Thread) {
		l.Run(th, func() {
			for i := 0; i <= cache.Ways; i++ {
				th.Store(base+mem.Addr(i)*stride, 1)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Stats.Aborts[htm.Capacity] != 3 { // initial + 2 retries
		t.Fatalf("capacity aborts = %d, want 3", l.Stats.Aborts[htm.Capacity])
	}
}

func TestFallbackSerializesAgainstTransactions(t *testing.T) {
	// One thread's body always syscalls (forcing the fallback lock);
	// the other increments transactionally. The count must be exact:
	// transactions must abort while the lock is held.
	m := machine.New(machine.Config{Threads: 2, Seed: 11})
	l := NewLock(m)
	a := m.Mem.AllocWords(1)
	const per = 60
	err := m.Run(
		func(th *machine.Thread) {
			for i := 0; i < per; i++ {
				l.Run(th, func() {
					v := th.Load(a)
					th.Syscall("log")
					th.Store(a, v+1)
				})
			}
		},
		func(th *machine.Thread) {
			for i := 0; i < per; i++ {
				l.Run(th, func() {
					v := th.Load(a)
					th.Compute(30)
					th.Store(a, v+1)
				})
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 2*per {
		t.Fatalf("counter = %d, want %d", v, 2*per)
	}
	if l.Stats.Fallbacks < per {
		t.Fatalf("fallbacks = %d, want >= %d", l.Stats.Fallbacks, per)
	}
}

func TestStateWordLifecycle(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	l := NewLock(m)
	var inBody uint32
	err := m.RunAll(func(th *machine.Thread) {
		l.Run(th, func() {
			inBody = th.State
			th.Compute(1)
		})
		if th.State != 0 {
			panic("state word not cleared after critical section")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsInCS(inBody) || !IsInHTM(inBody) {
		t.Fatalf("state in transactional body = %#x, want InCS|InHTM set", inBody)
	}
	if IsInFallback(inBody) || IsInLockWaiting(inBody) {
		t.Fatalf("state in transactional body = %#x has fallback/waiting bits", inBody)
	}
}

func TestStateWordInFallback(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	l := NewLock(m)
	var states []uint32
	err := m.RunAll(func(th *machine.Thread) {
		l.Run(th, func() {
			states = append(states, th.State)
			th.Syscall("x") // first attempt aborts; second run is fallback
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 {
		t.Fatalf("body ran %d times, want 2 (tx attempt + fallback)", len(states))
	}
	if !IsInHTM(states[0]) {
		t.Fatalf("first run state = %#x, want InHTM", states[0])
	}
	if !IsInFallback(states[1]) || IsInHTM(states[1]) {
		t.Fatalf("fallback run state = %#x, want InFallback without InHTM", states[1])
	}
}

func TestConflictRetriesBounded(t *testing.T) {
	// With MaxRetries=0, any conflict abort goes straight to fallback.
	m := machine.New(machine.Config{Threads: 4, Seed: 2})
	l := NewLock(m)
	l.Policy.MaxRetries = 0
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 40; i++ {
			l.Run(th, func() {
				v := th.Load(a)
				th.Compute(20)
				th.Store(a, v+1)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 160 {
		t.Fatalf("counter = %d, want 160", v)
	}
	if l.Stats.Fallbacks == 0 {
		t.Fatal("MaxRetries=0 should produce fallbacks under contention")
	}
}

func TestRunLockedBaselineIsExact(t *testing.T) {
	m := machine.New(machine.Config{Threads: 6, Seed: 9})
	l := NewLock(m)
	a := m.Mem.AllocWords(1)
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < 50; i++ {
			l.RunLocked(th, func() {
				v := th.Load(a)
				th.Store(a, v+1)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 300 {
		t.Fatalf("counter = %d, want 300", v)
	}
	if g := m.GroundTruth(); g.Commits != 0 {
		t.Fatalf("RunLocked committed %d transactions, want 0", g.Commits)
	}
}

func TestLockBusyAbortWaitsAndRetries(t *testing.T) {
	// Thread 1 holds the fallback lock for a long body; thread 0's
	// transactions observing the held lock must eventually commit
	// (lock-busy aborts do not consume the retry budget).
	m := machine.New(machine.Config{Threads: 2, Seed: 4})
	l := NewLock(m)
	a := m.Mem.AllocWords(1)
	b := m.Mem.AllocWords(1)
	err := m.Run(
		func(th *machine.Thread) {
			th.Compute(200) // let thread 1 grab the lock
			for i := 0; i < 20; i++ {
				l.Run(th, func() { th.Add(a, 1) })
			}
		},
		func(th *machine.Thread) {
			for i := 0; i < 10; i++ {
				l.Run(th, func() {
					th.Syscall("x") // forces fallback; holds the lock a while
					th.Add(b, 1)
					th.Compute(500)
				})
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mem.Load(a) != 20 || m.Mem.Load(b) != 10 {
		t.Fatalf("a=%d b=%d, want 20,10", m.Mem.Load(a), m.Mem.Load(b))
	}
}

func TestHLECommitsAndCountsExactly(t *testing.T) {
	m := machine.New(machine.Config{Threads: 6, Seed: 3})
	l := NewLock(m)
	a := m.Mem.AllocWords(1)
	const per = 80
	err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < per; i++ {
			l.RunHLE(th, func() {
				v := th.Load(a)
				th.Compute(10)
				th.Store(a, v+1)
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Mem.Load(a); v != 6*per {
		t.Fatalf("counter = %d, want %d", v, 6*per)
	}
	if l.Stats.Commits+l.Stats.Fallbacks != 6*per {
		t.Fatalf("commits+fallbacks = %d, want %d", l.Stats.Commits+l.Stats.Fallbacks, 6*per)
	}
}

func TestHLEAbortGoesStraightToLock(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	l := NewLock(m)
	runs := 0
	err := m.RunAll(func(th *machine.Thread) {
		l.RunHLE(th, func() {
			runs++
			th.Syscall("x")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("body ran %d times, want 2 (one elided attempt, one locked)", runs)
	}
	if l.Stats.Fallbacks != 1 || m.GroundTruth().Aborts[htm.Sync] != 1 {
		t.Fatalf("stats = %+v", l.Stats)
	}
}

func TestHLEStateWord(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1})
	l := NewLock(m)
	var states []uint32
	err := m.RunAll(func(th *machine.Thread) {
		l.RunHLE(th, func() {
			states = append(states, th.State)
			th.Syscall("x")
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2 || !IsInHTM(states[0]) || !IsInFallback(states[1]) {
		t.Fatalf("states = %#x", states)
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy()
	if p.MaxRetries != 5 {
		t.Errorf("MaxRetries = %d, want 5 (paper §7)", p.MaxRetries)
	}
	if !p.RetryOnCapacity {
		t.Error("capacity aborts retry by default (the paper's policy treats only sync aborts as persistent)")
	}
}
