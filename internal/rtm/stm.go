// Word-based undo-log STM: the instrumented software slow path of the
// hybrid-TM policies. A software transaction executes the critical
// section with per-access instrumentation (machine.SoftTx hooks in
// place of compiler-inserted read/write barriers): loads record an
// (address, value) pair in a read set; stores acquire a per-word
// write lock, log the old value in an undo log, and then write memory
// eagerly. Commit validates the read set — every read word must be
// unlocked (or owned by this transaction) and still hold the value
// observed — releases the locks, and is done; abort replays the undo
// log newest-first and retries after randomized backoff.
//
// Coexistence with hardware transactions and the global lock:
//
//   - The lock's cache line carries an "active software writers" word
//     next to the lock word. A software transaction's first store
//     bumps it; hardware transactions read it at begin (free: they
//     already subscribe to that line through the lock-word check) and
//     abort while it is non-zero, so a hardware commit can never have
//     observed a software transaction's eager, unvalidated writes.
//   - Software reads and eager writes go through ordinary thread
//     memory operations, so they conflict-doom any hardware
//     transaction speculating on the same words (requester wins).
//   - Write-phase entry and the global lock mutually exclude: the
//     first software store waits for the lock word to be free before
//     raising the writer count (checked in one Exclusive step), and a
//     fallback-lock holder waits for the writer count to drain before
//     touching memory. Read-only software transactions instead check
//     the lock word during validation.
//
// Word-lock ownership, the writer count, and undo/read-set peeking at
// commit run inside machine.Thread.Exclusive sections: they model the
// STM's own metadata operations, which on real hardware are ordinary
// atomics but here must execute at the thread's canonical scheduling
// position to keep runs byte-identical. Validation is value-based and
// so shares classic value-validation ABA blindness (a word changing
// and changing back between read and commit); the machine's workloads
// are monotone counters and pointers, where ABA does not occur.
package rtm

import (
	"txsampler/internal/machine"
	"txsampler/internal/mem"
	"txsampler/internal/telemetry"
)

// HybridPolicy aliases machine.HybridPolicy so runtime-layer code and
// workloads that already import rtm need not also import machine's
// configuration surface.
type HybridPolicy = machine.HybridPolicy

// Re-exported policy values; see machine.HybridPolicy.
const (
	HybridLockOnly            = machine.HybridLockOnly
	HybridStmFallback         = machine.HybridStmFallback
	HybridSerializeOnConflict = machine.HybridSerializeOnConflict
	HybridSandboxed           = machine.HybridSandboxed
)

// Simulated costs of the instrumented path, in cycles. These model
// the per-access software overhead the profiler's "instrumentation
// overhead" metric (stm ÷ htm cycles per call path) is built to
// expose; see DESIGN.md §12.
const (
	stmBeginCost    = 20 // attempt setup: tx descriptor, hook install
	stmReadCost     = 4  // read barrier: read-set append
	stmWriteCost    = 10 // write barrier: word lock + undo log
	stmValidateCost = 3  // per read-set entry at commit
)

// stmAbortSentinel unwinds the workload body out of an aborted
// software transaction, mirroring the machine's txAbortSentinel for
// hardware aborts. It never escapes runSTM.
type stmAbortSentinel struct{}

// stmState is the software-transaction side of a Lock.
type stmState struct {
	// active is the simulated "software writers present" word,
	// allocated on the lock's own cache line (lock word + 1) so that
	// hardware transactions subscribe to it for free.
	active mem.Addr

	// owner maps a word address to the thread holding its write lock.
	// Mutated only inside Exclusive sections (see package comment).
	owner map[mem.Addr]int

	// writers counts software transactions in their write phase; the
	// Go-side authority the fallback-lock holder drains against. The
	// simulated active word mirrors it for hardware subscription.
	writers int
}

func (s *stmState) init(lockAddr mem.Addr) {
	s.active = lockAddr.Offset(1)
	s.owner = make(map[mem.Addr]int)
}

// reset drops per-run state: word locks and the writer count. The
// simulated active word lives in machine memory and starts at zero on
// every machine.
func (s *stmState) reset() {
	s.writers = 0
	if len(s.owner) > 0 {
		s.owner = make(map[mem.Addr]int)
	}
}

// stmRead is one read-set entry: the value observed at an address.
type stmRead struct {
	addr mem.Addr
	val  mem.Word
}

// stmUndo is one undo-log entry: the pre-transaction value of a word
// this transaction write-locked. The undo log doubles as the write
// set (exactly one entry per acquired word lock).
type stmUndo struct {
	addr mem.Addr
	old  mem.Word
}

// stmTx is one software-transaction attempt. It implements
// machine.SoftTx; the machine delivers the body's non-transactional
// memory accesses to it while installed.
type stmTx struct {
	l     *Lock
	t     *machine.Thread
	reads []stmRead
	undo  []stmUndo
	wrote bool // write phase entered (writer count raised)
}

// OnLoad implements machine.SoftTx: the read barrier. Conflict
// detection is lazy — a locked or since-overwritten word is caught by
// commit-time validation, not here — so the barrier is one append.
func (x *stmTx) OnLoad(a mem.Addr, v mem.Word) {
	x.reads = append(x.reads, stmRead{addr: a, val: v})
	x.t.Compute(stmReadCost)
}

// OnStore implements machine.SoftTx: the write barrier. It acquires
// the word's write lock, logs the old value, and lets the eager write
// proceed; a word locked by another transaction aborts this one.
func (x *stmTx) OnStore(a mem.Addr) {
	if !x.wrote {
		x.enterWritePhase()
	}
	t, l := x.t, x.l
	acquired, conflict := false, false
	var old mem.Word
	t.Exclusive(func() {
		own, held := l.stm.owner[a]
		switch {
		case !held:
			l.stm.owner[a] = t.ID
			old = t.Machine().Mem.Load(a) // peek for the undo log
			acquired = true
		case own != t.ID:
			conflict = true
		}
	})
	t.Compute(stmWriteCost)
	if conflict {
		panic(stmAbortSentinel{})
	}
	if acquired {
		x.undo = append(x.undo, stmUndo{addr: a, old: old})
		// Upgrade check: a read of this word recorded before the lock
		// was acquired must still match the value captured for the
		// undo log — otherwise another transaction committed between
		// read and write and this one is doomed. Commit validation
		// skips self-owned words, so staleness must be caught here
		// (reads after this point observe our own eager writes). The
		// undo entry is already appended, so rollback releases the
		// lock we just took.
		for _, r := range x.reads {
			if r.addr == a && r.val != old {
				panic(stmAbortSentinel{})
			}
		}
	}
}

// enterWritePhase raises the lock's software-writer count before the
// transaction's first eager write. The lock-word check and the count
// increment form one Exclusive step, so a fallback-lock holder can
// never interleave between them; the simulated active word is bumped
// right after, dooming every subscribed hardware transaction before
// the first dirty word becomes visible.
func (x *stmTx) enterWritePhase() {
	t, l := x.t, x.l
	for {
		entered := false
		t.Exclusive(func() {
			if t.Machine().Mem.Load(l.Addr) == 0 {
				l.stm.writers++
				entered = true
			}
		})
		if entered {
			break
		}
		// A fallback-lock holder owns memory; wait it out before
		// instrumenting writes.
		t.State = l.cs(InCS | InLockWaiting)
		t.Compute(2)
		t.State = l.cs(InCS | InSTM)
	}
	x.wrote = true
	// The active word shares the lock's cache line; its bump executes
	// under a dedicated runtime frame (no source-site annotation, like
	// tm_begin's lock-word spin) so the metadata traffic is never
	// attributed to the program site whose store triggered it.
	t.Func("stm_write_phase", func() { t.AtomicAdd(l.stm.active, 1) })
}

// validate checks the read set in one Exclusive step: every read word
// must be unlocked (or locked by this transaction, whose own eager
// write is the observed value) and still hold the value recorded by
// the read barrier. Read-only transactions additionally require the
// global lock to be free — a holder may be mid-section, and a reader
// cannot tell whether its reads straddled the holder's writes.
// Writers skip that check: write-phase entry already excluded the
// holder, and a holder spinning on the writer drain has not written.
func (x *stmTx) validate() bool {
	t, l := x.t, x.l
	t.Compute(stmValidateCost * (1 + len(x.reads)))
	ok := true
	t.Exclusive(func() {
		mm := t.Machine().Mem
		if !x.wrote && mm.Load(l.Addr) != 0 {
			ok = false
			return
		}
		for _, r := range x.reads {
			if own, held := l.stm.owner[r.addr]; held {
				if own != t.ID {
					ok = false
					return
				}
				// Own write lock: the value diverged from the read
				// because this transaction wrote it, which is fine —
				// nobody else can have touched it since.
				continue
			}
			if mm.Load(r.addr) != r.val {
				ok = false
				return
			}
		}
	})
	return ok
}

// release drops this transaction's word locks and leaves the write
// phase, keeping memory as it stands (commit). Abort paths must undo
// first.
func (x *stmTx) release() {
	t, l := x.t, x.l
	t.Exclusive(func() {
		for _, u := range x.undo {
			delete(l.stm.owner, u.addr)
		}
		if x.wrote {
			l.stm.writers--
		}
	})
	if x.wrote {
		t.Func("stm_write_phase", func() { t.AtomicAdd(l.stm.active, -1) })
	}
}

// rollback restores every written word to its pre-transaction value,
// newest first, then releases. The undo stores are ordinary thread
// stores: they conflict-doom any hardware transaction that speculated
// on a dirty value, so no hardware commit can retain one.
func (x *stmTx) rollback() {
	for i := len(x.undo) - 1; i >= 0; i-- {
		x.t.Store(x.undo[i].addr, x.undo[i].old)
	}
	x.release()
}

// runSTM executes body as an instrumented software transaction,
// retrying per policy. It returns true when an attempt committed and
// false when the slow path gave up (the caller then serializes
// through the global lock). Entered with the thread outside any
// transaction; leaves with t.State == 0 on commit.
func (l *Lock) runSTM(t *machine.Thread, body func()) bool {
	attempts := l.Policy.stmRetries()
	if l.Hybrid == HybridSerializeOnConflict {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		t.State = l.cs(InCS | InOverhead)
		t.Compute(stmBeginCost)
		begin := t.Clock()
		t.TraceEvent(telemetry.Event{
			Kind: telemetry.KindInstant, TS: begin,
			TID: int32(t.ID), Name: "stm-begin",
		})
		x := &stmTx{l: l, t: t}
		t.State = l.cs(InCS | InSTM)
		t.SetSoftTx(x)
		aborted := runSTMBody(t, x, body)
		t.SetSoftTx(nil)
		if !aborted {
			vstart := t.Clock()
			committed := x.validate()
			t.TraceEvent(telemetry.Event{
				Kind: telemetry.KindSpan, TS: vstart, Dur: t.Clock() - vstart,
				TID: int32(t.ID), Name: "stm-validate",
			})
			if committed {
				x.release()
				t.State = l.cs(InCS | InOverhead)
				t.Compute(l.overheadCycles)
				t.TraceEvent(telemetry.Event{
					Kind: telemetry.KindSpan, TS: begin, Dur: t.Clock() - begin,
					TID: int32(t.ID), Name: "stm-commit",
				})
				l.emit(t, EventFallback) // the section ran non-speculatively
				t.State = 0
				t.Exclusive(func() { l.Stats.StmCommits++ })
				return true
			}
			x.rollback()
		} else {
			x.rollback()
		}
		t.TraceEvent(telemetry.Event{
			Kind: telemetry.KindInstant, TS: t.Clock(),
			TID: int32(t.ID), Name: "stm-abort",
		})
		t.Exclusive(func() { l.Stats.StmAborts++ })
		if attempt+1 < attempts && l.Policy.BackoffBase > 0 {
			t.State = l.cs(InCS | InOverhead)
			t.Compute(1 + t.Rand().Intn(l.Policy.BackoffBase<<uint(attempt)))
		}
	}
	t.Exclusive(func() { l.Stats.StmFallbacks++ })
	return false
}

// runSTMBody runs the body with the interposer installed, recovering
// the STM abort sentinel. Hook state is re-armed by the caller's
// SetSoftTx(nil) even when the sentinel unwound mid-hook.
func runSTMBody(t *machine.Thread, x *stmTx, body func()) (aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(stmAbortSentinel); ok {
				aborted = true
				// Uninstall before the caller's rollback stores so
				// the undo replay is not itself instrumented.
				t.SetSoftTx(nil)
				return
			}
			panic(r)
		}
	}()
	body()
	return false
}

// waitQuiesce spins the fallback-lock holder until software write
// phases drain. New software writers wait on the (now held) lock
// word, so the count is monotone non-increasing here.
func (l *Lock) waitQuiesce(t *machine.Thread) {
	for {
		writers := 0
		t.Exclusive(func() { writers = l.stm.writers })
		if writers == 0 {
			return
		}
		t.Compute(2)
	}
}
