package rtm

// Software-transaction slow path: undo-log mechanics, commit-time
// validation against racing writers, policy escalation, and the
// per-run reset of adaptive storm state when a Lock is reused.

import (
	"testing"

	"txsampler/internal/htm"
	"txsampler/internal/machine"
	"txsampler/internal/mem"
)

// forceSlowPath returns a body wrapper whose hardware attempt always
// aborts persistently (a system call is Sync, non-retryable), so the
// critical section goes straight to the configured slow path.
func forceSlowPath(t *machine.Thread, body func()) func() {
	return func() {
		t.Syscall("stm_test")
		body()
	}
}

func TestSTMAbortRestoresPreTxWords(t *testing.T) {
	m := machine.New(machine.Config{Threads: 1, Seed: 1, Hybrid: machine.HybridStmFallback})
	l := NewLock(m)
	a := m.Mem.AllocLines(1)
	b := m.Mem.AllocLines(1)
	m.Mem.Store(a, 100)
	m.Mem.Store(b, 200)

	if err := m.RunAll(func(th *machine.Thread) {
		x := &stmTx{l: l, t: th}
		th.State = InCS | InSTM
		th.SetSoftTx(x)
		th.Store(a, 7)
		th.Store(b, 9)
		th.Store(a, 8) // second write to a: only the first logs undo
		th.SetSoftTx(nil)
		if got := th.Load(a); got != 8 {
			t.Errorf("eager write not visible: a = %d, want 8", got)
		}
		if !x.wrote || len(x.undo) != 2 {
			t.Errorf("write phase: wrote=%v undo=%d, want true/2", x.wrote, len(x.undo))
		}
		x.rollback()
		th.State = 0
		if got := th.Load(a); got != 100 {
			t.Errorf("rollback left a = %d, want 100", got)
		}
		if got := th.Load(b); got != 200 {
			t.Errorf("rollback left b = %d, want 200", got)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(l.stm.owner) != 0 {
		t.Errorf("rollback leaked %d word locks", len(l.stm.owner))
	}
	if l.stm.writers != 0 {
		t.Errorf("rollback left writer count %d", l.stm.writers)
	}
	if got := m.Mem.Load(l.stm.active); got != 0 {
		t.Errorf("active word %d after rollback, want 0", got)
	}
}

// TestSTMValidationDetectsRacingWriter runs a software transaction
// whose read races a plain store from another thread: the first
// attempt must fail validation, undo its eager write exactly once,
// and the retry must observe the new value.
func TestSTMValidationDetectsRacingWriter(t *testing.T) {
	m := machine.New(machine.Config{Threads: 2, Seed: 3, Hybrid: machine.HybridStmFallback})
	l := NewLock(m)
	x := m.Mem.AllocLines(1) // raced word
	y := m.Mem.AllocLines(1) // counter proving exactly-once
	z := m.Mem.AllocLines(1) // copy of the raced word as read

	bodies := []func(*machine.Thread){
		func(th *machine.Thread) {
			l.Run(th, forceSlowPath(th, func() {
				v := th.Load(x)
				th.Compute(5000) // hold the read window open
				th.Store(y, th.Load(y)+1)
				th.Store(z, v)
			}))
		},
		func(th *machine.Thread) {
			th.Compute(1000)
			th.Store(x, 42) // racing non-CS writer
		},
	}
	if err := m.Run(bodies...); err != nil {
		t.Fatal(err)
	}
	if l.Stats.StmAborts == 0 {
		t.Fatalf("racing writer not detected: %+v", l.Stats)
	}
	if l.Stats.StmCommits != 1 {
		t.Fatalf("StmCommits = %d, want 1 (%+v)", l.Stats.StmCommits, l.Stats)
	}
	if got := m.Mem.Load(y); got != 1 {
		t.Errorf("counter ran %d times, want exactly once (undo failed?)", got)
	}
	if got := m.Mem.Load(z); got != 42 {
		t.Errorf("retry read stale value %d, want 42", got)
	}
}

// TestSerializeOnConflictEscalates: with the serialize-on-conflict
// policy the first software-side conflict must take the global lock
// instead of retrying the STM.
func TestSerializeOnConflictEscalates(t *testing.T) {
	m := machine.New(machine.Config{Threads: 2, Seed: 3, Hybrid: machine.HybridSerializeOnConflict})
	l := NewLock(m)
	x := m.Mem.AllocLines(1)
	y := m.Mem.AllocLines(1)

	bodies := []func(*machine.Thread){
		func(th *machine.Thread) {
			l.Run(th, forceSlowPath(th, func() {
				v := th.Load(x)
				th.Compute(5000)
				th.Store(y, v+th.Load(y)+1)
			}))
		},
		func(th *machine.Thread) {
			th.Compute(1000)
			th.Store(x, 42)
		},
	}
	if err := m.Run(bodies...); err != nil {
		t.Fatal(err)
	}
	if l.Stats.StmAborts != 1 || l.Stats.StmCommits != 0 {
		t.Fatalf("expected exactly one STM abort then escalation: %+v", l.Stats)
	}
	if l.Stats.StmFallbacks != 1 || l.Stats.Fallbacks != 1 {
		t.Fatalf("conflict did not serialize through the lock: %+v", l.Stats)
	}
	if got := m.Mem.Load(y); got != 43 {
		t.Errorf("lock path result %d, want 43", got)
	}
}

// TestSTMCommitsUnderContention drives all threads through the STM
// slow path on a shared counter and requires exactly-once semantics
// plus a complete Stats ledger.
func TestSTMCommitsUnderContention(t *testing.T) {
	const threads, iters = 4, 50
	m := machine.New(machine.Config{Threads: threads, Seed: 7, Hybrid: machine.HybridStmFallback})
	l := NewLock(m)
	ctr := m.Mem.AllocLines(1)
	if err := m.RunAll(func(th *machine.Thread) {
		for i := 0; i < iters; i++ {
			l.Run(th, forceSlowPath(th, func() {
				th.Add(ctr, 1)
				th.Compute(20)
			}))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Load(ctr); got != threads*iters {
		t.Fatalf("counter = %d, want %d", got, threads*iters)
	}
	total := l.Stats.Commits + l.Stats.Fallbacks + l.Stats.StmCommits
	if total != threads*iters {
		t.Fatalf("CS ledger %d != %d: %+v", total, threads*iters, l.Stats)
	}
	if l.Stats.StmCommits == 0 {
		t.Fatalf("no software commits on a forced slow path: %+v", l.Stats)
	}
	if len(l.stm.owner) != 0 || l.stm.writers != 0 {
		t.Fatalf("STM metadata leaked: owner=%d writers=%d", len(l.stm.owner), l.stm.writers)
	}
	if got := m.Mem.Load(l.stm.active); got != 0 {
		t.Fatalf("active word %d after run, want 0", got)
	}
}

// TestHybridRunsAreSeedDeterministic: same seed, same policy →
// byte-identical ground truth and stats.
func TestHybridRunsAreSeedDeterministic(t *testing.T) {
	for _, h := range []HybridPolicy{HybridStmFallback, HybridSerializeOnConflict, HybridSandboxed} {
		run := func() (mem.Word, Stats, machine.GroundTruth) {
			m := machine.New(machine.Config{Threads: 4, Seed: 13, Hybrid: h})
			l := NewLock(m)
			ctr := m.Mem.AllocLines(1)
			if err := m.RunAll(func(th *machine.Thread) {
				for i := 0; i < 40; i++ {
					l.Run(th, func() {
						th.Add(ctr, 1)
						th.Compute(25)
					})
				}
			}); err != nil {
				t.Fatal(err)
			}
			return m.Mem.Load(ctr), l.Stats, m.GroundTruth()
		}
		v1, s1, g1 := run()
		v2, s2, g2 := run()
		if v1 != v2 || v1 != 160 {
			t.Fatalf("%v: counters %d vs %d, want 160", h, v1, v2)
		}
		if s1.Commits != s2.Commits || s1.StmCommits != s2.StmCommits ||
			s1.Fallbacks != s2.Fallbacks || s1.StmAborts != s2.StmAborts {
			t.Fatalf("%v: stats diverged: %+v vs %+v", h, s1, s2)
		}
		if g1.Commits != g2.Commits || len(g1.Aborts) != len(g2.Aborts) {
			t.Fatalf("%v: ground truth diverged: %+v vs %+v", h, g1, g2)
		}
		for c, n := range g1.Aborts {
			if g2.Aborts[c] != n {
				t.Fatalf("%v: abort cause %v diverged: %d vs %d", h, c, n, g2.Aborts[c])
			}
		}
	}
}

// TestStormStateResetsAcrossRuns is the regression test for stale
// adaptive state: a Lock reused on a second machine must not carry
// storm mode (and so misattribute StormFallbacks) from the first run.
func TestStormStateResetsAcrossRuns(t *testing.T) {
	mkMachine := func() *machine.Machine {
		return machine.New(machine.Config{Threads: 1, Seed: 5})
	}
	m1 := mkMachine()
	l := NewLock(m1)
	l.Policy = AdaptivePolicy()
	// Drive the detector into storm mode as a run full of ambient
	// aborts would.
	for i := 0; i < l.Policy.stormThreshold(); i++ {
		l.noteOutcome(false, htm.Spurious)
	}
	if !l.Storming() {
		t.Fatal("setup: storm not active")
	}

	// Reuse the same Lock on a fresh machine (same deterministic
	// allocator, so the lock line address is valid there too). The
	// body aborts persistently, forcing the fallback path; with stale
	// storm state every one of these fallbacks would be counted as a
	// storm fallback.
	m2 := mkMachine()
	if got := m2.Mem.AllocLines(1); got != l.Addr {
		t.Fatalf("allocator mismatch: %v vs %v", got, l.Addr)
	}
	if err := m2.RunAll(func(th *machine.Thread) {
		l.Run(th, forceSlowPath(th, func() { th.Compute(10) }))
	}); err != nil {
		t.Fatal(err)
	}
	if l.Storming() {
		t.Fatal("storm state survived into the second run")
	}
	if l.Stats.StormFallbacks != 0 {
		t.Fatalf("stale storm state misattributed %d fallbacks", l.Stats.StormFallbacks)
	}
	if l.Stats.Fallbacks != 1 {
		t.Fatalf("fallback ledger %+v, want exactly one", l.Stats)
	}

	// ResetRun is the manual form of the same reset.
	l.storming, l.ambientStreak = true, 99
	l.stm.owner[l.Addr] = 1
	l.stm.writers = 2
	l.ResetRun()
	if l.Storming() || l.ambientStreak != 0 || len(l.stm.owner) != 0 || l.stm.writers != 0 {
		t.Fatalf("ResetRun left state: storming=%v streak=%d owner=%d writers=%d",
			l.Storming(), l.ambientStreak, len(l.stm.owner), l.stm.writers)
	}
}
