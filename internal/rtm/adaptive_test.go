package rtm

// Adaptive policy: under a storm of ambient aborts (spurious machine
// noise the application cannot fix by retrying), the lock must detect
// the storm, shed its retry budget, and recover once commits resume.

import (
	"testing"

	"txsampler/internal/faults"
	"txsampler/internal/htm"
	"txsampler/internal/machine"
)

func TestAdaptivePolicyDefaults(t *testing.T) {
	p := AdaptivePolicy()
	if !p.Adaptive || p.stormThreshold() != 16 || p.stormRetries() != 1 {
		t.Fatalf("unexpected adaptive defaults: %+v", p)
	}
	if d := DefaultPolicy(); d.Adaptive {
		t.Fatal("DefaultPolicy must not enable storm shedding")
	}
}

func TestStormDetectorStateMachine(t *testing.T) {
	l := &Lock{Policy: AdaptivePolicy()}
	l.Policy.StormThreshold = 3
	for i := 0; i < 2; i++ {
		l.noteOutcome(false, htm.Spurious)
	}
	if l.Storming() {
		t.Fatal("storm declared below threshold")
	}
	// An application-caused abort breaks the ambient streak.
	l.noteOutcome(false, htm.Conflict)
	l.noteOutcome(false, htm.Spurious)
	l.noteOutcome(false, htm.Interrupt)
	if l.Storming() {
		t.Fatal("streak not reset by application abort")
	}
	l.noteOutcome(false, htm.Spurious)
	if !l.Storming() || l.Stats.StormsDetected != 1 {
		t.Fatalf("storm not detected at threshold: storming=%v stats=%+v", l.Storming(), l.Stats)
	}
	if got := l.maxRetries(); got != 1 {
		t.Fatalf("retry budget in storm = %d, want 1", got)
	}
	// A commit ends the storm and restores the budget.
	l.noteOutcome(true, htm.None)
	if l.Storming() || l.maxRetries() != l.Policy.MaxRetries {
		t.Fatal("commit did not end storm mode")
	}
}

func TestAdaptiveLockShedsRetriesUnderSpuriousStorm(t *testing.T) {
	run := func(policy Policy) (machine.GroundTruth, Stats) {
		m := machine.New(machine.Config{
			Threads: 2,
			Seed:    11,
			Faults:  faults.Plan{SpuriousAbortRate: 0.25},
		})
		l := NewLock(m)
		l.Policy = policy
		ctr := m.Mem.AllocLines(1)
		if err := m.RunAll(func(th *machine.Thread) {
			for i := 0; i < 250; i++ {
				l.Run(th, func() {
					th.Add(ctr, 1)
					th.Compute(30)
				})
			}
		}); err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return m.GroundTruth(), l.Stats
	}

	_, adaptive := run(AdaptivePolicy())
	if adaptive.StormsDetected == 0 {
		t.Fatalf("no storms detected under 25%% spurious abort rate: %+v", adaptive)
	}
	if adaptive.StormFallbacks == 0 {
		t.Fatalf("storms detected but no retries shed into fallback: %+v", adaptive)
	}
	gDefault, stDefault := run(DefaultPolicy())
	if stDefault.StormsDetected != 0 || stDefault.StormFallbacks != 0 {
		t.Fatalf("non-adaptive policy recorded storm stats: %+v", stDefault)
	}
	// Shedding must trade retries for fallbacks, not lose work: both
	// policies complete all 500 critical sections.
	if adaptive.Commits+adaptive.Fallbacks != 500 || stDefault.Commits+stDefault.Fallbacks != 500 {
		t.Fatalf("critical sections lost: adaptive=%+v default=%+v", adaptive, stDefault)
	}
	// The default policy burns its full retry budget on ambient aborts;
	// the adaptive one gives up sooner, so it retries spurious aborts
	// fewer times in total.
	if adaptive.Aborts[htm.Spurious] >= stDefault.Aborts[htm.Spurious] {
		t.Fatalf("adaptive policy did not shed spurious retries: adaptive=%d default=%d",
			adaptive.Aborts[htm.Spurious], stDefault.Aborts[htm.Spurious])
	}
	_ = gDefault
}
