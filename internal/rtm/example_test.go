package rtm_test

import (
	"fmt"

	"txsampler/internal/machine"
	"txsampler/internal/rtm"
)

// ExampleLock_Run shows the paper's TM_BEGIN/TM_END idiom: four
// threads increment a shared counter inside elided critical sections;
// the total is exact regardless of aborts and fallbacks.
func ExampleLock_Run() {
	m := machine.New(machine.Config{Threads: 4, Seed: 1})
	lock := rtm.NewLock(m)
	counter := m.Mem.AllocWords(1)

	err := m.RunAll(func(t *machine.Thread) {
		for i := 0; i < 25; i++ {
			lock.Run(t, func() {
				v := t.Load(counter)
				t.Compute(5)
				t.Store(counter, v+1)
			})
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("counter:", m.Mem.Load(counter))
	fmt.Println("exact:", lock.Stats.Commits+lock.Stats.Fallbacks == 100)
	// Output:
	// counter: 100
	// exact: true
}

// ExampleLock_RunHLE demonstrates hardware lock elision: the same
// serialization guarantee with single-attempt elision.
func ExampleLock_RunHLE() {
	m := machine.New(machine.Config{Threads: 2, Seed: 1})
	lock := rtm.NewLock(m)
	counter := m.Mem.AllocWords(1)
	if err := m.RunAll(func(t *machine.Thread) {
		for i := 0; i < 10; i++ {
			lock.RunHLE(t, func() { t.Add(counter, 1) })
		}
	}); err != nil {
		panic(err)
	}
	fmt.Println("counter:", m.Mem.Load(counter))
	// Output:
	// counter: 20
}
