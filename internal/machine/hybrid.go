package machine

import (
	"fmt"
	"strings"
)

// HybridPolicy selects the slow path a hybrid TM runtime takes when
// hardware speculation fails: the classic global fallback lock alone,
// or an instrumented software-transaction path with different
// coexistence rules. The zero value is HybridLockOnly, the paper's
// original configuration; every other policy layers the rtm package's
// word-based undo-log STM between retry exhaustion and the lock.
type HybridPolicy int

const (
	// HybridLockOnly: exhausted transactions serialize through the
	// global fallback lock; no software transactions run. This is the
	// paper's configuration and the default.
	HybridLockOnly HybridPolicy = iota
	// HybridStmFallback: exhausted transactions first retry as
	// software transactions (word-granular write locks, value
	// validation) and only take the global lock when the STM also
	// aborts repeatedly. Hardware transactions wait for software
	// writers to drain before starting.
	HybridStmFallback
	// HybridSerializeOnConflict: like HybridStmFallback, but the first
	// software-side conflict escalates straight to the global lock
	// instead of retrying the STM — trading instrumented retries for
	// serialization.
	HybridSerializeOnConflict
	// HybridSandboxed: like HybridStmFallback, but hardware
	// transactions do not wait for software writers to drain before
	// speculating; they start immediately and rely on the in-tx
	// subscription check to abort when a software writer is active,
	// burning speculative attempts instead of waiting.
	HybridSandboxed

	numHybridPolicies
)

var hybridNames = [...]string{
	HybridLockOnly:            "lock-only",
	HybridStmFallback:         "stm-fallback",
	HybridSerializeOnConflict: "serialize-on-conflict",
	HybridSandboxed:           "sandboxed",
}

// String returns the flag spelling of the policy.
func (h HybridPolicy) String() string {
	if h < 0 || int(h) >= len(hybridNames) {
		return fmt.Sprintf("HybridPolicy(%d)", int(h))
	}
	return hybridNames[h]
}

// Valid reports whether h is a defined policy.
func (h HybridPolicy) Valid() bool { return h >= 0 && h < numHybridPolicies }

// HybridPolicies lists every defined policy in flag spelling, for CLI
// usage strings.
func HybridPolicies() []string {
	out := make([]string, len(hybridNames))
	copy(out, hybridNames[:])
	return out
}

// ParseHybridPolicy parses a flag spelling ("lock-only",
// "stm-fallback", "serialize-on-conflict", "sandboxed").
func ParseHybridPolicy(s string) (HybridPolicy, error) {
	for i, name := range hybridNames {
		if s == name {
			return HybridPolicy(i), nil
		}
	}
	return 0, fmt.Errorf("machine: unknown hybrid policy %q (want one of %s)",
		s, strings.Join(HybridPolicies(), ", "))
}
