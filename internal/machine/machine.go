// Package machine implements the simulated multicore machine that HTM
// workloads execute on: cores with private L1 caches, a TSX-like
// transaction engine, per-thread PMU counters whose overflows deliver
// interrupts (aborting in-flight transactions), per-core LBR buffers,
// and architectural call stacks that roll back on abort.
//
// Simulated threads are real goroutines driven in lockstep by a
// deterministic scheduler: every operation is a rendezvous, and the
// scheduler always advances the runnable thread with the smallest
// local cycle clock, so the global interleaving is a total order over
// simulated time, reproducible for a given seed and workload.
package machine

import (
	"fmt"
	"sort"

	"txsampler/internal/cache"
	"txsampler/internal/htm"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
)

// Costs is the cycle cost model for non-memory operations. Memory
// operation latencies come from the cache hierarchy.
type Costs struct {
	Compute uint64 // one unit of Compute(n)
	Call    uint64 // call instruction
	Return  uint64 // return instruction
	Syscall uint64 // kernel round trip
	TxBegin uint64 // XBEGIN
	TxEnd   uint64 // XEND
	TxAbort uint64 // hardware rollback penalty
	Atomic  uint64 // extra cost of a locked RMW over a plain store
}

// DefaultCosts returns a cost model with plausible relative magnitudes
// (absolute values are arbitrary; only shapes matter).
func DefaultCosts() Costs {
	return Costs{Compute: 1, Call: 2, Return: 2, Syscall: 400, TxBegin: 45, TxEnd: 30, TxAbort: 150, Atomic: 20}
}

// Config describes a machine.
type Config struct {
	Threads int          // number of simulated threads; one core each
	Cache   cache.Config // zero value → cache.DefaultConfig()
	// MaxReadLines bounds the HTM read set (see htm.Config).
	MaxReadLines int
	LBRDepth     int   // 0 → 16 (Haswell/Broadwell, paper §3.1)
	Costs        Costs // zero value → DefaultCosts()
	Seed         int64 // workload PRNG seed

	// Periods enables PMU sampling when any entry is non-zero. With
	// the zero value the machine runs "native": no interrupts, no
	// profiling perturbation.
	Periods pmu.Periods
	// HandlerCost is charged to a thread's clock for each delivered
	// sample, modelling the profiler's signal handler (0 → 200).
	HandlerCost uint64
	// StartSkew randomizes each thread's initial clock in [0,
	// StartSkew) cycles, modelling thread-creation skew. Zero starts
	// all threads at cycle 0.
	StartSkew uint64
	// MemPenalty adds a fixed cost to every Load and Store, modelling
	// per-access software instrumentation (the STM-style replay of
	// record-and-replay profilers, §9).
	MemPenalty uint64
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Cache == (cache.Config{}) {
		c.Cache = cache.DefaultConfig()
	}
	if c.LBRDepth == 0 {
		c.LBRDepth = 16
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
	if c.HandlerCost == 0 {
		c.HandlerCost = 200
	}
	return c
}

// Sampling reports whether any PMU event is enabled.
func (c Config) Sampling() bool {
	for _, p := range c.Periods {
		if p != 0 {
			return true
		}
	}
	return false
}

// SampleHandler receives PMU samples. Implemented by the TxSampler
// collector. Handlers run logically inside the interrupted thread; the
// machine charges HandlerCost cycles per delivery.
type SampleHandler interface {
	HandleSample(s *Sample)
}

// Machine is one simulated multicore system.
type Machine struct {
	cfg     Config
	Mem     *mem.Memory
	Caches  *cache.Hierarchy
	HTM     *htm.Engine
	threads []*Thread
	handler SampleHandler

	ran bool
}

// New constructs a machine. The configuration is validated and
// defaulted; see Config.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	if cfg.Threads < 1 || cfg.Threads > 64 {
		panic(fmt.Sprintf("machine: thread count %d out of range [1,64]", cfg.Threads))
	}
	m := &Machine{
		cfg:    cfg,
		Mem:    mem.NewMemory(),
		Caches: cache.New(cfg.Threads, cfg.Cache),
		HTM: htm.NewEngine(htm.Config{
			Sets: cfg.Cache.Sets, Ways: cfg.Cache.Ways, MaxReadLines: cfg.MaxReadLines,
		}),
	}
	for i := 0; i < cfg.Threads; i++ {
		m.threads = append(m.threads, newThread(m, i))
	}
	return m
}

// Config returns the (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetHandler installs the PMU sample handler. Must be called before
// Run.
func (m *Machine) SetHandler(h SampleHandler) { m.handler = h }

// Thread returns thread i, for pre-Run configuration by tests.
func (m *Machine) Thread(i int) *Thread { return m.threads[i] }

// Run executes one body per configured thread to completion and
// returns the first workload panic as an error (simulated aborts are
// handled internally and never escape). Run may be called once.
func (m *Machine) Run(bodies ...func(*Thread)) error {
	if m.ran {
		panic("machine: Run called twice")
	}
	m.ran = true
	if len(bodies) != m.cfg.Threads {
		panic(fmt.Sprintf("machine: %d bodies for %d threads", len(bodies), m.cfg.Threads))
	}
	for i, t := range m.threads {
		go t.main(bodies[i])
	}
	return m.schedule()
}

// RunAll is a convenience that runs the same body on every thread.
func (m *Machine) RunAll(body func(*Thread)) error {
	bodies := make([]func(*Thread), m.cfg.Threads)
	for i := range bodies {
		bodies[i] = body
	}
	return m.Run(bodies...)
}

// schedule drives all threads: repeatedly grant one operation to the
// live thread with the smallest clock (ties broken by thread ID).
func (m *Machine) schedule() error {
	live := make([]*Thread, len(m.threads))
	copy(live, m.threads)
	for len(live) > 0 {
		t := live[0]
		for _, c := range live[1:] {
			if c.clock < t.clock {
				t = c
			}
		}
		t.resume <- struct{}{}
		msg := <-t.yield
		if msg.done {
			if msg.panicked != nil {
				// Fail fast: the dead thread may hold a spin lock
				// other threads wait on forever. Remaining thread
				// goroutines stay parked and are collected with the
				// machine.
				return fmt.Errorf("machine: thread %d panicked: %v", t.ID, msg.panicked)
			}
			for i, c := range live {
				if c == t {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
	}
	return nil
}

// Elapsed returns the makespan: the largest thread clock.
func (m *Machine) Elapsed() uint64 {
	var max uint64
	for _, t := range m.threads {
		if t.clock > max {
			max = t.clock
		}
	}
	return max
}

// TotalCycles returns the sum of all thread clocks (the paper's "work"
// W measured exactly, rather than by sampling).
func (m *Machine) TotalCycles() uint64 {
	var sum uint64
	for _, t := range m.threads {
		sum += t.clock
	}
	return sum
}

// GroundTruth aggregates the machine's exact instrumentation, the
// reference TxSampler's profiles are validated against (paper §7.2).
type GroundTruth struct {
	Commits          uint64
	Aborts           map[htm.Cause]uint64 // application aborts by cause
	PerThreadCommits []uint64
	PerThreadAborts  []uint64
}

// GroundTruth returns exact per-machine transaction statistics.
func (m *Machine) GroundTruth() GroundTruth {
	g := GroundTruth{Aborts: make(map[htm.Cause]uint64)}
	for _, t := range m.threads {
		g.Commits += t.commits
		g.PerThreadCommits = append(g.PerThreadCommits, t.commits)
		var aborts uint64
		for c, n := range t.aborts {
			if n > 0 {
				g.Aborts[htm.Cause(c)] += n
				aborts += n
			}
		}
		g.PerThreadAborts = append(g.PerThreadAborts, aborts)
	}
	return g
}

// AbortCauses returns the causes seen, sorted for stable output.
func (g GroundTruth) AbortCauses() []htm.Cause {
	out := make([]htm.Cause, 0, len(g.Aborts))
	for c := range g.Aborts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
