// Package machine implements the simulated multicore machine that HTM
// workloads execute on: cores with private L1 caches, a TSX-like
// transaction engine, per-thread PMU counters whose overflows deliver
// interrupts (aborting in-flight transactions), per-core LBR buffers,
// and architectural call stacks that roll back on abort.
//
// Simulated threads are real goroutines driven one at a time by a
// deterministic run-quantum scheduler: exactly one thread holds the
// baton and executes operations inline while the per-op schedule
// provably would keep selecting it (its clock stays below every other
// live thread's clock, frozen at grant time), rendezvousing with the
// scheduler only when it would lose that race or its quantum expires.
// The resulting interleaving is the same total order over simulated
// time the per-op scheduler (Quantum=1) produces — always advance the
// runnable thread with the smallest local cycle clock — reproducible
// for a given seed and workload, independent of the quantum.
package machine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"txsampler/internal/cache"
	"txsampler/internal/faults"
	"txsampler/internal/htm"
	"txsampler/internal/mem"
	"txsampler/internal/pmem"
	"txsampler/internal/pmu"
	"txsampler/internal/telemetry"
)

// Costs is the cycle cost model for non-memory operations. Memory
// operation latencies come from the cache hierarchy.
type Costs struct {
	Compute uint64 // one unit of Compute(n)
	Call    uint64 // call instruction
	Return  uint64 // return instruction
	Syscall uint64 // kernel round trip
	TxBegin uint64 // XBEGIN
	TxEnd   uint64 // XEND
	TxAbort uint64 // hardware rollback penalty
	Atomic  uint64 // extra cost of a locked RMW over a plain store
}

// DefaultCosts returns a cost model with plausible relative magnitudes
// (absolute values are arbitrary; only shapes matter).
func DefaultCosts() Costs {
	return Costs{Compute: 1, Call: 2, Return: 2, Syscall: 400, TxBegin: 45, TxEnd: 30, TxAbort: 150, Atomic: 20}
}

// DefaultQuantum is the run-quantum applied when Config.Quantum is
// zero: the most operations one thread may execute between scheduler
// rendezvous. The horizon rule already forces a rendezvous whenever
// another thread could be due, so the quantum only bounds how long the
// watchdog's progress counter and status snapshots can go stale; it
// does not affect the schedule.
const DefaultQuantum = 4096

// SchedMode selects the cross-thread coordination strategy.
type SchedMode int

const (
	// SchedAuto picks the sharded scheduler except where the serial
	// one is required: Quantum=1 (the per-op debug schedule) and
	// tracing (run-slice tenures only exist serially).
	SchedAuto SchedMode = iota
	// SchedSerial is the baton scheduler: one thread runs at a time,
	// handing off through a mutex/condvar rendezvous.
	SchedSerial
	// SchedSharded is the lock-free scheduler: threads run in
	// parallel, publishing per-thread atomic epoch clocks; operations
	// on shared state gate on a min-clock scan so every shared effect
	// executes in the canonical (clock, ID) order. The schedule — and
	// every profile built from it — is byte-identical to SchedSerial.
	// See sched_sharded.go and DESIGN.md §3.2.
	SchedSharded
)

// Config describes a machine.
type Config struct {
	Threads int          // number of simulated threads; one core each
	Cache   cache.Config // zero value → cache.DefaultConfig()
	// MaxReadLines bounds the HTM read set (see htm.Config).
	MaxReadLines int
	LBRDepth     int   // 0 → 16 (Haswell/Broadwell, paper §3.1)
	Costs        Costs // zero value → DefaultCosts()
	Seed         int64 // workload PRNG seed

	// Periods enables PMU sampling when any entry is non-zero. With
	// the zero value the machine runs "native": no interrupts, no
	// profiling perturbation.
	Periods pmu.Periods
	// HandlerCost is charged to a thread's clock for each delivered
	// sample, modelling the profiler's signal handler (0 → 200).
	HandlerCost uint64
	// StartSkew randomizes each thread's initial clock in [0,
	// StartSkew) cycles, modelling thread-creation skew. Zero starts
	// all threads at cycle 0.
	StartSkew uint64
	// MemPenalty adds a fixed cost to every Load and Store, modelling
	// per-access software instrumentation (the STM-style replay of
	// record-and-replay profilers, §9).
	MemPenalty uint64

	// Faults configures deterministic fault injection (spurious
	// aborts, PMU sample loss, LBR corruption, stalls, storms). The
	// zero plan injects nothing; see the faults package.
	Faults faults.Plan

	// Pmem configures the simulated persistent-memory tier: a persist
	// domain behind the volatile memory, eager undo logging on
	// transactional stores to tracked regions, and flush/fence/commit
	// persistence costs. Disabled (the zero value), the machine has no
	// persist domain and behaves bit-identically to earlier versions;
	// see the pmem package.
	Pmem pmem.Config

	// Watchdog bounds the real time the scheduler waits without any
	// thread completing an operation before declaring the machine
	// deadlocked and failing with a per-thread diagnostic dump
	// instead of hanging forever. Zero selects the 30s default;
	// negative disables the watchdog.
	Watchdog time.Duration
	// MaxCycles bounds simulated time: once the slowest live thread's
	// clock exceeds it, the scheduler declares livelock and fails
	// with a diagnostic dump. Zero means unbounded.
	MaxCycles uint64

	// Quantum bounds the operations one thread executes between
	// scheduler rendezvous. Zero selects DefaultQuantum; 1 forces a
	// rendezvous after every operation (the per-op debug schedule).
	// The schedule itself is quantum-invariant; see DESIGN.md.
	Quantum int

	// Sched selects the scheduler (see SchedMode). The default,
	// SchedAuto, runs the sharded parallel scheduler unless Quantum=1
	// or a Trace is attached, which require the serial one;
	// SchedSharded with a Trace likewise falls back to serial. Both
	// schedulers produce byte-identical schedules and profiles — the
	// knob exists for A/B benchmarking and the equivalence tests.
	Sched SchedMode

	// Trace, when non-nil, records scheduler baton tenures,
	// transaction regions (with abort causes), and PMU interrupt
	// deliveries, timestamped with virtual cycle clocks — the trace
	// content is deterministic for a seed and invariant to Quantum.
	// Nil disables tracing; instrumented paths then pay one branch.
	Trace *telemetry.Tracer

	// Hybrid selects the hybrid-TM slow-path policy the rtm runtime
	// applies to locks allocated on this machine (see HybridPolicy).
	// The zero value, HybridLockOnly, is the paper's lock-only
	// fallback.
	Hybrid HybridPolicy

	// Elision selects whether elidable locks (rtm.ElidedLock) on this
	// machine speculate through the TM runtime (see ElisionMode). The
	// zero value, ElisionOff, makes them plain locks.
	Elision ElisionMode

	// Context, when non-nil, cancels the run cooperatively:
	// SIGINT/SIGTERM (via signal.NotifyContext) or a per-shard
	// deadline stops the machine at the next scheduler rendezvous — a
	// quantum boundary, so no thread is mid-operation and every
	// collector structure is consistent — and Run returns an error
	// wrapping ErrCanceled and the context's cause. Machine state
	// (Elapsed, GroundTruth, an attached collector) remains readable,
	// which is what lets frontends flush a Partial profile.
	Context context.Context
}

func (c Config) withDefaults() Config {
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Cache == (cache.Config{}) {
		c.Cache = cache.DefaultConfig()
	}
	if c.LBRDepth == 0 {
		c.LBRDepth = 16
	}
	if c.Costs == (Costs{}) {
		c.Costs = DefaultCosts()
	}
	if c.HandlerCost == 0 {
		c.HandlerCost = 200
	}
	if c.Quantum == 0 {
		c.Quantum = DefaultQuantum
	}
	return c
}

// Validate reports the first problem with the configuration, after
// defaulting, or nil. Frontends validate before construction so bad
// flag combinations surface as clean errors; New panics on the same
// conditions, treating them as API misuse.
func (c Config) Validate() error {
	d := c.withDefaults()
	if d.Threads < 1 || d.Threads > 64 {
		return fmt.Errorf("machine: thread count %d out of range [1,64]", d.Threads)
	}
	if err := d.Cache.Validate(); err != nil {
		return err
	}
	if c.LBRDepth < 0 {
		return fmt.Errorf("machine: negative LBR depth %d", c.LBRDepth)
	}
	if c.MaxReadLines < 0 {
		return fmt.Errorf("machine: negative MaxReadLines %d", c.MaxReadLines)
	}
	if c.Quantum < 0 {
		return fmt.Errorf("machine: negative scheduler quantum %d", c.Quantum)
	}
	if c.Sched < SchedAuto || c.Sched > SchedSharded {
		return fmt.Errorf("machine: unknown scheduler mode %d", c.Sched)
	}
	if !c.Hybrid.Valid() {
		return fmt.Errorf("machine: unknown hybrid policy %d", int(c.Hybrid))
	}
	if !c.Elision.Valid() {
		return fmt.Errorf("machine: unknown elision mode %d", int(c.Elision))
	}
	if err := (htm.Config{Sets: d.Cache.Sets, Ways: d.Cache.Ways, MaxReadLines: d.MaxReadLines}).Validate(); err != nil {
		return err
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Faults.PmemArmed() && !c.Pmem.Enabled {
		return fmt.Errorf("machine: fault plan arms pmem crash point %q but the pmem tier is disabled",
			c.Faults.PmemCrashPoint)
	}
	return nil
}

// sharded resolves the scheduler choice for a defaulted Config. The
// serial scheduler is required for the per-op debug schedule
// (Quantum=1, whose whole point is a rendezvous per operation) and for
// tracing (baton tenures only exist when a baton does).
func (c Config) sharded() bool {
	if c.Trace != nil {
		return false
	}
	switch c.Sched {
	case SchedSerial:
		return false
	case SchedSharded:
		return true
	default:
		return c.Quantum != 1
	}
}

// Sampling reports whether any PMU event is enabled.
func (c Config) Sampling() bool {
	for _, p := range c.Periods {
		if p != 0 {
			return true
		}
	}
	return false
}

// SampleHandler receives PMU samples. Implemented by the TxSampler
// collector. Handlers run logically inside the interrupted thread; the
// machine charges HandlerCost cycles per delivery.
type SampleHandler interface {
	HandleSample(s *Sample)
}

// Machine is one simulated multicore system.
type Machine struct {
	cfg     Config
	Mem     *mem.Memory
	Caches  *cache.Hierarchy
	HTM     *htm.Engine
	threads []*Thread
	handler SampleHandler
	sched   *scheduler
	pmem    *pmem.Domain // nil unless Config.Pmem.Enabled

	ran bool
}

// scheduler is the shared baton state. Exactly one thread goroutine
// runs at a time; every handoff takes mu, so all simulated-machine and
// workload state is ordered by the mutex (the race detector agrees).
// The scheduling decision itself lives in the threads: a yielding
// thread picks and grants its successor directly, with no round trip
// through a central goroutine.
type scheduler struct {
	mu       sync.Mutex
	live     []*Thread // threads not yet finished, thread-ID order
	status   []threadStatus
	running  int  // ID of the thread holding the baton
	stopped  bool // terminal: threads park at their next rendezvous
	reported bool // a terminal result was sent on done
	done     chan error
	progress atomic.Uint64 // rendezvous counter for the watchdog

	// cancelErr is set (under mu, by the context watcher) when the
	// run's context is done; the next thread to rendezvous reports it
	// and stops the machine at that quantum boundary.
	cancelErr error

	// Sharded-scheduler state (see sched_sharded.go). clocks holds one
	// padded published-clock slot per thread; busy counts thread
	// goroutines that have neither finished nor parked; stopFlag is
	// the lock-free analogue of stopped, checked at every gate spin
	// and quantum boundary.
	sharded  bool
	clocks   []paddedClock
	busy     atomic.Int32
	stopFlag atomic.Bool
}

// reportLocked delivers the terminal result (first one wins) and stops
// the machine.
func (s *scheduler) reportLocked(err error) {
	if !s.reported {
		s.reported = true
		s.done <- err
	}
	s.stopped = true
}

// New constructs a machine. The configuration is validated and
// defaulted; see Config. Invalid configurations panic — callers
// turning user input into a Config should call Config.Validate first
// and report the error themselves.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	m := &Machine{
		cfg:    cfg,
		Mem:    mem.NewMemory(),
		Caches: cache.New(cfg.Threads, cfg.Cache),
		HTM: htm.NewEngine(htm.Config{
			Sets: cfg.Cache.Sets, Ways: cfg.Cache.Ways, MaxReadLines: cfg.MaxReadLines,
		}),
		sched: &scheduler{done: make(chan error, 1)},
	}
	if cfg.Pmem.Enabled {
		m.pmem = pmem.New(cfg.Pmem, cfg.Faults, cfg.Threads)
	}
	m.sched.sharded = cfg.sharded()
	if m.sched.sharded {
		m.sched.clocks = make([]paddedClock, cfg.Threads)
	}
	for i := 0; i < cfg.Threads; i++ {
		m.threads = append(m.threads, newThread(m, i))
	}
	return m
}

// Config returns the (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetHandler installs the PMU sample handler. Must be called before
// Run.
func (m *Machine) SetHandler(h SampleHandler) { m.handler = h }

// Thread returns thread i, for pre-Run configuration by tests.
func (m *Machine) Thread(i int) *Thread { return m.threads[i] }

// Pmem returns the persistent-memory domain, or nil when the tier is
// disabled.
func (m *Machine) Pmem() *pmem.Domain { return m.pmem }

// PmemTrack registers [base, base+words*WordSize) as durable. A no-op
// when the pmem tier is disabled, so workloads with durable regions
// run unchanged on volatile-only machines.
func (m *Machine) PmemTrack(base mem.Addr, words int) {
	if m.pmem != nil {
		m.pmem.Track(base, words)
	}
}

// Run executes one body per configured thread to completion and
// returns the first workload panic as an error (simulated aborts are
// handled internally and never escape). Run may be called once.
func (m *Machine) Run(bodies ...func(*Thread)) error {
	if m.ran {
		panic("machine: Run called twice")
	}
	m.ran = true
	if len(bodies) != m.cfg.Threads {
		panic(fmt.Sprintf("machine: %d bodies for %d threads", len(bodies), m.cfg.Threads))
	}
	if m.pmem != nil {
		// Capture the post-initialization image of the durable regions:
		// build-time stores happened before the machine ran, so the
		// persist domain starts consistent with volatile memory.
		m.pmem.Sync(m.Mem)
	}
	s := m.sched
	s.live = make([]*Thread, len(m.threads))
	copy(s.live, m.threads)
	s.status = make([]threadStatus, len(m.threads))
	if s.sharded {
		// Publish every thread's initial (possibly skewed) clock before
		// any goroutine starts, so the first gate scans see real values.
		for _, t := range m.threads {
			s.clocks[t.ID].v.Store(t.clock)
			t.lastPub = t.clock
		}
		s.busy.Store(int32(len(m.threads)))
	}
	if ctx := m.cfg.Context; ctx != nil && ctx.Err() != nil {
		// A context canceled before Run is visible synchronously, so
		// even workloads shorter than one quantum report ErrCanceled.
		s.cancelErr = context.Cause(ctx)
	}
	for i, t := range m.threads {
		go t.main(bodies[i])
	}
	return m.schedule()
}

// RunAll is a convenience that runs the same body on every thread.
func (m *Machine) RunAll(body func(*Thread)) error {
	bodies := make([]func(*Thread), m.cfg.Threads)
	for i := range bodies {
		bodies[i] = body
	}
	return m.Run(bodies...)
}

// DefaultWatchdog is the real-time no-progress bound the scheduler
// applies when Config.Watchdog is zero.
const DefaultWatchdog = 30 * time.Second

// threadStatus is the scheduler's own record of a thread's state at
// its most recent rendezvous. It is written only under the scheduler
// mutex (by the thread itself, right before it hands off the baton),
// which makes the watchdog's diagnostic dump race-free even while a
// stuck thread goroutine is blocked in workload code.
type threadStatus struct {
	ops     uint64 // operations completed
	clock   uint64
	depth   int // call-stack depth
	top     string
	inTx    bool
	txNest  int
	state   uint32
	yielded bool // reached at least one rendezvous
	done    bool
}

func statusOf(t *Thread) threadStatus {
	top := t.stack[len(t.stack)-1].fn
	if site := t.stack[len(t.stack)-1].site; site != "" {
		top += "@" + site
	}
	return threadStatus{
		clock: t.clock, depth: len(t.stack), top: top, ops: t.opCount,
		inTx: t.tx != nil, txNest: t.txNest, state: t.State, yielded: true,
	}
}

// pickNextLocked selects the live thread the canonical per-op schedule
// runs next — smallest clock, ties broken by thread ID (live is kept
// in ID order) — or the MaxCycles livelock error, or (nil, nil) when
// every thread has finished.
func (m *Machine) pickNextLocked() (*Thread, error) {
	s := m.sched
	if len(s.live) == 0 {
		return nil, nil
	}
	t := s.live[0]
	for _, c := range s.live[1:] {
		if c.clock < t.clock {
			t = c
		}
	}
	if m.cfg.MaxCycles > 0 && t.clock > m.cfg.MaxCycles {
		return nil, fmt.Errorf("machine: watchdog: slowest live thread passed MaxCycles=%d without completing (livelock?)\n%s",
			m.cfg.MaxCycles, dumpStatus(s.status, -1))
	}
	return t, nil
}

// grantLocked hands the baton to t: freeze t's horizon (the earliest
// other live thread), reset its quantum, and wake it.
func (m *Machine) grantLocked(t *Thread) {
	m.setHorizonLocked(t)
	t.sinceYield = 0
	t.sliceStart = t.clock
	m.sched.running = t.ID
	t.granted = true
	t.cond.Signal()
}

// setHorizonLocked records the smallest (clock, ID) among the other
// live threads. Those clocks cannot change while t holds the baton, so
// t may run inline exactly while it stays ahead of this horizon.
func (m *Machine) setHorizonLocked(t *Thread) {
	t.hasHorizon = false
	for _, c := range m.sched.live {
		if c == t {
			continue
		}
		if !t.hasHorizon || c.clock < t.hClock || (c.clock == t.hClock && c.ID < t.hID) {
			t.hasHorizon, t.hClock, t.hID = true, c.clock, c.ID
		}
	}
}

// ErrCanceled marks a run stopped cooperatively via Config.Context.
// The terminal error wraps both ErrCanceled and the context's cause
// (context.Canceled or context.DeadlineExceeded), so callers can
// errors.Is either.
var ErrCanceled = errors.New("machine: run canceled")

// checkCancelLocked reports the pending cancellation, if any, stopping
// the machine. Called with the scheduler mutex held, from a rendezvous
// — i.e. at a quantum boundary, when no thread is mid-operation.
func (s *scheduler) checkCancelLocked() {
	if s.cancelErr != nil && !s.stopped {
		s.reportLocked(fmt.Errorf("%w at a quantum boundary: %w", ErrCanceled, s.cancelErr))
	}
}

func panicErr(id int, v any) error {
	if err, ok := v.(error); ok {
		return fmt.Errorf("machine: thread %d panicked: %w", id, err)
	}
	return fmt.Errorf("machine: thread %d panicked: %v", id, v)
}

// schedule starts the machine: grant the first operation to the live
// thread with the smallest clock, then wait for the threads — who pass
// the baton among themselves — to report a terminal result. A watchdog
// goroutine monitors rendezvous progress in real time; if a thread is
// granted an operation and never yields (a deadlock in workload or
// handler code), the scheduler fails with a per-thread diagnostic dump
// instead of hanging forever. A cycle budget (Config.MaxCycles)
// catches livelock the same way.
func (m *Machine) schedule() error {
	s := m.sched
	timeout := m.cfg.Watchdog
	if timeout == 0 {
		timeout = DefaultWatchdog
	}
	fired := make(chan struct{})
	stop := make(chan struct{})
	defer close(stop)
	if timeout > 0 {
		go watchdogLoop(timeout, &s.progress, fired, stop)
	}
	if ctx := m.cfg.Context; ctx != nil {
		// The watcher only posts the cancellation; a thread delivers it
		// at its next rendezvous, so the stop lands on a quantum
		// boundary with every thread between operations.
		go func() {
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.cancelErr = context.Cause(ctx)
				s.mu.Unlock()
			case <-stop:
			}
		}()
	}

	if !s.sharded {
		// Serial: grant the first operation to the minimum-clock thread;
		// the threads pass the baton among themselves from there.
		s.mu.Lock()
		first, err := m.pickNextLocked()
		if err != nil {
			s.stopped = true
			s.mu.Unlock()
			return err
		}
		if first == nil {
			s.mu.Unlock()
			return nil
		}
		m.grantLocked(first)
		s.mu.Unlock()
	}

	select {
	case err := <-s.done:
		return err
	case <-fired:
		// A terminal report may have raced the watchdog; prefer it.
		select {
		case err := <-s.done:
			return err
		default:
		}
		s.stopFlag.Store(true)
		s.mu.Lock()
		s.stopped = true
		var stuck *Thread
		if s.sharded {
			// The thread holding the minimum published clock is the one
			// every gate is waiting behind — the thread that stopped
			// executing operations.
			minC := uint64(clockDone)
			for i := range s.clocks {
				if c := s.clocks[i].v.Load(); c < minC {
					minC, stuck = c, m.threads[i]
				}
			}
		} else {
			stuck = m.threads[s.running]
		}
		snap := make([]threadStatus, len(s.status))
		copy(snap, s.status)
		s.mu.Unlock()
		return watchdogError(timeout, snap, stuck)
	}
}

// watchdogLoop fires when no rendezvous completes for a whole timeout
// window (so it triggers between timeout and 2x timeout of genuine
// no-progress).
func watchdogLoop(timeout time.Duration, progress *atomic.Uint64, fired, stop chan struct{}) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	last := progress.Load()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
			if cur := progress.Load(); cur != last {
				last = cur
				timer.Reset(timeout)
				continue
			}
			close(fired)
			return
		}
	}
}

func watchdogError(timeout time.Duration, status []threadStatus, stuck *Thread) error {
	if stuck == nil {
		return errors.New("machine: watchdog: no scheduler progress for " + timeout.String() +
			" (deadlock in workload or handler code)\n" + dumpStatus(status, -1))
	}
	return errors.New("machine: watchdog: no scheduler progress for " + timeout.String() +
		"; thread " + fmt.Sprint(stuck.ID) +
		" was mid-operation and did not yield (deadlock in workload or handler code)\n" +
		dumpStatus(status, stuck.ID))
}

// dumpStatus renders the per-thread diagnostic dump from the
// scheduler's rendezvous snapshots. stuck is the granted-but-silent
// thread, or -1.
func dumpStatus(status []threadStatus, stuck int) string {
	var b strings.Builder
	b.WriteString("per-thread state at last rendezvous:")
	for i, st := range status {
		fmt.Fprintf(&b, "\n  thread %2d:", i)
		if !st.yielded {
			b.WriteString(" never reached a rendezvous")
		} else {
			fmt.Fprintf(&b, " clock=%d ops=%d stack-depth=%d top=%s in-tx=%v", st.clock, st.ops, st.depth, st.top, st.inTx)
			if st.txNest > 0 {
				fmt.Fprintf(&b, " tx-nest=%d", st.txNest)
			}
			fmt.Fprintf(&b, " state=%#x", st.state)
		}
		switch {
		case st.done:
			b.WriteString(" [finished]")
		case i == stuck:
			b.WriteString(" [granted, did not yield]")
		default:
			b.WriteString(" [waiting for grant]")
		}
	}
	return b.String()
}

// FaultStats aggregates the fault-injection statistics of every
// thread's injector. All-zero when no fault plan was configured. Call
// after Run.
func (m *Machine) FaultStats() faults.Stats {
	var s faults.Stats
	for _, t := range m.threads {
		if t.inj != nil {
			s.Merge(t.inj.Stats)
		}
	}
	if m.pmem != nil {
		s.Merge(m.pmem.FaultStats())
	}
	return s
}

// Elapsed returns the makespan: the largest thread clock.
func (m *Machine) Elapsed() uint64 {
	var max uint64
	for _, t := range m.threads {
		if t.clock > max {
			max = t.clock
		}
	}
	return max
}

// TotalCycles returns the sum of all thread clocks (the paper's "work"
// W measured exactly, rather than by sampling).
func (m *Machine) TotalCycles() uint64 {
	var sum uint64
	for _, t := range m.threads {
		sum += t.clock
	}
	return sum
}

// GroundTruth aggregates the machine's exact instrumentation, the
// reference TxSampler's profiles are validated against (paper §7.2).
type GroundTruth struct {
	Commits          uint64
	Aborts           map[htm.Cause]uint64 // application aborts by cause
	PerThreadCommits []uint64
	PerThreadAborts  []uint64
}

// GroundTruth returns exact per-machine transaction statistics.
func (m *Machine) GroundTruth() GroundTruth {
	g := GroundTruth{Aborts: make(map[htm.Cause]uint64)}
	for _, t := range m.threads {
		g.Commits += t.commits
		g.PerThreadCommits = append(g.PerThreadCommits, t.commits)
		var aborts uint64
		for c, n := range t.aborts {
			if n > 0 {
				g.Aborts[htm.Cause(c)] += n
				aborts += n
			}
		}
		g.PerThreadAborts = append(g.PerThreadAborts, aborts)
	}
	return g
}

// AbortCauses returns the causes seen, sorted for stable output.
func (g GroundTruth) AbortCauses() []htm.Cause {
	out := make([]htm.Cause, 0, len(g.Aborts))
	for c := range g.Aborts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
