package machine_test

import (
	"fmt"

	"txsampler/internal/htm"
	"txsampler/internal/machine"
)

// ExampleThread_Attempt shows the raw XBEGIN/XEND layer beneath the
// RTM library: a committed attempt publishes its buffered stores, an
// explicit abort discards them.
func ExampleThread_Attempt() {
	m := machine.New(machine.Config{Threads: 1})
	a := m.Mem.AllocWords(1)

	err := m.RunAll(func(t *machine.Thread) {
		if ab := t.Attempt(func() { t.Store(a, 42) }); ab == nil {
			fmt.Println("committed:", t.Commits())
		}
		ab := t.Attempt(func() {
			t.Store(a, 99)
			t.TxAbort()
		})
		fmt.Println("abort cause:", ab.Cause)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("memory:", m.Mem.Load(a))
	// Output:
	// committed: 1
	// abort cause: explicit
	// memory: 42
}

// ExampleMachine_GroundTruth shows the exact instrumentation profilers
// are validated against: a system call inside a transaction aborts it
// synchronously.
func ExampleMachine_GroundTruth() {
	m := machine.New(machine.Config{Threads: 1})
	err := m.RunAll(func(t *machine.Thread) {
		t.Attempt(func() { t.Syscall("write") })
	})
	if err != nil {
		panic(err)
	}
	g := m.GroundTruth()
	fmt.Println("sync aborts:", g.Aborts[htm.Sync])
	// Output:
	// sync aborts: 1
}
