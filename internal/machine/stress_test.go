package machine

// Randomized stress: arbitrary mixes of transactional and
// non-transactional operations across threads must preserve the
// machine's core invariants.

import (
	"testing"
	"testing/quick"

	"txsampler/internal/mem"
	"txsampler/internal/pmu"
)

// TestQuickStressInvariants drives random workloads and checks:
// committed transactional increments are never lost (serializability
// of commits), atomic adds are exact, and ground-truth bookkeeping is
// consistent, with and without sampling.
func TestQuickStressInvariants(t *testing.T) {
	f := func(seed int64, threads8, iters8 uint8, sampled bool) bool {
		threads := int(threads8)%5 + 2
		iters := int(iters8)%30 + 10
		cfg := Config{Threads: threads, Seed: seed, StartSkew: 300}
		if sampled {
			var p pmu.Periods
			p[pmu.Cycles] = 700
			p[pmu.TxAbort] = 4
			p[pmu.TxCommit] = 4
			cfg.Periods = p
		}
		m := New(cfg)
		if sampled {
			m.SetHandler(&collectHandler{})
		}
		txCounter := m.Mem.AllocLines(1)
		atomicCounter := m.Mem.AllocLines(1)
		private := m.Mem.AllocLines(threads)

		err := m.RunAll(func(th *Thread) {
			r := th.Rand()
			for i := 0; i < iters; i++ {
				switch r.Intn(3) {
				case 0:
					// Retry-until-commit transactional increment.
					for {
						if ab := th.Attempt(func() {
							v := th.Load(txCounter)
							th.Compute(r.Intn(20))
							th.Store(txCounter, v+1)
						}); ab == nil {
							break
						}
					}
				case 1:
					th.AtomicAdd(atomicCounter, 1)
				default:
					th.Add(private+mem.Addr(th.ID)*mem.LineSize, 1)
					th.Compute(r.Intn(40))
				}
			}
		})
		if err != nil {
			return false
		}
		g := m.GroundTruth()
		// Committed transactional increments match the commit count.
		if m.Mem.Load(txCounter) != g.Commits {
			return false
		}
		// Per-thread sums equal the total.
		var perSum uint64
		for _, n := range g.PerThreadCommits {
			perSum += n
		}
		return perSum == g.Commits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
