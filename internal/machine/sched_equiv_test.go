package machine

// Equivalence of the sharded lock-free scheduler with the serial baton
// scheduler: both must produce byte-identical schedules — same sample
// stream, same clocks, same ground truth — for any GOMAXPROCS and any
// quantum, including the horizon edge cases: threads tied at the same
// minimum clock, a thread exiting while it holds the minimum, and the
// Quantum=1 degenerate run where the sharded gate fires on every
// operation.

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"txsampler/internal/pmu"
)

// requireSameRun asserts two captured runs are identical in every
// observable the schedule determines.
func requireSameRun(t *testing.T, label string, got, want quantumRun) {
	t.Helper()
	if got.elapsed != want.elapsed || got.total != want.total {
		t.Fatalf("%s: clocks diverge: elapsed %d vs %d, total %d vs %d",
			label, got.elapsed, want.elapsed, got.total, want.total)
	}
	if !reflect.DeepEqual(got.commits, want.commits) || !reflect.DeepEqual(got.aborts, want.aborts) {
		t.Fatalf("%s: ground truth diverges: commits %v vs %v, aborts %v vs %v",
			label, got.commits, want.commits, got.aborts, want.aborts)
	}
	if len(got.samples) != len(want.samples) {
		t.Fatalf("%s: %d samples vs %d", label, len(got.samples), len(want.samples))
	}
	for i := range want.samples {
		if !reflect.DeepEqual(got.samples[i], want.samples[i]) {
			t.Fatalf("%s: sample %d diverges:\ngot:  %+v\nwant: %+v",
				label, i, got.samples[i], want.samples[i])
		}
	}
}

// contendedConfig is the quantum_test workload config, parameterized by
// scheduler mode and quantum.
func contendedConfig(sched SchedMode, quantum int, skew uint64) Config {
	var p pmu.Periods
	p[pmu.Cycles] = 400
	p[pmu.TxAbort] = 4
	p[pmu.TxCommit] = 8
	p[pmu.Loads] = 300
	p[pmu.Stores] = 300
	return Config{Threads: 4, Seed: 42, Periods: p, StartSkew: skew, Sched: sched, Quantum: quantum}
}

// contendedBody returns the quantum_test transactional workload: every
// thread hammers the same 8 words, so aborts, retries, and samples all
// depend on the exact interleaving the scheduler picks.
func contendedBody(m *Machine, iters int) func(*Thread) {
	a := m.Mem.AllocWords(8)
	return func(t *Thread) {
		for i := 0; i < iters; i++ {
			t.Func("worker", func() {
				t.At("loop")
				for {
					if t.Attempt(func() {
						t.Add(a.Offset(i%8), 1)
						t.Compute(5)
					}) == nil {
						break
					}
					t.Compute(20)
				}
			})
		}
	}
}

// runContended builds the machine first (the body needs its memory)
// and runs the contended workload.
func runContended(t *testing.T, cfg Config, iters int) quantumRun {
	t.Helper()
	m := New(cfg)
	h := &collectHandler{}
	m.SetHandler(h)
	if err := m.RunAll(contendedBody(m, iters)); err != nil {
		t.Fatalf("sched %d quantum %d: %v", cfg.Sched, cfg.Quantum, err)
	}
	r := quantumRun{samples: h.samples, elapsed: m.Elapsed(), total: m.TotalCycles()}
	g := m.GroundTruth()
	r.commits = g.PerThreadCommits
	r.aborts = g.PerThreadAborts
	return r
}

// TestSchedulerModeEquivalence is the old-vs-new scheduler gate: the
// serial baton scheduler and the sharded lock-free scheduler must
// produce byte-identical runs across GOMAXPROCS settings (1 makes the
// sharded scheduler's goroutines time-slice on one core; higher counts
// let them genuinely race).
func TestSchedulerModeEquivalence(t *testing.T) {
	serial := runContended(t, contendedConfig(SchedSerial, 0, 512), 150)
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		sharded := runContended(t, contendedConfig(SchedSharded, 0, 512), 150)
		requireSameRun(t, fmt.Sprintf("sharded GOMAXPROCS=%d vs serial", procs), sharded, serial)
	}
}

// TestShardedQuantum1Degenerate forces the sharded scheduler with
// Quantum=1 — a gate check after every operation, the worst case for
// the min-clock scan — and requires byte-identity with the serial
// per-op schedule, which defines the canonical order.
func TestShardedQuantum1Degenerate(t *testing.T) {
	perOp := runContended(t, contendedConfig(SchedSerial, 1, 512), 100)
	degenerate := runContended(t, contendedConfig(SchedSharded, 1, 512), 100)
	requireSameRun(t, "sharded quantum=1 vs serial per-op", degenerate, perOp)
}

// TestHorizonIdenticalMinClock ties threads at the same published
// clock: with StartSkew=0 and identical bodies every thread reaches
// each shared operation at exactly the same clock, so the min-clock
// gate must break every tie by thread ID to reproduce the serial
// schedule.
func TestHorizonIdenticalMinClock(t *testing.T) {
	serial := runContended(t, contendedConfig(SchedSerial, 1, 0), 100)
	sharded := runContended(t, contendedConfig(SchedSharded, 0, 0), 100)
	requireSameRun(t, "identical clocks: sharded vs serial", sharded, serial)
}

// TestHorizonThreadExitWhileMin exits a thread while it holds the
// minimum clock: thread 0 stops after a handful of operations while
// the rest keep going, so the sharded scheduler must publish its done
// marker (clockDone) or every other thread's gate would wait forever
// on a clock that can no longer advance.
func TestHorizonThreadExitWhileMin(t *testing.T) {
	build := func(sched SchedMode) (Config, func(m *Machine) func(*Thread)) {
		var p pmu.Periods
		p[pmu.Cycles] = 250
		p[pmu.Stores] = 100
		cfg := Config{Threads: 4, Seed: 7, Periods: p, Sched: sched}
		body := func(m *Machine) func(*Thread) {
			a := m.Mem.AllocWords(4)
			return func(t *Thread) {
				iters := 400
				if t.ID == 0 {
					iters = 3 // exits holding the minimum clock
				}
				for i := 0; i < iters; i++ {
					t.Store(a.Offset(t.ID%4), uint64(i))
					t.Compute(2)
				}
			}
		}
		return cfg, body
	}

	run := func(sched SchedMode) quantumRun {
		cfg, body := build(sched)
		m := New(cfg)
		h := &collectHandler{}
		m.SetHandler(h)
		if err := m.RunAll(body(m)); err != nil {
			t.Fatalf("sched %d: %v", sched, err)
		}
		r := quantumRun{samples: h.samples, elapsed: m.Elapsed(), total: m.TotalCycles()}
		g := m.GroundTruth()
		r.commits = g.PerThreadCommits
		r.aborts = g.PerThreadAborts
		return r
	}

	serial := run(SchedSerial)
	sharded := run(SchedSharded)
	requireSameRun(t, "early exit: sharded vs serial", sharded, serial)
	if len(serial.samples) == 0 {
		t.Fatal("workload produced no samples; the comparison is vacuous")
	}
}
