package machine

// Telemetry instrumentation: the machine emits trace events for
// scheduler baton tenures, transaction regions, and PMU interrupt
// deliveries, and publishes exact post-run counters into a metrics
// registry. Every emitted value is virtual (cycle clocks, cause
// codes), so traces and metrics are deterministic for a seed and
// invariant to the run quantum — run-slice boundaries are the actual
// thread switches of the canonical per-op schedule, which the quantum
// provably does not move (DESIGN.md §3.1).

import (
	"fmt"

	"txsampler/internal/htm"
	"txsampler/internal/pmu"
	"txsampler/internal/telemetry"
)

// abortEventNames and pmiEventNames pre-format the trace names so hot
// paths emit constant strings instead of formatting.
var abortEventNames = func() [htm.NumCauses]string {
	var names [htm.NumCauses]string
	for c := range names {
		names[c] = "tx-abort:" + htm.Cause(c).String()
	}
	return names
}()

var pmiEventNames = func() [pmu.NumEvents]string {
	var names [pmu.NumEvents]string
	for e := range names {
		names[e] = "pmi:" + pmu.Event(e).String()
	}
	return names
}()

// Tracer returns the tracer the machine was configured with, or nil.
// Runtime libraries layered on the machine (e.g. internal/rtm) use it
// to put their own spans on the same virtual timeline.
func (m *Machine) Tracer() *telemetry.Tracer { return m.cfg.Trace }

// traceBatchSize is the per-thread trace-event buffer capacity: big
// enough to amortize the ring mutex across a quantum, small enough
// that flushes stay cache-resident.
const traceBatchSize = 256

// TraceEvent records ev on the machine's virtual timeline through the
// thread's local batch, flushing to the tracer ring when the batch
// fills (and at scheduler handoffs). Runtime libraries layered on the
// machine (e.g. internal/rtm) use it instead of Tracer().Emit so
// their spans ride the same amortized path. No-op when tracing is
// disabled.
func (t *Thread) TraceEvent(ev telemetry.Event) {
	if t.evBatch == nil {
		return
	}
	t.evBatch = append(t.evBatch, ev)
	if len(t.evBatch) == cap(t.evBatch) {
		t.flushTrace()
	}
}

// flushTrace drains the thread's trace batch into the tracer ring.
func (t *Thread) flushTrace() {
	if len(t.evBatch) > 0 {
		t.m.cfg.Trace.EmitBatch(t.evBatch)
		t.evBatch = t.evBatch[:0]
	}
}

// emitRunSlice records one baton tenure of t ending now; called at
// handoffs and thread completion, under the scheduler mutex.
func (t *Thread) emitRunSlice() {
	t.TraceEvent(telemetry.Event{
		Kind: telemetry.KindRunSlice, TS: t.sliceStart, Dur: t.clock - t.sliceStart, TID: int32(t.ID),
	})
}

// PublishMetrics writes the machine's exact post-run instrumentation
// into reg: ground-truth commit/abort counts by cause, PMU event and
// overflow totals, interrupt and sample delivery counts, and the
// cycle totals. Everything published is deterministic for a seed.
// Call after Run; a nil registry is ignored.
func (m *Machine) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	var commits, interrupts, delivered uint64
	var aborts [htm.NumCauses]uint64
	var events, overflows [pmu.NumEvents]uint64
	for _, t := range m.threads {
		commits += t.commits
		interrupts += t.interrupts
		delivered += t.samplesDelivered
		for c := range aborts {
			aborts[c] += t.aborts[c]
		}
		for e := 0; e < pmu.NumEvents; e++ {
			events[e] += t.counters.Total(pmu.Event(e))
			overflows[e] += t.counters.Overflows(pmu.Event(e))
		}
	}
	reg.Counter("machine.commits").Add(commits)
	for c, n := range aborts {
		if htm.Cause(c) == htm.None {
			continue
		}
		reg.Counter("machine.aborts." + htm.Cause(c).String()).Add(n)
	}
	reg.Counter("machine.interrupts").Add(interrupts)
	reg.Counter("machine.samples.delivered").Add(delivered)
	for e := 0; e < pmu.NumEvents; e++ {
		if m.cfg.Periods[e] == 0 {
			continue
		}
		name := pmu.Event(e).String()
		reg.Counter(fmt.Sprintf("machine.pmu.%s.events", name)).Add(events[e])
		reg.Counter(fmt.Sprintf("machine.pmu.%s.overflows", name)).Add(overflows[e])
	}
	reg.Gauge("machine.cycles.elapsed", false).Set(m.Elapsed())
	reg.Gauge("machine.cycles.total", false).Set(m.TotalCycles())
}
