package machine

import (
	"testing"

	"txsampler/internal/htm"
)

// TestThreadAbortAccessors: LastAbort mirrors the info Attempt
// returns, and the per-cause ground-truth counters track each abort
// exactly.
func TestThreadAbortAccessors(t *testing.T) {
	m := single()
	var last AbortInfo
	var explicit, conflict uint64
	err := m.RunAll(func(t *Thread) {
		for i := 0; i < 3; i++ {
			if t.Attempt(func() { t.TxAbort() }) != nil {
				last = t.LastAbort()
			}
		}
		explicit, conflict = t.Aborts(htm.Explicit), t.Aborts(htm.Conflict)
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Cause != htm.Explicit {
		t.Fatalf("LastAbort = %+v, want explicit cause", last)
	}
	if explicit != 3 || conflict != 0 {
		t.Fatalf("Aborts: explicit=%d conflict=%d, want 3/0", explicit, conflict)
	}
}
