package machine

import (
	"txsampler/internal/lbr"
	"txsampler/internal/mem"
	"txsampler/internal/pmu"
)

// Sample is one PMU sample as delivered to the profiler's handler. It
// contains exactly what a real handler can observe — the precise IP,
// the frozen LBR, the RTM library state word, and the (possibly
// rolled-back) call stack — plus hidden ground-truth fields the
// correctness tests compare reconstructions against (paper §7.2).
//
// The machine reuses one Sample (and the backing arrays of its
// slices) per thread across deliveries, so the sample is valid only
// for the duration of HandleSample — like a real PMI handler's signal
// frame. A handler that retains a sample past its return must Clone
// it.
type Sample struct {
	Event pmu.Event
	TID   int
	Time  uint64 // thread cycle clock at delivery

	// IP is the precise instruction pointer at the sample point. When
	// the sample aborted a transaction this is the in-transaction
	// location (shared between transaction and fallback paths, so it
	// alone cannot identify the executing path — Challenge I).
	IP lbr.IP

	// LBR is the frozen branch record, most recent first; LBR[0] is
	// the entry whose abort bit the profiler checks (§3.1).
	LBR []lbr.Entry

	// State is the RTM runtime library's state word at delivery
	// (post-rollback for samples that aborted a transaction).
	State uint32

	// Stack is what call-stack unwinding from the signal context
	// observes: for in-transaction samples this reaches only the
	// transaction start, because the abort rolled the stack back
	// (Challenge IV).
	Stack []lbr.IP

	// Effective address, for Loads/Stores samples.
	Addr    mem.Addr
	IsWrite bool
	HasAddr bool

	// Abort carries the abort record for TxAbort samples.
	Abort *AbortInfo

	// Ground truth (not available to a real profiler; used only to
	// validate reconstruction accuracy in tests).
	TruthStack []lbr.IP
	TruthInTx  bool
}

// Clone returns a deep copy of the sample that remains valid after
// HandleSample returns: the slices get their own backing arrays and
// the abort record is copied out of the thread's mutable state.
func (s *Sample) Clone() *Sample {
	c := *s
	if s.LBR != nil {
		c.LBR = append([]lbr.Entry(nil), s.LBR...)
	}
	if s.Stack != nil {
		c.Stack = append([]lbr.IP(nil), s.Stack...)
	}
	if s.TruthStack != nil {
		c.TruthStack = append([]lbr.IP(nil), s.TruthStack...)
	}
	if s.Abort != nil {
		a := *s.Abort
		c.Abort = &a
	}
	return &c
}
